/// Fig. 4 / Table 3 — the six static-order schedules on the Table 3
/// instance with capacity 6, including the unconstrained OMIM schedule.
/// Regenerates every timeline of the figure.

#include <cstdio>

#include "bench_common.hpp"
#include "core/johnson.hpp"
#include "heuristics/static_orders.hpp"
#include "report/gantt.hpp"

int main(int argc, char** argv) {
  using namespace dts;
  const bench::Options options = bench::Options::parse(argc, argv);

  const Instance inst =
      Instance::from_comm_comp({{3, 2}, {1, 3}, {4, 4}, {2, 1}});
  constexpr Mem kCapacity = 6.0;

  std::printf("Fig. 4 — static orders on Table 3 (capacity 6):\n\n");
  std::printf("OMIM (infinite memory), makespan %.0f:\n%s\n",
              omim(inst), render_gantt(inst, johnson_schedule(inst),
                                       {.width = 60, .show_legend = false})
                              .c_str());

  TextTable table({"heuristic", "order", "makespan", "paper"});
  const struct {
    StaticOrderPolicy policy;
    const char* expected;
  } rows[] = {
      {StaticOrderPolicy::kJohnson, "15"},
      {StaticOrderPolicy::kIncreasingComm, "16"},
      {StaticOrderPolicy::kDecreasingComp, "14"},
      {StaticOrderPolicy::kIncreasingCommPlusComp, "16"},
      {StaticOrderPolicy::kDecreasingCommPlusComp, "17"},
  };
  for (const auto& row : rows) {
    const std::vector<TaskId> order = static_order(inst, row.policy);
    std::string order_str;
    for (TaskId id : order) order_str += static_cast<char>('A' + id);
    const Schedule s = simulate_order(inst, order, kCapacity);
    table.add_row({std::string(to_acronym(row.policy)), order_str,
                   format_fixed(s.makespan(inst), 0), row.expected});
    std::printf("%s (order %s), makespan %.0f:\n%s\n",
                std::string(to_acronym(row.policy)).c_str(), order_str.c_str(),
                s.makespan(inst),
                render_gantt(inst, s, {.width = 60, .show_legend = false})
                    .c_str());
  }
  std::printf("%s", table.to_ascii().c_str());
  bench::write_table_csv(options, "fig04_static_orders", table);
  return 0;
}
