#include "bench_common.hpp"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <stdexcept>

#include "core/johnson.hpp"
#include "core/solver.hpp"
#include "report/csv.hpp"
#include "support/parallel_for.hpp"

namespace dts::bench {

Options Options::parse(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value_of = [&](const std::string& prefix) -> std::optional<std::string> {
      if (arg.rfind(prefix, 0) == 0) return arg.substr(prefix.size());
      return std::nullopt;
    };
    if (const auto traces = value_of("--traces=")) {
      options.traces = static_cast<std::size_t>(std::stoull(*traces));
    } else if (const auto seed = value_of("--seed=")) {
      options.seed = std::stoull(*seed);
    } else if (const auto dir = value_of("--csv-dir=")) {
      options.csv_dir = *dir;
    } else if (arg == "--quick") {
      options.traces = 25;
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "options: --traces=N (default 150)  --seed=S  --csv-dir=PATH "
          "(empty disables)  --quick (25 traces)\n");
      std::exit(0);
    } else {
      throw std::invalid_argument("unknown option: " + arg);
    }
  }
  return options;
}

std::vector<double> capacity_factors() {
  std::vector<double> factors;
  for (int k = 0; k <= 8; ++k) factors.push_back(1.0 + 0.125 * k);
  return factors;
}

std::vector<RatioCell> ratio_grid(const std::vector<Instance>& traces,
                                  const std::vector<double>& factors,
                                  const std::vector<HeuristicId>& ids) {
  // Per-trace OMIM and mc, computed once.
  std::vector<Time> omims(traces.size());
  std::vector<Mem> mcs(traces.size());
  parallel_for(0, traces.size(), [&](std::size_t t) {
    omims[t] = omim(traces[t]);
    mcs[t] = traces[t].min_capacity();
  });

  std::vector<RatioCell> grid;
  grid.reserve(factors.size() * ids.size());
  for (double factor : factors) {
    for (HeuristicId id : ids) {
      grid.push_back(RatioCell{id, factor, std::vector<double>(traces.size())});
    }
  }
  // Parallelize over traces; one SolveRequest per trace, re-aimed at each
  // capacity, is reused across heuristics. Bounds are precomputed above,
  // so the solve() calls skip them.
  SolveOptions options;
  options.compute_bounds = false;
  parallel_for(0, traces.size(), [&](std::size_t t) {
    SolveRequest request;
    request.instance = traces[t];
    for (std::size_t fi = 0; fi < factors.size(); ++fi) {
      request.capacity = mcs[t] * factors[fi];
      for (std::size_t hi = 0; hi < ids.size(); ++hi) {
        const Time ms =
            solve(request, name_of(ids[hi]), options).makespan;
        grid[fi * ids.size() + hi].ratios[t] =
            omims[t] > 0.0 ? ms / omims[t] : 1.0;
      }
    }
  });
  return grid;
}

const RatioCell* find_cell(const std::vector<RatioCell>& grid, HeuristicId id,
                           double factor) {
  for (const RatioCell& cell : grid) {
    if (cell.id == id && cell.factor == factor) return &cell;
  }
  return nullptr;
}

TextTable boxplot_panel(const std::vector<RatioCell>& grid,
                        const std::vector<HeuristicId>& ids, double factor) {
  TextTable table({"heuristic", "min", "q1", "median", "q3", "max",
                   "outliers"});
  for (HeuristicId id : ids) {
    const RatioCell* cell = find_cell(grid, id, factor);
    if (cell == nullptr) continue;
    const BoxplotSummary s = summarize(cell->ratios);
    table.add_row({std::string(name_of(id)), format_fixed(s.min, 4),
                   format_fixed(s.q1, 4), format_fixed(s.median, 4),
                   format_fixed(s.q3, 4), format_fixed(s.max, 4),
                   std::to_string(s.outliers.size())});
  }
  return table;
}

namespace {

std::optional<std::filesystem::path> csv_path(const Options& options,
                                              const std::string& figure) {
  if (options.csv_dir.empty()) return std::nullopt;
  std::filesystem::create_directories(options.csv_dir);
  return std::filesystem::path(options.csv_dir) / (figure + ".csv");
}

}  // namespace

void write_grid_csv(const Options& options, const std::string& figure,
                    const std::vector<RatioCell>& grid) {
  const auto path = csv_path(options, figure);
  if (!path) return;
  const std::vector<std::string> header{"heuristic", "capacity_factor",
                                        "trace", "ratio_to_omim"};
  std::vector<std::vector<std::string>> rows;
  for (const RatioCell& cell : grid) {
    for (std::size_t t = 0; t < cell.ratios.size(); ++t) {
      rows.push_back({std::string(name_of(cell.id)),
                      format_fixed(cell.factor, 3), std::to_string(t),
                      format_fixed(cell.ratios[t], 6)});
    }
  }
  write_csv_file(*path, header, rows);
  std::printf("[csv] %s\n", path->c_str());
}

void write_table_csv(const Options& options, const std::string& figure,
                     const TextTable& table) {
  const auto path = csv_path(options, figure);
  if (!path) return;
  write_csv_file(*path, table.headers(), table.body());
  std::printf("[csv] %s\n", path->c_str());
}

std::vector<FamilyCurve> best_variant_curves(
    const std::vector<RatioCell>& grid, const std::vector<double>& factors) {
  std::vector<FamilyCurve> curves;
  for (HeuristicCategory cat :
       {HeuristicCategory::kBaseline, HeuristicCategory::kStatic,
        HeuristicCategory::kDynamic, HeuristicCategory::kCorrected}) {
    FamilyCurve curve;
    curve.category = cat;
    const std::vector<HeuristicId> family = heuristics_in(cat);
    for (double factor : factors) {
      // Per trace, take the family's best ratio, then summarize.
      std::vector<double> best;
      for (HeuristicId id : family) {
        const RatioCell* cell = find_cell(grid, id, factor);
        if (cell == nullptr) continue;
        if (best.empty()) {
          best = cell->ratios;
        } else {
          for (std::size_t t = 0; t < best.size(); ++t) {
            best[t] = std::min(best[t], cell->ratios[t]);
          }
        }
      }
      const BoxplotSummary s = summarize(std::move(best));
      curve.median_per_factor.push_back(s.median);
      curve.mean_per_factor.push_back(s.mean);
    }
    curves.push_back(std::move(curve));
  }
  return curves;
}

std::vector<Instance> corpus(ChemistryKernel kernel, const Options& options) {
  return generate_process_traces(kernel, options.traces, options.seed);
}

}  // namespace dts::bench
