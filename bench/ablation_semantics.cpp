/// Ablation: memory-release semantics (DESIGN.md §7). The library releases
/// a task's memory at its computation-finish instant and makes it
/// available to a transfer starting at that same instant (half-open
/// intervals) — the semantics the paper's Fig. 2 reduction pattern
/// requires. This ablation quantifies what the alternative (closed
/// intervals: a transfer must start strictly after the release, emulated
/// by shrinking the capacity by epsilon) costs across the corpus.

#include <cstdio>

#include "bench_common.hpp"
#include "core/johnson.hpp"
#include "support/parallel_for.hpp"

int main(int argc, char** argv) {
  using namespace dts;
  const bench::Options options = bench::Options::parse(argc, argv);

  for (ChemistryKernel kernel :
       {ChemistryKernel::kHartreeFock, ChemistryKernel::kCoupledClusterSD}) {
    const std::vector<Instance> traces = bench::corpus(kernel, options);
    TextTable table({"capacity", "heuristic", "half-open median",
                     "closed median", "penalty"});
    for (double factor : {1.0, 1.5, 2.0}) {
      for (HeuristicId id :
           {HeuristicId::kOOSIM, HeuristicId::kLCMR, HeuristicId::kOOMAMR}) {
        std::vector<double> open_r(traces.size());
        std::vector<double> closed_r(traces.size());
        parallel_for(0, traces.size(), [&](std::size_t t) {
          const Time lower = omim(traces[t]);
          const Mem mc = traces[t].min_capacity();
          // Closed-interval emulation: shave one epsilon-task off the
          // capacity so exact back-to-back reuse no longer fits. The
          // smallest footprint in the trace is the natural epsilon.
          Mem eps = mc;
          for (const Task& task : traces[t]) {
            if (task.mem > 0.0) eps = std::min(eps, task.mem);
          }
          const Mem cap = mc * factor;
          // Clamp: the largest task must still fit, or no schedule exists.
          const Mem closed_cap = std::max(cap - 0.5 * eps, mc);
          open_r[t] = heuristic_makespan(id, traces[t], cap) / lower;
          closed_r[t] = heuristic_makespan(id, traces[t], closed_cap) / lower;
        });
        const double open_med = summarize(std::move(open_r)).median;
        const double closed_med = summarize(std::move(closed_r)).median;
        table.add_row({format_fixed(factor, 3) + " mc",
                       std::string(name_of(id)), format_fixed(open_med, 4),
                       format_fixed(closed_med, 4),
                       format_fixed(100.0 * (closed_med / open_med - 1.0), 2) +
                           "%"});
      }
    }
    std::printf("Ablation (release semantics) — %s over %zu traces:\n%s\n",
                std::string(to_string(kernel)).c_str(), traces.size(),
                table.to_ascii().c_str());
    bench::write_table_csv(options,
                           std::string("ablation_semantics_") +
                               std::string(to_string(kernel)),
                           table);
  }
  return 0;
}
