/// Fig. 12 — CCSD: the best variant of each heuristic family versus
/// memory capacity. Shape to reproduce: dynamic and corrections beat
/// static under tight memory; corrections lead at moderate capacity;
/// static closes the gap near 2 mc.

#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace dts;
  const bench::Options options = bench::Options::parse(argc, argv);

  const std::vector<Instance> traces =
      bench::corpus(ChemistryKernel::kCoupledClusterSD, options);
  const std::vector<double> factors = bench::capacity_factors();
  const std::vector<bench::RatioCell> grid =
      bench::ratio_grid(traces, factors, all_heuristic_ids());
  const auto curves = bench::best_variant_curves(grid, factors);

  TextTable table({"capacity", "OS", "Best Static", "Best Dynamic",
                   "Best Static Dynamic"});
  for (std::size_t f = 0; f < factors.size(); ++f) {
    std::vector<std::string> row{format_fixed(factors[f], 3) + " mc"};
    for (const bench::FamilyCurve& curve : curves) {
      row.push_back(format_fixed(curve.median_per_factor[f], 4));
    }
    table.add_row(std::move(row));
  }
  std::printf("Fig. 12 — CCSD best variants (median ratio to OMIM over %zu "
              "traces):\n%s",
              traces.size(), table.to_ascii().c_str());
  bench::write_table_csv(options, "fig12_ccsd_best", table);
  return 0;
}
