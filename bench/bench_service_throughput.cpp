/// Solver-service throughput — the result cache's report card.
///
/// For HF and CCSD corpora, runs a duplicate-heavy request mix (a few
/// distinct shapes, many repeats — the serving workload the cache is
/// for) through a SolverService twice:
///
///  * cold: every distinct shape once on a fresh service — all cache
///    misses, each paying a full solve;
///  * warm: the full duplicate-heavy stream — all cache hits, each
///    re-costed from the cached canonical order at response time.
///
/// Before any number is reported, every warm response is cross-checked
/// bitwise (winner, makespan, evaluations, order, every schedule start
/// time) against its cold response, and every cold response against a
/// direct dts::solve() of the same request — a cache that serves
/// different bytes fails the bench, it does not get a throughput row.
/// The acceptance bar warm_cold_speedup >= 10 is enforced here with a
/// hard exit, and the ratio is additionally baseline-guarded in CI via
/// tools/check_bench_baseline.py (it is machine-robust: both passes run
/// on the same machine seconds apart).
///
///   bench_service_throughput [--quick] [--traces=N] [--seed=S]
///                            [--json=FILE] (default
///                            BENCH_service_throughput.json)

#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/solver.hpp"
#include "report/stats.hpp"
#include "service/service.hpp"
#include "trace/generators.hpp"

namespace {

using namespace dts;

constexpr double kRequiredSpeedup = 10.0;

std::string take_json_flag(int& argc, char** argv) {
  std::string json = "BENCH_service_throughput.json";
  int w = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--json=", 0) == 0) {
      json = arg.substr(7);
    } else {
      argv[w++] = argv[i];
    }
  }
  argc = w;
  return json;
}

struct ServiceRow {
  std::string kernel;
  std::string mode = "service";
  std::size_t distinct = 0;       ///< Distinct shapes (cold solves).
  std::uint64_t requests = 0;     ///< Warm-stream requests (all hits).
  double cold_requests_per_sec = 0.0;
  double warm_requests_per_sec = 0.0;
  double warm_cold_speedup = 0.0;
  double median_makespan_seconds = 0.0;
};

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

bool identical(const ServiceResponse& a, const ServiceResponse& b) {
  if (a.winner != b.winner || a.makespan != b.makespan ||
      a.evaluations != b.evaluations || a.order != b.order ||
      a.schedule.size() != b.schedule.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.schedule.size(); ++i) {
    if (a.schedule[i].comm_start != b.schedule[i].comm_start ||
        a.schedule[i].comp_start != b.schedule[i].comp_start) {
      return false;
    }
  }
  return true;
}

/// One kernel row: cold pass, bitwise anchor against direct solves, warm
/// duplicate-heavy pass, bitwise warm==cold check. Returns false (no
/// row) on any mismatch.
bool measure(const std::vector<Instance>& shapes, std::uint64_t repeats,
             ServiceRow& row) {
  ServiceOptions service_options;
  service_options.workers = 2;
  SolverService service(service_options);

  std::vector<ServiceRequest> requests(shapes.size());
  for (std::size_t s = 0; s < shapes.size(); ++s) {
    requests[s].id = std::to_string(s);
    requests[s].instance = shapes[s];
    requests[s].capacity = 1.5 * shapes[s].min_capacity();
  }

  // Cold: each distinct shape pays a full solve.
  std::vector<ServiceResponse> cold(shapes.size());
  const auto cold_start = std::chrono::steady_clock::now();
  for (std::size_t s = 0; s < shapes.size(); ++s) {
    cold[s] = service.handle(requests[s]);
  }
  const double cold_wall = seconds_since(cold_start);

  std::vector<double> makespans;
  for (std::size_t s = 0; s < shapes.size(); ++s) {
    if (cold[s].status != WireResponse::Status::kOk) {
      std::fprintf(stderr, "cold solve %zu failed: %s\n", s,
                   cold[s].error.c_str());
      return false;
    }
    // Anchor: the service's cold answer is exactly a direct solve.
    SolveRequest direct;
    direct.instance = shapes[s];
    direct.capacity = *requests[s].capacity;
    SolveOptions options;
    options.compute_bounds = false;
    const SolveResult fresh = solve(direct, "auto", options);
    if (cold[s].winner != fresh.winner ||
        cold[s].makespan != fresh.makespan ||
        cold[s].order != fresh.schedule.comm_order()) {
      std::fprintf(stderr,
                   "BITWISE MISMATCH shape %zu: service cold vs direct "
                   "solve (makespan %.17g vs %.17g)\n",
                   s, cold[s].makespan, fresh.makespan);
      return false;
    }
    makespans.push_back(cold[s].makespan);
  }

  // Warm: the duplicate-heavy stream, strided so consecutive requests
  // alternate shapes (no trivially-hot single entry).
  row.requests = repeats * shapes.size();
  bool match = true;
  const auto warm_start = std::chrono::steady_clock::now();
  for (std::uint64_t rep = 0; rep < repeats && match; ++rep) {
    for (std::size_t s = 0; s < shapes.size(); ++s) {
      const ServiceResponse warm = service.handle(requests[s]);
      if (warm.status != WireResponse::Status::kOk ||
          warm.cache != WireResponse::CacheOutcome::kHit ||
          !identical(warm, cold[s])) {
        std::fprintf(stderr,
                     "BITWISE MISMATCH shape %zu rep %llu: warm response "
                     "differs from cold\n",
                     s, static_cast<unsigned long long>(rep));
        match = false;
        break;
      }
    }
  }
  const double warm_wall = seconds_since(warm_start);
  if (!match) return false;

  const ServiceCounters counters = service.counters();
  if (counters.cache.hits != row.requests ||
      counters.cache.misses != shapes.size()) {
    std::fprintf(stderr, "cache counters do not reconcile\n");
    return false;
  }

  row.distinct = shapes.size();
  row.cold_requests_per_sec =
      cold_wall > 0.0 ? static_cast<double>(shapes.size()) / cold_wall : 0.0;
  row.warm_requests_per_sec =
      warm_wall > 0.0 ? static_cast<double>(row.requests) / warm_wall : 0.0;
  row.warm_cold_speedup =
      cold_wall > 0.0 && warm_wall > 0.0
          ? row.warm_requests_per_sec / row.cold_requests_per_sec
          : 0.0;
  row.median_makespan_seconds = summarize(makespans).median;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = take_json_flag(argc, argv);
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--quick") quick = true;
  }
  const bench::Options options = bench::Options::parse(argc, argv);

  // Duplicate-heavy mix: a handful of distinct shapes, many repeats.
  const std::size_t distinct = quick ? 6 : 16;
  const std::uint64_t repeats = quick ? 200 : 500;

  std::printf("solver-service throughput — %zu distinct shapes/kernel, "
              "%llu warm repeats each, warm==cold checked bitwise\n\n",
              distinct, static_cast<unsigned long long>(repeats));

  std::vector<ServiceRow> rows;
  TextTable table({"kernel", "mode", "distinct", "requests", "cold req/s",
                   "warm req/s", "speedup", "median makespan"});

  for (ChemistryKernel kernel : {ChemistryKernel::kHartreeFock,
                                 ChemistryKernel::kCoupledClusterSD}) {
    bench::Options corpus_options = options;
    corpus_options.traces = distinct;
    const std::vector<Instance> shapes = bench::corpus(kernel, corpus_options);

    ServiceRow row;
    row.kernel = std::string(to_string(kernel));
    if (!measure(shapes, repeats, row)) {
      std::fprintf(stderr,
                   "cached responses are not bitwise identical to fresh "
                   "solves on %s — refusing to report throughput\n",
                   row.kernel.c_str());
      return 1;
    }
    rows.push_back(row);

    char distinct_text[16], req_text[24], cold_text[24], warm_text[24],
        speedup_text[16], ms_text[32];
    std::snprintf(distinct_text, sizeof distinct_text, "%zu", row.distinct);
    std::snprintf(req_text, sizeof req_text, "%llu",
                  static_cast<unsigned long long>(row.requests));
    std::snprintf(cold_text, sizeof cold_text, "%.3g",
                  row.cold_requests_per_sec);
    std::snprintf(warm_text, sizeof warm_text, "%.3g",
                  row.warm_requests_per_sec);
    std::snprintf(speedup_text, sizeof speedup_text, "%.1fx",
                  row.warm_cold_speedup);
    std::snprintf(ms_text, sizeof ms_text, "%.6g s",
                  row.median_makespan_seconds);
    table.add_row({row.kernel, row.mode, distinct_text, req_text, cold_text,
                   warm_text, speedup_text, ms_text});
  }

  std::printf("%s", table.to_ascii().c_str());

  for (const ServiceRow& row : rows) {
    if (row.warm_cold_speedup < kRequiredSpeedup) {
      std::fprintf(stderr,
                   "\nwarm/cold speedup %.2fx on %s is below the required "
                   "%.0fx — the cache is not earning its keep\n",
                   row.warm_cold_speedup, row.kernel.c_str(),
                   kRequiredSpeedup);
      return 1;
    }
  }

  std::ofstream json(json_path);
  if (!json) {
    std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
    return 1;
  }
  json << "{\n  \"bench\": \"service_throughput\",\n  \"distinct_shapes\": "
       << distinct << ",\n  \"warm_repeats\": " << repeats
       << ",\n  \"rows\": [\n";
  json.precision(12);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const ServiceRow& row = rows[i];
    json << "    {\"kernel\": \"" << row.kernel << "\", \"mode\": \""
         << row.mode << "\", \"distinct\": " << row.distinct
         << ", \"requests\": " << row.requests
         << ", \"cold_requests_per_sec\": " << row.cold_requests_per_sec
         << ", \"warm_requests_per_sec\": " << row.warm_requests_per_sec
         << ", \"warm_cold_speedup\": " << row.warm_cold_speedup
         << ", \"median_makespan_seconds\": " << row.median_makespan_seconds
         << "}" << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  std::printf("\nwrote %s (%zu rows)\n", json_path.c_str(), rows.size());
  return 0;
}
