/// Fig. 5 / Table 4 — the three dynamic heuristic schedules on the Table 4
/// instance with capacity 6.

#include <cstdio>

#include "bench_common.hpp"
#include "heuristics/dynamic.hpp"
#include "report/gantt.hpp"

int main(int argc, char** argv) {
  using namespace dts;
  const bench::Options options = bench::Options::parse(argc, argv);

  const Instance inst =
      Instance::from_comm_comp({{3, 2}, {1, 6}, {4, 6}, {5, 1}});
  constexpr Mem kCapacity = 6.0;

  std::printf("Fig. 5 — dynamic heuristics on Table 4 (capacity 6):\n\n");
  TextTable table({"heuristic", "realized order", "makespan", "paper"});
  const struct {
    DynamicCriterion criterion;
    const char* expected;
  } rows[] = {
      {DynamicCriterion::kLargestComm, "23"},
      {DynamicCriterion::kSmallestComm, "25"},
      {DynamicCriterion::kMaxAcceleration, "24"},
  };
  for (const auto& row : rows) {
    const Schedule s = schedule_dynamic(inst, row.criterion, kCapacity);
    std::string order_str;
    for (TaskId id : s.comm_order()) order_str += static_cast<char>('A' + id);
    table.add_row({std::string(to_acronym(row.criterion)), order_str,
                   format_fixed(s.makespan(inst), 0), row.expected});
    std::printf("%s (order %s), makespan %.0f:\n%s\n",
                std::string(to_acronym(row.criterion)).c_str(),
                order_str.c_str(), s.makespan(inst),
                render_gantt(inst, s, {.width = 60, .show_legend = false})
                    .c_str());
  }
  std::printf("%s", table.to_ascii().c_str());
  bench::write_table_csv(options, "fig05_dynamic", table);
  return 0;
}
