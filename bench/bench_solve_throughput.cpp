/// Solve-engine throughput — the data-oriented fast path's report card.
/// For HF and CCSD corpora in both single-channel (paper machine) and
/// duplex-PCIe mixes, measures:
///
///  * candidate evaluations/second over a local-search-style neighborhood
///    (every adjacent swap of the Johnson order), on BOTH engines:
///      - legacy: the pre-fast-path scoring loop — a fresh ExecutionState
///        plus Schedule per candidate, execute_order, Schedule::makespan;
///      - fast path: one CompiledInstance + PrefixResumeEvaluator, the
///        loop every solver now runs.
///    The two passes evaluate the identical candidate stream and their
///    makespans are cross-checked bitwise before any number is reported.
///  * candidate_eval_speedup = fastpath / legacy — a machine-robust ratio
///    (both passes run on the same machine seconds apart).
///  * end-to-end local-search solves/second over the corpus, plus the
///    median solved makespan (deterministic, baseline-guarded tightly).
///
/// Output lands in BENCH_solve_throughput.json; CI guards the columns via
/// tools/check_bench_baseline.py (throughput columns use the asymmetric
/// lower-is-regression rule with a lax tolerance, the makespan column the
/// strict one).
///
///   bench_solve_throughput [--quick] [--traces=N] [--seed=S]
///                          [--json=FILE]  (default BENCH_solve_throughput.json)

#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/compiled.hpp"
#include "core/johnson.hpp"
#include "core/simulate.hpp"
#include "core/solver.hpp"
#include "report/stats.hpp"
#include "trace/generators.hpp"

namespace {

using namespace dts;

std::string take_json_flag(int& argc, char** argv) {
  std::string json = "BENCH_solve_throughput.json";
  int w = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--json=", 0) == 0) {
      json = arg.substr(7);
    } else {
      argv[w++] = argv[i];
    }
  }
  argc = w;
  return json;
}

struct ThroughputRow {
  std::string kernel;
  std::string mode;  // "single" or "duplex"
  std::size_t median_tasks = 0;
  std::uint64_t candidates = 0;
  double legacy_candidate_evals_per_sec = 0.0;
  double fastpath_candidate_evals_per_sec = 0.0;
  double candidate_eval_speedup = 0.0;
  double solves_per_sec = 0.0;
  double median_makespan_seconds = 0.0;
};

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// The pre-fast-path candidate scoring step, verbatim: fresh engine and
/// schedule per candidate, full simulation, makespan scan.
Time legacy_candidate_eval(const Instance& inst,
                           std::span<const TaskId> order, Mem capacity) {
  ExecutionState state(capacity, inst.num_channels());
  Schedule sched(inst.size());
  execute_order(inst, order, state, sched);
  return sched.makespan(inst);
}

/// One (kernel, mode) row: neighborhood-eval throughput on both engines
/// plus end-to-end solves. Returns false on a bitwise makespan mismatch
/// between the two engines (the bench then fails).
bool measure(const std::vector<Instance>& corpus, ThroughputRow& row,
             bool quick) {
  // The candidate sweep uses a slice of the corpus; repeats scale the
  // stream to enough evaluations for a stable clock on both engines.
  const std::size_t sweep_traces = std::min<std::size_t>(corpus.size(),
                                                         quick ? 4 : 12);
  std::vector<std::vector<TaskId>> bases(sweep_traces);
  std::vector<Mem> capacities(sweep_traces);
  std::size_t sweep_size = 0;
  std::vector<std::size_t> tasks;
  for (const Instance& inst : corpus) tasks.push_back(inst.size());
  for (std::size_t t = 0; t < sweep_traces; ++t) {
    bases[t] = johnson_order(corpus[t]);
    capacities[t] = 1.5 * corpus[t].min_capacity();
    sweep_size += bases[t].size() - 1;
  }
  const std::uint64_t target = quick ? 20000 : 60000;
  const std::uint64_t repeats = std::max<std::uint64_t>(
      1, target / std::max<std::size_t>(sweep_size, 1));
  row.candidates = repeats * sweep_size;
  {
    std::vector<double> sorted_tasks(tasks.begin(), tasks.end());
    row.median_tasks = static_cast<std::size_t>(summarize(sorted_tasks).median);
  }

  // Pass 1: legacy engine. Makespans of the first repeat are kept for the
  // bitwise cross-check.
  std::vector<Time> legacy_ms;
  legacy_ms.reserve(sweep_size);
  const auto legacy_start = std::chrono::steady_clock::now();
  for (std::uint64_t rep = 0; rep < repeats; ++rep) {
    for (std::size_t t = 0; t < sweep_traces; ++t) {
      std::vector<TaskId>& order = bases[t];
      for (std::size_t i = 0; i + 1 < order.size(); ++i) {
        std::swap(order[i], order[i + 1]);
        const Time ms = legacy_candidate_eval(corpus[t], order,
                                              capacities[t]);
        std::swap(order[i], order[i + 1]);
        if (rep == 0) legacy_ms.push_back(ms);
      }
    }
  }
  const double legacy_wall = seconds_since(legacy_start);

  // Pass 2: the fast path, identical candidate stream.
  std::size_t check = 0;
  bool match = true;
  const auto fast_start = std::chrono::steady_clock::now();
  for (std::size_t t = 0; t < sweep_traces && match; ++t) {
    const CompiledInstance compiled(corpus[t]);
    PrefixResumeEvaluator evaluator(compiled, capacities[t]);
    (void)evaluator.set_reference(bases[t]);
    std::vector<TaskId>& order = bases[t];
    for (std::uint64_t rep = 0; rep < repeats && match; ++rep) {
      for (std::size_t i = 0; i + 1 < order.size(); ++i) {
        std::swap(order[i], order[i + 1]);
        const Time ms = evaluator.evaluate(order);
        std::swap(order[i], order[i + 1]);
        if (rep == 0 && ms != legacy_ms[check + i]) {
          std::fprintf(stderr,
                       "BITWISE MISMATCH trace %zu candidate %zu: "
                       "legacy %.17g fast %.17g\n",
                       t, i, legacy_ms[check + i], ms);
          match = false;
          break;
        }
      }
    }
    check += order.size() - 1;
  }
  const double fast_wall = seconds_since(fast_start);
  if (!match) return false;

  const double evals = static_cast<double>(row.candidates);
  row.legacy_candidate_evals_per_sec =
      legacy_wall > 0.0 ? evals / legacy_wall : 0.0;
  row.fastpath_candidate_evals_per_sec =
      fast_wall > 0.0 ? evals / fast_wall : 0.0;
  row.candidate_eval_speedup =
      legacy_wall > 0.0 && fast_wall > 0.0 ? legacy_wall / fast_wall : 0.0;

  // End-to-end local-search solves over the whole corpus (deterministic
  // seed, so the median makespan doubles as a correctness guard).
  std::vector<double> makespans;
  const auto solve_start = std::chrono::steady_clock::now();
  for (const Instance& inst : corpus) {
    SolveRequest request;
    request.instance = inst;
    request.capacity = 1.5 * inst.min_capacity();
    SolveOptions options;
    options.compute_bounds = false;
    makespans.push_back(solve(request, "local-search", options).makespan);
  }
  const double solve_wall = seconds_since(solve_start);
  row.solves_per_sec =
      solve_wall > 0.0 ? static_cast<double>(corpus.size()) / solve_wall : 0.0;
  row.median_makespan_seconds = summarize(makespans).median;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = take_json_flag(argc, argv);
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--quick") quick = true;
  }
  const bench::Options options = bench::Options::parse(argc, argv);

  std::printf("solve-engine throughput — %zu traces/kernel, legacy vs "
              "fast-path candidate scoring\n\n",
              options.traces);

  std::vector<ThroughputRow> rows;
  TextTable table({"kernel", "mode", "median n", "candidates", "legacy evals/s",
                   "fastpath evals/s", "speedup", "solves/s",
                   "median makespan"});

  for (ChemistryKernel kernel : {ChemistryKernel::kHartreeFock,
                                 ChemistryKernel::kCoupledClusterSD}) {
    for (const bool duplex : {false, true}) {
      std::vector<Instance> corpus;
      if (duplex) {
        TraceConfig config;
        config.machine = MachineModel::duplex_pcie();
        corpus = generate_process_traces(kernel, options.traces, options.seed,
                                         config);
      } else {
        corpus = bench::corpus(kernel, options);
      }

      ThroughputRow row;
      row.kernel = std::string(to_string(kernel));
      row.mode = duplex ? "duplex" : "single";
      if (!measure(corpus, row, quick)) {
        std::fprintf(stderr,
                     "fast path disagrees with the reference engine on "
                     "%s/%s — refusing to report throughput\n",
                     row.kernel.c_str(), row.mode.c_str());
        return 1;
      }
      rows.push_back(row);

      char n_text[16], cand_text[24], legacy_text[24], fast_text[24],
          speedup_text[16], solve_text[16], ms_text[32];
      std::snprintf(n_text, sizeof n_text, "%zu", row.median_tasks);
      std::snprintf(cand_text, sizeof cand_text, "%llu",
                    static_cast<unsigned long long>(row.candidates));
      std::snprintf(legacy_text, sizeof legacy_text, "%.3g",
                    row.legacy_candidate_evals_per_sec);
      std::snprintf(fast_text, sizeof fast_text, "%.3g",
                    row.fastpath_candidate_evals_per_sec);
      std::snprintf(speedup_text, sizeof speedup_text, "%.1fx",
                    row.candidate_eval_speedup);
      std::snprintf(solve_text, sizeof solve_text, "%.1f",
                    row.solves_per_sec);
      std::snprintf(ms_text, sizeof ms_text, "%.6g s",
                    row.median_makespan_seconds);
      table.add_row({row.kernel, row.mode, n_text, cand_text, legacy_text,
                     fast_text, speedup_text, solve_text, ms_text});
    }
  }

  std::printf("%s", table.to_ascii().c_str());

  std::ofstream json(json_path);
  if (!json) {
    std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
    return 1;
  }
  json << "{\n  \"bench\": \"solve_throughput\",\n  \"traces_per_kernel\": "
       << options.traces << ",\n  \"rows\": [\n";
  json.precision(12);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const ThroughputRow& row = rows[i];
    json << "    {\"kernel\": \"" << row.kernel << "\", \"mode\": \""
         << row.mode << "\", \"median_tasks\": " << row.median_tasks
         << ", \"candidates\": " << row.candidates
         << ", \"legacy_candidate_evals_per_sec\": "
         << row.legacy_candidate_evals_per_sec
         << ", \"fastpath_candidate_evals_per_sec\": "
         << row.fastpath_candidate_evals_per_sec
         << ", \"candidate_eval_speedup\": " << row.candidate_eval_speedup
         << ", \"solves_per_sec\": " << row.solves_per_sec
         << ", \"median_makespan_seconds\": " << row.median_makespan_seconds
         << "}" << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  std::printf("\nwrote %s (%zu rows)\n", json_path.c_str(), rows.size());
  return 0;
}
