/// Ablation: how much makespan do the paper's one-shot heuristics leave on
/// the table? Local search (heuristics/local_search.hpp) refines the best
/// registry schedule under the true memory-constrained engine; the
/// remaining gap to the capacity-aware lower bound brackets the possible
/// further improvement. Run on a subsample of the corpus (local search is
/// ~1000x the cost of a heuristic).

#include <cstdio>

#include "bench_common.hpp"
#include "core/auto_scheduler.hpp"
#include "exact/lower_bounds.hpp"
#include "heuristics/local_search.hpp"
#include "support/parallel_for.hpp"

int main(int argc, char** argv) {
  using namespace dts;
  bench::Options options = bench::Options::parse(argc, argv);
  options.traces = std::min<std::size_t>(options.traces, 12);

  for (ChemistryKernel kernel :
       {ChemistryKernel::kHartreeFock, ChemistryKernel::kCoupledClusterSD}) {
    const std::vector<Instance> traces = bench::corpus(kernel, options);
    TextTable table({"capacity", "best heuristic (median)",
                     "after local search", "gain", "lower bound gap left"});
    for (double factor : {1.0, 1.5, 2.0}) {
      std::vector<double> heuristic_r(traces.size());
      std::vector<double> improved_r(traces.size());
      std::vector<double> bound_gap(traces.size());
      parallel_for(0, traces.size(), [&](std::size_t t) {
        const Mem capacity = traces[t].min_capacity() * factor;
        const CapacityAwareBounds lb =
            capacity_aware_bounds(traces[t], capacity);
        LocalSearchOptions ls;
        ls.max_iterations = 4000;
        ls.max_no_improve = 800;
        ls.seed = t + 1;
        const LocalSearchResult res =
            schedule_local_search(traces[t], capacity, ls);
        heuristic_r[t] = res.initial_makespan / lb.omim;
        improved_r[t] = res.makespan / lb.omim;
        bound_gap[t] = res.makespan / lb.combined - 1.0;
      });
      const double med_h = summarize(std::move(heuristic_r)).median;
      const double med_i = summarize(std::move(improved_r)).median;
      const double med_gap = summarize(std::move(bound_gap)).median;
      table.add_row({format_fixed(factor, 3) + " mc", format_fixed(med_h, 4),
                     format_fixed(med_i, 4),
                     format_fixed(100.0 * (1.0 - med_i / med_h), 2) + "%",
                     format_fixed(100.0 * med_gap, 2) + "%"});
    }
    std::printf("Ablation (local-search headroom) — %s over %zu traces:\n%s\n",
                std::string(to_string(kernel)).c_str(), traces.size(),
                table.to_ascii().c_str());
    bench::write_table_csv(options,
                           std::string("ablation_local_search_") +
                               std::string(to_string(kernel)),
                           table);
  }
  return 0;
}
