/// Fig. 13 — scheduling in batches of 100 tasks: the best variant of each
/// family when the scheduler only sees 100 tasks at a time (paper §6.3),
/// for both kernels. Shape to reproduce: same family ordering as the
/// full-visibility Figs. 10/12 — corrections variants reach the most
/// overlap.

#include <cstdio>

#include "bench_common.hpp"
#include "core/johnson.hpp"
#include "core/solver.hpp"
#include "support/parallel_for.hpp"

namespace {

constexpr std::size_t kBatch = 100;

}  // namespace

int main(int argc, char** argv) {
  using namespace dts;
  const bench::Options options = bench::Options::parse(argc, argv);

  for (ChemistryKernel kernel :
       {ChemistryKernel::kHartreeFock, ChemistryKernel::kCoupledClusterSD}) {
    const std::vector<Instance> traces = bench::corpus(kernel, options);
    const std::vector<double> factors = bench::capacity_factors();

    std::vector<Time> omims(traces.size());
    std::vector<Mem> mcs(traces.size());
    parallel_for(0, traces.size(), [&](std::size_t t) {
      omims[t] = omim(traces[t]);
      mcs[t] = traces[t].min_capacity();
    });

    // Per family and factor: median over traces of the family's best
    // batched ratio.
    TextTable table({"capacity", "OS", "Best Static", "Best Dynamic",
                     "Best Static Dynamic"});
    for (double factor : factors) {
      std::vector<std::string> row{format_fixed(factor, 3) + " mc"};
      for (HeuristicCategory cat :
           {HeuristicCategory::kBaseline, HeuristicCategory::kStatic,
            HeuristicCategory::kDynamic, HeuristicCategory::kCorrected}) {
        const std::vector<HeuristicId> family = heuristics_in(cat);
        std::vector<double> best(traces.size());
        SolveOptions solve_options;
        solve_options.compute_bounds = false;
        parallel_for(0, traces.size(), [&](std::size_t t) {
          SolveRequest request;
          request.instance = traces[t];
          request.capacity = mcs[t] * factor;
          request.batch_size = kBatch;  // §6.3 visibility window
          double best_ratio = kInfiniteTime;
          for (HeuristicId id : family) {
            const Time ms = solve(request, name_of(id), solve_options).makespan;
            best_ratio = std::min(best_ratio, ms / omims[t]);
          }
          best[t] = best_ratio;
        });
        row.push_back(format_fixed(summarize(std::move(best)).median, 4));
      }
      table.add_row(std::move(row));
      std::printf(".");
      std::fflush(stdout);
    }
    std::printf("\nFig. 13 — %s, batches of %zu tasks (median best ratio "
                "per family over %zu traces):\n%s\n",
                std::string(to_string(kernel)).c_str(), kBatch, traces.size(),
                table.to_ascii().c_str());
    bench::write_table_csv(options,
                           std::string("fig13_batches_") +
                               std::string(to_string(kernel)),
                           table);
  }
  return 0;
}
