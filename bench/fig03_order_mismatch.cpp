/// Fig. 3 / Table 2 / Proposition 1 — with a memory capacity of 10, the
/// optimal schedule for the Table 2 instance serves the two resources in
/// *different* orders. Regenerates both schedules: the best permutation
/// schedule and the best pair-order schedule, plus the paper's published
/// figures for comparison.

#include <cstdio>

#include "bench_common.hpp"
#include "core/simulate.hpp"
#include "exact/branch_bound.hpp"
#include "exact/exhaustive.hpp"
#include "report/gantt.hpp"

int main(int argc, char** argv) {
  using namespace dts;
  const bench::Options options = bench::Options::parse(argc, argv);

  const Instance inst = Instance::from_comm_comp(
      {{0, 5}, {4, 3}, {1, 6}, {3, 7}, {6, 0.5}, {7, 0.5}});
  constexpr Mem kCapacity = 10.0;

  TextTable table({"schedule space", "makespan", "comm order", "comp order"});
  const auto order_string = [&](const std::vector<TaskId>& order) {
    std::string s;
    for (TaskId id : order) s += static_cast<char>('A' + id);
    return s;
  };

  // Paper's Fig. 3a (common order A B D E C F): makespan 23.
  {
    const std::vector<TaskId> fig3a{0, 1, 3, 4, 2, 5};
    const Schedule s = simulate_order(inst, fig3a, kCapacity);
    table.add_row({"paper Fig. 3a (common)", format_fixed(s.makespan(inst), 1),
                   order_string(fig3a), order_string(fig3a)});
  }
  // Best permutation schedule found exhaustively. Documented deviation:
  // the order A B D F C E reaches 22.5 (< the paper's 23) by starting F's
  // transfer exactly when B's computation releases its memory — the
  // boundary semantics the paper's own Fig. 2 pattern requires.
  const ExhaustiveResult common = best_common_order(inst, kCapacity);
  table.add_row({"best common order (exhaustive)",
                 format_fixed(common.makespan, 1), order_string(common.order),
                 order_string(common.order)});

  // Best schedule with independent orders: 22 (paper Fig. 3b).
  const PairOrderResult pair = best_pair_order(inst, kCapacity);
  table.add_row({"best independent orders (B&B)",
                 format_fixed(pair.makespan, 1), order_string(pair.comm_order),
                 order_string(pair.comp_order)});

  std::printf("Fig. 3 / Proposition 1 — Table 2 instance, capacity 10:\n%s\n",
              table.to_ascii().c_str());
  std::printf("pairs explored by the branch & bound: %llu\n\n",
              static_cast<unsigned long long>(pair.pairs_simulated));

  std::printf("best permutation schedule (%.1f):\n%s\n", common.makespan,
              render_gantt(inst, common.schedule, {.width = 72}).c_str());
  std::printf("best pair-order schedule (%.1f):\n%s", pair.makespan,
              render_gantt(inst, pair.schedule, {.width = 72}).c_str());

  bench::write_table_csv(options, "fig03_order_mismatch", table);
  return 0;
}
