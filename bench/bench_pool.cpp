/// \file bench_pool.cpp
/// Throughput scaling of the SolverPool service: a fixed mix of HF (and
/// optionally CCSD) process traces is pushed through the pool at 1..N
/// workers, measuring jobs/sec and the speedup over the 1-worker baseline.
/// The acceptance target for the service layer is >2.5x jobs/sec at 4
/// workers on a 64-instance HF mix (requires >= 4 hardware cores; the
/// table prints the detected core count so undersized machines are
/// self-explanatory).
///
///   ./bench_pool [--traces=N] [--seed=S] [--solver=NAME] [--mix=hf|hf+ccsd]
///                [--max-workers=W] [--csv-dir=PATH]

#include <chrono>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/pool.hpp"
#include "report/table.hpp"
#include "support/parallel_for.hpp"
#include "trace/generators.hpp"

namespace {

using namespace dts;

struct PoolBenchConfig {
  std::size_t traces = 64;
  std::uint64_t seed = 1;
  std::string solver = "auto";
  bool with_ccsd = false;
  std::size_t max_workers = 8;
  std::string csv_dir = "bench_csv";
};

PoolBenchConfig parse_args(int argc, char** argv) {
  PoolBenchConfig config;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&](const std::string& prefix) {
      return arg.substr(prefix.size());
    };
    if (arg.rfind("--traces=", 0) == 0) {
      config.traces = std::stoul(value("--traces="));
    } else if (arg.rfind("--seed=", 0) == 0) {
      config.seed = std::stoull(value("--seed="));
    } else if (arg.rfind("--solver=", 0) == 0) {
      config.solver = value("--solver=");
    } else if (arg.rfind("--mix=", 0) == 0) {
      config.with_ccsd = value("--mix=") == "hf+ccsd";
    } else if (arg.rfind("--max-workers=", 0) == 0) {
      config.max_workers = std::stoul(value("--max-workers="));
    } else if (arg.rfind("--csv-dir=", 0) == 0) {
      config.csv_dir = value("--csv-dir=");
    } else {
      std::cerr << "unknown argument '" << arg << "'\n";
      std::exit(2);
    }
  }
  return config;
}

std::vector<JobRequest> build_jobs(const PoolBenchConfig& config) {
  TraceConfig trace_config;
  trace_config.min_tasks = 300;
  trace_config.max_tasks = 800;
  std::vector<JobRequest> jobs;
  jobs.reserve(config.traces);
  for (std::size_t k = 0; k < config.traces; ++k) {
    trace_config.seed = config.seed + k;
    const ChemistryKernel kernel =
        (config.with_ccsd && k % 2 == 1) ? ChemistryKernel::kCoupledClusterSD
                                         : ChemistryKernel::kHartreeFock;
    JobRequest job;
    job.request.instance = generate_trace(kernel, trace_config);
    job.request.capacity = 1.25 * job.request.instance.min_capacity();
    job.solver = config.solver;
    // No redundant bound recomputation in the hot loop; inner candidate
    // fan-out runs on the pool's own crew (run_job sets the executor).
    job.options.compute_bounds = false;
    job.tag = std::string(to_string(kernel)) + "/" + std::to_string(k);
    jobs.push_back(std::move(job));
  }
  return jobs;
}

}  // namespace

int main(int argc, char** argv) {
  const PoolBenchConfig config = parse_args(argc, argv);
  const std::vector<JobRequest> jobs = build_jobs(config);

  std::cout << "SolverPool throughput: " << jobs.size() << " "
            << (config.with_ccsd ? "HF+CCSD" : "HF") << " traces, solver "
            << config.solver << ", " << parallel_workers()
            << " hardware workers available\n";

  std::vector<std::size_t> worker_counts;
  for (std::size_t w = 1; w <= config.max_workers; w *= 2) {
    worker_counts.push_back(w);
  }

  TextTable table({"workers", "wall (s)", "jobs/sec", "speedup vs 1"});
  std::vector<std::vector<std::string>> csv_rows;
  double base_wall = 0.0;
  for (const std::size_t workers : worker_counts) {
    SolverPoolOptions pool_options;
    pool_options.workers = workers;
    pool_options.queue_capacity = jobs.size() + 1;
    SolverPool pool(pool_options);

    const auto start = std::chrono::steady_clock::now();
    const std::vector<JobOutcome> outcomes = solve_all(pool, jobs);
    const double wall = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - start)
                            .count();
    pool.shutdown(DrainMode::kDrain);

    std::size_t bad = 0;
    for (const JobOutcome& outcome : outcomes) {
      if (outcome.status != JobStatus::kDone) ++bad;
    }
    if (bad > 0) {
      std::cerr << bad << " jobs did not complete normally\n";
      return 1;
    }

    if (workers == 1) base_wall = wall;
    const double jobs_per_sec = wall > 0.0 ? jobs.size() / wall : 0.0;
    const double speedup = wall > 0.0 ? base_wall / wall : 0.0;
    table.add_row({std::to_string(workers), format_fixed(wall, 3),
                   format_fixed(jobs_per_sec, 1), format_fixed(speedup, 2)});
    csv_rows.push_back({std::to_string(workers), std::to_string(wall),
                        std::to_string(jobs_per_sec),
                        std::to_string(speedup)});
  }
  std::cout << table.to_ascii();

  if (!config.csv_dir.empty()) {
    bench::Options csv_options;
    csv_options.csv_dir = config.csv_dir;
    TextTable csv_table({"workers", "wall_seconds", "jobs_per_sec",
                         "speedup_vs_1"});
    for (const auto& row : csv_rows) {
      csv_table.add_row({row[0], row[1], row[2], row[3]});
    }
    bench::write_table_csv(csv_options, "bench_pool", csv_table);
  }
  return 0;
}
