/// Runtime micro-benchmarks (google-benchmark): scheduling cost of each
/// heuristic family versus task count, plus the building blocks (Johnson
/// sort, simulator, GG sequencing, validator). Not a paper figure — this
/// documents that every heuristic is cheap enough to run inside a runtime
/// system's scheduling loop, the paper's intended deployment.

#include <benchmark/benchmark.h>

#include "core/johnson.hpp"
#include "core/registry.hpp"
#include "core/simulate.hpp"
#include "core/validate.hpp"
#include "exact/window_solver.hpp"
#include "heuristics/gilmore_gomory.hpp"
#include "support/rng.hpp"
#include "trace/generators.hpp"

namespace {

using namespace dts;

Instance make_instance(std::size_t n) {
  Rng rng(n * 2654435761u + 17);
  std::vector<Task> tasks;
  tasks.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const Time comm = rng.uniform(0.1, 10.0);
    tasks.push_back(Task{.id = 0,
                         .comm = comm,
                         .comp = rng.uniform(0.1, 10.0),
                         .mem = comm,
                         .name = {}});
  }
  return Instance(std::move(tasks));
}

void BM_JohnsonOrder(benchmark::State& state) {
  const Instance inst = make_instance(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(johnson_order(inst));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_JohnsonOrder)->Range(64, 4096)->Complexity(benchmark::oNLogN);

void BM_SimulateOrder(benchmark::State& state) {
  const Instance inst = make_instance(static_cast<std::size_t>(state.range(0)));
  const std::vector<TaskId> order = inst.submission_order();
  const Mem capacity = 1.5 * inst.min_capacity();
  for (auto _ : state) {
    benchmark::DoNotOptimize(simulate_order(inst, order, capacity));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_SimulateOrder)->Range(64, 4096)->Complexity();

void BM_GilmoreGomoryOrder(benchmark::State& state) {
  const Instance inst = make_instance(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(gilmore_gomory_order(inst));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_GilmoreGomoryOrder)->Range(64, 4096)->Complexity(benchmark::oNLogN);

void BM_Validate(benchmark::State& state) {
  const Instance inst = make_instance(static_cast<std::size_t>(state.range(0)));
  const Mem capacity = 1.5 * inst.min_capacity();
  const Schedule sched =
      simulate_order(inst, inst.submission_order(), capacity);
  for (auto _ : state) {
    benchmark::DoNotOptimize(validate_schedule(inst, sched, capacity));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Validate)->Range(64, 4096)->Complexity();

template <HeuristicId kId>
void BM_Heuristic(benchmark::State& state) {
  const Instance inst = make_instance(static_cast<std::size_t>(state.range(0)));
  const Mem capacity = 1.25 * inst.min_capacity();
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_heuristic(kId, inst, capacity));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Heuristic<HeuristicId::kOOSIM>)->Range(64, 2048)->Complexity();
BENCHMARK(BM_Heuristic<HeuristicId::kBP>)->Range(64, 2048)->Complexity();
BENCHMARK(BM_Heuristic<HeuristicId::kLCMR>)->Range(64, 2048)->Complexity();
BENCHMARK(BM_Heuristic<HeuristicId::kOOMAMR>)->Range(64, 2048)->Complexity();

void BM_WindowSolverLp4(benchmark::State& state) {
  const Instance inst = make_instance(static_cast<std::size_t>(state.range(0)));
  const Mem capacity = 1.25 * inst.min_capacity();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        schedule_windowed(inst, capacity, {.window = 4}));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_WindowSolverLp4)->Range(64, 512)->Complexity();

void BM_HfTraceGeneration(benchmark::State& state) {
  TraceConfig config;
  config.seed = 5;
  for (auto _ : state) {
    benchmark::DoNotOptimize(generate_hf_trace(config));
  }
}
BENCHMARK(BM_HfTraceGeneration);

void BM_CcsdTraceGeneration(benchmark::State& state) {
  TraceConfig config;
  config.seed = 5;
  for (auto _ : state) {
    benchmark::DoNotOptimize(generate_ccsd_trace(config));
  }
}
BENCHMARK(BM_CcsdTraceGeneration);

}  // namespace
