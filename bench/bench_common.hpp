#pragma once

/// Shared machinery for the figure-regeneration harnesses: command-line
/// knobs, the (trace x capacity x heuristic) ratio grids of the paper's
/// evaluation, boxplot table rendering, and CSV export.

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/registry.hpp"
#include "report/stats.hpp"
#include "report/table.hpp"
#include "trace/generators.hpp"

namespace dts::bench {

/// Common knobs: --traces=N (default 150, the paper's process count),
/// --seed=S (default 1), --csv-dir=PATH (default ./bench_csv; empty
/// disables CSV output), --quick (25 traces).
struct Options {
  std::size_t traces = 150;
  std::uint64_t seed = 1;
  std::string csv_dir = "bench_csv";

  static Options parse(int argc, char** argv);
};

/// The paper's capacity grid: mc..2mc in increments of 0.125 mc.
[[nodiscard]] std::vector<double> capacity_factors();

/// Ratio-to-OMIM samples for one heuristic at one capacity factor.
struct RatioCell {
  HeuristicId id;
  double factor = 1.0;
  std::vector<double> ratios;  ///< one entry per trace
};

/// Evaluates `ids` over `traces` for every factor in `factors`, in
/// parallel over traces. Each trace uses its own mc. Ratios are
/// makespan / OMIM of that trace.
[[nodiscard]] std::vector<RatioCell> ratio_grid(
    const std::vector<Instance>& traces, const std::vector<double>& factors,
    const std::vector<HeuristicId>& ids);

/// Looks up a cell (by id and factor) in a grid.
[[nodiscard]] const RatioCell* find_cell(const std::vector<RatioCell>& grid,
                                         HeuristicId id, double factor);

/// Renders the boxplot table for one capacity factor (rows = heuristics):
/// the textual equivalent of one panel of the paper's Figs. 9 and 11.
[[nodiscard]] TextTable boxplot_panel(const std::vector<RatioCell>& grid,
                                      const std::vector<HeuristicId>& ids,
                                      double factor);

/// Writes the full grid as tidy CSV (heuristic, factor, trace, ratio) for
/// external plotting. No-op when options.csv_dir is empty.
void write_grid_csv(const Options& options, const std::string& figure,
                    const std::vector<RatioCell>& grid);

/// Writes an arbitrary table as CSV next to the other figure outputs.
void write_table_csv(const Options& options, const std::string& figure,
                     const TextTable& table);

/// Best variant of each family per factor ("Best Static" etc. of
/// Figs. 10/12/13): for each trace, the family's best ratio; summarized
/// over traces.
struct FamilyCurve {
  HeuristicCategory category;
  std::vector<double> median_per_factor;
  std::vector<double> mean_per_factor;
};

[[nodiscard]] std::vector<FamilyCurve> best_variant_curves(
    const std::vector<RatioCell>& grid, const std::vector<double>& factors);

/// Generates the evaluation corpus for a kernel under the options.
[[nodiscard]] std::vector<Instance> corpus(ChemistryKernel kernel,
                                           const Options& options);

}  // namespace dts::bench
