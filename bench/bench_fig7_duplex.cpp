/// Fig. 7, duplex edition — the paper's exact-vs-heuristic comparison
/// rerun with a *true* MILP in the exact seat. The original figure pits
/// the heuristics against GLPK-windowed lp.k solves on single-channel HF
/// traces (fig07_milp_comparison.cpp reproduces that with the windowed
/// per-window optimizer); here the self-contained src/milp/ backend
/// proves whole-instance optima, so every heuristic's gap is measured
/// against certified ground truth — and on *bidirectional* traces, the
/// regime the paper's LP never covered.
///
/// Small duplex HF and CCSD traces (fetch + write-back pairs on the two
/// duplex-pcie engines, sized so branch-and-bound provably closes) across
/// the paper's nine capacity factors mc..2mc. One JSON row per
/// (kernel, factor): the exact median makespan, the proved fraction
/// (expected 1.0 — the bench exits nonzero otherwise), and the best
/// heuristic by median ratio-to-exact. CI runs --quick and guards the
/// deterministic makespan columns against
/// bench/baselines/fig7_duplex_quick.json via
/// tools/check_bench_baseline.py.
///
///   bench_fig7_duplex [--quick] [--traces=N] [--seed=S] [--csv-dir=P]
///                     [--json=FILE]   (default BENCH_fig7_duplex.json)

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/solver.hpp"
#include "report/stats.hpp"
#include "trace/generators.hpp"

namespace {

/// Strips a --json=FILE argument before bench::Options sees it.
std::string take_json_flag(int& argc, char** argv) {
  std::string json = "BENCH_fig7_duplex.json";
  int w = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--json=", 0) == 0) {
      json = arg.substr(7);
    } else {
      argv[w++] = argv[i];
    }
  }
  argc = w;
  return json;
}

struct Fig7Row {
  std::string kernel;
  double factor = 1.0;
  double exact_median = 0.0;       ///< median proved-optimal makespan
  double proved_fraction = 0.0;    ///< fraction of traces milp closed
  std::string best_heuristic;      ///< lowest median ratio-to-exact
  double best_median = 0.0;        ///< that heuristic's median makespan
};

}  // namespace

int main(int argc, char** argv) {
  using namespace dts;
  const std::string json_path = take_json_flag(argc, argv);
  const bench::Options options = bench::Options::parse(argc, argv);

  // Fetch + write-back pairs on the duplex machine: 2 fetches -> 4 tasks,
  // inside the n<=4 envelope the MILP backend closes within its default
  // node budget on every corpus instance.
  TraceConfig config;
  config.seed = options.seed;
  config.min_tasks = 2;
  config.max_tasks = 2;
  config.machine = MachineModel::duplex_pcie();

  const std::vector<HeuristicId> ids = all_heuristic_ids();
  std::vector<Fig7Row> rows;
  bool all_proved = true;

  for (ChemistryKernel kernel : {ChemistryKernel::kHartreeFock,
                                 ChemistryKernel::kCoupledClusterSD}) {
    const std::vector<Instance> traces = generate_process_traces(
        kernel, options.traces, options.seed, config);
    std::printf("Fig. 7 duplex — %zu %s traces (%zu tasks each), "
                "heuristic medians as ratio to the proved optimum:\n\n",
                traces.size(), std::string(to_string(kernel)).c_str(),
                traces.empty() ? 0 : traces.front().size());

    std::vector<std::string> headers{"capacity", "exact (s)", "proved"};
    for (HeuristicId id : ids) headers.emplace_back(name_of(id));
    TextTable table(std::move(headers));

    for (double factor : bench::capacity_factors()) {
      Fig7Row row;
      row.kernel = std::string(to_string(kernel));
      row.factor = factor;

      std::vector<double> exact;
      std::size_t proved = 0;
      std::vector<std::vector<double>> ratios(ids.size());
      for (const Instance& inst : traces) {
        SolveRequest request;
        request.instance = inst;
        request.capacity = factor * inst.min_capacity();
        const SolveResult result = solve(request, "milp");
        if (result.proved_optimal) ++proved;
        exact.push_back(result.makespan);
        for (std::size_t h = 0; h < ids.size(); ++h) {
          const Time makespan =
              heuristic_makespan(ids[h], inst, request.capacity);
          ratios[h].push_back(result.makespan > 0.0
                                  ? makespan / result.makespan
                                  : 1.0);
        }
      }
      row.exact_median = summarize(exact).median;
      row.proved_fraction =
          traces.empty() ? 1.0
                         : static_cast<double>(proved) /
                               static_cast<double>(traces.size());
      all_proved = all_proved && proved == traces.size();

      std::vector<std::string> cells{format_fixed(factor, 3) + " mc",
                                     format_fixed(row.exact_median, 6),
                                     format_fixed(row.proved_fraction, 2)};
      double best_ratio = 0.0;
      for (std::size_t h = 0; h < ids.size(); ++h) {
        const double median_ratio = summarize(ratios[h]).median;
        cells.push_back(format_fixed(median_ratio, 4));
        if (row.best_heuristic.empty() || median_ratio < best_ratio) {
          best_ratio = median_ratio;
          row.best_heuristic = std::string(name_of(ids[h]));
          row.best_median = median_ratio * row.exact_median;
        }
      }
      table.add_row(std::move(cells));
      rows.push_back(row);
      std::printf(".");
      std::fflush(stdout);
    }
    std::printf("\n\n%s\n", table.to_ascii().c_str());
    bench::write_table_csv(options,
                           std::string("fig7_duplex_") +
                               std::string(to_string(kernel)),
                           table);
  }

  std::ofstream json(json_path);
  if (!json) {
    std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
    return 1;
  }
  json << "{\n  \"bench\": \"fig7_duplex\",\n  \"traces_per_kernel\": "
       << options.traces << ",\n  \"rows\": [\n";
  json.precision(12);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Fig7Row& row = rows[i];
    json << "    {\"kernel\": \"" << row.kernel
         << "\", \"capacity_factor\": " << row.factor
         << ", \"milp_median_makespan_seconds\": " << row.exact_median
         << ", \"proved_fraction\": " << row.proved_fraction
         << ", \"best_heuristic\": \"" << row.best_heuristic
         << "\", \"best_heuristic_median_makespan_seconds\": "
         << row.best_median << "}" << (i + 1 < rows.size() ? "," : "")
         << "\n";
  }
  json << "  ]\n}\n";
  std::printf("wrote %s (%zu rows)\n", json_path.c_str(), rows.size());

  if (!all_proved) {
    std::fprintf(stderr,
                 "FAIL: milp left traces unproven — the corpus must stay "
                 "inside the provable envelope\n");
    return 1;
  }
  return 0;
}
