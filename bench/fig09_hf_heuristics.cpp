/// Fig. 9 — HF: distribution of ratio-to-OMIM for all 14 heuristics at
/// each of the nine capacities mc..2mc, over the 150 process traces.
/// One boxplot panel is printed per capacity, exactly the figure's grid.

#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace dts;
  const bench::Options options = bench::Options::parse(argc, argv);

  const std::vector<Instance> traces =
      bench::corpus(ChemistryKernel::kHartreeFock, options);
  const std::vector<double> factors = bench::capacity_factors();
  const std::vector<HeuristicId> ids = all_heuristic_ids();

  std::printf("Fig. 9 — HF, %zu traces, mc = 176KB:\n\n", traces.size());
  const std::vector<bench::RatioCell> grid =
      bench::ratio_grid(traces, factors, ids);

  for (double factor : factors) {
    std::printf("capacity %.3f mc:\n%s\n", factor,
                bench::boxplot_panel(grid, ids, factor).to_ascii().c_str());
  }
  bench::write_grid_csv(options, "fig09_hf_heuristics", grid);
  return 0;
}
