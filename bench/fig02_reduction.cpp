/// Fig. 2 / Table 1 — the NP-completeness reduction, regenerated: for a
/// family of 3-Partition instances, build the Table-1 DT instance, verify
/// that solvable instances admit the tight Fig. 2 schedule (makespan
/// exactly L, peak memory exactly C, zero idle) and that unsolvable ones
/// provably cannot reach L (exhaustive search over permutation schedules).

#include <cstdio>

#include "bench_common.hpp"
#include "core/validate.hpp"
#include "exact/exhaustive.hpp"
#include "reduction/three_partition.hpp"
#include "report/gantt.hpp"

int main(int argc, char** argv) {
  using namespace dts;
  const bench::Options options = bench::Options::parse(argc, argv);

  struct Case {
    const char* label;
    ThreePartitionInstance input;
  };
  const std::vector<Case> cases{
      {"m=2 solvable", ThreePartitionInstance{{1, 2, 6, 2, 3, 4}}},
      {"m=2 uniform", ThreePartitionInstance{{3, 3, 3, 3, 3, 3}}},
      {"m=3 solvable", ThreePartitionInstance{{4, 5, 9, 6, 6, 6, 2, 7, 9}}},
      {"m=2 unsolvable", ThreePartitionInstance{{5, 5, 5, 1, 1, 1}}},
      // Three 8s with m=2: some triplet holds two of them (16 > b = 15).
      {"m=2 unsolvable (skew)", ThreePartitionInstance{{8, 8, 8, 3, 2, 1}}},
  };

  TextTable table({"instance", "b", "b'", "C", "L", "3Par solvable",
                   "schedule == L", "peak == C", "best permutation"});
  for (const Case& c : cases) {
    const DtReduction red = reduce_to_dt(c.input);
    const auto partition = solve_three_partition(c.input);
    std::string tight = "-";
    std::string peak = "-";
    if (partition) {
      const Schedule s = schedule_from_partition(red, *partition);
      const ValidationReport report =
          validate_schedule(red.instance, s, red.capacity);
      tight = (report.ok() &&
               approx_equal(s.makespan(red.instance), red.target))
                  ? "yes"
                  : "NO";
      peak = approx_equal(report.peak_memory, red.capacity) ? "yes" : "NO";
    }
    // Exhaustive cross-check (the m=3 image has 13 tasks; identical-task
    // collapsing keeps the search tractable for these inputs).
    std::string best = "(skipped)";
    if (red.instance.size() <= 13) {
      ExhaustiveOptions ex;
      ex.max_n = 13;
      const ExhaustiveResult res =
          best_common_order(red.instance, red.capacity, ex);
      best = format_fixed(res.makespan, 1) +
             (definitely_less(red.target, res.makespan) ? " (> L)" : " (= L)");
    }
    table.add_row({c.label, std::to_string(c.input.b()),
                   std::to_string(red.b_prime), format_fixed(red.capacity, 0),
                   format_fixed(red.target, 0), partition ? "yes" : "no",
                   tight, peak, best});
  }
  std::printf("Fig. 2 / Table 1 — 3-Partition -> DT reduction:\n%s\n",
              table.to_ascii().c_str());

  // Render the canonical pattern once.
  const DtReduction red = reduce_to_dt(cases[0].input);
  const Schedule s =
      schedule_from_partition(red, *solve_three_partition(cases[0].input));
  std::printf("Fig. 2 pattern for %s:\n%s", cases[0].label,
              render_gantt(red.instance, s, {.width = 72}).c_str());

  bench::write_table_csv(options, "fig02_reduction", table);
  return 0;
}
