/// Table 6 — "Heuristics and their favorable scenarios", checked
/// empirically: for each scenario row we synthesize workloads of that
/// regime, run every heuristic, and report how the row's favored
/// heuristic ranks. The recommender (core/recommend.hpp) encodes the same
/// table; the bench also reports how often the recommended heuristic
/// lands within 2% of the best.

#include <cstdio>
#include <functional>

#include "bench_common.hpp"
#include "core/recommend.hpp"
#include "core/solver.hpp"
#include "support/rng.hpp"

namespace {

using namespace dts;

/// A synthetic scenario: workload generator + capacity rule.
struct Scenario {
  std::string label;
  HeuristicId favored;
  std::function<Instance(Rng&)> make;
  std::function<Mem(const Instance&)> capacity;
};

Instance make_tasks(Rng& rng, std::size_t n,
                    const std::function<Task(Rng&, std::size_t)>& gen) {
  std::vector<Task> tasks;
  tasks.reserve(n);
  for (std::size_t i = 0; i < n; ++i) tasks.push_back(gen(rng, i));
  return Instance(std::move(tasks));
}

Task task_of(Time comm, Time comp) {
  return Task{.id = 0, .comm = comm, .comp = comp, .mem = comm, .name = {}};
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Options options = bench::Options::parse(argc, argv);
  const std::size_t kRuns = std::max<std::size_t>(options.traces / 3, 20);

  std::vector<Scenario> scenarios;
  // OOSIM: memory not a restriction.
  scenarios.push_back(
      {"no memory restriction (OOSIM optimal)", HeuristicId::kOOSIM,
       [](Rng& rng) {
         return make_tasks(rng, 60, [&](Rng& r, std::size_t) {
           return task_of(r.uniform(1, 9), r.uniform(1, 9));
         });
       },
       [](const Instance& inst) { return inst.stats().total_mem; }});
  // IOCCS: moderate capacity, mostly highly compute intensive.
  scenarios.push_back(
      {"moderate capacity, highly compute intensive (IOCCS)",
       HeuristicId::kIOCCS,
       [](Rng& rng) {
         return make_tasks(rng, 60, [&](Rng& r, std::size_t) {
           const Time comm = r.uniform(1, 6);
           return task_of(comm, comm * r.uniform(2.0, 5.0));
         });
       },
       [](const Instance& inst) { return 1.7 * inst.min_capacity(); }});
  // DOCCS: moderate capacity, mostly highly communication intensive.
  scenarios.push_back(
      {"moderate capacity, highly communication intensive (DOCCS)",
       HeuristicId::kDOCCS,
       [](Rng& rng) {
         return make_tasks(rng, 60, [&](Rng& r, std::size_t) {
           const Time comp = r.uniform(0.5, 3.0);
           return task_of(comp * r.uniform(2.0, 5.0), comp);
         });
       },
       [](const Instance& inst) { return 1.7 * inst.min_capacity(); }});
  // SCMR: limited capacity, compute-intensive tasks have small comm.
  scenarios.push_back(
      {"limited capacity, small-comm tasks compute intensive (SCMR)",
       HeuristicId::kSCMR,
       [](Rng& rng) {
         return make_tasks(rng, 60, [&](Rng& r, std::size_t) {
           if (r.chance(0.3)) {
             const Time comm = r.uniform(0.5, 2.0);
             return task_of(comm, comm * r.uniform(1.1, 2.0));
           }
           const Time comm = r.uniform(5.0, 9.0);
           return task_of(comm, comm * r.uniform(0.1, 0.5));
         });
       },
       [](const Instance& inst) { return 1.1 * inst.min_capacity(); }});
  // LCMR: limited capacity, large-comm tasks compute intensive.
  scenarios.push_back(
      {"limited capacity, large-comm tasks compute intensive (LCMR)",
       HeuristicId::kLCMR,
       [](Rng& rng) {
         return make_tasks(rng, 60, [&](Rng& r, std::size_t) {
           if (r.chance(0.3)) {
             const Time comm = r.uniform(5.0, 9.0);
             return task_of(comm, comm * r.uniform(1.1, 2.0));
           }
           const Time comm = r.uniform(0.5, 2.5);
           return task_of(comm, comm * r.uniform(0.2, 0.8));
         });
       },
       [](const Instance& inst) { return 1.1 * inst.min_capacity(); }});
  // MAMR: limited capacity, both types in quantity.
  scenarios.push_back(
      {"limited capacity, mixed task types (MAMR)", HeuristicId::kMAMR,
       [](Rng& rng) {
         return make_tasks(rng, 60, [&](Rng& r, std::size_t i) {
           const Time comm = r.uniform(1, 8);
           return task_of(comm, comm * (i % 2 == 0 ? r.uniform(1.2, 3.0)
                                                   : r.uniform(0.2, 0.8)));
         });
       },
       [](const Instance& inst) { return 1.1 * inst.min_capacity(); }});
  // OOMAMR: moderate capacity, mixed.
  scenarios.push_back(
      {"moderate capacity, mixed task types (OOMAMR)", HeuristicId::kOOMAMR,
       [](Rng& rng) {
         return make_tasks(rng, 60, [&](Rng& r, std::size_t i) {
           const Time comm = r.uniform(1, 8);
           return task_of(comm, comm * (i % 2 == 0 ? r.uniform(1.2, 3.0)
                                                   : r.uniform(0.2, 0.8)));
         });
       },
       [](const Instance& inst) { return 1.7 * inst.min_capacity(); }});

  TextTable table({"scenario", "favored", "median rank", "within 2% of best",
                   "recommender hit"});
  Rng rng(options.seed * 7919 + 13);
  for (const Scenario& sc : scenarios) {
    std::vector<double> ranks;
    std::size_t close = 0;
    std::size_t rec_close = 0;
    SolveOptions solve_options;
    solve_options.compute_bounds = false;
    for (std::size_t run = 0; run < kRuns; ++run) {
      Instance inst = sc.make(rng);
      const Mem capacity = sc.capacity(inst);
      SolveRequest request;
      request.instance = std::move(inst);
      request.capacity = capacity;
      const SolveResult res = solve(request, "auto", solve_options);
      Time favored_ms = kInfiniteTime;
      double rank = 1.0;
      for (const CandidateOutcome& o : res.outcomes) {
        if (o.name == name_of(sc.favored)) favored_ms = o.makespan;
      }
      for (const CandidateOutcome& o : res.outcomes) {
        if (o.makespan < favored_ms - 1e-12) rank += 1.0;
      }
      ranks.push_back(rank);
      if (favored_ms <= res.makespan * 1.02) ++close;
      const Recommendation rec = recommend(request.instance, capacity);
      Time rec_ms = kInfiniteTime;
      for (const CandidateOutcome& o : res.outcomes) {
        if (o.name == name_of(rec.primary)) rec_ms = o.makespan;
      }
      if (rec_ms <= res.makespan * 1.02) ++rec_close;
    }
    const BoxplotSummary s = summarize(std::move(ranks));
    table.add_row({sc.label, std::string(name_of(sc.favored)),
                   format_fixed(s.median, 1),
                   format_fixed(100.0 * static_cast<double>(close) /
                                    static_cast<double>(kRuns), 0) + "%",
                   format_fixed(100.0 * static_cast<double>(rec_close) /
                                    static_cast<double>(kRuns), 0) + "%"});
  }
  std::printf("Table 6 — favorable scenarios, %zu runs each (rank 1 = best "
              "of all 14):\n%s",
              kRuns, table.to_ascii().c_str());
  bench::write_table_csv(options, "table6_favorable", table);
  return 0;
}
