/// Fig. 8 — workload characteristics of the HF and CCSD corpora: per
/// trace, sum comm / OMIM, sum comp / OMIM, max(sums)/OMIM and
/// (sum comm + sum comp)/OMIM, summarized as boxplots over the 150
/// process traces. Shapes to reproduce: HF communication-dominated with
/// <= ~20% overlap headroom; CCSD balanced with ~50%.

#include <cstdio>

#include "bench_common.hpp"
#include "report/stats.hpp"
#include "trace/workload_stats.hpp"

int main(int argc, char** argv) {
  using namespace dts;
  const bench::Options options = bench::Options::parse(argc, argv);

  TextTable table({"workload", "quantity", "min", "q1", "median", "q3", "max"});

  for (ChemistryKernel kernel :
       {ChemistryKernel::kCoupledClusterSD, ChemistryKernel::kHartreeFock}) {
    const std::vector<Instance> traces = bench::corpus(kernel, options);
    const auto all = characterize_all(traces);

    const auto add = [&](const char* quantity, auto getter) {
      std::vector<double> values;
      values.reserve(all.size());
      for (const auto& wc : all) values.push_back(getter(wc));
      const BoxplotSummary s = summarize(std::move(values));
      table.add_row({std::string(to_string(kernel)), quantity,
                     format_fixed(s.min, 3), format_fixed(s.q1, 3),
                     format_fixed(s.median, 3), format_fixed(s.q3, 3),
                     format_fixed(s.max, 3)});
    };
    add("sum comm / OMIM",
        [](const WorkloadCharacteristics& wc) { return wc.comm_over_omim; });
    add("sum comp / OMIM",
        [](const WorkloadCharacteristics& wc) { return wc.comp_over_omim; });
    add("max(sum comm, sum comp) / OMIM",
        [](const WorkloadCharacteristics& wc) { return wc.max_over_omim; });
    add("(sum comm + sum comp) / OMIM",
        [](const WorkloadCharacteristics& wc) { return wc.total_over_omim; });
    add("overlap headroom", [](const WorkloadCharacteristics& wc) {
      return wc.overlap_potential();
    });
  }

  std::printf("Fig. 8 — workload characteristics over %zu traces per "
              "kernel:\n%s",
              options.traces, table.to_ascii().c_str());
  bench::write_table_csv(options, "fig08_workload", table);
  return 0;
}
