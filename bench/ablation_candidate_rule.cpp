/// Ablation: the dynamic candidate rule (DESIGN.md §7). The paper's
/// dynamic selection first filters candidates to those inducing *minimum
/// idle time on the computation resource*, then applies the criterion.
/// This ablation compares against applying the criterion alone (no idle
/// filter), isolating how much of the dynamic heuristics' quality comes
/// from the idle filter versus the criterion.

#include <algorithm>
#include <cstdio>
#include <stdexcept>
#include <vector>

#include "bench_common.hpp"
#include "core/johnson.hpp"
#include "core/simulate.hpp"
#include "heuristics/dynamic.hpp"
#include "support/parallel_for.hpp"

namespace {

using namespace dts;

/// Dynamic scheduling with the idle filter disabled: among fitting tasks,
/// pick purely by criterion.
Schedule schedule_criterion_only(const Instance& inst,
                                 DynamicCriterion criterion, Mem capacity) {
  ExecutionState state(capacity);
  Schedule out(inst.size());
  std::vector<TaskId> pending = inst.submission_order();
  std::vector<TaskId> fitting;
  while (!pending.empty()) {
    fitting.clear();
    for (TaskId id : pending) {
      if (state.fits(inst[id])) fitting.push_back(id);
    }
    if (fitting.empty()) {
      if (!state.advance_to_next_release()) {
        throw std::invalid_argument("task exceeds capacity");
      }
      continue;
    }
    TaskId best = fitting.front();
    for (TaskId id : fitting) {
      const Task& t = inst[id];
      const Task& b = inst[best];
      const bool better = criterion == DynamicCriterion::kLargestComm
                              ? t.comm > b.comm
                          : criterion == DynamicCriterion::kSmallestComm
                              ? t.comm < b.comm
                              : t.acceleration() > b.acceleration();
      if (better) best = id;
    }
    const TaskTimes tt = state.start(inst[best]);
    out.set(best, tt.comm_start, tt.comp_start);
    pending.erase(std::find(pending.begin(), pending.end(), best));
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Options options = bench::Options::parse(argc, argv);

  for (ChemistryKernel kernel :
       {ChemistryKernel::kHartreeFock, ChemistryKernel::kCoupledClusterSD}) {
    const std::vector<Instance> traces = bench::corpus(kernel, options);
    TextTable table({"capacity", "criterion", "with idle filter (paper)",
                     "criterion only", "filter gain"});
    for (double factor : {1.0, 1.5, 2.0}) {
      for (DynamicCriterion crit :
           {DynamicCriterion::kLargestComm, DynamicCriterion::kSmallestComm,
            DynamicCriterion::kMaxAcceleration}) {
        std::vector<double> with_f(traces.size());
        std::vector<double> without_f(traces.size());
        parallel_for(0, traces.size(), [&](std::size_t t) {
          const Time lower = omim(traces[t]);
          const Mem cap = traces[t].min_capacity() * factor;
          with_f[t] =
              schedule_dynamic(traces[t], crit, cap).makespan(traces[t]) /
              lower;
          without_f[t] = schedule_criterion_only(traces[t], crit, cap)
                             .makespan(traces[t]) /
                         lower;
        });
        const double med_with = summarize(std::move(with_f)).median;
        const double med_without = summarize(std::move(without_f)).median;
        table.add_row(
            {format_fixed(factor, 3) + " mc", std::string(to_acronym(crit)),
             format_fixed(med_with, 4), format_fixed(med_without, 4),
             format_fixed(100.0 * (med_without / med_with - 1.0), 2) + "%"});
      }
    }
    std::printf(
        "Ablation (min-idle candidate filter) — %s over %zu traces:\n%s\n",
        std::string(to_string(kernel)).c_str(), traces.size(),
        table.to_ascii().c_str());
    bench::write_table_csv(options,
                           std::string("ablation_candidate_rule_") +
                               std::string(to_string(kernel)),
                           table);
  }
  return 0;
}
