/// Extension bench: the full 3-stage model (input link, processor, output
/// link — the paper's §3 general formulation and its conclusion's duplex
/// CPU<->GPU scenario). Compares submission order, the paper-style
/// 2-stage Johnson order (ignoring outputs, as the paper's model does),
/// and the 3-machine Johnson surrogate, under device-memory budgets from
/// mc to 4 mc. Question answered: when do output transfers invalidate the
/// paper's "outputs are negligible" simplification?

#include <algorithm>
#include <cstdio>

#include "bench_common.hpp"
#include "support/rng.hpp"
#include "threestage/three_stage.hpp"
#include "trace/machine.hpp"

namespace {

using namespace dts;

/// GPU kernel queue with non-trivial result downloads (out ~ 30% of in).
ThreeStageInstance gpu_queue(Rng& rng, std::size_t n) {
  const MachineModel gpu = MachineModel::pcie_gpu();
  std::vector<StagedTask> tasks;
  for (std::size_t i = 0; i < n; ++i) {
    const double in_bytes = rng.uniform(64e6, 768e6);
    const double out_bytes = in_bytes * rng.uniform(0.1, 0.5);
    const double flops = rng.uniform(0.5e12, 6e12);
    tasks.push_back(StagedTask{.id = 0,
                               .in_comm = gpu.transfer_time(in_bytes),
                               .comp = gpu.compute_time(flops),
                               .out_comm = gpu.transfer_time(out_bytes),
                               .in_mem = in_bytes,
                               .out_mem = out_bytes,
                               .name = "k" + std::to_string(i)});
  }
  return ThreeStageInstance(std::move(tasks));
}

/// The paper's 2-stage Johnson order applied to (in_comm, comp) only.
std::vector<TaskId> two_stage_johnson(const ThreeStageInstance& inst) {
  std::vector<TaskId> s1;
  std::vector<TaskId> s2;
  for (const StagedTask& t : inst) {
    (t.comp >= t.in_comm ? s1 : s2).push_back(t.id);
  }
  std::stable_sort(s1.begin(), s1.end(), [&](TaskId a, TaskId b) {
    return inst[a].in_comm < inst[b].in_comm;
  });
  std::stable_sort(s2.begin(), s2.end(), [&](TaskId a, TaskId b) {
    return inst[a].comp > inst[b].comp;
  });
  s1.insert(s1.end(), s2.begin(), s2.end());
  return s1;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Options options = bench::Options::parse(argc, argv);
  const std::size_t runs = std::max<std::size_t>(options.traces / 5, 10);

  TextTable table({"device mem", "OS", "Johnson (2-stage, paper)",
                   "Johnson-3 surrogate"});
  for (double factor : {1.0, 1.5, 2.0, 4.0}) {
    double os_sum = 0.0, j2_sum = 0.0, j3_sum = 0.0;
    Rng rng(options.seed * 31 + 7);
    for (std::size_t r = 0; r < runs; ++r) {
      const ThreeStageInstance inst = gpu_queue(rng, 48);
      const Mem capacity = inst.min_capacity() * factor;
      const ThreeStageBounds lb = three_stage_bounds(inst);
      const Time os_ms =
          three_stage_makespan(inst, inst.submission_order(), capacity);
      const Time j2 =
          three_stage_makespan(inst, two_stage_johnson(inst), capacity);
      const Time j3 = three_stage_makespan(inst, johnson3_order(inst), capacity);
      os_sum += os_ms / lb.combined;
      j2_sum += j2 / lb.combined;
      j3_sum += j3 / lb.combined;
    }
    const auto avg = [&](double s) {
      return format_fixed(s / static_cast<double>(runs), 4);
    };
    table.add_row({format_fixed(factor, 2) + " mc", avg(os_sum), avg(j2_sum),
                   avg(j3_sum)});
  }
  std::printf("Extension — 3-stage (duplex CPU<->GPU) scheduling, mean ratio "
              "to the 3-stage lower bound over %zu queues of 48 kernels:\n%s",
              runs, table.to_ascii().c_str());
  bench::write_table_csv(options, "ext_three_stage", table);
  return 0;
}
