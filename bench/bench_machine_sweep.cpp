/// Machine sweep — the redesign's headline experiment: the HF and CCSD
/// workloads, generated once as machine-independent byte-annotated
/// traces, re-costed with bind() for EVERY machine in the MachineRegistry
/// and solved. One table row per (kernel, machine): workload shape after
/// binding, auto-winner, makespan statistics and solve throughput.
///
/// A second axis sweeps duplex *asymmetry*: duplex traces are re-bound to
/// duplex-pcie variants whose D2H engine is progressively slower (2x, 4x,
/// 8x), and the channel-load-aware duplex-balance order is evaluated
/// against SCMR (the paper's best dynamic heuristic) on each variant.
///
/// A third axis sweeps *precedence*: the CCSD contraction-chain DAG
/// workload (generate_ccsd_dag_trace) is solved with its edges and
/// relaxed to the precedence-free model on each duplex-capable machine
/// up to the summit-multi-gpu hierarchy, so the scheduler's DAG path has
/// CI-guarded data points from day one.
///
/// The numbers land in BENCH_machine_sweep.json so the perf trajectory of
/// the costing + solving pipeline has data points across PRs; CI checks
/// the deterministic makespan columns against bench/baselines/ via
/// tools/check_bench_baseline.py (the performance-regression guard).
///
///   bench_machine_sweep [--quick] [--traces=N] [--seed=S] [--csv-dir=P]
///                       [--json=FILE]   (default BENCH_machine_sweep.json)

#include <chrono>
#include <cstdio>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/solver.hpp"
#include "model/machine.hpp"
#include "report/stats.hpp"
#include "trace/transforms.hpp"

namespace {

/// Strips a --json=FILE argument before bench::Options sees it.
std::string take_json_flag(int& argc, char** argv) {
  std::string json = "BENCH_machine_sweep.json";
  int w = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--json=", 0) == 0) {
      json = arg.substr(7);
    } else {
      argv[w++] = argv[i];
    }
  }
  argc = w;
  return json;
}

struct SweepRow {
  std::string kernel;
  std::string machine;
  std::string winner;
  double median_makespan = 0.0;
  double median_ratio = 0.0;      // makespan / OMIM of the bound trace
  double comm_over_comp = 0.0;    // aggregate shape after binding
  double solves_per_sec = 0.0;
};

/// One point of the duplex-asymmetry axis: SCMR vs the duplex-balance
/// order on a duplex-pcie variant whose D2H engine is `slowdown`x slower.
struct AsymmetryRow {
  std::string kernel;
  double slowdown = 1.0;
  double scmr_median = 0.0;
  double balance_median = 0.0;

  [[nodiscard]] double balance_over_scmr() const {
    return scmr_median > 0.0 ? balance_median / scmr_median : 0.0;
  }
};

/// One point of the precedence (DAG) axis: the CCSD contraction-chain
/// workload solved with its dependency edges against the same tasks
/// relaxed to the paper's precedence-free model. The gap is the price of
/// the edges; both medians are deterministic functions of the seeded
/// corpus, so CI guards them exactly.
struct DagRow {
  std::string kernel;
  std::string machine;
  std::string winner;
  double dag_median = 0.0;
  double relaxed_median = 0.0;

  [[nodiscard]] double dag_over_relaxed() const {
    return relaxed_median > 0.0 ? dag_median / relaxed_median : 0.0;
  }
};

/// duplex-pcie with its D2H bandwidth divided by `slowdown` (1 = the
/// registered preset itself).
dts::Machine asymmetric_duplex_machine(double slowdown) {
  using namespace dts;
  const Machine base = machine_from_name("duplex-pcie");
  std::vector<MachineChannel> channels = base.channels();
  const MachineChannel& d2h = base.channel(kChannelD2H);
  channels[kChannelD2H] =
      affine_channel(d2h.name, d2h.model->zero_byte_latency(),
                     d2h.model->asymptotic_bandwidth() / slowdown);
  return Machine(base.name() + "/d2h-" + std::to_string(int(slowdown)) + "x",
                 "duplex-pcie, D2H slowed " + std::to_string(int(slowdown)) +
                     "x",
                 std::move(channels));
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dts;
  const std::string json_path = take_json_flag(argc, argv);
  const bench::Options options = bench::Options::parse(argc, argv);

  std::printf("machine sweep — %zu traces/kernel across every registered "
              "machine\n\n",
              options.traces);

  std::vector<SweepRow> rows;
  TextTable table({"kernel", "machine", "winner", "median makespan",
                   "median ratio", "comm/comp", "solves/s"});

  for (ChemistryKernel kernel : {ChemistryKernel::kHartreeFock,
                                 ChemistryKernel::kCoupledClusterSD}) {
    // One machine-independent corpus per kernel: generated on the paper
    // machine, then stripped to bytes-only — exactly what a user's
    // measured v3 trace set looks like before re-costing.
    std::vector<Instance> workloads;
    for (const Instance& trace : bench::corpus(kernel, options)) {
      workloads.push_back(strip_comm_times(trace));
    }

    for (const MachineListing& listing : list_machines()) {
      if (listing.name == "cascade") continue;  // alias of "paper"
      const Machine machine = machine_from_name(listing.name);

      SweepRow row;
      row.kernel = std::string(to_string(kernel));
      row.machine = listing.name;

      // Bind once per workload, outside the timed region: the solves/s
      // metric must measure solving, not costing or this aggregation.
      double sum_comm = 0.0, sum_comp = 0.0;
      std::vector<Instance> bound;
      bound.reserve(workloads.size());
      for (const Instance& workload : workloads) {
        bound.push_back(bind(workload, machine));
        const InstanceStats stats = bound.back().stats();
        sum_comm += stats.sum_comm;
        sum_comp += stats.sum_comp;
      }

      std::vector<double> makespans;
      std::vector<double> ratios;
      std::map<std::string, std::size_t> wins;
      const auto start = std::chrono::steady_clock::now();
      for (const Instance& instance : bound) {
        SolveRequest request;
        request.instance = instance;
        request.capacity = 1.5 * instance.min_capacity();
        const SolveResult result = solve(request, "auto");
        makespans.push_back(result.makespan);
        ratios.push_back(result.ratio_to_optimal());
        ++wins[result.winner];
      }
      const double wall =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start)
              .count();

      row.median_makespan = summarize(makespans).median;
      row.median_ratio = summarize(ratios).median;
      row.comm_over_comp = sum_comp > 0.0 ? sum_comm / sum_comp : 0.0;
      row.solves_per_sec =
          wall > 0.0 ? static_cast<double>(workloads.size()) / wall : 0.0;
      std::size_t best = 0;
      for (const auto& [name, count] : wins) {
        if (count > best) {
          best = count;
          row.winner = name;
        }
      }
      rows.push_back(row);

      char makespan_text[32], ratio_text[32], shape_text[32], rate_text[32];
      std::snprintf(makespan_text, sizeof makespan_text, "%.6g s",
                    row.median_makespan);
      std::snprintf(ratio_text, sizeof ratio_text, "%.4f", row.median_ratio);
      std::snprintf(shape_text, sizeof shape_text, "%.3f",
                    row.comm_over_comp);
      std::snprintf(rate_text, sizeof rate_text, "%.1f", row.solves_per_sec);
      table.add_row({row.kernel, row.machine, row.winner, makespan_text,
                     ratio_text, shape_text, rate_text});
    }
  }

  std::printf("%s", table.to_ascii().c_str());

  // ---------------------------------------------- duplex asymmetry axis
  // Duplex traces (input fetches on H2D + result write-backs on D2H),
  // re-bound to duplex-pcie variants with a progressively slower D2H
  // engine: the regime where a channel-load-aware order can beat SCMR.
  std::printf("\nduplex asymmetry — SCMR vs duplex-balance on slowed-D2H "
              "duplex-pcie variants\n\n");
  std::vector<AsymmetryRow> asymmetry;
  TextTable asym_table({"kernel", "d2h slowdown", "SCMR median",
                        "duplex-balance median", "balance/SCMR"});
  for (ChemistryKernel kernel : {ChemistryKernel::kHartreeFock,
                                 ChemistryKernel::kCoupledClusterSD}) {
    TraceConfig duplex_config;
    duplex_config.machine = MachineModel::duplex_pcie();
    std::vector<Instance> duplex_bytes;
    for (const Instance& trace : generate_process_traces(
             kernel, options.traces, options.seed, duplex_config)) {
      duplex_bytes.push_back(strip_comm_times(trace));
    }
    for (const double slowdown : {1.0, 2.0, 4.0, 8.0}) {
      const Machine machine = asymmetric_duplex_machine(slowdown);
      AsymmetryRow row;
      row.kernel = std::string(to_string(kernel));
      row.slowdown = slowdown;
      std::vector<double> scmr, balance;
      for (const Instance& workload : duplex_bytes) {
        const Instance instance = bind(workload, machine);
        SolveRequest request;
        request.instance = instance;
        request.capacity = 1.5 * instance.min_capacity();
        SolveOptions solve_options;
        solve_options.compute_bounds = false;
        scmr.push_back(solve(request, "SCMR", solve_options).makespan);
        balance.push_back(
            solve(request, "duplex-balance", solve_options).makespan);
      }
      row.scmr_median = summarize(scmr).median;
      row.balance_median = summarize(balance).median;
      asymmetry.push_back(row);

      char slow_text[16], scmr_text[32], bal_text[32], ratio_text[16];
      std::snprintf(slow_text, sizeof slow_text, "%gx", slowdown);
      std::snprintf(scmr_text, sizeof scmr_text, "%.6g s", row.scmr_median);
      std::snprintf(bal_text, sizeof bal_text, "%.6g s", row.balance_median);
      std::snprintf(ratio_text, sizeof ratio_text, "%.4f",
                    row.balance_over_scmr());
      asym_table.add_row({row.kernel, slow_text, scmr_text, bal_text,
                          ratio_text});
    }
  }
  std::printf("%s", asym_table.to_ascii().c_str());

  // ------------------------------------------------ precedence (DAG) axis
  // CCSD contraction chains (generate_ccsd_dag_trace): the same tasks
  // solved with their dependency edges and relaxed to the precedence-free
  // model, across the duplex-capable machines up to the multi-GPU
  // hierarchy. dag/relaxed quantifies what the edges cost on each
  // machine; both columns are seed-deterministic and CI-guarded.
  std::printf("\nDAG axis — CCSD contraction chains, with edges vs "
              "relaxed, per machine\n\n");
  std::vector<DagRow> dag_rows;
  TextTable dag_table({"kernel", "machine", "winner", "DAG median",
                       "relaxed median", "dag/relaxed"});
  {
    TraceConfig dag_config;
    dag_config.machine = MachineModel::duplex_pcie();
    std::vector<Instance> dag_bytes;
    for (std::size_t p = 0; p < options.traces; ++p) {
      TraceConfig config = dag_config;
      config.seed = options.seed + p;
      dag_bytes.push_back(strip_comm_times(generate_ccsd_dag_trace(config)));
    }
    for (const char* name :
         {"duplex-pcie", "summit-node", "nvlink", "summit-multi-gpu"}) {
      const Machine machine = machine_from_name(name);
      DagRow row;
      row.kernel = "CCSD-DAG";
      row.machine = name;
      std::vector<double> dag_makespans, relaxed_makespans;
      std::map<std::string, std::size_t> wins;
      for (const Instance& workload : dag_bytes) {
        const Instance instance = bind(workload, machine);
        SolveRequest request;
        request.instance = instance;
        request.capacity = 1.5 * instance.min_capacity();
        const SolveResult with_edges = solve(request, "auto");
        dag_makespans.push_back(with_edges.makespan);
        ++wins[with_edges.winner];
        request.instance = instance.without_dependencies();
        relaxed_makespans.push_back(solve(request, "auto").makespan);
      }
      row.dag_median = summarize(dag_makespans).median;
      row.relaxed_median = summarize(relaxed_makespans).median;
      std::size_t best = 0;
      for (const auto& [winner, count] : wins) {
        if (count > best) {
          best = count;
          row.winner = winner;
        }
      }
      dag_rows.push_back(row);

      char dag_text[32], relaxed_text[32], gap_text[16];
      std::snprintf(dag_text, sizeof dag_text, "%.6g s", row.dag_median);
      std::snprintf(relaxed_text, sizeof relaxed_text, "%.6g s",
                    row.relaxed_median);
      std::snprintf(gap_text, sizeof gap_text, "%.4f",
                    row.dag_over_relaxed());
      dag_table.add_row({row.kernel, row.machine, row.winner, dag_text,
                         relaxed_text, gap_text});
    }
  }
  std::printf("%s", dag_table.to_ascii().c_str());

  // Hand-rolled JSON (no third-party deps in this container).
  std::ofstream json(json_path);
  if (!json) {
    std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
    return 1;
  }
  json << "{\n  \"bench\": \"machine_sweep\",\n  \"traces_per_kernel\": "
       << options.traces << ",\n  \"rows\": [\n";
  json.precision(12);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const SweepRow& row = rows[i];
    json << "    {\"kernel\": \"" << row.kernel << "\", \"machine\": \""
         << row.machine << "\", \"winner\": \"" << row.winner
         << "\", \"median_makespan_seconds\": " << row.median_makespan
         << ", \"median_ratio_to_omim\": " << row.median_ratio
         << ", \"comm_over_comp\": " << row.comm_over_comp
         << ", \"solves_per_second\": " << row.solves_per_sec << "}"
         << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  json << "  ],\n  \"asymmetry\": [\n";
  for (std::size_t i = 0; i < asymmetry.size(); ++i) {
    const AsymmetryRow& row = asymmetry[i];
    json << "    {\"kernel\": \"" << row.kernel
         << "\", \"d2h_slowdown\": " << row.slowdown
         << ", \"scmr_median_makespan_seconds\": " << row.scmr_median
         << ", \"duplex_balance_median_makespan_seconds\": "
         << row.balance_median
         << ", \"balance_over_scmr\": " << row.balance_over_scmr() << "}"
         << (i + 1 < asymmetry.size() ? "," : "") << "\n";
  }
  json << "  ],\n  \"dag\": [\n";
  for (std::size_t i = 0; i < dag_rows.size(); ++i) {
    const DagRow& row = dag_rows[i];
    json << "    {\"kernel\": \"" << row.kernel << "\", \"dag_machine\": \""
         << row.machine << "\", \"winner\": \"" << row.winner
         << "\", \"dag_median_makespan_seconds\": " << row.dag_median
         << ", \"relaxed_median_makespan_seconds\": " << row.relaxed_median
         << ", \"dag_over_relaxed\": " << row.dag_over_relaxed() << "}"
         << (i + 1 < dag_rows.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  std::printf("\nwrote %s (%zu rows + %zu asymmetry rows + %zu DAG rows)\n",
              json_path.c_str(), rows.size(), asymmetry.size(),
              dag_rows.size());
  return 0;
}
