/// Fig. 7 — all heuristics against the iterative window solver on a
/// single HF trace across the nine capacities mc..2mc. The windowed
/// per-window optimizer plays the role of the paper's GLPK-based lp.k
/// (windowed, greedy across windows — not a whole-instance optimum);
/// the repo's actual MILP lives in src/milp/ and bench_fig7_duplex.cpp
/// runs the whole-instance exact-vs-heuristic study against it. The
/// paper's observation to reproduce here: windowed optimization
/// (lp.3..lp.6) underperforms most of the direct heuristics.

#include <cstdio>

#include "bench_common.hpp"
#include "core/johnson.hpp"
#include "exact/window_solver.hpp"
#include "trace/generators.hpp"

int main(int argc, char** argv) {
  using namespace dts;
  const bench::Options options = bench::Options::parse(argc, argv);

  TraceConfig config;
  config.seed = options.seed;
  const Instance inst = generate_hf_trace(config);
  const Time lower = omim(inst);
  const Mem mc = inst.min_capacity();
  std::printf(
      "Fig. 7 — single HF trace (%zu tasks, mc = %s), ratio to OMIM:\n\n",
      inst.size(), format_si_bytes(mc).c_str());

  std::vector<std::string> headers{"capacity"};
  for (HeuristicId id : all_heuristic_ids()) headers.emplace_back(name_of(id));
  const std::vector<WindowOptions> windows{
      {.window = 3, .mode = WindowMode::kCommonOrder},
      {.window = 4, .mode = WindowMode::kCommonOrder},
      {.window = 5, .mode = WindowMode::kCommonOrder},
      {.window = 6, .mode = WindowMode::kCommonOrder},
      {.window = 3, .mode = WindowMode::kPairOrder},
      {.window = 4, .mode = WindowMode::kPairOrder},
  };
  for (const WindowOptions& w : windows) {
    headers.push_back(window_heuristic_name(w));
  }
  TextTable table(std::move(headers));

  for (double factor : bench::capacity_factors()) {
    const Mem capacity = mc * factor;
    std::vector<std::string> row{format_fixed(factor, 3) + " mc"};
    for (HeuristicId id : all_heuristic_ids()) {
      row.push_back(
          format_fixed(heuristic_makespan(id, inst, capacity) / lower, 4));
    }
    for (const WindowOptions& w : windows) {
      const Schedule s = schedule_windowed(inst, capacity, w);
      row.push_back(format_fixed(s.makespan(inst) / lower, 4));
    }
    table.add_row(std::move(row));
    std::printf(".");
    std::fflush(stdout);
  }
  std::printf("\n\n%s", table.to_ascii().c_str());

  bench::write_table_csv(options, "fig07_milp_comparison", table);
  return 0;
}
