/// Fig. 6 / Table 5 — the three static-order-with-dynamic-corrections
/// schedules on the Table 5 instance with capacity 9 and the figure's OMIM
/// base order B C D A E.

#include <cstdio>

#include "bench_common.hpp"
#include "heuristics/corrections.hpp"
#include "report/gantt.hpp"

int main(int argc, char** argv) {
  using namespace dts;
  const bench::Options options = bench::Options::parse(argc, argv);

  const Instance inst =
      Instance::from_comm_comp({{4, 1}, {2, 6}, {8, 8}, {5, 4}, {3, 2}});
  constexpr Mem kCapacity = 9.0;
  const std::vector<TaskId> base{1, 2, 3, 0, 4};  // B C D A E (Fig. 6)

  std::printf(
      "Fig. 6 — corrections heuristics on Table 5 (capacity 9, base order "
      "B C D A E):\n\n");
  TextTable table({"heuristic", "realized order", "makespan", "paper"});
  const struct {
    DynamicCriterion criterion;
    const char* expected;
  } rows[] = {
      {DynamicCriterion::kLargestComm, "33"},
      {DynamicCriterion::kSmallestComm, "35"},
      {DynamicCriterion::kMaxAcceleration, "33"},
  };
  for (const auto& row : rows) {
    const Schedule s = schedule_corrected_with_order(inst, base, row.criterion,
                                                     kCapacity);
    std::string order_str;
    for (TaskId id : s.comm_order()) order_str += static_cast<char>('A' + id);
    table.add_row({std::string(to_corrected_acronym(row.criterion)), order_str,
                   format_fixed(s.makespan(inst), 0), row.expected});
    std::printf("%s (order %s), makespan %.0f:\n%s\n",
                std::string(to_corrected_acronym(row.criterion)).c_str(),
                order_str.c_str(), s.makespan(inst),
                render_gantt(inst, s, {.width = 60, .show_legend = false})
                    .c_str());
  }
  std::printf("%s", table.to_ascii().c_str());
  bench::write_table_csv(options, "fig06_corrections", table);
  return 0;
}
