file(REMOVE_RECURSE
  "CMakeFiles/fig10_hf_best.dir/bench/fig10_hf_best.cpp.o"
  "CMakeFiles/fig10_hf_best.dir/bench/fig10_hf_best.cpp.o.d"
  "fig10_hf_best"
  "fig10_hf_best.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_hf_best.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
