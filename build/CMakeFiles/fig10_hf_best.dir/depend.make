# Empty dependencies file for fig10_hf_best.
# This may be replaced when dependencies are built.
