file(REMOVE_RECURSE
  "CMakeFiles/gpu_offload.dir/examples/gpu_offload.cpp.o"
  "CMakeFiles/gpu_offload.dir/examples/gpu_offload.cpp.o.d"
  "gpu_offload"
  "gpu_offload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpu_offload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
