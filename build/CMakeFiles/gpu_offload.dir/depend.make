# Empty dependencies file for gpu_offload.
# This may be replaced when dependencies are built.
