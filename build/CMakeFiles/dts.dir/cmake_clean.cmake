file(REMOVE_RECURSE
  "CMakeFiles/dts.dir/tools/dts_cli.cpp.o"
  "CMakeFiles/dts.dir/tools/dts_cli.cpp.o.d"
  "dts"
  "dts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
