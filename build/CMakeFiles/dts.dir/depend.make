# Empty dependencies file for dts.
# This may be replaced when dependencies are built.
