# Empty dependencies file for table6_favorable.
# This may be replaced when dependencies are built.
