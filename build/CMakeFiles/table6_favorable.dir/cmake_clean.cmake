file(REMOVE_RECURSE
  "CMakeFiles/table6_favorable.dir/bench/table6_favorable.cpp.o"
  "CMakeFiles/table6_favorable.dir/bench/table6_favorable.cpp.o.d"
  "table6_favorable"
  "table6_favorable.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_favorable.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
