# Empty dependencies file for fig04_static_orders.
# This may be replaced when dependencies are built.
