file(REMOVE_RECURSE
  "CMakeFiles/fig04_static_orders.dir/bench/fig04_static_orders.cpp.o"
  "CMakeFiles/fig04_static_orders.dir/bench/fig04_static_orders.cpp.o.d"
  "fig04_static_orders"
  "fig04_static_orders.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_static_orders.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
