file(REMOVE_RECURSE
  "CMakeFiles/fig13_batches.dir/bench/fig13_batches.cpp.o"
  "CMakeFiles/fig13_batches.dir/bench/fig13_batches.cpp.o.d"
  "fig13_batches"
  "fig13_batches.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_batches.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
