# Empty dependencies file for fig13_batches.
# This may be replaced when dependencies are built.
