# Empty dependencies file for fig09_hf_heuristics.
# This may be replaced when dependencies are built.
