file(REMOVE_RECURSE
  "CMakeFiles/fig09_hf_heuristics.dir/bench/fig09_hf_heuristics.cpp.o"
  "CMakeFiles/fig09_hf_heuristics.dir/bench/fig09_hf_heuristics.cpp.o.d"
  "fig09_hf_heuristics"
  "fig09_hf_heuristics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_hf_heuristics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
