file(REMOVE_RECURSE
  "CMakeFiles/fig05_dynamic.dir/bench/fig05_dynamic.cpp.o"
  "CMakeFiles/fig05_dynamic.dir/bench/fig05_dynamic.cpp.o.d"
  "fig05_dynamic"
  "fig05_dynamic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_dynamic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
