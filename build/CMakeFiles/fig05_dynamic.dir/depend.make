# Empty dependencies file for fig05_dynamic.
# This may be replaced when dependencies are built.
