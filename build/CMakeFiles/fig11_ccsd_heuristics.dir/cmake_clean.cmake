file(REMOVE_RECURSE
  "CMakeFiles/fig11_ccsd_heuristics.dir/bench/fig11_ccsd_heuristics.cpp.o"
  "CMakeFiles/fig11_ccsd_heuristics.dir/bench/fig11_ccsd_heuristics.cpp.o.d"
  "fig11_ccsd_heuristics"
  "fig11_ccsd_heuristics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_ccsd_heuristics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
