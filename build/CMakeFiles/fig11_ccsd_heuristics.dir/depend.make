# Empty dependencies file for fig11_ccsd_heuristics.
# This may be replaced when dependencies are built.
