file(REMOVE_RECURSE
  "CMakeFiles/fig12_ccsd_best.dir/bench/fig12_ccsd_best.cpp.o"
  "CMakeFiles/fig12_ccsd_best.dir/bench/fig12_ccsd_best.cpp.o.d"
  "fig12_ccsd_best"
  "fig12_ccsd_best.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_ccsd_best.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
