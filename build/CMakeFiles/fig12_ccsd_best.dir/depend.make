# Empty dependencies file for fig12_ccsd_best.
# This may be replaced when dependencies are built.
