file(REMOVE_RECURSE
  "CMakeFiles/ablation_candidate_rule.dir/bench/ablation_candidate_rule.cpp.o"
  "CMakeFiles/ablation_candidate_rule.dir/bench/ablation_candidate_rule.cpp.o.d"
  "ablation_candidate_rule"
  "ablation_candidate_rule.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_candidate_rule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
