# Empty dependencies file for ablation_candidate_rule.
# This may be replaced when dependencies are built.
