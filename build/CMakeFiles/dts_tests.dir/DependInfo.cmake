
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/auto_recommend_test.cpp" "CMakeFiles/dts_tests.dir/tests/auto_recommend_test.cpp.o" "gcc" "CMakeFiles/dts_tests.dir/tests/auto_recommend_test.cpp.o.d"
  "/root/repo/tests/batch_test.cpp" "CMakeFiles/dts_tests.dir/tests/batch_test.cpp.o" "gcc" "CMakeFiles/dts_tests.dir/tests/batch_test.cpp.o.d"
  "/root/repo/tests/bin_packing_test.cpp" "CMakeFiles/dts_tests.dir/tests/bin_packing_test.cpp.o" "gcc" "CMakeFiles/dts_tests.dir/tests/bin_packing_test.cpp.o.d"
  "/root/repo/tests/cli_test.cpp" "CMakeFiles/dts_tests.dir/tests/cli_test.cpp.o" "gcc" "CMakeFiles/dts_tests.dir/tests/cli_test.cpp.o.d"
  "/root/repo/tests/corrections_test.cpp" "CMakeFiles/dts_tests.dir/tests/corrections_test.cpp.o" "gcc" "CMakeFiles/dts_tests.dir/tests/corrections_test.cpp.o.d"
  "/root/repo/tests/dynamic_test.cpp" "CMakeFiles/dts_tests.dir/tests/dynamic_test.cpp.o" "gcc" "CMakeFiles/dts_tests.dir/tests/dynamic_test.cpp.o.d"
  "/root/repo/tests/exact_test.cpp" "CMakeFiles/dts_tests.dir/tests/exact_test.cpp.o" "gcc" "CMakeFiles/dts_tests.dir/tests/exact_test.cpp.o.d"
  "/root/repo/tests/gilmore_gomory_test.cpp" "CMakeFiles/dts_tests.dir/tests/gilmore_gomory_test.cpp.o" "gcc" "CMakeFiles/dts_tests.dir/tests/gilmore_gomory_test.cpp.o.d"
  "/root/repo/tests/johnson_test.cpp" "CMakeFiles/dts_tests.dir/tests/johnson_test.cpp.o" "gcc" "CMakeFiles/dts_tests.dir/tests/johnson_test.cpp.o.d"
  "/root/repo/tests/local_search_test.cpp" "CMakeFiles/dts_tests.dir/tests/local_search_test.cpp.o" "gcc" "CMakeFiles/dts_tests.dir/tests/local_search_test.cpp.o.d"
  "/root/repo/tests/lower_bounds_test.cpp" "CMakeFiles/dts_tests.dir/tests/lower_bounds_test.cpp.o" "gcc" "CMakeFiles/dts_tests.dir/tests/lower_bounds_test.cpp.o.d"
  "/root/repo/tests/paper_examples_test.cpp" "CMakeFiles/dts_tests.dir/tests/paper_examples_test.cpp.o" "gcc" "CMakeFiles/dts_tests.dir/tests/paper_examples_test.cpp.o.d"
  "/root/repo/tests/property_test.cpp" "CMakeFiles/dts_tests.dir/tests/property_test.cpp.o" "gcc" "CMakeFiles/dts_tests.dir/tests/property_test.cpp.o.d"
  "/root/repo/tests/reduction_test.cpp" "CMakeFiles/dts_tests.dir/tests/reduction_test.cpp.o" "gcc" "CMakeFiles/dts_tests.dir/tests/reduction_test.cpp.o.d"
  "/root/repo/tests/registry_test.cpp" "CMakeFiles/dts_tests.dir/tests/registry_test.cpp.o" "gcc" "CMakeFiles/dts_tests.dir/tests/registry_test.cpp.o.d"
  "/root/repo/tests/report_test.cpp" "CMakeFiles/dts_tests.dir/tests/report_test.cpp.o" "gcc" "CMakeFiles/dts_tests.dir/tests/report_test.cpp.o.d"
  "/root/repo/tests/rng_test.cpp" "CMakeFiles/dts_tests.dir/tests/rng_test.cpp.o" "gcc" "CMakeFiles/dts_tests.dir/tests/rng_test.cpp.o.d"
  "/root/repo/tests/schedule_stats_test.cpp" "CMakeFiles/dts_tests.dir/tests/schedule_stats_test.cpp.o" "gcc" "CMakeFiles/dts_tests.dir/tests/schedule_stats_test.cpp.o.d"
  "/root/repo/tests/schedule_test.cpp" "CMakeFiles/dts_tests.dir/tests/schedule_test.cpp.o" "gcc" "CMakeFiles/dts_tests.dir/tests/schedule_test.cpp.o.d"
  "/root/repo/tests/simulate_test.cpp" "CMakeFiles/dts_tests.dir/tests/simulate_test.cpp.o" "gcc" "CMakeFiles/dts_tests.dir/tests/simulate_test.cpp.o.d"
  "/root/repo/tests/solver_test.cpp" "CMakeFiles/dts_tests.dir/tests/solver_test.cpp.o" "gcc" "CMakeFiles/dts_tests.dir/tests/solver_test.cpp.o.d"
  "/root/repo/tests/static_orders_test.cpp" "CMakeFiles/dts_tests.dir/tests/static_orders_test.cpp.o" "gcc" "CMakeFiles/dts_tests.dir/tests/static_orders_test.cpp.o.d"
  "/root/repo/tests/task_instance_test.cpp" "CMakeFiles/dts_tests.dir/tests/task_instance_test.cpp.o" "gcc" "CMakeFiles/dts_tests.dir/tests/task_instance_test.cpp.o.d"
  "/root/repo/tests/three_stage_test.cpp" "CMakeFiles/dts_tests.dir/tests/three_stage_test.cpp.o" "gcc" "CMakeFiles/dts_tests.dir/tests/three_stage_test.cpp.o.d"
  "/root/repo/tests/trace_test.cpp" "CMakeFiles/dts_tests.dir/tests/trace_test.cpp.o" "gcc" "CMakeFiles/dts_tests.dir/tests/trace_test.cpp.o.d"
  "/root/repo/tests/transforms_test.cpp" "CMakeFiles/dts_tests.dir/tests/transforms_test.cpp.o" "gcc" "CMakeFiles/dts_tests.dir/tests/transforms_test.cpp.o.d"
  "/root/repo/tests/validate_test.cpp" "CMakeFiles/dts_tests.dir/tests/validate_test.cpp.o" "gcc" "CMakeFiles/dts_tests.dir/tests/validate_test.cpp.o.d"
  "/root/repo/tests/window_solver_test.cpp" "CMakeFiles/dts_tests.dir/tests/window_solver_test.cpp.o" "gcc" "CMakeFiles/dts_tests.dir/tests/window_solver_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/CMakeFiles/dts_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
