# Empty dependencies file for dts_tests.
# This may be replaced when dependencies are built.
