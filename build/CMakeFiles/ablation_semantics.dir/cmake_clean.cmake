file(REMOVE_RECURSE
  "CMakeFiles/ablation_semantics.dir/bench/ablation_semantics.cpp.o"
  "CMakeFiles/ablation_semantics.dir/bench/ablation_semantics.cpp.o.d"
  "ablation_semantics"
  "ablation_semantics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_semantics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
