# Empty dependencies file for ablation_semantics.
# This may be replaced when dependencies are built.
