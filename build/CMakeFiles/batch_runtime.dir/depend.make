# Empty dependencies file for batch_runtime.
# This may be replaced when dependencies are built.
