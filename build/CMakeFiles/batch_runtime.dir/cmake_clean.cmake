file(REMOVE_RECURSE
  "CMakeFiles/batch_runtime.dir/examples/batch_runtime.cpp.o"
  "CMakeFiles/batch_runtime.dir/examples/batch_runtime.cpp.o.d"
  "batch_runtime"
  "batch_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/batch_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
