file(REMOVE_RECURSE
  "CMakeFiles/fig06_corrections.dir/bench/fig06_corrections.cpp.o"
  "CMakeFiles/fig06_corrections.dir/bench/fig06_corrections.cpp.o.d"
  "fig06_corrections"
  "fig06_corrections.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_corrections.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
