# Empty dependencies file for fig06_corrections.
# This may be replaced when dependencies are built.
