file(REMOVE_RECURSE
  "CMakeFiles/np_hardness.dir/examples/np_hardness.cpp.o"
  "CMakeFiles/np_hardness.dir/examples/np_hardness.cpp.o.d"
  "np_hardness"
  "np_hardness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/np_hardness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
