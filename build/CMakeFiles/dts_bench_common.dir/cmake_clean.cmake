file(REMOVE_RECURSE
  "CMakeFiles/dts_bench_common.dir/bench/bench_common.cpp.o"
  "CMakeFiles/dts_bench_common.dir/bench/bench_common.cpp.o.d"
  "libdts_bench_common.a"
  "libdts_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dts_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
