# Empty dependencies file for dts_bench_common.
# This may be replaced when dependencies are built.
