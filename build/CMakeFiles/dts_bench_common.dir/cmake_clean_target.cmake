file(REMOVE_RECURSE
  "libdts_bench_common.a"
)
