# Empty dependencies file for chemistry_traces.
# This may be replaced when dependencies are built.
