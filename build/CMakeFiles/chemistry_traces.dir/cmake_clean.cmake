file(REMOVE_RECURSE
  "CMakeFiles/chemistry_traces.dir/examples/chemistry_traces.cpp.o"
  "CMakeFiles/chemistry_traces.dir/examples/chemistry_traces.cpp.o.d"
  "chemistry_traces"
  "chemistry_traces.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chemistry_traces.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
