file(REMOVE_RECURSE
  "CMakeFiles/fig02_reduction.dir/bench/fig02_reduction.cpp.o"
  "CMakeFiles/fig02_reduction.dir/bench/fig02_reduction.cpp.o.d"
  "fig02_reduction"
  "fig02_reduction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_reduction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
