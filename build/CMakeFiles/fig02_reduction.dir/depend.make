# Empty dependencies file for fig02_reduction.
# This may be replaced when dependencies are built.
