file(REMOVE_RECURSE
  "CMakeFiles/fig03_order_mismatch.dir/bench/fig03_order_mismatch.cpp.o"
  "CMakeFiles/fig03_order_mismatch.dir/bench/fig03_order_mismatch.cpp.o.d"
  "fig03_order_mismatch"
  "fig03_order_mismatch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_order_mismatch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
