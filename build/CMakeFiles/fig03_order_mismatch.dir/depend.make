# Empty dependencies file for fig03_order_mismatch.
# This may be replaced when dependencies are built.
