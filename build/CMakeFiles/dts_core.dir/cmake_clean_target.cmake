file(REMOVE_RECURSE
  "libdts_core.a"
)
