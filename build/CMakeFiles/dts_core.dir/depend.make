# Empty dependencies file for dts_core.
# This may be replaced when dependencies are built.
