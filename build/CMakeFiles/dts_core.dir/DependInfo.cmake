
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cli/cli.cpp" "CMakeFiles/dts_core.dir/src/cli/cli.cpp.o" "gcc" "CMakeFiles/dts_core.dir/src/cli/cli.cpp.o.d"
  "/root/repo/src/core/auto_scheduler.cpp" "CMakeFiles/dts_core.dir/src/core/auto_scheduler.cpp.o" "gcc" "CMakeFiles/dts_core.dir/src/core/auto_scheduler.cpp.o.d"
  "/root/repo/src/core/batch.cpp" "CMakeFiles/dts_core.dir/src/core/batch.cpp.o" "gcc" "CMakeFiles/dts_core.dir/src/core/batch.cpp.o.d"
  "/root/repo/src/core/bounds.cpp" "CMakeFiles/dts_core.dir/src/core/bounds.cpp.o" "gcc" "CMakeFiles/dts_core.dir/src/core/bounds.cpp.o.d"
  "/root/repo/src/core/instance.cpp" "CMakeFiles/dts_core.dir/src/core/instance.cpp.o" "gcc" "CMakeFiles/dts_core.dir/src/core/instance.cpp.o.d"
  "/root/repo/src/core/johnson.cpp" "CMakeFiles/dts_core.dir/src/core/johnson.cpp.o" "gcc" "CMakeFiles/dts_core.dir/src/core/johnson.cpp.o.d"
  "/root/repo/src/core/recommend.cpp" "CMakeFiles/dts_core.dir/src/core/recommend.cpp.o" "gcc" "CMakeFiles/dts_core.dir/src/core/recommend.cpp.o.d"
  "/root/repo/src/core/registry.cpp" "CMakeFiles/dts_core.dir/src/core/registry.cpp.o" "gcc" "CMakeFiles/dts_core.dir/src/core/registry.cpp.o.d"
  "/root/repo/src/core/schedule.cpp" "CMakeFiles/dts_core.dir/src/core/schedule.cpp.o" "gcc" "CMakeFiles/dts_core.dir/src/core/schedule.cpp.o.d"
  "/root/repo/src/core/simulate.cpp" "CMakeFiles/dts_core.dir/src/core/simulate.cpp.o" "gcc" "CMakeFiles/dts_core.dir/src/core/simulate.cpp.o.d"
  "/root/repo/src/core/solver.cpp" "CMakeFiles/dts_core.dir/src/core/solver.cpp.o" "gcc" "CMakeFiles/dts_core.dir/src/core/solver.cpp.o.d"
  "/root/repo/src/core/solvers_builtin.cpp" "CMakeFiles/dts_core.dir/src/core/solvers_builtin.cpp.o" "gcc" "CMakeFiles/dts_core.dir/src/core/solvers_builtin.cpp.o.d"
  "/root/repo/src/core/task.cpp" "CMakeFiles/dts_core.dir/src/core/task.cpp.o" "gcc" "CMakeFiles/dts_core.dir/src/core/task.cpp.o.d"
  "/root/repo/src/core/validate.cpp" "CMakeFiles/dts_core.dir/src/core/validate.cpp.o" "gcc" "CMakeFiles/dts_core.dir/src/core/validate.cpp.o.d"
  "/root/repo/src/exact/branch_bound.cpp" "CMakeFiles/dts_core.dir/src/exact/branch_bound.cpp.o" "gcc" "CMakeFiles/dts_core.dir/src/exact/branch_bound.cpp.o.d"
  "/root/repo/src/exact/exhaustive.cpp" "CMakeFiles/dts_core.dir/src/exact/exhaustive.cpp.o" "gcc" "CMakeFiles/dts_core.dir/src/exact/exhaustive.cpp.o.d"
  "/root/repo/src/exact/lower_bounds.cpp" "CMakeFiles/dts_core.dir/src/exact/lower_bounds.cpp.o" "gcc" "CMakeFiles/dts_core.dir/src/exact/lower_bounds.cpp.o.d"
  "/root/repo/src/exact/window_solver.cpp" "CMakeFiles/dts_core.dir/src/exact/window_solver.cpp.o" "gcc" "CMakeFiles/dts_core.dir/src/exact/window_solver.cpp.o.d"
  "/root/repo/src/heuristics/bin_packing.cpp" "CMakeFiles/dts_core.dir/src/heuristics/bin_packing.cpp.o" "gcc" "CMakeFiles/dts_core.dir/src/heuristics/bin_packing.cpp.o.d"
  "/root/repo/src/heuristics/corrections.cpp" "CMakeFiles/dts_core.dir/src/heuristics/corrections.cpp.o" "gcc" "CMakeFiles/dts_core.dir/src/heuristics/corrections.cpp.o.d"
  "/root/repo/src/heuristics/dynamic.cpp" "CMakeFiles/dts_core.dir/src/heuristics/dynamic.cpp.o" "gcc" "CMakeFiles/dts_core.dir/src/heuristics/dynamic.cpp.o.d"
  "/root/repo/src/heuristics/gilmore_gomory.cpp" "CMakeFiles/dts_core.dir/src/heuristics/gilmore_gomory.cpp.o" "gcc" "CMakeFiles/dts_core.dir/src/heuristics/gilmore_gomory.cpp.o.d"
  "/root/repo/src/heuristics/local_search.cpp" "CMakeFiles/dts_core.dir/src/heuristics/local_search.cpp.o" "gcc" "CMakeFiles/dts_core.dir/src/heuristics/local_search.cpp.o.d"
  "/root/repo/src/heuristics/static_orders.cpp" "CMakeFiles/dts_core.dir/src/heuristics/static_orders.cpp.o" "gcc" "CMakeFiles/dts_core.dir/src/heuristics/static_orders.cpp.o.d"
  "/root/repo/src/reduction/three_partition.cpp" "CMakeFiles/dts_core.dir/src/reduction/three_partition.cpp.o" "gcc" "CMakeFiles/dts_core.dir/src/reduction/three_partition.cpp.o.d"
  "/root/repo/src/report/csv.cpp" "CMakeFiles/dts_core.dir/src/report/csv.cpp.o" "gcc" "CMakeFiles/dts_core.dir/src/report/csv.cpp.o.d"
  "/root/repo/src/report/gantt.cpp" "CMakeFiles/dts_core.dir/src/report/gantt.cpp.o" "gcc" "CMakeFiles/dts_core.dir/src/report/gantt.cpp.o.d"
  "/root/repo/src/report/schedule_stats.cpp" "CMakeFiles/dts_core.dir/src/report/schedule_stats.cpp.o" "gcc" "CMakeFiles/dts_core.dir/src/report/schedule_stats.cpp.o.d"
  "/root/repo/src/report/stats.cpp" "CMakeFiles/dts_core.dir/src/report/stats.cpp.o" "gcc" "CMakeFiles/dts_core.dir/src/report/stats.cpp.o.d"
  "/root/repo/src/report/table.cpp" "CMakeFiles/dts_core.dir/src/report/table.cpp.o" "gcc" "CMakeFiles/dts_core.dir/src/report/table.cpp.o.d"
  "/root/repo/src/support/parallel_for.cpp" "CMakeFiles/dts_core.dir/src/support/parallel_for.cpp.o" "gcc" "CMakeFiles/dts_core.dir/src/support/parallel_for.cpp.o.d"
  "/root/repo/src/support/rng.cpp" "CMakeFiles/dts_core.dir/src/support/rng.cpp.o" "gcc" "CMakeFiles/dts_core.dir/src/support/rng.cpp.o.d"
  "/root/repo/src/threestage/three_stage.cpp" "CMakeFiles/dts_core.dir/src/threestage/three_stage.cpp.o" "gcc" "CMakeFiles/dts_core.dir/src/threestage/three_stage.cpp.o.d"
  "/root/repo/src/trace/ccsd_generator.cpp" "CMakeFiles/dts_core.dir/src/trace/ccsd_generator.cpp.o" "gcc" "CMakeFiles/dts_core.dir/src/trace/ccsd_generator.cpp.o.d"
  "/root/repo/src/trace/hf_generator.cpp" "CMakeFiles/dts_core.dir/src/trace/hf_generator.cpp.o" "gcc" "CMakeFiles/dts_core.dir/src/trace/hf_generator.cpp.o.d"
  "/root/repo/src/trace/machine.cpp" "CMakeFiles/dts_core.dir/src/trace/machine.cpp.o" "gcc" "CMakeFiles/dts_core.dir/src/trace/machine.cpp.o.d"
  "/root/repo/src/trace/tensor_tasks.cpp" "CMakeFiles/dts_core.dir/src/trace/tensor_tasks.cpp.o" "gcc" "CMakeFiles/dts_core.dir/src/trace/tensor_tasks.cpp.o.d"
  "/root/repo/src/trace/trace_io.cpp" "CMakeFiles/dts_core.dir/src/trace/trace_io.cpp.o" "gcc" "CMakeFiles/dts_core.dir/src/trace/trace_io.cpp.o.d"
  "/root/repo/src/trace/transforms.cpp" "CMakeFiles/dts_core.dir/src/trace/transforms.cpp.o" "gcc" "CMakeFiles/dts_core.dir/src/trace/transforms.cpp.o.d"
  "/root/repo/src/trace/workload_stats.cpp" "CMakeFiles/dts_core.dir/src/trace/workload_stats.cpp.o" "gcc" "CMakeFiles/dts_core.dir/src/trace/workload_stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
