file(REMOVE_RECURSE
  "CMakeFiles/fig07_milp_comparison.dir/bench/fig07_milp_comparison.cpp.o"
  "CMakeFiles/fig07_milp_comparison.dir/bench/fig07_milp_comparison.cpp.o.d"
  "fig07_milp_comparison"
  "fig07_milp_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_milp_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
