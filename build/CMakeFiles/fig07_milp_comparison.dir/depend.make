# Empty dependencies file for fig07_milp_comparison.
# This may be replaced when dependencies are built.
