# Empty dependencies file for ext_three_stage.
# This may be replaced when dependencies are built.
