file(REMOVE_RECURSE
  "CMakeFiles/ext_three_stage.dir/bench/ext_three_stage.cpp.o"
  "CMakeFiles/ext_three_stage.dir/bench/ext_three_stage.cpp.o.d"
  "ext_three_stage"
  "ext_three_stage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_three_stage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
