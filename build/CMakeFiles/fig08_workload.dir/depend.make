# Empty dependencies file for fig08_workload.
# This may be replaced when dependencies are built.
