file(REMOVE_RECURSE
  "CMakeFiles/fig08_workload.dir/bench/fig08_workload.cpp.o"
  "CMakeFiles/fig08_workload.dir/bench/fig08_workload.cpp.o.d"
  "fig08_workload"
  "fig08_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
