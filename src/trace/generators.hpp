#pragma once

/// \file generators.hpp
/// Synthetic per-process traces standing in for the paper's NWChem runs on
/// PNNL Cascade (150 processes, 300-800 tasks each; HF on SiOSi molecules
/// with tile size 100, CCSD on Uracil). The generators are calibrated to
/// the published aggregate shape (Fig. 8) — see DESIGN.md §5 for the
/// substitution argument:
///
///  * HF: near-homogeneous tasks; communication dominates (the sum of
///    computation times is ~a quarter of the sum of communication times,
///    capping the achievable overlap near 20%); the compute-intensive
///    minority has *small* communication times; the largest task fetches
///    two 100x100 tiles plus an index buffer — mc = 176 KB.
///  * CCSD: heterogeneous tile sizes; communication and computation sums
///    are comparable (roughly half the sequential time can be hidden);
///    significant fractions of both task types; the largest tasks fetch
///    ~1.8 GB slabs — mc = 1.8 GB.
///
/// Generation is fully deterministic in the seed.

#include <cstdint>
#include <vector>

#include "core/instance.hpp"
#include "trace/machine.hpp"

namespace dts {

enum class ChemistryKernel {
  kHartreeFock,        ///< HF, SiOSi-like workload
  kCoupledClusterSD,   ///< CCSD, Uracil-like workload
};

[[nodiscard]] std::string_view to_string(ChemistryKernel kernel) noexcept;

struct TraceConfig {
  std::uint64_t seed = 1;
  /// Tasks per process trace, sampled uniformly in [min_tasks, max_tasks].
  std::size_t min_tasks = 300;
  std::size_t max_tasks = 800;
  MachineModel machine = MachineModel::cascade();
  /// Fraction of each task's input footprint written back to the host
  /// when the machine is duplex (see below). HF accumulates one result
  /// tile against two fetched ones; CCSD amplitude slabs return near
  /// full-size — 0.4 is a serviceable middle ground for both.
  double writeback_fraction = 0.4;
};

/// One HF process trace (Fock-build fetches + small resident contractions).
[[nodiscard]] Instance generate_hf_trace(const TraceConfig& config);

/// One CCSD process trace (large slab fetches, tile transposes, and
/// compute-rich amplitude contractions).
[[nodiscard]] Instance generate_ccsd_trace(const TraceConfig& config);

/// One CCSD process trace with *precedence*: contraction chains in the
/// Super Instruction style. Each chain is a pipeline of 2–5 tensor
/// contractions — contraction k fetches its fresh operand slab from the
/// host but must also wait for contraction k-1 (the intermediate stays
/// on the device, so the transfer may overlap with earlier chains but
/// the computation order is fixed) — and ends with a result write-back
/// task (comp = 0) depending on the final contraction. On a duplex
/// machine (MachineModel::duplex()) write-backs ride kChannelD2H;
/// half-duplex machines put them on the single channel. Chains are
/// mutually independent, so the instance is a forest of linear DAGs —
/// the shape Instance::has_dependencies()-aware solvers are benchmarked
/// on. Volume and intensity distributions match generate_ccsd_trace;
/// fully deterministic in the seed.
[[nodiscard]] Instance generate_ccsd_dag_trace(const TraceConfig& config);

/// Dispatch on the kernel. A duplex machine (MachineModel::duplex() —
/// e.g. MachineModel::duplex_pcie()) makes the trace bidirectional: each
/// fetched task is followed by a result write-back task on kChannelD2H
/// sized by TraceConfig::writeback_fraction, so input and output traffic
/// can overlap on the two engines. Half-duplex machines reproduce the
/// original single-channel traces bit-for-bit.
[[nodiscard]] Instance generate_trace(ChemistryKernel kernel,
                                      const TraceConfig& config);

/// The paper's experimental corpus: `count` process traces (150 in the
/// paper) with seeds base_seed, base_seed+1, ...
[[nodiscard]] std::vector<Instance> generate_process_traces(
    ChemistryKernel kernel, std::size_t count, std::uint64_t base_seed,
    const TraceConfig& prototype = {});

}  // namespace dts
