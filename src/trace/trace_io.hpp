#pragma once

/// \file trace_io.hpp
/// Plain-text trace format, one task per line:
///
///     # dts-trace v1
///     # optional comment lines
///     task <name> <comm_seconds> <comp_seconds> <mem_bytes> [<channel>]
///         [bytes=<comm_bytes>] [deps=<i>,<j>,...]
///
/// Durations are decimal seconds, memory decimal bytes; `<name>` contains
/// no whitespace. The optional fifth field is the copy engine the
/// transfer occupies (default 0, the single link of v1 traces); it is
/// only legal under a "# dts-trace v2" (or later) header — a 5th column
/// in a v1 trace is rejected rather than silently becoming a channel
/// assignment.
///
/// Version 3 ("# dts-trace v3") adds the machine-independent transfer
/// *size*: a trailing `bytes=<B>` annotation per task, gated on the v3
/// header exactly like the channel column is gated on v2. A
/// byte-annotated task can be re-costed for different hardware with
/// bind(inst, machine) (model/machine.hpp) or `dts recost`. Under v3 the
/// `<comm_seconds>` field may also be `?` — a *time-less* task whose cost
/// must come from its byte annotation (only legal together with
/// `bytes=`); such bytes-only traces are the machine-independent workload
/// interchange format.
///
/// Version 4 ("# dts-trace v4") adds precedence: a trailing
/// `deps=<i>,<j>,...` annotation per task, listing the 0-based file
/// positions of its predecessor tasks (the transfer may not start before
/// each listed task's computation ends). It is always the *last* column —
/// after the channel column and `bytes=` — and is gated on the v4 header
/// exactly like `bytes=` is gated on v3. The reader checks the ids are
/// well-formed numbers; dangling ids, self-edges and cycles are rejected
/// by Instance construction with its exact diagnostics.
///
/// Writers emit the lowest version that can represent the instance (v2
/// only for multi-channel, v3 only for byte-annotated or time-less
/// tasks, v4 only when some task declares dependency edges), so legacy
/// traces stay byte-identical to v1 and old readers keep working on
/// them — in particular every edge-free instance round-trips through
/// v1–v3 unchanged. The format round-trips every Instance the library
/// can represent and is the interchange point for users who bring
/// measured traces from their own runtimes (the paper's experiments
/// consumed such per-process trace files).

#include <filesystem>
#include <iosfwd>
#include <stdexcept>

#include "core/instance.hpp"

namespace dts {

/// Error with 1-based line information for malformed trace text.
class TraceIoError : public std::runtime_error {
 public:
  TraceIoError(std::size_t line, const std::string& message)
      : std::runtime_error("trace line " + std::to_string(line) + ": " +
                           message),
        line_(line) {}
  [[nodiscard]] std::size_t line() const noexcept { return line_; }

 private:
  std::size_t line_;
};

/// Serializes the instance; includes a summary comment header.
void write_trace(std::ostream& out, const Instance& inst);
void write_trace_file(const std::filesystem::path& path, const Instance& inst);

/// Parses a trace; throws TraceIoError on malformed input and
/// std::runtime_error when the file cannot be opened.
[[nodiscard]] Instance read_trace(std::istream& in);
[[nodiscard]] Instance read_trace_file(const std::filesystem::path& path);

}  // namespace dts
