#include "trace/workload_stats.hpp"

namespace dts {

WorkloadCharacteristics characterize(const Instance& inst) {
  WorkloadCharacteristics wc;
  wc.bounds = compute_bounds(inst);
  const Time omim = wc.bounds.omim_lower;
  if (omim > 0.0) {
    wc.comm_over_omim = wc.bounds.sum_comm / omim;
    wc.comp_over_omim = wc.bounds.sum_comp / omim;
    wc.max_over_omim = wc.bounds.area_lower / omim;
    wc.total_over_omim = wc.bounds.sequential_upper / omim;
  }
  return wc;
}

std::vector<WorkloadCharacteristics> characterize_all(
    const std::vector<Instance>& traces) {
  std::vector<WorkloadCharacteristics> all;
  all.reserve(traces.size());
  for (const Instance& inst : traces) all.push_back(characterize(inst));
  return all;
}

}  // namespace dts
