#pragma once

/// \file workload_stats.hpp
/// Workload characterization (paper §5.1 / Fig. 8): for a trace, the four
/// quantities the paper normalizes by OMIM — sum of communication times,
/// sum of computation times, their max (a makespan lower bound) and their
/// sum (the zero-overlap upper bound).

#include <vector>

#include "core/bounds.hpp"
#include "core/instance.hpp"

namespace dts {

struct WorkloadCharacteristics {
  Bounds bounds;
  double comm_over_omim = 0.0;  ///< sum comm / OMIM
  double comp_over_omim = 0.0;  ///< sum comp / OMIM
  double max_over_omim = 0.0;   ///< max(sum comm, sum comp) / OMIM
  double total_over_omim = 0.0; ///< (sum comm + sum comp) / OMIM

  /// Achievable overlap headroom: 1 - OMIM / sequential.
  [[nodiscard]] double overlap_potential() const noexcept {
    return bounds.max_overlap_fraction();
  }
};

[[nodiscard]] WorkloadCharacteristics characterize(const Instance& inst);

/// Characterizes a corpus of traces (e.g. the 150 process traces).
[[nodiscard]] std::vector<WorkloadCharacteristics> characterize_all(
    const std::vector<Instance>& traces);

}  // namespace dts
