#pragma once

/// \file machine.hpp
/// Cost model mapping data volumes and flop counts to (communication,
/// computation) times. The defaults are shaped after one process's share
/// of a PNNL Cascade node (Intel Xeon E5-2670, InfiniBand FDR, Global
/// Arrays one-sided transfers), the testbed of the paper. Only the
/// *ratios* between transfer and compute times influence scheduling
/// decisions; the absolute magnitudes simply keep reported times in a
/// realistic microsecond-to-second range.

#include <string>

#include "core/channels.hpp"
#include "core/types.hpp"
#include "model/machine.hpp"

namespace dts {

struct MachineModel {
  /// Effective one-sided transfer bandwidth per process (bytes/s). A
  /// Cascade node's FDR link is shared by 15 worker processes.
  double link_bandwidth = 1.2e9;
  /// Per-transfer startup latency (s).
  double link_latency = 2.0e-6;
  /// Effective per-core floating-point rate for BLAS-3-like kernels
  /// (flop/s); E5-2670 peak is 20.8 GF/s DP, DGEMM reaches ~60%.
  double flop_rate = 1.2e10;
  /// Per-core streaming bandwidth for memory-bound kernels such as tensor
  /// transposes (bytes/s, counting read+write traffic once each).
  double memory_bandwidth = 4.0e9;
  /// Device-to-host copy engine bandwidth (bytes/s). Zero means the
  /// machine is half duplex — every transfer shares the one link above,
  /// the paper's model. A positive value adds a second, independent
  /// channel for result write-back (the conclusion's CPU->GPU case: one
  /// DMA engine per direction).
  double d2h_bandwidth = 0.0;

  /// True when the machine exposes a dedicated D2H engine.
  [[nodiscard]] bool duplex() const noexcept { return d2h_bandwidth > 0.0; }

  /// The copy engines of this machine: the link alone, or H2D + D2H.
  [[nodiscard]] ChannelSet channel_set() const {
    if (!duplex()) return ChannelSet::single_link(link_bandwidth, link_latency);
    return ChannelSet::duplex(link_bandwidth, d2h_bandwidth, link_latency);
  }

  /// Time to move `bytes` across the (H2D) link. Delegates to the
  /// library's single affine implementation (model/transfer_model.hpp) so
  /// generation-time costing can never drift from bind()-time costing.
  [[nodiscard]] Time transfer_time(double bytes) const noexcept {
    return affine_transfer_time(link_latency, link_bandwidth, bytes);
  }

  /// Time to move `bytes` back over the D2H engine (the H2D link when the
  /// machine is half duplex).
  [[nodiscard]] Time d2h_transfer_time(double bytes) const noexcept {
    return affine_transfer_time(
        link_latency, duplex() ? d2h_bandwidth : link_bandwidth, bytes);
  }

  /// Time to execute `flops` of dense compute.
  [[nodiscard]] Time compute_time(double flops) const noexcept {
    return flops / flop_rate;
  }

  /// Time of a memory-bound pass touching `bytes` twice (read + write).
  [[nodiscard]] Time streaming_time(double bytes) const noexcept {
    return 2.0 * bytes / memory_bandwidth;
  }

  /// The defaults above: one process's slice of a Cascade node.
  [[nodiscard]] static MachineModel cascade() noexcept { return {}; }

  /// A CPU->GPU offload link (PCIe 3.0 x16 with a ~7 TF/s accelerator),
  /// used by the gpu_offload example: same model, different constants —
  /// the paper's conclusion singles out this setting as the natural next
  /// application of the heuristics.
  [[nodiscard]] static MachineModel pcie_gpu() noexcept {
    MachineModel m;
    m.link_bandwidth = 1.2e10;
    m.link_latency = 8.0e-6;
    m.flop_rate = 7.0e12;
    m.memory_bandwidth = 4.0e11;
    return m;
  }

  /// The same accelerator with both PCIe 3.0 x16 DMA engines engaged: one
  /// copy engine per direction, so input fetches (H2D) and result
  /// write-back (D2H) overlap. D2H runs marginally slower than H2D on
  /// real parts (posted- vs non-posted transaction overhead).
  [[nodiscard]] static MachineModel duplex_pcie() noexcept {
    MachineModel m = pcie_gpu();
    m.d2h_bandwidth = 1.1e10;
    return m;
  }

  /// The transfer side of this model as a first-class Machine descriptor
  /// (model/machine.hpp): one affine channel per copy engine, built from
  /// the same constants — the registry presets "paper", "pcie-gpu" and
  /// "duplex-pcie" are exactly these conversions, so bind()-time costing
  /// reproduces generation-time costing bit for bit.
  [[nodiscard]] Machine to_machine(std::string name,
                                   std::string description) const;
};

}  // namespace dts
