#pragma once

/// \file machine.hpp
/// Cost model mapping data volumes and flop counts to (communication,
/// computation) times. The defaults are shaped after one process's share
/// of a PNNL Cascade node (Intel Xeon E5-2670, InfiniBand FDR, Global
/// Arrays one-sided transfers), the testbed of the paper. Only the
/// *ratios* between transfer and compute times influence scheduling
/// decisions; the absolute magnitudes simply keep reported times in a
/// realistic microsecond-to-second range.

#include "core/types.hpp"

namespace dts {

struct MachineModel {
  /// Effective one-sided transfer bandwidth per process (bytes/s). A
  /// Cascade node's FDR link is shared by 15 worker processes.
  double link_bandwidth = 1.2e9;
  /// Per-transfer startup latency (s).
  double link_latency = 2.0e-6;
  /// Effective per-core floating-point rate for BLAS-3-like kernels
  /// (flop/s); E5-2670 peak is 20.8 GF/s DP, DGEMM reaches ~60%.
  double flop_rate = 1.2e10;
  /// Per-core streaming bandwidth for memory-bound kernels such as tensor
  /// transposes (bytes/s, counting read+write traffic once each).
  double memory_bandwidth = 4.0e9;

  /// Time to move `bytes` across the link.
  [[nodiscard]] Time transfer_time(double bytes) const noexcept {
    return link_latency + bytes / link_bandwidth;
  }

  /// Time to execute `flops` of dense compute.
  [[nodiscard]] Time compute_time(double flops) const noexcept {
    return flops / flop_rate;
  }

  /// Time of a memory-bound pass touching `bytes` twice (read + write).
  [[nodiscard]] Time streaming_time(double bytes) const noexcept {
    return 2.0 * bytes / memory_bandwidth;
  }

  /// The defaults above: one process's slice of a Cascade node.
  [[nodiscard]] static MachineModel cascade() noexcept { return {}; }

  /// A CPU->GPU offload link (PCIe 3.0 x16 with a ~7 TF/s accelerator),
  /// used by the gpu_offload example: same model, different constants —
  /// the paper's conclusion singles out this setting as the natural next
  /// application of the heuristics.
  [[nodiscard]] static MachineModel pcie_gpu() noexcept {
    MachineModel m;
    m.link_bandwidth = 1.2e10;
    m.link_latency = 8.0e-6;
    m.flop_rate = 7.0e12;
    m.memory_bandwidth = 4.0e11;
    return m;
  }
};

}  // namespace dts
