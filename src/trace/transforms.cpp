#include "trace/transforms.hpp"

#include <cmath>
#include <stdexcept>

namespace dts {

namespace {

void require_positive_factor(double factor, const char* what) {
  if (!(factor > 0.0) || !std::isfinite(factor)) {
    throw std::invalid_argument(std::string(what) +
                                ": factor must be positive and finite");
  }
}

}  // namespace

Instance scale_times(const Instance& inst, double comm_factor,
                     double comp_factor) {
  require_positive_factor(comm_factor, "scale_times(comm)");
  require_positive_factor(comp_factor, "scale_times(comp)");
  std::vector<Task> tasks(inst.tasks());
  for (Task& t : tasks) {
    t.comm *= comm_factor;
    t.comp *= comp_factor;
  }
  return Instance(std::move(tasks));
}

Instance scale_memory(const Instance& inst, double factor) {
  require_positive_factor(factor, "scale_memory");
  std::vector<Task> tasks(inst.tasks());
  for (Task& t : tasks) t.mem *= factor;
  return Instance(std::move(tasks));
}

Instance merge_traces(std::span<const Instance> traces) {
  std::vector<Task> tasks;
  std::size_t total = 0;
  for (const Instance& inst : traces) total += inst.size();
  tasks.reserve(total);
  for (const Instance& inst : traces) {
    tasks.insert(tasks.end(), inst.tasks().begin(), inst.tasks().end());
  }
  return Instance(std::move(tasks));
}

Instance filter_tasks(const Instance& inst,
                      const std::function<bool(const Task&)>& keep) {
  std::vector<Task> tasks;
  for (const Task& t : inst) {
    if (keep(t)) tasks.push_back(t);
  }
  return Instance(std::move(tasks));
}

Instance jitter_times(const Instance& inst, Rng& rng, double jitter) {
  if (!(jitter >= 0.0) || jitter >= 1.0) {
    throw std::invalid_argument("jitter_times: jitter must be in [0, 1)");
  }
  std::vector<Task> tasks(inst.tasks());
  for (Task& t : tasks) {
    t.comm *= rng.uniform(1.0 - jitter, 1.0 + jitter);
    t.comp *= rng.uniform(1.0 - jitter, 1.0 + jitter);
  }
  return Instance(std::move(tasks));
}

std::vector<Instance> split_batches(const Instance& inst,
                                    std::size_t batch_size) {
  if (batch_size == 0) {
    throw std::invalid_argument("split_batches: batch_size must be > 0");
  }
  std::vector<Instance> batches;
  const auto& tasks = inst.tasks();
  for (std::size_t lo = 0; lo < tasks.size(); lo += batch_size) {
    const std::size_t hi = std::min(lo + batch_size, tasks.size());
    batches.emplace_back(
        std::vector<Task>(tasks.begin() + static_cast<std::ptrdiff_t>(lo),
                          tasks.begin() + static_cast<std::ptrdiff_t>(hi)));
  }
  return batches;
}

}  // namespace dts
