#include "trace/transforms.hpp"

#include <cmath>
#include <numeric>
#include <stdexcept>
#include <string>

namespace dts {

namespace {

void require_positive_factor(double factor, const char* what) {
  if (!(factor > 0.0) || !std::isfinite(factor)) {
    throw std::invalid_argument(std::string(what) +
                                ": factor must be positive and finite");
  }
}

}  // namespace

Instance scale_times(const Instance& inst, double comm_factor,
                     double comp_factor) {
  require_positive_factor(comm_factor, "scale_times(comm)");
  require_positive_factor(comp_factor, "scale_times(comp)");
  std::vector<Task> tasks(inst.tasks());
  for (Task& t : tasks) {
    if (t.time_bound()) t.comm *= comm_factor;  // sentinels stay time-less
    t.comp *= comp_factor;
  }
  return Instance(std::move(tasks));
}

Instance scale_memory(const Instance& inst, double factor) {
  require_positive_factor(factor, "scale_memory");
  std::vector<Task> tasks(inst.tasks());
  for (Task& t : tasks) t.mem *= factor;
  return Instance(std::move(tasks));
}

Instance merge_traces(std::span<const Instance> traces) {
  std::vector<Task> tasks;
  std::size_t total = 0;
  for (const Instance& inst : traces) total += inst.size();
  tasks.reserve(total);
  for (const Instance& inst : traces) {
    const TaskId base = static_cast<TaskId>(tasks.size());
    tasks.insert(tasks.end(), inst.tasks().begin(), inst.tasks().end());
    if (base > 0 && inst.has_dependencies()) {
      // Edges are per-trace local ids; shift them into the merged space.
      for (std::size_t i = base; i < tasks.size(); ++i) {
        for (TaskId& dep : tasks[i].deps) dep += base;
      }
    }
  }
  return Instance(std::move(tasks));
}

Instance filter_tasks(const Instance& inst,
                      const std::function<bool(const Task&)>& keep) {
  std::vector<TaskId> kept;
  for (const Task& t : inst) {
    if (keep(t)) kept.push_back(t.id);
  }
  // subset() remaps surviving edges to the new ids and drops edges onto
  // filtered-out tasks (their predecessors-of-predecessors are NOT
  // inherited — the filter severs the chain).
  return inst.subset(kept);
}

Instance jitter_times(const Instance& inst, Rng& rng, double jitter) {
  if (!(jitter >= 0.0) || jitter >= 1.0) {
    throw std::invalid_argument("jitter_times: jitter must be in [0, 1)");
  }
  std::vector<Task> tasks(inst.tasks());
  for (Task& t : tasks) {
    const double comm_factor = rng.uniform(1.0 - jitter, 1.0 + jitter);
    if (t.time_bound()) t.comm *= comm_factor;  // sentinels stay time-less
    t.comp *= rng.uniform(1.0 - jitter, 1.0 + jitter);
  }
  return Instance(std::move(tasks));
}

std::vector<Instance> split_batches(const Instance& inst,
                                    std::size_t batch_size) {
  if (batch_size == 0) {
    throw std::invalid_argument("split_batches: batch_size must be > 0");
  }
  std::vector<Instance> batches;
  for (std::size_t lo = 0; lo < inst.size(); lo += batch_size) {
    const std::size_t hi = std::min(lo + batch_size, inst.size());
    std::vector<TaskId> ids(hi - lo);
    std::iota(ids.begin(), ids.end(), static_cast<TaskId>(lo));
    // subset() keeps intra-batch edges (remapped to batch-local ids) and
    // drops cross-batch edges: each batch is scheduled as its own
    // instance, so the caller owns cross-batch readiness — the batch
    // scheduler submits batches in order and earlier batches' starts are
    // visible in the shared Schedule.
    batches.push_back(inst.subset(ids));
  }
  return batches;
}

Instance with_writeback(const Instance& inst, const ChannelSpec& d2h,
                        double result_fraction, bool depend_on_producer) {
  if (!(result_fraction > 0.0) || result_fraction > 1.0) {
    throw std::invalid_argument(
        "with_writeback: result_fraction must be in (0, 1]");
  }
  // Interleaving shifts every original task's id; edges may point forward
  // (the constructor only requires acyclicity), so the full old-id -> new-id
  // map must exist before any edge is rewritten.
  std::vector<TaskId> new_id(inst.size());
  TaskId next = 0;
  for (const Task& t : inst) {
    new_id[t.id] = next++;
    if (t.mem > 0.0) ++next;  // its write-back slot
  }
  std::vector<Task> tasks;
  tasks.reserve(2 * inst.size());
  for (const Task& t : inst) {
    tasks.push_back(t);
    for (TaskId& dep : tasks.back().deps) dep = new_id[dep];
    if (!(t.mem > 0.0)) continue;  // nothing was fetched, nothing to return
    const Mem result_bytes = result_fraction * t.mem;
    Task wb;
    wb.comm = d2h.transfer_time(result_bytes);
    wb.comp = 0.0;
    wb.mem = result_bytes;
    wb.channel = kChannelD2H;
    wb.comm_bytes = result_bytes;  // write-backs are re-costable by size
    if (depend_on_producer) wb.deps.push_back(new_id[t.id]);
    wb.name = (t.name.empty() ? "T" + std::to_string(t.id) : t.name) + "_wb";
    tasks.push_back(std::move(wb));
  }
  return Instance(std::move(tasks));
}

Instance merged_channels(const Instance& inst) {
  std::vector<Task> tasks(inst.tasks());
  for (Task& t : tasks) t.channel = 0;
  return Instance(std::move(tasks));
}

Instance strip_comm_times(const Instance& inst) {
  std::vector<Task> tasks(inst.tasks());
  for (Task& t : tasks) {
    if (!t.has_comm_bytes()) {
      throw std::invalid_argument(
          "strip_comm_times: task '" +
          (t.name.empty() ? "T" + std::to_string(t.id) : t.name) +
          "' has no byte annotation; stripping its time would leave it "
          "uncostable");
    }
    t.comm = kUnboundTime;
  }
  return Instance(std::move(tasks));
}

}  // namespace dts
