#include <algorithm>
#include <cmath>
#include <string>

#include "support/rng.hpp"
#include "trace/generators.hpp"
#include "trace/tensor_tasks.hpp"
#include "trace/transforms.hpp"

namespace dts {

std::string_view to_string(ChemistryKernel kernel) noexcept {
  switch (kernel) {
    case ChemistryKernel::kHartreeFock: return "HF";
    case ChemistryKernel::kCoupledClusterSD: return "CCSD";
  }
  return "?";
}

namespace {

/// Largest slab a CCSD task fetches (the paper's mc for CCSD is 1.8 GB).
constexpr double kMaxSlabBytes = 1.8e9;
constexpr double kMinSlabBytes = 2.0e6;

/// Log-uniform sample in [lo, hi].
double log_uniform(Rng& rng, double lo, double hi) {
  return lo * std::exp(rng.uniform(0.0, std::log(hi / lo)));
}

}  // namespace

Instance generate_ccsd_trace(const TraceConfig& config) {
  Rng rng(config.seed ^ 0x434353442D555241ULL);  // "CCSD-URA"
  const MachineModel& m = config.machine;
  const std::size_t n_tasks = static_cast<std::size_t>(
      rng.uniform_u64(config.min_tasks, config.max_tasks));

  // CCSD picks tile sizes per program point (paper §5), so a task's data
  // volume spans three orders of magnitude, and the work-per-byte of a
  // task varies independently of its size: a tile participates either in
  // reshapes/fetch-digest passes (communication intensive) or in BLAS-3
  // contractions whose arithmetic intensity depends on the contracted
  // range (compute intensive). We model a task as
  //    volume  ~ log-uniform [2 MB, 1.8 GB]    (transfer + footprint)
  //    ratio r ~ lognormal, median 1           (CP = r * CM)
  // which reproduces Fig. 8's CCSD shape: sum comm ~ sum comp, wide
  // heterogeneity, and a roughly even split of task types at every size.
  std::vector<Task> tasks;
  tasks.reserve(n_tasks);

  for (std::size_t i = 0; i < n_tasks; ++i) {
    double bytes = 0.0;
    if (i == 0 || rng.chance(0.03)) {
      // Full T2-amplitude slab: the footprint that defines mc. Forced at
      // least once per trace so every process sees the same minimum
      // capacity, as in the paper's corpus.
      bytes = kMaxSlabBytes * rng.uniform(0.98, 1.0);
    } else {
      bytes = log_uniform(rng, kMinSlabBytes, 0.45 * kMaxSlabBytes);
    }
    const Time comm = m.transfer_time(bytes);
    // Lognormal work-per-byte with E[r] = 1 (mu = -sigma^2/2), sigma 0.65:
    // the comm and comp sums balance in expectation (Fig. 8's CCSD shape)
    // while ~37% of tasks are compute intensive and ~6% fall beyond ratio
    // 3.5 either way — heterogeneous but not absurd.
    const double ratio = std::exp(-0.211 + 0.65 * rng.normal());
    const bool contraction = ratio >= 1.0;
    tasks.push_back(Task{
        .id = 0,
        .comm = comm,
        .comp = comm * ratio,
        .mem = bytes,
        .comm_bytes = bytes,
        .name = (contraction ? "contract_" : "fetch_") + std::to_string(i)});
  }
  return Instance(std::move(tasks));
}

Instance generate_ccsd_dag_trace(const TraceConfig& config) {
  Rng rng(config.seed ^ 0x434353442D444147ULL);  // "CCSD-DAG"
  const MachineModel& m = config.machine;
  const std::size_t n_tasks = static_cast<std::size_t>(
      rng.uniform_u64(config.min_tasks, config.max_tasks));
  const ChannelId wb_channel = m.duplex() ? kChannelD2H : kChannelH2D;

  // Super Instruction style contraction chains: within a chain,
  // contraction k fetches its fresh operand slab (an independent host
  // transfer) but the *computation* consumes contraction k-1's
  // intermediate, which never leaves the device — a dependency edge, not
  // a transfer. Each chain's result streams back in a terminal
  // write-back task. Chains are mutually independent, so transfers of
  // one chain overlap computations of another exactly as SIA block
  // schedulers exploit.
  std::vector<Task> tasks;
  tasks.reserve(n_tasks + 4);
  std::size_t chain = 0;
  bool slab_emitted = false;
  while (tasks.size() < n_tasks) {
    const std::size_t chain_len = 2 + rng.uniform_u64(0, 3);  // 2..5
    TaskId prev = kInvalidTask;
    Mem chain_output = 0.0;
    for (std::size_t k = 0; k < chain_len; ++k) {
      double bytes = 0.0;
      if (!slab_emitted || rng.chance(0.03)) {
        // Full T2-amplitude slab — forced at least once per trace so the
        // minimum capacity matches the edge-free CCSD corpus.
        bytes = kMaxSlabBytes * rng.uniform(0.98, 1.0);
        slab_emitted = true;
      } else {
        bytes = log_uniform(rng, kMinSlabBytes, 0.45 * kMaxSlabBytes);
      }
      const Time comm = m.transfer_time(bytes);
      // Same lognormal work-per-byte family as generate_ccsd_trace
      // (E[r] = 1, sigma 0.65): the aggregate Fig. 8 shape is preserved,
      // only the precedence structure differs.
      const double ratio = std::exp(-0.211 + 0.65 * rng.normal());
      Task t;
      t.comm = comm;
      t.comp = comm * ratio;
      t.mem = bytes;
      t.comm_bytes = bytes;
      t.name = "c" + std::to_string(chain) + "_contract_" + std::to_string(k);
      if (prev != kInvalidTask) t.deps.push_back(prev);
      prev = static_cast<TaskId>(tasks.size());
      chain_output = bytes;  // the last contraction's slab sizes the result
      tasks.push_back(std::move(t));
    }
    const Mem result_bytes = config.writeback_fraction * chain_output;
    Task wb;
    wb.comm = m.duplex() ? m.d2h_transfer_time(result_bytes)
                         : m.transfer_time(result_bytes);
    wb.comp = 0.0;
    wb.mem = result_bytes;
    wb.channel = wb_channel;
    wb.comm_bytes = result_bytes;
    wb.deps.push_back(prev);  // the copy may not start before the chain ends
    wb.name = "c" + std::to_string(chain) + "_wb";
    tasks.push_back(std::move(wb));
    ++chain;
  }
  return Instance(std::move(tasks));
}

Instance generate_trace(ChemistryKernel kernel, const TraceConfig& config) {
  Instance inst;
  switch (kernel) {
    case ChemistryKernel::kHartreeFock:
      inst = generate_hf_trace(config);
      break;
    case ChemistryKernel::kCoupledClusterSD:
      inst = generate_ccsd_trace(config);
      break;
  }
  if (config.machine.duplex()) {
    const ChannelSet channels = config.machine.channel_set();
    inst = with_writeback(inst, channels[kChannelD2H],
                          config.writeback_fraction);
  }
  return inst;
}

std::vector<Instance> generate_process_traces(ChemistryKernel kernel,
                                              std::size_t count,
                                              std::uint64_t base_seed,
                                              const TraceConfig& prototype) {
  std::vector<Instance> traces;
  traces.reserve(count);
  for (std::size_t p = 0; p < count; ++p) {
    TraceConfig config = prototype;
    config.seed = base_seed + p;
    traces.push_back(generate_trace(kernel, config));
  }
  return traces;
}

}  // namespace dts
