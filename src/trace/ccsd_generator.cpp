#include <algorithm>
#include <cmath>
#include <string>

#include "support/rng.hpp"
#include "trace/generators.hpp"
#include "trace/tensor_tasks.hpp"
#include "trace/transforms.hpp"

namespace dts {

std::string_view to_string(ChemistryKernel kernel) noexcept {
  switch (kernel) {
    case ChemistryKernel::kHartreeFock: return "HF";
    case ChemistryKernel::kCoupledClusterSD: return "CCSD";
  }
  return "?";
}

namespace {

/// Largest slab a CCSD task fetches (the paper's mc for CCSD is 1.8 GB).
constexpr double kMaxSlabBytes = 1.8e9;
constexpr double kMinSlabBytes = 2.0e6;

/// Log-uniform sample in [lo, hi].
double log_uniform(Rng& rng, double lo, double hi) {
  return lo * std::exp(rng.uniform(0.0, std::log(hi / lo)));
}

}  // namespace

Instance generate_ccsd_trace(const TraceConfig& config) {
  Rng rng(config.seed ^ 0x434353442D555241ULL);  // "CCSD-URA"
  const MachineModel& m = config.machine;
  const std::size_t n_tasks = static_cast<std::size_t>(
      rng.uniform_u64(config.min_tasks, config.max_tasks));

  // CCSD picks tile sizes per program point (paper §5), so a task's data
  // volume spans three orders of magnitude, and the work-per-byte of a
  // task varies independently of its size: a tile participates either in
  // reshapes/fetch-digest passes (communication intensive) or in BLAS-3
  // contractions whose arithmetic intensity depends on the contracted
  // range (compute intensive). We model a task as
  //    volume  ~ log-uniform [2 MB, 1.8 GB]    (transfer + footprint)
  //    ratio r ~ lognormal, median 1           (CP = r * CM)
  // which reproduces Fig. 8's CCSD shape: sum comm ~ sum comp, wide
  // heterogeneity, and a roughly even split of task types at every size.
  std::vector<Task> tasks;
  tasks.reserve(n_tasks);

  for (std::size_t i = 0; i < n_tasks; ++i) {
    double bytes = 0.0;
    if (i == 0 || rng.chance(0.03)) {
      // Full T2-amplitude slab: the footprint that defines mc. Forced at
      // least once per trace so every process sees the same minimum
      // capacity, as in the paper's corpus.
      bytes = kMaxSlabBytes * rng.uniform(0.98, 1.0);
    } else {
      bytes = log_uniform(rng, kMinSlabBytes, 0.45 * kMaxSlabBytes);
    }
    const Time comm = m.transfer_time(bytes);
    // Lognormal work-per-byte with E[r] = 1 (mu = -sigma^2/2), sigma 0.65:
    // the comm and comp sums balance in expectation (Fig. 8's CCSD shape)
    // while ~37% of tasks are compute intensive and ~6% fall beyond ratio
    // 3.5 either way — heterogeneous but not absurd.
    const double ratio = std::exp(-0.211 + 0.65 * rng.normal());
    const bool contraction = ratio >= 1.0;
    tasks.push_back(Task{
        .id = 0,
        .comm = comm,
        .comp = comm * ratio,
        .mem = bytes,
        .comm_bytes = bytes,
        .name = (contraction ? "contract_" : "fetch_") + std::to_string(i)});
  }
  return Instance(std::move(tasks));
}

Instance generate_trace(ChemistryKernel kernel, const TraceConfig& config) {
  Instance inst;
  switch (kernel) {
    case ChemistryKernel::kHartreeFock:
      inst = generate_hf_trace(config);
      break;
    case ChemistryKernel::kCoupledClusterSD:
      inst = generate_ccsd_trace(config);
      break;
  }
  if (config.machine.duplex()) {
    const ChannelSet channels = config.machine.channel_set();
    inst = with_writeback(inst, channels[kChannelD2H],
                          config.writeback_fraction);
  }
  return inst;
}

std::vector<Instance> generate_process_traces(ChemistryKernel kernel,
                                              std::size_t count,
                                              std::uint64_t base_seed,
                                              const TraceConfig& prototype) {
  std::vector<Instance> traces;
  traces.reserve(count);
  for (std::size_t p = 0; p < count; ++p) {
    TraceConfig config = prototype;
    config.seed = base_seed + p;
    traces.push_back(generate_trace(kernel, config));
  }
  return traces;
}

}  // namespace dts
