#pragma once

/// \file tensor_tasks.hpp
/// Builders turning tensor-algebra operations into DT tasks. NWChem's HF
/// and CCSD kernels spend their time in two operations (paper §5): tensor
/// *transposes* (memory-bound, touch every byte they fetch) and tensor
/// *contractions* (BLAS-3-like, O(d^3) work on O(d^2) data). A task's
/// memory requirement is the volume it fetches into local memory — the
/// paper's "memory requirement proportional to communication volume".

#include <cstddef>
#include <string>
#include <vector>

#include "core/task.hpp"
#include "trace/machine.hpp"

namespace dts {

/// A dense tile of an f64 tensor.
struct TileSpec {
  std::vector<std::size_t> dims;

  [[nodiscard]] std::size_t elements() const noexcept;
  [[nodiscard]] double bytes() const noexcept;  ///< 8 bytes per element
};

/// Transpose/reshape of one fetched tile: communication moves the tile,
/// computation streams it through memory. Strongly communication
/// intensive under any realistic machine model.
[[nodiscard]] Task make_transpose_task(const MachineModel& machine,
                                       const TileSpec& tile, std::string name);

/// Tile contraction C[m,n] += sum_k A[m,k] * B[k,n] on composite index
/// ranges (m, n, k): fetches A and B (the output tile stays resident, as
/// the paper assumes), computes 2*m*n*k flops. Compute intensive once the
/// contracted range is large enough.
[[nodiscard]] Task make_contraction_task(const MachineModel& machine,
                                         std::size_t m, std::size_t n,
                                         std::size_t k, std::string name);

/// Fock-matrix accumulation task used by the HF generator: fetches
/// `n_tiles` integral/density tiles plus an index buffer, then performs a
/// few memory-bound passes over them. Communication intensive.
[[nodiscard]] Task make_fock_accumulation_task(const MachineModel& machine,
                                               const TileSpec& tile,
                                               std::size_t n_tiles,
                                               double index_buffer_bytes,
                                               std::string name);

}  // namespace dts
