#include "trace/trace_io.hpp"

#include <charconv>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace dts {

namespace {

constexpr std::string_view kMagicV1 = "# dts-trace v1";
constexpr std::string_view kMagicV2 = "# dts-trace v2";
constexpr std::string_view kMagicV3 = "# dts-trace v3";
constexpr std::string_view kMagicV4 = "# dts-trace v4";
constexpr std::string_view kBytesPrefix = "bytes=";
constexpr std::string_view kDepsPrefix = "deps=";

/// Parses one comma-separated predecessor list ("0,3,17"). Only the
/// lexical shape is checked here — ids must be in-range numbers with no
/// empty elements; dangling references, self-edges and cycles are the
/// Instance constructor's job (it has the exact diagnostics).
std::vector<TaskId> parse_deps_field(std::size_t line_no,
                                     const std::string& field,
                                     std::string_view list) {
  if (list.empty()) {
    throw TraceIoError(line_no, "empty dependency list '" + field + "'");
  }
  std::vector<TaskId> deps;
  std::size_t begin = 0;
  while (begin <= list.size()) {
    const std::size_t comma = std::min(list.find(',', begin), list.size());
    const std::string_view element = list.substr(begin, comma - begin);
    TaskId id = 0;
    const auto [ptr, ec] =
        std::from_chars(element.data(), element.data() + element.size(), id);
    if (element.empty() || ec != std::errc{} ||
        ptr != element.data() + element.size()) {
      throw TraceIoError(line_no, "malformed dependency id '" +
                                      std::string(element) + "' in '" + field +
                                      "'");
    }
    deps.push_back(id);
    begin = comma + 1;
  }
  return deps;
}

/// Full-token double parse; TraceIoError names the offending field.
/// from_chars (not strtod) so hex soup ("0x10") and locale surprises stay
/// loud errors, and out-of-range magnitudes ("1e400") never saturate. A
/// single leading '+' is accepted for compatibility with the stream
/// extraction the v1/v2 parser used (externally-written "+1.5" fields
/// must keep loading).
double parse_double_field(std::size_t line_no, const char* field,
                          const std::string& text) {
  std::string_view digits = text;
  if (!digits.empty() && digits.front() == '+') digits.remove_prefix(1);
  double value = 0.0;
  const auto [ptr, ec] =
      std::from_chars(digits.data(), digits.data() + digits.size(), value);
  if (ec != std::errc{} || ptr != digits.data() + digits.size() ||
      digits.empty()) {
    throw TraceIoError(line_no, std::string("malformed ") + field + " '" +
                                    text + "'");
  }
  return value;
}

}  // namespace

void write_trace(std::ostream& out, const Instance& inst) {
  const InstanceStats stats = inst.stats();
  const bool multi = !inst.single_channel();
  // The lowest version that can represent this instance: dependency
  // edges need v4, bytes and time-less tasks v3, extra channels v2;
  // everything else stays v1 so legacy readers keep working.
  bool bytes = false;
  for (const Task& t : inst) {
    bytes = bytes || t.has_comm_bytes() || !t.time_bound();
  }
  const bool deps = inst.has_dependencies();
  out << (deps ? kMagicV4 : bytes ? kMagicV3 : multi ? kMagicV2 : kMagicV1)
      << '\n';
  out << "# tasks=" << stats.n_tasks << " sum_comm=" << stats.sum_comm
      << " sum_comp=" << stats.sum_comp << " max_mem=" << stats.max_mem;
  if (multi) out << " channels=" << inst.num_channels();
  out << '\n';
  out.precision(17);  // exact double round-trip
  for (const Task& t : inst) {
    out << "task " << (t.name.empty() ? "T" + std::to_string(t.id) : t.name)
        << ' ';
    if (t.time_bound()) {
      out << t.comm;
    } else {
      out << '?';  // time-less: cost comes from the byte annotation
    }
    out << ' ' << t.comp << ' ' << t.mem;
    if (multi) out << ' ' << t.channel;
    if (t.has_comm_bytes()) out << ' ' << kBytesPrefix << t.comm_bytes;
    if (!t.deps.empty()) {
      out << ' ' << kDepsPrefix;
      for (std::size_t i = 0; i < t.deps.size(); ++i) {
        if (i > 0) out << ',';
        out << t.deps[i];
      }
    }
    out << '\n';
  }
}

void write_trace_file(const std::filesystem::path& path, const Instance& inst) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("write_trace_file: cannot open " + path.string());
  }
  write_trace(out, inst);
}

Instance read_trace(std::istream& in) {
  std::vector<Task> tasks;
  std::string line;
  std::size_t line_no = 0;
  bool magic_seen = false;
  int version = 1;

  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') {
      // A silently stripped '\r' would *usually* work (stream extraction
      // treats it as whitespace) but can leak into the last field of a
      // record — reject CRLF input loudly instead of misparsing quietly.
      throw TraceIoError(line_no,
                         "CRLF line ending; dts traces use LF line endings");
    }
    if (line_no == 1) {
      if (line == kMagicV1) {
        version = 1;
      } else if (line == kMagicV2) {
        version = 2;
      } else if (line == kMagicV3) {
        version = 3;
      } else if (line == kMagicV4) {
        version = 4;
      } else {
        throw TraceIoError(line_no, "missing header '" + std::string(kMagicV1) +
                                        "', '" + std::string(kMagicV2) +
                                        "', '" + std::string(kMagicV3) +
                                        "' or '" + std::string(kMagicV4) + "'");
      }
      magic_seen = true;
      continue;
    }
    if (line.empty() || line[0] == '#') continue;

    std::istringstream fields(line);
    std::vector<std::string> tokens;
    std::string token;
    while (fields >> token) tokens.push_back(std::move(token));
    if (tokens.empty() || tokens[0] != "task") {
      throw TraceIoError(line_no, "unknown record '" +
                                      (tokens.empty() ? "" : tokens[0]) + "'");
    }
    if (tokens.size() < 5) {
      throw TraceIoError(line_no,
                         "expected 'task <name> <comm> <comp> <mem> "
                         "[<channel>] [bytes=<B>]'");
    }
    Task t;
    t.name = tokens[1];
    if (tokens[2] == "?") {
      // A time-less task only makes sense when a byte annotation can
      // eventually cost it — both are v3 features.
      if (version < 3) {
        throw TraceIoError(line_no,
                           "time-less comm '?' needs the '" +
                               std::string(kMagicV3) + "' header");
      }
      t.comm = kUnboundTime;
    } else {
      t.comm = parse_double_field(line_no, "comm", tokens[2]);
      if (t.comm < 0.0) {
        // Only '?' may mark a time-less task — a literal negative number
        // must not silently alias the kUnboundTime sentinel.
        throw TraceIoError(line_no, "negative comm '" + tokens[2] + "'");
      }
    }
    t.comp = parse_double_field(line_no, "comp", tokens[3]);
    t.mem = parse_double_field(line_no, "mem", tokens[4]);

    bool channel_seen = false;
    bool bytes_seen = false;
    bool deps_seen = false;
    for (std::size_t i = 5; i < tokens.size(); ++i) {
      const std::string& field = tokens[i];
      if (field.rfind(kDepsPrefix, 0) == 0) {
        if (version < 4) {
          // A stray deps= column in an old trace must stay a loud error.
          throw TraceIoError(line_no,
                             "unexpected '" + field +
                                 "' (dependency edges need the '" +
                                 std::string(kMagicV4) + "' header)");
        }
        if (deps_seen) {
          throw TraceIoError(line_no,
                             "duplicate dependency list '" + field + "'");
        }
        t.deps = parse_deps_field(
            line_no, field,
            std::string_view(field).substr(kDepsPrefix.size()));
        deps_seen = true;
      } else if (deps_seen) {
        // deps= is defined as the last column of a record.
        throw TraceIoError(line_no, "trailing content '" + field + "'");
      } else if (field.rfind(kBytesPrefix, 0) == 0) {
        if (version < 3) {
          // A stray bytes= column in an old trace must stay a loud error.
          throw TraceIoError(line_no,
                             "unexpected '" + field +
                                 "' (byte annotations need the '" +
                                 std::string(kMagicV3) + "' header)");
        }
        if (bytes_seen) {
          throw TraceIoError(line_no, "duplicate byte annotation '" + field +
                                          "'");
        }
        const std::string value = field.substr(kBytesPrefix.size());
        t.comm_bytes = parse_double_field(line_no, "bytes", value);
        if (!(t.comm_bytes >= 0.0)) {  // negated form also catches NaN
          throw TraceIoError(line_no, "negative or non-finite byte "
                                      "annotation '" + field + "'");
        }
        bytes_seen = true;
      } else if (!channel_seen && !bytes_seen) {
        if (version < 2) {
          // A stray extra numeric column in a v1 trace must stay a loud
          // error, not silently become a copy-engine assignment.
          throw TraceIoError(line_no,
                             "unexpected 5th column '" + field +
                                 "' in a v1 trace (channel columns need the '" +
                                 std::string(kMagicV2) + "' header)");
        }
        // Parsed from the raw token: stream extraction into an unsigned
        // would clobber the field on overflow ("4294967296") or wrap
        // negatives instead of failing.
        ChannelId channel = 0;
        const auto [ptr, ec] = std::from_chars(
            field.data(), field.data() + field.size(), channel);
        if (ec != std::errc{} || ptr != field.data() + field.size() ||
            channel >= kMaxChannels) {
          throw TraceIoError(line_no, "channel '" + field +
                                          "' out of range [0, " +
                                          std::to_string(kMaxChannels) + ")");
        }
        t.channel = channel;
        channel_seen = true;
      } else {
        throw TraceIoError(line_no, "trailing content '" + field + "'");
      }
    }
    if (!t.time_bound() && !t.has_comm_bytes()) {
      throw TraceIoError(line_no,
                         "time-less task without a bytes= annotation");
    }
    if (!is_valid(t)) {
      throw TraceIoError(line_no, "negative or non-finite task fields");
    }
    tasks.push_back(std::move(t));
  }
  if (!magic_seen) throw TraceIoError(1, "empty trace");
  return Instance(std::move(tasks));
}

Instance read_trace_file(const std::filesystem::path& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("read_trace_file: cannot open " + path.string());
  }
  return read_trace(in);
}

}  // namespace dts
