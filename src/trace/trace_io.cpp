#include "trace/trace_io.hpp"

#include <charconv>
#include <fstream>
#include <sstream>
#include <string>

namespace dts {

namespace {
constexpr std::string_view kMagicV1 = "# dts-trace v1";
constexpr std::string_view kMagicV2 = "# dts-trace v2";
}

void write_trace(std::ostream& out, const Instance& inst) {
  const InstanceStats stats = inst.stats();
  const bool multi = !inst.single_channel();
  out << (multi ? kMagicV2 : kMagicV1) << '\n';
  out << "# tasks=" << stats.n_tasks << " sum_comm=" << stats.sum_comm
      << " sum_comp=" << stats.sum_comp << " max_mem=" << stats.max_mem;
  if (multi) out << " channels=" << inst.num_channels();
  out << '\n';
  out.precision(17);  // exact double round-trip
  for (const Task& t : inst) {
    out << "task " << (t.name.empty() ? "T" + std::to_string(t.id) : t.name)
        << ' ' << t.comm << ' ' << t.comp << ' ' << t.mem;
    if (multi) out << ' ' << t.channel;
    out << '\n';
  }
}

void write_trace_file(const std::filesystem::path& path, const Instance& inst) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("write_trace_file: cannot open " + path.string());
  }
  write_trace(out, inst);
}

Instance read_trace(std::istream& in) {
  std::vector<Task> tasks;
  std::string line;
  std::size_t line_no = 0;
  bool magic_seen = false;
  bool v2 = false;

  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') {
      // A silently stripped '\r' would *usually* work (stream extraction
      // treats it as whitespace) but can leak into the last field of a
      // record — reject CRLF input loudly instead of misparsing quietly.
      throw TraceIoError(line_no,
                         "CRLF line ending; dts traces use LF line endings");
    }
    if (line_no == 1) {
      if (line != kMagicV1 && line != kMagicV2) {
        throw TraceIoError(line_no, "missing header '" + std::string(kMagicV1) +
                                        "' or '" + std::string(kMagicV2) + "'");
      }
      magic_seen = true;
      v2 = line == kMagicV2;
      continue;
    }
    if (line.empty() || line[0] == '#') continue;

    std::istringstream fields(line);
    std::string keyword;
    fields >> keyword;
    if (keyword != "task") {
      throw TraceIoError(line_no, "unknown record '" + keyword + "'");
    }
    Task t;
    fields >> t.name >> t.comm >> t.comp >> t.mem;
    if (!fields) {
      throw TraceIoError(
          line_no, "expected 'task <name> <comm> <comp> <mem> [<channel>]'");
    }
    // Optional channel column (v2 traces), parsed from the raw token:
    // stream extraction into an unsigned would clobber the field on
    // overflow ("4294967296") or wrap negatives instead of failing.
    std::string channel_text;
    if (fields >> channel_text) {
      if (!v2) {
        // A stray extra numeric column in a v1 trace must stay a loud
        // error, not silently become a copy-engine assignment.
        throw TraceIoError(line_no,
                           "unexpected 5th column '" + channel_text +
                               "' in a v1 trace (channel columns need the '" +
                               std::string(kMagicV2) + "' header)");
      }
      ChannelId channel = 0;
      const auto [ptr, ec] = std::from_chars(
          channel_text.data(), channel_text.data() + channel_text.size(),
          channel);
      if (ec != std::errc{} ||
          ptr != channel_text.data() + channel_text.size() ||
          channel >= kMaxChannels) {
        throw TraceIoError(line_no, "channel '" + channel_text +
                                        "' out of range [0, " +
                                        std::to_string(kMaxChannels) + ")");
      }
      t.channel = channel;
    } else {
      fields.clear();
    }
    std::string trailing;
    if (fields >> trailing) {
      throw TraceIoError(line_no, "trailing content '" + trailing + "'");
    }
    if (!is_valid(t)) {
      throw TraceIoError(line_no, "negative or non-finite task fields");
    }
    tasks.push_back(std::move(t));
  }
  if (!magic_seen) throw TraceIoError(1, "empty trace");
  return Instance(std::move(tasks));
}

Instance read_trace_file(const std::filesystem::path& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("read_trace_file: cannot open " + path.string());
  }
  return read_trace(in);
}

}  // namespace dts
