#include "trace/trace_io.hpp"

#include <fstream>
#include <sstream>
#include <string>

namespace dts {

namespace {
constexpr std::string_view kMagic = "# dts-trace v1";
}

void write_trace(std::ostream& out, const Instance& inst) {
  const InstanceStats stats = inst.stats();
  out << kMagic << '\n';
  out << "# tasks=" << stats.n_tasks << " sum_comm=" << stats.sum_comm
      << " sum_comp=" << stats.sum_comp << " max_mem=" << stats.max_mem
      << '\n';
  out.precision(17);  // exact double round-trip
  for (const Task& t : inst) {
    out << "task " << (t.name.empty() ? "T" + std::to_string(t.id) : t.name)
        << ' ' << t.comm << ' ' << t.comp << ' ' << t.mem << '\n';
  }
}

void write_trace_file(const std::filesystem::path& path, const Instance& inst) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("write_trace_file: cannot open " + path.string());
  }
  write_trace(out, inst);
}

Instance read_trace(std::istream& in) {
  std::vector<Task> tasks;
  std::string line;
  std::size_t line_no = 0;
  bool magic_seen = false;

  while (std::getline(in, line)) {
    ++line_no;
    if (line_no == 1) {
      if (line != kMagic) {
        throw TraceIoError(line_no, "missing header '" + std::string(kMagic) +
                                        "'");
      }
      magic_seen = true;
      continue;
    }
    if (line.empty() || line[0] == '#') continue;

    std::istringstream fields(line);
    std::string keyword;
    fields >> keyword;
    if (keyword != "task") {
      throw TraceIoError(line_no, "unknown record '" + keyword + "'");
    }
    Task t;
    fields >> t.name >> t.comm >> t.comp >> t.mem;
    if (!fields) {
      throw TraceIoError(line_no,
                         "expected 'task <name> <comm> <comp> <mem>'");
    }
    std::string trailing;
    if (fields >> trailing) {
      throw TraceIoError(line_no, "trailing content '" + trailing + "'");
    }
    if (!is_valid(t)) {
      throw TraceIoError(line_no, "negative or non-finite task fields");
    }
    tasks.push_back(std::move(t));
  }
  if (!magic_seen) throw TraceIoError(1, "empty trace");
  return Instance(std::move(tasks));
}

Instance read_trace_file(const std::filesystem::path& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("read_trace_file: cannot open " + path.string());
  }
  return read_trace(in);
}

}  // namespace dts
