#include <algorithm>
#include <string>

#include "support/rng.hpp"
#include "trace/generators.hpp"
#include "trace/tensor_tasks.hpp"

namespace dts {

namespace {

/// HF on SiOSi uses a fixed tile size of 100 (paper §5), i.e. 100x100
/// double tiles of 80 KB.
constexpr std::size_t kHfTile = 100;
constexpr double kIndexBufferBytes = 16000.0;  // shell-index metadata

}  // namespace

Instance generate_hf_trace(const TraceConfig& config) {
  Rng rng(config.seed ^ 0x48462D53494F5349ULL);  // "HF-SIOSI"
  const MachineModel& m = config.machine;
  const std::size_t n_tasks = static_cast<std::size_t>(
      rng.uniform_u64(config.min_tasks, config.max_tasks));

  const TileSpec tile{{kHfTile, kHfTile}};
  std::vector<Task> tasks;
  tasks.reserve(n_tasks);

  // HF's task population (calibrated to the paper's Fig. 8 shape and §4.6
  // commentary): dominated by homogeneous, communication-intensive Fock
  // accumulation fetches; a modest minority of *mildly* compute-intensive
  // contractions against resident tiles, whose communication times are
  // small — the structural property the paper credits for SCMR's strength
  // on HF. Aggregate: sum comp ~ 0.25 sum comm, <= ~20% overlap headroom.
  // SiOSi's basis dimension is not a multiple of the tile size, so blocks
  // at the matrix boundary are narrower; a Fock task fetches full
  // (100,100) tiles, boundary (100,r) strips, or corner (r,r) stubs.
  const auto boundary =
      static_cast<std::size_t>(rng.uniform_u64(36, 64));  // per-molecule r
  const TileSpec strip{{kHfTile, boundary}};
  const TileSpec corner{{boundary, boundary}};

  for (std::size_t i = 0; i < n_tasks; ++i) {
    const double mix = rng.next_double();
    Task t;
    if (mix < 0.55) {
      // Fock accumulation over a (mu,nu|lambda,sigma) integral block:
      // fetch the integral tile and a density tile plus index metadata.
      // This is the largest footprint of the run: 2*80000 + 16000 =
      // 176000 bytes -> mc = 176 KB.
      t = make_fock_accumulation_task(m, tile, 2, kIndexBufferBytes,
                                      "fock2_" + std::to_string(i));
    } else if (mix < 0.70) {
      // Boundary blocks: two (100, r) strips.
      t = make_fock_accumulation_task(m, strip, 2, kIndexBufferBytes,
                                      "fockb_" + std::to_string(i));
    } else if (mix < 0.78) {
      // Corner blocks: two (r, r) stubs.
      t = make_fock_accumulation_task(m, corner, 2, kIndexBufferBytes,
                                      "fockc_" + std::to_string(i));
    } else if (mix < 0.88) {
      // Single-tile accumulation (diagonal blocks / screening survivors).
      t = make_fock_accumulation_task(m, tile, 1, kIndexBufferBytes,
                                      "fock1_" + std::to_string(i));
    } else {
      // Small contraction against a resident tile: fetch one thin slab
      // B(k x 100), contract with a resident A(100 x k). Compute
      // intensive, but only mildly (the processor digests one while the
      // next transfer is in flight), and with small communication times.
      const auto k = static_cast<std::size_t>(rng.uniform_u64(30, 60));
      const double b_bytes = 8.0 * static_cast<double>(k * kHfTile);
      const Time comm = m.transfer_time(b_bytes);
      t = Task{.id = 0,
               .comm = comm,
               .comp = comm * rng.uniform(1.05, 1.45),
               .mem = b_bytes,
               .comm_bytes = b_bytes,
               .name = "ct_" + std::to_string(i)};
    }
    // Mild run-to-run jitter on the computation (cache state, NUMA): HF
    // tiles are homogeneous, so the noise is small.
    t.comp *= rng.uniform(0.93, 1.07);
    tasks.push_back(std::move(t));
  }

  // The paper's mc for HF is the two-tile Fock task; make sure at least
  // one exists so every trace has the same minimum capacity.
  if (std::none_of(tasks.begin(), tasks.end(), [](const Task& t) {
        return t.mem >= 176000.0;
      })) {
    tasks.front() =
        make_fock_accumulation_task(m, tile, 2, kIndexBufferBytes, "fock2_0");
  }
  return Instance(std::move(tasks));
}

}  // namespace dts
