#include "trace/tensor_tasks.hpp"

namespace dts {

std::size_t TileSpec::elements() const noexcept {
  std::size_t n = 1;
  for (std::size_t d : dims) n *= d;
  return dims.empty() ? 0 : n;
}

double TileSpec::bytes() const noexcept {
  return 8.0 * static_cast<double>(elements());
}

Task make_transpose_task(const MachineModel& machine, const TileSpec& tile,
                         std::string name) {
  const double bytes = tile.bytes();
  return Task{.id = 0,
              .comm = machine.transfer_time(bytes),
              .comp = machine.streaming_time(bytes),
              .mem = bytes,
              .comm_bytes = bytes,
              .name = std::move(name)};
}

Task make_contraction_task(const MachineModel& machine, std::size_t m,
                           std::size_t n, std::size_t k, std::string name) {
  const double a_bytes = 8.0 * static_cast<double>(m) * static_cast<double>(k);
  const double b_bytes = 8.0 * static_cast<double>(k) * static_cast<double>(n);
  const double flops = 2.0 * static_cast<double>(m) * static_cast<double>(n) *
                       static_cast<double>(k);
  return Task{.id = 0,
              .comm = machine.transfer_time(a_bytes + b_bytes),
              .comp = machine.compute_time(flops),
              .mem = a_bytes + b_bytes,
              .comm_bytes = a_bytes + b_bytes,
              .name = std::move(name)};
}

Task make_fock_accumulation_task(const MachineModel& machine,
                                 const TileSpec& tile, std::size_t n_tiles,
                                 double index_buffer_bytes, std::string name) {
  const double bytes =
      tile.bytes() * static_cast<double>(n_tiles) + index_buffer_bytes;
  return Task{.id = 0,
              .comm = machine.transfer_time(bytes),
              // A couple of streaming passes (digestion + accumulation)
              // over the fetched integrals; still communication intensive
              // because the link is slower than the memory system.
              .comp = machine.streaming_time(bytes) * 0.30,
              .mem = bytes,
              .comm_bytes = bytes,
              .name = std::move(name)};
}

}  // namespace dts
