#pragma once

/// \file transforms.hpp
/// Trace surgery for calibration and what-if studies: rescaling times
/// (faster link / faster cores), rescaling memory, merging process traces,
/// filtering task populations and jittering durations. All transforms
/// return new instances; task names are preserved.

#include <functional>
#include <span>
#include <vector>

#include "core/channels.hpp"
#include "core/instance.hpp"
#include "support/rng.hpp"

namespace dts {

/// Multiplies every communication time by comm_factor and every
/// computation time by comp_factor (e.g. 0.5 comm = a twice-faster link).
/// Factors must be positive and finite.
[[nodiscard]] Instance scale_times(const Instance& inst, double comm_factor,
                                   double comp_factor);

/// Multiplies every memory requirement by `factor` (> 0).
[[nodiscard]] Instance scale_memory(const Instance& inst, double factor);

/// Concatenates traces in order (task ids renumbered; each trace's
/// dependency edges are shifted with its tasks, so DAG traces merge
/// without cross-trace edges appearing).
[[nodiscard]] Instance merge_traces(std::span<const Instance> traces);

/// Keeps the tasks satisfying `keep`, preserving submission order.
/// Dependency edges between two kept tasks survive (remapped to the new
/// ids); edges onto filtered-out tasks are dropped — transitive
/// predecessors are *not* inherited, the filter severs the chain.
[[nodiscard]] Instance filter_tasks(const Instance& inst,
                                    const std::function<bool(const Task&)>& keep);

/// Multiplies each duration by an independent uniform factor in
/// [1 - jitter, 1 + jitter] (jitter in [0, 1)). Models measurement noise
/// for robustness studies: how stable are the heuristics' decisions under
/// imprecise cost models?
[[nodiscard]] Instance jitter_times(const Instance& inst, Rng& rng,
                                    double jitter);

/// Splits a trace into consecutive batches of at most `batch_size` tasks
/// (the §6.3 runtime visibility model). Intra-batch dependency edges are
/// kept (remapped to batch-local ids); cross-batch edges are dropped —
/// each batch is its own instance, and the batch scheduler's in-order
/// submission over a shared Schedule supplies cross-batch readiness.
[[nodiscard]] std::vector<Instance> split_batches(const Instance& inst,
                                                  std::size_t batch_size);

/// Bidirectional (duplex) extension of a trace: after each task with a
/// positive footprint, inserts a result write-back task on kChannelD2H
/// whose transfer moves `result_fraction` of the task's input footprint
/// over `d2h` (comp = 0 — a pure transfer occupying the output buffer for
/// the duration of the copy). Original tasks keep their channels; the
/// result models the paper-conclusion scenario where computed results
/// stream back to the host while the next inputs stream in.
/// `result_fraction` must be in (0, 1]. Existing dependency edges are
/// remapped through the interleaving. With `depend_on_producer` each
/// write-back gains a dependency edge on the task that produced it (the
/// copy may not start before the computation ends — a DAG instance); the
/// default leaves write-backs independent, preserving the historical
/// duplex benchmarks bit-for-bit.
[[nodiscard]] Instance with_writeback(const Instance& inst,
                                      const ChannelSpec& d2h,
                                      double result_fraction,
                                      bool depend_on_producer = false);

/// Forces every task onto channel 0 — the half-duplex serialization of a
/// multi-channel trace. Comparing makespans of an instance against
/// merged_channels(instance) isolates the gain of per-direction engines.
[[nodiscard]] Instance merged_channels(const Instance& inst);

/// Machine-independent (bytes-only) view of a byte-annotated trace: every
/// comm becomes the kUnboundTime sentinel, leaving only sizes — the input
/// of bind(inst, machine) / `dts recost`. Throws std::invalid_argument
/// when some task has no byte annotation (its time could never be
/// recovered).
[[nodiscard]] Instance strip_comm_times(const Instance& inst);

}  // namespace dts
