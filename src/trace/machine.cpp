#include "trace/machine.hpp"

// MachineModel is header-only; this translation unit exists so the build
// has a home for future non-inline additions (e.g. calibration loaders).
