#include "trace/machine.hpp"

#include <utility>
#include <vector>

namespace dts {

Machine MachineModel::to_machine(std::string name,
                                 std::string description) const {
  std::vector<MachineChannel> channels;
  channels.push_back(affine_channel(duplex() ? "H2D" : "link", link_latency,
                                    link_bandwidth));
  if (duplex()) {
    channels.push_back(affine_channel("D2H", link_latency, d2h_bandwidth));
  }
  return Machine(std::move(name), std::move(description), std::move(channels));
}

namespace detail {

/// The built-in machine presets live here, next to the MachineModel
/// constants they share, so the hardware numbers have exactly one home.
/// MachineRegistry::global() (model/machine.cpp) calls this on first
/// access — the same late-registration trick SolverRegistry uses to
/// survive static-library links.
void register_builtin_machines(MachineRegistry& registry) {
  // "cascade" is a documented alias of "paper": same construction, only
  // the registry key differs.
  const auto cascade_machine = [](const char* name) {
    return MachineModel::cascade().to_machine(
        name, "Cascade node slice, single half-duplex link");
  };
  registry.add("paper", MachineChannels{"link"},
               "the paper's testbed: one process's share of a PNNL Cascade "
               "node (shared FDR link, one-sided transfers)",
               [cascade_machine] { return cascade_machine("paper"); });
  registry.add("cascade", MachineChannels{"link"},
               "alias of 'paper' (the Cascade testbed)",
               [cascade_machine] { return cascade_machine("cascade"); });
  registry.add("pcie-gpu", MachineChannels{"link"},
               "CPU->GPU offload over one PCIe 3.0 x16 DMA engine "
               "(half duplex)",
               [] {
                 return MachineModel::pcie_gpu().to_machine(
                     "pcie-gpu", "PCIe 3.0 x16, single DMA engine");
               });
  registry.add("duplex-pcie", MachineChannels{"H2D+D2H"},
               "CPU<->GPU offload with both PCIe 3.0 x16 DMA engines "
               "(H2D + slightly slower D2H)",
               [] {
                 return MachineModel::duplex_pcie().to_machine(
                     "duplex-pcie",
                     "PCIe 3.0 x16, one DMA engine per direction");
               });
  registry.add(
      "summit-node", MachineChannels{"H2D+D2H"},
      "Summit-like node: NVLink2 CPU<->GPU bricks, duplex, with the "
      "measured small/large-message protocol switch (piecewise model)",
      [] {
        // NVLink2 CPU<->GPU on a Summit node: ~50 GB/s per direction (two
        // bricks). Small messages ride an eager path whose effective
        // bandwidth sits far below the asymptote; the curve switches
        // branch at the 64 KiB protocol threshold — the two-regime shape
        // the paper measures on its own interconnect.
        const auto nvlink2 = [] {
          return std::make_shared<const PiecewiseTransferModel>(
              std::vector<PiecewiseTransferModel::Segment>{
                  {0.0, 1.5e-6, 1.0e10},      // eager: latency-dominated
                  {65536.0, 6.0e-6, 5.0e10},  // rendezvous: streaming
              });
        };
        return Machine("summit-node",
                       "NVLink2 duplex, piecewise small/large regimes",
                       {MachineChannel{"H2D", nvlink2()},
                        MachineChannel{"D2H", nvlink2()}});
      });
  registry.add("nvlink", MachineChannels{"H2D+D2H"},
               "NVLink3-class CPU<->GPU attachment: duplex, ~150 GB/s per "
               "direction, sub-microsecond startup",
               [] {
                 return Machine("nvlink", "NVLink3 duplex",
                                {affine_channel("H2D", 8.0e-7, 1.5e11),
                                 affine_channel("D2H", 8.0e-7, 1.5e11)});
               });
}

}  // namespace detail

}  // namespace dts
