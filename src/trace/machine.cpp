#include "trace/machine.hpp"

#include <string>
#include <utility>
#include <vector>

namespace dts {

Machine MachineModel::to_machine(std::string name,
                                 std::string description) const {
  std::vector<MachineChannel> channels;
  channels.push_back(affine_channel(duplex() ? "H2D" : "link", link_latency,
                                    link_bandwidth));
  if (duplex()) {
    channels.push_back(affine_channel("D2H", link_latency, d2h_bandwidth));
  }
  return Machine(std::move(name), std::move(description), std::move(channels));
}

namespace detail {

/// The built-in machine presets live here, next to the MachineModel
/// constants they share, so the hardware numbers have exactly one home.
/// MachineRegistry::global() (model/machine.cpp) calls this on first
/// access — the same late-registration trick SolverRegistry uses to
/// survive static-library links.
void register_builtin_machines(MachineRegistry& registry) {
  // "cascade" is a documented alias of "paper": same construction, only
  // the registry key differs.
  const auto cascade_machine = [](const char* name) {
    return MachineModel::cascade().to_machine(
        name, "Cascade node slice, single half-duplex link");
  };
  registry.add("paper", MachineChannels{"link"},
               "the paper's testbed: one process's share of a PNNL Cascade "
               "node (shared FDR link, one-sided transfers)",
               [cascade_machine] { return cascade_machine("paper"); });
  registry.add("cascade", MachineChannels{"link"},
               "alias of 'paper' (the Cascade testbed)",
               [cascade_machine] { return cascade_machine("cascade"); });
  registry.add("pcie-gpu", MachineChannels{"link"},
               "CPU->GPU offload over one PCIe 3.0 x16 DMA engine "
               "(half duplex)",
               [] {
                 return MachineModel::pcie_gpu().to_machine(
                     "pcie-gpu", "PCIe 3.0 x16, single DMA engine");
               });
  registry.add("duplex-pcie", MachineChannels{"H2D+D2H"},
               "CPU<->GPU offload with both PCIe 3.0 x16 DMA engines "
               "(H2D + slightly slower D2H)",
               [] {
                 return MachineModel::duplex_pcie().to_machine(
                     "duplex-pcie",
                     "PCIe 3.0 x16, one DMA engine per direction");
               });
  registry.add(
      "summit-node", MachineChannels{"H2D+D2H"},
      "Summit-like node: NVLink2 CPU<->GPU bricks, duplex, with the "
      "measured small/large-message protocol switch (piecewise model)",
      [] {
        // NVLink2 CPU<->GPU on a Summit node: ~50 GB/s per direction (two
        // bricks). Small messages ride an eager path whose effective
        // bandwidth sits far below the asymptote; the curve switches
        // branch at the 64 KiB protocol threshold — the two-regime shape
        // the paper measures on its own interconnect.
        const auto nvlink2 = [] {
          return std::make_shared<const PiecewiseTransferModel>(
              std::vector<PiecewiseTransferModel::Segment>{
                  {0.0, 1.5e-6, 1.0e10},      // eager: latency-dominated
                  {65536.0, 6.0e-6, 5.0e10},  // rendezvous: streaming
              });
        };
        return Machine("summit-node",
                       "NVLink2 duplex, piecewise small/large regimes",
                       {MachineChannel{"H2D", nvlink2()},
                        MachineChannel{"D2H", nvlink2()}});
      });
  registry.add(
      "summit-multi-gpu",
      MachineChannels{"g0-h2d+g0-d2h+g1-h2d+g1-d2h+g2-h2d+g2-d2h+g3-h2d+"
                      "g3-d2h+g0g1-peer+g1g2-peer+g2g3-peer+g3g0-peer"},
      "Summit-like multi-GPU node: 4 GPUs, one duplex PCIe host link pair "
      "per GPU plus an NVLink peer ring (12 copy engines)",
      [] {
        // The deep-hierarchy preset: each of the four GPUs owns a duplex
        // pair of PCIe 3.0 x16 host links (~12.3 GB/s in, ~12.0 GB/s
        // out), and neighbouring GPUs are joined by NVLink2 peer bricks
        // (~50 GB/s, sub-2us startup) in a ring — the per-direction
        // affine family calibrate() fits. Channel ids follow the
        // declaration order: host pairs first (g0..g3), then the peer
        // ring (g0g1, g1g2, g2g3, g3g0).
        std::vector<MachineChannel> channels;
        for (int g = 0; g < 4; ++g) {
          const std::string gpu = "g" + std::to_string(g);
          channels.push_back(affine_channel(gpu + "-h2d", 5.0e-6, 1.23e10));
          channels.push_back(affine_channel(gpu + "-d2h", 5.0e-6, 1.20e10));
        }
        for (int g = 0; g < 4; ++g) {
          const std::string peer =
              "g" + std::to_string(g) + "g" + std::to_string((g + 1) % 4);
          channels.push_back(affine_channel(peer + "-peer", 1.5e-6, 5.0e10));
        }
        return Machine("summit-multi-gpu",
                       "4 GPUs: duplex PCIe host links + NVLink peer ring",
                       std::move(channels));
      });
  registry.add("nvlink", MachineChannels{"H2D+D2H"},
               "NVLink3-class CPU<->GPU attachment: duplex, ~150 GB/s per "
               "direction, sub-microsecond startup",
               [] {
                 return Machine("nvlink", "NVLink3 duplex",
                                {affine_channel("H2D", 8.0e-7, 1.5e11),
                                 affine_channel("D2H", 8.0e-7, 1.5e11)});
               });
}

}  // namespace detail

}  // namespace dts
