#pragma once

/// \file three_partition.hpp
/// The NP-completeness machinery of the paper (Theorem 2): a polynomial
/// reduction from 3-Partition to problem DT, built exactly as Table 1
/// prescribes, plus the two directions of the equivalence:
///   partition  -> tight schedule   (the Fig. 2 pattern, makespan L)
///   schedule   -> partition        (reading triplets off the K-task
///                                   communication windows)
/// A brute-force 3-Partition solver (for small m) closes the loop in the
/// tests: solvable instances yield schedules of length exactly L;
/// unsolvable ones provably admit no such schedule.

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "core/instance.hpp"
#include "core/schedule.hpp"

namespace dts {

/// A 3-Partition instance: 3m positive integers to split into m triplets
/// of equal sum b = (sum values) / m.
struct ThreePartitionInstance {
  std::vector<std::int64_t> values;

  [[nodiscard]] std::size_t m() const noexcept { return values.size() / 3; }
  [[nodiscard]] std::int64_t total() const noexcept;
  /// Target triplet sum; only meaningful when total() % m == 0.
  [[nodiscard]] std::int64_t b() const noexcept;
  /// Structurally admissible: size is a positive multiple of 3, all values
  /// positive, total divisible by m.
  [[nodiscard]] bool well_formed() const noexcept;
};

using Triplet = std::array<std::size_t, 3>;  ///< indices into `values`

/// Exhaustive solver (exponential; intended for m <= 5). Returns the m
/// triplets or nullopt when no partition exists.
[[nodiscard]] std::optional<std::vector<Triplet>> solve_three_partition(
    const ThreePartitionInstance& input);

/// The DT instance produced by the Table 1 construction.
struct DtReduction {
  Instance instance;      ///< 4m+1 tasks; layout below
  Mem capacity = 0.0;     ///< C = b' + 3
  Time target = 0.0;      ///< L = m (b' + 3)
  std::size_t m = 0;
  std::int64_t x = 0;     ///< max a_i (the paper's scaling constant)
  std::int64_t b = 0;     ///< triplet sum
  std::int64_t b_prime = 0;  ///< b + 6x

  /// Task ids: K_s for s = 0..m.
  [[nodiscard]] TaskId k_task(std::size_t s) const {
    return static_cast<TaskId>(s);
  }
  /// Task ids: A_i for i = 0..3m-1 (A_i corresponds to values[i]).
  [[nodiscard]] TaskId a_task(std::size_t i) const {
    return static_cast<TaskId>(m + 1 + i);
  }
};

/// Builds the Table 1 instance. Throws std::invalid_argument when the
/// input is not well_formed().
[[nodiscard]] DtReduction reduce_to_dt(const ThreePartitionInstance& input);

/// Forward direction: a valid partition yields the Fig. 2 schedule with
/// makespan exactly `target` under `capacity`.
[[nodiscard]] Schedule schedule_from_partition(
    const DtReduction& red, const std::vector<Triplet>& triplets);

/// Backward direction: reads the triplets off a schedule. Returns nullopt
/// unless the schedule is the required shape: makespan <= target and each
/// K_s communication window contains exactly the computations of a triplet
/// summing to b.
[[nodiscard]] std::optional<std::vector<Triplet>> partition_from_schedule(
    const DtReduction& red, const Schedule& sched);

}  // namespace dts
