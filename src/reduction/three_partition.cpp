#include "reduction/three_partition.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "core/validate.hpp"

namespace dts {

std::int64_t ThreePartitionInstance::total() const noexcept {
  return std::accumulate(values.begin(), values.end(), std::int64_t{0});
}

std::int64_t ThreePartitionInstance::b() const noexcept {
  const std::size_t groups = m();
  return groups == 0 ? 0 : total() / static_cast<std::int64_t>(groups);
}

bool ThreePartitionInstance::well_formed() const noexcept {
  if (values.empty() || values.size() % 3 != 0) return false;
  if (std::any_of(values.begin(), values.end(),
                  [](std::int64_t v) { return v <= 0; })) {
    return false;
  }
  return total() % static_cast<std::int64_t>(m()) == 0;
}

namespace {

/// Recursive exact cover by triplets of sum b. Always groups the smallest
/// unused index with two larger ones, which prunes symmetric branches.
bool cover(const std::vector<std::int64_t>& values, std::int64_t b,
           std::vector<bool>& used, std::vector<Triplet>& out) {
  const std::size_t first =
      static_cast<std::size_t>(std::find(used.begin(), used.end(), false) -
                               used.begin());
  if (first == values.size()) return true;
  used[first] = true;
  for (std::size_t second = first + 1; second < values.size(); ++second) {
    if (used[second]) continue;
    const std::int64_t rest = b - values[first] - values[second];
    if (rest <= 0) continue;
    used[second] = true;
    for (std::size_t third = second + 1; third < values.size(); ++third) {
      if (used[third] || values[third] != rest) continue;
      used[third] = true;
      out.push_back(Triplet{first, second, third});
      if (cover(values, b, used, out)) return true;
      out.pop_back();
      used[third] = false;
    }
    used[second] = false;
  }
  used[first] = false;
  return false;
}

}  // namespace

std::optional<std::vector<Triplet>> solve_three_partition(
    const ThreePartitionInstance& input) {
  if (!input.well_formed()) return std::nullopt;
  std::vector<bool> used(input.values.size(), false);
  std::vector<Triplet> out;
  out.reserve(input.m());
  if (cover(input.values, input.b(), used, out)) return out;
  return std::nullopt;
}

DtReduction reduce_to_dt(const ThreePartitionInstance& input) {
  if (!input.well_formed()) {
    throw std::invalid_argument("reduce_to_dt: malformed 3-Partition instance");
  }
  DtReduction red;
  red.m = input.m();
  red.b = input.b();
  red.x = *std::max_element(input.values.begin(), input.values.end());
  red.b_prime = red.b + 6 * red.x;

  const auto bp = static_cast<Time>(red.b_prime);
  std::vector<Task> tasks;
  tasks.reserve(4 * red.m + 1);
  // K_0: comm 0, comp 3. K_1..K_{m-1}: comm b', comp 3. K_m: comm b', comp 0.
  // Memory requirement equals communication time (Table 1's convention).
  tasks.push_back(Task{.id = 0, .comm = 0.0, .comp = 3.0, .mem = 0.0, .name = "K0"});
  for (std::size_t s = 1; s < red.m; ++s) {
    tasks.push_back(Task{.id = 0, .comm = bp, .comp = 3.0, .mem = bp,
                         .name = "K" + std::to_string(s)});
  }
  tasks.push_back(Task{.id = 0, .comm = bp, .comp = 0.0, .mem = bp,
                       .name = "K" + std::to_string(red.m)});
  // A_i: comm 1, comp a'_i = a_i + 2x, memory 1.
  for (std::size_t i = 0; i < input.values.size(); ++i) {
    const auto comp = static_cast<Time>(input.values[i] + 2 * red.x);
    tasks.push_back(Task{.id = 0, .comm = 1.0, .comp = comp, .mem = 1.0,
                         .name = "A" + std::to_string(i)});
  }
  red.instance = Instance(std::move(tasks));
  red.capacity = bp + 3.0;
  red.target = static_cast<Time>(red.m) * (bp + 3.0);
  return red;
}

Schedule schedule_from_partition(const DtReduction& red,
                                 const std::vector<Triplet>& triplets) {
  if (triplets.size() != red.m) {
    throw std::invalid_argument(
        "schedule_from_partition: need exactly m triplets");
  }
  Schedule sched(red.instance.size());
  const Time segment = static_cast<Time>(red.b_prime) + 3.0;

  // K_0 transfers instantly and computes during the first triplet's
  // transfers; K_s (s >= 1) transfers during segment s's computations and
  // computes at the start of segment s+1.
  sched.set(red.k_task(0), 0.0, 0.0);
  for (std::size_t s = 1; s <= red.m; ++s) {
    const Time seg_start = static_cast<Time>(s - 1) * segment;
    sched.set(red.k_task(s), seg_start + 3.0, seg_start + segment);
  }

  for (std::size_t s = 0; s < red.m; ++s) {
    const Time seg_start = static_cast<Time>(s) * segment;
    // The triplet's three transfers run during K_{s}'s computation slot
    // [seg_start, seg_start+3); its computations fill K_{s+1}'s transfer
    // window [seg_start+3, seg_start+3+b') exactly.
    Time comp_cursor = seg_start + 3.0;
    for (std::size_t k = 0; k < 3; ++k) {
      const TaskId a = red.a_task(triplets[s][k]);
      sched.set(a, seg_start + static_cast<Time>(k), comp_cursor);
      comp_cursor += red.instance[a].comp;
    }
  }
  return sched;
}

std::optional<std::vector<Triplet>> partition_from_schedule(
    const DtReduction& red, const Schedule& sched) {
  if (sched.size() != red.instance.size() || !sched.complete()) {
    return std::nullopt;
  }
  if (definitely_less(red.target, sched.makespan(red.instance))) {
    return std::nullopt;
  }
  if (!validate_schedule(red.instance, sched, red.capacity).ok()) {
    return std::nullopt;
  }

  // Triplet s = the A tasks whose computation starts inside K_{s+1}'s
  // communication window.
  std::vector<std::vector<std::size_t>> groups(red.m);
  for (std::size_t i = 0; i < 3 * red.m; ++i) {
    const TaskId a = red.a_task(i);
    const Time comp_start = sched[a].comp_start;
    bool placed = false;
    for (std::size_t s = 1; s <= red.m; ++s) {
      const Time win_start = sched[red.k_task(s)].comm_start;
      const Time win_end = win_start + red.instance[red.k_task(s)].comm;
      if (approx_leq(win_start, comp_start) &&
          definitely_less(comp_start, win_end)) {
        groups[s - 1].push_back(i);
        placed = true;
        break;
      }
    }
    if (!placed) return std::nullopt;
  }

  std::vector<Triplet> result;
  result.reserve(red.m);
  for (const auto& g : groups) {
    if (g.size() != 3) return std::nullopt;
    // Each group must be a genuine triplet of sum b (equivalently the
    // computations sum to b' = b + 6x).
    Time comp_sum = 0.0;
    for (std::size_t i : g) comp_sum += red.instance[red.a_task(i)].comp;
    if (!approx_equal(comp_sum, static_cast<Time>(red.b_prime))) {
      return std::nullopt;
    }
    result.push_back(Triplet{g[0], g[1], g[2]});
  }
  return result;
}

}  // namespace dts
