#include "cli/cli.hpp"

#include <algorithm>
#include <cerrno>
#include <charconv>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include <iostream>

#include "core/pool.hpp"
#include "core/recommend.hpp"
#include "core/registry.hpp"
#include "core/solver.hpp"
#include "model/calibrate.hpp"
#include "model/machine.hpp"
#include "report/csv.hpp"
#include "service/serve.hpp"
#include "service/service.hpp"
#include "report/gantt.hpp"
#include "report/schedule_stats.hpp"
#include "report/table.hpp"
#include "trace/generators.hpp"
#include "trace/trace_io.hpp"
#include "trace/workload_stats.hpp"

namespace dts::cli {

namespace {

constexpr std::string_view kUsage =
    "usage: dts <command> [args]     (trace FILE arguments accept '-' for\n"
    "                                stdin, so commands pipe into each other)\n"
    "commands:\n"
    "  generate  --kernel=HF|CCSD|CCSD-DAG [--seed=N] [--min-tasks=N] [--max-tasks=N]\n"
    "            [--machine=paper|cascade|pcie-gpu|duplex-pcie]\n"
    "            [--writeback-fraction=F]\n"
    "            --out=FILE          synthesize a byte-annotated (v3) process\n"
    "                                trace; a duplex machine emits\n"
    "                                bidirectional traces with D2H result\n"
    "                                write-back tasks\n"
    "  info      FILE [--channels]   bounds and workload characteristics\n"
    "                                (--channels adds the per-engine loads)\n"
    "  solve     FILE [--solver=NAME] (--capacity=B | --capacity-factor=F)\n"
    "            [--batch=N] [--iterations=N] [--seed=N] [--time-limit=S]\n"
    "            [--machine=NAME] [--gantt]  run any registered solver;\n"
    "                                --machine re-costs byte-annotated\n"
    "                                traces for a registered machine\n"
    "  solve-batch FILE... [--solver=NAME]\n"
    "            (--capacity=B | --capacity-factor=F) [--workers=N]\n"
    "            [--queue=N] [--policy=fifo|priority] [--time-limit=S]\n"
    "            [--batch=N] [--machine=NAME] [--csv=FILE]\n"
    "                                solve many traces concurrently on a\n"
    "                                SolverPool; emits a CSV of per-trace\n"
    "                                makespans, wall times and jobs/sec.\n"
    "                                --time-limit is a per-job deadline\n"
    "                                (queue wait included); the priority\n"
    "                                policy runs larger traces first\n"
    "  schedule  FILE --heuristic=NAME (--capacity=B | --capacity-factor=F)\n"
    "            [--batch=N] [--gantt]  run one heuristic, print the analysis\n"
    "  compare   FILE (--capacity=B | --capacity-factor=F)\n"
    "                                all 14 heuristics side by side\n"
    "  recommend FILE (--capacity=B | --capacity-factor=F)\n"
    "                                the Table-6 recommendation\n"
    "  improve   FILE (--capacity=B | --capacity-factor=F) [--iterations=N]\n"
    "                                local search on top of the best heuristic\n"
    "  recost    FILE --machine=NAME [--out=FILE]\n"
    "                                re-cost a byte-annotated trace for a\n"
    "                                registered machine; writes the machine-\n"
    "                                costed v3 trace to stdout (or --out)\n"
    "  calibrate FILE [--split=BYTES]  least-squares fit a transfer model\n"
    "                                from '<bytes> <seconds>' sample lines\n"
    "                                (--split fits the small/large-message\n"
    "                                regimes separately, as the paper does)\n"
    "  machines                      list every registered machine model\n"
    "                                (also available as dts --list-machines)\n"
    "  solvers                       list every registered solver\n"
    "                                (also available as dts --list-solvers)\n"
    "  serve     [--workers=N] [--queue=N] [--cache=N] [--max-inflight=N]\n"
    "            [--solver=NAME] [--socket=PATH] [--stats]\n"
    "                                run the long-lived solver service: speaks\n"
    "                                the dts1 request protocol on stdin/stdout\n"
    "                                (and, with --socket, on a local AF_UNIX\n"
    "                                socket) with a canonical-instance result\n"
    "                                cache, single-flight coalescing and\n"
    "                                admission control; drains on stdin EOF or\n"
    "                                a quit frame (--stats then prints the\n"
    "                                service counters)\n";

/// Full-string numeric parse with a flag-specific error message.
double parse_double_flag(std::string_view key, const std::string& text) {
  const char* begin = text.c_str();
  char* end = nullptr;
  errno = 0;
  const double value = std::strtod(begin, &end);
  if (end != begin + text.size() || text.empty() || errno == ERANGE) {
    throw std::invalid_argument("invalid value for --" + std::string(key) +
                                ": '" + text + "' (expected a number)");
  }
  return value;
}

std::size_t parse_count_flag(std::string_view key, const std::string& text) {
  std::size_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || ptr != text.data() + text.size() || text.empty()) {
    throw std::invalid_argument("invalid value for --" + std::string(key) +
                                ": '" + text +
                                "' (expected a non-negative integer)");
  }
  return value;
}

/// Resolves the capacity flags against the trace. Throws on bad input.
Mem resolve_capacity(const CommandLine& cmd, const Instance& inst) {
  const auto absolute = cmd.flag("capacity");
  const auto factor = cmd.flag("capacity-factor");
  if (absolute && factor) {
    throw std::invalid_argument("give either --capacity or --capacity-factor");
  }
  if (absolute) {
    const double bytes = parse_double_flag("capacity", *absolute);
    if (!(bytes > 0.0)) {  // negated form also rejects NaN
      throw std::invalid_argument("--capacity must be positive");
    }
    return bytes;
  }
  const double f =
      factor ? parse_double_flag("capacity-factor", *factor) : 1.5;
  if (!(f > 0.0)) {
    throw std::invalid_argument("--capacity-factor must be positive");
  }
  return inst.min_capacity() * f;
}

/// Loads one trace argument; '-' reads the injected stdin stream so
/// commands compose in pipes (dts recost ... | dts solve -).
Instance load_trace(const std::string& file, std::istream& in) {
  if (file == "-") return read_trace(in);
  return read_trace_file(file);
}

Instance load(const CommandLine& cmd, std::istream& in) {
  if (cmd.positional.empty()) {
    throw std::invalid_argument("missing trace file argument");
  }
  return load_trace(cmd.positional.front(), in);
}

/// Scheduling commands reject empty traces: "solving" zero tasks would
/// print a degenerate all-zero analysis instead of pointing at the broken
/// input.
void expect_tasks(const Instance& inst, const std::string& file) {
  if (inst.empty()) {
    throw std::invalid_argument("trace '" + file +
                                "' contains no tasks; nothing to solve");
  }
}

/// Resolves `generate`'s --machine flag. Generation needs the full
/// MachineModel (compute rates as well as link models), so it stays on
/// the MachineModel presets; scheduling commands resolve --machine in the
/// MachineRegistry instead (any registered machine, affine or piecewise).
MachineModel resolve_generator_machine(const std::string& name) {
  if (name == "cascade" || name == "paper") return MachineModel::cascade();
  if (name == "pcie-gpu") return MachineModel::pcie_gpu();
  if (name == "duplex-pcie") return MachineModel::duplex_pcie();
  throw std::invalid_argument(
      "unknown machine '" + name +
      "' (generate accepts paper, cascade, pcie-gpu or duplex-pcie)");
}

/// Builds the SolveRequest shared by every scheduling command from one
/// trace file (solve-batch calls this per positional file). --machine
/// resolves in the MachineRegistry and re-costs the trace's
/// byte-annotated tasks for that hardware up front — the CLI binds
/// eagerly (rather than through SolveRequest::machine) so the printed
/// schedule analysis sees the same machine-costed tasks the solver does.
SolveRequest make_request(const CommandLine& cmd, const std::string& file,
                          std::istream& in) {
  SolveRequest request;
  request.instance = load_trace(file, in);
  expect_tasks(request.instance, file);
  request.capacity = resolve_capacity(cmd, request.instance);
  if (cmd.flag("batch")) {
    const std::size_t batch = cmd.count_or("batch", 0);
    if (batch == 0) {
      throw std::invalid_argument("--batch must be a positive integer");
    }
    request.batch_size = batch;
  }
  if (const auto machine_name = cmd.flag("machine")) {
    // Same guard as recost: re-costing a trace whose tasks lack byte
    // annotations would keep their old times while reporting the new
    // machine's name — a silent hybrid costing. bind() itself permits
    // per-task fallthrough (the library contract); the CLI insists the
    // whole trace is re-costable.
    if (!request.instance.fully_byte_annotated()) {
      throw std::invalid_argument(
          "trace '" + file +
          "' is not fully byte-annotated (v3 bytes= column), so --machine "
          "cannot re-cost it; regenerate it as v3 or drop --machine");
    }
    const Machine machine = machine_from_name(*machine_name);
    request.instance = bind(request.instance, machine);
    request.channels = machine.channel_set();
  }
  return request;
}

SolveRequest make_request(const CommandLine& cmd, std::istream& in) {
  if (cmd.positional.empty()) {
    throw std::invalid_argument("missing trace file argument");
  }
  return make_request(cmd, cmd.positional.front(), in);
}

SolveOptions make_options(const CommandLine& cmd) {
  SolveOptions options;
  options.max_iterations = cmd.count_or("iterations", options.max_iterations);
  options.seed = cmd.count_or("seed", 1);
  if (const auto limit = cmd.flag("time-limit")) {
    const double seconds = parse_double_flag("time-limit", *limit);
    if (!(seconds >= 0.0)) {  // negated form also rejects NaN
      throw std::invalid_argument("--time-limit must be non-negative");
    }
    options.time_limit_seconds = seconds;
  }
  return options;
}

int cmd_generate(const CommandLine& cmd, std::ostream& out) {
  const auto kernel_name = cmd.flag("kernel").value_or("HF");
  const auto out_file = cmd.flag("out");
  if (!out_file) throw std::invalid_argument("generate needs --out=FILE");
  ChemistryKernel kernel = ChemistryKernel::kCoupledClusterSD;
  bool dag = false;
  if (kernel_name == "HF") {
    kernel = ChemistryKernel::kHartreeFock;
  } else if (kernel_name == "CCSD") {
    kernel = ChemistryKernel::kCoupledClusterSD;
  } else if (kernel_name == "CCSD-DAG") {
    dag = true;
  } else {
    throw std::invalid_argument("unknown kernel '" + kernel_name +
                                "' (use HF, CCSD, or CCSD-DAG)");
  }
  TraceConfig config;
  config.seed = cmd.count_or("seed", 1);
  config.min_tasks = cmd.count_or("min-tasks", 300);
  config.max_tasks = cmd.count_or("max-tasks", 800);
  if (config.min_tasks == 0 || config.min_tasks > config.max_tasks) {
    throw std::invalid_argument("need 0 < min-tasks <= max-tasks");
  }
  if (const auto machine = cmd.flag("machine")) {
    config.machine = resolve_generator_machine(*machine);
  }
  if (const auto fraction = cmd.flag("writeback-fraction")) {
    if (!config.machine.duplex()) {
      throw std::invalid_argument(
          "--writeback-fraction only applies to a duplex machine "
          "(--machine=duplex-pcie)");
    }
    config.writeback_fraction =
        parse_double_flag("writeback-fraction", *fraction);
    if (!(config.writeback_fraction > 0.0) ||
        config.writeback_fraction > 1.0) {
      throw std::invalid_argument("--writeback-fraction must be in (0, 1]");
    }
  }
  const Instance inst =
      dag ? generate_ccsd_dag_trace(config) : generate_trace(kernel, config);
  write_trace_file(*out_file, inst);
  out << "wrote " << inst.size() << " "
      << (dag ? std::string("CCSD-DAG") : std::string(to_string(kernel)))
      << " tasks to " << *out_file
      << " (mc = " << format_si_bytes(inst.min_capacity());
  if (!inst.single_channel()) {
    out << ", " << inst.num_channels() << " channels";
  }
  out << ")\n";
  return 0;
}

int cmd_info(const CommandLine& cmd, std::ostream& out,
             std::istream& in) {
  const Instance inst = load(cmd, in);
  const InstanceStats stats = inst.stats();
  if (!inst.fully_bound()) {
    // A bytes-only workload has no times to characterize yet; show what
    // is machine independent and point at recost.
    TextTable table({"quantity", "value"});
    table.add_row({"tasks", std::to_string(stats.n_tasks)});
    table.add_row({"channels", std::to_string(inst.num_channels())});
    table.add_row({"time-less (bytes-only)", "yes — bind with `dts recost "
                   "FILE --machine=NAME` to cost it"});
    table.add_row({"minimum capacity (mc)", format_si_bytes(stats.max_mem)});
    table.add_row({"total memory footprint",
                   format_si_bytes(stats.total_mem)});
    out << table.to_ascii();
    return 0;
  }
  const WorkloadCharacteristics wc = characterize(inst);
  TextTable table({"quantity", "value"});
  table.add_row({"tasks", std::to_string(stats.n_tasks)});
  table.add_row({"channels", std::to_string(inst.num_channels())});
  table.add_row({"byte-annotated (recostable)",
                 inst.fully_byte_annotated() ? "yes" : "no"});
  table.add_row({"sum comm", format_seconds(wc.bounds.sum_comm)});
  if (cmd.flag("channels") && !inst.single_channel()) {
    for (std::size_t ch = 0; ch < wc.bounds.sum_comm_per_channel.size();
         ++ch) {
      table.add_row({"  channel " + std::to_string(ch) + " comm",
                     format_seconds(wc.bounds.sum_comm_per_channel[ch])});
    }
  }
  table.add_row({"sum comp", format_seconds(wc.bounds.sum_comp)});
  table.add_row({"OMIM lower bound", format_seconds(wc.bounds.omim_lower)});
  table.add_row({"sequential upper bound",
                 format_seconds(wc.bounds.sequential_upper)});
  table.add_row({"overlap headroom",
                 format_fixed(100.0 * wc.overlap_potential(), 1) + "%"});
  table.add_row({"minimum capacity (mc)", format_si_bytes(stats.max_mem)});
  table.add_row({"total memory footprint", format_si_bytes(stats.total_mem)});
  table.add_row({"compute-intensive tasks",
                 format_fixed(100.0 * stats.compute_intensive_fraction(), 1) +
                     "%"});
  out << table.to_ascii();
  return 0;
}

void print_schedule_analysis(std::ostream& out, const Instance& inst,
                             const Schedule& sched,
                             const CapacityAwareBounds& lb, bool gantt) {
  const ScheduleBreakdown breakdown = analyze_schedule(inst, sched);
  TextTable table({"quantity", "value"});
  table.add_row({"makespan", format_seconds(breakdown.makespan)});
  table.add_row({"ratio to OMIM",
                 format_fixed(breakdown.makespan / lb.omim, 4)});
  table.add_row({"ratio to capacity-aware bound",
                 format_fixed(breakdown.makespan / lb.combined, 4)});
  table.add_row({"link utilization",
                 format_fixed(100.0 * breakdown.link_utilization(), 1) + "%"});
  table.add_row({"processor utilization",
                 format_fixed(100.0 * breakdown.proc_utilization(), 1) + "%"});
  table.add_row({"comm-comp overlap",
                 format_fixed(100.0 * breakdown.overlap, 1) + "%"});
  out << table.to_ascii();
  if (gantt) out << render_gantt(inst, sched, {.width = 72});
}

int cmd_solve(const CommandLine& cmd, std::ostream& out,
              std::istream& in) {
  const SolveRequest request = make_request(cmd, in);
  const SolveOptions options = make_options(cmd);
  const auto solver = cmd.flag("solver").value_or("auto");
  const SolveResult res = solve(request, solver, options);
  out << "solver " << solver << " at capacity "
      << format_si_bytes(request.capacity);
  if (const auto machine = cmd.flag("machine")) {
    out << " on machine " << *machine;
  }
  if (request.batch_size) out << " (batches of " << *request.batch_size << ")";
  out << ":\n";
  out << "winner: " << res.winner;
  if (!res.detail.empty()) out << "  (" << res.detail << ")";
  out << "\n";
  if (res.cancelled) {
    out << "stopped early (deadline or cancellation); best incumbent shown\n";
  }
  if (res.proved_optimal) {
    out << "proved optimal (lower bound " << format_seconds(res.lower_bound)
        << ")\n";
  } else if (res.lower_bound > 0.0) {
    out << "lower bound " << format_seconds(res.lower_bound) << " (gap "
        << format_fixed(100.0 * res.optimality_gap(), 2) << "%)\n";
  }
  if (!res.outcomes.empty()) {
    const bool batch_mode = res.outcomes.front().makespan == kInfiniteTime;
    TextTable table({"candidate", batch_mode ? "batch wins" : "makespan"});
    for (const CandidateOutcome& o : res.outcomes) {
      table.add_row({o.name, batch_mode ? std::to_string(o.batch_wins)
                                        : format_seconds(o.makespan)});
    }
    out << table.to_ascii();
  }
  print_schedule_analysis(out, request.instance, res.schedule, res.bounds,
                          cmd.flag("gantt").has_value());
  out << "wall time: " << format_fixed(1e3 * res.wall_seconds, 2) << " ms ("
      << res.evaluations << " evaluations)\n";
  return 0;
}

/// Fixed-precision number for CSV cells (full precision is noise here).
std::string csv_number(double value, int digits = 6) {
  return format_fixed(value, digits);
}

int cmd_solve_batch(const CommandLine& cmd, std::ostream& out,
                    std::istream& in) {
  if (cmd.positional.empty()) {
    throw std::invalid_argument("solve-batch needs at least one trace file");
  }
  const std::string solver{cmd.flag("solver").value_or("auto")};

  SolverPoolOptions pool_options;
  pool_options.workers = cmd.count_or("workers", 0);
  pool_options.queue_capacity =
      std::max<std::size_t>(1, cmd.count_or("queue", 1024));
  if (const auto policy = cmd.flag("policy")) {
    if (*policy == "fifo") {
      pool_options.policy = SolverPoolOptions::Policy::kFifo;
    } else if (*policy == "priority") {
      pool_options.policy = SolverPoolOptions::Policy::kPriority;
    } else {
      throw std::invalid_argument("unknown --policy '" + *policy +
                                  "' (use fifo or priority)");
    }
  }

  // stdin is one stream: a second '-' would read it after the first
  // drained it and fail with a baffling "empty trace".
  if (std::count(cmd.positional.begin(), cmd.positional.end(), "-") > 1) {
    throw std::invalid_argument(
        "solve-batch: '-' (stdin) may be given at most once");
  }

  std::vector<JobRequest> jobs;
  jobs.reserve(cmd.positional.size());
  for (const std::string& file : cmd.positional) {
    JobRequest job;
    job.tag = file;
    job.request = make_request(cmd, file, in);
    job.solver = solver;
    job.options = make_options(cmd);
    // --time-limit becomes the service-level deadline (it covers queue
    // wait, and the pool maps the remainder onto time_limit_seconds when
    // the job starts). Inner candidate fan-out runs on the pool's own
    // crew, so jobs never oversubscribe the workers.
    job.deadline_seconds = job.options.time_limit_seconds;
    job.options.time_limit_seconds.reset();
    // Under the priority policy, larger traces go first (longest-job-first
    // keeps the tail short when the mix is skewed).
    job.priority = static_cast<int>(job.request.instance.size());
    jobs.push_back(std::move(job));
  }

  SolverPool pool(pool_options);
  const auto start = std::chrono::steady_clock::now();
  const std::vector<JobOutcome> outcomes = solve_all(pool, std::move(jobs));
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  pool.shutdown(DrainMode::kDrain);

  std::ofstream csv_file;
  if (const auto csv_path = cmd.flag("csv")) {
    csv_file.open(*csv_path);
    if (!csv_file) {
      throw std::runtime_error("solve-batch: cannot open " + *csv_path);
    }
  }
  std::ostream& csv_out = csv_file.is_open() ? csv_file : out;
  CsvWriter csv(csv_out);
  csv.row({"trace", "solver", "status", "winner", "makespan",
           "ratio_to_omim", "wall_seconds"});
  std::size_t failed = 0;
  std::size_t unsolved = 0;  // cancelled/expired without any schedule
  std::size_t solved = 0;
  for (std::size_t k = 0; k < outcomes.size(); ++k) {
    const JobOutcome& outcome = outcomes[k];
    const bool has = outcome.has_result;
    if (outcome.status == JobStatus::kFailed) {
      ++failed;
    } else if (!has) {
      ++unsolved;
    } else {
      ++solved;
    }
    csv.row({cmd.positional[k], solver, std::string(to_string(outcome.status)),
             has ? outcome.result.winner : outcome.error,
             has ? csv_number(outcome.result.makespan) : "",
             has ? csv_number(outcome.result.ratio_to_optimal(), 4) : "",
             has ? csv_number(outcome.result.wall_seconds) : ""});
  }
  out << "# " << outcomes.size() << " jobs on " << pool.worker_count()
      << " workers: " << format_fixed(wall, 3) << " s wall, "
      << format_fixed(wall > 0.0 ? solved / wall : 0.0, 2)
      << " solved jobs/sec";
  if (unsolved > 0) out << ", " << unsolved << " expired without a result";
  if (failed > 0) out << ", " << failed << " failed";
  out << "\n";
  // Success means every job yielded a schedule (a deadline-stopped
  // best-so-far result counts; an expired-in-queue job does not).
  return failed == 0 && unsolved == 0 ? 0 : 1;
}

int cmd_schedule(const CommandLine& cmd, std::ostream& out,
                 std::istream& in) {
  const auto name = cmd.flag("heuristic").value_or("OOSIM");
  if (!heuristic_from_name(name)) {
    throw std::invalid_argument("unknown heuristic '" + name +
                                "' (see `dts compare` for the list)");
  }
  const SolveRequest request = make_request(cmd, in);
  const SolveResult res = solve(request, name);
  out << name << " at capacity " << format_si_bytes(request.capacity) << ":\n";
  print_schedule_analysis(out, request.instance, res.schedule, res.bounds,
                          cmd.flag("gantt").has_value());
  return 0;
}

int cmd_compare(const CommandLine& cmd, std::ostream& out,
                std::istream& in) {
  if (cmd.flag("batch")) {
    // Batched candidates report per-batch wins, not makespans, which this
    // table cannot render.
    throw std::invalid_argument(
        "compare does not take --batch; use `dts solve --solver=auto-batch:N`");
  }
  const SolveRequest request = make_request(cmd, in);
  const SolveResult res = solve(request, "auto");
  TextTable table({"heuristic", "family", "makespan", "ratio to OMIM"});
  for (const CandidateOutcome& o : res.outcomes) {
    const auto id = heuristic_from_name(o.name);
    table.add_row({o.name,
                   id ? std::string(name_of(info(*id).category)) : "?",
                   format_seconds(o.makespan),
                   format_fixed(o.makespan / res.bounds.omim, 4)});
  }
  out << "capacity " << format_si_bytes(request.capacity) << " (OMIM "
      << format_seconds(res.bounds.omim) << "):\n"
      << table.to_ascii() << "best: " << res.winner << " at ratio "
      << format_fixed(res.ratio_to_optimal(), 4) << "\n";
  return 0;
}

int cmd_recommend(const CommandLine& cmd, std::ostream& out,
                  std::istream& in) {
  // Through make_request so --machine re-costs here too; recommend()
  // never reaches solve()'s time-less guard, so repeat it.
  const SolveRequest request = make_request(cmd, in);
  if (!request.instance.fully_bound()) {
    throw std::invalid_argument(
        "trace '" + cmd.positional.front() +
        "' has time-less (bytes-only) tasks; pass --machine=NAME to cost "
        "them");
  }
  const Recommendation rec = recommend(request.instance, request.capacity);
  out << "capacity regime: " << to_string(rec.regime) << "\n"
      << "recommended heuristic: " << name_of(rec.primary) << "\n"
      << "rationale (Table 6): " << rec.rationale << "\n";
  return 0;
}

int cmd_improve(const CommandLine& cmd, std::ostream& out,
                std::istream& in) {
  const SolveRequest request = make_request(cmd, in);
  const SolveResult res = solve(request, "local-search", make_options(cmd));
  const Time initial =
      res.outcomes.empty() ? res.makespan : res.outcomes.front().makespan;
  const double gain = initial <= 0.0 ? 0.0 : 1.0 - res.makespan / initial;
  out << "seed makespan:     " << format_seconds(initial) << "\n"
      << "improved makespan: " << format_seconds(res.makespan) << "  ("
      << format_fixed(100.0 * gain, 2) << "% better, " << res.detail << ")\n";
  print_schedule_analysis(out, request.instance, res.schedule, res.bounds,
                          cmd.flag("gantt").has_value());
  return 0;
}

int cmd_solvers(std::ostream& out) {
  TextTable table({"solver", "arguments", "channels", "deps", "description"});
  for (const SolverListing& listing : list_solvers()) {
    table.add_row({listing.name, listing.params, listing.channels,
                   listing.deps, listing.description});
  }
  out << table.to_ascii();
  return 0;
}

int cmd_machines(std::ostream& out) {
  TextTable table({"machine", "channels", "description"});
  for (const MachineListing& listing : list_machines()) {
    table.add_row({listing.name, listing.channels, listing.description});
  }
  out << table.to_ascii();
  return 0;
}

int cmd_recost(const CommandLine& cmd, std::ostream& out, std::istream& in) {
  const auto machine_name = cmd.flag("machine");
  if (!machine_name) {
    throw std::invalid_argument("recost needs --machine=NAME (see `dts "
                                "machines`)");
  }
  const Instance inst = load(cmd, in);
  if (!inst.fully_byte_annotated()) {
    throw std::invalid_argument(
        "trace '" + cmd.positional.front() +
        "' is not fully byte-annotated (v3 bytes= column); re-costing "
        "needs the machine-independent transfer sizes");
  }
  const Machine machine = machine_from_name(*machine_name);
  const Instance bound = bind(inst, machine);
  if (const auto out_file = cmd.flag("out")) {
    write_trace_file(*out_file, bound);
  } else {
    write_trace(out, bound);
  }
  return 0;
}

int cmd_serve(const CommandLine& cmd, std::ostream& out, std::ostream& err,
              std::istream& in) {
  ServiceOptions options;
  options.workers = cmd.count_or("workers", 0);
  options.queue_capacity = std::max<std::size_t>(1, cmd.count_or("queue", 64));
  options.cache_capacity = cmd.count_or("cache", 4096);
  options.max_inflight =
      std::max<std::size_t>(1, cmd.count_or("max-inflight", 256));
  if (const auto solver = cmd.flag("solver")) options.default_solver = *solver;

  SolverService service(options);
  std::optional<SocketServer> socket;
  if (const auto path = cmd.flag("socket")) {
    socket.emplace(service, *path);
    socket->start();
    err << "listening on " << *path << "\n";
  }

  // The stdin pump doubles as the lifetime control: EOF or a quit frame
  // ends the service, which then drains in-flight work gracefully.
  serve_stream(service, in, out);
  if (socket) socket->stop();
  service.drain();

  if (cmd.flag("stats")) {
    const ServiceCounters c = service.counters();
    out << "requests " << c.received << "\n"
        << "ok " << c.ok << "\n"
        << "shed " << c.shed << "\n"
        << "draining " << c.draining << "\n"
        << "errors " << c.errors << "\n"
        << "hits " << c.cache.hits << "\n"
        << "misses " << c.cache.misses << "\n"
        << "coalesced " << c.cache.coalesced << "\n"
        << "inserts " << c.cache.inserts << "\n"
        << "evictions " << c.cache.evictions << "\n"
        << "cache-size " << c.cache_size << "\n";
  }
  return 0;
}

int cmd_calibrate(const CommandLine& cmd, std::ostream& out,
                  std::istream& in) {
  if (cmd.positional.empty()) {
    throw std::invalid_argument(
        "calibrate needs a sample file of '<bytes> <seconds>' lines");
  }
  const std::string& file = cmd.positional.front();
  std::ifstream file_stream;
  if (file != "-") {
    // ifstream::open succeeds on a directory on Linux and only the reads
    // fail, which would surface as a baffling "need at least two
    // samples" — check explicitly.
    if (std::filesystem::is_directory(file)) {
      throw std::runtime_error("calibrate: " + file + " is a directory");
    }
    file_stream.open(file);
    if (!file_stream) {
      throw std::runtime_error("calibrate: cannot open " + file);
    }
  }
  std::istream& samples_in = file == "-" ? in : file_stream;

  std::vector<TransferSample> samples;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(samples_in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    TransferSample s;
    std::string trailing;
    if (!(fields >> s.bytes >> s.seconds) || fields >> trailing) {
      throw std::invalid_argument("sample line " + std::to_string(line_no) +
                                  ": expected '<bytes> <seconds>'");
    }
    samples.push_back(s);
  }

  TextTable table({"quantity", "value"});
  table.add_row({"samples", std::to_string(samples.size())});
  if (const auto split = cmd.flag("split")) {
    const double split_bytes = parse_double_flag("split", *split);
    const PiecewiseTransferModel model =
        calibrate_piecewise(samples, split_bytes);
    table.add_row({"model", model.describe()});
    out << table.to_ascii();
    return 0;
  }
  const CalibratedFit fit = calibrate(samples);
  table.add_row({"latency", format_seconds(fit.latency)});
  table.add_row({"bandwidth", format_si_bytes(fit.bandwidth) + "/s"});
  table.add_row({"rmse", format_seconds(fit.rmse)});
  table.add_row({"max relative error",
                 format_fixed(100.0 * fit.max_rel_error, 2) + "%"});
  out << table.to_ascii();
  return 0;
}

}  // namespace

std::optional<std::string> CommandLine::flag(std::string_view key) const {
  const auto it = flags.find(key);
  if (it == flags.end()) return std::nullopt;
  return it->second;
}

double CommandLine::flag_or(std::string_view key, double fallback) const {
  const auto value = flag(key);
  return value ? parse_double_flag(key, *value) : fallback;
}

std::size_t CommandLine::count_or(std::string_view key,
                                  std::size_t fallback) const {
  const auto value = flag(key);
  return value ? parse_count_flag(key, *value) : fallback;
}

CommandLine parse_command_line(int argc, const char* const* argv) {
  CommandLine cmd;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (cmd.command.empty() && arg.rfind("--", 0) != 0) {
      cmd.command = arg;
    } else if (arg.rfind("--", 0) == 0) {
      const std::string body = arg.substr(2);
      if (body.empty()) throw std::invalid_argument("stray '--'");
      const std::size_t eq = body.find('=');
      if (eq == std::string::npos) {
        cmd.flags[body] = "true";
      } else if (eq == 0) {
        throw std::invalid_argument("malformed flag '" + arg + "'");
      } else {
        cmd.flags[body.substr(0, eq)] = body.substr(eq + 1);
      }
    } else {
      cmd.positional.push_back(arg);
    }
  }
  return cmd;
}

int run_cli(int argc, const char* const* argv, std::ostream& out,
            std::ostream& err) {
  return run_cli(argc, argv, out, err, std::cin);
}

int run_cli(int argc, const char* const* argv, std::ostream& out,
            std::ostream& err, std::istream& in) {
  try {
    const CommandLine cmd = parse_command_line(argc, argv);
    if (cmd.command.empty() || cmd.command == "help") {
      if (cmd.flag("list-solvers")) return cmd_solvers(out);
      if (cmd.flag("list-machines")) return cmd_machines(out);
      out << kUsage;
      return cmd.command.empty() ? 2 : 0;
    }
    if (cmd.command == "generate") return cmd_generate(cmd, out);
    if (cmd.command == "info") return cmd_info(cmd, out, in);
    if (cmd.command == "solve") return cmd_solve(cmd, out, in);
    if (cmd.command == "solve-batch") return cmd_solve_batch(cmd, out, in);
    if (cmd.command == "schedule") return cmd_schedule(cmd, out, in);
    if (cmd.command == "compare") return cmd_compare(cmd, out, in);
    if (cmd.command == "recommend") return cmd_recommend(cmd, out, in);
    if (cmd.command == "improve") return cmd_improve(cmd, out, in);
    if (cmd.command == "recost") return cmd_recost(cmd, out, in);
    if (cmd.command == "calibrate") return cmd_calibrate(cmd, out, in);
    if (cmd.command == "serve") return cmd_serve(cmd, out, err, in);
    if (cmd.command == "machines") return cmd_machines(out);
    if (cmd.command == "solvers") return cmd_solvers(out);
    err << "unknown command '" << cmd.command << "'\n" << kUsage;
    return 2;
  } catch (const std::exception& e) {
    err << "error: " << e.what() << "\n";
    return 1;
  }
}

}  // namespace dts::cli
