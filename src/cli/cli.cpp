#include "cli/cli.hpp"

#include <ostream>
#include <stdexcept>

#include "core/auto_scheduler.hpp"
#include "core/bounds.hpp"
#include "core/recommend.hpp"
#include "core/registry.hpp"
#include "exact/lower_bounds.hpp"
#include "heuristics/local_search.hpp"
#include "report/gantt.hpp"
#include "report/schedule_stats.hpp"
#include "report/table.hpp"
#include "trace/generators.hpp"
#include "trace/trace_io.hpp"
#include "trace/workload_stats.hpp"

namespace dts::cli {

namespace {

constexpr std::string_view kUsage =
    "usage: dts <command> [args]\n"
    "commands:\n"
    "  generate  --kernel=HF|CCSD [--seed=N] [--min-tasks=N] [--max-tasks=N]\n"
    "            --out=FILE          synthesize a process trace\n"
    "  info      FILE                bounds and workload characteristics\n"
    "  schedule  FILE --heuristic=NAME (--capacity=B | --capacity-factor=F)\n"
    "            [--gantt]           run one heuristic, print the analysis\n"
    "  compare   FILE (--capacity=B | --capacity-factor=F)\n"
    "                                all 14 heuristics side by side\n"
    "  recommend FILE (--capacity=B | --capacity-factor=F)\n"
    "                                the Table-6 recommendation\n"
    "  improve   FILE (--capacity=B | --capacity-factor=F) [--iterations=N]\n"
    "                                local search on top of the best heuristic\n";

/// Resolves the capacity flags against the trace. Throws on bad input.
Mem resolve_capacity(const CommandLine& cmd, const Instance& inst) {
  const auto absolute = cmd.flag("capacity");
  const auto factor = cmd.flag("capacity-factor");
  if (absolute && factor) {
    throw std::invalid_argument("give either --capacity or --capacity-factor");
  }
  if (absolute) return std::stod(*absolute);
  const double f = factor ? std::stod(*factor) : 1.5;
  return inst.min_capacity() * f;
}

Instance load(const CommandLine& cmd) {
  if (cmd.positional.empty()) {
    throw std::invalid_argument("missing trace file argument");
  }
  return read_trace_file(cmd.positional.front());
}

int cmd_generate(const CommandLine& cmd, std::ostream& out) {
  const auto kernel_name = cmd.flag("kernel").value_or("HF");
  const auto out_file = cmd.flag("out");
  if (!out_file) throw std::invalid_argument("generate needs --out=FILE");
  ChemistryKernel kernel;
  if (kernel_name == "HF") {
    kernel = ChemistryKernel::kHartreeFock;
  } else if (kernel_name == "CCSD") {
    kernel = ChemistryKernel::kCoupledClusterSD;
  } else {
    throw std::invalid_argument("unknown kernel '" + kernel_name +
                                "' (use HF or CCSD)");
  }
  TraceConfig config;
  config.seed = static_cast<std::uint64_t>(cmd.flag_or("seed", 1));
  config.min_tasks = static_cast<std::size_t>(cmd.flag_or("min-tasks", 300));
  config.max_tasks = static_cast<std::size_t>(cmd.flag_or("max-tasks", 800));
  if (config.min_tasks == 0 || config.min_tasks > config.max_tasks) {
    throw std::invalid_argument("need 0 < min-tasks <= max-tasks");
  }
  const Instance inst = generate_trace(kernel, config);
  write_trace_file(*out_file, inst);
  out << "wrote " << inst.size() << " " << to_string(kernel) << " tasks to "
      << *out_file << " (mc = " << format_si_bytes(inst.min_capacity())
      << ")\n";
  return 0;
}

int cmd_info(const CommandLine& cmd, std::ostream& out) {
  const Instance inst = load(cmd);
  const WorkloadCharacteristics wc = characterize(inst);
  const InstanceStats stats = inst.stats();
  TextTable table({"quantity", "value"});
  table.add_row({"tasks", std::to_string(stats.n_tasks)});
  table.add_row({"sum comm", format_seconds(wc.bounds.sum_comm)});
  table.add_row({"sum comp", format_seconds(wc.bounds.sum_comp)});
  table.add_row({"OMIM lower bound", format_seconds(wc.bounds.omim_lower)});
  table.add_row({"sequential upper bound",
                 format_seconds(wc.bounds.sequential_upper)});
  table.add_row({"overlap headroom",
                 format_fixed(100.0 * wc.overlap_potential(), 1) + "%"});
  table.add_row({"minimum capacity (mc)", format_si_bytes(stats.max_mem)});
  table.add_row({"total memory footprint", format_si_bytes(stats.total_mem)});
  table.add_row({"compute-intensive tasks",
                 format_fixed(100.0 * stats.compute_intensive_fraction(), 1) +
                     "%"});
  out << table.to_ascii();
  return 0;
}

void print_schedule_analysis(std::ostream& out, const Instance& inst,
                             const Schedule& sched, Mem capacity,
                             bool gantt) {
  const ScheduleBreakdown breakdown = analyze_schedule(inst, sched);
  const CapacityAwareBounds lb = capacity_aware_bounds(inst, capacity);
  TextTable table({"quantity", "value"});
  table.add_row({"makespan", format_seconds(breakdown.makespan)});
  table.add_row({"ratio to OMIM",
                 format_fixed(breakdown.makespan / lb.omim, 4)});
  table.add_row({"ratio to capacity-aware bound",
                 format_fixed(breakdown.makespan / lb.combined, 4)});
  table.add_row({"link utilization",
                 format_fixed(100.0 * breakdown.link_utilization(), 1) + "%"});
  table.add_row({"processor utilization",
                 format_fixed(100.0 * breakdown.proc_utilization(), 1) + "%"});
  table.add_row({"comm-comp overlap",
                 format_fixed(100.0 * breakdown.overlap, 1) + "%"});
  out << table.to_ascii();
  if (gantt) out << render_gantt(inst, sched, {.width = 72});
}

int cmd_schedule(const CommandLine& cmd, std::ostream& out) {
  const Instance inst = load(cmd);
  const Mem capacity = resolve_capacity(cmd, inst);
  const auto name = cmd.flag("heuristic").value_or("OOSIM");
  const auto id = heuristic_from_name(name);
  if (!id) {
    throw std::invalid_argument("unknown heuristic '" + name +
                                "' (see `dts compare` for the list)");
  }
  const Schedule sched = run_heuristic(*id, inst, capacity);
  out << name << " at capacity " << format_si_bytes(capacity) << ":\n";
  print_schedule_analysis(out, inst, sched, capacity,
                          cmd.flag("gantt").has_value());
  return 0;
}

int cmd_compare(const CommandLine& cmd, std::ostream& out) {
  const Instance inst = load(cmd);
  const Mem capacity = resolve_capacity(cmd, inst);
  const AutoScheduleResult res = auto_schedule(inst, capacity);
  TextTable table({"heuristic", "family", "makespan", "ratio to OMIM"});
  for (const HeuristicOutcome& o : res.outcomes) {
    table.add_row({std::string(name_of(o.id)),
                   std::string(name_of(info(o.id).category)),
                   format_seconds(o.makespan),
                   format_fixed(o.makespan / res.omim, 4)});
  }
  out << "capacity " << format_si_bytes(capacity) << " (OMIM "
      << format_seconds(res.omim) << "):\n"
      << table.to_ascii() << "best: " << name_of(res.best) << " at ratio "
      << format_fixed(res.ratio_to_optimal(), 4) << "\n";
  return 0;
}

int cmd_recommend(const CommandLine& cmd, std::ostream& out) {
  const Instance inst = load(cmd);
  const Mem capacity = resolve_capacity(cmd, inst);
  const Recommendation rec = recommend(inst, capacity);
  out << "capacity regime: " << to_string(rec.regime) << "\n"
      << "recommended heuristic: " << name_of(rec.primary) << "\n"
      << "rationale (Table 6): " << rec.rationale << "\n";
  return 0;
}

int cmd_improve(const CommandLine& cmd, std::ostream& out) {
  const Instance inst = load(cmd);
  const Mem capacity = resolve_capacity(cmd, inst);
  LocalSearchOptions options;
  options.max_iterations =
      static_cast<std::size_t>(cmd.flag_or("iterations", 20000));
  options.seed = static_cast<std::uint64_t>(cmd.flag_or("seed", 1));
  const LocalSearchResult res = schedule_local_search(inst, capacity, options);
  out << "seed makespan:     " << format_seconds(res.initial_makespan) << "\n"
      << "improved makespan: " << format_seconds(res.makespan) << "  ("
      << format_fixed(100.0 * res.improvement(), 2) << "% better, "
      << res.improvements << " accepted moves over " << res.iterations
      << " candidates)\n";
  print_schedule_analysis(out, inst, res.schedule, capacity,
                          cmd.flag("gantt").has_value());
  return 0;
}

}  // namespace

std::optional<std::string> CommandLine::flag(std::string_view key) const {
  const auto it = flags.find(key);
  if (it == flags.end()) return std::nullopt;
  return it->second;
}

double CommandLine::flag_or(std::string_view key, double fallback) const {
  const auto value = flag(key);
  return value ? std::stod(*value) : fallback;
}

CommandLine parse_command_line(int argc, const char* const* argv) {
  CommandLine cmd;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (cmd.command.empty() && arg.rfind("--", 0) != 0) {
      cmd.command = arg;
    } else if (arg.rfind("--", 0) == 0) {
      const std::string body = arg.substr(2);
      if (body.empty()) throw std::invalid_argument("stray '--'");
      const std::size_t eq = body.find('=');
      if (eq == std::string::npos) {
        cmd.flags[body] = "true";
      } else if (eq == 0) {
        throw std::invalid_argument("malformed flag '" + arg + "'");
      } else {
        cmd.flags[body.substr(0, eq)] = body.substr(eq + 1);
      }
    } else {
      cmd.positional.push_back(arg);
    }
  }
  return cmd;
}

int run_cli(int argc, const char* const* argv, std::ostream& out,
            std::ostream& err) {
  try {
    const CommandLine cmd = parse_command_line(argc, argv);
    if (cmd.command.empty() || cmd.command == "help") {
      out << kUsage;
      return cmd.command.empty() ? 2 : 0;
    }
    if (cmd.command == "generate") return cmd_generate(cmd, out);
    if (cmd.command == "info") return cmd_info(cmd, out);
    if (cmd.command == "schedule") return cmd_schedule(cmd, out);
    if (cmd.command == "compare") return cmd_compare(cmd, out);
    if (cmd.command == "recommend") return cmd_recommend(cmd, out);
    if (cmd.command == "improve") return cmd_improve(cmd, out);
    err << "unknown command '" << cmd.command << "'\n" << kUsage;
    return 2;
  } catch (const std::exception& e) {
    err << "error: " << e.what() << "\n";
    return 1;
  }
}

}  // namespace dts::cli
