#pragma once

/// \file cli.hpp
/// The `dts` command-line tool: schedule trace files with the paper's
/// heuristics without writing C++. Logic lives here (streams injected) so
/// the test suite can drive every command; tools/dts_cli.cpp is a thin
/// main().
///
///   dts generate --kernel=HF --seed=7 --out=hf.trace
///   dts info hf.trace
///   dts solve hf.trace --solver=auto --capacity-factor=1.5
///   dts solve hf.trace --solver=auto-batch:16 --capacity-factor=1.25
///   dts schedule hf.trace --heuristic=OOLCMR --capacity-factor=1.5 --gantt
///   dts compare hf.trace --capacity-factor=1.25
///   dts recommend hf.trace --capacity-factor=1.1
///   dts improve hf.trace --capacity-factor=1.5 --iterations=20000
///   dts solvers                (also: dts --list-solvers)
///   dts machines               (also: dts --list-machines)
///   dts recost hf.trace --machine=nvlink | dts solve - --capacity-factor=1.5
///   dts calibrate samples.txt
///
/// Every scheduling command runs through the unified dts::solve() registry
/// (core/solver.hpp). Capacities are given either absolutely
/// (--capacity=BYTES) or relative to the trace's minimum feasible capacity
/// (--capacity-factor=F). --machine=NAME resolves in the MachineRegistry
/// (model/machine.hpp) and re-costs byte-annotated (v3) traces for that
/// hardware before solving. A trace argument of `-` reads from stdin, so
/// recost pipes into solve.

#include <iosfwd>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace dts::cli {

/// Parsed command line: a command word, positional arguments and
/// --key=value flags (--flag alone maps to "true").
struct CommandLine {
  std::string command;
  std::vector<std::string> positional;
  std::map<std::string, std::string, std::less<>> flags;

  [[nodiscard]] std::optional<std::string> flag(std::string_view key) const;

  /// Numeric flag with a fallback. Unlike a silent std::stod, a present but
  /// malformed value ("--capacity-factor=abc", "--seed=1.5x") throws
  /// std::invalid_argument naming the flag.
  [[nodiscard]] double flag_or(std::string_view key, double fallback) const;

  /// Non-negative integer flag with a fallback; rejects fractions,
  /// negatives and trailing garbage with a clear error.
  [[nodiscard]] std::size_t count_or(std::string_view key,
                                     std::size_t fallback) const;
};

/// Parses argv (past the program name). Throws std::invalid_argument on a
/// malformed flag.
[[nodiscard]] CommandLine parse_command_line(int argc, const char* const* argv);

/// Runs one command; returns the process exit code. Writes results to
/// `out` and problems to `err` (never throws for user errors). Trace
/// arguments of `-` read from std::cin; the second overload injects the
/// input stream instead (tests drive piped workflows through it).
int run_cli(int argc, const char* const* argv, std::ostream& out,
            std::ostream& err);
int run_cli(int argc, const char* const* argv, std::ostream& out,
            std::ostream& err, std::istream& in);

}  // namespace dts::cli
