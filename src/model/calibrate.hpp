#pragma once

/// \file calibrate.hpp
/// Model calibration from measured transfers, the paper's §3 methodology:
/// time a set of transfers of known sizes, then least-squares fit the
/// bytes -> seconds curve. calibrate() recovers the affine
/// latency+bandwidth pair; calibrate_piecewise() fits one affine branch
/// per message-size regime for measured curves with a protocol switch
/// (eager vs. rendezvous).

#include <span>
#include <vector>

#include "model/transfer_model.hpp"

namespace dts {

/// One timed transfer: `bytes` moved in `seconds`.
struct TransferSample {
  double bytes = 0.0;
  Time seconds = 0.0;
};

/// An affine fit plus its quality metrics.
struct CalibratedFit {
  double latency = 0.0;    ///< fitted intercept (s), clamped at 0
  double bandwidth = 0.0;  ///< fitted 1/slope (bytes/s)
  double rmse = 0.0;       ///< root-mean-square residual (s)
  double max_rel_error = 0.0;  ///< worst |predicted-measured|/measured

  [[nodiscard]] AffineTransferModel model() const {
    return AffineTransferModel(latency, bandwidth);
  }
};

/// Ordinary least squares of seconds on bytes: latency is the intercept,
/// bandwidth the reciprocal slope — exactly the paper's fit. Throws
/// std::invalid_argument for fewer than two distinct sizes, non-finite or
/// negative samples, or a fit with non-positive slope (times must grow
/// with size). A slightly negative intercept (measurement noise) is
/// clamped to zero.
[[nodiscard]] CalibratedFit calibrate(std::span<const TransferSample> samples);

/// Two-regime fit: samples below `split_bytes` calibrate the
/// small-message branch, the rest the large-message branch, stitched into
/// a PiecewiseTransferModel with the threshold at `split_bytes`. Each
/// side needs two distinct sizes.
[[nodiscard]] PiecewiseTransferModel calibrate_piecewise(
    std::span<const TransferSample> samples, double split_bytes);

/// Synthesizes calibration samples by timing `sizes` through a model —
/// the test-bench counterpart of measuring a real link (round-trip:
/// calibrate(measure_samples(m, sizes)) recovers m's parameters).
[[nodiscard]] std::vector<TransferSample> measure_samples(
    const TransferModel& model, std::span<const double> sizes);

}  // namespace dts
