#include "model/machine.hpp"

#include <mutex>
#include <sstream>
#include <stdexcept>

namespace dts {

namespace detail {
// Defined in trace/machine.cpp, next to the MachineModel constants the
// presets share (one source of truth for the hardware numbers).
// Referencing it from here pulls that translation unit out of a static
// library even when a program only ever names machines by string.
void register_builtin_machines(MachineRegistry& registry);
}  // namespace detail

MachineChannel affine_channel(std::string name, double latency,
                              double bandwidth) {
  return MachineChannel{
      std::move(name),
      std::make_shared<const AffineTransferModel>(latency, bandwidth)};
}

Machine::Machine(std::string name, std::string description,
                 std::vector<MachineChannel> channels)
    : name_(std::move(name)),
      description_(std::move(description)),
      channels_(std::move(channels)) {
  if (channels_.empty()) {
    throw std::invalid_argument("Machine '" + name_ +
                                "': at least one channel required");
  }
  for (const MachineChannel& ch : channels_) {
    if (!ch.model) {
      throw std::invalid_argument("Machine '" + name_ + "': channel '" +
                                  ch.name + "' has no transfer model");
    }
  }
}

ChannelSet Machine::channel_set() const {
  std::vector<ChannelSpec> specs;
  specs.reserve(channels_.size());
  for (const MachineChannel& ch : channels_) specs.push_back(ch.spec());
  return ChannelSet(std::move(specs));
}

Instance bind(const Instance& inst, const Machine& machine) {
  std::vector<Task> tasks(inst.tasks());
  for (Task& t : tasks) {
    if (t.channel >= machine.num_channels()) {
      throw std::invalid_argument(
          "bind: task '" + (t.name.empty() ? "T" + std::to_string(t.id)
                                           : t.name) +
          "' runs on channel " + std::to_string(t.channel) + " but machine '" +
          machine.name() + "' has only " +
          std::to_string(machine.num_channels()) + " channel(s)");
    }
    if (t.has_comm_bytes()) {
      t.comm = machine.channel(t.channel).transfer_time(t.comm_bytes);
    } else if (!t.time_bound()) {
      throw std::invalid_argument(
          "bind: task '" + (t.name.empty() ? "T" + std::to_string(t.id)
                                           : t.name) +
          "' has neither a transfer time nor a byte annotation");
    }
  }
  return Instance(std::move(tasks));
}

namespace {

std::mutex& machine_registry_mutex() {
  static std::mutex mutex;
  return mutex;
}

}  // namespace

MachineRegistry& MachineRegistry::global() {
  static MachineRegistry registry;
  static std::once_flag builtin_once;
  std::call_once(builtin_once,
                 [] { detail::register_builtin_machines(registry); });
  return registry;
}

void MachineRegistry::add(std::string key, MachineChannels channels,
                          std::string description, Factory factory) {
  if (key.empty()) throw std::logic_error("machine key must not be empty");
  if (channels.labels.empty()) {
    throw std::logic_error("machine '" + key +
                           "' must declare its channels (e.g. \"link\", "
                           "\"H2D+D2H\")");
  }
  const std::lock_guard<std::mutex> lock(machine_registry_mutex());
  for (const Entry& entry : entries_) {
    if (entry.key == key) {
      throw std::logic_error("machine '" + key + "' registered twice");
    }
  }
  entries_.push_back(Entry{std::move(key), std::move(channels.labels),
                           std::move(description), std::move(factory)});
}

Machine MachineRegistry::make(std::string_view name) const {
  Factory factory;
  std::string declared;
  {
    const std::lock_guard<std::mutex> lock(machine_registry_mutex());
    for (const Entry& entry : entries_) {
      if (entry.key == name) {
        factory = entry.factory;
        declared = entry.channels;
        break;
      }
    }
  }
  if (!factory) {
    std::ostringstream message;
    message << "unknown machine '" << name << "'; available:";
    for (const std::string& key : keys()) message << " " << key;
    throw std::invalid_argument(message.str());
  }
  Machine machine = factory();
  // The declaration the listings print must be the machine the factory
  // actually builds — catch drift at the first construction, loudly.
  const std::string built = MachineChannels::of(machine).labels;
  if (built != declared) {
    throw std::logic_error("machine '" + std::string(name) +
                           "': registration declares channels '" + declared +
                           "' but the factory built '" + built + "'");
  }
  return machine;
}

bool MachineRegistry::contains(std::string_view key) const {
  const std::lock_guard<std::mutex> lock(machine_registry_mutex());
  for (const Entry& entry : entries_) {
    if (entry.key == key) return true;
  }
  return false;
}

std::vector<MachineListing> MachineRegistry::listings() const {
  // The channels column is the registration's declaration: listing the
  // registry never instantiates a factory (make() verifies the
  // declaration against the built machine, so the column cannot drift).
  const std::lock_guard<std::mutex> lock(machine_registry_mutex());
  std::vector<MachineListing> rows;
  rows.reserve(entries_.size());
  for (const Entry& entry : entries_) {
    rows.push_back(MachineListing{entry.key, entry.channels,
                                  entry.description});
  }
  return rows;
}

std::vector<std::string> MachineRegistry::keys() const {
  const std::lock_guard<std::mutex> lock(machine_registry_mutex());
  std::vector<std::string> keys;
  keys.reserve(entries_.size());
  for (const Entry& entry : entries_) keys.push_back(entry.key);
  return keys;
}

Machine machine_from_name(std::string_view name) {
  return MachineRegistry::global().make(name);
}

std::vector<MachineListing> list_machines() {
  return MachineRegistry::global().listings();
}

}  // namespace dts
