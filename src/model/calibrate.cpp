#include "model/calibrate.hpp"

#include <cmath>
#include <stdexcept>

namespace dts {

CalibratedFit calibrate(std::span<const TransferSample> samples) {
  if (samples.size() < 2) {
    throw std::invalid_argument("calibrate: need at least two samples");
  }
  // OLS on (x = bytes, y = seconds). Center on the means for numerical
  // stability — byte counts span many orders of magnitude.
  double mean_x = 0.0, mean_y = 0.0;
  for (const TransferSample& s : samples) {
    if (!std::isfinite(s.bytes) || s.bytes < 0.0 || !std::isfinite(s.seconds) ||
        s.seconds < 0.0) {
      throw std::invalid_argument(
          "calibrate: samples must be finite and non-negative");
    }
    mean_x += s.bytes;
    mean_y += s.seconds;
  }
  const double n = static_cast<double>(samples.size());
  mean_x /= n;
  mean_y /= n;

  double sxx = 0.0, sxy = 0.0;
  for (const TransferSample& s : samples) {
    const double dx = s.bytes - mean_x;
    sxx += dx * dx;
    sxy += dx * (s.seconds - mean_y);
  }
  if (!(sxx > 0.0)) {
    throw std::invalid_argument(
        "calibrate: need samples at two distinct sizes");
  }
  const double slope = sxy / sxx;  // seconds per byte
  if (!(slope > 0.0)) {
    throw std::invalid_argument(
        "calibrate: transfer times do not grow with size (non-positive "
        "fitted slope)");
  }
  CalibratedFit fit;
  fit.bandwidth = 1.0 / slope;
  // Noise can pull the intercept slightly negative; a negative startup
  // cost is physically meaningless, so clamp.
  fit.latency = std::max(0.0, mean_y - slope * mean_x);

  double sq = 0.0;
  for (const TransferSample& s : samples) {
    const double predicted =
        affine_transfer_time(fit.latency, fit.bandwidth, s.bytes);
    const double err = predicted - s.seconds;
    sq += err * err;
    if (s.seconds > 0.0) {
      fit.max_rel_error =
          std::max(fit.max_rel_error, std::abs(err) / s.seconds);
    }
  }
  fit.rmse = std::sqrt(sq / n);
  return fit;
}

PiecewiseTransferModel calibrate_piecewise(
    std::span<const TransferSample> samples, double split_bytes) {
  if (!(split_bytes > 0.0) || !std::isfinite(split_bytes)) {
    throw std::invalid_argument(
        "calibrate_piecewise: split_bytes must be positive and finite");
  }
  std::vector<TransferSample> small, large;
  for (const TransferSample& s : samples) {
    (s.bytes < split_bytes ? small : large).push_back(s);
  }
  if (small.size() < 2 || large.size() < 2) {
    throw std::invalid_argument(
        "calibrate_piecewise: the " +
        std::string(small.size() < 2 ? "small" : "large") +
        "-message regime has fewer than two samples at this split");
  }
  const CalibratedFit lo = calibrate(small);
  const CalibratedFit hi = calibrate(large);
  return PiecewiseTransferModel({
      {0.0, lo.latency, lo.bandwidth},
      {split_bytes, hi.latency, hi.bandwidth},
  });
}

std::vector<TransferSample> measure_samples(const TransferModel& model,
                                            std::span<const double> sizes) {
  std::vector<TransferSample> samples;
  samples.reserve(sizes.size());
  for (double bytes : sizes) {
    samples.push_back(TransferSample{bytes, model.transfer_time(bytes)});
  }
  return samples;
}

}  // namespace dts
