#pragma once

/// \file transfer_model.hpp
/// First-class transfer performance models: bytes -> seconds, the paper's
/// §3 contribution. A TransferModel predicts the occupancy time of one
/// copy engine for a message of a given size. The affine form
/// (latency + bytes / bandwidth) is the paper's calibrated fit; the
/// piecewise-linear form captures its measured small/large-message
/// regimes (eager vs. rendezvous protocols switch the curve's slope and
/// intercept at a protocol threshold).
///
/// affine_transfer_time() below is the ONE implementation of the affine
/// map in the library: ChannelSpec::transfer_time (core/channels.hpp),
/// MachineModel (trace/machine.hpp) and AffineTransferModel all delegate
/// to it, so the trace generators, the costing layer and bind() can never
/// drift apart — the bit-for-bit parity the golden tests pin depends on
/// every caller evaluating the exact same expression.

#include <memory>
#include <string>
#include <vector>

#include "core/types.hpp"

namespace dts {

/// The affine bytes -> seconds map of the paper (§3): a per-transfer
/// startup latency plus the size over the asymptotic bandwidth. Every
/// affine costing path in the library funnels through this expression.
[[nodiscard]] constexpr Time affine_transfer_time(double latency,
                                                  double bandwidth,
                                                  double bytes) noexcept {
  return latency + bytes / bandwidth;
}

/// A calibratable performance model for one copy engine. Implementations
/// are immutable and therefore safe to share across threads.
class TransferModel {
 public:
  virtual ~TransferModel() = default;

  /// Predicted time to move `bytes` (>= 0) across the engine.
  [[nodiscard]] virtual Time transfer_time(double bytes) const noexcept = 0;

  /// One-line human-readable description of the fitted parameters,
  /// e.g. "affine(latency=2e-06s, bandwidth=1.2e+09B/s)".
  [[nodiscard]] virtual std::string describe() const = 0;

  /// Effective asymptotic bandwidth (bytes/s) — the slope of the
  /// large-message regime. Reports and ChannelSpec summaries use it.
  [[nodiscard]] virtual double asymptotic_bandwidth() const noexcept = 0;

  /// Zero-byte intercept (s) — the small-message startup cost.
  [[nodiscard]] virtual double zero_byte_latency() const noexcept = 0;

  [[nodiscard]] virtual std::unique_ptr<TransferModel> clone() const = 0;
};

/// The paper's calibrated model: transfer_time = latency + bytes/bandwidth.
class AffineTransferModel final : public TransferModel {
 public:
  /// Throws std::invalid_argument for non-finite or negative latency and
  /// non-finite or non-positive bandwidth.
  AffineTransferModel(double latency, double bandwidth);

  [[nodiscard]] Time transfer_time(double bytes) const noexcept override {
    return affine_transfer_time(latency_, bandwidth_, bytes);
  }
  [[nodiscard]] std::string describe() const override;
  [[nodiscard]] double asymptotic_bandwidth() const noexcept override {
    return bandwidth_;
  }
  [[nodiscard]] double zero_byte_latency() const noexcept override {
    return latency_;
  }
  [[nodiscard]] std::unique_ptr<TransferModel> clone() const override {
    return std::make_unique<AffineTransferModel>(latency_, bandwidth_);
  }

  [[nodiscard]] double latency() const noexcept { return latency_; }
  [[nodiscard]] double bandwidth() const noexcept { return bandwidth_; }

 private:
  double latency_;
  double bandwidth_;
};

/// Piecewise-linear model for measured curves with distinct message-size
/// regimes (the paper's plots show the small-message/eager and
/// large-message/rendezvous protocols as different affine branches).
/// Each segment is affine from its threshold upward; the active segment
/// is the last one whose min_bytes <= bytes.
class PiecewiseTransferModel final : public TransferModel {
 public:
  struct Segment {
    double min_bytes = 0.0;  ///< first size (inclusive) this regime covers
    double latency = 0.0;
    double bandwidth = 1.0;
  };

  /// Throws std::invalid_argument when segments are empty, not strictly
  /// increasing in min_bytes, the first does not start at 0, or any
  /// segment has invalid latency/bandwidth.
  explicit PiecewiseTransferModel(std::vector<Segment> segments);

  [[nodiscard]] Time transfer_time(double bytes) const noexcept override;
  [[nodiscard]] std::string describe() const override;
  [[nodiscard]] double asymptotic_bandwidth() const noexcept override {
    return segments_.back().bandwidth;
  }
  [[nodiscard]] double zero_byte_latency() const noexcept override {
    return segments_.front().latency;
  }
  [[nodiscard]] std::unique_ptr<TransferModel> clone() const override {
    return std::make_unique<PiecewiseTransferModel>(segments_);
  }

  [[nodiscard]] const std::vector<Segment>& segments() const noexcept {
    return segments_;
  }

 private:
  std::vector<Segment> segments_;
};

}  // namespace dts
