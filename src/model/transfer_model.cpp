#include "model/transfer_model.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>

namespace dts {

namespace {

void require_model_params(double latency, double bandwidth,
                          const char* what) {
  if (!std::isfinite(latency) || latency < 0.0) {
    throw std::invalid_argument(std::string(what) +
                                ": latency must be finite and >= 0");
  }
  if (!std::isfinite(bandwidth) || !(bandwidth > 0.0)) {
    throw std::invalid_argument(std::string(what) +
                                ": bandwidth must be finite and > 0");
  }
}

}  // namespace

AffineTransferModel::AffineTransferModel(double latency, double bandwidth)
    : latency_(latency), bandwidth_(bandwidth) {
  require_model_params(latency, bandwidth, "AffineTransferModel");
}

std::string AffineTransferModel::describe() const {
  std::ostringstream os;
  os << "affine(latency=" << latency_ << "s, bandwidth=" << bandwidth_
     << "B/s)";
  return os.str();
}

PiecewiseTransferModel::PiecewiseTransferModel(std::vector<Segment> segments)
    : segments_(std::move(segments)) {
  if (segments_.empty()) {
    throw std::invalid_argument(
        "PiecewiseTransferModel: at least one segment required");
  }
  if (segments_.front().min_bytes != 0.0) {
    throw std::invalid_argument(
        "PiecewiseTransferModel: the first segment must start at 0 bytes");
  }
  for (std::size_t i = 0; i < segments_.size(); ++i) {
    require_model_params(segments_[i].latency, segments_[i].bandwidth,
                         "PiecewiseTransferModel segment");
    if (i > 0 && !(segments_[i].min_bytes > segments_[i - 1].min_bytes)) {
      throw std::invalid_argument(
          "PiecewiseTransferModel: segment thresholds must be strictly "
          "increasing");
    }
  }
}

Time PiecewiseTransferModel::transfer_time(double bytes) const noexcept {
  const Segment* active = &segments_.front();
  for (const Segment& s : segments_) {
    if (bytes >= s.min_bytes) active = &s;
  }
  return affine_transfer_time(active->latency, active->bandwidth, bytes);
}

std::string PiecewiseTransferModel::describe() const {
  std::ostringstream os;
  os << "piecewise(";
  for (std::size_t i = 0; i < segments_.size(); ++i) {
    if (i > 0) os << "; ";
    os << ">=" << segments_[i].min_bytes << "B: latency="
       << segments_[i].latency << "s, bandwidth=" << segments_[i].bandwidth
       << "B/s";
  }
  os << ")";
  return os.str();
}

}  // namespace dts
