#pragma once

/// \file machine.hpp
/// Machine descriptors and the string-keyed machine registry: the hardware
/// half of the paper's performance-model methodology, made first class.
///
/// A Machine is a named collection of copy engines, each costed by its own
/// TransferModel. Workloads stay machine independent — tasks carry the
/// *bytes* their transfer moves (Task::comm_bytes) — and bind() produces
/// the machine-specific costed instance by running every byte-annotated
/// task through its channel's model. Re-targeting a workload to different
/// hardware is bind(inst, other_machine); asymmetric-duplex what-if
/// studies are a one-line machine swap.
///
/// Machines register in the MachineRegistry exactly like solvers do in the
/// SolverRegistry (core/solver.hpp): a namespace-scope RegisterMachine
/// adds a factory before main(), and the built-in presets ("paper",
/// "summit-node", "duplex-pcie", "nvlink", ...) are registered on first
/// access. SolveRequest::machine resolves names here lazily at solve()
/// time.

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/channels.hpp"
#include "core/instance.hpp"
#include "model/transfer_model.hpp"

namespace dts {

/// One copy engine of a Machine: a report-friendly name plus the
/// performance model that converts bytes into occupancy time. The model
/// pointer is shared because Machine values are freely copied (requests
/// carry them by value) and TransferModels are immutable.
struct MachineChannel {
  std::string name = "link";
  std::shared_ptr<const TransferModel> model;

  [[nodiscard]] Time transfer_time(double bytes) const {
    return model->transfer_time(bytes);
  }

  /// Affine summary (asymptotic bandwidth + zero-byte latency) for the
  /// execution core's ChannelSet, which labels per-channel reporting.
  [[nodiscard]] ChannelSpec spec() const {
    return ChannelSpec{name, model->asymptotic_bandwidth(),
                       model->zero_byte_latency()};
  }
};

/// Convenience builder for the common affine case.
[[nodiscard]] MachineChannel affine_channel(std::string name, double latency,
                                            double bandwidth);

/// A machine: named channels indexed by ChannelId. Channel 0 is the
/// paper's single link (and the H2D engine of a duplex machine);
/// channel 1, when present, is the D2H write-back engine.
class Machine {
 public:
  Machine() = default;

  /// Throws std::invalid_argument for an empty channel list or a channel
  /// without a model.
  Machine(std::string name, std::string description,
          std::vector<MachineChannel> channels);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const std::string& description() const noexcept {
    return description_;
  }
  [[nodiscard]] std::size_t num_channels() const noexcept {
    return channels_.size();
  }
  [[nodiscard]] bool duplex() const noexcept { return channels_.size() > 1; }
  [[nodiscard]] const MachineChannel& channel(ChannelId id) const {
    return channels_.at(id);
  }
  [[nodiscard]] const std::vector<MachineChannel>& channels() const noexcept {
    return channels_;
  }

  /// Time for `bytes` on channel `id`. Throws std::out_of_range for a
  /// channel this machine does not have.
  [[nodiscard]] Time transfer_time(ChannelId id, double bytes) const {
    return channels_.at(id).transfer_time(bytes);
  }

  /// The execution core's view: names + affine summaries per engine.
  [[nodiscard]] ChannelSet channel_set() const;

 private:
  std::string name_;
  std::string description_;
  std::vector<MachineChannel> channels_;
};

/// Produces the machine-costed instance: every byte-annotated task gets
/// comm recomputed from its channel's TransferModel (including previously
/// time-less tasks); tasks without a byte annotation keep their measured
/// comm. Throws std::invalid_argument when a task is time-less AND
/// byte-less (nothing to cost it with), or references a channel the
/// machine does not have.
[[nodiscard]] Instance bind(const Instance& inst, const Machine& machine);

/// One row of MachineRegistry::listings().
struct MachineListing {
  std::string name;         ///< registry key, e.g. "duplex-pcie"
  std::string channels;     ///< e.g. "H2D+D2H"
  std::string description;
};

/// The channel capability a machine registration declares up front: the
/// '+'-joined channel names, in ChannelId order ("link", "H2D+D2H").
/// Listings print the declaration without instantiating any factory, and
/// MachineRegistry::make() verifies the built machine against it — a
/// drifting declaration is a std::logic_error the first time the machine
/// is built, not a silently wrong `dts machines` row. Every registration
/// site states it explicitly (tools/dts_lint.py enforces the presence).
struct MachineChannels {
  std::string labels;

  /// The declaration `machine` actually satisfies.
  [[nodiscard]] static MachineChannels of(const Machine& machine) {
    MachineChannels channels;
    for (const MachineChannel& ch : machine.channels()) {
      if (!channels.labels.empty()) channels.labels += '+';
      channels.labels += ch.name;
    }
    return channels;
  }
};

/// String-keyed machine factory registry, mirroring SolverRegistry.
/// Factories self-register via RegisterMachine; the built-in presets are
/// registered on first access so a static-library link never loses them.
class MachineRegistry {
 public:
  using Factory = std::function<Machine()>;

  /// The process-wide registry.
  [[nodiscard]] static MachineRegistry& global();

  /// Registers a factory under `key` with its declared channel layout.
  /// Throws std::logic_error when the key is already taken or empty.
  /// The declaration is required at every site; there is deliberately no
  /// defaulting overload.
  void add(std::string key, MachineChannels channels, std::string description,
           Factory factory);

  /// Instantiates the machine `name` refers to. Throws
  /// std::invalid_argument for an unknown key — the message lists every
  /// available machine — and std::logic_error when the factory builds a
  /// machine whose channels do not match the registration's declaration.
  [[nodiscard]] Machine make(std::string_view name) const;

  [[nodiscard]] bool contains(std::string_view key) const;

  /// Every registered machine, in registration order.
  [[nodiscard]] std::vector<MachineListing> listings() const;

  /// Registered keys, in registration order (error messages, CLI).
  [[nodiscard]] std::vector<std::string> keys() const;

 private:
  struct Entry {
    std::string key;
    std::string channels;  ///< declared '+'-joined channel names
    std::string description;
    Factory factory;
  };
  std::vector<Entry> entries_;  // small; linear lookup, stable order
};

/// Self-registration helper: a namespace-scope `const RegisterMachine` in
/// any linked translation unit adds the factory before main() runs.
struct RegisterMachine {
  RegisterMachine(std::string key, MachineChannels channels,
                  std::string description, MachineRegistry::Factory factory) {
    MachineRegistry::global().add(std::move(key), std::move(channels),
                                  std::move(description), std::move(factory));
  }
};

/// Resolves a preset name in the global registry.
[[nodiscard]] Machine machine_from_name(std::string_view name);

/// Listings of the global registry (CLI `dts machines`, error messages).
[[nodiscard]] std::vector<MachineListing> list_machines();

}  // namespace dts
