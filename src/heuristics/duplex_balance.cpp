#include "heuristics/duplex_balance.hpp"

#include <algorithm>

#include "core/johnson.hpp"
#include "core/simulate.hpp"

namespace dts {

std::vector<TaskId> duplex_balance_order(const Instance& inst) {
  const std::size_t nch = inst.num_channels();

  // One Johnson sequence per copy engine. johnson_order works on a
  // renumbered sub-instance, so map its local positions back.
  std::vector<std::vector<TaskId>> queues(nch);
  for (ChannelId ch = 0; ch < nch; ++ch) {
    const std::vector<TaskId> ids = inst.tasks_on_channel(ch);
    if (ids.empty()) continue;
    for (const TaskId local : johnson_order(inst.subset(ids))) {
      queues[ch].push_back(ids[local]);
    }
  }

  // Merge: always issue from the engine with the least transfer time
  // committed so far, so both directions advance at comparable pace even
  // when their per-transfer costs are asymmetric.
  std::vector<TaskId> order;
  order.reserve(inst.size());
  std::vector<Time> committed(nch, 0.0);
  std::vector<std::size_t> next(nch, 0);
  while (order.size() < inst.size()) {
    ChannelId pick = kMaxChannels;
    for (ChannelId ch = 0; ch < nch; ++ch) {
      if (next[ch] >= queues[ch].size()) continue;
      if (pick == kMaxChannels || committed[ch] < committed[pick]) pick = ch;
    }
    const TaskId id = queues[pick][next[pick]++];
    committed[pick] += inst[id].comm;
    order.push_back(id);
  }
  return order;
}

Schedule schedule_duplex_balance(const Instance& inst, Mem capacity) {
  std::vector<TaskId> order = duplex_balance_order(inst);
  if (inst.has_dependencies()) order = legalize_order(inst, order);
  return simulate_order(inst, order, capacity);
}

}  // namespace dts
