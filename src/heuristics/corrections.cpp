#include "heuristics/corrections.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/johnson.hpp"

namespace dts {

std::string_view to_corrected_acronym(DynamicCriterion c) noexcept {
  switch (c) {
    case DynamicCriterion::kLargestComm: return "OOLCMR";
    case DynamicCriterion::kSmallestComm: return "OOSCMR";
    case DynamicCriterion::kMaxAcceleration: return "OOMAMR";
  }
  return "?";
}

void execute_corrected(const Instance& inst,
                       std::span<const TaskId> base_order,
                       DynamicCriterion criterion, ExecutionState& state,
                       Schedule& out) {
  const CompiledInstance ci(inst);
  execute_corrected(ci, base_order, criterion, state, out);
}

void execute_corrected(const CompiledInstance& ci,
                       std::span<const TaskId> base_order,
                       DynamicCriterion criterion, ExecutionState& state,
                       Schedule& out) {
  std::vector<TaskId> pending(base_order.begin(), base_order.end());
  std::vector<TaskId> fitting;
  fitting.reserve(pending.size());

  // Timing-relevant fields only; the engine's start() never reads names.
  const auto task_of = [&ci](TaskId id) {
    return Task{.id = id,
                .comm = ci.comm(id),
                .comp = ci.comp(id),
                .mem = ci.mem(id),
                .channel = ci.channel(id),
                .name = {}};
  };

  while (!pending.empty()) {
    const TaskId head = pending.front();
    if (state.fits(ci.mem(head))) {
      // The static plan remains viable: follow it.
      const TaskTimes tt = state.start(task_of(head));
      out.set(head, tt.comm_start, tt.comp_start);
      pending.erase(pending.begin());
      continue;
    }
    // The head is blocked by memory: dynamic correction.
    fitting.clear();
    for (TaskId id : pending) {
      if (state.fits(ci.mem(id))) fitting.push_back(id);
    }
    if (fitting.empty()) {
      if (!state.advance_to_next_release()) {
        throw std::invalid_argument(
            "execute_corrected: a pending task exceeds the memory capacity");
      }
      continue;
    }
    const TaskId chosen = pick_candidate(ci, state, fitting, criterion);
    const TaskTimes tt = state.start(task_of(chosen));
    out.set(chosen, tt.comm_start, tt.comp_start);
    pending.erase(std::find(pending.begin(), pending.end(), chosen));
  }
}

Schedule schedule_corrected_with_order(const Instance& inst,
                                       std::span<const TaskId> base_order,
                                       DynamicCriterion criterion,
                                       Mem capacity) {
  if (base_order.size() != inst.size()) {
    throw std::invalid_argument(
        "schedule_corrected_with_order: base order must cover all tasks");
  }
  ExecutionState state(capacity, inst.num_channels());
  Schedule sched(inst.size());
  execute_corrected(inst, base_order, criterion, state, sched);
  return sched;
}

Schedule schedule_corrected(const Instance& inst, DynamicCriterion criterion,
                            Mem capacity) {
  const std::vector<TaskId> base = johnson_order(inst);
  return schedule_corrected_with_order(inst, base, criterion, capacity);
}

}  // namespace dts
