#include "heuristics/corrections.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/johnson.hpp"

namespace dts {

std::string_view to_corrected_acronym(DynamicCriterion c) noexcept {
  switch (c) {
    case DynamicCriterion::kLargestComm: return "OOLCMR";
    case DynamicCriterion::kSmallestComm: return "OOSCMR";
    case DynamicCriterion::kMaxAcceleration: return "OOMAMR";
  }
  return "?";
}

void execute_corrected(const Instance& inst,
                       std::span<const TaskId> base_order,
                       DynamicCriterion criterion, ExecutionState& state,
                       Schedule& out) {
  const CompiledInstance ci(inst);
  execute_corrected(ci, base_order, criterion, state, out);
}

void execute_corrected(const CompiledInstance& ci,
                       std::span<const TaskId> base_order,
                       DynamicCriterion criterion, ExecutionState& state,
                       Schedule& out) {
  std::vector<TaskId> pending(base_order.begin(), base_order.end());
  std::vector<TaskId> fitting;
  fitting.reserve(pending.size());

  // Timing-relevant fields only; the engine's start() never reads names.
  const auto task_of = [&ci](TaskId id) {
    return Task{.id = id,
                .comm = ci.comm(id),
                .comp = ci.comp(id),
                .mem = ci.mem(id),
                .channel = ci.channel(id),
                .name = {}};
  };

  const bool dag = ci.has_dependencies();
  std::vector<Time> floors;  // aligned with `fitting`, DAG instances only

  while (!pending.empty()) {
    const TaskId head = pending.front();
    Time head_ready = 0.0;
    const bool head_runnable =
        !dag || detail::deps_ready(ci, out, head, head_ready);
    if (head_runnable && state.fits(ci.mem(head))) {
      // The static plan remains viable: follow it.
      const TaskTimes tt = state.start(task_of(head), head_ready);
      out.set(head, tt.comm_start, tt.comp_start);
      pending.erase(pending.begin());
      continue;
    }
    // The head is blocked by memory (or, on a DAG, by an unscheduled
    // predecessor): dynamic correction over the runnable fitting tasks.
    fitting.clear();
    floors.clear();
    bool any_ready = !dag;
    for (TaskId id : pending) {
      Time ready = 0.0;
      if (dag) {
        if (!detail::deps_ready(ci, out, id, ready)) continue;
        any_ready = true;
      }
      if (state.fits(ci.mem(id))) {
        fitting.push_back(id);
        if (dag) floors.push_back(ready);
      }
    }
    if (fitting.empty()) {
      if (!any_ready) {
        detail::throw_unready_pending("execute_corrected", ci, out, pending);
      }
      if (!state.advance_to_next_release()) {
        throw std::invalid_argument(
            "execute_corrected: a pending task exceeds the memory capacity");
      }
      continue;
    }
    const TaskId chosen = pick_candidate(ci, state, fitting, criterion, floors);
    const Time floor =
        dag ? floors[static_cast<std::size_t>(
                  std::find(fitting.begin(), fitting.end(), chosen) -
                  fitting.begin())]
            : 0.0;
    const TaskTimes tt = state.start(task_of(chosen), floor);
    out.set(chosen, tt.comm_start, tt.comp_start);
    pending.erase(std::find(pending.begin(), pending.end(), chosen));
  }
}

Schedule schedule_corrected_with_order(const Instance& inst,
                                       std::span<const TaskId> base_order,
                                       DynamicCriterion criterion,
                                       Mem capacity) {
  if (base_order.size() != inst.size()) {
    throw std::invalid_argument(
        "schedule_corrected_with_order: base order must cover all tasks");
  }
  ExecutionState state(capacity, inst.num_channels());
  Schedule sched(inst.size());
  execute_corrected(inst, base_order, criterion, state, sched);
  return sched;
}

Schedule schedule_corrected(const Instance& inst, DynamicCriterion criterion,
                            Mem capacity) {
  std::vector<TaskId> base = johnson_order(inst);
  if (inst.has_dependencies()) base = legalize_order(inst, base);
  return schedule_corrected_with_order(inst, base, criterion, capacity);
}

}  // namespace dts
