#pragma once

/// \file corrections.hpp
/// Static order with dynamic corrections (paper §4.3). A precomputed order
/// (by default the Johnson / OMIM order) is followed verbatim while its
/// next task fits in memory. When the head of the order does not fit, the
/// scheduler falls back to dynamic selection — among the *fitting* pending
/// tasks that induce minimum processor idle, pick per criterion — and
/// removes the selected task from the pending order:
///
///   OOLCMR  divert to the largest-communication fitting task
///   OOSCMR  divert to the smallest-communication fitting task
///   OOMAMR  divert to the highest CP/CM fitting task
///
/// When nothing fits at all, the link idles until the next computation
/// releases memory, after which the head of the order gets priority again.

#include <span>
#include <string_view>
#include <vector>

#include "core/instance.hpp"
#include "core/schedule.hpp"
#include "core/simulate.hpp"
#include "heuristics/dynamic.hpp"

namespace dts {

/// Paper acronym of the corrected heuristic ("OOLCMR", ...).
[[nodiscard]] std::string_view to_corrected_acronym(DynamicCriterion c) noexcept;

/// Runs the corrected policy over `base_order` on an existing engine,
/// writing start times into `out`.
///
/// Convenience delegator: compiles the instance and calls the
/// compiled-first overload below — the one home of the correction loop
/// and its DAG gating (tools/dts_lint.py `executor-one-home`).
void execute_corrected(const Instance& inst,
                       std::span<const TaskId> base_order,
                       DynamicCriterion criterion, ExecutionState& state,
                       Schedule& out);

/// The compiled-first entry point (and the only defining body): fit-scans
/// and correction scoring read the SoA arrays (core/compiled.hpp),
/// dependency gating is implemented here and nowhere else. Identical
/// schedules to the Instance delegator; repeated callers compile once and
/// reuse.
void execute_corrected(const CompiledInstance& ci,
                       std::span<const TaskId> base_order,
                       DynamicCriterion criterion, ExecutionState& state,
                       Schedule& out);

/// Corrected policy on a fresh engine with an explicit base order (the
/// paper's Fig. 6 examples feed a specific OMIM order).
[[nodiscard]] Schedule schedule_corrected_with_order(
    const Instance& inst, std::span<const TaskId> base_order,
    DynamicCriterion criterion, Mem capacity);

/// Corrected policy with the Johnson (OMIM) base order — the paper's
/// OOLCMR / OOSCMR / OOMAMR heuristics.
[[nodiscard]] Schedule schedule_corrected(const Instance& inst,
                                          DynamicCriterion criterion,
                                          Mem capacity);

}  // namespace dts
