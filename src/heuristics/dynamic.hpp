#pragma once

/// \file dynamic.hpp
/// Dynamic selection heuristics (paper §4.2). Whenever the link goes idle,
/// the scheduler examines the tasks that fit in the memory currently
/// available, keeps those that inject the least idle time on the processor,
/// and picks one according to a criterion:
///
///   LCMR  largest communication time
///   SCMR  smallest communication time
///   MAMR  maximum CP/CM ratio ("maximum accelerated")
///
/// If nothing fits, the link stays idle until the next computation finishes
/// and releases memory. Communication and computation keep a common order.

#include <span>
#include <string_view>
#include <vector>

#include "core/compiled.hpp"
#include "core/instance.hpp"
#include "core/schedule.hpp"
#include "core/simulate.hpp"

namespace dts {

enum class DynamicCriterion {
  kLargestComm,      ///< LCMR / OOLCMR
  kSmallestComm,     ///< SCMR / OOSCMR
  kMaxAcceleration,  ///< MAMR / OOMAMR
};

/// Paper acronym of the pure dynamic heuristic ("LCMR", ...).
[[nodiscard]] std::string_view to_acronym(DynamicCriterion c) noexcept;

/// Among `candidates` (ids into `inst`, all assumed to fit in memory at the
/// engine's current instant), returns the id preferred by the paper's rule:
/// minimum induced processor idle first, then the criterion, ties by the
/// earliest position in `candidates`. Returns kInvalidTask when empty.
[[nodiscard]] TaskId pick_candidate(const Instance& inst,
                                    const ExecutionState& state,
                                    std::span<const TaskId> candidates,
                                    DynamicCriterion criterion);

/// Batch-scored variant over the SoA arrays of a compiled instance —
/// identical selection (same induced-idle arithmetic and tie-breaks),
/// without pulling whole `Task` records through the cache per candidate.
[[nodiscard]] TaskId pick_candidate(const CompiledInstance& ci,
                                    const ExecutionState& state,
                                    std::span<const TaskId> candidates,
                                    DynamicCriterion criterion);

/// Schedules every id in `ids` on `state` using dynamic selection, writing
/// start times into `out`. `ids` supplies the tie-breaking priority (its
/// order is the submission order within a batch).
void execute_dynamic(const Instance& inst, std::span<const TaskId> ids,
                     DynamicCriterion criterion, ExecutionState& state,
                     Schedule& out);

/// SoA fast path: the candidate fit-scans and idle scoring read the
/// compiled arrays. Repeated callers (the batch scheduler) compile the
/// instance once and reuse it across batches.
void execute_dynamic(const CompiledInstance& ci, std::span<const TaskId> ids,
                     DynamicCriterion criterion, ExecutionState& state,
                     Schedule& out);

/// Convenience: run on a fresh engine over all tasks.
[[nodiscard]] Schedule schedule_dynamic(const Instance& inst,
                                        DynamicCriterion criterion,
                                        Mem capacity);

}  // namespace dts
