#pragma once

/// \file dynamic.hpp
/// Dynamic selection heuristics (paper §4.2). Whenever the link goes idle,
/// the scheduler examines the tasks that fit in the memory currently
/// available, keeps those that inject the least idle time on the processor,
/// and picks one according to a criterion:
///
///   LCMR  largest communication time
///   SCMR  smallest communication time
///   MAMR  maximum CP/CM ratio ("maximum accelerated")
///
/// If nothing fits, the link stays idle until the next computation finishes
/// and releases memory. Communication and computation keep a common order.

#include <span>
#include <string_view>
#include <vector>

#include "core/compiled.hpp"
#include "core/instance.hpp"
#include "core/schedule.hpp"
#include "core/simulate.hpp"

namespace dts {

enum class DynamicCriterion {
  kLargestComm,      ///< LCMR / OOLCMR
  kSmallestComm,     ///< SCMR / OOSCMR
  kMaxAcceleration,  ///< MAMR / OOMAMR
};

/// Paper acronym of the pure dynamic heuristic ("LCMR", ...).
[[nodiscard]] std::string_view to_acronym(DynamicCriterion c) noexcept;

/// Among `candidates` (ids into `inst`, all assumed to fit in memory at the
/// engine's current instant), returns the id preferred by the paper's rule:
/// minimum induced processor idle first, then the criterion, ties by the
/// earliest position in `candidates`. Returns kInvalidTask when empty.
[[nodiscard]] TaskId pick_candidate(const Instance& inst,
                                    const ExecutionState& state,
                                    std::span<const TaskId> candidates,
                                    DynamicCriterion criterion);

/// Batch-scored variant over the SoA arrays of a compiled instance —
/// identical selection (same induced-idle arithmetic and tie-breaks),
/// without pulling whole `Task` records through the cache per candidate.
/// `ready` (optional, aligned with `candidates`) floors each candidate's
/// hypothetical transfer start at its predecessors' completion instant,
/// so the induced-idle score matches what issuing it would actually do on
/// a DAG instance; empty means no floors (the paper's model).
[[nodiscard]] TaskId pick_candidate(const CompiledInstance& ci,
                                    const ExecutionState& state,
                                    std::span<const TaskId> candidates,
                                    DynamicCriterion criterion,
                                    std::span<const Time> ready = {});

/// Schedules every id in `ids` on `state` using dynamic selection, writing
/// start times into `out`. `ids` supplies the tie-breaking priority (its
/// order is the submission order within a batch). On a DAG instance only
/// tasks whose predecessors have all been scheduled (in `out` — possibly
/// by an earlier batch sharing it) are candidates, and each transfer
/// waits for its predecessors' computations; throws std::invalid_argument
/// when every pending task waits on a predecessor outside `ids` that was
/// never scheduled.
///
/// Convenience delegator: compiles the instance and calls the
/// compiled-first overload below — the *one* home of the scheduling loop
/// and its DAG gating (tools/dts_lint.py `executor-one-home` keeps it
/// that way). Repeated callers (the batch scheduler) compile once and
/// call the compiled overload directly.
void execute_dynamic(const Instance& inst, std::span<const TaskId> ids,
                     DynamicCriterion criterion, ExecutionState& state,
                     Schedule& out);

/// The compiled-first entry point (and the only defining body): candidate
/// fit-scans and idle scoring read the SoA arrays, dependency gating is
/// implemented here and nowhere else.
void execute_dynamic(const CompiledInstance& ci, std::span<const TaskId> ids,
                     DynamicCriterion criterion, ExecutionState& state,
                     Schedule& out);

/// Convenience: run on a fresh engine over all tasks.
[[nodiscard]] Schedule schedule_dynamic(const Instance& inst,
                                        DynamicCriterion criterion,
                                        Mem capacity);

namespace detail {

/// Predecessor readiness of `id` against the starts recorded in `out`:
/// false when a predecessor is unscheduled, otherwise raises `ready` to
/// the latest predecessor computation end. Shared by the dynamic and
/// corrected executors (DAG instances only).
bool deps_ready(const CompiledInstance& ci, const Schedule& out, TaskId id,
                Time& ready);

/// Cold error funnel for the cross-batch deadlock: every pending task
/// waits on a predecessor that is neither pending nor scheduled.
[[noreturn]] void throw_unready_pending(const char* who,
                                        const CompiledInstance& ci,
                                        const Schedule& out,
                                        std::span<const TaskId> pending);

}  // namespace detail

}  // namespace dts
