#include "heuristics/dynamic.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace dts {

std::string_view to_acronym(DynamicCriterion c) noexcept {
  switch (c) {
    case DynamicCriterion::kLargestComm: return "LCMR";
    case DynamicCriterion::kSmallestComm: return "SCMR";
    case DynamicCriterion::kMaxAcceleration: return "MAMR";
  }
  return "?";
}

namespace {

/// Strictly better under the criterion (used after the idle filter).
bool criterion_better(const Task& a, const Task& b, DynamicCriterion c) {
  switch (c) {
    case DynamicCriterion::kLargestComm: return a.comm > b.comm;
    case DynamicCriterion::kSmallestComm: return a.comm < b.comm;
    case DynamicCriterion::kMaxAcceleration:
      return a.acceleration() > b.acceleration();
  }
  return false;
}

/// SoA twin of criterion_better — same comparisons over the compiled
/// arrays (CompiledInstance::acceleration replicates Task::acceleration).
bool criterion_better(const CompiledInstance& ci, TaskId a, TaskId b,
                      DynamicCriterion c) {
  switch (c) {
    case DynamicCriterion::kLargestComm: return ci.comm(a) > ci.comm(b);
    case DynamicCriterion::kSmallestComm: return ci.comm(a) < ci.comm(b);
    case DynamicCriterion::kMaxAcceleration:
      return ci.acceleration(a) > ci.acceleration(b);
  }
  return false;
}

/// Rebuilds the timing-relevant fields of a task from the SoA arrays (the
/// engine's start() only reads these; the name stays empty).
Task soa_task(const CompiledInstance& ci, TaskId id) {
  return Task{.id = id,
              .comm = ci.comm(id),
              .comp = ci.comp(id),
              .mem = ci.mem(id),
              .channel = ci.channel(id),
              .name = {}};
}

}  // namespace

TaskId pick_candidate(const Instance& inst, const ExecutionState& state,
                      std::span<const TaskId> candidates,
                      DynamicCriterion criterion) {
  TaskId best = kInvalidTask;
  Time best_idle = kInfiniteTime;
  for (TaskId id : candidates) {
    const Task& t = inst[id];
    const Time idle = state.induced_comp_idle(t);
    const bool strictly_less_idle = best != kInvalidTask && definitely_less(idle, best_idle);
    const bool tied_idle = best != kInvalidTask &&
                           !definitely_less(idle, best_idle) &&
                           !definitely_less(best_idle, idle);
    if (best == kInvalidTask || strictly_less_idle ||
        (tied_idle && criterion_better(t, inst[best], criterion))) {
      best = id;
      best_idle = idle;
    }
  }
  return best;
}

TaskId pick_candidate(const CompiledInstance& ci, const ExecutionState& state,
                      std::span<const TaskId> candidates,
                      DynamicCriterion criterion, std::span<const Time> ready) {
  const Time now = state.now();
  const Time comp_avail = state.comp_available();
  TaskId best = kInvalidTask;
  Time best_idle = kInfiniteTime;
  for (std::size_t k = 0; k < candidates.size(); ++k) {
    const TaskId id = candidates[k];
    // induced_comp_idle over the SoA arrays, same operation order:
    // max(0, max(now, channel clock) + comm - processor-free) — floored
    // at the candidate's predecessor completion instant when given.
    Time start = std::max(now, state.comm_available(ci.channel(id)));
    if (!ready.empty()) start = std::max(start, ready[k]);
    const Time idle = std::max(0.0, start + ci.comm(id) - comp_avail);
    const bool strictly_less_idle = best != kInvalidTask && definitely_less(idle, best_idle);
    const bool tied_idle = best != kInvalidTask &&
                           !definitely_less(idle, best_idle) &&
                           !definitely_less(best_idle, idle);
    if (best == kInvalidTask || strictly_less_idle ||
        (tied_idle && criterion_better(ci, id, best, criterion))) {
      best = id;
      best_idle = idle;
    }
  }
  return best;
}

void execute_dynamic(const Instance& inst, std::span<const TaskId> ids,
                     DynamicCriterion criterion, ExecutionState& state,
                     Schedule& out) {
  const CompiledInstance ci(inst);
  execute_dynamic(ci, ids, criterion, state, out);
}

namespace detail {

bool deps_ready(const CompiledInstance& ci, const Schedule& out, TaskId id,
                Time& ready) {
  for (const TaskId dep : ci.deps(id)) {
    const TaskTimes& pred = out[dep];
    if (!pred.scheduled()) return false;
    ready = std::max(ready, pred.comp_start + ci.comp(dep));
  }
  return true;
}

[[noreturn]] void throw_unready_pending(const char* who,
                                        const CompiledInstance& ci,
                                        const Schedule& out,
                                        std::span<const TaskId> pending) {
  for (const TaskId id : pending) {
    for (const TaskId dep : ci.deps(id)) {
      if (!out[dep].scheduled()) {
        throw std::invalid_argument(
            std::string(who) + ": task " + std::to_string(id) +
            " waits on predecessor " + std::to_string(dep) +
            " which is neither scheduled nor pending here");
      }
    }
  }
  throw std::logic_error(std::string(who) + ": no pending task is ready");
}

}  // namespace detail

void execute_dynamic(const CompiledInstance& ci, std::span<const TaskId> ids,
                     DynamicCriterion criterion, ExecutionState& state,
                     Schedule& out) {
  const bool dag = ci.has_dependencies();
  std::vector<TaskId> pending(ids.begin(), ids.end());
  std::vector<TaskId> fitting;
  std::vector<Time> floors;  // aligned with `fitting`, DAG instances only
  fitting.reserve(pending.size());

  while (!pending.empty()) {
    fitting.clear();
    floors.clear();
    bool any_ready = !dag;
    for (TaskId id : pending) {
      Time ready = 0.0;
      if (dag) {
        if (!detail::deps_ready(ci, out, id, ready)) continue;
        any_ready = true;
      }
      if (state.fits(ci.mem(id))) {
        fitting.push_back(id);
        if (dag) floors.push_back(ready);
      }
    }
    if (fitting.empty()) {
      if (!any_ready) {
        detail::throw_unready_pending("execute_dynamic", ci, out, pending);
      }
      if (!state.advance_to_next_release()) {
        throw std::invalid_argument(
            "execute_dynamic: a pending task exceeds the memory capacity");
      }
      continue;
    }
    const TaskId chosen = pick_candidate(ci, state, fitting, criterion, floors);
    const Time floor =
        dag ? floors[static_cast<std::size_t>(
                  std::find(fitting.begin(), fitting.end(), chosen) -
                  fitting.begin())]
            : 0.0;
    const TaskTimes tt = state.start(soa_task(ci, chosen), floor);
    out.set(chosen, tt.comm_start, tt.comp_start);
    pending.erase(std::find(pending.begin(), pending.end(), chosen));
  }
}

Schedule schedule_dynamic(const Instance& inst, DynamicCriterion criterion,
                          Mem capacity) {
  ExecutionState state(capacity, inst.num_channels());
  Schedule sched(inst.size());
  const std::vector<TaskId> ids = inst.submission_order();
  execute_dynamic(inst, ids, criterion, state, sched);
  return sched;
}

}  // namespace dts
