#pragma once

/// \file gilmore_gomory.hpp
/// The GG baseline of the paper (§4.4): the sequence produced by the
/// Gilmore-Gomory (1964) algorithm for the 2-machine *no-wait* flowshop,
/// executed — like every other static order — under the memory capacity.
///
/// Background. Under the no-wait discipline a task's computation starts the
/// instant its transfer finishes. If task j directly follows task i, the
/// link must idle max(0, CP_i - CM_j) between the two transfers, so the
/// makespan of a sequence is
///     sum_i CM_i + sum_adjacent max(0, CP_i - CM_j) + CP_last,
/// i.e. a traveling-salesman tour through all tasks plus a dummy start/end
/// task with zero durations, with the asymmetric distance
///     c(i -> j) = max(0, CP_i - CM_j).
/// This distance is of Gilmore-Gomory type (machine leaves state CP_i,
/// next job requires state CM_j; moving the state down costs its length,
/// moving up is free), so the optimal tour is computable in O(n log n):
///   1. match the r-th smallest end state with the r-th smallest start
///      state (optimal bipartite relaxation),
///   2. patch the resulting sub-cycles into one tour with adjacent-rank
///      interchanges of cost
///        eps_r = max(0, min(u_(r+1), v_(r+1)) - max(u_(r), v_(r))),
///      selected by a Kruskal pass over the cycle structure,
///   3. apply the selected interchanges in a cost-preserving order.
/// Step 3's order matters; we evaluate the canonical candidate orders
/// (ascending, descending, the two two-group splits, and per-run best) and
/// keep the cheapest resulting tour — each candidate is a valid single
/// tour because the accepted interchanges form a spanning tree over the
/// sub-cycles. Optimality is cross-checked against exhaustive search in
/// the test suite.

#include <span>
#include <vector>

#include "core/instance.hpp"
#include "core/schedule.hpp"

namespace dts {

/// The Gilmore-Gomory optimal no-wait sequence for the instance.
[[nodiscard]] std::vector<TaskId> gilmore_gomory_order(const Instance& inst);

/// Makespan of `order` under the *no-wait* discipline (infinite memory) —
/// the quantity GG minimizes. Exposed for tests and the ablation bench.
[[nodiscard]] Time no_wait_makespan(const Instance& inst,
                                    std::span<const TaskId> order);

/// The GG heuristic of the paper: GG sequence, executed as a normal
/// (wait-allowed) permutation schedule under `capacity`.
[[nodiscard]] Schedule schedule_gilmore_gomory(const Instance& inst,
                                               Mem capacity);

}  // namespace dts
