#include "heuristics/gilmore_gomory.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <stdexcept>

#include "core/simulate.hpp"

namespace dts {

namespace {

/// Disjoint-set union for the cycle-patching step.
class Dsu {
 public:
  explicit Dsu(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), std::size_t{0});
  }
  std::size_t find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  /// Returns true when the sets were distinct (and merges them).
  bool unite(std::size_t a, std::size_t b) {
    a = find(a);
    b = find(b);
    if (a == b) return false;
    parent_[a] = b;
    return true;
  }

 private:
  std::vector<std::size_t> parent_;
};

/// Tour cost of a successor array: sum over nodes of max(0, u[i]-v[succ[i]]).
double tour_cost(const std::vector<double>& u, const std::vector<double>& v,
                 const std::vector<std::size_t>& succ) {
  double cost = 0.0;
  for (std::size_t i = 0; i < succ.size(); ++i) {
    cost += std::max(0.0, u[i] - v[succ[i]]);
  }
  return cost;
}

/// True when succ is one cycle covering all nodes.
bool single_cycle(const std::vector<std::size_t>& succ) {
  std::size_t seen = 0;
  std::size_t node = 0;
  do {
    node = succ[node];
    ++seen;
    if (seen > succ.size()) return false;  // defensive: malformed array
  } while (node != 0);
  return seen == succ.size();
}

/// Applies the rank interchanges in the given order: interchange r swaps
/// the successors of the nodes at u-ranks r and r+1.
std::vector<std::size_t> apply_interchanges(
    std::vector<std::size_t> succ, const std::vector<std::size_t>& uord,
    std::span<const std::size_t> ranks) {
  for (std::size_t r : ranks) {
    std::swap(succ[uord[r]], succ[uord[r + 1]]);
  }
  return succ;
}

}  // namespace

Time no_wait_makespan(const Instance& inst, std::span<const TaskId> order) {
  if (order.empty()) return 0.0;
  Time start = 0.0;  // transfer start of the current task
  for (std::size_t k = 0; k + 1 < order.size(); ++k) {
    const Task& cur = inst[order[k]];
    const Task& nxt = inst[order[k + 1]];
    // Next transfer starts as soon as (a) the link is free and (b) the
    // no-wait computation slot right after it is free.
    start += cur.comm + std::max(0.0, cur.comp - nxt.comm);
  }
  const Task& last = inst[order.back()];
  return start + last.comm + last.comp;
}

std::vector<TaskId> gilmore_gomory_order(const Instance& inst) {
  const std::size_t n = inst.size();
  if (n <= 1) return inst.submission_order();

  // Node 0 is the dummy start/end job; node i+1 is task i.
  const std::size_t N = n + 1;
  std::vector<double> u(N), v(N);  // u: end state (CP), v: start state (CM)
  u[0] = 0.0;
  v[0] = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    u[i + 1] = inst[static_cast<TaskId>(i)].comp;
    v[i + 1] = inst[static_cast<TaskId>(i)].comm;
  }

  // Rank orders (stable on node index for determinism).
  std::vector<std::size_t> uord(N), vord(N);
  std::iota(uord.begin(), uord.end(), std::size_t{0});
  std::iota(vord.begin(), vord.end(), std::size_t{0});
  std::stable_sort(uord.begin(), uord.end(),
                   [&](std::size_t a, std::size_t b) { return u[a] < u[b]; });
  std::stable_sort(vord.begin(), vord.end(),
                   [&](std::size_t a, std::size_t b) { return v[a] < v[b]; });

  // Optimal assignment relaxation: r-th smallest end state feeds the r-th
  // smallest start state.
  std::vector<std::size_t> succ(N);
  for (std::size_t r = 0; r < N; ++r) succ[uord[r]] = vord[r];

  // Interchange costs between adjacent ranks.
  std::vector<double> eps(N - 1);
  for (std::size_t r = 0; r + 1 < N; ++r) {
    const double lo = std::max(u[uord[r]], v[vord[r]]);
    const double hi = std::min(u[uord[r + 1]], v[vord[r + 1]]);
    eps[r] = std::max(0.0, hi - lo);
  }

  // Kruskal: connect the assignment's sub-cycles with cheapest
  // interchanges. Initialize the DSU with the assignment cycles.
  Dsu dsu(N);
  for (std::size_t i = 0; i < N; ++i) dsu.unite(i, succ[i]);

  std::vector<std::size_t> edges(N - 1);
  std::iota(edges.begin(), edges.end(), std::size_t{0});
  std::stable_sort(edges.begin(), edges.end(), [&](std::size_t a, std::size_t b) {
    return eps[a] < eps[b];
  });
  std::vector<std::size_t> accepted;
  for (std::size_t r : edges) {
    if (dsu.unite(uord[r], uord[r + 1])) accepted.push_back(r);
  }
  std::sort(accepted.begin(), accepted.end());

  if (accepted.empty() && !single_cycle(succ)) {
    // Cannot happen: the N-1 adjacent edges always connect everything.
    throw std::logic_error("gilmore_gomory_order: patching failed");
  }

  // Candidate application orders. Every candidate yields a single tour
  // (the accepted edges span the cycle forest); they differ only in cost.
  std::vector<std::vector<std::size_t>> candidates;
  {
    // Ascending and descending.
    candidates.push_back(accepted);
    candidates.emplace_back(accepted.rbegin(), accepted.rend());

    // The classical two-group application rule: interchanges whose lower
    // rank has end state below start state (u_(r) <= v_(r)) are applied in
    // decreasing rank order, the others in increasing order afterwards.
    // This is the order that realizes the assignment + spanning-tree cost
    // bound exactly (validated against brute force in the test suite).
    // Both tie orientations and the mirrored grouping are kept as extra
    // candidates for robustness.
    const auto two_group = [&](auto in_group_one) {
      std::vector<std::size_t> g1, g2;
      for (std::size_t r : accepted) {
        (in_group_one(r) ? g1 : g2).push_back(r);
      }
      std::vector<std::size_t> seq(g1.rbegin(), g1.rend());  // g1 descending
      seq.insert(seq.end(), g2.begin(), g2.end());           // then g2 ascending
      return seq;
    };
    candidates.push_back(two_group(
        [&](std::size_t r) { return u[uord[r]] <= v[vord[r]]; }));
    candidates.push_back(two_group(
        [&](std::size_t r) { return u[uord[r]] < v[vord[r]]; }));
    candidates.push_back(two_group(
        [&](std::size_t r) { return u[uord[r + 1]] > v[vord[r + 1]]; }));
    candidates.push_back(two_group(
        [&](std::size_t r) { return u[uord[r + 1]] <= v[vord[r + 1]]; }));

    // Per-run best: maximal runs of consecutive ranks are independent
    // (they touch disjoint successor slots), so pick each run's cheaper
    // direction locally.
    std::vector<std::size_t> per_run;
    std::size_t i = 0;
    while (i < accepted.size()) {
      std::size_t j = i;
      while (j + 1 < accepted.size() && accepted[j + 1] == accepted[j] + 1) ++j;
      const std::span<const std::size_t> run(&accepted[i], j - i + 1);
      const std::vector<std::size_t> asc(run.begin(), run.end());
      const std::vector<std::size_t> desc(run.rbegin(), run.rend());
      const double cost_asc =
          tour_cost(u, v, apply_interchanges(succ, uord, asc));
      const double cost_desc =
          tour_cost(u, v, apply_interchanges(succ, uord, desc));
      const auto& chosen = cost_asc <= cost_desc ? asc : desc;
      per_run.insert(per_run.end(), chosen.begin(), chosen.end());
      i = j + 1;
    }
    candidates.push_back(std::move(per_run));
  }

  std::vector<std::size_t> best_succ;
  double best_cost = std::numeric_limits<double>::infinity();
  for (const auto& cand : candidates) {
    std::vector<std::size_t> s = apply_interchanges(succ, uord, cand);
    if (!single_cycle(s)) continue;  // defensive; theory says always single
    const double cost = tour_cost(u, v, s);
    if (cost < best_cost) {
      best_cost = cost;
      best_succ = std::move(s);
    }
  }
  if (best_succ.empty()) {
    throw std::logic_error("gilmore_gomory_order: no valid tour produced");
  }

  // Read the task sequence off the tour, starting after the dummy node.
  std::vector<TaskId> order;
  order.reserve(n);
  for (std::size_t node = best_succ[0]; node != 0; node = best_succ[node]) {
    order.push_back(static_cast<TaskId>(node - 1));
  }
  assert(order.size() == n);
  return order;
}

Schedule schedule_gilmore_gomory(const Instance& inst, Mem capacity) {
  std::vector<TaskId> order = gilmore_gomory_order(inst);
  if (inst.has_dependencies()) order = legalize_order(inst, order);
  return simulate_order(inst, order, capacity);
}

}  // namespace dts
