#pragma once

/// \file bin_packing.hpp
/// The BP baseline of the paper (§4.4): First-Fit bin packing on memory
/// requirements. Tasks are taken in submission order and placed in the
/// first bin whose residual capacity holds them (bin capacity = the memory
/// capacity C); the processing sequence is bin 1's tasks, then bin 2's,
/// and so on. The intuition: tasks sharing a bin are guaranteed to fit in
/// memory together, so transfers inside a bin can proceed back-to-back.

#include <span>
#include <vector>

#include "core/instance.hpp"
#include "core/schedule.hpp"

namespace dts {

/// First-Fit bins of task ids (exposed for tests and the example apps).
/// Throws std::invalid_argument if some task alone exceeds `capacity`.
[[nodiscard]] std::vector<std::vector<TaskId>> first_fit_bins(
    const Instance& inst, Mem capacity);

/// Concatenation of the First-Fit bins — the BP sequence.
[[nodiscard]] std::vector<TaskId> bin_packing_order(const Instance& inst,
                                                    Mem capacity);

/// BP sequence executed under the same capacity.
[[nodiscard]] Schedule schedule_bin_packing(const Instance& inst, Mem capacity);

}  // namespace dts
