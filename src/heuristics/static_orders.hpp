#pragma once

/// \file static_orders.hpp
/// Static ordering heuristics (paper §4.1): the full processing order is
/// fixed in advance from task durations alone, then executed as a
/// permutation schedule under the memory capacity.
///
///   OS     order of submission (the arbitrary trace order)
///   OOSIM  order of the optimal strategy for infinite memory (Johnson)
///   IOCMS  non-decreasing communication time
///   DOCPS  non-increasing computation time
///   IOCCS  non-decreasing comm + comp
///   DOCCS  non-increasing comm + comp
///
/// All sorts are stable so equal keys preserve submission order, making
/// every heuristic deterministic.

#include <span>
#include <string_view>
#include <vector>

#include "core/instance.hpp"
#include "core/schedule.hpp"
#include "core/simulate.hpp"

namespace dts {

enum class StaticOrderPolicy {
  kSubmission,             ///< OS
  kJohnson,                ///< OOSIM
  kIncreasingComm,         ///< IOCMS
  kDecreasingComp,         ///< DOCPS
  kIncreasingCommPlusComp, ///< IOCCS
  kDecreasingCommPlusComp, ///< DOCCS
};

/// The task permutation prescribed by `policy` (no memory constraint is
/// involved at this stage).
[[nodiscard]] std::vector<TaskId> static_order(const Instance& inst,
                                               StaticOrderPolicy policy);

/// Executes the policy's order under `capacity` on a fresh engine.
[[nodiscard]] Schedule schedule_static(const Instance& inst,
                                       StaticOrderPolicy policy, Mem capacity);

/// Paper acronym for the policy (e.g. "IOCMS").
[[nodiscard]] std::string_view to_acronym(StaticOrderPolicy policy) noexcept;

}  // namespace dts
