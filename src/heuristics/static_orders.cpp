#include "heuristics/static_orders.hpp"

#include <algorithm>

#include "core/johnson.hpp"

namespace dts {

std::vector<TaskId> static_order(const Instance& inst,
                                 StaticOrderPolicy policy) {
  std::vector<TaskId> order = inst.submission_order();
  const auto key_sort = [&](auto key, bool increasing) {
    std::stable_sort(order.begin(), order.end(), [&](TaskId a, TaskId b) {
      return increasing ? key(inst[a]) < key(inst[b])
                        : key(inst[a]) > key(inst[b]);
    });
  };
  switch (policy) {
    case StaticOrderPolicy::kSubmission:
      break;
    case StaticOrderPolicy::kJohnson:
      order = johnson_order(inst);
      break;
    case StaticOrderPolicy::kIncreasingComm:
      key_sort([](const Task& t) { return t.comm; }, /*increasing=*/true);
      break;
    case StaticOrderPolicy::kDecreasingComp:
      key_sort([](const Task& t) { return t.comp; }, /*increasing=*/false);
      break;
    case StaticOrderPolicy::kIncreasingCommPlusComp:
      key_sort([](const Task& t) { return t.total_time(); }, /*increasing=*/true);
      break;
    case StaticOrderPolicy::kDecreasingCommPlusComp:
      key_sort([](const Task& t) { return t.total_time(); }, /*increasing=*/false);
      break;
  }
  return order;
}

Schedule schedule_static(const Instance& inst, StaticOrderPolicy policy,
                         Mem capacity) {
  std::vector<TaskId> order = static_order(inst, policy);
  if (inst.has_dependencies()) order = legalize_order(inst, order);
  return simulate_order(inst, order, capacity);
}

std::string_view to_acronym(StaticOrderPolicy policy) noexcept {
  switch (policy) {
    case StaticOrderPolicy::kSubmission: return "OS";
    case StaticOrderPolicy::kJohnson: return "OOSIM";
    case StaticOrderPolicy::kIncreasingComm: return "IOCMS";
    case StaticOrderPolicy::kDecreasingComp: return "DOCPS";
    case StaticOrderPolicy::kIncreasingCommPlusComp: return "IOCCS";
    case StaticOrderPolicy::kDecreasingCommPlusComp: return "DOCCS";
  }
  return "?";
}

}  // namespace dts
