#include "heuristics/bin_packing.hpp"

#include <stdexcept>
#include <string>

#include "core/simulate.hpp"

namespace dts {

std::vector<std::vector<TaskId>> first_fit_bins(const Instance& inst,
                                                Mem capacity) {
  std::vector<std::vector<TaskId>> bins;
  std::vector<Mem> residual;
  for (const Task& t : inst) {
    if (definitely_less(capacity, t.mem)) {
      throw std::invalid_argument("first_fit_bins: task " +
                                  std::to_string(t.id) +
                                  " exceeds the bin capacity");
    }
    bool placed = false;
    for (std::size_t b = 0; b < bins.size(); ++b) {
      if (approx_leq(t.mem, residual[b])) {
        bins[b].push_back(t.id);
        residual[b] -= t.mem;
        placed = true;
        break;
      }
    }
    if (!placed) {
      bins.push_back({t.id});
      residual.push_back(capacity - t.mem);
    }
  }
  return bins;
}

std::vector<TaskId> bin_packing_order(const Instance& inst, Mem capacity) {
  std::vector<TaskId> order;
  order.reserve(inst.size());
  for (const auto& bin : first_fit_bins(inst, capacity)) {
    order.insert(order.end(), bin.begin(), bin.end());
  }
  return order;
}

Schedule schedule_bin_packing(const Instance& inst, Mem capacity) {
  std::vector<TaskId> order = bin_packing_order(inst, capacity);
  if (inst.has_dependencies()) order = legalize_order(inst, order);
  return simulate_order(inst, order, capacity);
}

}  // namespace dts
