#pragma once

/// \file local_search.hpp
/// Permutation local search — an extension beyond the paper's heuristics
/// (its conclusion calls for a runtime that keeps improving schedules).
/// Starting from any order (by default the auto-scheduler's winner), hill
/// climb over three neighborhoods: adjacent swaps, arbitrary pair swaps
/// and single-task relocations, evaluating each candidate with the real
/// memory-constrained engine. First-improvement with a random neighborhood
/// sequence; deterministic in the seed.
///
/// The ablation bench (bench/ablation_candidate_rule) quantifies how much
/// headroom the paper's one-shot heuristics leave on the table.

#include <functional>
#include <span>
#include <vector>

#include "core/instance.hpp"
#include "core/schedule.hpp"

namespace dts {

struct LocalSearchOptions {
  std::size_t max_iterations = 20000;  ///< candidate evaluations
  std::size_t max_no_improve = 2000;   ///< stop after this many rejections
  std::uint64_t seed = 1;
  /// Polled between candidate evaluations (and once on entry — an
  /// already-fired token makes schedule_local_search skip even the
  /// auto-scheduler seed pass and return the submission-order schedule).
  /// When it returns true the search stops and the best-so-far order is
  /// returned.
  std::function<bool()> should_stop;
};

struct LocalSearchResult {
  std::vector<TaskId> order;
  Schedule schedule;
  Time initial_makespan = 0.0;
  Time makespan = 0.0;
  std::size_t iterations = 0;    ///< candidates evaluated
  std::size_t improvements = 0;  ///< accepted moves
  bool stopped = false;          ///< should_stop cut the search short

  /// Relative gain over the seed order.
  [[nodiscard]] double improvement() const noexcept {
    return initial_makespan <= 0.0 ? 0.0
                                   : 1.0 - makespan / initial_makespan;
  }
};

/// Improves `initial` under `capacity`. Throws std::invalid_argument when
/// the order does not cover the instance or a task cannot fit.
[[nodiscard]] LocalSearchResult improve_order(const Instance& inst,
                                              Mem capacity,
                                              std::span<const TaskId> initial,
                                              const LocalSearchOptions& options = {});

/// Convenience: seed with the best registry heuristic, then improve.
[[nodiscard]] LocalSearchResult schedule_local_search(
    const Instance& inst, Mem capacity, const LocalSearchOptions& options = {});

}  // namespace dts
