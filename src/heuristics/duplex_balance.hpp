#pragma once

/// \file duplex_balance.hpp
/// Duplex-aware static order heuristic: unlike the paper heuristics, which
/// rank tasks by durations alone and let the engine interleave directions
/// as a side effect of the induced-idle criterion, this one reasons about
/// per-channel load explicitly. Each copy engine's tasks are put into
/// their own Johnson order (optimal per engine with unbounded memory), and
/// the per-engine sequences are merged by always issuing from the engine
/// with the least transfer time committed so far — so a slow D2H engine
/// with few large write-backs and a fast H2D engine with many fetches both
/// stay fed instead of one direction monopolizing the issue stream.
///
/// On a single-channel instance there is only one sequence to merge and
/// the order degenerates to the Johnson order, i.e. the heuristic equals
/// OOSIM exactly (pinned by tests). The interesting regime is an
/// asymmetric duplex machine (`duplex-pcie` with a slowed D2H model);
/// bench_machine_sweep's asymmetry axis evaluates it against SCMR there.

#include <vector>

#include "core/instance.hpp"
#include "core/schedule.hpp"

namespace dts {

/// The merged issue order: per-channel Johnson sequences interleaved by
/// least committed transfer load (ties prefer the lower channel id, then
/// submission order within a channel — fully deterministic).
[[nodiscard]] std::vector<TaskId> duplex_balance_order(const Instance& inst);

/// Executes duplex_balance_order under `capacity` on a fresh engine.
/// Throws std::invalid_argument when some task cannot fit at all.
[[nodiscard]] Schedule schedule_duplex_balance(const Instance& inst,
                                               Mem capacity);

}  // namespace dts
