#include "heuristics/local_search.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/auto_scheduler.hpp"
#include "core/compiled.hpp"
#include "core/simulate.hpp"
#include "support/rng.hpp"

namespace dts {

namespace {

/// Applies a random move in place; returns false when the move is a no-op
/// (degenerate indices), in which case the caller retries.
bool random_move(Rng& rng, std::vector<TaskId>& order) {
  const std::size_t n = order.size();
  if (n < 2) return false;
  switch (rng.uniform_u64(0, 2)) {
    case 0: {  // adjacent swap
      const std::size_t i = rng.index(n - 1);
      std::swap(order[i], order[i + 1]);
      return true;
    }
    case 1: {  // arbitrary pair swap
      const std::size_t i = rng.index(n);
      const std::size_t j = rng.index(n);
      if (i == j) return false;
      std::swap(order[i], order[j]);
      return true;
    }
    default: {  // relocation
      const std::size_t from = rng.index(n);
      const std::size_t to = rng.index(n);
      if (from == to) return false;
      const TaskId task = order[from];
      order.erase(order.begin() + static_cast<std::ptrdiff_t>(from));
      order.insert(order.begin() + static_cast<std::ptrdiff_t>(to), task);
      return true;
    }
  }
}

}  // namespace

LocalSearchResult improve_order(const Instance& inst, Mem capacity,
                                std::span<const TaskId> initial,
                                const LocalSearchOptions& options) {
  if (initial.size() != inst.size()) {
    throw std::invalid_argument("improve_order: order must cover all tasks");
  }
  LocalSearchResult result;
  result.order.assign(initial.begin(), initial.end());
  const bool dag = inst.has_dependencies();
  // A DAG seed must be executable; repair it minimally (identity when the
  // caller already passed a topological order, and on edge-free
  // instances).
  if (dag) result.order = legalize_order(inst, result.order);
  // All candidate scoring runs on the data-oriented fast path: one SoA
  // compilation of the instance, checkpoints along the incumbent order,
  // and per-candidate resimulation of only the suffix after the move
  // (bit-identical makespans to the full engine — the search trajectory
  // is unchanged, it just stops paying a Schedule + full resimulation
  // per candidate).
  const CompiledInstance compiled(inst);
  PrefixResumeEvaluator evaluator(compiled, capacity);
  result.initial_makespan = evaluator.set_reference(result.order);
  result.makespan = result.initial_makespan;

  if (inst.size() < 2) {
    // No moves exist; the seed order is the only order.
    result.schedule = simulate_order(inst, result.order, capacity);
    return result;
  }

  Rng rng(options.seed ^ 0x4C6F63616C5365ULL);  // "LocalSe"
  std::vector<TaskId> candidate;
  std::size_t since_improve = 0;
  std::size_t degenerate_draws = 0;
  const auto stop_requested = [&options] {
    return options.should_stop && options.should_stop();
  };
  while (result.iterations < options.max_iterations &&
         since_improve < options.max_no_improve) {
    if (stop_requested()) {
      result.stopped = true;
      break;
    }
    candidate = result.order;
    if (!random_move(rng, candidate) ||
        (dag && !inst.is_topological_order(candidate))) {
      // Degenerate draw (i == j) or a move that breaks a dependency edge;
      // bounded retries keep the loop finite either way.
      if (++degenerate_draws > 4 * options.max_iterations) break;
      continue;
    }
    ++result.iterations;
    const Time ms = evaluator.evaluate(candidate);
    if (definitely_less(ms, result.makespan)) {
      result.makespan = ms;
      result.order = std::move(candidate);
      // Re-checkpoint along the new incumbent; only the suffix past the
      // move's first changed position is resimulated.
      evaluator.set_reference(result.order);
      ++result.improvements;
      since_improve = 0;
    } else {
      ++since_improve;
    }
  }
  result.schedule = simulate_order(inst, result.order, capacity);
  return result;
}

LocalSearchResult schedule_local_search(const Instance& inst, Mem capacity,
                                        const LocalSearchOptions& options) {
  if (options.should_stop && options.should_stop()) {
    // Already past the deadline: skip the auto-scheduler seed pass too
    // (it simulates every registered heuristic) and return the cheapest
    // complete feasible schedule, the submission order.
    LocalSearchResult result =
        improve_order(inst, capacity, inst.submission_order(), options);
    result.stopped = true;
    return result;
  }
  const AutoScheduleResult seed = auto_schedule(inst, capacity);
  const std::vector<TaskId> initial = seed.schedule.comm_order();
  return improve_order(inst, capacity, initial, options);
}

}  // namespace dts
