#pragma once

/// \file gantt.hpp
/// ASCII rendering of a schedule as the two-lane Gantt charts the paper
/// draws (Figs. 2-6): one lane for the communication link, one for the
/// processor, labelled by task name initials, with a time axis.

#include <string>

#include "core/instance.hpp"
#include "core/schedule.hpp"

namespace dts {

struct GanttOptions {
  std::size_t width = 72;     ///< characters available for the time axis
  bool show_legend = true;    ///< map of lane letters to task names
};

/// Renders both resource lanes. Tasks are labelled A, B, C... in id order
/// (or by the first character of their name when names are unique).
[[nodiscard]] std::string render_gantt(const Instance& inst,
                                       const Schedule& sched,
                                       const GanttOptions& options = {});

}  // namespace dts
