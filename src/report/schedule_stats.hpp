#pragma once

/// \file schedule_stats.hpp
/// Post-mortem analysis of a schedule: where did the time go? The paper
/// reasons about link idle caused by memory pressure versus processor idle
/// caused by missing data; this module quantifies both so examples and
/// benches can explain *why* a heuristic scored what it scored.

#include "core/instance.hpp"
#include "core/schedule.hpp"

namespace dts {

struct ScheduleBreakdown {
  Time makespan = 0.0;
  Time link_busy = 0.0;        ///< sum of communication times
  Time link_idle = 0.0;        ///< makespan - last comm end + internal gaps
  Time proc_busy = 0.0;        ///< sum of computation times
  Time proc_idle = 0.0;
  Time proc_starved = 0.0;     ///< processor idle while some task's data
                               ///< had not yet finished transferring
  double overlap = 0.0;        ///< fraction of link busy time during which
                               ///< the processor was also busy

  /// Link utilization in [0, 1].
  [[nodiscard]] double link_utilization() const noexcept {
    return makespan <= 0.0 ? 0.0 : link_busy / makespan;
  }
  /// Processor utilization in [0, 1].
  [[nodiscard]] double proc_utilization() const noexcept {
    return makespan <= 0.0 ? 0.0 : proc_busy / makespan;
  }
};

/// Computes the breakdown of a complete schedule. O(n log n).
[[nodiscard]] ScheduleBreakdown analyze_schedule(const Instance& inst,
                                                 const Schedule& sched);

}  // namespace dts
