#pragma once

/// \file csv.hpp
/// Minimal RFC-4180 CSV output. The benches write one CSV per figure next
/// to their stdout tables so the paper's plots can be regenerated with any
/// plotting tool.

#include <filesystem>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

namespace dts {

/// Quotes a field when needed (commas, quotes, newlines).
[[nodiscard]] std::string csv_escape(const std::string& field);

class CsvWriter {
 public:
  /// Writes to a stream owned by the caller.
  explicit CsvWriter(std::ostream& out) : out_(&out) {}

  void row(std::span<const std::string> cells);
  void row(std::initializer_list<std::string> cells);

 private:
  std::ostream* out_;
};

/// Convenience: write a whole table to `path` (parent directory must
/// exist); throws std::runtime_error on IO failure.
void write_csv_file(const std::filesystem::path& path,
                    std::span<const std::string> header,
                    std::span<const std::vector<std::string>> rows);

}  // namespace dts
