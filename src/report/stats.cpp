#include "report/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace dts {

double quantile_sorted(std::span<const double> sorted, double q) {
  if (sorted.empty()) {
    throw std::invalid_argument("quantile_sorted: empty sample");
  }
  if (q <= 0.0) return sorted.front();
  if (q >= 1.0) return sorted.back();
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= sorted.size()) return sorted.back();
  return sorted[lo] + frac * (sorted[lo + 1] - sorted[lo]);
}

BoxplotSummary summarize(std::vector<double> values) {
  BoxplotSummary s;
  s.n = values.size();
  if (values.empty()) return s;

  std::sort(values.begin(), values.end());
  s.min = values.front();
  s.max = values.back();
  s.q1 = quantile_sorted(values, 0.25);
  s.median = quantile_sorted(values, 0.50);
  s.q3 = quantile_sorted(values, 0.75);

  double sum = 0.0;
  for (double v : values) sum += v;
  s.mean = sum / static_cast<double>(values.size());
  if (values.size() > 1) {
    double ss = 0.0;
    for (double v : values) ss += (v - s.mean) * (v - s.mean);
    s.stddev = std::sqrt(ss / static_cast<double>(values.size() - 1));
  }

  const double fence_lo = s.q1 - 1.5 * s.iqr();
  const double fence_hi = s.q3 + 1.5 * s.iqr();
  s.whisker_low = s.max;
  s.whisker_high = s.min;
  for (double v : values) {
    if (v >= fence_lo) {
      s.whisker_low = std::min(s.whisker_low, v);
    }
    if (v <= fence_hi) {
      s.whisker_high = std::max(s.whisker_high, v);
    }
    if (v < fence_lo || v > fence_hi) s.outliers.push_back(v);
  }
  return s;
}

}  // namespace dts
