#include "report/table.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace dts {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  if (headers_.empty()) {
    throw std::invalid_argument("TextTable: need at least one column");
  }
}

void TextTable::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("TextTable::add_row: expected " +
                                std::to_string(headers_.size()) +
                                " cells, got " + std::to_string(cells.size()));
  }
  rows_.push_back(std::move(cells));
}

namespace {

std::vector<std::size_t> column_widths(
    const std::vector<std::string>& headers,
    const std::vector<std::vector<std::string>>& rows) {
  std::vector<std::size_t> widths(headers.size());
  for (std::size_t c = 0; c < headers.size(); ++c) widths[c] = headers[c].size();
  for (const auto& row : rows) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  return widths;
}

void append_padded(std::string& out, const std::string& cell,
                   std::size_t width) {
  out += cell;
  out.append(width - cell.size(), ' ');
}

}  // namespace

std::string TextTable::to_ascii() const {
  const std::vector<std::size_t> widths = column_widths(headers_, rows_);
  std::string out;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    append_padded(out, headers_[c], widths[c]);
    out += (c + 1 < headers_.size()) ? "  " : "";
  }
  out += '\n';
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out.append(widths[c], '-');
    out += (c + 1 < headers_.size()) ? "  " : "";
  }
  out += '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      append_padded(out, row[c], widths[c]);
      out += (c + 1 < row.size()) ? "  " : "";
    }
    out += '\n';
  }
  return out;
}

std::string TextTable::to_markdown() const {
  std::string out = "|";
  for (const auto& h : headers_) out += " " + h + " |";
  out += "\n|";
  for (std::size_t c = 0; c < headers_.size(); ++c) out += "---|";
  out += '\n';
  for (const auto& row : rows_) {
    out += '|';
    for (const auto& cell : row) out += " " + cell + " |";
    out += '\n';
  }
  return out;
}

std::string format_fixed(double value, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << value;
  return os.str();
}

std::string format_si_bytes(double bytes) {
  static constexpr const char* kUnits[] = {"B", "KB", "MB", "GB", "TB"};
  int unit = 0;
  while (bytes >= 1000.0 && unit < 4) {
    bytes /= 1000.0;
    ++unit;
  }
  return format_fixed(bytes, bytes < 10 ? 2 : (bytes < 100 ? 1 : 0)) +
         kUnits[unit];
}

std::string format_seconds(double seconds) {
  if (seconds == 0.0) return "0s";
  if (seconds < 1e-3) return format_fixed(seconds * 1e6, 1) + "us";
  if (seconds < 1.0) return format_fixed(seconds * 1e3, 2) + "ms";
  return format_fixed(seconds, 3) + "s";
}

}  // namespace dts
