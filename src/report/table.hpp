#pragma once

/// \file table.hpp
/// Column-aligned text tables for the bench harnesses: every figure of the
/// paper is regenerated as rows on stdout (plus CSV for plotting).

#include <string>
#include <vector>

namespace dts {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

  /// Space-padded alignment with a header separator line.
  [[nodiscard]] std::string to_ascii() const;

  /// GitHub-flavored markdown.
  [[nodiscard]] std::string to_markdown() const;

  [[nodiscard]] const std::vector<std::string>& headers() const noexcept {
    return headers_;
  }
  [[nodiscard]] const std::vector<std::vector<std::string>>& body()
      const noexcept {
    return rows_;
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Fixed-precision formatting helpers used by the benches.
[[nodiscard]] std::string format_fixed(double value, int precision);
[[nodiscard]] std::string format_si_bytes(double bytes);
[[nodiscard]] std::string format_seconds(double seconds);

}  // namespace dts
