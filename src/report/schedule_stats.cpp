#include "report/schedule_stats.hpp"

#include <algorithm>
#include <vector>

namespace dts {

namespace {

/// Busy intervals of one resource, sorted by start.
std::vector<std::pair<Time, Time>> busy_intervals(
    const Instance& inst, const Schedule& sched,
    Time TaskTimes::* start_field, Time Task::* len_field) {
  std::vector<std::pair<Time, Time>> intervals;
  intervals.reserve(inst.size());
  for (TaskId i = 0; i < inst.size(); ++i) {
    const Time start = sched[i].*start_field;
    const Time len = inst[i].*len_field;
    if (len > 0.0) intervals.emplace_back(start, start + len);
  }
  std::sort(intervals.begin(), intervals.end());
  return intervals;
}

/// Total length of the union of [0, horizon) minus the intervals.
Time idle_within(const std::vector<std::pair<Time, Time>>& intervals,
                 Time horizon) {
  Time idle = 0.0;
  Time cursor = 0.0;
  for (const auto& [start, end] : intervals) {
    if (start > cursor) idle += start - cursor;
    cursor = std::max(cursor, end);
  }
  if (horizon > cursor) idle += horizon - cursor;
  return idle;
}

/// Overlap length between two sorted interval sets.
Time overlap_length(const std::vector<std::pair<Time, Time>>& a,
                    const std::vector<std::pair<Time, Time>>& b) {
  Time total = 0.0;
  std::size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    const Time lo = std::max(a[i].first, b[j].first);
    const Time hi = std::min(a[i].second, b[j].second);
    if (hi > lo) total += hi - lo;
    (a[i].second < b[j].second) ? ++i : ++j;
  }
  return total;
}

}  // namespace

ScheduleBreakdown analyze_schedule(const Instance& inst,
                                   const Schedule& sched) {
  ScheduleBreakdown out;
  if (inst.empty()) return out;
  out.makespan = sched.makespan(inst);

  const auto comm = busy_intervals(inst, sched, &TaskTimes::comm_start,
                                   &Task::comm);
  const auto comp = busy_intervals(inst, sched, &TaskTimes::comp_start,
                                   &Task::comp);
  for (const Task& t : inst) {
    out.link_busy += t.comm;
    out.proc_busy += t.comp;
  }
  out.link_idle = idle_within(comm, out.makespan);
  out.proc_idle = idle_within(comp, out.makespan);

  // Processor-starved time: idle processor intervals during which at least
  // one task's transfer was still running (its data was on the way).
  // Complement view: idle while the link is busy.
  const Time idle_and_link_busy =
      out.link_busy - overlap_length(comm, comp);
  out.proc_starved = std::max(0.0, idle_and_link_busy);

  out.overlap = out.link_busy <= 0.0
                    ? 0.0
                    : overlap_length(comm, comp) / out.link_busy;
  return out;
}

}  // namespace dts
