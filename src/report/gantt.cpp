#include "report/gantt.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "report/table.hpp"

namespace dts {

namespace {

/// One display letter per task: name initial when task names start with
/// distinct characters, else cycling A..Z by id.
std::vector<char> task_letters(const Instance& inst) {
  std::vector<char> letters(inst.size());
  bool distinct = !inst.empty();
  for (TaskId i = 0; i < inst.size() && distinct; ++i) {
    if (inst[i].name.empty()) distinct = false;
  }
  if (distinct) {
    std::vector<char> initials;
    for (TaskId i = 0; i < inst.size(); ++i) {
      initials.push_back(inst[i].name.front());
    }
    std::vector<char> sorted = initials;
    std::sort(sorted.begin(), sorted.end());
    distinct = std::adjacent_find(sorted.begin(), sorted.end()) == sorted.end();
    if (distinct) letters = initials;
  }
  if (!distinct) {
    for (TaskId i = 0; i < inst.size(); ++i) {
      letters[i] = static_cast<char>('A' + (i % 26));
    }
  }
  return letters;
}

void paint(std::string& lane, double t0, double t1, double scale, char c) {
  // Floor-based half-open cell ranges: disjoint time intervals can never
  // collide on a cell, so '#' genuinely flags overlapping work.
  const auto begin = static_cast<std::size_t>(std::floor(t0 * scale));
  const auto end = static_cast<std::size_t>(std::floor(t1 * scale));
  for (std::size_t p = begin; p < end && p < lane.size(); ++p) {
    lane[p] = (lane[p] == '.') ? c : '#';  // '#' marks impossible overlap
  }
}

/// Sub-cell work is marked only into free cells (after all full-size
/// intervals are painted), so a zero-length transfer sharing an instant
/// with a real one never reads as an overlap.
void paint_marker(std::string& lane, double t0, double scale, char c) {
  const auto cell = static_cast<std::size_t>(std::floor(t0 * scale));
  if (cell < lane.size() && lane[cell] == '.') lane[cell] = c;
}

}  // namespace

std::string render_gantt(const Instance& inst, const Schedule& sched,
                         const GanttOptions& options) {
  std::ostringstream os;
  if (inst.empty()) return "(empty schedule)\n";
  const Time makespan = sched.makespan(inst);
  if (makespan <= 0.0) return "(zero-length schedule)\n";

  const std::size_t width = std::max<std::size_t>(options.width, 16);
  const double scale = static_cast<double>(width) / makespan;
  const std::vector<char> letters = task_letters(inst);

  std::string comm_lane(width, '.');
  std::string comp_lane(width, '.');
  // Pass 1: full-size intervals (these detect real overlaps as '#').
  for (TaskId i = 0; i < inst.size(); ++i) {
    const TaskTimes& tt = sched[i];
    if (inst[i].comm > 0.0) {
      paint(comm_lane, tt.comm_start, tt.comm_start + inst[i].comm, scale,
            letters[i]);
    }
    if (inst[i].comp > 0.0) {
      paint(comp_lane, tt.comp_start, tt.comp_start + inst[i].comp, scale,
            letters[i]);
    }
  }
  // Pass 2: sub-cell work (zero-length or shorter than one cell) becomes
  // a marker, visible only where a cell is free.
  const auto spans_a_cell = [scale](Time start, Time len) {
    return std::floor(start * scale) < std::floor((start + len) * scale);
  };
  for (TaskId i = 0; i < inst.size(); ++i) {
    const TaskTimes& tt = sched[i];
    if (!spans_a_cell(tt.comm_start, inst[i].comm)) {
      paint_marker(comm_lane, tt.comm_start, scale, letters[i]);
    }
    if (!spans_a_cell(tt.comp_start, inst[i].comp)) {
      paint_marker(comp_lane, tt.comp_start, scale, letters[i]);
    }
  }

  os << "comm |" << comm_lane << "|\n";
  os << "comp |" << comp_lane << "|\n";
  os << "     0" << std::string(width > 12 ? width - 6 : 1, ' ')
     << format_seconds(makespan) << "\n";

  if (options.show_legend) {
    os << "tasks:";
    for (TaskId i = 0; i < inst.size(); ++i) {
      os << ' ' << letters[i] << '='
         << (inst[i].name.empty() ? "T" + std::to_string(i) : inst[i].name);
      if (i >= 11 && inst.size() > 12) {
        os << " ... (" << inst.size() << " tasks)";
        break;
      }
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace dts
