#include "report/csv.hpp"

#include <fstream>
#include <ostream>

namespace dts {

std::string csv_escape(const std::string& field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

void CsvWriter::row(std::span<const std::string> cells) {
  bool first = true;
  for (const auto& cell : cells) {
    if (!first) *out_ << ',';
    *out_ << csv_escape(cell);
    first = false;
  }
  *out_ << '\n';
}

void CsvWriter::row(std::initializer_list<std::string> cells) {
  row(std::span<const std::string>(cells.begin(), cells.size()));
}

void write_csv_file(const std::filesystem::path& path,
                    std::span<const std::string> header,
                    std::span<const std::vector<std::string>> rows) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("write_csv_file: cannot open " + path.string());
  }
  CsvWriter writer(out);
  writer.row(header);
  for (const auto& r : rows) writer.row(r);
  if (!out) {
    throw std::runtime_error("write_csv_file: write failed for " +
                             path.string());
  }
}

}  // namespace dts
