#pragma once

/// \file stats.hpp
/// Distribution summaries for the evaluation figures. The paper's Figs. 9
/// and 11 are boxplots over 150 per-process ratios: median, quartiles,
/// whiskers at the most extreme points within 1.5 IQR of the box, and
/// outliers beyond — the ggplot2 convention, reproduced here.

#include <cstddef>
#include <span>
#include <vector>

namespace dts {

/// Interpolated quantile (R type-7: linear between order statistics) of a
/// sorted, non-empty sample. q in [0, 1].
[[nodiscard]] double quantile_sorted(std::span<const double> sorted, double q);

struct BoxplotSummary {
  std::size_t n = 0;
  double min = 0.0;
  double q1 = 0.0;
  double median = 0.0;
  double q3 = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double stddev = 0.0;          ///< sample standard deviation (n-1)
  double whisker_low = 0.0;     ///< smallest value >= q1 - 1.5 IQR
  double whisker_high = 0.0;    ///< largest value <= q3 + 1.5 IQR
  std::vector<double> outliers; ///< values outside the whiskers

  [[nodiscard]] double iqr() const noexcept { return q3 - q1; }
};

/// Summarizes a sample (copied and sorted internally). Empty input yields
/// a zeroed summary with n == 0.
[[nodiscard]] BoxplotSummary summarize(std::vector<double> values);

}  // namespace dts
