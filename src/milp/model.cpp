#include "milp/model.hpp"

#include <cmath>

namespace dts::milp {

OrderModelBuilder::OrderModelBuilder(const CompiledInstance& ci,
                                     std::size_t grid, Time horizon0)
    : ci_(&ci) {
  const std::size_t n = ci.size();
  pairs_.reserve(n * (n - (n > 0 ? 1 : 0)) / 2);
  for (TaskId i = 0; i < n; ++i) {
    for (TaskId j = i + 1; j < n; ++j) pairs_.emplace_back(i, j);
  }
  model_comm_.resize(n);
  model_comp_.resize(n);
  const Time step = (grid > 0 && horizon0 > 0.0)
                        ? horizon0 / static_cast<Time>(grid)
                        : 0.0;
  for (TaskId i = 0; i < n; ++i) {
    model_comm_[i] = ci.comm(i);
    model_comp_[i] = ci.comp(i);
    if (step > 0.0) {
      // Snap *down*: a shortened duration can only weaken a row, so the
      // grid model stays a relaxation of the exact one.
      model_comm_[i] = std::floor(model_comm_[i] / step) * step;
      model_comp_[i] = std::floor(model_comp_[i] / step) * step;
    }
  }
}

LpRow& OrderModelBuilder::next_row(RowType type, double rhs) {
  if (rows_used_ == lp_.rows.size()) lp_.rows.emplace_back();
  LpRow& row = lp_.rows[rows_used_++];
  row.coeffs.assign(lp_.num_vars, 0.0);
  row.type = type;
  row.rhs = rhs;
  return row;
}

const LpProblem& OrderModelBuilder::emit(Time horizon,
                                         std::span<const std::int8_t> fixed,
                                         std::vector<std::size_t>& col_of) {
  const CompiledInstance& ci = *ci_;
  const std::size_t n = ci.size();
  const std::size_t n_pairs = pairs_.size();

  // Column layout: [s_0..s_{n-1} | c_0..c_{n-1} | M | unfixed pair vars].
  col_of.assign(num_pair_vars(), kNoColumn);
  std::size_t next_col = 2 * n + 1;
  for (std::size_t p = 0; p < num_pair_vars(); ++p) {
    if (fixed[p] < 0) col_of[p] = next_col++;
  }
  lp_.num_vars = next_col;
  lp_.objective.assign(lp_.num_vars, 0.0);
  lp_.objective[2 * n] = 1.0;  // minimize M
  rows_used_ = 0;

  const auto s_col = [](TaskId i) { return static_cast<std::size_t>(i); };
  const auto c_col = [n](TaskId i) { return n + static_cast<std::size_t>(i); };
  const std::size_t m_col = 2 * n;
  const double big_m = horizon;

  // Own-task precedence and makespan rows.
  for (TaskId i = 0; i < n; ++i) {
    LpRow& prec = next_row(RowType::kGe, model_comm_[i]);
    prec.coeffs[c_col(i)] = 1.0;
    prec.coeffs[s_col(i)] = -1.0;
    LpRow& mk = next_row(RowType::kGe, model_comp_[i]);
    mk.coeffs[m_col] = 1.0;
    mk.coeffs[c_col(i)] = -1.0;
  }
  // Any schedule worth finding beats the incumbent horizon.
  {
    LpRow& cap = next_row(RowType::kLe, horizon);
    cap.coeffs[m_col] = 1.0;
  }

  // One disjunction per pair variable. `first`/`second` are the lags the
  // two branches impose: for a-variables a same-channel pair serializes
  // on its engine, a cross-channel pair is only ordered chronologically;
  // b-variables always serialize on the single processor.
  const auto emit_pair = [&](std::size_t pv, std::size_t xi, std::size_t xj,
                             double lag_i, double lag_j) {
    const std::int8_t fix = fixed[pv];
    if (fix == 1) {  // i precedes j
      LpRow& row = next_row(RowType::kGe, lag_i);
      row.coeffs[xj] = 1.0;
      row.coeffs[xi] = -1.0;
    } else if (fix == 0) {  // j precedes i
      LpRow& row = next_row(RowType::kGe, lag_j);
      row.coeffs[xi] = 1.0;
      row.coeffs[xj] = -1.0;
    } else {
      const std::size_t q = col_of[pv];
      // x_j - x_i + H (1 - q) >= lag_i   (active when q -> 1)
      LpRow& one = next_row(RowType::kGe, lag_i - big_m);
      one.coeffs[xj] = 1.0;
      one.coeffs[xi] = -1.0;
      one.coeffs[q] = -big_m;
      // x_i - x_j + H q >= lag_j          (active when q -> 0)
      LpRow& zero = next_row(RowType::kGe, lag_j);
      zero.coeffs[xi] = 1.0;
      zero.coeffs[xj] = -1.0;
      zero.coeffs[q] = big_m;
      LpRow& ub = next_row(RowType::kLe, 1.0);
      ub.coeffs[q] = 1.0;
    }
  };

  for (std::size_t p = 0; p < n_pairs; ++p) {
    const auto [i, j] = pairs_[p];
    const bool same_channel = ci.channel(i) == ci.channel(j);
    emit_pair(p, s_col(i), s_col(j), same_channel ? model_comm_[i] : 0.0,
              same_channel ? model_comm_[j] : 0.0);
    emit_pair(n_pairs + p, c_col(i), c_col(j), model_comp_[i],
              model_comp_[j]);
  }

  // Linear-ordering triangle cuts, both order families: for i < j < k,
  // q_ij + q_jk - q_ik in [0, 1] (transitivity of "precedes"). Valid for
  // every permutation decode, and the decisive tightener of the big-M
  // relaxation — without them the fractional interior hides behind
  // q = 1/2 everywhere. Fixed variables substitute into the rhs; a cut
  // whose variables are all fixed is the driver's propagation business.
  const auto emit_triangle = [&](std::size_t offset) {
    const std::size_t n_size = n;
    for (TaskId i = 0; i < n_size; ++i) {
      for (TaskId j = i + 1; j < n_size; ++j) {
        for (TaskId k = j + 1; k < n_size; ++k) {
          const std::size_t pv[3] = {offset + pair_index(i, j),
                                     offset + pair_index(j, k),
                                     offset + pair_index(i, k)};
          const double coeff[3] = {1.0, 1.0, -1.0};
          for (int upper = 0; upper < 2; ++upper) {
            double rhs = upper ? 1.0 : 0.0;
            const double sign = upper ? 1.0 : -1.0;
            bool any_free = false;
            for (int t = 0; t < 3; ++t) {
              if (fixed[pv[t]] >= 0) {
                rhs -= sign * coeff[t] * static_cast<double>(fixed[pv[t]]);
              } else {
                any_free = true;
              }
            }
            if (!any_free) continue;
            LpRow& row = next_row(RowType::kLe, rhs);
            for (int t = 0; t < 3; ++t) {
              if (fixed[pv[t]] < 0) {
                row.coeffs[col_of[pv[t]]] = sign * coeff[t];
              }
            }
          }
        }
      }
    }
  };
  emit_triangle(0);
  emit_triangle(n_pairs);

  lp_.rows.resize(rows_used_);
  return lp_;
}

}  // namespace dts::milp
