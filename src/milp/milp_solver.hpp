#pragma once

/// \file milp_solver.hpp
/// Self-contained 0-1 MILP solver for the transfer-ordering formulation
/// (model.hpp): best-first branch-and-bound over the fractional order
/// binaries, LP-relaxation node bounds from the dense simplex core
/// (simplex.hpp), incumbents warm-started from the heuristic registry,
/// and `PairOrderOptions`-style deadline / cancellation hooks.
///
/// Exactness contract: every integral node is *decoded* into a (global
/// transfer order, computation order) pair and scored through the
/// engine's `simulate_pair_order` co-simulation — the same finite value
/// set `best_pair_order` minimizes over, with the same `definitely_less`
/// incumbent discipline. A finished search (tree exhausted, or the
/// incumbent reached a proven lower bound) therefore returns a makespan
/// within kEps of branch-bound's on the same instance — bitwise equal
/// whenever the optimum is uniquely attained (the two searches may keep
/// different equally-optimal schedules whose start-time sums round
/// differently in the last bits) — with `proved_optimal` set and
/// `lower_bound == makespan`. A search stopped
/// by the deadline, cancellation or the node budget returns its best
/// incumbent (always a complete feasible schedule) with the strongest
/// bound it established (max of the caller's bound and the root
/// relaxation) and `proved_optimal` false.

#include <cstdint>
#include <functional>
#include <vector>

#include "core/instance.hpp"
#include "core/schedule.hpp"

namespace dts {

struct MilpOptions {
  /// Safety valve on instance size (the binary space is 2^(n(n-1))).
  std::size_t max_n = 7;
  /// Grid resolution T of the bound model (milp:T): 0 = exact durations,
  /// T > 0 snaps model durations down onto a T-step grid anchored at the
  /// warm-start horizon. Result-affecting only through the schedule a
  /// budget-stopped search happens to have reached — a finished search
  /// returns the same proved-optimal makespan for every T.
  std::size_t grid = 0;
  /// Branch-and-bound node budget (pops). Exhausting it returns the
  /// incumbent with proved_optimal false — the anytime contract.
  std::uint64_t max_nodes = 20000;
  /// Optional proven makespan lower bound (e.g.
  /// capacity_aware_bounds(...).combined): an incumbent reaching it ends
  /// the search with optimality proven. 0 disables the early exit.
  Time lower_bound = 0.0;
  /// Cooperative stop (deadline / cancellation): polled once per node
  /// pop; returning true abandons the search, keeping the incumbent.
  std::function<bool()> should_stop;
};

struct MilpResult {
  Time makespan = kInfiniteTime;
  Schedule schedule;
  /// Global chronological transfer order / computation order of the
  /// incumbent (engine decode, see milp/model.hpp).
  std::vector<TaskId> comm_order;
  std::vector<TaskId> comp_order;
  /// Strongest proven bound: the makespan itself when proved_optimal,
  /// otherwise max(options.lower_bound, root LP relaxation).
  Time lower_bound = 0.0;
  bool proved_optimal = false;
  /// options.should_stop fired (node-budget exhaustion does NOT set
  /// this; it clears proved_optimal only).
  bool stopped = false;
  std::uint64_t nodes_explored = 0;   ///< Node pops (LP solves <= this).
  std::uint64_t leaves_scored = 0;    ///< Rounding decodes co-simulated.
  std::uint64_t lp_pivots = 0;        ///< Simplex pivots, all nodes.
};

/// Solves the ordering MILP exactly (subject to the anytime knobs above).
/// Throws std::invalid_argument when the instance exceeds options.max_n
/// or some task cannot fit in `capacity`.
[[nodiscard]] MilpResult solve_order_milp(const Instance& inst, Mem capacity,
                                          const MilpOptions& options = {});

}  // namespace dts
