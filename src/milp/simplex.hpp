#pragma once

/// \file simplex.hpp
/// Dense two-phase primal simplex — the LP core of the self-contained
/// 0-1 MILP backend (src/milp/). No external solver dependency.
///
/// Determinism is a hard requirement here (src/milp/ is result-affecting
/// code under tools/dts_lint.py): pivoting uses Bland's rule throughout —
/// the entering column is the *lowest-index* variable with a negative
/// reduced cost, the leaving row breaks min-ratio ties toward the
/// lowest-index basic variable — which both guarantees termination
/// (no cycling, even on degenerate vertices) and makes every solve a pure
/// function of the tableau, independent of iteration history or memory
/// layout.
///
/// The problems this core sees are tiny (a branch-and-bound node of an
/// n <= 7 ordering model is ~60 rows x ~50 columns), so a dense tableau
/// beats a revised implementation on both simplicity and constant factor.
/// SimplexSolver keeps its tableau buffers across solves so the
/// branch-and-bound hot loop performs no steady-state allocation.

#include <cstdint>
#include <vector>

namespace dts::milp {

enum class LpStatus {
  kOptimal,
  kInfeasible,
  kUnbounded,
  /// Safety valve only: Bland's rule terminates, so hitting the pivot cap
  /// means the cap was set far too low for the model size. Callers treat
  /// the solve as "no usable bound".
  kPivotLimit,
};

enum class RowType { kLe, kGe, kEq };

/// One constraint: coeffs . x (<=|>=|==) rhs over x >= 0.
struct LpRow {
  std::vector<double> coeffs;  ///< Dense, size = LpProblem::num_vars.
  RowType type = RowType::kLe;
  double rhs = 0.0;
};

/// minimize objective . x  subject to rows, x >= 0.
struct LpProblem {
  std::size_t num_vars = 0;
  std::vector<double> objective;  ///< Dense, size num_vars.
  std::vector<LpRow> rows;

  void clear() noexcept {
    num_vars = 0;
    objective.clear();
    rows.clear();
  }
};

struct LpSolution {
  LpStatus status = LpStatus::kInfeasible;
  double objective = 0.0;           ///< Valid when kOptimal.
  std::vector<double> x;            ///< Primal point, size num_vars.
  std::uint64_t pivots = 0;
};

/// Reusable dense-tableau solver. One instance may be reused across any
/// number of solves (buffers persist); it is not thread-safe — each
/// branch-and-bound search owns its own.
class SimplexSolver {
 public:
  /// Two-phase solve. `max_pivots` bounds phase 1 + phase 2 together.
  [[nodiscard]] LpSolution solve(const LpProblem& problem,
                                 std::uint64_t max_pivots = 200000);

 private:
  /// Bland pricing + ratio test + pivot on the current tableau rows
  /// [0, m) with objective row m, restricted to columns [0, limit).
  /// Returns the terminal status of the phase.
  [[nodiscard]] LpStatus run_phase(std::size_t limit, std::uint64_t max_pivots);
  void pivot(std::size_t row, std::size_t col);

  [[nodiscard]] double& at(std::size_t row, std::size_t col) noexcept {
    return tableau_[row * stride_ + col];
  }

  std::size_t m_ = 0;       ///< Constraint rows.
  std::size_t n_ = 0;       ///< Total columns (structural + slack + artificial).
  std::size_t stride_ = 0;  ///< n_ + 1 (rhs column).
  std::vector<double> tableau_;  ///< (m_ + 1) x stride_; row m_ = objective.
  std::vector<std::size_t> basis_;
  std::uint64_t pivots_ = 0;
};

}  // namespace dts::milp
