#include "milp/milp_solver.hpp"

#include <algorithm>
#include <optional>
#include <queue>
#include <stdexcept>
#include <string>
#include <utility>

#include "core/compiled.hpp"
#include "core/registry.hpp"
#include "core/simulate.hpp"
#include "exact/branch_bound.hpp"
#include "milp/model.hpp"
#include "milp/simplex.hpp"
#include "support/contract.hpp"

namespace dts {
namespace {

/// A pair variable whose LP value is within this of 0 or 1 counts as
/// integral. Far above the simplex pivot tolerance, far below 1/2.
constexpr double kIntegralityTol = 1e-6;

struct Node {
  /// Best known lower bound when created (the parent's LP bound): a
  /// valid optimistic priority, refined by this node's own LP at pop.
  double bound = 0.0;
  std::uint64_t id = 0;  ///< Creation order; the deterministic tie-break.
  std::vector<std::int8_t> fixed;
};

/// Best-first on the bound; ties pop the *youngest* node (LIFO), so runs
/// of equal bounds — common under the big-M relaxation, whose bound only
/// sharpens once fixings accumulate — are explored depth-first, diving to
/// closable subtrees instead of flooding the queue breadth-first. The pop
/// sequence stays a pure function of the instance.
struct NodeOrder {
  [[nodiscard]] bool operator()(const Node& a, const Node& b) const noexcept {
    if (a.bound != b.bound) return a.bound > b.bound;
    return a.id < b.id;
  }
};

/// Deterministic decode of a pair-variable assignment into a total
/// order: repeatedly emit the lowest-id task with no unemitted
/// predecessor. The relaxation cannot rule out cyclic tournaments on
/// zero-lag (cross-channel) pairs; a cycle falls back to the lowest-id
/// unemitted task and clears `consistent` — the decoded pair is still a
/// valid candidate schedule, it just does not witness this node's bound
/// (so the bound audit skips it).
template <typename Precedes>
std::vector<TaskId> decode_order(std::size_t n, const Precedes& precedes,
                                 bool& consistent) {
  std::vector<TaskId> order;
  order.reserve(n);
  std::vector<char> placed(n, 0);
  for (std::size_t step = 0; step < n; ++step) {
    TaskId pick = static_cast<TaskId>(n);
    for (TaskId j = 0; j < n; ++j) {
      if (placed[j]) continue;
      bool source = true;
      for (TaskId i = 0; i < n && source; ++i) {
        if (i == j || placed[i]) continue;
        const bool i_first = i < j ? precedes(i, j) : !precedes(j, i);
        if (i_first) source = false;
      }
      if (source) {
        pick = j;
        break;
      }
    }
    if (pick == static_cast<TaskId>(n)) {
      consistent = false;
      for (TaskId j = 0; j < n; ++j) {
        if (!placed[j]) {
          pick = j;
          break;
        }
      }
    }
    placed[pick] = 1;
    order.push_back(pick);
  }
  return order;
}

/// Transitive-closure propagation of order fixings, one family at a
/// time (offset 0 = transfer order, offset n_pairs = computation
/// order). Every engine-feasible decode is a permutation pair, so
/// "precedes" is transitive within a family: fixings imply fixings, and
/// a directed cycle among fixed pairs proves the subtree holds no
/// permutation decode at all. Returns false on such a contradiction.
bool propagate_closure(std::size_t n, std::size_t n_pairs,
                       const milp::OrderModelBuilder& builder,
                       std::vector<std::int8_t>& fixed) {
  for (const std::size_t offset : {std::size_t{0}, n_pairs}) {
    const auto before = [&](TaskId i, TaskId j) -> int {
      const std::int8_t q = i < j
                                ? fixed[offset + builder.pair_index(i, j)]
                                : fixed[offset + builder.pair_index(j, i)];
      if (q < 0) return -1;
      return i < j ? q : 1 - q;
    };
    bool changed = true;
    while (changed) {
      changed = false;
      for (TaskId i = 0; i < n; ++i) {
        for (TaskId j = 0; j < n; ++j) {
          if (i == j || before(i, j) != 1) continue;
          for (TaskId k = 0; k < n; ++k) {
            if (k == i || k == j || before(j, k) != 1) continue;
            std::int8_t& q =
                i < k ? fixed[offset + builder.pair_index(i, k)]
                      : fixed[offset + builder.pair_index(k, i)];
            const std::int8_t want = i < k ? std::int8_t{1} : std::int8_t{0};
            if (q == want) continue;
            if (q >= 0) return false;  // cycle: i < j < k but k <= i fixed
            q = want;
            changed = true;
          }
        }
      }
    }
  }
  return true;
}

struct Incumbent {
  Time makespan = kInfiniteTime;
  Schedule schedule;
  std::vector<TaskId> comm_order;
  std::vector<TaskId> comp_order;
};

/// Scores (comm, comp) through the engine co-simulation and adopts it
/// when it definitely improves — the exact incumbent discipline of
/// best_pair_order, so accepted values come from the same finite set.
bool try_improve(const Instance& inst, Mem capacity,
                 const ExecutionState::Snapshot& fresh,
                 std::span<const TaskId> comm, std::span<const TaskId> comp,
                 Incumbent& best, Schedule& scratch) {
  const std::optional<Time> ms = simulate_pair_order(
      inst, comm, comp, capacity, fresh, best.makespan, scratch);
  if (!ms) return false;
  if (best.makespan != kInfiniteTime && !definitely_less(*ms, best.makespan)) {
    return false;
  }
  best.makespan = *ms;
  best.schedule = scratch;
  best.comm_order.assign(comm.begin(), comm.end());
  best.comp_order.assign(comp.begin(), comp.end());
  return true;
}

}  // namespace

MilpResult solve_order_milp(const Instance& inst, Mem capacity,
                            const MilpOptions& options) {
  const std::size_t n = inst.size();
  if (n > options.max_n) {
    throw std::invalid_argument(
        "milp: instance of " + std::to_string(n) +
        " tasks exceeds max_n = " + std::to_string(options.max_n));
  }
  if (inst.has_dependencies()) {
    // The order-binary model carries no precedence rows, so its LP bounds
    // would be invalid on a DAG; solve() rejects this before reaching
    // here (SolverDeps::kIndependent), direct callers get the same error.
    throw std::invalid_argument(
        "milp: the model has no precedence constraints; the instance "
        "declares dependency edges (use branch-bound or exhaustive)");
  }
  MilpResult result;
  if (n == 0) {
    result.makespan = 0.0;
    result.schedule = Schedule(0);
    result.proved_optimal = true;
    return result;
  }
  if (definitely_less(capacity, inst.min_capacity())) {
    throw std::invalid_argument("milp: a task exceeds the memory capacity");
  }

  ExecutionState::Snapshot fresh;
  fresh.comm_available.assign(inst.num_channels(), 0.0);

  // Warm start: decode every registry heuristic's schedule into its
  // (comm, comp) order pair and co-simulate it — the semi-active
  // co-simulation of a feasible schedule's orders is feasible and never
  // later, so this always yields an incumbent at least as good as the
  // best heuristic.
  Incumbent best;
  Schedule scratch(n);
  for (HeuristicId id : all_heuristic_ids()) {
    const Schedule s = run_heuristic(id, inst, capacity);
    try_improve(inst, capacity, fresh, s.comm_order(), s.comp_order(), best,
                scratch);
  }
  if (best.makespan == kInfiniteTime) {
    const std::vector<TaskId> sub = inst.submission_order();
    try_improve(inst, capacity, fresh, sub, sub, best, scratch);
  }

  const Time ext_lb = options.lower_bound;
  const auto finish = [&](bool proved, Time root_bound) {
    result.makespan = best.makespan;
    result.schedule = best.schedule;
    result.comm_order = best.comm_order;
    result.comp_order = best.comp_order;
    result.proved_optimal = proved;
    result.lower_bound =
        proved ? best.makespan
               : std::min(best.makespan, std::max(ext_lb, root_bound));
    return result;
  };
  if (ext_lb > 0.0 && approx_leq(best.makespan, ext_lb)) {
    // The warm start already reached a proven bound.
    return finish(/*proved=*/true, ext_lb);
  }

  const CompiledInstance ci(inst);
  milp::OrderModelBuilder builder(ci, options.grid, best.makespan);
  milp::SimplexSolver simplex;
  const std::size_t n_pairs = builder.num_pairs();
  const std::size_t n_pair_vars = builder.num_pair_vars();
  std::vector<std::size_t> col_of;

  const auto pair_index = [&builder](TaskId i, TaskId j) {
    return builder.pair_index(i, j);
  };

  std::priority_queue<Node, std::vector<Node>, NodeOrder> open;
  std::uint64_t next_id = 0;
  {
    Node root;
    root.bound = std::max(0.0, ext_lb);
    root.id = next_id++;
    root.fixed.assign(n_pair_vars, -1);
    open.push(std::move(root));
  }

  const auto stop_requested = [&options] {
    return options.should_stop && options.should_stop();
  };

  Time root_bound = 0.0;
  bool proved_early = false;
  bool over_budget = false;

  while (!open.empty()) {
    if (stop_requested()) {
      result.stopped = true;
      break;
    }
    if (result.nodes_explored >= options.max_nodes) {
      over_budget = true;
      break;
    }
    const Node node = open.top();
    open.pop();
    ++result.nodes_explored;
    if (!definitely_less(node.bound, best.makespan)) continue;

    const milp::LpProblem& lp =
        builder.emit(best.makespan, node.fixed, col_of);
    const milp::LpSolution sol = simplex.solve(lp);
    result.lp_pivots += sol.pivots;
    if (sol.status == milp::LpStatus::kInfeasible) continue;
    // kUnbounded cannot happen (M is minimized and bounded below by the
    // makespan rows); kPivotLimit keeps the inherited bound.
    double bound = node.bound;
    const bool have_lp = sol.status == milp::LpStatus::kOptimal;
    if (have_lp) {
      bound = std::max(bound, sol.objective);
      if (node.id == 0) root_bound = sol.objective;
      if (!definitely_less(bound, best.makespan)) continue;
    }

    // Rounded value of pair variable p under this node's LP solution.
    const auto pair_rounded = [&](std::size_t p) -> int {
      if (node.fixed[p] >= 0) return node.fixed[p];
      return sol.x[col_of[p]] >= 0.5 ? 1 : 0;
    };

    bool integral = have_lp;
    if (have_lp) {
      for (std::size_t p = 0; integral && p < n_pair_vars; ++p) {
        if (node.fixed[p] >= 0) continue;
        const double v = sol.x[col_of[p]];
        integral = std::min(v, 1.0 - v) <= kIntegralityTol;
      }
      // Rounding decode at *every* LP node, not only integral ones: a
      // cheap engine co-simulation per node that keeps the incumbent
      // tight enough for pruning (and the lower-bound early exit) to
      // bite under the big-M relaxation's weak fractional bounds.
      bool consistent = true;
      const std::vector<TaskId> comm = decode_order(
          n,
          [&](TaskId i, TaskId j) {
            return pair_rounded(pair_index(i, j)) == 1;
          },
          consistent);
      const std::vector<TaskId> comp = decode_order(
          n,
          [&](TaskId i, TaskId j) {
            return pair_rounded(n_pairs + pair_index(i, j)) == 1;
          },
          consistent);
      ++result.leaves_scored;
      const std::optional<Time> ms = simulate_pair_order(
          inst, comm, comp, capacity, fresh, best.makespan, scratch);
      if (ms) {
        // The relaxation-soundness contract: a node's LP bound never
        // exceeds the engine makespan of an integral decode honoring its
        // tournament (a rounded fractional decode witnesses nothing).
        DTS_AUDIT(!(integral && consistent) || approx_leq(bound, *ms),
                  "milp: node relaxation bound exceeds its leaf's engine "
                  "makespan");
        if (definitely_less(*ms, best.makespan)) {
          best.makespan = *ms;
          best.schedule = scratch;
          best.comm_order = comm;
          best.comp_order = comp;
          if (ext_lb > 0.0 && approx_leq(best.makespan, ext_lb)) {
            proved_early = true;
            break;
          }
        }
      }
    }

    // Branch: most fractional pair variable (ties to the lowest index);
    // an integral-but-unfixed node still branches — its LP happened to
    // sit at one assignment, but the engine makespans of the others in
    // this subtree are not bounded by that assignment's score.
    std::size_t branch_var = n_pair_vars;
    if (have_lp) {
      double best_frac = kIntegralityTol;
      for (std::size_t p = 0; p < n_pair_vars; ++p) {
        if (node.fixed[p] >= 0) continue;
        const double v = sol.x[col_of[p]];
        const double frac = std::min(v, 1.0 - v);
        if (frac > best_frac) {
          best_frac = frac;
          branch_var = p;
        }
      }
    }
    if (branch_var == n_pair_vars) {
      for (std::size_t p = 0; p < n_pair_vars; ++p) {
        if (node.fixed[p] < 0) {
          branch_var = p;
          break;
        }
      }
    }
    if (branch_var == n_pair_vars) continue;  // true leaf: fully fixed
    // Push the LP-rounded direction last: LIFO tie-breaking pops it
    // first, so the dive follows the relaxation's preference.
    const std::int8_t preferred =
        have_lp ? static_cast<std::int8_t>(pair_rounded(branch_var))
                : std::int8_t{1};
    for (const std::int8_t v :
         {static_cast<std::int8_t>(1 - preferred), preferred}) {
      Node child;
      child.bound = bound;
      child.id = next_id++;
      child.fixed = node.fixed;
      child.fixed[branch_var] = v;
      // Propagate transitivity; a contradicted child holds no
      // permutation decode and is never pushed.
      if (!propagate_closure(n, n_pairs, builder, child.fixed)) continue;
      open.push(std::move(child));
    }
  }

  DTS_AUDIT(approx_leq(root_bound, best.makespan),
            "milp: root relaxation bound exceeds the incumbent");
  const bool proved =
      proved_early || (!result.stopped && !over_budget && open.empty());
  return finish(proved, root_bound);
}

}  // namespace dts
