#pragma once

/// \file model.hpp
/// The paper's §4.5 ordering MILP, generalized to per-channel copy
/// engines and emitted from `CompiledInstance` (the SoA view — model
/// build never touches `Instance`'s per-task strings, and the emitter
/// reuses its row/coefficient buffers so the branch-and-bound loop does
/// no steady-state allocation).
///
/// Variables (continuous part): one transfer start s_i and one
/// computation start c_i per task, plus the makespan M. Binary part: for
/// every unordered task pair {i, j} (i < j) an a-variable ("transfer of
/// i precedes j in the *global chronological* transfer order") and a
/// b-variable ("computation of i precedes j"). These are exactly the
/// paper's independent a_ij / b_ij order variables; the per-channel
/// generalization shows up in the a-constraints: a same-channel pair
/// serializes on its copy engine (s_j >= s_i + comm_i), a cross-channel
/// pair is only ordered chronologically (s_j >= s_i) — the global order
/// is what the engine's memory frontier commits in.
///
/// The LP relaxation drops the memory capacity entirely, which keeps it
/// a true relaxation of every engine-feasible schedule (start times of
/// any feasible schedule satisfy all rows); memory is enforced exactly
/// when the branch-and-bound driver scores an integral leaf through the
/// engine co-simulation (`simulate_pair_order`). Unfixed binaries relax
/// to [0, 1] with big-M disjunctions, where H is the current incumbent
/// makespan (any schedule worth finding satisfies M <= H, so H is a
/// valid horizon and the tightest safe big-M).
///
/// Grid variants (`milp:T`): model durations are snapped *down* onto a
/// T-step grid anchored at the warm-start horizon. Rounding down keeps
/// every row a relaxation (bounds stay sound, only weaker), so the
/// schedule returned and the optimality proof are unaffected — coarser
/// grids trade bound strength for cheaper, sparser tableaux.

#include <cstdint>
#include <span>
#include <vector>

#include "core/compiled.hpp"
#include "milp/simplex.hpp"

namespace dts::milp {

/// Sentinel for "pair variable not in the LP" (fixed by branching).
inline constexpr std::size_t kNoColumn = static_cast<std::size_t>(-1);

class OrderModelBuilder {
 public:
  /// `grid` = 0 keeps exact durations; T > 0 snaps model durations down
  /// to multiples of horizon0 / T. `horizon0` anchors the grid once (the
  /// warm-start incumbent), so the model is a pure function of the
  /// instance and the fixing — it never shifts as the incumbent improves.
  OrderModelBuilder(const CompiledInstance& ci, std::size_t grid,
                    Time horizon0);

  /// Unordered pairs {i, j}, i < j, in lexicographic order. Pair-variable
  /// index p in [0, num_pairs()) is the a-variable of pairs()[p]; index
  /// num_pairs() + p is its b-variable.
  [[nodiscard]] std::size_t num_pairs() const noexcept {
    return pairs_.size();
  }
  [[nodiscard]] std::size_t num_pair_vars() const noexcept {
    return 2 * pairs_.size();
  }
  [[nodiscard]] std::pair<TaskId, TaskId> pair(std::size_t p) const noexcept {
    return pairs_[p];
  }
  /// Lexicographic pair index of {i, j}; requires i < j.
  [[nodiscard]] std::size_t pair_index(TaskId i, TaskId j) const noexcept {
    const std::size_t n = ci_->size();
    return static_cast<std::size_t>(i) * n -
           static_cast<std::size_t>(i) * (i + 1) / 2 + (j - i - 1);
  }

  /// Emits the LP relaxation under `fixed` (size num_pair_vars(); -1 =
  /// free in [0,1], 0/1 = fixed by branching) with horizon H =
  /// `horizon` (big-M and the M <= H row). Fills `col_of` (resized to
  /// num_pair_vars()) with each pair variable's LP column, kNoColumn for
  /// fixed ones. The returned reference stays owned by the builder and
  /// is invalidated by the next emit.
  [[nodiscard]] const LpProblem& emit(Time horizon,
                                      std::span<const std::int8_t> fixed,
                                      std::vector<std::size_t>& col_of);

 private:
  /// Appends (or reuses) a zeroed row sized to the current num_vars.
  [[nodiscard]] LpRow& next_row(RowType type, double rhs);

  const CompiledInstance* ci_;
  std::vector<std::pair<TaskId, TaskId>> pairs_;
  std::vector<Time> model_comm_;  ///< Grid-snapped transfer durations.
  std::vector<Time> model_comp_;  ///< Grid-snapped computation durations.
  LpProblem lp_;
  std::size_t rows_used_ = 0;
};

}  // namespace dts::milp
