#include "milp/simplex.hpp"

#include <cmath>
#include <stdexcept>

namespace dts::milp {

namespace {

/// Pivot / reduced-cost tolerance. The ordering models are well scaled
/// (coefficients are task durations and a makespan-sized big-M), so one
/// absolute tolerance serves both roles.
constexpr double kTol = 1e-9;

}  // namespace

void SimplexSolver::pivot(std::size_t row, std::size_t col) {
  const double p = at(row, col);
  const double inv = 1.0 / p;
  for (std::size_t j = 0; j <= n_; ++j) at(row, j) *= inv;
  at(row, col) = 1.0;  // kill the residual rounding error at the pivot
  for (std::size_t i = 0; i <= m_; ++i) {
    if (i == row) continue;
    const double f = at(i, col);
    if (f == 0.0) continue;
    for (std::size_t j = 0; j <= n_; ++j) at(i, j) -= f * at(row, j);
    at(i, col) = 0.0;
  }
  basis_[row] = col;
  ++pivots_;
}

LpStatus SimplexSolver::run_phase(std::size_t limit, std::uint64_t max_pivots) {
  for (;;) {
    if (pivots_ >= max_pivots) return LpStatus::kPivotLimit;
    // Bland entering rule: lowest-index column with negative reduced cost.
    std::size_t enter = limit;
    for (std::size_t j = 0; j < limit; ++j) {
      if (at(m_, j) < -kTol) {
        enter = j;
        break;
      }
    }
    if (enter == limit) return LpStatus::kOptimal;
    // Ratio test; ties toward the lowest-index basic variable (Bland).
    std::size_t leave = m_;
    double best_ratio = 0.0;
    for (std::size_t i = 0; i < m_; ++i) {
      const double a = at(i, enter);
      if (a <= kTol) continue;
      const double ratio = at(i, n_) / a;
      if (leave == m_ || ratio < best_ratio - kTol ||
          (ratio < best_ratio + kTol && basis_[i] < basis_[leave])) {
        leave = i;
        best_ratio = ratio;
      }
    }
    if (leave == m_) return LpStatus::kUnbounded;
    pivot(leave, enter);
  }
}

LpSolution SimplexSolver::solve(const LpProblem& problem,
                                std::uint64_t max_pivots) {
  const std::size_t nv = problem.num_vars;
  const std::size_t m = problem.rows.size();
  if (problem.objective.size() != nv) {
    throw std::invalid_argument("simplex: objective size != num_vars");
  }
  for (const LpRow& row : problem.rows) {
    if (row.coeffs.size() != nv) {
      throw std::invalid_argument("simplex: row size != num_vars");
    }
  }

  // Column layout: [structural | slack/surplus (one per inequality) |
  // artificial (one per >= / == row, and per <= row with negative rhs
  // after normalization)]. Count them first.
  std::size_t n_slack = 0;
  std::size_t n_art = 0;
  for (const LpRow& row : problem.rows) {
    const bool flip = row.rhs < 0.0;
    RowType t = row.type;
    if (flip && t != RowType::kEq) {
      t = t == RowType::kLe ? RowType::kGe : RowType::kLe;
    }
    if (t != RowType::kEq) ++n_slack;
    if (t != RowType::kLe) ++n_art;
  }

  m_ = m;
  n_ = nv + n_slack + n_art;
  stride_ = n_ + 1;
  tableau_.assign((m_ + 1) * stride_, 0.0);
  basis_.assign(m_, 0);
  pivots_ = 0;

  // Fill rows, normalized to rhs >= 0.
  std::size_t slack_col = nv;
  std::size_t art_col = nv + n_slack;
  const std::size_t first_art = art_col;
  for (std::size_t i = 0; i < m; ++i) {
    const LpRow& row = problem.rows[i];
    const bool flip = row.rhs < 0.0;
    const double sign = flip ? -1.0 : 1.0;
    for (std::size_t j = 0; j < nv; ++j) at(i, j) = sign * row.coeffs[j];
    at(i, n_) = sign * row.rhs;
    RowType t = row.type;
    if (flip && t != RowType::kEq) {
      t = t == RowType::kLe ? RowType::kGe : RowType::kLe;
    }
    if (t != RowType::kEq) {
      at(i, slack_col) = t == RowType::kLe ? 1.0 : -1.0;
      if (t == RowType::kLe) basis_[i] = slack_col;
      ++slack_col;
    }
    if (t != RowType::kLe) {
      at(i, art_col) = 1.0;
      basis_[i] = art_col;
      ++art_col;
    }
  }

  LpSolution out;

  // Phase 1: minimize the sum of artificials. The phase-1 objective row
  // is the negated sum of the artificial-basic rows (so basic columns
  // price to zero, the invariant pivoting preserves).
  if (n_art > 0) {
    for (std::size_t i = 0; i < m_; ++i) {
      if (basis_[i] < first_art) continue;
      for (std::size_t j = 0; j <= n_; ++j) at(m_, j) -= at(i, j);
    }
    // Price only real columns: an artificial driven out of the basis must
    // never re-enter (its omitted +1 cost would make it spuriously
    // attractive and mask infeasibility by pivoting to a != 0 "optimum").
    const LpStatus phase1 = run_phase(first_art, max_pivots);
    if (phase1 == LpStatus::kPivotLimit) {
      out.status = LpStatus::kPivotLimit;
      out.pivots = pivots_;
      return out;
    }
    // phase1 objective value = -at(m_, n_); > 0 means infeasible.
    if (-at(m_, n_) > 1e-7) {
      out.status = LpStatus::kInfeasible;
      out.pivots = pivots_;
      return out;
    }
    // Drive any artificial still basic (at zero) out of the basis, or
    // drop its row if it is redundant.
    for (std::size_t i = 0; i < m_; ++i) {
      if (basis_[i] < first_art) continue;
      std::size_t col = first_art;
      for (std::size_t j = 0; j < first_art; ++j) {
        if (std::abs(at(i, j)) > kTol) {
          col = j;
          break;
        }
      }
      if (col < first_art) {
        pivot(i, col);
      } else {
        // Redundant row: zero it so it can never constrain phase 2.
        for (std::size_t j = 0; j <= n_; ++j) at(i, j) = 0.0;
      }
    }
  }

  // Phase 2: real objective, artificial columns excluded from pricing.
  // Rebuild the objective row priced against the current basis.
  for (std::size_t j = 0; j <= n_; ++j) at(m_, j) = 0.0;
  for (std::size_t j = 0; j < nv; ++j) at(m_, j) = problem.objective[j];
  for (std::size_t i = 0; i < m_; ++i) {
    const std::size_t b = basis_[i];
    if (b >= nv) continue;
    const double c = problem.objective[b];
    if (c == 0.0) continue;
    for (std::size_t j = 0; j <= n_; ++j) at(m_, j) -= c * at(i, j);
  }
  const LpStatus phase2 = run_phase(first_art, max_pivots);
  out.pivots = pivots_;
  if (phase2 != LpStatus::kOptimal) {
    out.status = phase2;
    return out;
  }
  out.status = LpStatus::kOptimal;
  out.objective = -at(m_, n_);
  out.x.assign(nv, 0.0);
  for (std::size_t i = 0; i < m_; ++i) {
    if (basis_[i] < nv) out.x[basis_[i]] = at(i, n_);
  }
  return out;
}

}  // namespace dts::milp
