#pragma once

/// \file three_stage.hpp
/// The general problem the paper frames and then sets aside (§3): tasks
/// with *output* transfers. "Order of task execution with input and
/// output data transfers can be viewed as a 3-machine flowshop problem"
/// — input link, processor, output link — which is NP-complete even
/// without the memory constraint. The paper drops outputs (negligible or
/// buffered); this module implements the full model, because it is
/// exactly the duplex CPU<->GPU setting the paper's conclusion names:
/// one copy engine per direction, device memory held from the moment an
/// input upload starts until the result download finishes.
///
/// Model per task i:
///   stage 1: input transfer, time in_comm, on the H2D engine;
///   stage 2: computation, time comp, after the input arrived;
///   stage 3: output transfer, time out_comm, on the D2H engine, after
///            the computation finished.
/// Memory: in_mem is held from stage-1 start to stage-2 end; out_mem from
/// stage-2 start to stage-3 end. Both buffers are reserved together at
/// stage-1 start (a runtime must guarantee the output fits before it
/// uploads the input, or it can deadlock); the reservation of in_mem is
/// dropped when the computation completes.

#include <span>
#include <string>
#include <vector>

#include "core/types.hpp"

namespace dts {

struct StagedTask {
  TaskId id = kInvalidTask;
  Time in_comm = 0.0;   ///< H2D transfer time
  Time comp = 0.0;      ///< kernel time
  Time out_comm = 0.0;  ///< D2H transfer time
  Mem in_mem = 0.0;     ///< input bytes resident until compute end
  Mem out_mem = 0.0;    ///< output bytes resident until download end
  std::string name;

  [[nodiscard]] constexpr Mem total_mem() const noexcept {
    return in_mem + out_mem;
  }
};

class ThreeStageInstance {
 public:
  ThreeStageInstance() = default;
  explicit ThreeStageInstance(std::vector<StagedTask> tasks);

  [[nodiscard]] std::size_t size() const noexcept { return tasks_.size(); }
  [[nodiscard]] bool empty() const noexcept { return tasks_.empty(); }
  [[nodiscard]] const StagedTask& operator[](TaskId id) const {
    return tasks_.at(id);
  }
  [[nodiscard]] auto begin() const noexcept { return tasks_.begin(); }
  [[nodiscard]] auto end() const noexcept { return tasks_.end(); }

  /// Smallest capacity admitting any schedule: max over tasks of
  /// in_mem + out_mem (both buffers coexist during the computation).
  [[nodiscard]] Mem min_capacity() const noexcept;

  [[nodiscard]] std::vector<TaskId> submission_order() const;

 private:
  std::vector<StagedTask> tasks_;
};

/// Start times of one task on the three resources.
struct StagedTimes {
  Time in_start = -1.0;
  Time comp_start = -1.0;
  Time out_start = -1.0;
  [[nodiscard]] constexpr bool scheduled() const noexcept {
    return in_start >= 0.0 && comp_start >= 0.0 && out_start >= 0.0;
  }
};

class ThreeStageSchedule {
 public:
  ThreeStageSchedule() = default;
  explicit ThreeStageSchedule(std::size_t n) : times_(n) {}

  [[nodiscard]] std::size_t size() const noexcept { return times_.size(); }
  [[nodiscard]] const StagedTimes& operator[](TaskId id) const {
    return times_.at(id);
  }
  void set(TaskId id, const StagedTimes& t) { times_.at(id) = t; }

  /// End of the last output transfer.
  [[nodiscard]] Time makespan(const ThreeStageInstance& inst) const;

 private:
  std::vector<StagedTimes> times_;
};

/// Executes `order` as a permutation schedule on all three resources
/// under `capacity`, earliest-start. A task's buffers (in_mem + out_mem)
/// must fit at its stage-1 start; in_mem is released at compute end,
/// out_mem at download end. Throws std::invalid_argument when a task can
/// never fit.
[[nodiscard]] ThreeStageSchedule simulate_three_stage(
    const ThreeStageInstance& inst, std::span<const TaskId> order,
    Mem capacity);

/// Makespan convenience wrapper.
[[nodiscard]] Time three_stage_makespan(const ThreeStageInstance& inst,
                                        std::span<const TaskId> order,
                                        Mem capacity);

/// Johnson's 3-machine heuristic order: apply the 2-machine rule to the
/// surrogate times (in_comm + comp, comp + out_comm). Optimal when the
/// processor is dominated by either link (Johnson 1954); a strong
/// heuristic otherwise.
[[nodiscard]] std::vector<TaskId> johnson3_order(const ThreeStageInstance& inst);

/// Lower bounds: per-resource loads with entry/exit lags, and the
/// unconstrained 3-machine surrogate.
struct ThreeStageBounds {
  Time in_link_load = 0.0;   ///< sum in_comm + min (comp + out_comm)
  Time proc_load = 0.0;      ///< min in_comm + sum comp + min out_comm
  Time out_link_load = 0.0;  ///< min (in_comm + comp) + sum out_comm
  Time combined = 0.0;
};
[[nodiscard]] ThreeStageBounds three_stage_bounds(const ThreeStageInstance& inst);

/// Feasibility check mirroring validate_schedule for the 3-stage model.
/// Returns an empty string when feasible, else a description of the first
/// violation found.
[[nodiscard]] std::string validate_three_stage(const ThreeStageInstance& inst,
                                               const ThreeStageSchedule& sched,
                                               Mem capacity);

}  // namespace dts
