#include "threestage/three_stage.hpp"

#include <algorithm>
#include <numeric>
#include <sstream>
#include <stdexcept>

namespace dts {

ThreeStageInstance::ThreeStageInstance(std::vector<StagedTask> tasks)
    : tasks_(std::move(tasks)) {
  for (std::size_t i = 0; i < tasks_.size(); ++i) {
    StagedTask& t = tasks_[i];
    const bool valid = t.in_comm >= 0.0 && t.comp >= 0.0 && t.out_comm >= 0.0 &&
                       t.in_mem >= 0.0 && t.out_mem >= 0.0;
    if (!valid) {
      throw std::invalid_argument(
          "ThreeStageInstance: negative field in task " + std::to_string(i));
    }
    t.id = static_cast<TaskId>(i);
  }
}

Mem ThreeStageInstance::min_capacity() const noexcept {
  Mem mc = 0.0;
  for (const StagedTask& t : tasks_) mc = std::max(mc, t.total_mem());
  return mc;
}

std::vector<TaskId> ThreeStageInstance::submission_order() const {
  std::vector<TaskId> order(tasks_.size());
  std::iota(order.begin(), order.end(), TaskId{0});
  return order;
}

Time ThreeStageSchedule::makespan(const ThreeStageInstance& inst) const {
  if (inst.size() != times_.size()) {
    throw std::invalid_argument("ThreeStageSchedule::makespan: size mismatch");
  }
  Time end = 0.0;
  for (TaskId i = 0; i < times_.size(); ++i) {
    if (!times_[i].scheduled()) {
      throw std::logic_error("ThreeStageSchedule::makespan: task " +
                             std::to_string(i) + " unscheduled");
    }
    end = std::max(end, times_[i].out_start + inst[i].out_comm);
  }
  return end;
}

ThreeStageSchedule simulate_three_stage(const ThreeStageInstance& inst,
                                        std::span<const TaskId> order,
                                        Mem capacity) {
  if (order.size() != inst.size()) {
    throw std::invalid_argument(
        "simulate_three_stage: order must cover all tasks");
  }
  ThreeStageSchedule sched(inst.size());

  Time in_free = 0.0;
  Time proc_free = 0.0;
  Time out_free = 0.0;
  // Pending releases: (instant, bytes). Small n per call; linear scans.
  std::vector<std::pair<Time, Mem>> releases;
  Mem used = 0.0;

  const auto used_at = [&](Time t) {
    Mem u = used;
    for (const auto& [end, mem] : releases) {
      if (approx_leq(end, t)) u -= mem;
    }
    return u;
  };
  const auto commit_until = [&](Time t) {
    std::erase_if(releases, [&](const std::pair<Time, Mem>& r) {
      if (approx_leq(r.first, t)) {
        used -= r.second;
        return true;
      }
      return false;
    });
  };

  for (TaskId id : order) {
    const StagedTask& t = inst[id];
    if (definitely_less(capacity, t.total_mem())) {
      throw std::invalid_argument("simulate_three_stage: task " +
                                  std::to_string(id) +
                                  " exceeds the memory capacity");
    }
    // Earliest stage-1 start: in-link free and both buffers fit.
    Time start = in_free;
    if (!approx_leq(used_at(start) + t.total_mem(), capacity)) {
      std::vector<Time> candidates;
      for (const auto& [end, mem] : releases) {
        (void)mem;
        if (definitely_less(start, end)) candidates.push_back(end);
      }
      std::sort(candidates.begin(), candidates.end());
      bool placed = false;
      for (Time c : candidates) {
        if (approx_leq(used_at(c) + t.total_mem(), capacity)) {
          start = c;
          placed = true;
          break;
        }
      }
      if (!placed) {
        throw std::logic_error(
            "simulate_three_stage: no feasible start found (internal)");
      }
    }
    commit_until(start);

    StagedTimes times;
    times.in_start = start;
    const Time in_end = start + t.in_comm;
    times.comp_start = std::max(in_end, proc_free);
    const Time comp_end = times.comp_start + t.comp;
    times.out_start = std::max(comp_end, out_free);
    const Time out_end = times.out_start + t.out_comm;

    used += t.total_mem();
    releases.emplace_back(comp_end, t.in_mem);
    releases.emplace_back(out_end, t.out_mem);

    in_free = in_end;
    proc_free = comp_end;
    out_free = out_end;
    sched.set(id, times);
  }
  return sched;
}

Time three_stage_makespan(const ThreeStageInstance& inst,
                          std::span<const TaskId> order, Mem capacity) {
  return simulate_three_stage(inst, order, capacity).makespan(inst);
}

std::vector<TaskId> johnson3_order(const ThreeStageInstance& inst) {
  // Surrogate 2-machine times: a_i = in + comp, b_i = comp + out.
  std::vector<TaskId> s1;
  std::vector<TaskId> s2;
  for (const StagedTask& t : inst) {
    const Time a = t.in_comm + t.comp;
    const Time b = t.comp + t.out_comm;
    (b >= a ? s1 : s2).push_back(t.id);
  }
  std::stable_sort(s1.begin(), s1.end(), [&](TaskId x, TaskId y) {
    return inst[x].in_comm + inst[x].comp < inst[y].in_comm + inst[y].comp;
  });
  std::stable_sort(s2.begin(), s2.end(), [&](TaskId x, TaskId y) {
    return inst[x].comp + inst[x].out_comm > inst[y].comp + inst[y].out_comm;
  });
  s1.insert(s1.end(), s2.begin(), s2.end());
  return s1;
}

ThreeStageBounds three_stage_bounds(const ThreeStageInstance& inst) {
  ThreeStageBounds b;
  if (inst.empty()) return b;
  Time sum_in = 0.0, sum_comp = 0.0, sum_out = 0.0;
  Time min_in = kInfiniteTime, min_out = kInfiniteTime;
  Time min_tail = kInfiniteTime, min_head = kInfiniteTime;
  for (const StagedTask& t : inst) {
    sum_in += t.in_comm;
    sum_comp += t.comp;
    sum_out += t.out_comm;
    min_in = std::min(min_in, t.in_comm);
    min_out = std::min(min_out, t.out_comm);
    min_tail = std::min(min_tail, t.comp + t.out_comm);
    min_head = std::min(min_head, t.in_comm + t.comp);
  }
  b.in_link_load = sum_in + min_tail;
  b.proc_load = min_in + sum_comp + min_out;
  b.out_link_load = min_head + sum_out;
  b.combined = std::max({b.in_link_load, b.proc_load, b.out_link_load});
  return b;
}

std::string validate_three_stage(const ThreeStageInstance& inst,
                                 const ThreeStageSchedule& sched,
                                 Mem capacity) {
  if (sched.size() != inst.size()) return "size mismatch";
  std::ostringstream os;

  // Per-task precedence.
  for (TaskId i = 0; i < inst.size(); ++i) {
    const StagedTimes& t = sched[i];
    if (!t.scheduled()) {
      os << "task " << i << " unscheduled";
      return os.str();
    }
    if (definitely_less(t.comp_start, t.in_start + inst[i].in_comm)) {
      os << "task " << i << " computes before its input arrives";
      return os.str();
    }
    if (definitely_less(t.out_start, t.comp_start + inst[i].comp)) {
      os << "task " << i << " downloads before its computation ends";
      return os.str();
    }
  }

  // Resource exclusivity: sort by start per resource, check neighbours.
  const auto check = [&](auto start_of, auto len_of, const char* what) {
    std::vector<TaskId> ids(inst.size());
    std::iota(ids.begin(), ids.end(), TaskId{0});
    std::sort(ids.begin(), ids.end(), [&](TaskId a, TaskId b) {
      if (start_of(a) != start_of(b)) return start_of(a) < start_of(b);
      return start_of(a) + len_of(a) < start_of(b) + len_of(b);
    });
    for (std::size_t k = 1; k < ids.size(); ++k) {
      const Time prev_end = start_of(ids[k - 1]) + len_of(ids[k - 1]);
      if (definitely_less(start_of(ids[k]), prev_end)) {
        os << what << " overlap between tasks " << ids[k - 1] << " and "
           << ids[k];
        return false;
      }
    }
    return true;
  };
  if (!check([&](TaskId i) { return sched[i].in_start; },
             [&](TaskId i) { return inst[i].in_comm; }, "H2D link")) {
    return os.str();
  }
  if (!check([&](TaskId i) { return sched[i].comp_start; },
             [&](TaskId i) { return inst[i].comp; }, "processor")) {
    return os.str();
  }
  if (!check([&](TaskId i) { return sched[i].out_start; },
             [&](TaskId i) { return inst[i].out_comm; }, "D2H link")) {
    return os.str();
  }

  // Memory envelope: +total at in_start; -in_mem at comp end; -out_mem at
  // download end. Releases before acquisitions at equal instants.
  struct Event {
    Time t;
    Mem delta;
  };
  std::vector<Event> events;
  for (TaskId i = 0; i < inst.size(); ++i) {
    const StagedTimes& t = sched[i];
    events.push_back({t.in_start, inst[i].total_mem()});
    events.push_back({t.comp_start + inst[i].comp, -inst[i].in_mem});
    events.push_back({t.out_start + inst[i].out_comm, -inst[i].out_mem});
  }
  std::sort(events.begin(), events.end(), [](const Event& a, const Event& b) {
    if (a.t != b.t) return a.t < b.t;
    return a.delta < b.delta;
  });
  Mem use = 0.0;
  for (const Event& e : events) {
    use += e.delta;
    if (definitely_less(capacity, use)) {
      os << "memory envelope exceeds capacity at t=" << e.t << " (" << use
         << " > " << capacity << ")";
      return os.str();
    }
  }
  return {};
}

}  // namespace dts
