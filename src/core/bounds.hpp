#pragma once

/// \file bounds.hpp
/// Makespan bounds used throughout the evaluation (Section 5.1, Fig. 8):
///   area lower bound     max(sum comm, sum comp)  — a resource must carry
///                        all of its load sequentially;
///   OMIM lower bound     optimal 2-machine flowshop makespan (Johnson) —
///                        relaxing the memory constraint only helps;
///   sequential upper bd  sum comm + sum comp — zero overlap.
/// Every feasible memory-constrained makespan lies in [omim, sequential].
///
/// Multi-channel instances generalize each lower bound per copy engine:
/// the area bound takes the *largest* single-channel transfer load (each
/// engine must carry its own load sequentially, but engines overlap), and
/// the OMIM bound is the max over channels of the Johnson optimum of that
/// channel's tasks — the schedule induced on one channel's tasks is a
/// feasible unconstrained flowshop schedule for them, so each per-channel
/// optimum lower-bounds the full makespan. With one channel both reduce
/// exactly to the paper's definitions. The sequential upper bound stays
/// valid for any channel count (full serialization never uses a second
/// engine concurrently).

#include <vector>

#include "core/instance.hpp"

namespace dts {

struct Bounds {
  Time sum_comm = 0.0;        ///< all channels combined
  Time sum_comp = 0.0;
  /// Per-channel transfer load; size = the instance's channel count.
  std::vector<Time> sum_comm_per_channel;
  Time area_lower = 0.0;      ///< max(largest channel load, sum_comp)
  Time omim_lower = 0.0;      ///< per-channel Johnson max, >= area_lower
  /// Longest dependency chain, each link costing CM + CP: a transfer may
  /// not start before its predecessors' computations end, so every chain
  /// runs fully serialized. Equals the largest single-task CM + CP on an
  /// edge-free instance (<= omim_lower there, so nothing changes for the
  /// paper's precedence-free workloads).
  Time critical_path = 0.0;
  Time sequential_upper = 0.0;///< sum_comm + sum_comp

  /// Fraction of the sequential time that perfect scheduling could hide:
  /// 1 - omim/sequential. The paper observes ~20% for HF and ~50% for CCSD.
  [[nodiscard]] double max_overlap_fraction() const noexcept {
    return sequential_upper <= 0.0 ? 0.0 : 1.0 - omim_lower / sequential_upper;
  }
};

[[nodiscard]] Bounds compute_bounds(const Instance& inst);

/// The critical-path makespan lower bound on its own: the longest chain of
/// dependency edges with each task contributing CM + CP. O(n + edges).
[[nodiscard]] Time critical_path_bound(const Instance& inst);

}  // namespace dts
