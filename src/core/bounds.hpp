#pragma once

/// \file bounds.hpp
/// Makespan bounds used throughout the evaluation (Section 5.1, Fig. 8):
///   area lower bound     max(sum comm, sum comp)  — a resource must carry
///                        all of its load sequentially;
///   OMIM lower bound     optimal 2-machine flowshop makespan (Johnson) —
///                        relaxing the memory constraint only helps;
///   sequential upper bd  sum comm + sum comp — zero overlap.
/// Every feasible memory-constrained makespan lies in [omim, sequential].

#include "core/instance.hpp"

namespace dts {

struct Bounds {
  Time sum_comm = 0.0;
  Time sum_comp = 0.0;
  Time area_lower = 0.0;      ///< max(sum_comm, sum_comp)
  Time omim_lower = 0.0;      ///< Johnson optimum, >= area_lower
  Time sequential_upper = 0.0;///< sum_comm + sum_comp

  /// Fraction of the sequential time that perfect scheduling could hide:
  /// 1 - omim/sequential. The paper observes ~20% for HF and ~50% for CCSD.
  [[nodiscard]] double max_overlap_fraction() const noexcept {
    return sequential_upper <= 0.0 ? 0.0 : 1.0 - omim_lower / sequential_upper;
  }
};

[[nodiscard]] Bounds compute_bounds(const Instance& inst);

}  // namespace dts
