#include "core/compiled.hpp"

#include <algorithm>
#include <functional>
#include <stdexcept>
#include <string>

namespace dts {

namespace {

// Error paths live in cold [[noreturn]] helpers so the hot loops contain
// no string construction (enforced by the dts-lint hot-path-noalloc rule).

[[noreturn]] void throw_negative_capacity() {
  throw std::invalid_argument("evaluate_order: capacity must be >= 0");
}

[[noreturn]] void throw_no_channels() {
  throw std::invalid_argument("evaluate_order: need at least one channel");
}

[[noreturn]] void throw_negative_availability() {
  throw std::invalid_argument("evaluate_order: negative availability");
}

[[noreturn]] void throw_unknown_task(TaskId id, std::size_t n) {
  throw std::out_of_range("evaluate_order: task id " + std::to_string(id) +
                          " out of range (instance has " + std::to_string(n) +
                          " tasks)");
}

[[noreturn]] void throw_unknown_channel(TaskId id, ChannelId ch,
                                        std::size_t nch) {
  throw std::out_of_range("evaluate_order: task " + std::to_string(id) +
                          " names channel " + std::to_string(ch) +
                          " but the engine tracks " + std::to_string(nch));
}

[[noreturn]] void throw_never_fits(TaskId id, Mem mem, Mem capacity) {
  // Same message shape as execute_order so callers and logs stay familiar.
  throw std::invalid_argument(
      "execute_order: task " + std::to_string(id) + " requires " +
      std::to_string(mem) + " bytes but capacity is " +
      std::to_string(capacity));
}

[[noreturn]] void throw_unissued_pred(TaskId id, TaskId dep) {
  // Same message shape as execute_order's dependency check.
  throw std::invalid_argument("execute_order: task " + std::to_string(id) +
                              " issued before its predecessor " +
                              std::to_string(dep));
}

}  // namespace

// ----------------------------------------------------------------------
// CompiledInstance

CompiledInstance::CompiledInstance(const Instance& inst)
    : n_channels_(inst.num_channels()),
      min_capacity_(inst.min_capacity()),
      has_dependencies_(inst.has_dependencies()) {
  const std::size_t n = inst.size();
  comm_.reserve(n);
  comp_.reserve(n);
  mem_.reserve(n);
  channel_.reserve(n);
  std::vector<std::size_t> per_channel(n_channels_, 0);
  for (const Task& t : inst) {
    comm_.push_back(t.comm);
    comp_.push_back(t.comp);
    mem_.push_back(t.mem);
    channel_.push_back(t.channel);
    ++per_channel[t.channel];
  }
  dep_offsets_.assign(n + 1, 0);
  if (has_dependencies_) {
    for (std::size_t id = 0; id < n; ++id) {
      dep_offsets_[id + 1] = dep_offsets_[id] + inst[id].deps.size();
    }
    dep_edges_.reserve(dep_offsets_[n]);
    for (const Task& t : inst) {
      dep_edges_.insert(dep_edges_.end(), t.deps.begin(), t.deps.end());
    }
  }
  channel_offsets_.assign(n_channels_ + 1, 0);
  for (std::size_t ch = 0; ch < n_channels_; ++ch) {
    channel_offsets_[ch + 1] = channel_offsets_[ch] + per_channel[ch];
  }
  channel_tasks_.resize(n);
  std::vector<std::size_t> cursor(channel_offsets_.begin(),
                                  channel_offsets_.end() - 1);
  for (std::size_t id = 0; id < n; ++id) {
    channel_tasks_[cursor[channel_[id]]++] = static_cast<TaskId>(id);
  }
}

std::span<const TaskId> CompiledInstance::tasks_on_channel(ChannelId ch) const {
  if (ch >= n_channels_) {
    throw std::out_of_range("CompiledInstance::tasks_on_channel: channel " +
                            std::to_string(ch) + " out of range");
  }
  return std::span<const TaskId>(channel_tasks_)
      .subspan(channel_offsets_[ch],
               channel_offsets_[ch + 1] - channel_offsets_[ch]);
}

// ----------------------------------------------------------------------
// EvalScratch

Time EvalScratch::comm_available() const noexcept {
  Time latest = comm_avail_[0];
  for (std::size_t c = 1; c < comm_avail_.size(); ++c) {
    latest = std::max(latest, comm_avail_[c]);
  }
  return latest;
}

void EvalScratch::reset(const CompiledInstance& ci, Mem capacity,
                        const ExecutionState::Snapshot* initial,
                        std::span<const Time> ready) {
  if (!(capacity >= 0.0)) throw_negative_capacity();  // also rejects NaN
  capacity_ = capacity;
  makespan_ = 0.0;
  used_ = 0.0;
  active_.clear();
  track_deps_ = ci.has_dependencies();
  if (track_deps_) {
    comp_end_.assign(ci.size(), -1.0);  // -1 = not issued yet
  }
  external_ready_.assign(ready.begin(), ready.end());
  if (initial == nullptr) {
    comm_avail_.assign(ci.num_channels(), 0.0);
    now_ = 0.0;
    comp_avail_ = 0.0;
  } else {
    // Mirrors ExecutionState(Mem, Snapshot) exactly: the engine's channel
    // count is the snapshot's clock count, the decision instant resumes
    // at max(captured instant, earliest free channel), and entries whose
    // computation already finished carry no memory.
    const ExecutionState::Snapshot& snap = *initial;
    if (snap.comm_available.empty()) throw_no_channels();
    for (Time avail : snap.comm_available) {
      if (avail < 0.0) throw_negative_availability();
    }
    if (snap.comp_available < 0.0 || snap.now < 0.0) {
      throw_negative_availability();
    }
    comm_avail_.assign(snap.comm_available.begin(), snap.comm_available.end());
    comp_avail_ = snap.comp_available;
    now_ = std::max(snap.now, *std::min_element(comm_avail_.begin(),
                                                comm_avail_.end()));
    active_.reserve(snap.active.size() + ci.size());
    for (const auto& [comp_end, mem] : snap.active) {
      if (approx_leq(comp_end, now_)) continue;
      used_ += mem;
      active_.push_back(Active{comp_end, mem});
    }
    std::make_heap(active_.begin(), active_.end(), std::greater<>{});
  }
  // After warm-up these reserves are no-ops: issuing can add at most one
  // active entry per task, so the hot loop's push_back never reallocates.
  active_.reserve(active_.size() + ci.size());
}

// dts-lint: hot-path
void EvalScratch::release_until(Time t) {
  while (!active_.empty() && approx_leq(active_.front().comp_end, t)) {
    used_ -= active_.front().mem;
    std::pop_heap(active_.begin(), active_.end(), std::greater<>{});
    active_.pop_back();
  }
  if (active_.empty()) used_ = 0.0;  // snap away accumulated rounding
}

// The inner kernel: one iteration replicates execute_order's
// fits/advance loop plus ExecutionState::start operation for operation
// (same std::max chains, same approx_leq checks, same heap ops), so every
// intermediate double is bit-identical to the reference engine's.
// dts-lint: hot-path
void EvalScratch::issue(const CompiledInstance& ci,
                        std::span<const TaskId> order, std::size_t first,
                        std::size_t last, Schedule* record) {
  const Time* const comm = ci.comms().data();
  const Time* const comp = ci.comps().data();
  const Mem* const mem = ci.mems().data();
  const ChannelId* const channel = ci.channels().data();
  const std::size_t n_tasks = ci.size();
  const std::size_t nch = comm_avail_.size();
  Time* const clocks = comm_avail_.data();
  // DAG support is fully gated: edge-free instances with no external
  // floors run the original operation sequence (bit-parity with the
  // precedence-free engine is pinned by the golden suites).
  const bool gated = track_deps_ || !external_ready_.empty();
  const Time* const floors =
      external_ready_.empty() ? nullptr : external_ready_.data();
  const Time* const ends = track_deps_ ? comp_end_.data() : nullptr;

  for (std::size_t k = first; k < last; ++k) {
    const TaskId id = order[k];
    if (id >= n_tasks) throw_unknown_task(id, n_tasks);
    const Mem m = mem[id];
    // execute_order's admission loop: wait for computation-finish events
    // until the task fits (memory is only released at those instants).
    while (!approx_leq(used_ + m, capacity_)) {
      if (active_.empty()) throw_never_fits(id, m, capacity_);
      now_ = std::max(now_, active_.front().comp_end);
      release_until(now_);
    }
    const ChannelId ch = channel[id];
    if (ch >= nch) throw_unknown_channel(id, ch, nch);
    Time comm_start = std::max(now_, clocks[ch]);
    if (gated) {
      // Release-when-predecessors-complete: the transfer waits for every
      // predecessor's computation end (and any external cross-window
      // floor), exactly as ExecutionState::start(t, ready).
      Time ready = floors != nullptr ? floors[id] : 0.0;
      if (ends != nullptr) {
        for (const TaskId dep : ci.deps(id)) {
          const Time pred_end = ends[dep];
          if (pred_end < 0.0) throw_unissued_pred(id, dep);
          ready = std::max(ready, pred_end);
        }
      }
      comm_start = std::max(comm_start, ready);
    }
    if (comm_start > now_) {
      // The task's engine is busy past the decision instant (or a
      // predecessor finishes later); memory finishing in the gap is
      // released (it only shrinks the footprint, so the admission check
      // above still holds).
      now_ = comm_start;
      release_until(now_);
    }
    const Time comm_end = comm_start + comm[id];
    const Time comp_start = std::max(comm_end, comp_avail_);
    const Time comp_end = comp_start + comp[id];
    if (ends != nullptr) comp_end_[id] = comp_end;

    used_ += m;
    active_.push_back(Active{comp_end, m});
    std::push_heap(active_.begin(), active_.end(), std::greater<>{});

    clocks[ch] = comm_end;
    comp_avail_ = comp_end;
    // Computation ends are monotone along the issue order, so the last
    // one is the running makespan.
    makespan_ = comp_end;

    // advance_decision_instant: now := max(now, earliest free channel).
    Time min_clock = clocks[0];
    for (std::size_t c = 1; c < nch; ++c) {
      min_clock = std::min(min_clock, clocks[c]);
    }
    now_ = std::max(now_, min_clock);
    release_until(now_);

    if (record != nullptr) record->set(id, comm_start, comp_start);
  }
}

Time evaluate_order(const CompiledInstance& ci, std::span<const TaskId> order,
                    Mem capacity, EvalScratch& scratch,
                    const ExecutionState::Snapshot* initial,
                    std::span<const Time> ready) {
  scratch.reset(ci, capacity, initial, ready);
  scratch.issue(ci, order, 0, order.size(), nullptr);
  return scratch.makespan_;
}

Time evaluate_order(const CompiledInstance& ci, std::span<const TaskId> order,
                    Mem capacity, EvalScratch& scratch, Schedule& out,
                    const ExecutionState::Snapshot* initial,
                    std::span<const Time> ready) {
  scratch.reset(ci, capacity, initial, ready);
  scratch.issue(ci, order, 0, order.size(), &out);
  return scratch.makespan_;
}

// ----------------------------------------------------------------------
// PrefixResumeEvaluator

PrefixResumeEvaluator::PrefixResumeEvaluator(const CompiledInstance& ci,
                                             Mem capacity)
    : ci_(&ci), capacity_(capacity) {
  scratch_.reset(ci, capacity, nullptr);
  checkpoints_.resize(1);
  save_checkpoint(0);
}

PrefixResumeEvaluator::PrefixResumeEvaluator(
    const CompiledInstance& ci, Mem capacity,
    const ExecutionState::Snapshot& initial)
    : ci_(&ci), capacity_(capacity), has_initial_(true), initial_(initial) {
  scratch_.reset(ci, capacity, &initial_);
  checkpoints_.resize(1);
  save_checkpoint(0);
}

void PrefixResumeEvaluator::set_external_ready(std::span<const Time> ready) {
  ready_.assign(ready.begin(), ready.end());
  scratch_.reset(*ci_, capacity_, has_initial_ ? &initial_ : nullptr, ready_);
  reference_.clear();  // checkpoints past 0 are stale under the new floors
  save_checkpoint(0);
}

void PrefixResumeEvaluator::save_checkpoint(std::size_t k) {
  Checkpoint& cp = checkpoints_[k];
  cp.now = scratch_.now_;
  cp.comp_avail = scratch_.comp_avail_;
  cp.makespan = scratch_.makespan_;
  cp.used = scratch_.used_;
  cp.comm_avail.assign(scratch_.comm_avail_.begin(),
                       scratch_.comm_avail_.end());
  cp.active.assign(scratch_.active_.begin(), scratch_.active_.end());
  if (scratch_.track_deps_) {
    // Successor transfers read issued tasks' computation ends, so on a
    // DAG the per-task ends are part of the engine state.
    cp.comp_end.assign(scratch_.comp_end_.begin(), scratch_.comp_end_.end());
  }
}

// dts-lint: hot-path
void PrefixResumeEvaluator::load_checkpoint(std::size_t k) {
  const Checkpoint& cp = checkpoints_[k];
  scratch_.now_ = cp.now;
  scratch_.comp_avail_ = cp.comp_avail;
  scratch_.makespan_ = cp.makespan;
  scratch_.used_ = cp.used;
  scratch_.comm_avail_.assign(cp.comm_avail.begin(), cp.comm_avail.end());
  scratch_.active_.assign(cp.active.begin(), cp.active.end());
  if (scratch_.track_deps_) {
    scratch_.comp_end_.assign(cp.comp_end.begin(), cp.comp_end.end());
  }
}

std::size_t PrefixResumeEvaluator::common_prefix(
    std::span<const TaskId> order) const noexcept {
  const std::size_t limit = std::min(order.size(), reference_.size());
  std::size_t k = 0;
  while (k < limit && order[k] == reference_[k]) ++k;
  return k;
}

Time PrefixResumeEvaluator::set_reference(std::span<const TaskId> order) {
  const std::size_t keep = common_prefix(order);
  load_checkpoint(keep);
  if (checkpoints_.size() < order.size() + 1) {
    checkpoints_.resize(order.size() + 1);
  }
  reference_.assign(order.begin(), order.end());
  try {
    for (std::size_t k = keep; k < order.size(); ++k) {
      scratch_.issue(*ci_, order, k, k + 1, nullptr);
      save_checkpoint(k + 1);
    }
  } catch (...) {
    // Checkpoints past `keep` are stale; dropping the reference forces
    // the next call to rebuild from the base state.
    reference_.clear();
    throw;
  }
  ++evaluations_;
  tasks_simulated_ += order.size() - keep;
  tasks_resumed_ += keep;
  return scratch_.makespan_;
}

// dts-lint: hot-path
bool PrefixResumeEvaluator::state_matches(const Checkpoint& cp) const noexcept {
  // comp_avail_ carries a swap's perturbation the longest on comp-bound
  // workloads, so it is the most discriminating scalar — check it first.
  if (scratch_.comp_avail_ != cp.comp_avail || scratch_.now_ != cp.now ||
      scratch_.makespan_ != cp.makespan || scratch_.used_ != cp.used) {
    return false;
  }
  if (scratch_.comm_avail_.size() != cp.comm_avail.size() ||
      scratch_.active_.size() != cp.active.size()) {
    return false;
  }
  for (std::size_t c = 0; c < cp.comm_avail.size(); ++c) {
    if (scratch_.comm_avail_[c] != cp.comm_avail[c]) return false;
  }
  // Element order matters (heap layout drives release tie-breaks), so the
  // comparison is over the raw arrays, not the multisets.
  for (std::size_t a = 0; a < cp.active.size(); ++a) {
    if (scratch_.active_[a].comp_end != cp.active[a].comp_end ||
        scratch_.active_[a].mem != cp.active[a].mem) {
      return false;
    }
  }
  if (scratch_.track_deps_) {
    // On a DAG, suffix tasks read predecessors' recorded ends — states
    // only merge when those agree too (the candidate has issued the same
    // task set as the reference prefix, so a plain array compare works:
    // unissued entries are -1 on both sides).
    if (scratch_.comp_end_.size() != cp.comp_end.size()) return false;
    for (std::size_t i = 0; i < cp.comp_end.size(); ++i) {
      if (scratch_.comp_end_[i] != cp.comp_end[i]) return false;
    }
  }
  return true;
}

// dts-lint: hot-path
Time PrefixResumeEvaluator::evaluate(std::span<const TaskId> order) {
  ++evaluations_;
  const std::size_t keep = common_prefix(order);
  load_checkpoint(keep);

  // Longest common suffix with the reference, disjoint from the kept
  // prefix. Past `merge_from` the candidate issues exactly the
  // reference's remaining tasks, so the engine evolutions can MERGE: the
  // instant the whole engine state bitwise re-equals the reference
  // checkpoint at the same position, every later operation is identical
  // and the reference's final makespan is the candidate's (computation
  // ends are monotone along the issue order, so the final comp_end — a
  // pure function of the merged state and the shared suffix — is the
  // makespan). A local-search swap then costs the divergent window plus
  // a few merge probes instead of the whole suffix.
  std::size_t tail = 0;
  if (order.size() == reference_.size()) {
    const std::size_t room = order.size() - keep;
    while (tail < room && order[order.size() - 1 - tail] ==
                              reference_[order.size() - 1 - tail]) {
      ++tail;
    }
  }
  const std::size_t merge_from = order.size() - tail;

  scratch_.issue(*ci_, order, keep, merge_from, nullptr);
  // Once the states match at some position they match at every later one
  // (identical state + identical next task → identical next state), so a
  // strided probe still catches the merge — it just overshoots by at most
  // kProbeStride - 1 simulated tasks while paying the per-issue overhead
  // kProbeStride times less often.
  constexpr std::size_t kProbeStride = 4;
  for (std::size_t k = merge_from; k < order.size();) {
    if (state_matches(checkpoints_[k])) {
      tasks_simulated_ += k - keep;
      tasks_resumed_ += keep + (order.size() - k);
      return checkpoints_[reference_.size()].makespan;
    }
    const std::size_t next = std::min(k + kProbeStride, order.size());
    scratch_.issue(*ci_, order, k, next, nullptr);
    k = next;
  }
  tasks_simulated_ += order.size() - keep;
  tasks_resumed_ += keep;
  return scratch_.makespan_;
}

}  // namespace dts
