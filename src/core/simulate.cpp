#include "core/simulate.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "core/compiled.hpp"

#include "support/contract.hpp"

namespace dts {

ExecutionState::ExecutionState(Mem capacity, std::size_t n_channels)
    : capacity_(capacity), comm_avail_(n_channels, 0.0) {
  if (!(capacity >= 0.0)) {  // also rejects NaN
    throw std::invalid_argument("ExecutionState: capacity must be >= 0");
  }
  if (n_channels == 0) {
    throw std::invalid_argument("ExecutionState: need at least one channel");
  }
}

ExecutionState::ExecutionState(Mem capacity, Time comm_available,
                               Time comp_available)
    : ExecutionState(capacity) {
  if (comm_available < 0.0 || comp_available < 0.0) {
    throw std::invalid_argument("ExecutionState: negative availability");
  }
  now_ = comm_avail_[0] = comm_available;
  comp_avail_ = comp_available;
}

Time ExecutionState::comm_available() const noexcept {
  return *std::max_element(comm_avail_.begin(), comm_avail_.end());
}

Time ExecutionState::Snapshot::single_link_available() const {
  if (comm_available.size() != 1) {
    throw std::logic_error(
        "Snapshot::single_link_available: snapshot carries " +
        std::to_string(comm_available.size()) +
        " channels; caller assumes the paper's one-link model");
  }
  return comm_available.front();
}

ExecutionState::Snapshot ExecutionState::snapshot() const {
  Snapshot snap;
  snap.comm_available = comm_avail_;
  snap.comp_available = comp_avail_;
  snap.now = now_;
  snap.active.reserve(active_.size());
  for (const ActiveTask& a : active_) snap.active.emplace_back(a.comp_end, a.mem);
  // Save -> restore must be the identity: the window solver and the
  // pair-order branch & bound resume engines from snapshots, and a lossy
  // capture silently corrupts time or memory accounting downstream (the
  // bug class tests/differential_test.cpp caught in PR 3: `now` was not
  // recorded, so multi-channel restores regressed the decision instant).
  DTS_AUDIT_ONLY({
    const ExecutionState restored(capacity_, snap);
    DTS_AUDIT(restored.now_ == now_,
              "snapshot restore must resume at the captured instant");
    DTS_AUDIT(restored.comm_avail_ == comm_avail_,
              "snapshot restore must keep every channel clock");
    DTS_AUDIT(restored.comp_avail_ == comp_avail_,
              "snapshot restore must keep the processor clock");
    DTS_AUDIT(restored.active_.size() == active_.size(),
              "snapshot restore must keep every in-flight task");
    DTS_AUDIT(approx_equal(restored.used_, used_),
              "snapshot restore must keep the memory footprint");
  });
  return snap;
}

ExecutionState::ExecutionState(Mem capacity, const Snapshot& snap)
    : ExecutionState(capacity, snap.comm_available.size()) {
  for (Time avail : snap.comm_available) {
    if (avail < 0.0) {
      throw std::invalid_argument("ExecutionState: negative availability");
    }
  }
  if (snap.comp_available < 0.0 || snap.now < 0.0) {
    throw std::invalid_argument("ExecutionState: negative availability");
  }
  comm_avail_ = snap.comm_available;
  comp_avail_ = snap.comp_available;
  // The decision instant resumes at the earliest instant a new transfer
  // could be issued: the captured instant, or the first free channel if
  // that is later (hand-built snapshots leave `now` at 0 and carry only
  // clocks). Time never runs backwards — a decision instant earlier than
  // the capture would re-admit memory the snapshot no longer tracks.
  now_ = std::max(snap.now,
                  *std::min_element(comm_avail_.begin(), comm_avail_.end()));
  for (const auto& [comp_end, mem] : snap.active) {
    // Entries already finished relative to the snapshot's clock carry no
    // memory; keep the rest in flight.
    if (approx_leq(comp_end, now_)) continue;
    used_ += mem;
    active_.push_back(ActiveTask{comp_end, mem});
  }
  std::make_heap(active_.begin(), active_.end(), std::greater<>{});
}

bool ExecutionState::fits(const Task& t) const noexcept {
  return approx_leq(used_ + t.mem, capacity_);
}

bool ExecutionState::fits(Mem mem) const noexcept {
  return approx_leq(used_ + mem, capacity_);
}

void ExecutionState::release_until(Time t) {
  while (!active_.empty() && approx_leq(active_.front().comp_end, t)) {
    used_ -= active_.front().mem;
    std::pop_heap(active_.begin(), active_.end(), std::greater<>{});
    active_.pop_back();
  }
  if (active_.empty()) used_ = 0.0;  // snap away accumulated rounding
}

void ExecutionState::advance_decision_instant() {
  now_ = std::max(now_, *std::min_element(comm_avail_.begin(),
                                          comm_avail_.end()));
  release_until(now_);
  // Standing invariant the snapshot round-trip relies on: the decision
  // instant never trails the earliest free engine.
  DTS_ENSURE(now_ >= *std::min_element(comm_avail_.begin(), comm_avail_.end()),
             "decision instant must cover the earliest free channel");
}

TaskTimes ExecutionState::start(const Task& t, Time ready) {
  DTS_AUDIT_ONLY(const Time audit_now = now_;
                 const Time audit_channel = comm_avail_.at(t.channel);
                 const Time audit_comp = comp_avail_;)
  // checks the channel id; ready == 0 (no predecessors) leaves the
  // precedence-free timing bit-identical.
  const Time comm_start = std::max(earliest_comm_start(t), ready);
  if (comm_start > now_) {
    // The task's engine is busy past the decision instant (only possible
    // with several channels), or a predecessor finishes later; memory
    // finishing in the gap is released before the footprint check.
    now_ = comm_start;
    release_until(now_);
  }
  if (!fits(t)) {
    throw std::logic_error("ExecutionState::start: task " + std::to_string(t.id) +
                           " does not fit (used " + std::to_string(used_) +
                           " + " + std::to_string(t.mem) + " > capacity " +
                           std::to_string(capacity_) + ")");
  }
  const Time comm_end = comm_start + t.comm;
  const Time comp_start = std::max(comm_end, comp_avail_);
  const Time comp_end = comp_start + t.comp;

  used_ += t.mem;
  active_.push_back(ActiveTask{comp_end, t.mem});
  std::push_heap(active_.begin(), active_.end(), std::greater<>{});

  comm_avail_[t.channel] = comm_end;
  comp_avail_ = comp_end;
  advance_decision_instant();
  // Clocks only move forward (per-channel monotonicity along the issue
  // order) and the admission check above keeps the footprint bounded.
  DTS_ENSURE(now_ >= audit_now, "decision instant must never decrease");
  DTS_ENSURE(comm_avail_[t.channel] >= audit_channel,
             "channel clock must be monotone along the issue order");
  DTS_ENSURE(comp_avail_ >= audit_comp, "processor clock must be monotone");
  DTS_AUDIT(approx_leq(used_, capacity_),
            "memory bound exceeded mid-simulate");
  return TaskTimes{comm_start, comp_start};
}

bool ExecutionState::advance_to_next_release() {
  // Every entry with comp_end <= now_ was already released, so the heap
  // top (if any) is a strictly future event.
  if (active_.empty()) return false;
  now_ = std::max(now_, active_.front().comp_end);
  release_until(now_);
  return true;
}

void ExecutionState::advance_to(Time t) {
  now_ = std::max(now_, t);
  for (Time& avail : comm_avail_) avail = std::max(avail, now_);
  release_until(now_);
}

void execute_order(const Instance& inst, std::span<const TaskId> order,
                   ExecutionState& state, Schedule& out,
                   std::span<const Time> ready_floors) {
  const bool dag = inst.has_dependencies();
  for (TaskId id : order) {
    const Task& t = inst[id];
    Time ready = ready_floors.empty() ? 0.0 : ready_floors[id];
    if (dag) {
      for (const TaskId dep : t.deps) {
        const TaskTimes& pred = out[dep];
        if (!pred.scheduled()) {
          throw std::invalid_argument(
              "execute_order: task " + std::to_string(id) +
              " issued before its predecessor " + std::to_string(dep));
        }
        ready = std::max(ready, pred.comp_start + inst[dep].comp);
      }
    }
    while (!state.fits(t)) {
      if (!state.advance_to_next_release()) {
        throw std::invalid_argument(
            "execute_order: task " + std::to_string(id) + " requires " +
            std::to_string(t.mem) + " bytes but capacity is " +
            std::to_string(state.capacity()));
      }
    }
    const TaskTimes tt = state.start(t, ready);
    out.set(id, tt.comm_start, tt.comp_start);
  }
}

// Both conveniences run on the data-oriented fast path (core/compiled.hpp)
// — bit-identical timings to the ExecutionState reference loop above,
// pinned by tests/fast_path_parity_test.cpp — so one-shot callers benefit
// from the SoA layout too; repeated scorers should hold a CompiledInstance
// and an EvalScratch themselves.
Schedule simulate_order(const Instance& inst, std::span<const TaskId> order,
                        Mem capacity) {
  if (order.size() != inst.size()) {
    throw std::invalid_argument("simulate_order: order must cover all tasks");
  }
  const CompiledInstance ci(inst);
  EvalScratch scratch;
  Schedule sched(inst.size());
  evaluate_order(ci, order, capacity, scratch, sched);
  return sched;
}

Time makespan_of_order(const Instance& inst, std::span<const TaskId> order,
                       Mem capacity) {
  if (order.size() != inst.size()) {
    // Same message as simulate_order historically raised for short orders.
    throw std::invalid_argument("simulate_order: order must cover all tasks");
  }
  const CompiledInstance ci(inst);
  EvalScratch scratch;
  return evaluate_order(ci, order, capacity, scratch);
}

}  // namespace dts
