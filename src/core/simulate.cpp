#include "core/simulate.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace dts {

ExecutionState::ExecutionState(Mem capacity) : capacity_(capacity) {
  if (!(capacity >= 0.0)) {  // also rejects NaN
    throw std::invalid_argument("ExecutionState: capacity must be >= 0");
  }
}

ExecutionState::ExecutionState(Mem capacity, Time comm_available,
                               Time comp_available)
    : ExecutionState(capacity) {
  if (comm_available < 0.0 || comp_available < 0.0) {
    throw std::invalid_argument("ExecutionState: negative availability");
  }
  now_ = comm_avail_ = comm_available;
  comp_avail_ = comp_available;
}

ExecutionState::Snapshot ExecutionState::snapshot() const {
  Snapshot snap;
  snap.comm_available = comm_avail_;
  snap.comp_available = comp_avail_;
  snap.active.reserve(active_.size());
  for (const ActiveTask& a : active_) snap.active.emplace_back(a.comp_end, a.mem);
  return snap;
}

ExecutionState::ExecutionState(Mem capacity, const Snapshot& snap)
    : ExecutionState(capacity, snap.comm_available, snap.comp_available) {
  for (const auto& [comp_end, mem] : snap.active) {
    // Entries already finished relative to the snapshot's clock carry no
    // memory; keep the rest in flight.
    if (approx_leq(comp_end, now_)) continue;
    used_ += mem;
    active_.push_back(ActiveTask{comp_end, mem});
  }
  std::make_heap(active_.begin(), active_.end(), std::greater<>{});
}

bool ExecutionState::fits(const Task& t) const noexcept {
  return approx_leq(used_ + t.mem, capacity_);
}

Time ExecutionState::induced_comp_idle(const Task& t) const noexcept {
  return std::max(0.0, now_ + t.comm - comp_avail_);
}

void ExecutionState::release_until(Time t) {
  while (!active_.empty() && approx_leq(active_.front().comp_end, t)) {
    used_ -= active_.front().mem;
    std::pop_heap(active_.begin(), active_.end(), std::greater<>{});
    active_.pop_back();
  }
  if (active_.empty()) used_ = 0.0;  // snap away accumulated rounding
}

TaskTimes ExecutionState::start(const Task& t) {
  if (!fits(t)) {
    throw std::logic_error("ExecutionState::start: task " + std::to_string(t.id) +
                           " does not fit (used " + std::to_string(used_) +
                           " + " + std::to_string(t.mem) + " > capacity " +
                           std::to_string(capacity_) + ")");
  }
  const Time comm_start = now_;
  const Time comm_end = comm_start + t.comm;
  const Time comp_start = std::max(comm_end, comp_avail_);
  const Time comp_end = comp_start + t.comp;

  used_ += t.mem;
  active_.push_back(ActiveTask{comp_end, t.mem});
  std::push_heap(active_.begin(), active_.end(), std::greater<>{});

  comm_avail_ = comm_end;
  comp_avail_ = comp_end;
  now_ = comm_end;
  release_until(now_);
  return TaskTimes{comm_start, comp_start};
}

bool ExecutionState::advance_to_next_release() {
  // Every entry with comp_end <= now_ was already released, so the heap
  // top (if any) is a strictly future event.
  if (active_.empty()) return false;
  now_ = std::max(now_, active_.front().comp_end);
  release_until(now_);
  return true;
}

void ExecutionState::advance_to(Time t) {
  now_ = std::max(now_, t);
  comm_avail_ = std::max(comm_avail_, now_);
  release_until(now_);
}

void execute_order(const Instance& inst, std::span<const TaskId> order,
                   ExecutionState& state, Schedule& out) {
  for (TaskId id : order) {
    const Task& t = inst[id];
    while (!state.fits(t)) {
      if (!state.advance_to_next_release()) {
        throw std::invalid_argument(
            "execute_order: task " + std::to_string(id) + " requires " +
            std::to_string(t.mem) + " bytes but capacity is " +
            std::to_string(state.capacity()));
      }
    }
    const TaskTimes tt = state.start(t);
    out.set(id, tt.comm_start, tt.comp_start);
  }
}

Schedule simulate_order(const Instance& inst, std::span<const TaskId> order,
                        Mem capacity) {
  if (order.size() != inst.size()) {
    throw std::invalid_argument("simulate_order: order must cover all tasks");
  }
  ExecutionState state(capacity);
  Schedule sched(inst.size());
  execute_order(inst, order, state, sched);
  return sched;
}

Time makespan_of_order(const Instance& inst, std::span<const TaskId> order,
                       Mem capacity) {
  return simulate_order(inst, order, capacity).makespan(inst);
}

}  // namespace dts
