#include "core/instance.hpp"

#include <functional>
#include <numeric>
#include <queue>
#include <stdexcept>

namespace dts {

Instance::Instance(std::vector<Task> tasks) : tasks_(std::move(tasks)) {
  for (std::size_t i = 0; i < tasks_.size(); ++i) {
    if (!is_valid(tasks_[i])) {
      throw std::invalid_argument("Instance: invalid task at position " +
                                  std::to_string(i) + ": " + to_string(tasks_[i]));
    }
    tasks_[i].id = static_cast<TaskId>(i);
    // is_valid caps channel below kMaxChannels; widen anyway so no input
    // could ever wrap the +1.
    num_channels_ = std::max(
        num_channels_, static_cast<std::size_t>(tasks_[i].channel) + 1);
    min_capacity_ = std::max(min_capacity_, tasks_[i].mem);
    fully_bound_ = fully_bound_ && tasks_[i].time_bound();
    fully_byte_annotated_ = fully_byte_annotated_ && tasks_[i].has_comm_bytes();
    has_dependencies_ = has_dependencies_ || !tasks_[i].deps.empty();
  }
  if (has_dependencies_) validate_dependencies();
}

void Instance::validate_dependencies() const {
  const std::size_t n = tasks_.size();
  std::vector<std::size_t> indegree(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    for (const TaskId dep : tasks_[i].deps) {
      if (dep >= n) {
        throw std::invalid_argument(
            "Instance: task " + std::to_string(i) +
            " depends on unknown task " + std::to_string(dep) +
            " (instance has " + std::to_string(n) + " tasks)");
      }
      if (dep == static_cast<TaskId>(i)) {
        throw std::invalid_argument("Instance: task " + std::to_string(i) +
                                    " depends on itself");
      }
      ++indegree[i];
    }
  }
  // Kahn's algorithm: if the peel stops short, the remainder is a cycle.
  std::vector<std::vector<TaskId>> successors(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (const TaskId dep : tasks_[i].deps) {
      successors[dep].push_back(static_cast<TaskId>(i));
    }
  }
  std::vector<TaskId> ready;
  for (std::size_t i = 0; i < n; ++i) {
    if (indegree[i] == 0) ready.push_back(static_cast<TaskId>(i));
  }
  std::size_t placed = 0;
  while (!ready.empty()) {
    const TaskId t = ready.back();
    ready.pop_back();
    ++placed;
    for (const TaskId succ : successors[t]) {
      if (--indegree[succ] == 0) ready.push_back(succ);
    }
  }
  if (placed != n) {
    std::string cyclic;
    for (std::size_t i = 0; i < n; ++i) {
      if (indegree[i] > 0) {
        if (!cyclic.empty()) cyclic += ", ";
        cyclic += std::to_string(i);
      }
    }
    throw std::invalid_argument(
        "Instance: dependency cycle among tasks {" + cyclic + "}");
  }
}

std::vector<TaskId> Instance::topological_order() const {
  const std::size_t n = tasks_.size();
  if (!has_dependencies_) return submission_order();
  std::vector<std::size_t> indegree(n, 0);
  std::vector<std::vector<TaskId>> successors(n);
  for (std::size_t i = 0; i < n; ++i) {
    indegree[i] = tasks_[i].deps.size();
    for (const TaskId dep : tasks_[i].deps) {
      successors[dep].push_back(static_cast<TaskId>(i));
    }
  }
  // Min-id-first among the ready tasks: deterministic, and the identity
  // permutation whenever the edges permit it (in particular when there
  // are none), so DAG-aware solvers reduce to submission order exactly.
  std::priority_queue<TaskId, std::vector<TaskId>, std::greater<>> ready;
  for (std::size_t i = 0; i < n; ++i) {
    if (indegree[i] == 0) ready.push(static_cast<TaskId>(i));
  }
  std::vector<TaskId> order;
  order.reserve(n);
  while (!ready.empty()) {
    const TaskId t = ready.top();
    ready.pop();
    order.push_back(t);
    for (const TaskId succ : successors[t]) {
      if (--indegree[succ] == 0) ready.push(succ);
    }
  }
  return order;  // construction guarantees acyclicity: |order| == n
}

bool Instance::is_topological_order(std::span<const TaskId> order) const {
  const std::size_t n = tasks_.size();
  if (order.size() != n) return false;
  std::vector<std::size_t> position(n, n);
  for (std::size_t pos = 0; pos < order.size(); ++pos) {
    if (order[pos] >= n || position[order[pos]] != n) return false;
    position[order[pos]] = pos;
  }
  if (!has_dependencies_) return true;
  for (const Task& t : tasks_) {
    for (const TaskId dep : t.deps) {
      if (position[dep] > position[t.id]) return false;
    }
  }
  return true;
}

Instance Instance::from_triples(std::initializer_list<Triple> triples) {
  std::vector<Task> tasks;
  tasks.reserve(triples.size());
  for (const auto& t : triples) {
    tasks.push_back(Task{.id = 0, .comm = t.comm, .comp = t.comp, .mem = t.mem, .name = {}});
  }
  return Instance(std::move(tasks));
}

Instance Instance::from_comm_comp(std::initializer_list<Pair> pairs) {
  std::vector<Task> tasks;
  tasks.reserve(pairs.size());
  for (const auto& p : pairs) {
    tasks.push_back(Task{.id = 0, .comm = p.comm, .comp = p.comp, .mem = p.comm, .name = {}});
  }
  return Instance(std::move(tasks));
}

InstanceStats Instance::stats() const {
  InstanceStats s;
  s.n_tasks = tasks_.size();
  s.sum_comm_per_channel.assign(num_channels_, 0.0);
  for (const Task& t : tasks_) {
    // Time-less tasks carry the kUnboundTime sentinel; counting it would
    // silently shrink the sums (and comp >= -1 would classify every such
    // task as compute intensive).
    const Time comm = t.time_bound() ? t.comm : 0.0;
    s.sum_comm += comm;
    s.sum_comp += t.comp;
    s.sum_comm_per_channel[t.channel] += comm;
    s.total_mem += t.mem;
    s.max_mem = std::max(s.max_mem, t.mem);
    if (t.time_bound() && t.compute_intensive()) ++s.n_compute_intensive;
  }
  return s;
}

std::vector<TaskId> Instance::tasks_on_channel(ChannelId ch) const {
  std::vector<TaskId> ids;
  for (const Task& t : tasks_) {
    if (t.channel == ch) ids.push_back(t.id);
  }
  return ids;
}

Instance Instance::subset(std::span<const TaskId> ids) const {
  std::vector<Task> tasks;
  tasks.reserve(ids.size());
  for (TaskId id : ids) tasks.push_back(tasks_.at(id));
  if (has_dependencies_) {
    // Remap internal edges to local ids; drop edges leaving the subset —
    // the caller owns cross-boundary readiness (window ready times).
    std::vector<TaskId> local(tasks_.size(), kInvalidTask);
    for (std::size_t pos = 0; pos < ids.size(); ++pos) {
      local[ids[pos]] = static_cast<TaskId>(pos);
    }
    for (Task& t : tasks) {
      std::vector<TaskId> kept;
      for (const TaskId dep : t.deps) {
        if (local[dep] != kInvalidTask) kept.push_back(local[dep]);
      }
      t.deps = std::move(kept);
    }
  }
  return Instance(std::move(tasks));
}

std::vector<TaskId> Instance::submission_order() const {
  std::vector<TaskId> order(tasks_.size());
  std::iota(order.begin(), order.end(), TaskId{0});
  return order;
}

Instance Instance::without_dependencies() const {
  std::vector<Task> relaxed = tasks_;
  for (Task& t : relaxed) t.deps.clear();
  return Instance(std::move(relaxed));
}

std::vector<TaskId> legalize_order(const Instance& inst,
                                   std::span<const TaskId> desired) {
  const std::size_t n = inst.size();
  std::vector<std::size_t> position(n, n);
  if (desired.size() != n) {
    throw std::invalid_argument(
        "legalize_order: order must cover all tasks");
  }
  for (std::size_t k = 0; k < n; ++k) {
    const TaskId id = desired[k];
    if (id >= n || position[id] != n) {
      throw std::invalid_argument(
          "legalize_order: order is not a permutation of the task ids");
    }
    position[id] = k;
  }
  if (!inst.has_dependencies()) return {desired.begin(), desired.end()};

  // Stable ready-list schedule: among the tasks whose predecessors are
  // all emitted, always the one earliest in `desired`. An input that is
  // already topological round-trips unchanged (its next desired task is
  // always ready).
  std::vector<std::size_t> indegree(n, 0);
  std::vector<std::vector<TaskId>> successors(n);
  for (TaskId id = 0; id < n; ++id) {
    for (const TaskId dep : inst[id].deps) {
      ++indegree[id];
      successors[dep].push_back(id);
    }
  }
  // Min-heap on desired position.
  std::priority_queue<std::size_t, std::vector<std::size_t>,
                      std::greater<>>
      ready;
  for (TaskId id = 0; id < n; ++id) {
    if (indegree[id] == 0) ready.push(position[id]);
  }
  std::vector<TaskId> order;
  order.reserve(n);
  while (!ready.empty()) {
    const TaskId id = desired[ready.top()];
    ready.pop();
    order.push_back(id);
    for (const TaskId succ : successors[id]) {
      if (--indegree[succ] == 0) ready.push(position[succ]);
    }
  }
  // The constructor rejected cyclic edge sets, so every task was emitted.
  return order;
}

}  // namespace dts
