#include "core/instance.hpp"

#include <numeric>
#include <stdexcept>

namespace dts {

Instance::Instance(std::vector<Task> tasks) : tasks_(std::move(tasks)) {
  for (std::size_t i = 0; i < tasks_.size(); ++i) {
    if (!is_valid(tasks_[i])) {
      throw std::invalid_argument("Instance: invalid task at position " +
                                  std::to_string(i) + ": " + to_string(tasks_[i]));
    }
    tasks_[i].id = static_cast<TaskId>(i);
    // is_valid caps channel below kMaxChannels; widen anyway so no input
    // could ever wrap the +1.
    num_channels_ = std::max(
        num_channels_, static_cast<std::size_t>(tasks_[i].channel) + 1);
    min_capacity_ = std::max(min_capacity_, tasks_[i].mem);
    fully_bound_ = fully_bound_ && tasks_[i].time_bound();
    fully_byte_annotated_ = fully_byte_annotated_ && tasks_[i].has_comm_bytes();
  }
}

Instance Instance::from_triples(std::initializer_list<Triple> triples) {
  std::vector<Task> tasks;
  tasks.reserve(triples.size());
  for (const auto& t : triples) {
    tasks.push_back(Task{.id = 0, .comm = t.comm, .comp = t.comp, .mem = t.mem, .name = {}});
  }
  return Instance(std::move(tasks));
}

Instance Instance::from_comm_comp(std::initializer_list<Pair> pairs) {
  std::vector<Task> tasks;
  tasks.reserve(pairs.size());
  for (const auto& p : pairs) {
    tasks.push_back(Task{.id = 0, .comm = p.comm, .comp = p.comp, .mem = p.comm, .name = {}});
  }
  return Instance(std::move(tasks));
}

InstanceStats Instance::stats() const {
  InstanceStats s;
  s.n_tasks = tasks_.size();
  s.sum_comm_per_channel.assign(num_channels_, 0.0);
  for (const Task& t : tasks_) {
    // Time-less tasks carry the kUnboundTime sentinel; counting it would
    // silently shrink the sums (and comp >= -1 would classify every such
    // task as compute intensive).
    const Time comm = t.time_bound() ? t.comm : 0.0;
    s.sum_comm += comm;
    s.sum_comp += t.comp;
    s.sum_comm_per_channel[t.channel] += comm;
    s.total_mem += t.mem;
    s.max_mem = std::max(s.max_mem, t.mem);
    if (t.time_bound() && t.compute_intensive()) ++s.n_compute_intensive;
  }
  return s;
}

std::vector<TaskId> Instance::tasks_on_channel(ChannelId ch) const {
  std::vector<TaskId> ids;
  for (const Task& t : tasks_) {
    if (t.channel == ch) ids.push_back(t.id);
  }
  return ids;
}

Instance Instance::subset(std::span<const TaskId> ids) const {
  std::vector<Task> tasks;
  tasks.reserve(ids.size());
  for (TaskId id : ids) tasks.push_back(tasks_.at(id));
  return Instance(std::move(tasks));
}

std::vector<TaskId> Instance::submission_order() const {
  std::vector<TaskId> order(tasks_.size());
  std::iota(order.begin(), order.end(), TaskId{0});
  return order;
}

}  // namespace dts
