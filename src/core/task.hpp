#pragma once

/// \file task.hpp
/// The unit of work of problem DT: an independent task with an input data
/// transfer, a computation, and a memory footprint held from the start of
/// the transfer to the end of the computation (Section 3 of the paper).

#include <string>

#include "core/types.hpp"

namespace dts {

/// One independent task.
///
/// Following the paper, a task is described by its transfer time `comm`
/// (CM_i), its computation time `comp` (CP_i) and the memory `mem` (MC_i)
/// held from the start of the transfer to the end of the computation. The
/// multi-channel extension adds `channel`: the copy engine the transfer
/// occupies. The paper's single-link model is channel 0 everywhere; a
/// duplex CPU<->GPU setup routes input fetches over kChannelH2D and result
/// write-back tasks (comp = 0, memory = the output buffer) over
/// kChannelD2H, so opposite directions overlap.
struct Task {
  TaskId id = kInvalidTask;  ///< Index within the owning Instance.
  Time comm = 0.0;           ///< CM_i: transfer time on its channel.
  Time comp = 0.0;           ///< CP_i: processing time on the compute unit.
  Mem mem = 0.0;             ///< MC_i: bytes held from comm start to comp end.
  ChannelId channel = 0;     ///< Copy engine serving the transfer.
  std::string name;          ///< Optional label (used by traces & reports).

  /// Paper terminology: a task is compute intensive iff CP_i >= CM_i,
  /// communication intensive otherwise.
  [[nodiscard]] constexpr bool compute_intensive() const noexcept {
    return comp >= comm;
  }

  /// CM_i + CP_i — the sequential cost of the task.
  [[nodiscard]] constexpr Time total_time() const noexcept { return comm + comp; }

  /// CP_i / CM_i — the "acceleration" used by the MAMR/OOMAMR criteria.
  /// A zero-communication task is infinitely accelerated (it never blocks
  /// the link), matching the selection behaviour those heuristics need.
  [[nodiscard]] Time acceleration() const noexcept;
};

/// Validity: finite, non-negative fields and a channel below kMaxChannels.
/// Tasks with comm == 0 and mem == 0 are legal (Table 2's task A);
/// negative or NaN durations are not.
[[nodiscard]] bool is_valid(const Task& t) noexcept;

/// Human-readable one-liner, e.g. "T3[comm=2.5 comp=4 mem=176128]".
[[nodiscard]] std::string to_string(const Task& t);

}  // namespace dts
