#pragma once

/// \file task.hpp
/// The unit of work of problem DT: an independent task with an input data
/// transfer, a computation, and a memory footprint held from the start of
/// the transfer to the end of the computation (Section 3 of the paper).

#include <string>
#include <vector>

#include "core/types.hpp"

namespace dts {

/// One independent task.
///
/// Following the paper, a task is described by its transfer time `comm`
/// (CM_i), its computation time `comp` (CP_i) and the memory `mem` (MC_i)
/// held from the start of the transfer to the end of the computation. The
/// multi-channel extension adds `channel`: the copy engine the transfer
/// occupies. The paper's single-link model is channel 0 everywhere; a
/// duplex CPU<->GPU setup routes input fetches over kChannelH2D and result
/// write-back tasks (comp = 0, memory = the output buffer) over
/// kChannelD2H, so opposite directions overlap.
struct Task {
  TaskId id = kInvalidTask;  ///< Index within the owning Instance.
  Time comm = 0.0;           ///< CM_i: transfer time on its channel, or
                             ///< kUnboundTime for a time-less task whose
                             ///< cost comes from comm_bytes via bind().
  Time comp = 0.0;           ///< CP_i: processing time on the compute unit.
  Mem mem = 0.0;             ///< MC_i: bytes held from comm start to comp end.
  ChannelId channel = 0;     ///< Copy engine serving the transfer.
  /// Bytes the transfer moves — the machine-independent size the paper's
  /// §3 performance model maps to CM_i. kUnknownBytes (negative) when the
  /// task only carries a measured time; >= 0 when the trace is
  /// byte-annotated, in which case bind(inst, machine) recomputes comm
  /// from the machine's per-channel TransferModel.
  double comm_bytes = kUnknownBytes;
  /// Predecessor task ids: this task's transfer may not start before every
  /// listed task's computation has finished (data-flow edges of a tensor
  /// contraction pipeline; Super Instruction Architecture blocks). Empty —
  /// the paper's precedence-free model — for almost all workloads, and the
  /// engine's hot paths stay bit-identical in that case. The owning
  /// Instance validates the edge set (no dangling ids, self-edges or
  /// cycles) at construction.
  std::vector<TaskId> deps;
  std::string name;          ///< Optional label (used by traces & reports).

  /// True when the transfer's size is recorded (the task can be re-costed
  /// for another machine).
  [[nodiscard]] constexpr bool has_comm_bytes() const noexcept {
    return comm_bytes >= 0.0;
  }

  /// True when comm is an actual time (not the kUnboundTime sentinel).
  /// Solvers require every task to be time-bound.
  [[nodiscard]] constexpr bool time_bound() const noexcept {
    return comm >= 0.0;
  }

  /// Paper terminology: a task is compute intensive iff CP_i >= CM_i,
  /// communication intensive otherwise.
  [[nodiscard]] constexpr bool compute_intensive() const noexcept {
    return comp >= comm;
  }

  /// CM_i + CP_i — the sequential cost of the task.
  [[nodiscard]] constexpr Time total_time() const noexcept { return comm + comp; }

  /// CP_i / CM_i — the "acceleration" used by the MAMR/OOMAMR criteria.
  /// A zero-communication task is infinitely accelerated (it never blocks
  /// the link), matching the selection behaviour those heuristics need.
  [[nodiscard]] Time acceleration() const noexcept;
};

/// Validity: finite, non-negative fields and a channel below kMaxChannels.
/// Tasks with comm == 0 and mem == 0 are legal (Table 2's task A);
/// negative or NaN durations are not — with one exception: a time-less
/// task (comm == kUnboundTime) is valid iff it carries a byte annotation
/// to eventually cost it with (comm_bytes >= 0). comm_bytes itself must
/// be finite and >= 0, or exactly kUnknownBytes.
[[nodiscard]] bool is_valid(const Task& t) noexcept;

/// Human-readable one-liner, e.g. "T3[comm=2.5 comp=4 mem=176128]".
[[nodiscard]] std::string to_string(const Task& t);

}  // namespace dts
