#include "core/johnson.hpp"

#include <algorithm>

#include "core/simulate.hpp"

namespace dts {

std::vector<TaskId> johnson_order(const Instance& inst) {
  std::vector<TaskId> s1;  // CP >= CM: front, by non-decreasing comm
  std::vector<TaskId> s2;  // CP <  CM: back, by non-increasing comp
  s1.reserve(inst.size());
  s2.reserve(inst.size());
  for (const Task& t : inst) {
    (t.compute_intensive() ? s1 : s2).push_back(t.id);
  }
  std::stable_sort(s1.begin(), s1.end(), [&](TaskId a, TaskId b) {
    return inst[a].comm < inst[b].comm;
  });
  std::stable_sort(s2.begin(), s2.end(), [&](TaskId a, TaskId b) {
    return inst[a].comp > inst[b].comp;
  });
  s1.insert(s1.end(), s2.begin(), s2.end());
  return s1;
}

Schedule johnson_schedule(const Instance& inst) {
  if (inst.has_dependencies()) {
    // OMIM is defined on the precedence relaxation: Johnson's rule is
    // only optimal for independent tasks, and relaxing the edges keeps
    // the result a valid lower bound for the DAG.
    const Instance relaxed = inst.without_dependencies();
    return simulate_order(relaxed, johnson_order(relaxed), kInfiniteMem);
  }
  return simulate_order(inst, johnson_order(inst), kInfiniteMem);
}

Time omim(const Instance& inst) {
  if (inst.empty()) return 0.0;
  return johnson_schedule(inst).makespan(inst);
}

bool swap_cannot_improve(const Task& a, const Task& b) noexcept {
  const bool a_ci = a.compute_intensive();
  const bool b_ci = b.compute_intensive();
  if (a_ci && b_ci && a.comm <= b.comm) return true;   // condition (i)
  if (!a_ci && !b_ci && a.comp >= b.comp) return true; // condition (ii)
  if (a_ci && !b_ci) return true;                      // condition (iii)
  return false;
}

}  // namespace dts
