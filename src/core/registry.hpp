#pragma once

/// \file registry.hpp
/// Uniform access to every scheduling heuristic of the paper, keyed by the
/// acronyms used in its figures. The benches, the auto-scheduler and the
/// batch runtime all drive heuristics through this registry so new
/// strategies plug into every experiment automatically.

#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "core/instance.hpp"
#include "core/schedule.hpp"

namespace dts {

/// All heuristics evaluated in the paper (Figs. 7, 9-13).
enum class HeuristicId {
  // baseline
  kOS,      ///< order of submission
  // static orders (§4.1)
  kOOSIM,   ///< Johnson order under the capacity
  kIOCMS,   ///< increasing communication time
  kDOCPS,   ///< decreasing computation time
  kIOCCS,   ///< increasing comm+comp
  kDOCCS,   ///< decreasing comm+comp
  // prior-work static baselines (§4.4)
  kGG,      ///< Gilmore-Gomory no-wait sequence
  kBP,      ///< First-Fit bin packing by memory
  // dynamic selection (§4.2)
  kLCMR,
  kSCMR,
  kMAMR,
  // static order with dynamic corrections (§4.3)
  kOOLCMR,
  kOOSCMR,
  kOOMAMR,
};

/// The paper's three heuristic families plus the submission baseline
/// (Figs. 10/12/13 compare the best variant of each family against OS).
enum class HeuristicCategory { kBaseline, kStatic, kDynamic, kCorrected };

struct HeuristicInfo {
  HeuristicId id;
  std::string_view name;  ///< paper acronym
  HeuristicCategory category;
  std::string_view description;
};

/// Metadata for every registered heuristic, in the paper's display order.
[[nodiscard]] std::span<const HeuristicInfo> all_heuristics() noexcept;

/// Ids only, in display order.
[[nodiscard]] std::vector<HeuristicId> all_heuristic_ids();

/// Ids belonging to one family.
[[nodiscard]] std::vector<HeuristicId> heuristics_in(HeuristicCategory cat);

[[nodiscard]] const HeuristicInfo& info(HeuristicId id) noexcept;
[[nodiscard]] std::string_view name_of(HeuristicId id) noexcept;
[[nodiscard]] std::string_view name_of(HeuristicCategory cat) noexcept;

/// Reverse lookup from the paper acronym (case-sensitive), e.g. "OOLCMR".
[[nodiscard]] std::optional<HeuristicId> heuristic_from_name(
    std::string_view name) noexcept;

/// Runs the heuristic on a fresh engine. Throws std::invalid_argument when
/// some task cannot fit in `capacity` at all.
[[nodiscard]] Schedule run_heuristic(HeuristicId id, const Instance& inst,
                                     Mem capacity);

/// Convenience: makespan of run_heuristic.
[[nodiscard]] Time heuristic_makespan(HeuristicId id, const Instance& inst,
                                      Mem capacity);

}  // namespace dts
