#include "core/bounds.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/johnson.hpp"

namespace dts {

Bounds compute_bounds(const Instance& inst) {
  if (!inst.fully_bound()) {
    throw std::invalid_argument(
        "compute_bounds: the instance has time-less (bytes-only) tasks; "
        "bind() it to a machine first");
  }
  Bounds b;
  b.sum_comm_per_channel.assign(inst.num_channels(), 0.0);
  for (const Task& t : inst) {
    b.sum_comm += t.comm;
    b.sum_comp += t.comp;
    b.sum_comm_per_channel[t.channel] += t.comm;
  }
  const Time max_channel_load = *std::max_element(
      b.sum_comm_per_channel.begin(), b.sum_comm_per_channel.end());
  b.area_lower = std::max(max_channel_load, b.sum_comp);
  b.sequential_upper = b.sum_comm + b.sum_comp;
  b.critical_path = critical_path_bound(inst);
  if (inst.single_channel()) {
    b.omim_lower = omim(inst);
  } else {
    // Johnson's optimality argument needs one link; per channel, the
    // induced sub-schedule is an unconstrained flowshop schedule of that
    // channel's tasks, so each sub-instance optimum is a valid bound.
    b.omim_lower = b.area_lower;
    for (ChannelId ch = 0; ch < inst.num_channels(); ++ch) {
      const std::vector<TaskId> ids = inst.tasks_on_channel(ch);
      if (ids.empty()) continue;
      b.omim_lower = std::max(b.omim_lower, omim(inst.subset(ids)));
    }
  }
  return b;
}

Time critical_path_bound(const Instance& inst) {
  if (!inst.has_dependencies()) {
    // Every chain is a single task: the longest is the largest CM + CP.
    Time best = 0.0;
    for (const Task& t : inst) best = std::max(best, t.comm + t.comp);
    return best;
  }
  // Longest path in completion time: a task finishes no earlier than its
  // latest predecessor's finish plus its own CM + CP (the transfer waits
  // for the predecessor's computation, then transfer and computation run
  // back to back at best).
  std::vector<Time> finish(inst.size(), 0.0);
  Time best = 0.0;
  for (const TaskId id : inst.topological_order()) {
    Time earliest = 0.0;
    for (const TaskId dep : inst[id].deps) {
      earliest = std::max(earliest, finish[dep]);
    }
    finish[id] = earliest + inst[id].comm + inst[id].comp;
    best = std::max(best, finish[id]);
  }
  return best;
}

}  // namespace dts
