#include "core/bounds.hpp"

#include <algorithm>

#include "core/johnson.hpp"

namespace dts {

Bounds compute_bounds(const Instance& inst) {
  Bounds b;
  for (const Task& t : inst) {
    b.sum_comm += t.comm;
    b.sum_comp += t.comp;
  }
  b.area_lower = std::max(b.sum_comm, b.sum_comp);
  b.sequential_upper = b.sum_comm + b.sum_comp;
  b.omim_lower = omim(inst);
  return b;
}

}  // namespace dts
