#pragma once

/// \file simulate.hpp
/// Earliest-start execution engine for problem DT and its multi-channel
/// generalization.
///
/// The engine models the machine's copy engines (one availability clock
/// per channel — the paper's system is the one-channel case), one
/// processing unit, and the bounded memory of the target node. All
/// schedulers in the library drive the same engine, which guarantees they
/// share identical timing semantics:
///
///  * a transfer may start at time t only if the memory still held by
///    tasks whose transfer started and whose computation has not finished
///    (half-open intervals) leaves room for the new task;
///  * a transfer starts at the earliest instant >= the current decision
///    instant at which its own channel is free; transfers on distinct
///    channels overlap, transfers sharing a channel serialize;
///  * SCOMP(i) = max(SCOMM(i) + CM_i, processor-free time) — computations
///    are served in the order they are issued to the engine;
///  * when nothing fits, time advances to the next computation-finish
///    event (the only instants at which memory is released).
///
/// With a single channel these rules reproduce the paper's worked
/// schedules (Figs. 4-6) exactly; see tests/paper_examples_test.cpp and
/// the parity suite in tests/channels_test.cpp.

#include <algorithm>
#include <span>
#include <utility>
#include <vector>

#include "core/instance.hpp"
#include "core/schedule.hpp"

namespace dts {

/// Mutable execution state of the copy engines, the processor and the
/// memory node. Decision instants only move forward. A fresh state starts
/// at time 0 with every resource idle and no memory in use; batch
/// schedulers reuse one state across batches to model a runtime that
/// keeps issuing work.
class ExecutionState {
 public:
  /// Capacity may be kInfiniteMem for the unconstrained (OMIM) case.
  /// `n_channels` is the number of copy engines (>= 1); tasks name their
  /// engine via Task::channel.
  explicit ExecutionState(Mem capacity, std::size_t n_channels = 1);

  /// State carried over from a previous scheduling round: the single link
  /// and the processor become free at the given instants (memory starts
  /// empty; callers that carry in-flight tasks use start() replay
  /// instead). One-channel only — snapshots carry multi-channel clocks.
  ExecutionState(Mem capacity, Time comm_available, Time comp_available);

  /// The current decision instant (never decreases): the earliest instant
  /// at which a new transfer could still be issued.
  [[nodiscard]] Time now() const noexcept { return now_; }

  [[nodiscard]] std::size_t num_channels() const noexcept {
    return comm_avail_.size();
  }

  /// Instant at which channel `ch` is free for the next transfer.
  [[nodiscard]] Time comm_available(ChannelId ch) const {
    return comm_avail_.at(ch);
  }

  /// Instant at which *every* channel is free — for a single-channel state
  /// this is the link clock of the original model (the value batch
  /// schedulers carry across rounds and exact solvers tie-break on).
  [[nodiscard]] Time comm_available() const noexcept;

  [[nodiscard]] Time comp_available() const noexcept { return comp_avail_; }
  [[nodiscard]] Mem capacity() const noexcept { return capacity_; }

  /// Memory held at the current instant by tasks still owning their input.
  [[nodiscard]] Mem used_memory() const noexcept { return used_; }

  /// Number of tasks whose transfer started but whose computation has not
  /// finished at the current instant.
  [[nodiscard]] std::size_t active_tasks() const noexcept { return active_.size(); }

  /// Would `t` fit in memory if its transfer started right now?
  [[nodiscard]] bool fits(const Task& t) const noexcept;

  /// Footprint-only overload for SoA callers (compiled.hpp) that carry
  /// the memory requirement without materializing a Task.
  [[nodiscard]] bool fits(Mem mem) const noexcept;

  /// Earliest instant the transfer of `t` could start if issued now:
  /// max(now, its channel's free time). Throws std::out_of_range when the
  /// task names a channel this state does not have.
  [[nodiscard]] Time earliest_comm_start(const Task& t) const {
    return std::max(now_, comm_avail_.at(t.channel));
  }

  /// Idle time this task would inject on the processor if issued now:
  /// max(0, start + CM - processor-free). The dynamic and correction
  /// heuristics minimize this quantity over candidates (§4.2); with
  /// multiple channels it naturally interleaves directions, preferring a
  /// task whose engine is free over one whose engine is busy.
  [[nodiscard]] Time induced_comp_idle(const Task& t) const {
    return std::max(0.0, earliest_comm_start(t) + t.comm - comp_avail_);
  }

  /// Starts the transfer of `t` at the earliest feasible instant on its
  /// channel and queues its computation. Advances the decision instant to
  /// the earliest instant any channel is free again. Requires fits(t);
  /// throws std::logic_error otherwise, std::out_of_range for an unknown
  /// channel.
  TaskTimes start(const Task& t) { return start(t, 0.0); }

  /// Dependency-aware start: the transfer additionally waits for `ready`,
  /// the latest predecessor computation-finish instant (0 when the task
  /// has no predecessors — then this is exactly start(t)). Memory
  /// finishing in the waited gap is released before the footprint check,
  /// the same rule a busy channel already follows.
  TaskTimes start(const Task& t, Time ready);

  /// Advances the decision instant to the next computation-finish event,
  /// releasing its memory. Returns false (and leaves time unchanged) when
  /// no task is in flight.
  bool advance_to_next_release();

  /// Advances the decision instant to max(now, t), releasing memory of
  /// every computation finishing up to that instant and raising every
  /// channel clock to it.
  void advance_to(Time t);

  /// Value snapshot of the engine: per-channel availability plus the
  /// (comp-end, memory) pairs of in-flight tasks. Used by the window
  /// solver to explore candidate continuations and by the pair-order
  /// branch & bound to start mid-stream.
  struct Snapshot {
    /// One clock per channel; a default snapshot is a fresh single link.
    std::vector<Time> comm_available = {0.0};
    Time comp_available = 0.0;
    std::vector<std::pair<Time, Mem>> active;  ///< comp end, held memory
    /// Decision instant at capture. Restoring resumes from
    /// max(now, earliest channel clock): with one channel the last
    /// transfer's end always equals the decision instant, but with
    /// several channels an idle engine's clock can trail it — resuming
    /// from the trailing clock alone would issue transfers in the past,
    /// where memory this snapshot no longer tracks was still held
    /// (found by tests/differential_test.cpp).
    Time now = 0.0;

    /// The single link's clock; throws std::logic_error when the snapshot
    /// actually carries several channels (callers that assume the paper's
    /// one-link model use this accessor so the assumption is checked).
    [[nodiscard]] Time single_link_available() const;
  };
  [[nodiscard]] Snapshot snapshot() const;

  /// Rebuilds an engine from a snapshot (same capacity semantics); the
  /// channel count is the snapshot's clock count.
  ExecutionState(Mem capacity, const Snapshot& snap);

 private:
  struct ActiveTask {
    Time comp_end;
    Mem mem;
    /// Min-heap on comp_end.
    [[nodiscard]] bool operator>(const ActiveTask& o) const noexcept {
      return comp_end > o.comp_end;
    }
  };

  void release_until(Time t);
  /// now_ := max(now_, earliest channel-free instant), releasing memory.
  void advance_decision_instant();

  Mem capacity_;
  Time now_ = 0.0;
  std::vector<Time> comm_avail_;  // one availability clock per channel
  Time comp_avail_ = 0.0;
  Mem used_ = 0.0;
  std::vector<ActiveTask> active_;  // binary min-heap via std::*_heap
};

/// Executes `order` (task ids of `inst`) as a permutation schedule on an
/// existing state, writing start times into `out`. Each transfer starts at
/// the earliest feasible instant on its task's channel — and, on a DAG
/// instance, no earlier than every predecessor's computation end, read
/// from `out` (so batch and window callers that share one Schedule across
/// rounds honor cross-round edges for free). Throws std::invalid_argument
/// when a task can never fit (mem > capacity) or when a predecessor of a
/// task has not been scheduled before it. `ready_floors` (optional,
/// indexed by task id) additionally floors each transfer start at an
/// externally known instant — the window solver passes completion times
/// of predecessors that live outside the sub-instance; empty means none.
void execute_order(const Instance& inst, std::span<const TaskId> order,
                   ExecutionState& state, Schedule& out,
                   std::span<const Time> ready_floors = {});

/// Convenience: run `order` on a fresh state with one clock per channel of
/// `inst`; returns the schedule.
[[nodiscard]] Schedule simulate_order(const Instance& inst,
                                      std::span<const TaskId> order,
                                      Mem capacity);

/// Convenience: the makespan of simulate_order.
[[nodiscard]] Time makespan_of_order(const Instance& inst,
                                     std::span<const TaskId> order,
                                     Mem capacity);

}  // namespace dts
