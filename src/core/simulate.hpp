#pragma once

/// \file simulate.hpp
/// Earliest-start execution engine for problem DT.
///
/// The engine models the two resources of the paper's system (one transfer
/// link, one processing unit) plus the bounded memory of the target node.
/// All schedulers in the library drive the same engine, which guarantees
/// they share identical timing semantics:
///
///  * a transfer may start at time t only if the memory still held by
///    tasks whose transfer started and whose computation has not finished
///    (half-open intervals) leaves room for the new task;
///  * SCOMP(i) = max(SCOMM(i) + CM_i, processor-free time) — computations
///    are served in the order they are issued to the engine;
///  * when nothing fits, time advances to the next computation-finish
///    event (the only instants at which memory is released).
///
/// These rules reproduce the paper's worked schedules (Figs. 4-6) exactly;
/// see tests/paper_examples_test.cpp.

#include <span>
#include <utility>
#include <vector>

#include "core/instance.hpp"
#include "core/schedule.hpp"

namespace dts {

/// Mutable execution state of the two resources and the memory node.
/// Decision instants only move forward. A fresh state starts at time 0
/// with both resources idle and no memory in use; batch schedulers reuse
/// one state across batches to model a runtime that keeps issuing work.
class ExecutionState {
 public:
  /// Capacity may be kInfiniteMem for the unconstrained (OMIM) case.
  explicit ExecutionState(Mem capacity);

  /// State carried over from a previous scheduling round: the resources
  /// become free at the given instants (memory starts empty; callers that
  /// carry in-flight tasks use start() replay instead).
  ExecutionState(Mem capacity, Time comm_available, Time comp_available);

  /// The current decision instant for the link (never decreases).
  [[nodiscard]] Time now() const noexcept { return now_; }

  [[nodiscard]] Time comm_available() const noexcept { return comm_avail_; }
  [[nodiscard]] Time comp_available() const noexcept { return comp_avail_; }
  [[nodiscard]] Mem capacity() const noexcept { return capacity_; }

  /// Memory held at the current instant by tasks still owning their input.
  [[nodiscard]] Mem used_memory() const noexcept { return used_; }

  /// Number of tasks whose transfer started but whose computation has not
  /// finished at the current instant.
  [[nodiscard]] std::size_t active_tasks() const noexcept { return active_.size(); }

  /// Would `t` fit in memory if its transfer started right now?
  [[nodiscard]] bool fits(const Task& t) const noexcept;

  /// Idle time this task would inject on the processor if its transfer
  /// started now: max(0, now + CM - processor-free). The dynamic and
  /// correction heuristics minimize this quantity over candidates (§4.2).
  [[nodiscard]] Time induced_comp_idle(const Task& t) const noexcept;

  /// Starts the transfer of `t` at the current instant and queues its
  /// computation. Advances the decision instant to the end of the
  /// transfer. Requires fits(t); throws std::logic_error otherwise.
  TaskTimes start(const Task& t);

  /// Advances the decision instant to the next computation-finish event,
  /// releasing its memory. Returns false (and leaves time unchanged) when
  /// no task is in flight.
  bool advance_to_next_release();

  /// Advances the decision instant to max(now, t), releasing memory of
  /// every computation finishing up to that instant.
  void advance_to(Time t);

  /// Value snapshot of the engine: resource availability plus the
  /// (comp-end, memory) pairs of in-flight tasks. Used by the window
  /// solver to explore candidate continuations and by the pair-order
  /// branch & bound to start mid-stream.
  struct Snapshot {
    Time comm_available = 0.0;
    Time comp_available = 0.0;
    std::vector<std::pair<Time, Mem>> active;  ///< comp end, held memory
  };
  [[nodiscard]] Snapshot snapshot() const;

  /// Rebuilds an engine from a snapshot (same capacity semantics).
  ExecutionState(Mem capacity, const Snapshot& snap);

 private:
  struct ActiveTask {
    Time comp_end;
    Mem mem;
    /// Min-heap on comp_end.
    [[nodiscard]] bool operator>(const ActiveTask& o) const noexcept {
      return comp_end > o.comp_end;
    }
  };

  void release_until(Time t);

  Mem capacity_;
  Time now_ = 0.0;
  Time comm_avail_ = 0.0;
  Time comp_avail_ = 0.0;
  Mem used_ = 0.0;
  std::vector<ActiveTask> active_;  // binary min-heap via std::*_heap
};

/// Executes `order` (task ids of `inst`) as a permutation schedule on an
/// existing state, writing start times into `out`. Each transfer starts at
/// the earliest feasible instant. Throws std::invalid_argument when a task
/// can never fit (mem > capacity).
void execute_order(const Instance& inst, std::span<const TaskId> order,
                   ExecutionState& state, Schedule& out);

/// Convenience: run `order` on a fresh state; returns the schedule.
[[nodiscard]] Schedule simulate_order(const Instance& inst,
                                      std::span<const TaskId> order,
                                      Mem capacity);

/// Convenience: the makespan of simulate_order.
[[nodiscard]] Time makespan_of_order(const Instance& inst,
                                     std::span<const TaskId> order,
                                     Mem capacity);

}  // namespace dts
