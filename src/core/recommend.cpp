#include "core/recommend.hpp"

#include <stdexcept>

#include "core/johnson.hpp"
#include "core/validate.hpp"

namespace dts {

std::string_view to_string(CapacityRegime regime) noexcept {
  switch (regime) {
    case CapacityRegime::kUnconstrained: return "unconstrained";
    case CapacityRegime::kModerate: return "moderate";
    case CapacityRegime::kLimited: return "limited";
  }
  return "?";
}

CapacityRegime classify_capacity(const Instance& inst, Mem capacity) {
  const Mem johnson_peak = peak_memory(inst, johnson_schedule(inst));
  if (approx_leq(johnson_peak, capacity)) return CapacityRegime::kUnconstrained;
  const Mem mc = inst.min_capacity();
  // "Moderate" in the paper means constrained but close to what the OMIM
  // schedule needs; empirically the corrections family takes over around
  // 1.5x the minimum capacity (Figs. 10/12).
  return capacity >= 1.5 * mc ? CapacityRegime::kModerate
                              : CapacityRegime::kLimited;
}

namespace {

/// Mean communication time of tasks selected by `pred`; 0 when none match.
template <typename Pred>
Time mean_comm(const Instance& inst, Pred pred) {
  Time sum = 0.0;
  std::size_t count = 0;
  for (const Task& t : inst) {
    if (pred(t)) {
      sum += t.comm;
      ++count;
    }
  }
  return count == 0 ? 0.0 : sum / static_cast<Time>(count);
}

}  // namespace

Recommendation recommend(const Instance& inst, Mem capacity) {
  if (!inst.fully_bound()) {
    throw std::invalid_argument(
        "recommend: the instance has time-less (bytes-only) tasks; bind() "
        "it to a machine first");
  }
  const CapacityRegime regime = classify_capacity(inst, capacity);
  const InstanceStats stats = inst.stats();
  const double ci_frac = stats.compute_intensive_fraction();
  // "Significant percentage of both types": neither side dominates.
  const bool mixed = ci_frac > 0.35 && ci_frac < 0.65;

  switch (regime) {
    case CapacityRegime::kUnconstrained:
      return {HeuristicId::kOOSIM, regime,
              "memory capacity is not a restriction: Johnson order is optimal"};
    case CapacityRegime::kModerate:
      if (mixed) {
        return {HeuristicId::kOOMAMR, regime,
                "moderate capacity, significant share of both compute- and "
                "communication-intensive tasks"};
      }
      if (ci_frac >= 0.65) {
        return {HeuristicId::kOOSCMR, regime,
                "moderate capacity, tasks mostly compute intensive"};
      }
      return {HeuristicId::kOOLCMR, regime,
              "moderate capacity, tasks mostly communication intensive"};
    case CapacityRegime::kLimited: {
      if (mixed) {
        return {HeuristicId::kMAMR, regime,
                "limited capacity, significant share of both task types"};
      }
      // Does compute-intensity live in the small-communication tasks (HF's
      // shape, favoring SCMR) or in the large-communication ones (LCMR)?
      const Time ci_comm =
          mean_comm(inst, [](const Task& t) { return t.compute_intensive(); });
      const Time all_comm = mean_comm(inst, [](const Task&) { return true; });
      if (ci_comm <= all_comm) {
        return {HeuristicId::kSCMR, regime,
                "limited capacity, compute-intensive tasks have small "
                "communication times"};
      }
      return {HeuristicId::kLCMR, regime,
              "limited capacity, compute-intensive tasks have large "
              "communication times"};
    }
  }
  return {HeuristicId::kOOSIM, CapacityRegime::kUnconstrained, "fallback"};
}

}  // namespace dts
