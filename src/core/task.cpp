#include "core/task.hpp"

#include <cmath>
#include <sstream>

namespace dts {

Time Task::acceleration() const noexcept {
  if (comm <= 0.0) return kInfiniteTime;
  return comp / comm;
}

bool is_valid(const Task& t) noexcept {
  const bool comm_ok =
      (std::isfinite(t.comm) && t.comm >= 0.0) ||
      (t.comm == kUnboundTime && t.comm_bytes >= 0.0);  // time-less carrier
  const bool bytes_ok = t.comm_bytes == kUnknownBytes ||
                        (std::isfinite(t.comm_bytes) && t.comm_bytes >= 0.0);
  return comm_ok && bytes_ok &&                       //
         std::isfinite(t.comp) && t.comp >= 0.0 &&  //
         std::isfinite(t.mem) && t.mem >= 0.0 &&    //
         t.channel < kMaxChannels;
}

std::string to_string(const Task& t) {
  std::ostringstream os;
  os << (t.name.empty() ? "T" + std::to_string(t.id) : t.name) << "[comm=";
  if (t.time_bound()) {
    os << t.comm;
  } else {
    os << "?";  // time-less: costed by bind() from the byte annotation
  }
  os << " comp=" << t.comp << " mem=" << t.mem;
  if (t.channel != 0) os << " ch=" << t.channel;
  if (t.has_comm_bytes()) os << " bytes=" << t.comm_bytes;
  if (!t.deps.empty()) {
    os << " deps=";
    for (std::size_t i = 0; i < t.deps.size(); ++i) {
      if (i > 0) os << ",";
      os << t.deps[i];
    }
  }
  os << "]";
  return os.str();
}

}  // namespace dts
