#include "core/task.hpp"

#include <cmath>
#include <sstream>

namespace dts {

Time Task::acceleration() const noexcept {
  if (comm <= 0.0) return kInfiniteTime;
  return comp / comm;
}

bool is_valid(const Task& t) noexcept {
  return std::isfinite(t.comm) && t.comm >= 0.0 &&  //
         std::isfinite(t.comp) && t.comp >= 0.0 &&  //
         std::isfinite(t.mem) && t.mem >= 0.0 &&    //
         t.channel < kMaxChannels;
}

std::string to_string(const Task& t) {
  std::ostringstream os;
  os << (t.name.empty() ? "T" + std::to_string(t.id) : t.name)  //
     << "[comm=" << t.comm << " comp=" << t.comp << " mem=" << t.mem;
  if (t.channel != 0) os << " ch=" << t.channel;
  os << "]";
  return os.str();
}

}  // namespace dts
