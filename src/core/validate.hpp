#pragma once

/// \file validate.hpp
/// Feasibility checker for schedules of problem DT. This is the ground
/// truth every heuristic, exact solver and property test is held against:
/// a schedule is feasible iff
///   (1) communication intervals are pairwise disjoint *per channel* —
///       transfers sharing a copy engine serialize, transfers on distinct
///       engines (e.g. H2D vs D2H) may overlap; the paper's model is the
///       one-channel case,
///   (2) computation intervals are pairwise disjoint (one processor),
///   (3) each task computes only after its transfer completed,
///   (4) at every instant, the memory held by tasks whose transfer has
///       started and whose computation has not finished is at most C,
///   (5) on a DAG instance, each task's transfer starts no earlier than
///       every predecessor's computation end (Task::deps edges).
/// Memory intervals are half-open [SCOMM(i), SCOMP(i)+CP(i)): memory
/// released at a computation-finish instant is immediately available to a
/// transfer starting at that same instant (required by the tight schedules
/// of the paper's 3-Partition reduction, Fig. 2).

#include <string>
#include <vector>

#include "core/instance.hpp"
#include "core/schedule.hpp"

namespace dts {

/// One feasibility violation; `detail` is human-readable.
struct Violation {
  enum class Kind {
    kUnscheduledTask,
    kCommOverlap,       ///< two transfers overlap on the same channel
    kCompOverlap,       ///< two computations overlap on the processor
    kComputeBeforeData, ///< SCOMP(i) < SCOMM(i) + CM(i)
    kMemoryExceeded,    ///< active memory above capacity
    kNegativeStart,
    kDependencyViolated,///< SCOMM(i) < a predecessor's computation end
  };
  Kind kind;
  TaskId a = kInvalidTask;
  TaskId b = kInvalidTask;
  std::string detail;
};

struct ValidationReport {
  std::vector<Violation> violations;
  Mem peak_memory = 0.0;  ///< max over time of active memory
  [[nodiscard]] bool ok() const noexcept { return violations.empty(); }
  [[nodiscard]] std::string summary() const;
};

/// Full feasibility check, O(n log n). Pass capacity = kInfiniteMem to
/// skip check (4).
[[nodiscard]] ValidationReport validate_schedule(const Instance& inst,
                                                 const Schedule& sched,
                                                 Mem capacity);

/// Peak of the active-memory envelope of a (complete) schedule, regardless
/// of any capacity. Exposed separately because benches report it.
[[nodiscard]] Mem peak_memory(const Instance& inst, const Schedule& sched);

}  // namespace dts
