#include "core/schedule.hpp"

#include <algorithm>
#include <numeric>
#include <sstream>
#include <stdexcept>

namespace dts {

bool Schedule::complete() const noexcept {
  return std::all_of(times_.begin(), times_.end(),
                     [](const TaskTimes& t) { return t.scheduled(); });
}

Time Schedule::makespan(const Instance& inst) const {
  if (inst.size() != times_.size()) {
    throw std::invalid_argument("Schedule::makespan: instance size mismatch");
  }
  Time end = 0.0;
  for (TaskId i = 0; i < times_.size(); ++i) {
    if (!times_[i].scheduled()) {
      throw std::logic_error("Schedule::makespan: task " + std::to_string(i) +
                             " is unscheduled");
    }
    end = std::max(end, times_[i].comp_start + inst[i].comp);
  }
  return end;
}

namespace {

/// Orders by the primary instant, then the secondary one, then id. The
/// secondary key makes zero-length operations sort consistently on both
/// resources: a zero-length transfer issued at the same instant another
/// transfer starts is ordered by when its computation runs, so
/// is_permutation_schedule() reflects the issue order rather than ids.
std::vector<TaskId> order_by(const std::vector<TaskTimes>& times,
                             Time TaskTimes::* primary,
                             Time TaskTimes::* secondary) {
  std::vector<TaskId> ids(times.size());
  std::iota(ids.begin(), ids.end(), TaskId{0});
  std::sort(ids.begin(), ids.end(), [&](TaskId a, TaskId b) {
    if (times[a].*primary != times[b].*primary) {
      return times[a].*primary < times[b].*primary;
    }
    if (times[a].*secondary != times[b].*secondary) {
      return times[a].*secondary < times[b].*secondary;
    }
    return a < b;
  });
  return ids;
}

}  // namespace

std::vector<TaskId> Schedule::comm_order() const {
  return order_by(times_, &TaskTimes::comm_start, &TaskTimes::comp_start);
}

std::vector<TaskId> Schedule::comp_order() const {
  return order_by(times_, &TaskTimes::comp_start, &TaskTimes::comm_start);
}

bool Schedule::is_permutation_schedule() const {
  return comm_order() == comp_order();
}

std::string to_string(const Schedule& sched, const Instance& inst) {
  std::ostringstream os;
  for (TaskId id : sched.comm_order()) {
    const Task& t = inst[id];
    const TaskTimes& tt = sched[id];
    os << (t.name.empty() ? "T" + std::to_string(id) : t.name)  //
       << ": comm [" << tt.comm_start << ", " << tt.comm_start + t.comm << ")"
       << " comp [" << tt.comp_start << ", " << tt.comp_start + t.comp << ")\n";
  }
  return os.str();
}

}  // namespace dts
