#pragma once

/// \file auto_scheduler.hpp
/// The paper's closing perspective: "a runtime system aiming at exposing
/// different heuristics ... and automatically selecting the best one is
/// currently underway". Scheduling here is simulation — evaluating a
/// heuristic costs microseconds — so the auto-scheduler simply runs every
/// candidate on the instance and keeps the best feasible schedule.

#include <span>
#include <vector>

#include "core/instance.hpp"
#include "core/registry.hpp"
#include "core/schedule.hpp"

namespace dts {

struct HeuristicOutcome {
  HeuristicId id;
  Time makespan = kInfiniteTime;
};

struct AutoScheduleResult {
  HeuristicId best;
  Schedule schedule;             ///< best schedule found
  Time makespan = kInfiniteTime;
  Time omim = 0.0;               ///< lower bound, for the achieved ratio
  std::vector<HeuristicOutcome> outcomes;  ///< every candidate, display order

  /// makespan / OMIM — the paper's quality metric (>= 1).
  [[nodiscard]] double ratio_to_optimal() const noexcept {
    return omim <= 0.0 ? 1.0 : makespan / omim;
  }
};

/// Evaluates `candidates` (default: the whole registry) and returns the
/// winner; ties go to the earlier candidate. Throws std::invalid_argument
/// if a task exceeds the capacity (no heuristic can schedule it).
[[nodiscard]] AutoScheduleResult auto_schedule(const Instance& inst,
                                               Mem capacity,
                                               std::span<const HeuristicId> candidates);
[[nodiscard]] AutoScheduleResult auto_schedule(const Instance& inst,
                                               Mem capacity);

}  // namespace dts
