#pragma once

/// \file channels.hpp
/// The channel model of the execution core: a ChannelSet is the ordered
/// collection of copy engines a machine exposes for data transfers. The
/// paper's testbed is the degenerate one-element set (a single half-duplex
/// link shared by every transfer); its conclusion singles out CPU<->GPU
/// offload — one DMA engine per direction — as the natural next target,
/// which is the two-element duplex set. Arbitrary named links (NVLink
/// peers, NICs, ...) are additional elements.
///
/// Each task of an Instance names the channel its transfer occupies
/// (Task::channel); the engine keeps one availability clock per channel,
/// so transfers on distinct channels overlap while transfers sharing a
/// channel serialize. The compute resource and the memory capacity stay
/// global. A single-channel set reproduces the paper's semantics exactly.

#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

#include "core/types.hpp"
#include "model/transfer_model.hpp"

namespace dts {

/// One copy engine: a name for reports plus the affine transfer cost model
/// the trace generators use to convert bytes into channel occupancy time.
/// The scheduling core itself only consumes per-task transfer *times*; the
/// bandwidth/latency pair matters when synthesizing or calibrating traces.
/// Richer (piecewise) models live behind model/machine.hpp's Machine; a
/// ChannelSpec is that model's affine summary.
struct ChannelSpec {
  std::string name = "link";
  double bandwidth = 1.2e9;  ///< bytes/s moved once the transfer started
  double latency = 2.0e-6;   ///< per-transfer startup cost (s)

  /// Time this engine needs to move `bytes` — delegates to the library's
  /// single affine implementation (model/transfer_model.hpp).
  [[nodiscard]] Time transfer_time(double bytes) const noexcept {
    return affine_transfer_time(latency, bandwidth, bytes);
  }
};

/// Immutable ordered set of copy engines; ChannelId indexes into it.
/// Always holds at least one channel (a default-constructed set is the
/// paper's single link).
class ChannelSet {
 public:
  /// The paper's machine: one link.
  ChannelSet() : channels_{ChannelSpec{}} {}

  /// Throws std::invalid_argument for an empty list or non-positive /
  /// non-finite bandwidths and latencies.
  explicit ChannelSet(std::vector<ChannelSpec> channels);
  ChannelSet(std::initializer_list<ChannelSpec> channels)
      : ChannelSet(std::vector<ChannelSpec>(channels)) {}

  /// One channel with the given cost model.
  [[nodiscard]] static ChannelSet single_link(double bandwidth,
                                              double latency);

  /// Two independent engines, one per direction ("H2D"/"D2H"), as in a
  /// full-duplex PCIe or NVLink attachment.
  [[nodiscard]] static ChannelSet duplex(double h2d_bandwidth,
                                         double d2h_bandwidth,
                                         double latency);

  [[nodiscard]] std::size_t size() const noexcept { return channels_.size(); }
  [[nodiscard]] const ChannelSpec& operator[](ChannelId id) const {
    return channels_.at(id);
  }
  [[nodiscard]] auto begin() const noexcept { return channels_.begin(); }
  [[nodiscard]] auto end() const noexcept { return channels_.end(); }

  /// True for the one-element set — the configuration whose semantics (and
  /// solver support) match the original paper exactly.
  [[nodiscard]] bool single() const noexcept { return channels_.size() == 1; }

 private:
  std::vector<ChannelSpec> channels_;
};

}  // namespace dts
