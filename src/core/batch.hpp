#pragma once

/// \file batch.hpp
/// Batch scheduling (paper §6.3). A runtime scheduler rarely sees the whole
/// task set at once; it observes a limited window of independent tasks.
/// This module applies a heuristic to successive batches of `batch_size`
/// tasks (in submission order), carrying the link/processor availability
/// and the still-resident memory from one batch into the next — exactly
/// what a runtime that keeps issuing work would do.

#include <cstddef>
#include <span>
#include <vector>

#include "core/instance.hpp"
#include "core/registry.hpp"
#include "core/schedule.hpp"

namespace dts {

class Executor;  // job.hpp

/// Runs `id` on consecutive batches of `batch_size` tasks sharing one
/// execution state. A batch's ordering decisions (Johnson order, GG
/// sequence, First-Fit bins, dynamic selection...) only consider the tasks
/// of that batch, mirroring the paper's setup. `batch_size` of 0 is
/// rejected; a size >= n degenerates to the plain heuristic.
[[nodiscard]] Schedule schedule_in_batches(HeuristicId id, const Instance& inst,
                                           Mem capacity,
                                           std::size_t batch_size);

/// The online form of the paper's envisioned auto-selecting runtime: for
/// every batch, try each candidate heuristic from the state the previous
/// batches left behind (scheduling is simulation, so this is cheap), and
/// commit the one finishing the batch earliest (ties: earlier candidate,
/// then earlier link availability). Also reports which heuristic won each
/// batch.
struct BatchAutoResult {
  Schedule schedule;
  std::vector<HeuristicId> winners;  ///< one per batch
};

/// `executor` (job.hpp; e.g. a SolverPool) fans the per-batch candidate
/// trials — each an independent simulation of one candidate's subset
/// instance from the carried engine state — across workers. The committed
/// winner per batch is identical to the serial evaluation: trials are
/// independent and the reduction folds them in candidate order with the
/// same strict-preference rule. Null runs the trials serially.
[[nodiscard]] BatchAutoResult schedule_in_batches_auto(
    const Instance& inst, Mem capacity, std::size_t batch_size,
    std::span<const HeuristicId> candidates, Executor* executor = nullptr);

}  // namespace dts
