#pragma once

/// \file recommend.hpp
/// Codifies Table 6 ("Heuristics and their favorable scenarios") as an
/// executable recommender: given an instance and a capacity, classify the
/// capacity regime and the workload mix, and return the heuristic the
/// paper's table favors. The `bench/table6_favorable` harness checks these
/// recommendations empirically against synthetic workloads of each regime.

#include <string>

#include "core/instance.hpp"
#include "core/registry.hpp"

namespace dts {

/// How constrained the memory is relative to what the unconstrained
/// (Johnson) schedule would like to use.
enum class CapacityRegime {
  kUnconstrained,  ///< capacity >= peak memory of the Johnson schedule
  kModerate,       ///< constrained, but close to the unconstrained peak
  kLimited,        ///< close to the minimum feasible capacity mc
};

[[nodiscard]] std::string_view to_string(CapacityRegime regime) noexcept;

/// Classifies `capacity` against the Johnson schedule's memory envelope.
/// The moderate/limited split follows the paper's empirical reading: above
/// ~1.5x the minimum capacity the corrections heuristics dominate, below
/// it the dynamic ones do.
[[nodiscard]] CapacityRegime classify_capacity(const Instance& inst,
                                               Mem capacity);

struct Recommendation {
  HeuristicId primary;
  CapacityRegime regime;
  std::string rationale;  ///< the matching Table 6 row, spelled out
};

/// Table 6 lookup. Workload descriptors used:
///  * compute-intensive fraction (CP >= CM tasks);
///  * whether compute-intensive tasks have systematically smaller or
///    larger communication times than the rest (drives LCMR vs SCMR).
[[nodiscard]] Recommendation recommend(const Instance& inst, Mem capacity);

}  // namespace dts
