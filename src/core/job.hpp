#pragma once

/// \file job.hpp
/// One unit of work for the concurrent solve service (pool.hpp): a
/// SolveRequest plus the service-level envelope a library of solvers does
/// not know about — which solver to run, a priority, a wall-clock deadline
/// measured from submission, and a handle through which the submitter
/// observes and controls the job.
///
/// A job moves through exactly one path of
///
///   kQueued --> kRunning --> { kDone | kCancelled | kFailed }
///          \--> kCancelled            (cancelled or expired before start)
///
/// and never leaves a terminal state. JobHandle is a value type sharing
/// state with the pool; it stays valid after the pool is destroyed (the
/// pool resolves every job to a terminal state before its destructor
/// returns).

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>

#include "core/solver.hpp"
#include "support/contract.hpp"

namespace dts {

/// Minimal fan-out interface for solver-internal parallelism: run fn(i)
/// for every i in [0, n), possibly concurrently; return once all
/// iterations finished. fn must be safe to call concurrently for distinct
/// i. SolverPool implements this over its workers with the calling thread
/// participating, so a pool job may fan its own subtasks without risking
/// deadlock; SerialExecutor is the trivial single-threaded implementation.
class Executor {
 public:
  virtual ~Executor() = default;
  virtual void for_each(std::size_t n,
                        const std::function<void(std::size_t)>& fn) = 0;
};

/// The do-it-inline executor; useful as a stand-in where an Executor* is
/// required but concurrency is not wanted.
class SerialExecutor final : public Executor {
 public:
  void for_each(std::size_t n,
                const std::function<void(std::size_t)>& fn) override {
    for (std::size_t i = 0; i < n; ++i) fn(i);
  }
};

/// Lifecycle of a job. kDone means the solver ran to natural completion;
/// a run that stopped early on its deadline or a cancel() lands in
/// kCancelled even though a complete best-so-far schedule may be
/// available (JobOutcome::has_result distinguishes the two flavors).
enum class JobStatus {
  kQueued,     ///< accepted, waiting for a worker
  kRunning,    ///< a worker is executing the solve
  kDone,       ///< solver completed normally; result valid
  kCancelled,  ///< cancelled/expired (before start: no result; mid-run:
               ///< best-so-far incumbent in the result)
  kFailed,     ///< the solver threw; error holds the message
};

[[nodiscard]] std::string_view to_string(JobStatus status) noexcept;

/// True for kDone, kCancelled and kFailed — states a job never leaves.
[[nodiscard]] constexpr bool is_terminal(JobStatus status) noexcept {
  return status == JobStatus::kDone || status == JobStatus::kCancelled ||
         status == JobStatus::kFailed;
}

/// Everything the pool needs to run one solve. The embedded
/// SolveOptions are honored except for `cancel`, which the pool replaces
/// with the job's own token so JobHandle::cancel() and pool shutdown can
/// reach the run (cancel a pool job through its handle, not a private
/// token).
struct JobRequest {
  SolveRequest request;
  std::string solver = "auto";
  SolveOptions options;
  /// Larger runs earlier under SolverPoolOptions::Policy::kPriority;
  /// ignored (pure FIFO) otherwise. Ties keep submission order.
  int priority = 0;
  /// Wall-clock budget measured from submit(), covering time spent in the
  /// queue: a job dequeued with its deadline already passed is cancelled
  /// without running, and one dequeued with some budget left runs with
  /// options.time_limit_seconds tightened to the remainder (the existing
  /// anytime-solver plumbing returns the best-so-far schedule).
  std::optional<double> deadline_seconds;
  /// Free-form label carried into reports (CSV rows, logs).
  std::string tag;
};

/// Terminal snapshot of a job.
struct JobOutcome {
  JobStatus status = JobStatus::kCancelled;
  /// Valid when has_result: the solver's result, including the
  /// best-so-far incumbent of a deadline/cancel-stopped run.
  SolveResult result;
  bool has_result = false;
  /// Failure or cancellation detail ("deadline expired before the job
  /// started", the solver's exception message, ...).
  std::string error;
  /// Position in the pool-wide terminal order (0 = first job to resolve).
  /// Makes completion order observable — which jobs a priority policy
  /// actually ran first, which were drained by shutdown.
  std::uint64_t sequence = 0;
};

namespace detail {

/// Terminal-transition counters shared between a pool and its jobs (the
/// jobs keep them alive, so a handle outliving the pool stays safe).
struct JobCounters {
  std::atomic<std::uint64_t> submitted{0};
  std::atomic<std::uint64_t> done{0};
  std::atomic<std::uint64_t> cancelled{0};
  std::atomic<std::uint64_t> failed{0};
  /// Feeds JobOutcome::sequence.
  std::atomic<std::uint64_t> terminal_sequence{0};
};

/// Shared state behind JobHandle; the pool drives the status machine,
/// handles observe it. All transitions happen under one mutex; the
/// condition variable wakes waiters on the terminal transition.
class JobState {
 public:
  JobState(std::uint64_t id, JobRequest request,
           std::shared_ptr<JobCounters> counters);

  [[nodiscard]] std::uint64_t id() const noexcept { return id_; }
  [[nodiscard]] const JobRequest& request() const noexcept { return request_; }
  [[nodiscard]] const CancellationToken& token() const noexcept {
    return token_;
  }
  [[nodiscard]] const std::optional<
      std::chrono::steady_clock::time_point>&
  deadline() const noexcept {
    return deadline_;
  }

  /// Called by the pool at submission: fixes the absolute deadline.
  void arm_deadline(std::chrono::steady_clock::time_point now);

  [[nodiscard]] JobStatus status() const;

  /// Queued job: resolve to kCancelled immediately (the worker skips the
  /// stale queue entry). Running job: fire the cooperative token. Terminal
  /// job: no-op.
  void cancel(std::string reason);

  /// Blocks until the job is terminal; returns the outcome.
  [[nodiscard]] const JobOutcome& wait() const;

  /// Waits up to `seconds`; true when the job reached a terminal state.
  [[nodiscard]] bool wait_for(double seconds) const;

  /// kQueued -> kRunning. False when the job was already resolved
  /// (cancelled while queued) — the worker must skip it.
  [[nodiscard]] bool mark_running();

  /// kRunning -> terminal (worker side). The status inside `outcome`
  /// decides the terminal state.
  void finish(JobOutcome outcome);

  /// Invoked at most once, on the terminal transition, *after* the job's
  /// mutex has been released — so the hook may take locks that are
  /// ordered before the job mutex (the pool takes its own mutex inside
  /// to wake producers blocked on a full queue without losing the
  /// notification). Set before the job becomes visible to other threads.
  void set_terminal_hook(std::function<void()> hook) {
    terminal_hook_ = std::move(hook);
  }

 private:
  /// Requires lock held; performs the terminal transition exactly once.
  void finish_locked(JobOutcome&& outcome);

  const std::uint64_t id_;
  const JobRequest request_;
  const CancellationToken token_ = CancellationToken::source();
  std::optional<std::chrono::steady_clock::time_point> deadline_;
  std::shared_ptr<JobCounters> counters_;
  std::function<void()> terminal_hook_;

  mutable std::mutex mutex_;
  mutable std::condition_variable terminal_cv_;
  JobStatus status_ = JobStatus::kQueued;
  JobOutcome outcome_;
  /// Audit-mode scratch: set by the one permitted terminal transition so
  /// a second transition trips the contract instead of racing silently.
  DTS_AUDIT_ONLY(bool audit_terminal_ = false;)
};

}  // namespace detail

/// The submitter's view of one job. Cheap to copy; all copies observe the
/// same job. A default-constructed handle is empty (valid() == false) and
/// every other accessor throws std::logic_error on it.
class JobHandle {
 public:
  JobHandle() = default;

  [[nodiscard]] bool valid() const noexcept { return state_ != nullptr; }

  /// Monotonic per-pool id, in submission order.
  [[nodiscard]] std::uint64_t id() const;

  /// The tag the request was submitted with.
  [[nodiscard]] const std::string& tag() const;

  /// Current status; a terminal answer is final, a non-terminal one may
  /// be stale by the time the caller acts on it.
  [[nodiscard]] JobStatus status() const;

  [[nodiscard]] bool terminal() const { return is_terminal(status()); }

  /// Cancels a queued job immediately; asks a running job to stop at its
  /// next cancellation poll (anytime solvers return their incumbent).
  /// No-op on a terminal job.
  void cancel() const;

  /// Blocks until terminal; the reference stays valid for the life of the
  /// handle's shared state.
  [[nodiscard]] const JobOutcome& wait() const;

  /// Waits up to `seconds`; true when the job is terminal.
  [[nodiscard]] bool wait_for(double seconds) const;

 private:
  friend class SolverPool;
  explicit JobHandle(std::shared_ptr<detail::JobState> state)
      : state_(std::move(state)) {}

  [[nodiscard]] detail::JobState& checked() const;

  std::shared_ptr<detail::JobState> state_;
};

}  // namespace dts
