#include "core/registry.hpp"

#include <array>
#include <stdexcept>

#include "core/simulate.hpp"
#include "heuristics/bin_packing.hpp"
#include "heuristics/corrections.hpp"
#include "heuristics/dynamic.hpp"
#include "heuristics/gilmore_gomory.hpp"
#include "heuristics/static_orders.hpp"

namespace dts {

namespace {

constexpr std::array<HeuristicInfo, 14> kRegistry{{
    {HeuristicId::kOS, "OS", HeuristicCategory::kBaseline,
     "order of submission"},
    {HeuristicId::kOOSIM, "OOSIM", HeuristicCategory::kStatic,
     "Johnson (infinite-memory optimal) order under the capacity"},
    {HeuristicId::kIOCMS, "IOCMS", HeuristicCategory::kStatic,
     "non-decreasing communication time"},
    {HeuristicId::kDOCPS, "DOCPS", HeuristicCategory::kStatic,
     "non-increasing computation time"},
    {HeuristicId::kIOCCS, "IOCCS", HeuristicCategory::kStatic,
     "non-decreasing communication + computation"},
    {HeuristicId::kDOCCS, "DOCCS", HeuristicCategory::kStatic,
     "non-increasing communication + computation"},
    {HeuristicId::kGG, "GG", HeuristicCategory::kStatic,
     "Gilmore-Gomory optimal no-wait sequence"},
    {HeuristicId::kBP, "BP", HeuristicCategory::kStatic,
     "First-Fit memory bin packing"},
    {HeuristicId::kLCMR, "LCMR", HeuristicCategory::kDynamic,
     "largest communication among fitting, min-idle tasks"},
    {HeuristicId::kSCMR, "SCMR", HeuristicCategory::kDynamic,
     "smallest communication among fitting, min-idle tasks"},
    {HeuristicId::kMAMR, "MAMR", HeuristicCategory::kDynamic,
     "maximum CP/CM ratio among fitting, min-idle tasks"},
    {HeuristicId::kOOLCMR, "OOLCMR", HeuristicCategory::kCorrected,
     "Johnson order, diverting to largest-communication fitting task"},
    {HeuristicId::kOOSCMR, "OOSCMR", HeuristicCategory::kCorrected,
     "Johnson order, diverting to smallest-communication fitting task"},
    {HeuristicId::kOOMAMR, "OOMAMR", HeuristicCategory::kCorrected,
     "Johnson order, diverting to highest CP/CM fitting task"},
}};

}  // namespace

std::span<const HeuristicInfo> all_heuristics() noexcept { return kRegistry; }

std::vector<HeuristicId> all_heuristic_ids() {
  std::vector<HeuristicId> ids;
  ids.reserve(kRegistry.size());
  for (const auto& h : kRegistry) ids.push_back(h.id);
  return ids;
}

std::vector<HeuristicId> heuristics_in(HeuristicCategory cat) {
  std::vector<HeuristicId> ids;
  for (const auto& h : kRegistry) {
    if (h.category == cat) ids.push_back(h.id);
  }
  return ids;
}

const HeuristicInfo& info(HeuristicId id) noexcept {
  for (const auto& h : kRegistry) {
    if (h.id == id) return h;
  }
  return kRegistry[0];  // unreachable for valid ids
}

std::string_view name_of(HeuristicId id) noexcept { return info(id).name; }

std::string_view name_of(HeuristicCategory cat) noexcept {
  switch (cat) {
    case HeuristicCategory::kBaseline: return "Baseline";
    case HeuristicCategory::kStatic: return "Static";
    case HeuristicCategory::kDynamic: return "Dynamic";
    case HeuristicCategory::kCorrected: return "Static+Dynamic";
  }
  return "?";
}

std::optional<HeuristicId> heuristic_from_name(std::string_view name) noexcept {
  for (const auto& h : kRegistry) {
    if (h.name == name) return h.id;
  }
  return std::nullopt;
}

Schedule run_heuristic(HeuristicId id, const Instance& inst, Mem capacity) {
  switch (id) {
    case HeuristicId::kOS:
      // The submission order itself may violate edges (ids are arbitrary);
      // OS on a DAG is "submission order, repaired minimally".
      return inst.has_dependencies()
                 ? simulate_order(
                       inst, legalize_order(inst, inst.submission_order()),
                       capacity)
                 : simulate_order(inst, inst.submission_order(), capacity);
    case HeuristicId::kOOSIM:
      return schedule_static(inst, StaticOrderPolicy::kJohnson, capacity);
    case HeuristicId::kIOCMS:
      return schedule_static(inst, StaticOrderPolicy::kIncreasingComm, capacity);
    case HeuristicId::kDOCPS:
      return schedule_static(inst, StaticOrderPolicy::kDecreasingComp, capacity);
    case HeuristicId::kIOCCS:
      return schedule_static(inst, StaticOrderPolicy::kIncreasingCommPlusComp,
                             capacity);
    case HeuristicId::kDOCCS:
      return schedule_static(inst, StaticOrderPolicy::kDecreasingCommPlusComp,
                             capacity);
    case HeuristicId::kGG:
      return schedule_gilmore_gomory(inst, capacity);
    case HeuristicId::kBP:
      return schedule_bin_packing(inst, capacity);
    case HeuristicId::kLCMR:
      return schedule_dynamic(inst, DynamicCriterion::kLargestComm, capacity);
    case HeuristicId::kSCMR:
      return schedule_dynamic(inst, DynamicCriterion::kSmallestComm, capacity);
    case HeuristicId::kMAMR:
      return schedule_dynamic(inst, DynamicCriterion::kMaxAcceleration,
                              capacity);
    case HeuristicId::kOOLCMR:
      return schedule_corrected(inst, DynamicCriterion::kLargestComm, capacity);
    case HeuristicId::kOOSCMR:
      return schedule_corrected(inst, DynamicCriterion::kSmallestComm, capacity);
    case HeuristicId::kOOMAMR:
      return schedule_corrected(inst, DynamicCriterion::kMaxAcceleration,
                                capacity);
  }
  throw std::invalid_argument("run_heuristic: unknown heuristic id");
}

Time heuristic_makespan(HeuristicId id, const Instance& inst, Mem capacity) {
  return run_heuristic(id, inst, capacity).makespan(inst);
}

}  // namespace dts
