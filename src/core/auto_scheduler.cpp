#include "core/auto_scheduler.hpp"

#include "core/johnson.hpp"

namespace dts {

AutoScheduleResult auto_schedule(const Instance& inst, Mem capacity,
                                 std::span<const HeuristicId> candidates) {
  AutoScheduleResult result;
  result.omim = omim(inst);
  result.best = candidates.empty() ? HeuristicId::kOS : candidates.front();
  for (HeuristicId id : candidates) {
    Schedule sched = run_heuristic(id, inst, capacity);
    const Time ms = inst.empty() ? 0.0 : sched.makespan(inst);
    result.outcomes.push_back(HeuristicOutcome{id, ms});
    if (ms < result.makespan) {
      result.makespan = ms;
      result.best = id;
      result.schedule = std::move(sched);
    }
  }
  if (inst.empty()) result.makespan = 0.0;
  return result;
}

AutoScheduleResult auto_schedule(const Instance& inst, Mem capacity) {
  const std::vector<HeuristicId> ids = all_heuristic_ids();
  return auto_schedule(inst, capacity, ids);
}

}  // namespace dts
