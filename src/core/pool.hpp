#pragma once

/// \file pool.hpp
/// SolverPool — the concurrent solve service. A bounded work queue feeds a
/// fixed crew of worker threads; each worker resolves the job's solver in
/// the global registry and runs dts::solve() with the job's own
/// cancellation token and its remaining deadline budget. The pool turns
/// the library of solvers into a service that can sit under sustained
/// traffic:
///
///   SolverPool pool({.workers = 4});
///   JobHandle h = pool.submit({.request = {inst, capacity},
///                              .solver = "auto",
///                              .deadline_seconds = 0.5});
///   const JobOutcome& outcome = h.wait();   // or h.cancel() / h.status()
///   pool.shutdown(DrainMode::kDrain);       // finish queued work, then stop
///
/// Guarantees (tests/pool_test.cpp):
///   * every submitted job reaches exactly one terminal state — nothing is
///     lost, nothing runs twice, even across cancellations and shutdown;
///   * an uncancelled job's result is identical to a serial dts::solve()
///     of the same request (workers add no nondeterminism);
///   * destruction never blocks on solver completion longer than the
///     solvers' own cancellation latency: the destructor cancels queued
///     and running work, then joins.
///
/// The pool is also an Executor: solvers may fan internal subtasks
/// (batch-auto candidate trials, exhaustive window enumeration) across
/// the same workers via SolveOptions::executor. Jobs that leave the
/// executor unset get this pool installed automatically — inner fan-out
/// shares the crew instead of spawning per-job parallel_for threads, so
/// N concurrent jobs never oversubscribe the machine. Subtasks bypass
/// the job queue and its capacity bound, and the calling thread
/// participates, so fan-out from inside a pool job cannot deadlock.

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "core/job.hpp"

namespace dts {

/// How shutdown treats work that has not finished.
enum class DrainMode {
  kDrain,   ///< run every queued job to completion, then stop
  kCancel,  ///< cancel queued jobs, ask running jobs to stop, then stop
};

/// Outcome of a non-blocking submit. The two refusal reasons are
/// deliberately distinct: a full queue is transient (back off and retry —
/// the admission-control "shed" signal), while a shutting-down pool is
/// terminal (drain the connection — retrying can never succeed). The
/// optional-returning try_submit() conflated them, which left services
/// racing shutdown unable to answer "retry or go away?" deterministically.
enum class SubmitStatus {
  kAccepted,      ///< job enqueued; the handle is valid
  kQueueFull,     ///< transient: queue at capacity, retry later
  kShuttingDown,  ///< terminal: shutdown began, no submit can ever succeed
};

struct SolverPoolOptions {
  /// Worker threads; 0 means parallel_workers() (hardware concurrency).
  std::size_t workers = 0;
  /// Upper bound on *queued* (not yet running) jobs. submit() blocks while
  /// the queue is full — natural producer backpressure; try_submit()
  /// refuses instead. Must be >= 1.
  std::size_t queue_capacity = 1024;
  enum class Policy {
    kFifo,      ///< submission order
    kPriority,  ///< JobRequest::priority desc, ties in submission order
  };
  Policy policy = Policy::kFifo;
};

class SolverPool final : public Executor {
 public:
  explicit SolverPool(const SolverPoolOptions& options = {});
  ~SolverPool() override;

  SolverPool(const SolverPool&) = delete;
  SolverPool& operator=(const SolverPool&) = delete;

  /// Enqueues a job; blocks while the queue is at capacity. Throws
  /// std::runtime_error once shutdown began. Do not call from a worker
  /// thread (a full queue would deadlock the crew); solvers fan subtasks
  /// via the Executor interface instead.
  [[nodiscard]] JobHandle submit(JobRequest request);

  /// Non-blocking submit: nullopt when the queue is full or the pool is
  /// shutting down. Callers that must distinguish the two (admission
  /// control vs. drain) use the status-reporting overload below.
  [[nodiscard]] std::optional<JobHandle> try_submit(JobRequest request);

  /// Non-blocking submit with a deterministic refusal reason. On
  /// kAccepted, `out` holds the job's handle; otherwise `out` is left
  /// untouched. A pool in shutdown always reports kShuttingDown, even
  /// when the queue is also full — the terminal condition dominates the
  /// transient one.
  [[nodiscard]] SubmitStatus try_submit(JobRequest request, JobHandle& out);

  /// Stops accepting work and resolves everything in flight according to
  /// `mode`, then joins the workers. Idempotent; concurrent callers block
  /// until the first shutdown completed. The destructor runs
  /// shutdown(DrainMode::kCancel).
  void shutdown(DrainMode mode = DrainMode::kDrain);

  /// Executor: run fn(i) for i in [0, n) across the workers, calling
  /// thread included. Returns when every iteration finished.
  void for_each(std::size_t n,
                const std::function<void(std::size_t)>& fn) override;

  [[nodiscard]] std::size_t worker_count() const noexcept {
    return workers_.size();
  }

  /// Point-in-time service counters (monotonic except `queued`).
  struct Stats {
    std::uint64_t submitted = 0;
    std::uint64_t done = 0;
    std::uint64_t cancelled = 0;  ///< before start or mid-run
    std::uint64_t failed = 0;
    std::size_t queued = 0;       ///< waiting in the queue right now
    std::size_t peak_queued = 0;  ///< high-water mark of `queued`
  };
  [[nodiscard]] Stats stats() const;

 private:
  struct QueuedJob {
    std::shared_ptr<detail::JobState> job;
    /// Selection key under kPriority; queue position breaks ties (FIFO).
    int priority = 0;
  };

  void worker_loop();
  void run_job(const std::shared_ptr<detail::JobState>& job);
  /// Pops the next job under `mutex_` (held by the caller) following the
  /// configured policy.
  [[nodiscard]] std::shared_ptr<detail::JobState> pop_job_locked();
  /// Drops queue entries whose job already resolved (cancelled while
  /// queued) so they stop counting against queue_capacity. Caller holds
  /// `mutex_`.
  void prune_resolved_locked();
  /// Creates, arms and enqueues the job. Caller holds `mutex_` and has
  /// verified capacity/accepting.
  [[nodiscard]] std::shared_ptr<detail::JobState> enqueue_locked(
      JobRequest request);

  const SolverPoolOptions options_;
  std::shared_ptr<detail::JobCounters> counters_ =
      std::make_shared<detail::JobCounters>();

  mutable std::mutex mutex_;
  std::condition_variable work_cv_;      ///< workers: work available / stop
  std::condition_variable not_full_cv_;  ///< producers: queue has room
  std::deque<QueuedJob> queue_;
  std::deque<std::function<void()>> subtasks_;  ///< Executor fan-out, runs first
  /// Jobs currently executing, so shutdown(kCancel) can reach their tokens.
  std::vector<std::shared_ptr<detail::JobState>> running_;
  bool accepting_ = true;
  bool stopping_ = false;
  std::uint64_t next_id_ = 0;
  std::size_t peak_queued_ = 0;

  /// Serializes shutdown; `joined_` is only touched under it.
  std::mutex shutdown_mutex_;
  bool joined_ = false;

  std::vector<std::thread> workers_;
};

/// Convenience fan-out: submit every request and wait for all outcomes,
/// returned in input order. Blocks the calling thread (which acts as the
/// producer); do not call from a pool worker.
[[nodiscard]] std::vector<JobOutcome> solve_all(SolverPool& pool,
                                                std::vector<JobRequest> requests);

}  // namespace dts
