#include "core/channels.hpp"

#include <cmath>
#include <stdexcept>

namespace dts {

ChannelSet::ChannelSet(std::vector<ChannelSpec> channels)
    : channels_(std::move(channels)) {
  if (channels_.empty()) {
    throw std::invalid_argument("ChannelSet: need at least one channel");
  }
  for (const ChannelSpec& c : channels_) {
    if (!(std::isfinite(c.bandwidth) && c.bandwidth > 0.0)) {
      throw std::invalid_argument("ChannelSet: channel '" + c.name +
                                  "' has a non-positive bandwidth");
    }
    if (!(std::isfinite(c.latency) && c.latency >= 0.0)) {
      throw std::invalid_argument("ChannelSet: channel '" + c.name +
                                  "' has a negative latency");
    }
  }
}

ChannelSet ChannelSet::single_link(double bandwidth, double latency) {
  return ChannelSet{ChannelSpec{"link", bandwidth, latency}};
}

ChannelSet ChannelSet::duplex(double h2d_bandwidth, double d2h_bandwidth,
                              double latency) {
  return ChannelSet{ChannelSpec{"H2D", h2d_bandwidth, latency},
                    ChannelSpec{"D2H", d2h_bandwidth, latency}};
}

}  // namespace dts
