#pragma once

/// \file instance.hpp
/// An Instance is the input of problem DT: a set of independent tasks to be
/// moved through one communication link and one processing unit.

#include <initializer_list>
#include <span>
#include <string>
#include <vector>

#include "core/task.hpp"

namespace dts {

/// Aggregate workload characteristics (Figure 8 of the paper).
struct InstanceStats {
  Time sum_comm = 0.0;           ///< Total transfer occupancy, all channels.
  Time sum_comp = 0.0;           ///< Total compute occupancy.
  /// Transfer occupancy per copy engine; size = the instance's channel
  /// count (a single-link instance has one entry equal to sum_comm).
  std::vector<Time> sum_comm_per_channel;
  Mem max_mem = 0.0;             ///< mc: minimum feasible memory capacity.
  Mem total_mem = 0.0;           ///< Sum of all memory requirements.
  std::size_t n_compute_intensive = 0;  ///< Tasks with CP >= CM.
  std::size_t n_tasks = 0;

  /// Fraction of tasks that are compute intensive.
  [[nodiscard]] double compute_intensive_fraction() const noexcept {
    return n_tasks == 0 ? 0.0
                        : static_cast<double>(n_compute_intensive) /
                              static_cast<double>(n_tasks);
  }
};

/// Immutable-after-construction set of tasks. Task ids always equal their
/// position, which lets schedules and orders be plain index vectors.
///
/// Tasks may carry dependency edges (Task::deps): task t's transfer may
/// not start before every predecessor's computation has finished. The
/// constructor validates the edge set — dangling ids, self-edges and
/// cycles are rejected with std::invalid_argument — so every constructed
/// instance is a DAG and has_dependencies() is trustworthy downstream.
class Instance {
 public:
  Instance() = default;

  /// Builds an instance from tasks; ids are (re)assigned to positions.
  /// Throws std::invalid_argument if any task has negative or non-finite
  /// durations/memory, or if the dependency edges reference a task id
  /// outside the instance, contain a self-edge, or form a cycle.
  explicit Instance(std::vector<Task> tasks);

  /// Convenience builder from (comm, comp, mem) triples, for tests and the
  /// paper's example tables.
  struct Triple {
    Time comm;
    Time comp;
    Mem mem;
  };
  static Instance from_triples(std::initializer_list<Triple> triples);

  /// Paper convention used throughout Sections 3-4: memory requirement of a
  /// task equals its communication time. Builds from (comm, comp) pairs.
  struct Pair {
    Time comm;
    Time comp;
  };
  static Instance from_comm_comp(std::initializer_list<Pair> pairs);

  [[nodiscard]] std::size_t size() const noexcept { return tasks_.size(); }
  [[nodiscard]] bool empty() const noexcept { return tasks_.empty(); }
  [[nodiscard]] const Task& operator[](TaskId id) const { return tasks_.at(id); }
  [[nodiscard]] const std::vector<Task>& tasks() const noexcept { return tasks_; }

  [[nodiscard]] auto begin() const noexcept { return tasks_.begin(); }
  [[nodiscard]] auto end() const noexcept { return tasks_.end(); }

  /// mc — the smallest capacity for which any schedule exists (the largest
  /// single-task footprint). All evaluation sweeps run capacities in
  /// [mc, 2mc]. Cached at construction (tasks are immutable afterwards),
  /// so capacity-sweep and solver hot loops read a field, not an O(n) scan.
  [[nodiscard]] Mem min_capacity() const noexcept { return min_capacity_; }

  /// Number of copy engines the instance's tasks reference: 1 + the
  /// largest Task::channel (1 for an empty instance). The execution engine
  /// keeps one availability clock per channel; a value of 1 is exactly the
  /// paper's single-link model.
  [[nodiscard]] std::size_t num_channels() const noexcept {
    return num_channels_;
  }

  /// True when every transfer shares one link — the configuration all
  /// original paper results (and the exact pair-order solvers) assume.
  [[nodiscard]] bool single_channel() const noexcept {
    return num_channels_ == 1;
  }

  /// True when every task has an actual transfer time (no kUnboundTime
  /// sentinels). Solvers require a fully bound instance; a bytes-only
  /// trace becomes bound via bind(inst, machine) (model/machine.hpp).
  [[nodiscard]] bool fully_bound() const noexcept { return fully_bound_; }

  /// True when every task records the bytes its transfer moves, i.e. the
  /// whole instance can be re-costed for another machine.
  [[nodiscard]] bool fully_byte_annotated() const noexcept {
    return fully_byte_annotated_;
  }

  /// True when any task carries a dependency edge. Edge-free instances —
  /// the paper's model — take the original hot paths untouched; DAG logic
  /// everywhere is gated on this flag. Cached at construction.
  [[nodiscard]] bool has_dependencies() const noexcept {
    return has_dependencies_;
  }

  /// A deterministic topological order of the task ids: among the tasks
  /// whose predecessors are all placed, always the smallest id first. For
  /// an edge-free instance this is exactly submission_order(), which is
  /// what keeps DAG-aware solvers bit-identical on paper workloads.
  [[nodiscard]] std::vector<TaskId> topological_order() const;

  /// True iff `order` is a permutation of [0, n) that places every task
  /// after all of its predecessors.
  [[nodiscard]] bool is_topological_order(
      std::span<const TaskId> order) const;

  /// Ids of the tasks whose transfer runs on `ch`, in submission order.
  [[nodiscard]] std::vector<TaskId> tasks_on_channel(ChannelId ch) const;

  /// Aggregate characteristics; O(n), not cached (instances are small).
  [[nodiscard]] InstanceStats stats() const;

  /// New instance containing only `ids`, in the given order, with ids
  /// renumbered to positions. Dependency edges between two selected tasks
  /// are kept (remapped to the new ids); edges to tasks outside the subset
  /// are dropped — the caller owns cross-boundary readiness (the window
  /// solver passes predecessor completion times alongside the carried
  /// engine snapshot). Used by the batch scheduler and the window solver.
  /// Throws std::out_of_range on a bad id.
  [[nodiscard]] Instance subset(std::span<const TaskId> ids) const;

  /// The identity permutation [0, n) — the paper's "order of submission".
  [[nodiscard]] std::vector<TaskId> submission_order() const;

  /// A copy of this instance with every dependency edge removed — the
  /// precedence relaxation. Bounds that are only exact for independent
  /// tasks (OMIM) evaluate the relaxation, which lower-bounds the DAG.
  [[nodiscard]] Instance without_dependencies() const;

 private:
  void validate_dependencies() const;

  std::vector<Task> tasks_;
  std::size_t num_channels_ = 1;
  Mem min_capacity_ = 0.0;
  bool fully_bound_ = true;
  bool fully_byte_annotated_ = true;
  bool has_dependencies_ = false;
};

/// Repairs `desired` (a permutation of the instance's task ids) into a
/// topological order that follows it as closely as possible: tasks are
/// emitted in desired-position order among those whose predecessors have
/// all been emitted (a stable ready-list schedule). On an edge-free
/// instance — and on any input that is already topological — the result
/// is exactly `desired`, which is what keeps the static-order heuristics
/// bit-identical on the paper's precedence-free workloads. Throws
/// std::invalid_argument when `desired` is not a permutation of [0, n).
[[nodiscard]] std::vector<TaskId> legalize_order(
    const Instance& inst, std::span<const TaskId> desired);

}  // namespace dts
