#pragma once

/// \file schedule.hpp
/// A Schedule assigns each task a communication start time SCOMM(i) and a
/// computation start time SCOMP(i). End times follow from the instance's
/// durations. Schedules are produced by the simulators/heuristics and
/// checked by validate.hpp; they never enforce feasibility themselves.

#include <span>
#include <string>
#include <vector>

#include "core/instance.hpp"

namespace dts {

/// Start times of one task on both resources.
struct TaskTimes {
  Time comm_start = -1.0;  ///< SCOMM(i); negative means "not scheduled".
  Time comp_start = -1.0;  ///< SCOMP(i).

  [[nodiscard]] constexpr bool scheduled() const noexcept {
    return comm_start >= 0.0 && comp_start >= 0.0;
  }
};

class Schedule {
 public:
  Schedule() = default;

  /// A schedule for n tasks, all initially unscheduled.
  explicit Schedule(std::size_t n) : times_(n) {}

  [[nodiscard]] std::size_t size() const noexcept { return times_.size(); }

  [[nodiscard]] const TaskTimes& operator[](TaskId id) const { return times_.at(id); }
  [[nodiscard]] TaskTimes& operator[](TaskId id) { return times_.at(id); }

  /// Records both start times of a task (the only mutation schedulers use).
  void set(TaskId id, Time comm_start, Time comp_start) {
    times_.at(id) = TaskTimes{comm_start, comp_start};
  }

  /// True when every task has been assigned start times.
  [[nodiscard]] bool complete() const noexcept;

  /// End of the last computation (0 for an empty schedule). Requires a
  /// complete schedule over the same instance the schedule was built for.
  [[nodiscard]] Time makespan(const Instance& inst) const;

  /// Task ids sorted by communication start (ties by id) — the order the
  /// link serves tasks.
  [[nodiscard]] std::vector<TaskId> comm_order() const;

  /// Task ids sorted by computation start (ties by id).
  [[nodiscard]] std::vector<TaskId> comp_order() const;

  /// True when the link and the processor serve tasks in the same
  /// sequence — all the paper's heuristics except the MILP/B&B guarantee
  /// this ("permutation schedules").
  [[nodiscard]] bool is_permutation_schedule() const;

  [[nodiscard]] const std::vector<TaskTimes>& times() const noexcept { return times_; }

 private:
  std::vector<TaskTimes> times_;
};

/// Compact textual dump "id: comm [a,b) comp [c,d)" per line, for debugging
/// and golden tests.
[[nodiscard]] std::string to_string(const Schedule& sched, const Instance& inst);

}  // namespace dts
