#include "core/job.hpp"

#include <stdexcept>
#include <utility>

namespace dts {

std::string_view to_string(JobStatus status) noexcept {
  switch (status) {
    case JobStatus::kQueued: return "queued";
    case JobStatus::kRunning: return "running";
    case JobStatus::kDone: return "done";
    case JobStatus::kCancelled: return "cancelled";
    case JobStatus::kFailed: return "failed";
  }
  return "?";
}

namespace detail {

JobState::JobState(std::uint64_t id, JobRequest request,
                   std::shared_ptr<JobCounters> counters)
    : id_(id), request_(std::move(request)), counters_(std::move(counters)) {}

void JobState::arm_deadline(std::chrono::steady_clock::time_point now) {
  if (!request_.deadline_seconds) return;
  deadline_ = now + std::chrono::duration_cast<
                        std::chrono::steady_clock::duration>(
                        std::chrono::duration<double>(
                            *request_.deadline_seconds));
}

JobStatus JobState::status() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return status_;
}

void JobState::cancel(std::string reason) {
  std::function<void()> hook;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (status_ == JobStatus::kQueued) {
      JobOutcome outcome;
      outcome.status = JobStatus::kCancelled;
      outcome.error = std::move(reason);
      finish_locked(std::move(outcome));
      hook = std::move(terminal_hook_);  // fire once, below, unlocked
    }
  }
  if (hook) {
    hook();
    return;
  }
  // Running: fire the cooperative token (the worker publishes the
  // terminal outcome). Terminal: nothing to do. Either way the token is
  // safe to fire again.
  token_.cancel();
}

const JobOutcome& JobState::wait() const {
  std::unique_lock<std::mutex> lock(mutex_);
  terminal_cv_.wait(lock, [this] { return is_terminal(status_); });
  return outcome_;
}

bool JobState::wait_for(double seconds) const {
  std::unique_lock<std::mutex> lock(mutex_);
  return terminal_cv_.wait_for(
      lock, std::chrono::duration<double>(seconds),
      [this] { return is_terminal(status_); });
}

bool JobState::mark_running() {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (status_ != JobStatus::kQueued) return false;
  status_ = JobStatus::kRunning;
  return true;
}

void JobState::finish(JobOutcome outcome) {
  std::function<void()> hook;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const bool first = !is_terminal(status_);
    finish_locked(std::move(outcome));
    if (first) hook = std::move(terminal_hook_);
  }
  if (hook) hook();
}

void JobState::finish_locked(JobOutcome&& outcome) {
  if (is_terminal(status_)) return;  // first terminal transition wins
  // The guard above and this flag must agree: a job reaches exactly one
  // terminal state, ever (the pool's whole lifecycle story rests on it).
  DTS_ENSURE(!audit_terminal_,
             "a job must reach exactly one terminal state");
  status_ = outcome.status;
  outcome_ = std::move(outcome);
  if (!is_terminal(status_)) {
    // A non-terminal outcome status is a programming error in the pool;
    // resolve to kFailed rather than wedging waiters forever.
    status_ = JobStatus::kFailed;
    outcome_.status = JobStatus::kFailed;
    outcome_.error = "internal: job finished with a non-terminal status";
  }
  if (counters_) {
    outcome_.sequence = counters_->terminal_sequence.fetch_add(1);
    switch (status_) {
      case JobStatus::kDone: counters_->done.fetch_add(1); break;
      case JobStatus::kCancelled: counters_->cancelled.fetch_add(1); break;
      default: counters_->failed.fetch_add(1); break;
    }
  }
  DTS_AUDIT_ONLY(audit_terminal_ = true;)
  DTS_ENSURE(is_terminal(status_),
             "finish must leave the job in a terminal state");
  terminal_cv_.notify_all();
  // The terminal hook is fired by the caller after releasing the mutex
  // (cancel()/finish() move it out exactly once).
}

}  // namespace detail

detail::JobState& JobHandle::checked() const {
  if (!state_) throw std::logic_error("JobHandle: empty handle");
  return *state_;
}

std::uint64_t JobHandle::id() const { return checked().id(); }

const std::string& JobHandle::tag() const { return checked().request().tag; }

JobStatus JobHandle::status() const { return checked().status(); }

void JobHandle::cancel() const {
  checked().cancel("cancelled through the job handle");
}

const JobOutcome& JobHandle::wait() const { return checked().wait(); }

bool JobHandle::wait_for(double seconds) const {
  return checked().wait_for(seconds);
}

}  // namespace dts
