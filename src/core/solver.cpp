#include "core/solver.hpp"

#include <charconv>
#include <mutex>
#include <sstream>
#include <stdexcept>

namespace dts {

namespace detail {
// Defined in solvers_builtin.cpp. Referencing it from here guarantees the
// built-in adapters' translation unit is pulled out of a static library
// even when the program only ever names solvers by string.
void register_builtin_solvers(SolverRegistry& registry);
}  // namespace detail

SolverSpec SolverSpec::parse(std::string_view name) {
  SolverSpec spec;
  spec.full = std::string(name);
  std::size_t start = 0;
  while (true) {
    const std::size_t colon = name.find(':', start);
    const std::string_view part =
        name.substr(start, colon == std::string_view::npos ? colon
                                                           : colon - start);
    if (spec.base.empty() && start == 0) {
      spec.base = std::string(part);
    } else {
      spec.args.emplace_back(part);
    }
    if (colon == std::string_view::npos) break;
    start = colon + 1;
  }
  if (spec.base.empty()) {
    throw std::invalid_argument("solver name must not be empty");
  }
  return spec;
}

std::size_t SolverSpec::size_arg(std::size_t index,
                                 std::size_t fallback) const {
  if (index >= args.size()) return fallback;
  const std::string& text = args[index];
  std::size_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || ptr != text.data() + text.size() || value == 0) {
    throw std::invalid_argument("solver '" + full +
                                "': argument '" + text +
                                "' is not a positive integer");
  }
  return value;
}

namespace {

std::mutex& registry_mutex() {
  static std::mutex mutex;
  return mutex;
}

}  // namespace

Machine MachineRef::resolve() const {
  if (const Machine* inline_model = model()) return *inline_model;
  if (const std::string* key = name()) return machine_from_name(*key);
  throw std::logic_error("MachineRef::resolve called on an unset ref");
}

SolverRegistry& SolverRegistry::global() {
  static SolverRegistry registry;
  static std::once_flag builtin_once;
  std::call_once(builtin_once,
                 [] { detail::register_builtin_solvers(registry); });
  return registry;
}

void SolverRegistry::add(std::string key, std::string params,
                         std::string description, SolverChannels channels,
                         SolverDeps deps, Factory factory) {
  if (key.empty()) throw std::logic_error("solver key must not be empty");
  if (key.find(':') != std::string::npos) {
    throw std::logic_error("solver key '" + key +
                           "' must not contain ':' (reserved for arguments)");
  }
  const std::lock_guard<std::mutex> lock(registry_mutex());
  for (const Entry& entry : entries_) {
    if (entry.key == key) {
      throw std::logic_error("solver '" + key + "' registered twice");
    }
  }
  entries_.push_back(Entry{std::move(key), std::move(params),
                           std::move(description),
                           std::string(to_string(channels)),
                           std::string(to_string(deps)),
                           std::move(factory)});
}

std::unique_ptr<Solver> SolverRegistry::make(std::string_view name) const {
  const SolverSpec spec = SolverSpec::parse(name);
  Factory factory;
  {
    const std::lock_guard<std::mutex> lock(registry_mutex());
    for (const Entry& entry : entries_) {
      if (entry.key == spec.base) {
        factory = entry.factory;
        break;
      }
    }
  }
  if (!factory) {
    std::ostringstream message;
    message << "unknown solver '" << spec.base << "'; available:";
    for (const std::string& key : keys()) message << " " << key;
    throw std::invalid_argument(message.str());
  }
  return factory(spec);
}

bool SolverRegistry::contains(std::string_view key) const {
  const std::lock_guard<std::mutex> lock(registry_mutex());
  for (const Entry& entry : entries_) {
    if (entry.key == key) return true;
  }
  return false;
}

std::vector<SolverListing> SolverRegistry::listings() const {
  const std::lock_guard<std::mutex> lock(registry_mutex());
  std::vector<SolverListing> rows;
  rows.reserve(entries_.size());
  for (const Entry& entry : entries_) {
    rows.push_back(SolverListing{entry.key, entry.params, entry.description,
                                 entry.channels, entry.deps});
  }
  return rows;
}

std::optional<SolverListing> SolverRegistry::listing(
    std::string_view key) const {
  const std::lock_guard<std::mutex> lock(registry_mutex());
  for (const Entry& entry : entries_) {
    if (entry.key == key) {
      return SolverListing{entry.key, entry.params, entry.description,
                           entry.channels, entry.deps};
    }
  }
  return std::nullopt;
}

std::vector<std::string> SolverRegistry::keys() const {
  const std::lock_guard<std::mutex> lock(registry_mutex());
  std::vector<std::string> keys;
  keys.reserve(entries_.size());
  for (const Entry& entry : entries_) keys.push_back(entry.key);
  return keys;
}

namespace {

/// The solve pipeline after machine binding: every task has a real time.
SolveResult solve_bound(const SolveRequest& request, std::string_view solver,
                        const SolveOptions& options) {
  if (!request.instance.empty() &&
      definitely_less(request.capacity, request.instance.min_capacity())) {
    throw std::invalid_argument(
        "solve: capacity below the instance's minimum feasible capacity");
  }
  if (request.batch_size && *request.batch_size == 0) {
    throw std::invalid_argument("solve: batch_size must be > 0");
  }
  if (request.channels &&
      request.instance.num_channels() > request.channels->size()) {
    throw std::invalid_argument(
        "solve: the instance references channel " +
        std::to_string(request.instance.num_channels() - 1) +
        " but the request's channel set has only " +
        std::to_string(request.channels->size()) + " engine(s)");
  }
  // Central dependency gate: a solver that declared kIndependent never
  // sees a DAG request — rejecting here (off the declaration, before the
  // factory runs) means the edges can never be silently ignored.
  if (request.instance.has_dependencies()) {
    const SolverSpec spec = SolverSpec::parse(solver);
    const std::optional<SolverListing> row =
        SolverRegistry::global().listing(spec.base);
    if (row && row->deps != "any") {
      throw std::invalid_argument(
          "solve: solver '" + spec.base +
          "' schedules independent task sets only (deps=independent), but "
          "the instance declares dependency edges");
    }
  }
  const std::unique_ptr<Solver> impl = SolverRegistry::global().make(solver);
  const auto start = std::chrono::steady_clock::now();
  SolveResult result = impl->run(request, options);
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  if (options.compute_bounds && !request.instance.empty()) {
    result.bounds = capacity_aware_bounds(request.instance, request.capacity);
  }
  if (result.winner.empty()) result.winner = std::string(solver);
  return result;
}

}  // namespace

SolveResult solve(const SolveRequest& request, std::string_view solver,
                  const SolveOptions& options) {
  // Fold the deprecated machine_model shim into the MachineRef so the
  // rest of the pipeline has exactly one machine field to reason about.
  MachineRef machine = request.machine;
  if (request.machine_model) {
    if (machine) {
      throw std::invalid_argument(
          "solve: set either SolveRequest::machine (registry name) or "
          "machine_model (descriptor), not both");
    }
    machine = *request.machine_model;
  }
  // Machine-parameterized solving: bind the instance to the requested
  // hardware before anything else, so capacity checks, bounds and the
  // solver itself all see the machine-costed workload.
  if (machine) {
    const Machine resolved = machine.resolve();
    // Whole-request copy (not field-by-field) so fields added to
    // SolveRequest later cannot silently vanish on the machine path; the
    // copied instance is immediately replaced by its bound version.
    SolveRequest bound_request = request;
    bound_request.machine.reset();
    bound_request.machine_model.reset();
    bound_request.instance = bind(request.instance, resolved);
    if (!bound_request.channels) {
      bound_request.channels = resolved.channel_set();
    }
    return solve_bound(bound_request, solver, options);
  }
  if (!request.instance.fully_bound()) {
    throw std::invalid_argument(
        "solve: the instance has time-less (bytes-only) tasks; set "
        "SolveRequest::machine to a machine name or descriptor to cost "
        "them");
  }
  return solve_bound(request, solver, options);
}

std::vector<SolverListing> list_solvers() {
  return SolverRegistry::global().listings();
}

}  // namespace dts
