#pragma once

/// \file types.hpp
/// Fundamental scalar types of the data-transfer scheduling model.
///
/// Times and memory requirements are doubles: the paper's own examples use
/// fractional durations (Table 2 has computation times of 0.5), and traces
/// measured from real runs are floating point. All comparisons that decide
/// feasibility go through the epsilon helpers below so that schedules
/// assembled from sums of doubles validate cleanly.

#include <cstdint>
#include <limits>

namespace dts {

/// A point in (virtual) time or a duration, in seconds.
using Time = double;

/// A memory quantity, in bytes. Double rather than an integer type because
/// the paper's examples use "memory requirement = communication time" with
/// unit-free fractional values; real traces store whole bytes exactly
/// (doubles are exact for integers < 2^53 ~ 8 PiB).
using Mem = double;

/// Index of a task within its Instance.
using TaskId = std::uint32_t;

/// Sentinel for "no task".
inline constexpr TaskId kInvalidTask = std::numeric_limits<TaskId>::max();

/// Index of a copy engine (transfer channel) within a ChannelSet. The
/// paper's testbed has a single half-duplex link (channel 0); CPU<->GPU
/// offload adds one engine per direction.
using ChannelId = std::uint32_t;

/// The single link of the paper's model, and the host-to-device engine of
/// a duplex channel set.
inline constexpr ChannelId kChannelH2D = 0;

/// The device-to-host copy engine of a duplex channel set (result
/// write-back traffic).
inline constexpr ChannelId kChannelD2H = 1;

/// Upper bound (exclusive) on channel ids a valid Task may name —
/// generous for any realistic machine, and small enough that the
/// per-channel vectors sized from `max channel + 1` stay cheap even for
/// adversarial inputs.
inline constexpr ChannelId kMaxChannels = 256;

/// Positive infinity, used for unbounded memory capacities and as the
/// identity of min-reductions over makespans.
inline constexpr Time kInfiniteTime = std::numeric_limits<Time>::infinity();
inline constexpr Mem kInfiniteMem = std::numeric_limits<Mem>::infinity();

/// Sentinel comm value of a *time-less* task: the transfer's size is known
/// (Task::comm_bytes) but no machine has costed it yet. Such tasks are
/// only valid carriers between trace IO and bind(); solve() refuses to
/// schedule them without a machine.
inline constexpr Time kUnboundTime = -1.0;

/// Sentinel for Task::comm_bytes when the transfer size is unknown (the
/// task only carries a measured time, as in v1/v2 traces).
inline constexpr double kUnknownBytes = -1.0;

/// Absolute slack used by feasibility checks. Schedules are built from
/// short chains of additions, so accumulated error is tiny; the validator
/// additionally scales this by the magnitude of the quantities compared.
inline constexpr double kEps = 1e-9;

/// a < b beyond floating-point noise. Infinities behave exactly
/// (definitely_less(x, +inf) is true for any finite x); without the
/// explicit branch the scaled epsilon would produce inf - inf = NaN.
[[nodiscard]] constexpr bool definitely_less(double a, double b) noexcept {
  if (!(a < b)) return false;
  const double scale = 1.0 + (a < 0 ? -a : a) + (b < 0 ? -b : b);
  if (scale == std::numeric_limits<double>::infinity()) return true;
  return a < b - kEps * scale;
}

/// a <= b up to floating-point noise.
[[nodiscard]] constexpr bool approx_leq(double a, double b) noexcept {
  return !definitely_less(b, a);
}

/// |a - b| within floating-point noise.
[[nodiscard]] constexpr bool approx_equal(double a, double b) noexcept {
  return approx_leq(a, b) && approx_leq(b, a);
}

}  // namespace dts
