#include "core/batch.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "core/compiled.hpp"
#include "core/job.hpp"
#include "core/johnson.hpp"
#include "core/simulate.hpp"
#include "heuristics/bin_packing.hpp"
#include "heuristics/corrections.hpp"
#include "heuristics/dynamic.hpp"
#include "heuristics/gilmore_gomory.hpp"
#include "heuristics/static_orders.hpp"

namespace dts {

namespace {

/// Computes the heuristic's processing order restricted to `ids` by
/// building the subset instance and mapping positions back to real ids.
std::vector<TaskId> order_for_batch(HeuristicId id, const Instance& inst,
                                    std::span<const TaskId> ids, Mem capacity) {
  const Instance sub = inst.subset(ids);
  std::vector<TaskId> local;
  switch (id) {
    case HeuristicId::kOS:
      local = sub.submission_order();
      break;
    case HeuristicId::kOOSIM:
      local = static_order(sub, StaticOrderPolicy::kJohnson);
      break;
    case HeuristicId::kIOCMS:
      local = static_order(sub, StaticOrderPolicy::kIncreasingComm);
      break;
    case HeuristicId::kDOCPS:
      local = static_order(sub, StaticOrderPolicy::kDecreasingComp);
      break;
    case HeuristicId::kIOCCS:
      local = static_order(sub, StaticOrderPolicy::kIncreasingCommPlusComp);
      break;
    case HeuristicId::kDOCCS:
      local = static_order(sub, StaticOrderPolicy::kDecreasingCommPlusComp);
      break;
    case HeuristicId::kGG:
      local = gilmore_gomory_order(sub);
      break;
    case HeuristicId::kBP:
      local = bin_packing_order(sub, capacity);
      break;
    default:
      throw std::logic_error("order_for_batch: not a static heuristic");
  }
  // Internal edges survive subset(); repair the policy's order against
  // them (identity on edge-free batches).
  if (sub.has_dependencies()) local = legalize_order(sub, local);
  std::vector<TaskId> global(local.size());
  for (std::size_t k = 0; k < local.size(); ++k) global[k] = ids[local[k]];
  return global;
}

/// Batch boundaries walk this sequence. On a DAG the topological order
/// replaces raw submission so a predecessor always lands in an earlier
/// (or the same) batch — cross-batch readiness then flows through the
/// shared Schedule. On an edge-free instance it *is* submission order.
std::vector<TaskId> batch_sequence(const Instance& inst) {
  return inst.has_dependencies() ? inst.topological_order()
                                 : inst.submission_order();
}

}  // namespace

namespace {

/// Schedules one batch with `id`, continuing from `state`. `ci` is the
/// compiled form of `inst`, built once per solve so the dynamic and
/// corrected branches score candidates over the SoA arrays instead of
/// recompiling (or chasing Task records) per batch.
void run_batch(HeuristicId id, const Instance& inst,
               const CompiledInstance& ci, std::span<const TaskId> ids,
               Mem capacity, ExecutionState& state, Schedule& sched) {
  switch (info(id).category) {
    case HeuristicCategory::kBaseline:
    case HeuristicCategory::kStatic: {
      const std::vector<TaskId> order = order_for_batch(id, inst, ids, capacity);
      execute_order(inst, order, state, sched);
      break;
    }
    case HeuristicCategory::kDynamic: {
      const DynamicCriterion crit =
          id == HeuristicId::kLCMR   ? DynamicCriterion::kLargestComm
          : id == HeuristicId::kSCMR ? DynamicCriterion::kSmallestComm
                                     : DynamicCriterion::kMaxAcceleration;
      execute_dynamic(ci, ids, crit, state, sched);
      break;
    }
    case HeuristicCategory::kCorrected: {
      const DynamicCriterion crit =
          id == HeuristicId::kOOLCMR   ? DynamicCriterion::kLargestComm
          : id == HeuristicId::kOOSCMR ? DynamicCriterion::kSmallestComm
                                       : DynamicCriterion::kMaxAcceleration;
      // Base order: Johnson restricted to this batch.
      const std::vector<TaskId> base =
          order_for_batch(HeuristicId::kOOSIM, inst, ids, capacity);
      execute_corrected(ci, base, crit, state, sched);
      break;
    }
  }
}

}  // namespace

Schedule schedule_in_batches(HeuristicId id, const Instance& inst, Mem capacity,
                             std::size_t batch_size) {
  if (batch_size == 0) {
    throw std::invalid_argument("schedule_in_batches: batch_size must be > 0");
  }
  const std::vector<TaskId> submission = batch_sequence(inst);
  const CompiledInstance compiled(inst);
  ExecutionState state(capacity, inst.num_channels());
  Schedule sched(inst.size());

  for (std::size_t lo = 0; lo < submission.size(); lo += batch_size) {
    const std::size_t hi = std::min(lo + batch_size, submission.size());
    const std::span<const TaskId> ids(&submission[lo], hi - lo);
    run_batch(id, inst, compiled, ids, capacity, state, sched);
  }
  return sched;
}

BatchAutoResult schedule_in_batches_auto(
    const Instance& inst, Mem capacity, std::size_t batch_size,
    std::span<const HeuristicId> candidates, Executor* executor) {
  if (batch_size == 0) {
    throw std::invalid_argument(
        "schedule_in_batches_auto: batch_size must be > 0");
  }
  if (candidates.empty()) {
    throw std::invalid_argument(
        "schedule_in_batches_auto: need at least one candidate");
  }
  const std::vector<TaskId> submission = batch_sequence(inst);
  const CompiledInstance compiled(inst);
  BatchAutoResult result;
  result.schedule = Schedule(inst.size());
  ExecutionState::Snapshot carried;
  carried.comm_available.assign(inst.num_channels(), 0.0);

  /// One candidate's simulation of the current batch from the carried
  /// state — independent of every other trial, so they may run
  /// concurrently on an executor. Each trial's schedule is sized once and
  /// reused across batches: a batch only writes its own ids, and only
  /// those ids are folded into the committed schedule, so the stale
  /// entries from losing trials of earlier batches are never read.
  struct Trial {
    Schedule schedule;
    Time end = kInfiniteTime;
    Time link = kInfiniteTime;
    ExecutionState::Snapshot state;
  };
  std::vector<Trial> trials(candidates.size());
  for (Trial& trial : trials) trial.schedule = Schedule(inst.size());

  for (std::size_t lo = 0; lo < submission.size(); lo += batch_size) {
    const std::size_t hi = std::min(lo + batch_size, submission.size());
    const std::span<const TaskId> ids(&submission[lo], hi - lo);

    const auto evaluate = [&](std::size_t k) {
      ExecutionState state(capacity, carried);
      Trial& trial = trials[k];
      run_batch(candidates[k], inst, compiled, ids, capacity, state,
                trial.schedule);
      trial.end = state.comp_available();
      trial.link = state.comm_available();
      trial.state = state.snapshot();
    };
    if (executor && candidates.size() > 1) {
      executor->for_each(candidates.size(), evaluate);
    } else {
      for (std::size_t k = 0; k < candidates.size(); ++k) evaluate(k);
    }

    // Fold in candidate order with the strict-preference rule: identical
    // winner to evaluating and comparing one candidate at a time.
    std::size_t best = 0;
    for (std::size_t k = 1; k < candidates.size(); ++k) {
      const bool better =
          definitely_less(trials[k].end, trials[best].end) ||
          (!definitely_less(trials[best].end, trials[k].end) &&
           definitely_less(trials[k].link, trials[best].link));
      if (better) best = k;
    }
    for (TaskId id : ids) result.schedule[id] = trials[best].schedule[id];
    result.winners.push_back(candidates[best]);
    carried = std::move(trials[best].state);
    if (inst.has_dependencies()) {
      // Later batches read predecessor completion times from their trial
      // schedule; overwrite every trial's entries for this batch with the
      // committed winner's so losing-trial starts are never consulted.
      for (Trial& trial : trials) {
        for (TaskId id : ids) trial.schedule[id] = result.schedule[id];
      }
    }
  }
  return result;
}

}  // namespace dts
