#pragma once

/// \file solver.hpp
/// The unified solving surface of the library — the "runtime system
/// exposing different heuristics and automatically selecting the best one"
/// the paper's conclusion sketches, as one API.
///
/// A SolveRequest (instance + capacity + optional batch visibility) goes
/// through dts::solve(request, "name", options) to a polymorphic Solver
/// resolved from a string-keyed registry. Every strategy of the library is
/// registered: the 14 paper heuristics by acronym ("OS" ... "OOMAMR"), the
/// auto-scheduler ("auto", "auto:static"), the batch-auto runtime
/// ("auto-batch:16"), local search ("local-search"), the exact solvers
/// ("branch-bound", "exhaustive") and the iterative window heuristic
/// ("window:4"). New strategies plug in by registering a factory — no enum
/// edits, no new entry points:
///
///   namespace { const dts::RegisterSolver reg{
///       "my-solver", "", "one-line description", dts::SolverChannels::kAny,
///       dts::SolverDeps::kAny,
///       [](const dts::SolverSpec&) { return std::make_unique<MySolver>(); }}; }
///
/// Every registration declares its capabilities up front — channel support
/// (SolverChannels below) and dependency support (SolverDeps below). The
/// listings, `dts solvers` and the differential suite's per-solver
/// expectations are derived from these columns, so an undeclared
/// capability is a compile error, not a silent "any".
///
/// Names are parameterized with ':' — "auto-batch:16" is the base key
/// "auto-batch" with argument "16". The legacy free functions
/// (run_heuristic, auto_schedule, schedule_in_batches, ...) remain the
/// underlying implementations; solve() reproduces their makespans
/// bit-for-bit (tests/solver_test.cpp).

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "core/channels.hpp"
#include "core/instance.hpp"
#include "core/schedule.hpp"
#include "exact/lower_bounds.hpp"
#include "model/machine.hpp"

namespace dts {

class Executor;  // job.hpp: fan-out interface implemented by SolverPool

/// Which hardware to solve for: unset (the instance's own measured
/// times), a MachineRegistry key resolved lazily at solve() time, or an
/// inline Machine descriptor used as-is. One sum type, one field on the
/// request, one resolution path — resolve() is the only place a name
/// becomes a Machine. Construction is implicit from both alternatives,
/// so `request.machine = "nvlink"` and `request.machine = my_machine`
/// both read naturally.
class MachineRef {
 public:
  MachineRef() = default;
  MachineRef(std::nullopt_t) {}  // NOLINT: source compat with the optional era
  MachineRef(std::string name) : ref_(std::move(name)) {}      // NOLINT
  MachineRef(std::string_view name) : ref_(std::string(name)) {}  // NOLINT
  MachineRef(const char* name) : ref_(std::string(name)) {}    // NOLINT
  MachineRef(Machine model) : ref_(std::move(model)) {}        // NOLINT

  /// True when the request names any machine at all (either alternative).
  [[nodiscard]] explicit operator bool() const noexcept {
    return !std::holds_alternative<std::monostate>(ref_);
  }
  void reset() noexcept { ref_ = std::monostate{}; }

  /// The registry key, or nullptr when this ref is unset / a descriptor.
  [[nodiscard]] const std::string* name() const noexcept {
    return std::get_if<std::string>(&ref_);
  }
  /// The inline descriptor, or nullptr when this ref is unset / a name.
  [[nodiscard]] const Machine* model() const noexcept {
    return std::get_if<Machine>(&ref_);
  }

  /// The machine this ref denotes: a registry lookup for a name (throws
  /// std::invalid_argument for an unknown key, listing the available
  /// machines), the descriptor itself otherwise. Must not be called on an
  /// unset ref (throws std::logic_error).
  [[nodiscard]] Machine resolve() const;

 private:
  std::variant<std::monostate, std::string, Machine> ref_;
};

/// What to solve: an instance under a memory capacity, optionally through
/// the batched runtime (the solver only sees `batch_size` tasks at a time,
/// paper §6.3). Solvers that cannot honor a batch window reject requests
/// that set one.
///
/// `channels` describes the machine's copy engines. When unset, the
/// channel set is implied by the instance (tasks' highest channel id);
/// single-channel requests follow the exact legacy semantics of the
/// paper's model. When set, it must cover every channel the instance's
/// tasks reference — solve() rejects a request whose tasks name engines
/// the machine does not have — and its names label per-channel reporting.
///
/// `machine` parameterizes solving by hardware: solve() lazily binds the
/// instance (model/machine.hpp bind()) before running, re-costing every
/// byte-annotated task through the machine's per-channel TransferModels,
/// and — when `channels` is unset — adopts the machine's channel set. The
/// MachineRef carries either a MachineRegistry name (resolved at solve()
/// time) or an inline descriptor (used as-is). Without a machine, solve()
/// rejects instances carrying time-less (bytes-only) tasks — there is
/// nothing to cost them with.
struct SolveRequest {
  Instance instance;
  Mem capacity = 0.0;
  std::optional<std::size_t> batch_size;
  std::optional<ChannelSet> channels;
  MachineRef machine;  ///< registry name or inline descriptor (or unset)
  /// Deprecated source-compat shim for the pre-MachineRef split field
  /// (one release only): solve() folds a descriptor set here into
  /// `machine` and rejects requests that set both. New code assigns the
  /// descriptor to `machine` directly.
  std::optional<Machine> machine_model;
};

/// Cooperative cancellation. A default-constructed token can never fire;
/// CancellationToken::source() creates one that can. Copies share the flag,
/// so a controller thread can cancel() while a solver polls cancelled().
class CancellationToken {
 public:
  CancellationToken() = default;

  /// A token whose cancel() actually cancels.
  [[nodiscard]] static CancellationToken source() {
    CancellationToken token;
    token.flag_ = std::make_shared<std::atomic<bool>>(false);
    return token;
  }

  /// Requests cancellation; no-op for a default-constructed token.
  void cancel() const noexcept {
    if (flag_) flag_->store(true, std::memory_order_relaxed);
  }

  [[nodiscard]] bool cancelled() const noexcept {
    return flag_ && flag_->load(std::memory_order_relaxed);
  }

  /// True when this token was created by source() (cancel() can fire).
  [[nodiscard]] bool cancellable() const noexcept { return flag_ != nullptr; }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

/// How to solve it. Every knob is optional; the defaults match the legacy
/// entry points so solve() is a drop-in replacement.
struct SolveOptions {
  /// Wall-clock budget measured from solver entry. Long-running solvers
  /// (branch-bound) stop at the deadline and return their incumbent with
  /// SolveResult::cancelled set; one-shot heuristics ignore it (they finish
  /// in microseconds).
  std::optional<double> time_limit_seconds;
  /// Cooperative cancellation, same semantics as the deadline.
  CancellationToken cancel;
  /// Iteration budget for anytime solvers (local search candidates).
  std::size_t max_iterations = 20000;
  /// Stop local search after this many consecutive rejected candidates
  /// (LocalSearchOptions::max_no_improve).
  std::size_t max_no_improve = 2000;
  /// Seed for randomized solvers (local search neighborhood order).
  std::uint64_t seed = 1;
  /// Evaluate independent candidates of the auto-scheduler with
  /// support/parallel_for. The winner is identical either way (the
  /// reduction is deterministic); this only buys wall time.
  bool parallel_candidates = true;
  /// Optional fan-out surface (job.hpp) for solver-internal parallelism:
  /// auto/batch-auto candidate trials (still gated by
  /// parallel_candidates, which remains the on/off switch) and the
  /// exhaustive window enumeration run their independent subtasks
  /// through it. SolverPool is an Executor, so a service can share one
  /// worker crew between whole jobs and their inner fan-out; pool jobs
  /// that leave this unset get the pool installed automatically. Null
  /// means the solver's built-in behavior (parallel_for or serial).
  /// Results are identical either way.
  Executor* executor = nullptr;
  /// Fill SolveResult::bounds (OMIM + capacity-aware bounds). Sweeps that
  /// already track bounds per trace disable this to skip the recompute.
  bool compute_bounds = true;
};

/// Deadline + cancellation token, bound at solver entry. Cheap to poll.
class StopCondition {
 public:
  explicit StopCondition(const SolveOptions& options)
      : cancel_(options.cancel) {
    if (options.time_limit_seconds) {
      deadline_ = std::chrono::steady_clock::now() +
                  std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                      std::chrono::duration<double>(*options.time_limit_seconds));
    }
  }

  [[nodiscard]] bool stop_requested() const {
    if (cancel_.cancelled()) return true;
    return deadline_ && std::chrono::steady_clock::now() >= *deadline_;
  }

  /// True when stopping is possible at all — solvers skip the polling
  /// plumbing entirely otherwise.
  [[nodiscard]] bool armed() const noexcept {
    return deadline_.has_value() || cancel_.cancellable();
  }

 private:
  CancellationToken cancel_;
  std::optional<std::chrono::steady_clock::time_point> deadline_;
};

/// One candidate the solver considered. Auto solvers report every
/// heuristic's full-instance makespan; the batch-auto runtime reports how
/// many batches each candidate won instead (makespan stays infinite).
struct CandidateOutcome {
  std::string name;
  Time makespan = kInfiniteTime;
  std::size_t batch_wins = 0;
};

/// Everything a solve produced.
struct SolveResult {
  /// Name of the winning strategy: the heuristic acronym for single and
  /// auto solvers, the solver key otherwise (e.g. "lp.4", "branch-bound").
  std::string winner;
  Schedule schedule;
  Time makespan = kInfiniteTime;
  /// OMIM + capacity-aware lower bounds (exact/lower_bounds); filled by
  /// solve() unless options.compute_bounds is off.
  CapacityAwareBounds bounds;
  /// Wall-clock duration of the solver call, filled by solve().
  double wall_seconds = 0.0;
  /// The deadline or cancellation token fired; the schedule is the best
  /// incumbent found before stopping (always complete and feasible).
  bool cancelled = false;
  /// Candidate evaluations: schedules simulated (auto), local-search
  /// candidates, or branch-and-bound order pairs.
  std::uint64_t evaluations = 0;
  /// Per-candidate outcomes, in display order (auto and batch-auto).
  std::vector<CandidateOutcome> outcomes;
  /// Free-form solver note (e.g. local search's improvement summary).
  std::string detail;
  /// The solver *proved* this schedule optimal (exact solvers that
  /// finished their search or matched a proven bound). Heuristics never
  /// set it; a cancelled or budget-stopped exact search clears it.
  bool proved_optimal = false;
  /// Strongest makespan lower bound the solver itself established: the
  /// makespan when proved_optimal, a relaxation/capacity bound for a
  /// stopped exact search, 0 for solvers that prove nothing. Distinct
  /// from `bounds`, which solve() computes independently of the solver.
  Time lower_bound = 0.0;

  /// makespan / OMIM — the paper's quality metric (>= 1). Requires bounds.
  [[nodiscard]] double ratio_to_optimal() const noexcept {
    return bounds.omim <= 0.0 ? 1.0 : makespan / bounds.omim;
  }

  /// Relative optimality gap (makespan - lower_bound) / lower_bound:
  /// 0 when proved optimal, infinity when the solver proved no bound.
  [[nodiscard]] double optimality_gap() const noexcept {
    if (proved_optimal) return 0.0;
    if (lower_bound <= 0.0 || makespan == kInfiniteTime) {
      return std::numeric_limits<double>::infinity();
    }
    return (makespan - lower_bound) / lower_bound;
  }
};

/// A parsed solver name: "auto-batch:16" -> base "auto-batch", args
/// {"16"}. The base is the registry key; arguments are interpreted by the
/// factory.
struct SolverSpec {
  std::string full;
  std::string base;
  std::vector<std::string> args;

  /// Splits on ':'. Throws std::invalid_argument for an empty base.
  [[nodiscard]] static SolverSpec parse(std::string_view name);

  /// Positional argument as a positive integer; `fallback` when absent.
  /// Throws std::invalid_argument on a malformed or non-positive value.
  [[nodiscard]] std::size_t size_arg(std::size_t index,
                                     std::size_t fallback) const;
};

/// A scheduling strategy behind the unified surface. Implementations must
/// be safe to call concurrently from different threads on distinct
/// requests (all built-in solvers are pure functions of their inputs).
class Solver {
 public:
  virtual ~Solver() = default;

  /// The name this solver was resolved under (the full spec).
  [[nodiscard]] virtual std::string_view name() const noexcept = 0;

  /// Solves the request. Implementations fill winner, schedule, makespan,
  /// evaluations, outcomes, cancelled and detail; solve() adds bounds and
  /// wall time. Throws std::invalid_argument for requests the solver
  /// cannot honor (e.g. a batch window on an exact solver).
  [[nodiscard]] virtual SolveResult run(const SolveRequest& request,
                                        const SolveOptions& options) const = 0;
};

/// Channel capability a solver declares when it registers: every
/// registration site states explicitly whether the strategy handles any
/// channel count or models one link only (tools/dts_lint.py enforces the
/// declaration is present at the site). The differential suite derives
/// its per-solver expectations from this column, so a wrong declaration
/// fails CI rather than silently skipping coverage.
enum class SolverChannels {
  kAny,     ///< per-channel clocks handled; accepts duplex requests
  kSingle,  ///< models one link; rejects multi-channel requests
};

/// The listings string for a capability ("any" / "single").
[[nodiscard]] constexpr std::string_view to_string(
    SolverChannels channels) noexcept {
  return channels == SolverChannels::kSingle ? "single" : "any";
}

/// Dependency capability a solver declares when it registers, mirroring
/// SolverChannels: whether the strategy honors task DAGs (precedence
/// edges, Task::deps) or schedules independent task sets only. solve()
/// centrally rejects a DAG request aimed at a kIndependent solver with a
/// clear error instead of letting the edges be silently ignored, and the
/// differential suite derives its per-solver DAG expectations from this
/// column — a wrong declaration fails CI.
enum class SolverDeps {
  kAny,          ///< precedence edges enforced; accepts DAG requests
  kIndependent,  ///< independent tasks only; solve() rejects DAG requests
};

/// The listings string for a dependency capability ("any" / "independent").
[[nodiscard]] constexpr std::string_view to_string(SolverDeps deps) noexcept {
  return deps == SolverDeps::kIndependent ? "independent" : "any";
}

/// One row of SolverRegistry::listings().
struct SolverListing {
  std::string name;         ///< registry key, e.g. "auto-batch"
  std::string params;       ///< accepted arguments, e.g. "[:BATCH]"
  std::string description;
  /// Channel support the solver declares: "any" (every built-in — the
  /// engine keeps one clock per copy engine and the exact searches
  /// enumerate per-channel orders) or "single" for a strategy that models
  /// one link and rejects duplex requests. `dts solvers` lists this
  /// column; the differential suite derives its per-solver expectations
  /// from it.
  std::string channels = "any";
  /// Dependency support the solver declares: "any" (precedence edges
  /// enforced) or "independent" (solve() rejects DAG requests before the
  /// solver runs). Same contract as `channels`: listed by `dts solvers`,
  /// consumed by the differential suite.
  std::string deps = "any";
};

/// String-keyed factory registry. Factories self-register via the
/// RegisterSolver helper below (static objects); the built-in strategies
/// are registered on first access so a static-library link never loses
/// them.
class SolverRegistry {
 public:
  using Factory =
      std::function<std::unique_ptr<Solver>(const SolverSpec& spec)>;

  /// The process-wide registry.
  [[nodiscard]] static SolverRegistry& global();

  /// Registers a factory under `key`. Throws std::logic_error when the key
  /// is already taken or empty. `channels` and `deps` are the capabilities
  /// the solver declares — required at every site; there is deliberately
  /// no defaulting overload.
  void add(std::string key, std::string params, std::string description,
           SolverChannels channels, SolverDeps deps, Factory factory);

  /// Instantiates the solver a (possibly parameterized) name refers to.
  /// Throws std::invalid_argument for an unknown base key — the message
  /// lists every available name — or factory-rejected arguments.
  [[nodiscard]] std::unique_ptr<Solver> make(std::string_view name) const;

  [[nodiscard]] bool contains(std::string_view key) const;

  /// Every registered solver, in registration order.
  [[nodiscard]] std::vector<SolverListing> listings() const;

  /// The listing of one base key (no ':' arguments), or nullopt for an
  /// unknown key. solve() consults this for the declared capabilities
  /// before instantiating the solver.
  [[nodiscard]] std::optional<SolverListing> listing(
      std::string_view key) const;

  /// Registered keys, in registration order (error messages, --list-solvers).
  [[nodiscard]] std::vector<std::string> keys() const;

 private:
  struct Entry {
    std::string key;
    std::string params;
    std::string description;
    std::string channels;
    std::string deps;
    Factory factory;
  };
  std::vector<Entry> entries_;  // small; linear lookup, stable order
};

/// Self-registration helper: a namespace-scope `const RegisterSolver` in
/// any linked translation unit adds the factory before main() runs.
struct RegisterSolver {
  RegisterSolver(std::string key, std::string params, std::string description,
                 SolverChannels channels, SolverDeps deps,
                 SolverRegistry::Factory factory) {
    SolverRegistry::global().add(std::move(key), std::move(params),
                                 std::move(description), channels, deps,
                                 std::move(factory));
  }
};

/// The single entry point: resolves `solver` in the global registry, runs
/// it, and fills in bounds, ratio and wall time. Throws
/// std::invalid_argument for unknown solvers, capacities below the
/// instance's minimum, or solver-rejected requests.
[[nodiscard]] SolveResult solve(const SolveRequest& request,
                                std::string_view solver = "auto",
                                const SolveOptions& options = {});

/// Listings of the global registry (CLI `--list-solvers`, error messages).
[[nodiscard]] std::vector<SolverListing> list_solvers();

}  // namespace dts
