#pragma once

/// \file compiled.hpp
/// Data-oriented evaluation core: the allocation-free fast path every
/// candidate-scoring loop in the library runs on.
///
/// The `ExecutionState` engine (simulate.hpp) is the semantic reference:
/// one availability clock per copy engine, one processor clock, memory
/// held from transfer start to computation end. It is also the inner
/// kernel of local search, batch-auto trials, the exhaustive and
/// pair-order exact searches and the differential suite — paths that
/// evaluate thousands to millions of candidate orders and only need the
/// makespan, not a `Schedule`. This header provides that hot path:
///
///  * `CompiledInstance` — a structure-of-arrays compilation of an
///    `Instance`: contiguous `comm[]`, `comp[]`, `mem[]`, `channel[]`
///    arrays (no per-task `std::string` name pulling cold bytes through
///    the cache) plus per-channel task index lists. Built once, shared by
///    every candidate evaluation.
///  * `EvalScratch` + `evaluate_order()` — computes the makespan of an
///    order with *bit-identical* arithmetic to
///    `simulate_order(...).makespan(...)` (same operation sequence, same
///    epsilon comparisons, same heap discipline) but with zero heap
///    allocation per call after warm-up, no `Schedule` construction and
///    no string-building error paths in the loop. A recording overload
///    fills a `Schedule`; `simulate_order`/`makespan_of_order` are
///    re-expressed on top of these.
///  * `PrefixResumeEvaluator` — caches the engine state after every
///    prefix of a reference order so that candidates sharing a prefix
///    (local-search adjacent swaps, `next_permutation` scans in the
///    exact searches) resimulate only the suffix.
///
/// Parity with the reference engine is pinned bit-for-bit by
/// tests/fast_path_parity_test.cpp across channel counts, memory
/// regimes and carried snapshots.

#include <cstdint>
#include <span>
#include <vector>

#include "core/instance.hpp"
#include "core/schedule.hpp"
#include "core/simulate.hpp"

namespace dts {

/// Structure-of-arrays view of an `Instance`, built once and shared by
/// all candidate evaluations. Tasks keep their ids (array index == id).
class CompiledInstance {
 public:
  CompiledInstance() = default;
  explicit CompiledInstance(const Instance& inst);

  [[nodiscard]] std::size_t size() const noexcept { return comm_.size(); }
  [[nodiscard]] bool empty() const noexcept { return comm_.empty(); }
  [[nodiscard]] std::size_t num_channels() const noexcept {
    return n_channels_;
  }
  /// Largest single-task footprint (the instance's mc).
  [[nodiscard]] Mem min_capacity() const noexcept { return min_capacity_; }

  [[nodiscard]] Time comm(TaskId id) const noexcept { return comm_[id]; }
  [[nodiscard]] Time comp(TaskId id) const noexcept { return comp_[id]; }
  [[nodiscard]] Mem mem(TaskId id) const noexcept { return mem_[id]; }
  [[nodiscard]] ChannelId channel(TaskId id) const noexcept {
    return channel_[id];
  }
  /// CP_i / CM_i with the same zero-communication convention as
  /// Task::acceleration (a free transfer is infinitely accelerated).
  [[nodiscard]] Time acceleration(TaskId id) const noexcept {
    if (comm_[id] <= 0.0) return kInfiniteTime;
    return comp_[id] / comm_[id];
  }

  [[nodiscard]] std::span<const Time> comms() const noexcept { return comm_; }
  [[nodiscard]] std::span<const Time> comps() const noexcept { return comp_; }
  [[nodiscard]] std::span<const Mem> mems() const noexcept { return mem_; }
  [[nodiscard]] std::span<const ChannelId> channels() const noexcept {
    return channel_;
  }

  /// Ids of the tasks whose transfer runs on `ch`, in submission order
  /// (same contents as Instance::tasks_on_channel, zero-allocation view).
  [[nodiscard]] std::span<const TaskId> tasks_on_channel(ChannelId ch) const;

  /// True when the source instance carries dependency edges; every DAG
  /// branch of the hot loop is gated on this, so edge-free instances take
  /// exactly the original operation sequence.
  [[nodiscard]] bool has_dependencies() const noexcept {
    return has_dependencies_;
  }

  /// Predecessor ids of `id` (empty for precedence-free tasks) as a CSR
  /// view — the compiled mirror of Task::deps.
  [[nodiscard]] std::span<const TaskId> deps(TaskId id) const noexcept {
    return std::span<const TaskId>(dep_edges_)
        .subspan(dep_offsets_[id], dep_offsets_[id + 1] - dep_offsets_[id]);
  }

 private:
  std::vector<Time> comm_;
  std::vector<Time> comp_;
  std::vector<Mem> mem_;
  std::vector<ChannelId> channel_;
  /// Per-channel task index lists: channel `ch` owns
  /// channel_tasks_[channel_offsets_[ch] .. channel_offsets_[ch + 1]).
  std::vector<TaskId> channel_tasks_;
  std::vector<std::size_t> channel_offsets_;
  /// Dependency edges, CSR over task ids: task `id` owns
  /// dep_edges_[dep_offsets_[id] .. dep_offsets_[id + 1]).
  std::vector<TaskId> dep_edges_;
  std::vector<std::size_t> dep_offsets_;
  std::size_t n_channels_ = 1;
  Mem min_capacity_ = 0.0;
  bool has_dependencies_ = false;
};

class PrefixResumeEvaluator;

/// Reusable engine state for `evaluate_order`. All buffers persist across
/// calls, so a warm scratch evaluates orders with zero heap allocation.
/// The arithmetic replicates `ExecutionState` operation for operation —
/// same `std::max` chains, same epsilon comparisons, same binary-heap
/// discipline on the active set — so makespans are bit-identical to the
/// reference engine.
class EvalScratch {
 public:
  EvalScratch() = default;

  /// Results of the last evaluation run on this scratch.
  [[nodiscard]] Time makespan() const noexcept { return makespan_; }
  [[nodiscard]] Time now() const noexcept { return now_; }
  [[nodiscard]] Time comp_available() const noexcept { return comp_avail_; }
  /// Instant at which *every* channel is free (max clock) — the value
  /// `ExecutionState::comm_available()` reports, used by exact-search
  /// tie-breaks.
  [[nodiscard]] Time comm_available() const noexcept;
  [[nodiscard]] Mem used_memory() const noexcept { return used_; }
  [[nodiscard]] std::size_t active_tasks() const noexcept {
    return active_.size();
  }

 private:
  friend class PrefixResumeEvaluator;
  friend Time evaluate_order(const CompiledInstance& ci,
                             std::span<const TaskId> order, Mem capacity,
                             EvalScratch& scratch,
                             const ExecutionState::Snapshot* initial,
                             std::span<const Time> ready);
  friend Time evaluate_order(const CompiledInstance& ci,
                             std::span<const TaskId> order, Mem capacity,
                             EvalScratch& scratch, Schedule& out,
                             const ExecutionState::Snapshot* initial,
                             std::span<const Time> ready);

  struct Active {
    Time comp_end;
    Mem mem;
    /// Min-heap on comp_end — identical comparator to
    /// ExecutionState::ActiveTask so the release order (and therefore the
    /// floating-point accumulation order of `used_`) matches exactly.
    [[nodiscard]] bool operator>(const Active& o) const noexcept {
      return comp_end > o.comp_end;
    }
  };

  /// Rebuilds the engine start state: fresh clocks, or a carried
  /// snapshot (mirroring ExecutionState(Mem, Snapshot) exactly). `ready`
  /// (optional, per task id of `ci`) floors each transfer start at an
  /// externally known instant — the window solver passes predecessor
  /// completion times from earlier windows alongside the carried
  /// snapshot; empty means no external floors.
  void reset(const CompiledInstance& ci, Mem capacity,
             const ExecutionState::Snapshot* initial,
             std::span<const Time> ready = {});
  /// Issues order[first..last) on the current state; the hot loop.
  /// `record` is null on the scoring path.
  void issue(const CompiledInstance& ci, std::span<const TaskId> order,
             std::size_t first, std::size_t last, Schedule* record);
  void release_until(Time t);

  Mem capacity_ = 0.0;
  Time now_ = 0.0;
  Time comp_avail_ = 0.0;
  /// End of the last computation issued (0 before any issue). Computation
  /// ends are monotone along the issue order, so this equals
  /// Schedule::makespan over the issued tasks.
  Time makespan_ = 0.0;
  Mem used_ = 0.0;
  std::vector<Time> comm_avail_;  // one availability clock per channel
  std::vector<Active> active_;    // binary min-heap via std::*_heap
  /// DAG support, all inert on edge-free instances: when track_deps_, each
  /// issued task records its computation end here (-1 = not issued) and a
  /// transfer waits for every predecessor's recorded end. external_ready_
  /// (possibly empty) carries cross-window floors per task id.
  bool track_deps_ = false;
  std::vector<Time> comp_end_;
  std::vector<Time> external_ready_;
};

/// Makespan of `order` (ids into `ci`), bit-identical to
/// `simulate_order(inst, order, capacity).makespan(inst)` but without
/// constructing a Schedule and without heap allocation once `scratch` is
/// warm. `initial` (optional) carries a previous engine state exactly as
/// `ExecutionState(capacity, *initial)` would. Unlike simulate_order, the
/// order may cover any subset of the instance (the exact searches score
/// window suffixes). Throws the same exception types as the reference
/// path: std::invalid_argument when capacity is negative or a task can
/// never fit, std::out_of_range for an unknown task or channel.
/// `ready` (optional, indexed by task id) floors each transfer start at an
/// externally known instant — cross-window predecessor completion times.
/// On a DAG instance the engine additionally enforces the instance's own
/// edges: a transfer waits for every predecessor's computation end, and
/// issuing a task before its predecessor throws std::invalid_argument.
[[nodiscard]] Time evaluate_order(
    const CompiledInstance& ci, std::span<const TaskId> order, Mem capacity,
    EvalScratch& scratch, const ExecutionState::Snapshot* initial = nullptr,
    std::span<const Time> ready = {});

/// Recording overload: additionally writes each issued task's start times
/// into `out` (same values execute_order records).
Time evaluate_order(const CompiledInstance& ci, std::span<const TaskId> order,
                    Mem capacity, EvalScratch& scratch, Schedule& out,
                    const ExecutionState::Snapshot* initial = nullptr,
                    std::span<const Time> ready = {});

/// Candidate scorer that caches the engine state after every prefix of a
/// reference order, so evaluating a candidate resimulates only the part
/// after its longest common prefix with the reference:
///
///   PrefixResumeEvaluator eval(ci, capacity);
///   Time best = eval.set_reference(order);        // full simulation
///   Time ms = eval.evaluate(adjacent_swap);       // suffix only
///   best = eval.set_reference(improved_order);    // re-checkpoints the
///                                                 // changed suffix only
///
/// `set_reference` itself resumes from the previous reference's common
/// prefix, which makes `next_permutation` scans (exhaustive search,
/// branch-and-bound child expansions) nearly O(1) per permutation on
/// average. Results are bit-identical to from-scratch evaluation: a
/// checkpoint is a complete value copy of the engine (including the heap
/// layout of the active set), so the resumed suffix performs exactly the
/// operations a full rerun would.
class PrefixResumeEvaluator {
 public:
  PrefixResumeEvaluator(const CompiledInstance& ci, Mem capacity);
  /// Carried-state variant: every evaluation starts from `initial`
  /// exactly as ExecutionState(capacity, initial) would.
  PrefixResumeEvaluator(const CompiledInstance& ci, Mem capacity,
                        const ExecutionState::Snapshot& initial);

  /// Installs per-task external transfer-start floors (cross-window
  /// predecessor completion times; see evaluate_order). Resets the base
  /// state and drops the current reference — call before set_reference.
  void set_external_ready(std::span<const Time> ready);

  /// Full-accuracy makespan of `order`; records checkpoints so later
  /// calls resume after the common prefix. On failure (a task that can
  /// never fit) the reference is invalidated and the exception rethrown.
  Time set_reference(std::span<const TaskId> order);

  /// Makespan of `order`, resuming from the checkpoint at its longest
  /// common prefix with the current reference. When the candidate also
  /// shares a suffix with the reference (local-search swaps do), the
  /// engine additionally *reconverges*: after the divergent window it
  /// compares its state to the reference checkpoint at each position and
  /// returns the reference's final makespan the moment they bitwise
  /// match, since the remaining evolution is then identical. Does not
  /// move the reference — ideal for scoring a neighborhood around it.
  [[nodiscard]] Time evaluate(std::span<const TaskId> order);

  /// The order checkpoints are recorded for (empty until the first
  /// successful set_reference).
  [[nodiscard]] std::span<const TaskId> reference() const noexcept {
    return reference_;
  }

  /// State of the engine after the most recent set_reference/evaluate.
  [[nodiscard]] const EvalScratch& last_state() const noexcept {
    return scratch_;
  }

  /// Instrumentation: candidate evaluations served, tasks actually
  /// simulated, and tasks skipped by resuming from a checkpoint.
  [[nodiscard]] std::uint64_t evaluations() const noexcept {
    return evaluations_;
  }
  [[nodiscard]] std::uint64_t tasks_simulated() const noexcept {
    return tasks_simulated_;
  }
  [[nodiscard]] std::uint64_t tasks_resumed() const noexcept {
    return tasks_resumed_;
  }

 private:
  /// Complete value copy of the engine after a prefix. Buffers are
  /// assigned in place on save/load, so steady-state checkpointing does
  /// not allocate.
  struct Checkpoint {
    Time now = 0.0;
    Time comp_avail = 0.0;
    Time makespan = 0.0;
    Mem used = 0.0;
    std::vector<Time> comm_avail;
    std::vector<EvalScratch::Active> active;
    /// Per-task computation ends, saved only on DAG instances (successor
    /// transfers read them, so they are part of the engine state).
    std::vector<Time> comp_end;
  };

  void save_checkpoint(std::size_t k);
  void load_checkpoint(std::size_t k);
  [[nodiscard]] std::size_t common_prefix(
      std::span<const TaskId> order) const noexcept;
  /// True when the live engine state bitwise equals `cp` (including the
  /// heap layout of the active set) — the reconvergence test evaluate()
  /// uses to merge a candidate back onto the reference trajectory.
  [[nodiscard]] bool state_matches(const Checkpoint& cp) const noexcept;

  const CompiledInstance* ci_;
  Mem capacity_;
  bool has_initial_ = false;
  ExecutionState::Snapshot initial_;
  std::vector<Time> ready_;  ///< external transfer-start floors (may be empty)
  EvalScratch scratch_;
  std::vector<TaskId> reference_;
  std::vector<Checkpoint> checkpoints_;  // [k] = state after k tasks
  std::uint64_t evaluations_ = 0;
  std::uint64_t tasks_simulated_ = 0;
  std::uint64_t tasks_resumed_ = 0;
};

}  // namespace dts
