#include "core/validate.hpp"

#include <algorithm>
#include <sstream>

namespace dts {

namespace {

/// Checks pairwise disjointness of the per-task intervals on one resource.
/// Intervals are ordered by (start, end, id): zero-length intervals sort
/// before a task starting at the same instant, so an instantaneous
/// transfer at a boundary does not read as an overlap. Consecutive-pair
/// checking is sufficient after sorting.
template <typename StartFn, typename LenFn>
void check_resource_exclusive(std::vector<TaskId> ids, StartFn start,
                              LenFn len, Violation::Kind kind,
                              const char* resource,
                              std::vector<Violation>& out) {
  std::sort(ids.begin(), ids.end(), [&](TaskId a, TaskId b) {
    const Time sa = start(a);
    const Time sb = start(b);
    if (sa != sb) return sa < sb;
    const Time ea = sa + len(a);
    const Time eb = sb + len(b);
    if (ea != eb) return ea < eb;
    return a < b;
  });
  for (std::size_t k = 1; k < ids.size(); ++k) {
    const TaskId prev = ids[k - 1];
    const TaskId cur = ids[k];
    const Time prev_end = start(prev) + len(prev);
    if (definitely_less(start(cur), prev_end)) {
      std::ostringstream os;
      os << resource << " overlap: task " << prev << " runs until " << prev_end
         << " but task " << cur << " starts at " << start(cur);
      out.push_back(Violation{kind, prev, cur, os.str()});
    }
  }
}

}  // namespace

std::string ValidationReport::summary() const {
  if (ok()) return "feasible (peak memory " + std::to_string(peak_memory) + ")";
  std::ostringstream os;
  os << violations.size() << " violation(s):";
  for (const Violation& v : violations) os << "\n  - " << v.detail;
  return os.str();
}

Mem peak_memory(const Instance& inst, const Schedule& sched) {
  // Sweep events: +mem at comm start, -mem at comp end. Process releases
  // before acquisitions at equal instants (half-open semantics).
  struct Event {
    Time t;
    Mem delta;
  };
  std::vector<Event> events;
  events.reserve(2 * inst.size());
  for (TaskId i = 0; i < inst.size(); ++i) {
    const TaskTimes& tt = sched[i];
    if (!tt.scheduled()) continue;
    events.push_back({tt.comm_start, inst[i].mem});
    events.push_back({tt.comp_start + inst[i].comp, -inst[i].mem});
  }
  std::sort(events.begin(), events.end(), [](const Event& x, const Event& y) {
    if (x.t != y.t) return x.t < y.t;
    return x.delta < y.delta;  // releases first
  });
  Mem used = 0.0;
  Mem peak = 0.0;
  for (const Event& e : events) {
    used += e.delta;
    peak = std::max(peak, used);
  }
  return peak;
}

ValidationReport validate_schedule(const Instance& inst, const Schedule& sched,
                                   Mem capacity) {
  ValidationReport report;
  auto& out = report.violations;

  if (sched.size() != inst.size()) {
    out.push_back(Violation{Violation::Kind::kUnscheduledTask, kInvalidTask,
                            kInvalidTask, "schedule/instance size mismatch"});
    return report;
  }

  for (TaskId i = 0; i < inst.size(); ++i) {
    const TaskTimes& tt = sched[i];
    if (!tt.scheduled()) {
      out.push_back(Violation{Violation::Kind::kUnscheduledTask, i, kInvalidTask,
                              "task " + std::to_string(i) + " unscheduled"});
      continue;
    }
    if (tt.comm_start < 0.0 || tt.comp_start < 0.0) {
      out.push_back(Violation{Violation::Kind::kNegativeStart, i, kInvalidTask,
                              "task " + std::to_string(i) + " negative start"});
    }
    const Time data_ready = tt.comm_start + inst[i].comm;
    if (definitely_less(tt.comp_start, data_ready)) {
      std::ostringstream os;
      os << "task " << i << " computes at " << tt.comp_start
         << " before its data arrives at " << data_ready;
      out.push_back(
          Violation{Violation::Kind::kComputeBeforeData, i, kInvalidTask, os.str()});
    }
  }
  if (!out.empty()) return report;  // start-time checks below need complete data

  if (inst.has_dependencies()) {
    for (TaskId i = 0; i < inst.size(); ++i) {
      for (const TaskId dep : inst[i].deps) {
        const Time pred_end = sched[dep].comp_start + inst[dep].comp;
        if (definitely_less(sched[i].comm_start, pred_end)) {
          std::ostringstream os;
          os << "task " << i << " transfers at " << sched[i].comm_start
             << " before its predecessor " << dep << " finishes computing at "
             << pred_end;
          out.push_back(Violation{Violation::Kind::kDependencyViolated, i, dep,
                                  os.str()});
        }
      }
    }
  }

  // Transfers serialize per copy engine: check each channel's intervals
  // independently so opposite-direction (H2D/D2H) transfers may overlap.
  const std::vector<TaskId> comm_order = sched.comm_order();
  for (ChannelId ch = 0; ch < inst.num_channels(); ++ch) {
    std::vector<TaskId> on_channel;
    for (TaskId i : comm_order) {
      if (inst[i].channel == ch) on_channel.push_back(i);
    }
    const std::string label =
        inst.single_channel() ? "link" : "channel " + std::to_string(ch);
    check_resource_exclusive(
        std::move(on_channel), [&](TaskId i) { return sched[i].comm_start; },
        [&](TaskId i) { return inst[i].comm; }, Violation::Kind::kCommOverlap,
        label.c_str(), out);
  }
  check_resource_exclusive(
      sched.comp_order(), [&](TaskId i) { return sched[i].comp_start; },
      [&](TaskId i) { return inst[i].comp; }, Violation::Kind::kCompOverlap,
      "processor", out);

  report.peak_memory = peak_memory(inst, sched);
  if (definitely_less(capacity, report.peak_memory)) {
    std::ostringstream os;
    os << "peak active memory " << report.peak_memory << " exceeds capacity "
       << capacity;
    out.push_back(Violation{Violation::Kind::kMemoryExceeded, kInvalidTask,
                            kInvalidTask, os.str()});
  }
  return report;
}

}  // namespace dts
