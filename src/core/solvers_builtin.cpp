/// \file solvers_builtin.cpp
/// Adapters that put every strategy of the library behind the unified
/// Solver interface: the 14 paper heuristics, the auto-scheduler (full and
/// batched), local search, the duplex-aware balance order, the exact
/// solvers and the window heuristic. Each adapter delegates to the legacy
/// free function, so solve() reproduces the legacy makespans bit-for-bit.

#include <algorithm>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "core/auto_scheduler.hpp"
#include "core/batch.hpp"
#include "core/job.hpp"
#include "core/registry.hpp"
#include "core/solver.hpp"
#include "exact/branch_bound.hpp"
#include "exact/exhaustive.hpp"
#include "exact/lower_bounds.hpp"
#include "exact/window_solver.hpp"
#include "heuristics/duplex_balance.hpp"
#include "heuristics/local_search.hpp"
#include "milp/milp_solver.hpp"
#include "support/parallel_for.hpp"

namespace dts {

namespace {

void expect_no_args(const SolverSpec& spec) {
  if (!spec.args.empty()) {
    throw std::invalid_argument("solver '" + spec.base +
                                "' takes no ':' arguments (got '" + spec.full +
                                "')");
  }
}

void reject_batch(const SolveRequest& request, std::string_view solver) {
  if (request.batch_size) {
    throw std::invalid_argument("solver '" + std::string(solver) +
                                "' does not support a batch window");
  }
}

Time makespan_of(const SolveRequest& request, const Schedule& schedule) {
  return request.instance.empty() ? 0.0 : schedule.makespan(request.instance);
}

/// One paper heuristic by acronym; honors the request's batch window via
/// the batch runtime.
class HeuristicSolver final : public Solver {
 public:
  HeuristicSolver(HeuristicId id, std::string name)
      : id_(id), name_(std::move(name)) {}

  [[nodiscard]] std::string_view name() const noexcept override {
    return name_;
  }

  [[nodiscard]] SolveResult run(const SolveRequest& request,
                                const SolveOptions& /*options*/) const override {
    SolveResult result;
    result.schedule =
        request.batch_size
            ? schedule_in_batches(id_, request.instance, request.capacity,
                                  *request.batch_size)
            : run_heuristic(id_, request.instance, request.capacity);
    result.makespan = makespan_of(request, result.schedule);
    result.winner = std::string(name_of(id_));
    result.evaluations = 1;
    return result;
  }

 private:
  HeuristicId id_;
  std::string name_;
};

/// Per-batch win counts -> outcomes + overall winner (most wins, ties to
/// the earlier candidate in display order).
void fill_batch_outcomes(const std::vector<HeuristicId>& candidates,
                         const std::vector<HeuristicId>& winners,
                         SolveResult& result) {
  result.outcomes.clear();
  for (HeuristicId id : candidates) {
    CandidateOutcome outcome;
    outcome.name = std::string(name_of(id));
    outcome.batch_wins = static_cast<std::size_t>(
        std::count(winners.begin(), winners.end(), id));
    result.outcomes.push_back(std::move(outcome));
  }
  const auto best = std::max_element(
      result.outcomes.begin(), result.outcomes.end(),
      [](const CandidateOutcome& a, const CandidateOutcome& b) {
        return a.batch_wins < b.batch_wins;  // first max wins ties
      });
  if (best != result.outcomes.end()) result.winner = best->name;
}

/// The paper's envisioned runtime: evaluate every candidate, keep the
/// best. Candidate evaluation optionally fans out over
/// support/parallel_for; the reduction scans candidates in display order
/// with a strict-less comparison, so the winner is identical to the serial
/// auto_schedule fold.
class AutoSolver final : public Solver {
 public:
  AutoSolver(std::vector<HeuristicId> candidates, std::string name,
             std::optional<std::size_t> forced_batch)
      : candidates_(std::move(candidates)),
        name_(std::move(name)),
        forced_batch_(forced_batch) {}

  [[nodiscard]] std::string_view name() const noexcept override {
    return name_;
  }

  [[nodiscard]] SolveResult run(const SolveRequest& request,
                                const SolveOptions& options) const override {
    if (!request.instance.empty() &&
        definitely_less(request.capacity, request.instance.min_capacity())) {
      // parallel_for fail-fast would turn this user error into an abort;
      // surface it as the invalid_argument the legacy entry points throw.
      throw std::invalid_argument(
          "auto: a task exceeds the memory capacity");
    }
    const std::optional<std::size_t> batch =
        forced_batch_ ? forced_batch_ : request.batch_size;
    return batch ? run_batched(request, *batch, options)
                 : run_full(request, options);
  }

 private:
  [[nodiscard]] SolveResult run_full(const SolveRequest& request,
                                     const SolveOptions& options) const {
    SolveResult result;
    std::vector<Schedule> schedules(candidates_.size());
    std::vector<Time> makespans(candidates_.size(), kInfiniteTime);
    const auto evaluate = [&](std::size_t k) {
      schedules[k] =
          run_heuristic(candidates_[k], request.instance, request.capacity);
      makespans[k] = makespan_of(request, schedules[k]);
    };
    // parallel_candidates stays the master switch for candidate fan-out;
    // the executor only changes *where* the concurrency runs.
    if (options.parallel_candidates && candidates_.size() > 1) {
      if (options.executor) {
        options.executor->for_each(candidates_.size(), evaluate);
      } else {
        parallel_for(0, candidates_.size(), evaluate);
      }
    } else {
      for (std::size_t k = 0; k < candidates_.size(); ++k) evaluate(k);
    }
    std::size_t best = 0;
    for (std::size_t k = 0; k < candidates_.size(); ++k) {
      result.outcomes.push_back(CandidateOutcome{
          std::string(name_of(candidates_[k])), makespans[k], 0});
      if (makespans[k] < makespans[best]) best = k;
    }
    if (!candidates_.empty()) {
      result.winner = std::string(name_of(candidates_[best]));
      result.schedule = std::move(schedules[best]);
      result.makespan = makespans[best];
    }
    if (request.instance.empty()) result.makespan = 0.0;
    result.evaluations = candidates_.size();
    return result;
  }

  [[nodiscard]] SolveResult run_batched(const SolveRequest& request,
                                        std::size_t batch,
                                        const SolveOptions& options) const {
    SolveResult result;
    BatchAutoResult res = schedule_in_batches_auto(
        request.instance, request.capacity, batch, candidates_,
        options.parallel_candidates ? options.executor : nullptr);
    result.schedule = std::move(res.schedule);
    result.makespan = makespan_of(request, result.schedule);
    fill_batch_outcomes(candidates_, res.winners, result);
    result.evaluations = candidates_.size() * res.winners.size();
    std::ostringstream detail;
    detail << res.winners.size() << " batches of " << batch;
    result.detail = detail.str();
    return result;
  }

  std::vector<HeuristicId> candidates_;
  std::string name_;
  std::optional<std::size_t> forced_batch_;
};

std::vector<HeuristicId> candidates_for(const SolverSpec& spec,
                                        std::size_t arg_index) {
  if (arg_index >= spec.args.size()) return all_heuristic_ids();
  const std::string& family = spec.args[arg_index];
  if (family == "all") return all_heuristic_ids();
  if (family == "baseline") return heuristics_in(HeuristicCategory::kBaseline);
  if (family == "static") return heuristics_in(HeuristicCategory::kStatic);
  if (family == "dynamic") return heuristics_in(HeuristicCategory::kDynamic);
  if (family == "corrected") {
    return heuristics_in(HeuristicCategory::kCorrected);
  }
  throw std::invalid_argument(
      "solver '" + spec.full + "': unknown candidate family '" + family +
      "' (use all, baseline, static, dynamic or corrected)");
}

/// Hill climbing on top of the best registry heuristic (local_search.hpp).
class LocalSearchSolver final : public Solver {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "local-search";
  }

  [[nodiscard]] SolveResult run(const SolveRequest& request,
                                const SolveOptions& options) const override {
    reject_batch(request, name());
    LocalSearchOptions search;
    search.max_iterations = options.max_iterations;
    search.max_no_improve = options.max_no_improve;
    search.seed = options.seed;
    const StopCondition stop(options);
    if (stop.armed()) {
      search.should_stop = [&stop] { return stop.stop_requested(); };
    }
    LocalSearchResult res =
        schedule_local_search(request.instance, request.capacity, search);
    SolveResult result;
    result.winner = "local-search";
    result.cancelled = res.stopped;
    result.schedule = std::move(res.schedule);
    result.makespan = res.makespan;
    result.evaluations = res.iterations;
    result.outcomes.push_back(
        CandidateOutcome{"seed-order", res.initial_makespan, 0});
    std::ostringstream detail;
    detail << res.improvements << " accepted moves over " << res.iterations
           << " candidates";
    result.detail = detail.str();
    return result;
  }
};

/// Exact search over independent (transfer, comp) order pairs — the
/// MILP's solution space, per-channel transfer orders included. Honors
/// the deadline/cancellation token; when stopped before the first
/// incumbent it falls back to the submission order so the result is
/// always a complete feasible schedule.
class BranchBoundSolver final : public Solver {
 public:
  explicit BranchBoundSolver(std::size_t max_n) : max_n_(max_n) {}

  [[nodiscard]] std::string_view name() const noexcept override {
    return "branch-bound";
  }

  [[nodiscard]] SolveResult run(const SolveRequest& request,
                                const SolveOptions& options) const override {
    reject_batch(request, name());
    PairOrderOptions search;
    search.max_n = max_n_;
    if (!request.instance.empty()) {
      // Channel-aware combined lower bound: reaching it proves the
      // incumbent optimal and ends the search without scanning the
      // remaining (n!)^2 pairs.
      search.lower_bound =
          capacity_aware_bounds(request.instance, request.capacity).combined;
    }
    const StopCondition stop(options);
    if (stop.armed()) {
      search.should_stop = [&stop] { return stop.stop_requested(); };
    }
    PairOrderResult res =
        best_pair_order(request.instance, request.capacity, search);
    SolveResult result;
    result.winner = "branch-bound";
    result.cancelled = res.stopped;
    result.evaluations = res.pairs_simulated;
    if (res.makespan == kInfiniteTime) {
      // Stopped before any feasible pair was simulated to completion.
      result.schedule =
          run_heuristic(HeuristicId::kOS, request.instance, request.capacity);
      result.makespan = makespan_of(request, result.schedule);
      result.detail = "stopped before the first incumbent; submission order";
    } else {
      result.schedule = std::move(res.schedule);
      result.makespan = res.makespan;
      // A full scan of the pair space proves optimality just as well as
      // the lower-bound early exit — only an actual stop leaves the
      // result unproven.
      result.proved_optimal = !res.stopped;
      if (result.proved_optimal) result.lower_bound = res.makespan;
      std::ostringstream detail;
      detail << res.pairs_simulated << " order pairs simulated";
      if (res.proved_optimal) detail << "; proved optimal";
      result.detail = detail.str();
    }
    if (!result.proved_optimal) result.lower_bound = search.lower_bound;
    return result;
  }

 private:
  std::size_t max_n_;
};

/// Self-contained 0-1 MILP backend (src/milp/): LP-relaxation
/// branch-and-bound over the paper's §4.5 order binaries, warm-started
/// from the heuristic registry, every integral node scored through the
/// engine co-simulation. Proved-optimal makespans are bitwise equal to
/// branch-bound's (same incumbent discipline over the same finite value
/// set). `milp:T` solves the same instance against a T-step grid bound
/// model (see milp/model.hpp) — the proof and schedule are unaffected.
class MilpSolver final : public Solver {
 public:
  explicit MilpSolver(std::size_t grid) : grid_(grid) {}

  [[nodiscard]] std::string_view name() const noexcept override {
    return "milp";
  }

  [[nodiscard]] SolveResult run(const SolveRequest& request,
                                const SolveOptions& options) const override {
    reject_batch(request, name());
    MilpOptions milp;
    milp.grid = grid_;
    milp.max_nodes = options.max_iterations;
    if (!request.instance.empty()) {
      milp.lower_bound =
          capacity_aware_bounds(request.instance, request.capacity).combined;
    }
    const StopCondition stop(options);
    if (stop.armed()) {
      milp.should_stop = [&stop] { return stop.stop_requested(); };
    }
    MilpResult res =
        solve_order_milp(request.instance, request.capacity, milp);
    SolveResult result;
    result.winner = "milp";
    result.cancelled = res.stopped;
    result.evaluations = res.nodes_explored;
    result.schedule = std::move(res.schedule);
    result.makespan = res.makespan;
    result.proved_optimal = res.proved_optimal;
    result.lower_bound = res.lower_bound;
    std::ostringstream detail;
    detail << res.nodes_explored << " nodes, " << res.leaves_scored
           << " leaves scored, " << res.lp_pivots << " simplex pivots";
    if (res.proved_optimal) detail << "; proved optimal";
    result.detail = detail.str();
    return result;
  }

 private:
  std::size_t grid_;
};

/// Duplex-aware order heuristic (heuristics/duplex_balance.hpp):
/// per-channel Johnson sequences merged by least committed per-engine
/// load. A RegisterSolver-style drop-in — no enum edits, the strategy
/// lives entirely behind the registry key.
class DuplexBalanceSolver final : public Solver {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "duplex-balance";
  }

  [[nodiscard]] SolveResult run(const SolveRequest& request,
                                const SolveOptions& /*options*/) const override {
    reject_batch(request, name());
    SolveResult result;
    result.winner = "duplex-balance";
    result.schedule =
        schedule_duplex_balance(request.instance, request.capacity);
    result.makespan = makespan_of(request, result.schedule);
    result.evaluations = 1;
    return result;
  }
};

/// Exact search over permutation (common-order) schedules.
class ExhaustiveSolver final : public Solver {
 public:
  explicit ExhaustiveSolver(std::size_t max_n) : max_n_(max_n) {}

  [[nodiscard]] std::string_view name() const noexcept override {
    return "exhaustive";
  }

  [[nodiscard]] SolveResult run(const SolveRequest& request,
                                const SolveOptions& /*options*/) const override {
    reject_batch(request, name());
    ExhaustiveOptions search;
    search.max_n = max_n_;
    ExhaustiveResult res =
        best_common_order(request.instance, request.capacity, search);
    SolveResult result;
    result.winner = "exhaustive";
    result.schedule = std::move(res.schedule);
    result.makespan = request.instance.empty() ? 0.0 : res.makespan;
    result.evaluations = res.permutations_tried;
    return result;
  }

 private:
  std::size_t max_n_;
};

/// The paper's iterative MILP heuristic (window_solver.hpp), lp.k.
class WindowedSolver final : public Solver {
 public:
  explicit WindowedSolver(WindowOptions options) : options_(options) {}

  [[nodiscard]] std::string_view name() const noexcept override {
    return "window";
  }

  [[nodiscard]] SolveResult run(const SolveRequest& request,
                                const SolveOptions& options) const override {
    reject_batch(request, name());
    WindowOptions window = options_;
    window.executor = options.executor;
    const StopCondition stop(options);
    if (stop.armed()) {
      window.should_stop = [&stop] { return stop.stop_requested(); };
    }
    WindowedResult res =
        solve_windowed(request.instance, request.capacity, window);
    SolveResult result;
    result.schedule = std::move(res.schedule);
    result.makespan = makespan_of(request, result.schedule);
    result.winner = window_heuristic_name(options_);
    result.cancelled = res.stopped;
    result.evaluations = res.windows_optimized;
    if (res.stopped) {
      result.detail = "deadline/cancellation: tail scheduled in submission "
                      "order after " +
                      std::to_string(res.windows_optimized) +
                      " optimized windows";
    }
    return result;
  }

 private:
  WindowOptions options_;
};

WindowOptions parse_window_spec(const SolverSpec& spec) {
  WindowOptions options;
  options.window = spec.size_arg(0, options.window);
  if (spec.args.size() > 1) {
    const std::string& mode = spec.args[1];
    if (mode == "pair") {
      options.mode = WindowMode::kPairOrder;
    } else if (mode == "common") {
      options.mode = WindowMode::kCommonOrder;
    } else {
      throw std::invalid_argument("solver '" + spec.full +
                                  "': unknown window mode '" + mode +
                                  "' (use common or pair)");
    }
  }
  if (spec.args.size() > 2) {
    throw std::invalid_argument("solver '" + spec.full +
                                "': expected at most two arguments");
  }
  return options;
}

}  // namespace

namespace detail {

void register_builtin_solvers(SolverRegistry& registry) {
  for (const HeuristicInfo& h : all_heuristics()) {
    registry.add(std::string(h.name), "", std::string(h.description),
                 SolverChannels::kAny, SolverDeps::kAny,
                 [id = h.id](const SolverSpec& spec) {
                   expect_no_args(spec);
                   return std::make_unique<HeuristicSolver>(id, spec.full);
                 });
  }
  registry.add(
      "auto", "[:all|baseline|static|dynamic|corrected]",
      "evaluate every candidate heuristic, keep the best schedule",
      SolverChannels::kAny, SolverDeps::kAny, [](const SolverSpec& spec) {
        if (spec.args.size() > 1) {
          throw std::invalid_argument("solver '" + spec.full +
                                      "': expected at most one argument");
        }
        return std::make_unique<AutoSolver>(candidates_for(spec, 0), spec.full,
                                            std::nullopt);
      });
  registry.add(
      "auto-batch", "[:BATCH]",
      "auto-selecting batch runtime: per batch, commit the candidate "
      "finishing earliest (default batch 16)",
      SolverChannels::kAny, SolverDeps::kAny, [](const SolverSpec& spec) {
        if (spec.args.size() > 1) {
          throw std::invalid_argument("solver '" + spec.full +
                                      "': expected at most one argument");
        }
        return std::make_unique<AutoSolver>(all_heuristic_ids(), spec.full,
                                            spec.size_arg(0, 16));
      });
  registry.add("local-search", "",
               "hill climbing over orders, seeded with the best heuristic",
               SolverChannels::kAny, SolverDeps::kAny, [](const SolverSpec& spec) {
                 expect_no_args(spec);
                 return std::make_unique<LocalSearchSolver>();
               });
  registry.add("duplex-balance", "",
               "per-channel Johnson orders merged by least committed "
               "engine load (duplex-aware static order)",
               SolverChannels::kAny, SolverDeps::kAny, [](const SolverSpec& spec) {
                 expect_no_args(spec);
                 return std::make_unique<DuplexBalanceSolver>();
               });
  registry.add("branch-bound", "[:MAX_N]",
               "exact search over independent transfer/comp order pairs, "
               "per-channel orders included (the MILP's space; default "
               "max n = 7)",
               SolverChannels::kAny, SolverDeps::kAny, [](const SolverSpec& spec) {
                 if (spec.args.size() > 1) {
                   throw std::invalid_argument(
                       "solver '" + spec.full +
                       "': expected at most one argument");
                 }
                 return std::make_unique<BranchBoundSolver>(
                     spec.size_arg(0, PairOrderOptions{}.max_n));
               });
  registry.add("milp", "[:T]",
               "self-contained 0-1 MILP: LP-relaxation branch-and-bound "
               "over the paper's order binaries, engine-scored leaves; "
               ":T solves against a T-step grid bound model",
               SolverChannels::kAny, SolverDeps::kIndependent,
               [](const SolverSpec& spec) {
                 if (spec.args.size() > 1) {
                   throw std::invalid_argument(
                       "solver '" + spec.full +
                       "': expected at most one argument");
                 }
                 return std::make_unique<MilpSolver>(
                     spec.args.empty() ? 0 : spec.size_arg(0, 0));
               });
  registry.add("exhaustive", "[:MAX_N]",
               "exact search over permutation schedules (default max n = 10)",
               SolverChannels::kAny, SolverDeps::kAny, [](const SolverSpec& spec) {
                 if (spec.args.size() > 1) {
                   throw std::invalid_argument(
                       "solver '" + spec.full +
                       "': expected at most one argument");
                 }
                 return std::make_unique<ExhaustiveSolver>(
                     spec.size_arg(0, ExhaustiveOptions{}.max_n));
               });
  registry.add("window", "[:K[:common|pair]]",
               "iterative window optimization, the paper's lp.k (default k=4)",
               SolverChannels::kAny, SolverDeps::kAny, [](const SolverSpec& spec) {
                 return std::make_unique<WindowedSolver>(
                     parse_window_spec(spec));
               });
}

}  // namespace detail

}  // namespace dts
