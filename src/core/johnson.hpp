#pragma once

/// \file johnson.hpp
/// The infinite-memory special case (Section 3.1): with unbounded target
/// memory, problem DT is the classic 2-machine flowshop (link = machine 1,
/// processor = machine 2) and Johnson's rule (1954) gives an optimal
/// permutation. The resulting makespan, OMIM ("optimal makespan, infinite
/// memory"), lower-bounds every memory-constrained schedule and is the
/// denominator of every ratio the paper reports.

#include <span>
#include <vector>

#include "core/instance.hpp"
#include "core/schedule.hpp"

namespace dts {

/// Algorithm 1 of the paper: compute-intensive tasks (CP >= CM) first, by
/// non-decreasing communication time; then communication-intensive tasks
/// by non-increasing computation time. Ties preserve submission order
/// (stable), which makes the result deterministic.
[[nodiscard]] std::vector<TaskId> johnson_order(const Instance& inst);

/// Schedule obtained by running the Johnson order with unbounded memory.
[[nodiscard]] Schedule johnson_schedule(const Instance& inst);

/// OMIM — the optimal makespan with infinite memory.
[[nodiscard]] Time omim(const Instance& inst);

/// Lemma 1 predicate: true when swapping contiguous tasks A-then-B cannot
/// improve any schedule, i.e. when one of the lemma's three conditions
/// holds. Exposed for the property tests that re-verify the paper's
/// exchange argument numerically.
[[nodiscard]] bool swap_cannot_improve(const Task& a, const Task& b) noexcept;

}  // namespace dts
