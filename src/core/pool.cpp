#include "core/pool.hpp"

#include <algorithm>
#include <atomic>
#include <stdexcept>
#include <utility>

#include "support/contract.hpp"
#include "support/parallel_for.hpp"

namespace dts {

using Clock = std::chrono::steady_clock;

SolverPool::SolverPool(const SolverPoolOptions& options) : options_(options) {
  if (options.queue_capacity == 0) {
    throw std::invalid_argument("SolverPool: queue_capacity must be >= 1");
  }
  const std::size_t n =
      std::max<std::size_t>(1, options.workers ? options.workers
                                               : parallel_workers());
  workers_.reserve(n);
  try {
    for (std::size_t i = 0; i < n; ++i) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  } catch (...) {
    // std::thread creation can fail under thread-limit pressure; letting
    // the exception unwind with joinable workers alive would terminate
    // the process. Stop and join the ones that started, then surface it.
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      accepting_ = false;
      stopping_ = true;
    }
    work_cv_.notify_all();
    for (std::thread& worker : workers_) worker.join();
    throw;
  }
}

SolverPool::~SolverPool() { shutdown(DrainMode::kCancel); }

void SolverPool::prune_resolved_locked() {
  // Jobs cancelled while queued are already terminal; their stale entries
  // must not hold queue-capacity slots against new submissions.
  std::erase_if(queue_, [](const QueuedJob& queued) {
    return is_terminal(queued.job->status());
  });
}

std::shared_ptr<detail::JobState> SolverPool::enqueue_locked(
    JobRequest request) {
  auto job = std::make_shared<detail::JobState>(next_id_++,
                                                std::move(request), counters_);
  job->arm_deadline(Clock::now());
  // Wake producers blocked on a full queue when this job resolves while
  // still queued (cancel before start) — its slot is reclaimable. Taking
  // mutex_ around the notify closes the lost-wakeup window against a
  // producer between evaluating the wait predicate and blocking (the
  // hook runs with no job mutex held, so pool->job lock ordering is
  // preserved). The hook outlives the pool only in the trivial sense
  // that terminal transitions cannot happen after shutdown joined the
  // workers and resolved every job.
  job->set_terminal_hook([this] {
    { const std::lock_guard<std::mutex> lock(mutex_); }
    not_full_cv_.notify_all();
  });
  queue_.push_back(QueuedJob{job, job->request().priority});
  peak_queued_ = std::max(peak_queued_, queue_.size());
  counters_->submitted.fetch_add(1);
  return job;
}

JobHandle SolverPool::submit(JobRequest request) {
  std::shared_ptr<detail::JobState> job;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    not_full_cv_.wait(lock, [this] {
      if (!accepting_) return true;
      if (queue_.size() >= options_.queue_capacity) prune_resolved_locked();
      return queue_.size() < options_.queue_capacity;
    });
    if (!accepting_) {
      throw std::runtime_error("SolverPool: submit after shutdown");
    }
    job = enqueue_locked(std::move(request));
  }
  work_cv_.notify_one();
  return JobHandle(job);
}

std::optional<JobHandle> SolverPool::try_submit(JobRequest request) {
  JobHandle handle;
  if (try_submit(std::move(request), handle) != SubmitStatus::kAccepted) {
    return std::nullopt;
  }
  return handle;
}

SubmitStatus SolverPool::try_submit(JobRequest request, JobHandle& out) {
  std::shared_ptr<detail::JobState> job;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (!accepting_) return SubmitStatus::kShuttingDown;
    if (queue_.size() >= options_.queue_capacity) prune_resolved_locked();
    if (queue_.size() >= options_.queue_capacity) {
      return SubmitStatus::kQueueFull;
    }
    job = enqueue_locked(std::move(request));
  }
  work_cv_.notify_one();
  out = JobHandle(job);
  return SubmitStatus::kAccepted;
}

std::shared_ptr<detail::JobState> SolverPool::pop_job_locked() {
  auto it = queue_.begin();
  if (options_.policy == SolverPoolOptions::Policy::kPriority) {
    // Highest priority, ties in submission order. Linear scan: queues are
    // bounded and modest, and a scan keeps FIFO tie-breaking trivial.
    for (auto cand = std::next(it); cand != queue_.end(); ++cand) {
      if (cand->priority > it->priority) it = cand;
    }
  }
  std::shared_ptr<detail::JobState> job = std::move(it->job);
  queue_.erase(it);
  return job;
}

void SolverPool::worker_loop() {
  while (true) {
    std::function<void()> subtask;
    std::shared_ptr<detail::JobState> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [this] {
        return stopping_ || !subtasks_.empty() || !queue_.empty();
      });
      if (!subtasks_.empty()) {
        // Fan-out helpers run first: a blocked for_each caller may be a
        // worker holding a job slot, so clearing helpers bounds latency.
        subtask = std::move(subtasks_.front());
        subtasks_.pop_front();
      } else if (!queue_.empty()) {
        job = pop_job_locked();
        running_.push_back(job);
        not_full_cv_.notify_one();
      } else {
        return;  // stopping_ and nothing left to do
      }
    }
    if (subtask) {
      subtask();
      continue;
    }
    run_job(job);
    const std::lock_guard<std::mutex> lock(mutex_);
    running_.erase(std::find(running_.begin(), running_.end(), job));
  }
}

void SolverPool::run_job(const std::shared_ptr<detail::JobState>& job) {
  const Clock::time_point now = Clock::now();
  if (job->deadline() && now >= *job->deadline()) {
    job->cancel("deadline expired before the job started");
    return;
  }
  if (!job->mark_running()) return;  // resolved while queued; stale entry

  const JobRequest& request = job->request();
  SolveOptions options = request.options;
  options.cancel = job->token();
  if (!options.executor) {
    // Route solver-internal fan-out (auto candidates, window enumeration)
    // through this crew instead of letting each job spawn its own
    // parallel_for threads: N running jobs x hardware threads would
    // oversubscribe the machine the pool is supposed to manage. Results
    // are identical either way; an explicitly set executor is respected.
    options.executor = this;
  }
  if (job->deadline()) {
    const double remaining =
        std::chrono::duration<double>(*job->deadline() - now).count();
    options.time_limit_seconds =
        options.time_limit_seconds
            ? std::min(*options.time_limit_seconds, remaining)
            : remaining;
  }

  JobOutcome outcome;
  try {
    outcome.result = solve(request.request, request.solver, options);
    outcome.has_result = true;
    if (outcome.result.cancelled) {
      outcome.status = JobStatus::kCancelled;
      outcome.error = "stopped at the deadline or by cancellation; "
                      "best-so-far result attached";
    } else {
      outcome.status = JobStatus::kDone;
    }
  } catch (const std::exception& e) {
    outcome.status = JobStatus::kFailed;
    outcome.error = e.what();
  } catch (...) {
    // A registered solver may throw anything; escaping the worker would
    // std::terminate the whole service and strand the job non-terminal.
    outcome.status = JobStatus::kFailed;
    outcome.error = "solver threw a non-std::exception object";
  }
  job->finish(std::move(outcome));
}

void SolverPool::shutdown(DrainMode mode) {
  const std::lock_guard<std::mutex> shutdown_lock(shutdown_mutex_);
  if (joined_) return;
  std::vector<std::shared_ptr<detail::JobState>> to_cancel;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    accepting_ = false;
    if (mode == DrainMode::kCancel) {
      for (QueuedJob& queued : queue_) to_cancel.push_back(std::move(queued.job));
      queue_.clear();
      for (const auto& job : running_) to_cancel.push_back(job);
    }
    stopping_ = true;
  }
  work_cv_.notify_all();
  not_full_cv_.notify_all();
  for (const auto& job : to_cancel) {
    job->cancel("pool shut down before the job finished");
  }
  for (std::thread& worker : workers_) worker.join();
  // With every worker joined no thread mutates pool state: a drain must
  // have run the whole queue, a cancel resolved it, and either way no job
  // may still be marked running (each is popped off running_ by the
  // worker that resolved it).
  DTS_ENSURE(queue_.empty(), "shutdown must leave no queued job behind");
  DTS_ENSURE(running_.empty(), "shutdown must leave no job marked running");
  DTS_AUDIT_ONLY({
    const std::uint64_t resolved = counters_->done.load() +
                                   counters_->cancelled.load() +
                                   counters_->failed.load();
    DTS_AUDIT(resolved == counters_->submitted.load(),
              "shutdown must resolve every submitted job to exactly one "
              "terminal state");
  });
  joined_ = true;
}

void SolverPool::for_each(std::size_t n,
                          const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (n == 1 || worker_count() <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  struct Context {
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> completed{0};
    std::size_t total = 0;
    const std::function<void(std::size_t)>* fn = nullptr;
    std::mutex mutex;
    std::condition_variable all_done;
    std::exception_ptr error;  // first throw from fn, under mutex
  };
  auto ctx = std::make_shared<Context>();
  ctx->total = n;
  ctx->fn = &fn;

  // A helper drains iterations until none remain. Exceptions from fn are
  // captured (first one wins) and rethrown to the for_each caller after
  // every iteration finished: a throw on a worker thread must not
  // std::terminate the crew, and an early caller-side unwind would leave
  // helpers touching state the caller is destroying. Helpers that a
  // worker picks up only after the loop completed see next >= total
  // immediately and never touch `fn`, so the reference staying on the
  // caller's stack is safe.
  const auto helper = [ctx] {
    while (true) {
      const std::size_t i = ctx->next.fetch_add(1);
      if (i >= ctx->total) return;
      try {
        (*ctx->fn)(i);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(ctx->mutex);
        if (!ctx->error) ctx->error = std::current_exception();
      }
      if (ctx->completed.fetch_add(1) + 1 == ctx->total) {
        const std::lock_guard<std::mutex> lock(ctx->mutex);
        ctx->all_done.notify_all();
      }
    }
  };

  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (!stopping_) {
      const std::size_t helpers = std::min(worker_count(), n - 1);
      for (std::size_t i = 0; i < helpers; ++i) subtasks_.push_back(helper);
    }
  }
  work_cv_.notify_all();

  helper();  // the calling thread participates — no deadlock from jobs
  std::unique_lock<std::mutex> lock(ctx->mutex);
  ctx->all_done.wait(lock,
                     [&] { return ctx->completed.load() >= ctx->total; });
  if (ctx->error) std::rethrow_exception(ctx->error);
}

SolverPool::Stats SolverPool::stats() const {
  Stats stats;
  stats.submitted = counters_->submitted.load();
  stats.done = counters_->done.load();
  stats.cancelled = counters_->cancelled.load();
  stats.failed = counters_->failed.load();
  const std::lock_guard<std::mutex> lock(mutex_);
  // Entries whose job already resolved (cancelled while queued) are dead
  // weight awaiting a prune/pop; they are not backlog.
  stats.queued = static_cast<std::size_t>(
      std::count_if(queue_.begin(), queue_.end(), [](const QueuedJob& q) {
        return !is_terminal(q.job->status());
      }));
  stats.peak_queued = peak_queued_;
  DTS_AUDIT(stats.done + stats.cancelled + stats.failed <= stats.submitted,
            "more terminal transitions than submissions — a job resolved "
            "twice");
  return stats;
}

std::vector<JobOutcome> solve_all(SolverPool& pool,
                                  std::vector<JobRequest> requests) {
  std::vector<JobHandle> handles;
  handles.reserve(requests.size());
  for (JobRequest& request : requests) {
    handles.push_back(pool.submit(std::move(request)));
  }
  std::vector<JobOutcome> outcomes;
  outcomes.reserve(handles.size());
  for (const JobHandle& handle : handles) outcomes.push_back(handle.wait());
  return outcomes;
}

}  // namespace dts
