#pragma once

/// \file branch_bound.hpp
/// Exact solver over schedules whose communication and computation orders
/// may differ — the full solution space of the paper's MILP (its a_ij and
/// b_ij order variables are independent). Proposition 1 shows this space
/// can strictly beat permutation schedules under a memory constraint; the
/// Table 2 instance (makespan 22 vs 23) is the canonical witness and a
/// golden test of this module.
///
/// Multi-channel instances are solved exactly too: the search enumerates
/// one *global* transfer order — the chronological order in which the
/// machine's copy engines start their transfers, which induces one
/// per-channel order per engine — together with an independent computation
/// order. Any feasible schedule sorts its transfer starts into some global
/// chronological order and its computations into some service order, and
/// the semi-active co-simulation of that pair starts every event no later
/// than the schedule does (each engine serves its induced sequence at the
/// earliest memory-feasible instant, the processor serves its sequence as
/// soon as data is present), so scanning all pairs minimizes the makespan
/// over *all* feasible schedules. With one channel this degenerates
/// bit-for-bit into the original pair-order search.
///
/// Three prunes keep the search practical: a running lower bound per
/// resource (each copy engine's remaining transfer load and the
/// processor's remaining computation load) aborts a pair early, identical
/// tasks collapse into one representative ordering, and a caller-provided
/// makespan lower bound (exact/lower_bounds.hpp — channel-aware) ends the
/// whole search as soon as an incumbent provably optimal is found.

#include <functional>
#include <optional>
#include <vector>

#include "core/instance.hpp"
#include "core/schedule.hpp"
#include "core/simulate.hpp"

namespace dts {

struct PairOrderOptions {
  /// Safety valve on instance size (search is ~ (n!)^2 / duplicates).
  std::size_t max_n = 7;
  /// Optional carried engine state (window solving). May carry one clock
  /// per channel; channels the snapshot does not cover start free at the
  /// snapshot's decision instant.
  std::optional<ExecutionState::Snapshot> initial_state;
  /// Optional per-task transfer-start floors (indexed by task id):
  /// completion times of predecessors outside this instance — the window
  /// solver passes them next to the carried snapshot. Empty means none.
  /// The instance's own edges are enforced by the co-simulation either
  /// way.
  std::vector<Time> ready_times;
  /// Stop exploring a pair as soon as its makespan provably reaches the
  /// incumbent; also used as an initial upper bound when finite.
  Time upper_bound = kInfiniteTime;
  /// Optional proven makespan lower bound: the search stops as soon as an
  /// incumbent reaches it, marking the result proved_optimal. Must be
  /// valid for the supplied initial state — the fresh-instance
  /// capacity_aware_bounds(...).combined qualifies for a fresh state and
  /// stays valid under a carried one (clocks and held memory only delay
  /// starts); window callers strengthen it with the carried clocks (see
  /// exact/window_solver.cpp). 0 disables the early exit.
  Time lower_bound = 0.0;
  /// Cooperative stop (deadline / cancellation): polled every few hundred
  /// simulated pairs; returning true abandons the search, marking the
  /// result stopped. The incumbent found so far is still returned.
  std::function<bool()> should_stop;
};

struct PairOrderResult {
  Time makespan = kInfiniteTime;
  Schedule schedule;
  /// Global (chronological, cross-channel) transfer order of the winner;
  /// restricting it to one channel's tasks gives that engine's sequence.
  std::vector<TaskId> comm_order;
  std::vector<TaskId> comp_order;
  ExecutionState::Snapshot final_state;
  std::uint64_t pairs_simulated = 0;
  /// True when options.should_stop ended the search early; the makespan is
  /// then only an upper bound (kInfiniteTime if nothing feasible was seen).
  bool stopped = false;
  /// True when the incumbent reached options.lower_bound and the search
  /// ended with optimality proven without scanning the remaining pairs.
  bool proved_optimal = false;
};

/// Minimum makespan over independent (global transfer order, computation
/// order) pairs — exact for any channel count. Throws
/// std::invalid_argument when the instance exceeds options.max_n or some
/// task cannot fit in `capacity`.
[[nodiscard]] PairOrderResult best_pair_order(const Instance& inst, Mem capacity,
                                              const PairOrderOptions& options = {});

/// Semi-active co-simulation of one (global transfer, computation) order
/// pair: each copy engine serves its induced per-channel sequence at the
/// earliest memory-feasible instant (transfer starts never decrease along
/// `comm_order` — it is the chronological order), the processor serves
/// `comp_order` as soon as data is present. Returns nullopt when the pair
/// deadlocks under the memory capacity (the next transfer waits for memory
/// that only a computation blocked behind it can release, or — on a DAG —
/// for a predecessor computation sequenced behind it) or when the makespan
/// provably reaches `abort_at`. On success fills `out` (sized n) with
/// start times. `ready_floors` (optional, indexed by task id) floors each
/// transfer start at an externally known instant; the instance's own
/// dependency edges are always enforced.
[[nodiscard]] std::optional<Time> simulate_pair_order(
    const Instance& inst, std::span<const TaskId> comm_order,
    std::span<const TaskId> comp_order, Mem capacity,
    const ExecutionState::Snapshot& initial, Time abort_at, Schedule& out,
    std::span<const Time> ready_floors = {});

}  // namespace dts
