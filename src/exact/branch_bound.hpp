#pragma once

/// \file branch_bound.hpp
/// Exact solver over schedules whose communication and computation orders
/// may differ — the full solution space of the paper's MILP (its a_ij and
/// b_ij order variables are independent). Proposition 1 shows this space
/// can strictly beat permutation schedules under a memory constraint; the
/// Table 2 instance (makespan 22 vs 23) is the canonical witness and a
/// golden test of this module.
///
/// Method: enumerate value-distinct communication orders x computation
/// orders; each pair is evaluated with a semi-active co-simulation (both
/// resources serve their sequence as early as memory and data dependences
/// allow; for a regular objective like makespan a semi-active schedule is
/// optimal for its sequences, so scanning all pairs is exact). Two prunes
/// keep the search practical: a running lower bound (resource load of the
/// remaining tasks) aborts a pair early, and identical tasks collapse into
/// one representative ordering.

#include <functional>
#include <optional>
#include <vector>

#include "core/instance.hpp"
#include "core/schedule.hpp"
#include "core/simulate.hpp"

namespace dts {

struct PairOrderOptions {
  /// Safety valve on instance size (search is ~ (n!)^2 / duplicates).
  std::size_t max_n = 7;
  /// Optional carried engine state (window solving).
  std::optional<ExecutionState::Snapshot> initial_state;
  /// Stop exploring a pair as soon as its makespan provably reaches the
  /// incumbent; also used as an initial upper bound when finite.
  Time upper_bound = kInfiniteTime;
  /// Cooperative stop (deadline / cancellation): polled every few hundred
  /// simulated pairs; returning true abandons the search, marking the
  /// result stopped. The incumbent found so far is still returned.
  std::function<bool()> should_stop;
};

struct PairOrderResult {
  Time makespan = kInfiniteTime;
  Schedule schedule;
  std::vector<TaskId> comm_order;
  std::vector<TaskId> comp_order;
  ExecutionState::Snapshot final_state;
  std::uint64_t pairs_simulated = 0;
  /// True when options.should_stop ended the search early; the makespan is
  /// then only an upper bound (kInfiniteTime if nothing feasible was seen).
  bool stopped = false;
};

/// Minimum makespan over independent (comm order, comp order) pairs.
/// Throws std::invalid_argument when the instance exceeds options.max_n or
/// some task cannot fit in `capacity`.
[[nodiscard]] PairOrderResult best_pair_order(const Instance& inst, Mem capacity,
                                              const PairOrderOptions& options = {});

/// Semi-active co-simulation of one (comm, comp) order pair. Returns
/// nullopt when the pair deadlocks under the memory capacity (the link
/// waits for memory that only a computation blocked behind the link can
/// release) or when the makespan provably reaches `abort_at`. On success
/// fills `out` (sized n) with start times.
[[nodiscard]] std::optional<Time> simulate_pair_order(
    const Instance& inst, std::span<const TaskId> comm_order,
    std::span<const TaskId> comp_order, Mem capacity,
    const ExecutionState::Snapshot& initial, Time abort_at, Schedule& out);

}  // namespace dts
