#include "exact/exhaustive.hpp"

#include <algorithm>
#include <stdexcept>
#include <tuple>

namespace dts {

namespace {

/// Value key: permutations that differ only in the placement of identical
/// tasks produce identical schedules, so we enumerate value-distinct
/// sequences only.
std::tuple<Time, Time, Mem> value_key(const Task& t) {
  return {t.comm, t.comp, t.mem};
}

}  // namespace

ExhaustiveResult best_common_order(const Instance& inst, Mem capacity,
                                   const ExhaustiveOptions& options) {
  if (inst.size() > options.max_n) {
    throw std::invalid_argument(
        "best_common_order: instance too large for exhaustive search (n=" +
        std::to_string(inst.size()) + ", max=" + std::to_string(options.max_n) +
        ")");
  }
  ExhaustiveResult result;
  if (inst.empty()) {
    result.makespan = 0.0;
    return result;
  }

  const auto value_less = [&](TaskId a, TaskId b) {
    return value_key(inst[a]) < value_key(inst[b]);
  };
  std::vector<TaskId> order = inst.submission_order();
  std::sort(order.begin(), order.end(), value_less);

  Time best_link_free = kInfiniteTime;
  do {
    ++result.permutations_tried;
    ExecutionState state =
        options.initial_state
            ? ExecutionState(capacity, *options.initial_state)
            : ExecutionState(capacity, inst.num_channels());
    Schedule sched(inst.size());
    execute_order(inst, order, state, sched);
    const Time ms = sched.makespan(inst);
    // Primary: makespan. Secondary (matters when solving windows): leave
    // the link free as early as possible for the tasks that follow.
    const bool better =
        definitely_less(ms, result.makespan) ||
        (!definitely_less(result.makespan, ms) &&
         definitely_less(state.comm_available(), best_link_free));
    if (result.order.empty() || better) {
      result.makespan = ms;
      result.order = order;
      result.schedule = std::move(sched);
      result.final_state = state.snapshot();
      best_link_free = state.comm_available();
    }
  } while (std::next_permutation(order.begin(), order.end(), value_less));

  return result;
}

}  // namespace dts
