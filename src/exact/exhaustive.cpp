#include "exact/exhaustive.hpp"

#include <algorithm>
#include <stdexcept>
#include <tuple>

#include "core/compiled.hpp"
#include "core/job.hpp"

namespace dts {

namespace {

/// Value key: permutations that differ only in the placement of identical
/// tasks produce identical schedules, so we enumerate value-distinct
/// sequences only.
std::tuple<Time, Time, Mem> value_key(const Task& t) {
  return {t.comm, t.comp, t.mem};
}

/// Fan out across first-task branches only when the tail enumeration is
/// long enough to amortize the scheduling overhead (5! = 120 simulations
/// per branch and up).
constexpr std::size_t kParallelMinTasks = 6;

/// Makespan first, then earliest link-free instant (matters when solving
/// windows: leave the link free for the tasks that follow). Exact
/// comparison, deliberately not the epsilon helpers: a strict weak
/// ordering makes the keep-first-better fold associative under grouping,
/// so the parallel branch fold provably selects the same candidate as
/// the serial scan (an epsilon comparison is not transitive and could
/// pick different orders on ties straddling the tolerance).
bool better_candidate(Time ms, Time link_free, const ExhaustiveResult& best,
                      Time best_link_free) {
  if (ms != best.makespan) return ms < best.makespan;
  return link_free < best_link_free;
}

/// Scans every value-distinct permutation of order[fixed..n) — the prefix
/// is pinned — accumulating the winner into `result`/`best_link_free`.
/// With fixed == 0 this is exactly the full serial enumeration.
void scan_orders(const Instance& inst, Mem capacity,
                 const ExhaustiveOptions& options, std::vector<TaskId> order,
                 std::size_t fixed, ExhaustiveResult& result,
                 Time& best_link_free) {
  // Dependency edges break the identical-task collapse (two value-equal
  // tasks may have different successors), so DAG instances enumerate full
  // permutations — ids break value ties — and skip the non-topological
  // ones, which no feasible schedule can realize.
  const bool dag = inst.has_dependencies();
  const auto value_less = [&](TaskId a, TaskId b) {
    const auto ka = value_key(inst[a]);
    const auto kb = value_key(inst[b]);
    if (ka != kb) return ka < kb;
    return dag && a < b;
  };
  // next_permutation edits the tail of the sequence, so consecutive
  // permutations share a long prefix — the prefix-resume evaluator
  // resimulates only the changed suffix (~e tasks per permutation on
  // average, independent of n). The winner's Schedule and carried
  // snapshot are rebuilt on the reference engine only when the incumbent
  // improves, which is rare.
  const CompiledInstance compiled(inst);
  PrefixResumeEvaluator evaluator =
      options.initial_state
          ? PrefixResumeEvaluator(compiled, capacity, *options.initial_state)
          : PrefixResumeEvaluator(compiled, capacity);
  if (!options.ready_times.empty()) {
    evaluator.set_external_ready(options.ready_times);
  }
  do {
    if (dag && !inst.is_topological_order(order)) continue;
    ++result.permutations_tried;
    const Time ms = evaluator.set_reference(order);
    const Time link_free = evaluator.last_state().comm_available();
    if (result.order.empty() ||
        better_candidate(ms, link_free, result, best_link_free)) {
      ExecutionState state =
          options.initial_state
              ? ExecutionState(capacity, *options.initial_state)
              : ExecutionState(capacity, inst.num_channels());
      Schedule sched(inst.size());
      execute_order(inst, order, state, sched, options.ready_times);
      result.makespan = ms;
      result.order = order;
      result.schedule = std::move(sched);
      result.final_state = state.snapshot();
      best_link_free = link_free;
    }
  } while (std::next_permutation(order.begin() +
                                     static_cast<std::ptrdiff_t>(fixed),
                                 order.end(), value_less));
}

}  // namespace

ExhaustiveResult best_common_order(const Instance& inst, Mem capacity,
                                   const ExhaustiveOptions& options) {
  if (inst.size() > options.max_n) {
    throw std::invalid_argument(
        "best_common_order: instance too large for exhaustive search (n=" +
        std::to_string(inst.size()) + ", max=" + std::to_string(options.max_n) +
        ")");
  }
  ExhaustiveResult result;
  if (inst.empty()) {
    result.makespan = 0.0;
    return result;
  }

  // Mirror scan_orders' comparator (see there): ids break value ties on
  // DAG instances so the branch partition matches the serial enumeration.
  const bool dag = inst.has_dependencies();
  const auto value_less = [&](TaskId a, TaskId b) {
    const auto ka = value_key(inst[a]);
    const auto kb = value_key(inst[b]);
    if (ka != kb) return ka < kb;
    return dag && a < b;
  };
  std::vector<TaskId> order = inst.submission_order();
  std::sort(order.begin(), order.end(), value_less);

  if (!options.executor || inst.size() < kParallelMinTasks) {
    Time best_link_free = kInfiniteTime;
    scan_orders(inst, capacity, options, std::move(order), 0, result,
                best_link_free);
    return result;
  }

  // One branch per value-distinct first task, in sorted order. Branch b
  // enumerates exactly the lexicographic block of permutations starting
  // with that value, so the branches concatenated in branch order are the
  // serial enumeration sequence.
  std::vector<std::vector<TaskId>> branches;
  for (std::size_t i = 0; i < order.size(); ++i) {
    if (i > 0 && !value_less(order[i - 1], order[i])) continue;  // duplicate
    std::vector<TaskId> branch = order;
    std::rotate(branch.begin(), branch.begin() + static_cast<std::ptrdiff_t>(i),
                branch.begin() + static_cast<std::ptrdiff_t>(i) + 1);
    branches.push_back(std::move(branch));
  }

  std::vector<ExhaustiveResult> partial(branches.size());
  std::vector<Time> partial_link(branches.size(), kInfiniteTime);
  options.executor->for_each(branches.size(), [&](std::size_t b) {
    scan_orders(inst, capacity, options, std::move(branches[b]), 1,
                partial[b], partial_link[b]);
  });

  // Fold branch winners in branch (= serial enumeration) order with the
  // same strict-preference rule as the inner scans.
  Time best_link_free = kInfiniteTime;
  for (std::size_t b = 0; b < partial.size(); ++b) {
    result.permutations_tried += partial[b].permutations_tried;
    if (result.order.empty() ||
        better_candidate(partial[b].makespan, partial_link[b], result,
                         best_link_free)) {
      const std::uint64_t tried = result.permutations_tried;
      result = std::move(partial[b]);
      result.permutations_tried = tried;
      best_link_free = partial_link[b];
    }
  }
  return result;
}

}  // namespace dts
