#include "exact/window_solver.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/simulate.hpp"
#include "exact/branch_bound.hpp"
#include "exact/exhaustive.hpp"
#include "exact/lower_bounds.hpp"
#include "support/contract.hpp"

namespace dts {

namespace {

/// Lower bound on a window's absolute completion time under the carried
/// engine state. The fresh-instance capacity-aware bound stays valid (a
/// carried state only delays starts — clocks are nonnegative and held
/// memory only postpones transfers), and the carried clocks strengthen
/// it: the processor serves every window computation after its carried
/// free instant, and each copy engine pushes its window transfers after
/// its carried clock with at least the cheapest trailing computation of
/// that engine's tasks.
Time carried_window_bound(const Instance& sub, Mem capacity,
                          const ExecutionState::Snapshot& carried) {
  Time bound = capacity_aware_bounds(sub, capacity).combined;
  Time sum_comp = 0.0;
  for (const Task& t : sub) sum_comp += t.comp;
  bound = std::max(bound, carried.comp_available + sum_comp);
  for (ChannelId ch = 0; ch < sub.num_channels(); ++ch) {
    Time sum_comm = 0.0;
    Time min_comp = kInfiniteTime;
    for (const Task& t : sub) {
      if (t.channel != ch) continue;
      sum_comm += t.comm;
      min_comp = std::min(min_comp, t.comp);
    }
    if (min_comp == kInfiniteTime) continue;  // no window task on ch
    // A restored engine resumes from max(now, channel clock); channels
    // the snapshot does not cover start free at the decision instant.
    const Time clock =
        ch < carried.comm_available.size()
            ? std::max(carried.now, carried.comm_available[ch])
            : carried.now;
    bound = std::max(bound, clock + sum_comm + min_comp);
  }
  return bound;
}

}  // namespace

std::string window_heuristic_name(const WindowOptions& options) {
  std::string name = "lp." + std::to_string(options.window);
  if (options.mode == WindowMode::kPairOrder) name += "p";
  return name;
}

WindowedResult solve_windowed(const Instance& inst, Mem capacity,
                              const WindowOptions& options) {
  if (options.window == 0 || options.window > 8) {
    throw std::invalid_argument(
        "solve_windowed: window size must be in [1, 8]");
  }
  // On a DAG the windows walk a topological order so a predecessor always
  // lands in an earlier (or the same) window; edges inside a window
  // survive subset() and are enforced by the window optimizers, edges
  // into earlier windows become per-task ready floors computed from the
  // committed schedule. Edge-free instances keep raw submission order.
  const bool dag = inst.has_dependencies();
  const std::vector<TaskId> submission =
      dag ? inst.topological_order() : inst.submission_order();
  WindowedResult result;
  result.schedule = Schedule(inst.size());
  ExecutionState::Snapshot carried;  // fresh start
  carried.comm_available.assign(inst.num_channels(), 0.0);

  // Transfer-start floors of one window's tasks (local ids): the latest
  // computation end among predecessors outside the window, all of which
  // are already committed in result.schedule.
  const auto window_floors = [&](std::span<const TaskId> ids) {
    std::vector<Time> floors(ids.size(), 0.0);
    bool any = false;
    for (std::size_t local = 0; local < ids.size(); ++local) {
      for (const TaskId dep : inst[ids[local]].deps) {
        const TaskTimes& pred = result.schedule[dep];
        if (!pred.scheduled()) continue;  // same window: internal edge
        floors[local] =
            std::max(floors[local], pred.comp_start + inst[dep].comp);
        any = true;
      }
    }
    if (!any) floors.clear();  // no cross-window edges: keep the fast path
    return floors;
  };

  const auto stop_requested = [&options] {
    return options.should_stop && options.should_stop();
  };

  for (std::size_t lo = 0; lo < submission.size(); lo += options.window) {
    const std::size_t hi =
        std::min(lo + options.window, submission.size());
    const std::span<const TaskId> ids(&submission[lo], hi - lo);

    if (!result.stopped && stop_requested()) result.stopped = true;
    if (result.stopped) {
      // Deadline or cancellation: drain the remaining tasks in submission
      // order so the caller still receives a complete feasible schedule.
      const std::span<const TaskId> rest(&submission[lo],
                                         submission.size() - lo);
      ExecutionState state(capacity, carried);
      execute_order(inst, rest, state, result.schedule);
      return result;
    }

    const Instance sub = inst.subset(ids);
    DTS_AUDIT_ONLY(const ExecutionState::Snapshot audit_carried = carried;)
    if (options.mode == WindowMode::kCommonOrder) {
      ExhaustiveOptions ex;
      ex.max_n = options.window;
      ex.initial_state = carried;
      ex.executor = options.executor;
      if (dag) ex.ready_times = window_floors(ids);
      const ExhaustiveResult res = best_common_order(sub, capacity, ex);
      for (TaskId local = 0; local < sub.size(); ++local) {
        result.schedule.set(ids[local], res.schedule[local].comm_start,
                            res.schedule[local].comp_start);
      }
      carried = res.final_state;
    } else {
      PairOrderOptions po;
      po.max_n = options.window;
      po.initial_state = carried;
      po.should_stop = options.should_stop;
      if (dag) po.ready_times = window_floors(ids);
      if (options.use_lower_bounds) {
        po.lower_bound = carried_window_bound(sub, capacity, carried);
      }
      const PairOrderResult res = best_pair_order(sub, capacity, po);
      result.pairs_simulated += res.pairs_simulated;
      if (res.proved_optimal) ++result.windows_proved;
      if (res.stopped && res.makespan == kInfiniteTime) {
        // Stopped before this window produced an incumbent: fall back to
        // submission order for it (and, via the check above, the rest).
        result.stopped = true;
        ExecutionState state(capacity, carried);
        execute_order(inst, ids, state, result.schedule);
        carried = state.snapshot();
        continue;
      }
      for (TaskId local = 0; local < sub.size(); ++local) {
        result.schedule.set(ids[local], res.schedule[local].comm_start,
                            res.schedule[local].comp_start);
      }
      carried = res.final_state;
      if (res.stopped) {
        result.stopped = true;
        continue;  // incumbent kept; remaining windows drain above
      }
    }
    // Chained snapshots carry the engine forward window to window; a
    // clock regressing past the previous carried state would let a later
    // window schedule transfers before memory this state no longer
    // tracks was released (the PR 3 snapshot bug class, at window scope).
    DTS_ENSURE(carried.now >= audit_carried.now,
               "carried decision instant must not regress across windows");
    DTS_AUDIT_ONLY(
        for (std::size_t ch = 0;
             ch < audit_carried.comm_available.size(); ++ch) {
          DTS_AUDIT(carried.comm_available.size() > ch &&
                        carried.comm_available[ch] >=
                            audit_carried.comm_available[ch],
                    "carried channel clock must not regress across windows");
        } for (TaskId local = 0; local < sub.size(); ++local) {
          DTS_AUDIT(result.schedule[ids[local]].comm_start >= 0.0,
                    "every task of an optimized window must be scheduled");
        })
    ++result.windows_optimized;
  }
  return result;
}

Schedule schedule_windowed(const Instance& inst, Mem capacity,
                           const WindowOptions& options) {
  return solve_windowed(inst, capacity, options).schedule;
}

}  // namespace dts
