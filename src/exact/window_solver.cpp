#include "exact/window_solver.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/simulate.hpp"
#include "exact/branch_bound.hpp"
#include "exact/exhaustive.hpp"

namespace dts {

std::string window_heuristic_name(const WindowOptions& options) {
  std::string name = "lp." + std::to_string(options.window);
  if (options.mode == WindowMode::kPairOrder) name += "p";
  return name;
}

Schedule schedule_windowed(const Instance& inst, Mem capacity,
                           const WindowOptions& options) {
  if (options.window == 0 || options.window > 8) {
    throw std::invalid_argument(
        "schedule_windowed: window size must be in [1, 8]");
  }
  const std::vector<TaskId> submission = inst.submission_order();
  Schedule out(inst.size());
  ExecutionState::Snapshot carried;  // fresh start

  for (std::size_t lo = 0; lo < submission.size(); lo += options.window) {
    const std::size_t hi =
        std::min(lo + options.window, submission.size());
    const std::span<const TaskId> ids(&submission[lo], hi - lo);
    const Instance sub = inst.subset(ids);

    if (options.mode == WindowMode::kCommonOrder) {
      ExhaustiveOptions ex;
      ex.max_n = options.window;
      ex.initial_state = carried;
      const ExhaustiveResult res = best_common_order(sub, capacity, ex);
      for (TaskId local = 0; local < sub.size(); ++local) {
        out.set(ids[local], res.schedule[local].comm_start,
                res.schedule[local].comp_start);
      }
      carried = res.final_state;
    } else {
      PairOrderOptions po;
      po.max_n = options.window;
      po.initial_state = carried;
      const PairOrderResult res = best_pair_order(sub, capacity, po);
      for (TaskId local = 0; local < sub.size(); ++local) {
        out.set(ids[local], res.schedule[local].comm_start,
                res.schedule[local].comp_start);
      }
      carried = res.final_state;
    }
  }
  return out;
}

}  // namespace dts
