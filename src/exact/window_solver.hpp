#pragma once

/// \file window_solver.hpp
/// The paper's iterative MILP heuristic (§4.5), with the GLPK solver
/// replaced by exact window optimization (see DESIGN.md §5: the MILP is
/// used only to optimally order each k-task window, so any exact window
/// optimizer explores the same space). Tasks are processed in submission
/// order in windows of k = 3..6; events of tasks started before a window
/// boundary are fixed (the carried engine snapshot), the window's tasks
/// are re-optimized from scratch.
///
/// Two window optimizers are available:
///  * kCommonOrder — exhaustive over permutation schedules (the default;
///    fast, k! candidates);
///  * kPairOrder — the branch & bound over independent comm/comp orders,
///    exactly the MILP's solution space (k!^2 candidates, still exact).
///
/// Both modes accept any channel count: the common-order engine keeps one
/// clock per copy engine, and the pair-order search enumerates the global
/// chronological transfer order (which induces one sequence per engine)
/// next to the computation order, carrying the multi-clock snapshot across
/// window boundaries.

#include <cstdint>
#include <functional>
#include <string>

#include "core/instance.hpp"
#include "core/schedule.hpp"

namespace dts {

class Executor;  // job.hpp

enum class WindowMode {
  kCommonOrder,
  kPairOrder,
};

struct WindowOptions {
  std::size_t window = 4;                       ///< the k in lp.k
  WindowMode mode = WindowMode::kCommonOrder;
  /// Polled at every window boundary (and inside the pair-order search).
  /// When it returns true, the remaining tasks are drained in submission
  /// order from the carried engine state, so the result is always a
  /// complete feasible schedule.
  std::function<bool()> should_stop;
  /// Optional fan-out (job.hpp): each window's common-order enumeration
  /// splits its first-task branches across workers (see
  /// ExhaustiveOptions::executor); the window-by-window outer loop stays
  /// sequential (each window starts from the previous one's state).
  Executor* executor = nullptr;
  /// Pair mode only: feed each window search the carried-state-valid
  /// capacity-aware lower bound, so it stops as soon as an incumbent
  /// provably matches instead of scanning the remaining pair space. The
  /// schedule is identical either way (no later pair can definitely beat
  /// an incumbent that reached a proven bound); off is useful only to
  /// measure the pruning itself.
  bool use_lower_bounds = true;
};

/// schedule_windowed plus how the run ended.
struct WindowedResult {
  Schedule schedule;
  /// should_stop fired; the tail of the schedule is the submission-order
  /// fallback rather than window-optimized.
  bool stopped = false;
  /// Windows that were actually optimized before any stop.
  std::size_t windows_optimized = 0;
  /// Pair mode: order pairs co-simulated across all windows — the work
  /// metric the lower-bound early exit (use_lower_bounds) reduces.
  std::uint64_t pairs_simulated = 0;
  /// Pair mode: windows whose search ended by reaching the proven lower
  /// bound rather than by exhausting the pair space.
  std::size_t windows_proved = 0;
};

/// Display name used in the figures, e.g. "lp.4".
[[nodiscard]] std::string window_heuristic_name(const WindowOptions& options);

/// Schedules the instance window-by-window, optimally within each window
/// given the state carried from the previous ones. Throws
/// std::invalid_argument for window == 0, window > 8 (search explosion) or
/// a task that exceeds `capacity`.
[[nodiscard]] WindowedResult solve_windowed(const Instance& inst, Mem capacity,
                                            const WindowOptions& options);

/// Convenience: the schedule of solve_windowed.
[[nodiscard]] Schedule schedule_windowed(const Instance& inst, Mem capacity,
                                         const WindowOptions& options);

}  // namespace dts
