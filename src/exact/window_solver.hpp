#pragma once

/// \file window_solver.hpp
/// The paper's iterative MILP heuristic (§4.5), with the GLPK solver
/// replaced by exact window optimization (see DESIGN.md §5: the MILP is
/// used only to optimally order each k-task window, so any exact window
/// optimizer explores the same space). Tasks are processed in submission
/// order in windows of k = 3..6; events of tasks started before a window
/// boundary are fixed (the carried engine snapshot), the window's tasks
/// are re-optimized from scratch.
///
/// Two window optimizers are available:
///  * kCommonOrder — exhaustive over permutation schedules (the default;
///    fast, k! candidates);
///  * kPairOrder — the branch & bound over independent comm/comp orders,
///    exactly the MILP's solution space (k!^2 candidates, still exact).

#include <string>

#include "core/instance.hpp"
#include "core/schedule.hpp"

namespace dts {

enum class WindowMode {
  kCommonOrder,
  kPairOrder,
};

struct WindowOptions {
  std::size_t window = 4;                       ///< the k in lp.k
  WindowMode mode = WindowMode::kCommonOrder;
};

/// Display name used in the figures, e.g. "lp.4".
[[nodiscard]] std::string window_heuristic_name(const WindowOptions& options);

/// Schedules the instance window-by-window, optimally within each window
/// given the state carried from the previous ones. Throws
/// std::invalid_argument for window == 0, window > 8 (search explosion) or
/// a task that exceeds `capacity`.
[[nodiscard]] Schedule schedule_windowed(const Instance& inst, Mem capacity,
                                         const WindowOptions& options);

}  // namespace dts
