#pragma once

/// \file exhaustive.hpp
/// Exact optimization over *permutation* schedules (common communication /
/// computation order) by enumerating distinct task-value permutations.
/// Usable up to n ~ 10 in general; far beyond that when many tasks are
/// identical (duplicates are enumerated once — std::next_permutation over
/// task values collapses equal tasks).

#include <optional>
#include <vector>

#include "core/instance.hpp"
#include "core/schedule.hpp"
#include "core/simulate.hpp"

namespace dts {

class Executor;  // job.hpp

struct ExhaustiveResult {
  Time makespan = kInfiniteTime;
  std::vector<TaskId> order;  ///< a best common order
  Schedule schedule;
  /// Engine state after running the best order (window solving carries it
  /// into the next window).
  ExecutionState::Snapshot final_state;
  std::uint64_t permutations_tried = 0;
};

struct ExhaustiveOptions {
  /// Safety valve: refuse instances whose distinct-permutation count would
  /// exceed roughly max_n! (default 10!).
  std::size_t max_n = 10;
  /// Optional carried state (window solving); nullopt = fresh engine.
  std::optional<ExecutionState::Snapshot> initial_state;
  /// Optional per-task transfer-start floors (indexed by task id of the
  /// instance being solved): completion times of predecessors that live
  /// outside this instance — the window solver passes them next to the
  /// carried snapshot. Empty means none. The instance's own edges are
  /// enforced by the engine either way.
  std::vector<Time> ready_times;
  /// Optional fan-out (job.hpp): the enumeration splits into one branch
  /// per value-distinct first task and scans the branches concurrently.
  /// The branches partition the serial enumeration, and the final fold
  /// applies the same strict-preference rule in the serial order, so the
  /// optimum (and its tie-breaking) match the serial search. Used for
  /// instances of 6+ tasks; smaller searches stay serial.
  Executor* executor = nullptr;
};

/// Minimizes makespan over all distinct common orders under `capacity`.
/// Throws std::invalid_argument when inst.size() > options.max_n.
[[nodiscard]] ExhaustiveResult best_common_order(const Instance& inst,
                                                 Mem capacity,
                                                 const ExhaustiveOptions& options = {});

}  // namespace dts
