#include "exact/lower_bounds.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/bounds.hpp"
#include "core/johnson.hpp"

namespace dts {

namespace {

/// The single-link bounds of the original model, applied to `inst` as if
/// its tasks shared one engine. Valid whenever they actually do (the whole
/// instance, or one channel's sub-instance).
CapacityAwareBounds one_link_bounds(const Instance& inst, Mem capacity) {
  CapacityAwareBounds b;
  b.omim = omim(inst);
  if (inst.empty()) return b;

  Time sum_comm = 0.0;
  Time sum_comp = 0.0;
  Time min_comm = kInfiniteTime;
  Time min_comp = kInfiniteTime;
  for (const Task& t : inst) {
    sum_comm += t.comm;
    sum_comp += t.comp;
    min_comm = std::min(min_comm, t.comm);
    min_comp = std::min(min_comp, t.comp);
    // Two tasks whose footprints each exceed half the capacity cannot hold
    // memory simultaneously; their [SCOMM, SCOMP+CP) intervals are
    // pairwise disjoint and each spans at least CM+CP.
    if (definitely_less(capacity, 2.0 * t.mem)) {
      b.big_task_serial += t.comm + t.comp;
    }
  }
  b.link_plus_tail = sum_comm + min_comp;
  b.head_plus_comp = min_comm + sum_comp;
  b.critical_path = critical_path_bound(inst);
  b.combined = std::max({b.omim, b.big_task_serial, b.link_plus_tail,
                         b.head_plus_comp, b.critical_path});
  return b;
}

}  // namespace

CapacityAwareBounds capacity_aware_bounds(const Instance& inst, Mem capacity) {
  if (!inst.fully_bound()) {
    throw std::invalid_argument(
        "capacity_aware_bounds: the instance has time-less (bytes-only) "
        "tasks; bind() it to a machine first");
  }
  if (inst.single_channel()) return one_link_bounds(inst, capacity);

  // Multi-channel: each channel's induced sub-schedule is feasible for the
  // sub-instance under the same capacity, so every single-link bound of a
  // sub-instance bounds the full makespan. The memory-serialization and
  // processor-load arguments are channel-oblivious and stay global.
  CapacityAwareBounds b;
  Time sum_comp = 0.0;
  Time min_comm = kInfiniteTime;
  for (const Task& t : inst) {
    sum_comp += t.comp;
    min_comm = std::min(min_comm, t.comm);
    if (definitely_less(capacity, 2.0 * t.mem)) {
      b.big_task_serial += t.comm + t.comp;
    }
  }
  if (!inst.empty()) b.head_plus_comp = min_comm + sum_comp;
  for (ChannelId ch = 0; ch < inst.num_channels(); ++ch) {
    const std::vector<TaskId> ids = inst.tasks_on_channel(ch);
    if (ids.empty()) continue;
    const CapacityAwareBounds sub = one_link_bounds(inst.subset(ids), capacity);
    b.omim = std::max(b.omim, sub.omim);
    b.link_plus_tail = std::max(b.link_plus_tail, sub.link_plus_tail);
  }
  // The chain argument is channel-oblivious (every edge serializes its two
  // endpoints whatever engines they use), so the full-instance chain is
  // the valid — and strongest — form here.
  b.critical_path = critical_path_bound(inst);
  b.combined = std::max({b.omim, b.big_task_serial, b.link_plus_tail,
                         b.head_plus_comp, b.critical_path});
  return b;
}

}  // namespace dts
