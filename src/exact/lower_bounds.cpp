#include "exact/lower_bounds.hpp"

#include <algorithm>

#include "core/johnson.hpp"

namespace dts {

CapacityAwareBounds capacity_aware_bounds(const Instance& inst, Mem capacity) {
  CapacityAwareBounds b;
  b.omim = omim(inst);
  if (inst.empty()) return b;

  Time sum_comm = 0.0;
  Time sum_comp = 0.0;
  Time min_comm = kInfiniteTime;
  Time min_comp = kInfiniteTime;
  for (const Task& t : inst) {
    sum_comm += t.comm;
    sum_comp += t.comp;
    min_comm = std::min(min_comm, t.comm);
    min_comp = std::min(min_comp, t.comp);
    // Two tasks whose footprints each exceed half the capacity cannot hold
    // memory simultaneously; their [SCOMM, SCOMP+CP) intervals are
    // pairwise disjoint and each spans at least CM+CP.
    if (definitely_less(capacity, 2.0 * t.mem)) {
      b.big_task_serial += t.comm + t.comp;
    }
  }
  b.link_plus_tail = sum_comm + min_comp;
  b.head_plus_comp = min_comm + sum_comp;
  b.combined = std::max({b.omim, b.big_task_serial, b.link_plus_tail,
                         b.head_plus_comp});
  return b;
}

}  // namespace dts
