#include "exact/branch_bound.hpp"

#include <algorithm>
#include <stdexcept>
#include <tuple>

namespace dts {

namespace {

std::tuple<Time, Time, Mem> value_key(const Task& t) {
  return {t.comm, t.comp, t.mem};
}

}  // namespace

std::optional<Time> simulate_pair_order(const Instance& inst,
                                        std::span<const TaskId> comm_order,
                                        std::span<const TaskId> comp_order,
                                        Mem capacity,
                                        const ExecutionState::Snapshot& initial,
                                        Time abort_at, Schedule& out) {
  const std::size_t n = inst.size();
  if (comm_order.size() != n || comp_order.size() != n || out.size() != n) {
    throw std::invalid_argument("simulate_pair_order: size mismatch");
  }
  if (!inst.single_channel()) {
    throw std::invalid_argument(
        "simulate_pair_order: the pair-order model assumes one link; "
        "multi-channel instances use the simulation-based solvers");
  }

  Time link_free = initial.single_link_available();
  Time proc_free = initial.comp_available;

  // Memory bookkeeping. A task holds memory from its transfer start; its
  // release instant becomes known once its computation is scheduled.
  // Carried-in tasks arrive with known release instants.
  std::vector<std::pair<Time, Mem>> releases = initial.active;
  Mem indefinite = 0.0;  // transfers started, computation not yet scheduled

  const auto used_at = [&](Time t) {
    Mem used = indefinite;
    for (const auto& [end, mem] : releases) {
      if (definitely_less(t, end)) used += mem;
    }
    return used;
  };

  // Suffix loads for pruning.
  std::vector<Time> comm_suffix(n + 1, 0.0);
  std::vector<Time> comp_suffix(n + 1, 0.0);
  for (std::size_t k = n; k-- > 0;) {
    comm_suffix[k] = comm_suffix[k + 1] + inst[comm_order[k]].comm;
    comp_suffix[k] = comp_suffix[k + 1] + inst[comp_order[k]].comp;
  }

  std::vector<Time> comm_start(n, -1.0);
  std::vector<Time> comm_end(n, -1.0);
  std::vector<bool> started(n, false);

  Time makespan = 0.0;
  std::size_t i = 0;  // next transfer in comm_order
  std::size_t j = 0;  // next computation in comp_order
  std::vector<Time> candidate_times;

  while (i < n || j < n) {
    bool progress = false;

    // The processor serves its sequence as soon as data is present.
    while (j < n && started[comp_order[j]]) {
      const TaskId v = comp_order[j];
      const Time s = std::max(proc_free, comm_end[v]);
      const Time e = s + inst[v].comp;
      out.set(v, comm_start[v], s);
      proc_free = e;
      makespan = std::max(makespan, e);
      indefinite -= inst[v].mem;
      releases.emplace_back(e, inst[v].mem);
      ++j;
      progress = true;
      if (approx_leq(abort_at, makespan) ||
          approx_leq(abort_at, proc_free + comp_suffix[j])) {
        return std::nullopt;  // cannot beat the incumbent
      }
    }

    // The link serves its sequence at the earliest memory-feasible instant
    // computable from what is known now.
    if (i < n) {
      const TaskId u = comm_order[i];
      const Task& task = inst[u];
      if (approx_leq(abort_at, link_free + comm_suffix[i])) {
        return std::nullopt;
      }
      candidate_times.clear();
      candidate_times.push_back(link_free);
      for (const auto& [end, mem] : releases) {
        (void)mem;
        if (definitely_less(link_free, end)) candidate_times.push_back(end);
      }
      std::sort(candidate_times.begin(), candidate_times.end());
      for (const Time t : candidate_times) {
        if (approx_leq(used_at(t) + task.mem, capacity)) {
          comm_start[u] = t;
          comm_end[u] = t + task.comm;
          link_free = comm_end[u];
          started[u] = true;
          indefinite += task.mem;
          ++i;
          progress = true;
          break;
        }
      }
    }

    if (!progress) {
      // The link waits on memory that only a computation stuck behind the
      // link can release: this order pair is infeasible.
      return std::nullopt;
    }
  }
  return makespan;
}

PairOrderResult best_pair_order(const Instance& inst, Mem capacity,
                                const PairOrderOptions& options) {
  if (inst.size() > options.max_n) {
    throw std::invalid_argument(
        "best_pair_order: instance too large (n=" + std::to_string(inst.size()) +
        ", max=" + std::to_string(options.max_n) + ")");
  }
  if (!inst.single_channel()) {
    throw std::invalid_argument(
        "best_pair_order: the pair-order branch & bound models a single "
        "link; use exhaustive/window:K (common order) or the heuristics "
        "for multi-channel instances");
  }
  for (const Task& t : inst) {
    if (definitely_less(capacity, t.mem)) {
      throw std::invalid_argument("best_pair_order: task " +
                                  std::to_string(t.id) +
                                  " exceeds the memory capacity");
    }
  }

  const ExecutionState::Snapshot initial =
      options.initial_state.value_or(ExecutionState::Snapshot{});

  PairOrderResult result;
  result.makespan = options.upper_bound;
  bool found = false;

  if (inst.empty()) {
    result.makespan = 0.0;
    result.final_state = initial;
    return result;
  }

  const auto value_less = [&](TaskId a, TaskId b) {
    return value_key(inst[a]) < value_key(inst[b]);
  };
  std::vector<TaskId> comm = inst.submission_order();
  std::sort(comm.begin(), comm.end(), value_less);

  Schedule scratch(inst.size());
  // Deadline/cancellation poll, amortized to every 256 simulated pairs
  // (the callback may read a clock). Polling at pair 0 makes an
  // already-fired token return before any work.
  const auto stop_requested = [&options, &result] {
    return options.should_stop && (result.pairs_simulated & 0xFFu) == 0 &&
           options.should_stop();
  };
  do {
    std::vector<TaskId> comp = comm;  // start each inner scan from sorted
    std::sort(comp.begin(), comp.end(), value_less);
    do {
      if (stop_requested()) {
        result.stopped = true;
        break;
      }
      ++result.pairs_simulated;
      const std::optional<Time> ms = simulate_pair_order(
          inst, comm, comp, capacity, initial, result.makespan, scratch);
      if (ms && definitely_less(*ms, result.makespan)) {
        found = true;
        result.makespan = *ms;
        result.schedule = scratch;
        result.comm_order = comm;
        result.comp_order = comp;
      }
    } while (std::next_permutation(comp.begin(), comp.end(), value_less));
    if (result.stopped) break;
  } while (std::next_permutation(comm.begin(), comm.end(), value_less));

  if (!found) {
    if (result.stopped) {
      // Nothing feasible seen before the stop: the caller's upper bound (if
      // any) was never confirmed, so report "no incumbent" as documented.
      result.makespan = kInfiniteTime;
      return result;
    }
    // Either the caller's upper bound was already optimal or no pair is
    // feasible; with capacity >= max task memory a feasible pair always
    // exists (any common order), so the former.
    if (options.upper_bound == kInfiniteTime) {
      throw std::logic_error("best_pair_order: search found no schedule");
    }
    return result;
  }

  // Reconstruct the final engine state of the winning pair.
  {
    ExecutionState::Snapshot snap;
    Time link_free = initial.single_link_available();
    Time proc_free = initial.comp_available;
    for (TaskId id = 0; id < inst.size(); ++id) {
      link_free =
          std::max(link_free, result.schedule[id].comm_start + inst[id].comm);
      proc_free =
          std::max(proc_free, result.schedule[id].comp_start + inst[id].comp);
    }
    snap.comm_available = {link_free};
    snap.comp_available = proc_free;
    snap.active = initial.active;
    for (TaskId id = 0; id < inst.size(); ++id) {
      snap.active.emplace_back(result.schedule[id].comp_start + inst[id].comp,
                               inst[id].mem);
    }
    std::erase_if(snap.active, [&](const std::pair<Time, Mem>& a) {
      return approx_leq(a.first, link_free);
    });
    result.final_state = std::move(snap);
  }
  return result;
}

}  // namespace dts
