#include "exact/branch_bound.hpp"

#include <algorithm>
#include <stdexcept>
#include <tuple>

#include "support/contract.hpp"

namespace dts {

namespace {

std::tuple<Time, Time, Mem, ChannelId> value_key(const Task& t) {
  return {t.comm, t.comp, t.mem, t.channel};
}

/// Channel count the co-simulation tracks: every engine the instance's
/// tasks reference plus every clock the carried snapshot holds (an idle
/// carried engine must keep its clock through the window).
std::size_t tracked_channels(const Instance& inst,
                             const ExecutionState::Snapshot& initial) {
  return std::max(inst.num_channels(), initial.comm_available.size());
}

}  // namespace

std::optional<Time> simulate_pair_order(const Instance& inst,
                                        std::span<const TaskId> comm_order,
                                        std::span<const TaskId> comp_order,
                                        Mem capacity,
                                        const ExecutionState::Snapshot& initial,
                                        Time abort_at, Schedule& out) {
  const std::size_t n = inst.size();
  if (comm_order.size() != n || comp_order.size() != n || out.size() != n) {
    throw std::invalid_argument("simulate_pair_order: size mismatch");
  }

  const std::size_t nch = tracked_channels(inst, initial);
  // One availability clock per copy engine; engines the snapshot does not
  // cover become free at the snapshot's decision instant.
  std::vector<Time> link_free(initial.comm_available);
  link_free.resize(nch, initial.now);
  // comm_order is the chronological order of transfer starts: each start
  // is >= the previous one (and >= the snapshot instant, before which the
  // snapshot no longer tracks released memory).
  Time frontier = initial.now;
  Time proc_free = initial.comp_available;

  // Memory bookkeeping. A task holds memory from its transfer start; its
  // release instant becomes known once its computation is scheduled.
  // Carried-in tasks arrive with known release instants.
  std::vector<std::pair<Time, Mem>> releases = initial.active;
  Mem indefinite = 0.0;  // transfers started, computation not yet scheduled

  const auto used_at = [&](Time t) {
    Mem used = indefinite;
    for (const auto& [end, mem] : releases) {
      if (definitely_less(t, end)) used += mem;
    }
    return used;
  };

  // Suffix loads for pruning: remaining transfer time per copy engine
  // (transfers sharing an engine serialize) and remaining computation.
  std::vector<Time> comm_suffix((n + 1) * nch, 0.0);
  std::vector<Time> comp_suffix(n + 1, 0.0);
  for (std::size_t k = n; k-- > 0;) {
    for (std::size_t ch = 0; ch < nch; ++ch) {
      comm_suffix[k * nch + ch] = comm_suffix[(k + 1) * nch + ch];
    }
    comm_suffix[k * nch + inst[comm_order[k]].channel] +=
        inst[comm_order[k]].comm;
    comp_suffix[k] = comp_suffix[k + 1] + inst[comp_order[k]].comp;
  }

  std::vector<Time> comm_start(n, -1.0);
  std::vector<Time> comm_end(n, -1.0);
  std::vector<bool> started(n, false);

  Time makespan = 0.0;
  std::size_t i = 0;  // next transfer in comm_order
  std::size_t j = 0;  // next computation in comp_order
  std::vector<Time> candidate_times;

  while (i < n || j < n) {
    bool progress = false;

    // The processor serves its sequence as soon as data is present.
    while (j < n && started[comp_order[j]]) {
      const TaskId v = comp_order[j];
      const Time s = std::max(proc_free, comm_end[v]);
      const Time e = s + inst[v].comp;
      out.set(v, comm_start[v], s);
      proc_free = e;
      makespan = std::max(makespan, e);
      indefinite -= inst[v].mem;
      releases.emplace_back(e, inst[v].mem);
      ++j;
      progress = true;
      if (approx_leq(abort_at, makespan) ||
          approx_leq(abort_at, proc_free + comp_suffix[j])) {
        return std::nullopt;  // cannot beat the incumbent
      }
    }

    // Each engine serves its induced sequence at the earliest
    // memory-feasible instant computable from what is known now; the
    // global order fixes which engine commits next.
    if (i < n) {
      const TaskId u = comm_order[i];
      const Task& task = inst[u];
      for (std::size_t ch = 0; ch < nch; ++ch) {
        const Time remaining = comm_suffix[i * nch + ch];
        // A remaining transfer on `ch` starts >= both the engine clock and
        // the chronological frontier; its computation ends even later.
        if (remaining > 0.0 &&
            approx_leq(abort_at,
                       std::max(link_free[ch], frontier) + remaining)) {
          return std::nullopt;
        }
      }
      const Time lower = std::max(link_free[task.channel], frontier);
      candidate_times.clear();
      candidate_times.push_back(lower);
      for (const auto& [end, mem] : releases) {
        (void)mem;
        if (definitely_less(lower, end)) candidate_times.push_back(end);
      }
      std::sort(candidate_times.begin(), candidate_times.end());
      for (const Time t : candidate_times) {
        if (approx_leq(used_at(t) + task.mem, capacity)) {
          // The exactness argument hinges on comm_order being the
          // chronological order of transfer starts: each committed start
          // may never precede the frontier, and the task's engine clock
          // only moves forward.
          DTS_ENSURE(t >= frontier,
                     "transfer starts must be monotone along the "
                     "chronological order");
          DTS_ENSURE(t >= link_free[task.channel],
                     "per-channel clock must be monotone along the "
                     "chronological order");
          DTS_AUDIT(approx_leq(used_at(t) + task.mem, capacity),
                    "memory bound exceeded at a committed transfer start");
          comm_start[u] = t;
          comm_end[u] = t + task.comm;
          link_free[task.channel] = comm_end[u];
          frontier = t;
          started[u] = true;
          indefinite += task.mem;
          ++i;
          progress = true;
          break;
        }
      }
    }

    if (!progress) {
      // The next transfer waits on memory that only a computation stuck
      // behind it can release: this order pair is infeasible.
      return std::nullopt;
    }
  }
  return makespan;
}

PairOrderResult best_pair_order(const Instance& inst, Mem capacity,
                                const PairOrderOptions& options) {
  if (inst.size() > options.max_n) {
    throw std::invalid_argument(
        "best_pair_order: instance too large (n=" + std::to_string(inst.size()) +
        ", max=" + std::to_string(options.max_n) + ")");
  }
  for (const Task& t : inst) {
    if (definitely_less(capacity, t.mem)) {
      throw std::invalid_argument("best_pair_order: task " +
                                  std::to_string(t.id) +
                                  " exceeds the memory capacity");
    }
  }

  const ExecutionState::Snapshot initial =
      options.initial_state.value_or(ExecutionState::Snapshot{});

  PairOrderResult result;
  result.makespan = options.upper_bound;
  bool found = false;

  if (inst.empty()) {
    result.makespan = 0.0;
    result.final_state = initial;
    return result;
  }

  const auto value_less = [&](TaskId a, TaskId b) {
    return value_key(inst[a]) < value_key(inst[b]);
  };
  std::vector<TaskId> comm = inst.submission_order();
  std::sort(comm.begin(), comm.end(), value_less);

  Schedule scratch(inst.size());
  // Deadline/cancellation poll, amortized to every 256 simulated pairs
  // (the callback may read a clock). Polling at pair 0 makes an
  // already-fired token return before any work.
  const auto stop_requested = [&options, &result] {
    return options.should_stop && (result.pairs_simulated & 0xFFu) == 0 &&
           options.should_stop();
  };
  do {
    std::vector<TaskId> comp = comm;  // start each inner scan from sorted
    std::sort(comp.begin(), comp.end(), value_less);
    do {
      if (stop_requested()) {
        result.stopped = true;
        break;
      }
      ++result.pairs_simulated;
      const std::optional<Time> ms = simulate_pair_order(
          inst, comm, comp, capacity, initial, result.makespan, scratch);
      if (ms && definitely_less(*ms, result.makespan)) {
        found = true;
        result.makespan = *ms;
        result.schedule = scratch;
        result.comm_order = comm;
        result.comp_order = comp;
        if (options.lower_bound > 0.0 &&
            approx_leq(result.makespan, options.lower_bound)) {
          // The incumbent matches a proven lower bound: optimal, the
          // remaining pairs cannot improve on it.
          result.proved_optimal = true;
          break;
        }
      }
    } while (std::next_permutation(comp.begin(), comp.end(), value_less));
    if (result.stopped || result.proved_optimal) break;
  } while (std::next_permutation(comm.begin(), comm.end(), value_less));

  if (!found) {
    if (result.stopped) {
      // Nothing feasible seen before the stop: the caller's upper bound (if
      // any) was never confirmed, so report "no incumbent" as documented.
      result.makespan = kInfiniteTime;
      return result;
    }
    // Either the caller's upper bound was already optimal or no pair is
    // feasible; with capacity >= max task memory a feasible pair always
    // exists (any common order), so the former.
    if (options.upper_bound == kInfiniteTime) {
      throw std::logic_error("best_pair_order: search found no schedule");
    }
    return result;
  }

  // Reconstruct the final engine state of the winning pair.
  {
    ExecutionState::Snapshot snap;
    snap.comm_available = initial.comm_available;
    snap.comm_available.resize(tracked_channels(inst, initial), initial.now);
    Time proc_free = initial.comp_available;
    for (TaskId id = 0; id < inst.size(); ++id) {
      Time& clock = snap.comm_available[inst[id].channel];
      clock = std::max(clock, result.schedule[id].comm_start + inst[id].comm);
      proc_free =
          std::max(proc_free, result.schedule[id].comp_start + inst[id].comp);
    }
    snap.comp_available = proc_free;
    // Resuming from this snapshot issues transfers at or after the
    // earliest engine-free instant; memory released before it needs no
    // tracking. (With one channel this is exactly the link clock.)
    snap.now = std::max(initial.now,
                        *std::min_element(snap.comm_available.begin(),
                                          snap.comm_available.end()));
    snap.active = initial.active;
    for (TaskId id = 0; id < inst.size(); ++id) {
      snap.active.emplace_back(result.schedule[id].comp_start + inst[id].comp,
                               inst[id].mem);
    }
    std::erase_if(snap.active, [&](const std::pair<Time, Mem>& a) {
      return approx_leq(a.first, snap.now);
    });
    // The carried-over state may only move forward relative to what was
    // carried in — the window solver chains these snapshots, and a
    // regressed clock would issue later windows in the past.
    DTS_ENSURE(snap.now >= initial.now,
               "reconstructed state must not regress the decision instant");
    DTS_AUDIT_ONLY(
        for (std::size_t ch = 0; ch < initial.comm_available.size(); ++ch) {
          DTS_AUDIT(snap.comm_available[ch] >= initial.comm_available[ch],
                    "reconstructed channel clock must not regress");
        } DTS_AUDIT(snap.comp_available >= initial.comp_available,
                    "reconstructed processor clock must not regress");)
    result.final_state = std::move(snap);
  }
  return result;
}

}  // namespace dts
