#include "exact/branch_bound.hpp"

#include <algorithm>
#include <stdexcept>
#include <tuple>

#include "core/compiled.hpp"
#include "support/contract.hpp"

namespace dts {

namespace {

std::tuple<Time, Time, Mem, ChannelId> value_key(const Task& t) {
  return {t.comm, t.comp, t.mem, t.channel};
}

/// Channel count the co-simulation tracks: every engine the instance's
/// tasks reference plus every clock the carried snapshot holds (an idle
/// carried engine must keep its clock through the window).
std::size_t tracked_channels(const Instance& inst,
                             const ExecutionState::Snapshot& initial) {
  return std::max(inst.num_channels(), initial.comm_available.size());
}

/// Reusable buffers for the pair co-simulation. best_pair_order runs it
/// ~(n!)^2 times; assign() below reuses capacity, so a warm scratch makes
/// each pair allocation-free.
struct PairScratch {
  std::vector<Time> link_free;
  std::vector<std::pair<Time, Mem>> releases;
  std::vector<Time> comm_suffix;
  std::vector<Time> comp_suffix;
  std::vector<Time> comm_start;
  std::vector<Time> comm_end;
  std::vector<Time> comp_end;  ///< -1 until the computation is scheduled
  std::vector<unsigned char> started;
  std::vector<Time> candidate_times;
};

/// The co-simulation itself, over the SoA arrays with caller-owned
/// buffers. Arithmetic is identical to the original per-Task formulation;
/// only the data layout changed.
std::optional<Time> simulate_pair_order_impl(
    const CompiledInstance& ci, std::span<const TaskId> comm_order,
    std::span<const TaskId> comp_order, Mem capacity,
    const ExecutionState::Snapshot& initial, Time abort_at, Schedule& out,
    PairScratch& s, std::span<const Time> ready_floors = {}) {
  const std::size_t n = ci.size();
  const std::size_t nch =
      std::max(ci.num_channels(), initial.comm_available.size());
  const bool dag = ci.has_dependencies();

  // One availability clock per copy engine; engines the snapshot does not
  // cover become free at the snapshot's decision instant.
  s.link_free.assign(initial.comm_available.begin(),
                     initial.comm_available.end());
  s.link_free.resize(nch, initial.now);
  // comm_order is the chronological order of transfer starts: each start
  // is >= the previous one (and >= the snapshot instant, before which the
  // snapshot no longer tracks released memory).
  Time frontier = initial.now;
  Time proc_free = initial.comp_available;

  // Memory bookkeeping. A task holds memory from its transfer start; its
  // release instant becomes known once its computation is scheduled.
  // Carried-in tasks arrive with known release instants.
  s.releases.assign(initial.active.begin(), initial.active.end());
  Mem indefinite = 0.0;  // transfers started, computation not yet scheduled

  const auto used_at = [&](Time t) {
    Mem used = indefinite;
    for (const auto& [end, mem] : s.releases) {
      if (definitely_less(t, end)) used += mem;
    }
    return used;
  };

  // Suffix loads for pruning: remaining transfer time per copy engine
  // (transfers sharing an engine serialize) and remaining computation.
  s.comm_suffix.assign((n + 1) * nch, 0.0);
  s.comp_suffix.assign(n + 1, 0.0);
  for (std::size_t k = n; k-- > 0;) {
    for (std::size_t ch = 0; ch < nch; ++ch) {
      s.comm_suffix[k * nch + ch] = s.comm_suffix[(k + 1) * nch + ch];
    }
    s.comm_suffix[k * nch + ci.channel(comm_order[k])] +=
        ci.comm(comm_order[k]);
    s.comp_suffix[k] = s.comp_suffix[k + 1] + ci.comp(comp_order[k]);
  }

  s.comm_start.assign(n, -1.0);
  s.comm_end.assign(n, -1.0);
  if (dag) s.comp_end.assign(n, -1.0);
  s.started.assign(n, 0);

  Time makespan = 0.0;
  std::size_t i = 0;  // next transfer in comm_order
  std::size_t j = 0;  // next computation in comp_order

  while (i < n || j < n) {
    bool progress = false;

    // The processor serves its sequence as soon as data is present.
    while (j < n && s.started[comp_order[j]]) {
      const TaskId v = comp_order[j];
      const Time start = std::max(proc_free, s.comm_end[v]);
      const Time e = start + ci.comp(v);
      out.set(v, s.comm_start[v], start);
      proc_free = e;
      makespan = std::max(makespan, e);
      if (dag) s.comp_end[v] = e;
      indefinite -= ci.mem(v);
      s.releases.emplace_back(e, ci.mem(v));
      ++j;
      progress = true;
      if (approx_leq(abort_at, makespan) ||
          approx_leq(abort_at, proc_free + s.comp_suffix[j])) {
        return std::nullopt;  // cannot beat the incumbent
      }
    }

    // Each engine serves its induced sequence at the earliest
    // memory-feasible instant computable from what is known now; the
    // global order fixes which engine commits next.
    if (i < n) {
      const TaskId u = comm_order[i];
      const ChannelId u_ch = ci.channel(u);
      const Mem u_mem = ci.mem(u);
      for (std::size_t ch = 0; ch < nch; ++ch) {
        const Time remaining = s.comm_suffix[i * nch + ch];
        // A remaining transfer on `ch` starts >= both the engine clock and
        // the chronological frontier; its computation ends even later.
        if (remaining > 0.0 &&
            approx_leq(abort_at,
                       std::max(s.link_free[ch], frontier) + remaining)) {
          return std::nullopt;
        }
      }
      // Dependency gate: the transfer waits for every predecessor's
      // computation end. A predecessor whose computation is sequenced
      // behind this transfer in comp_order blocks it — if the processor
      // side cannot progress either, the pair is infeasible below,
      // exactly like the memory deadlock.
      Time dep_floor = ready_floors.empty() ? 0.0 : ready_floors[u];
      bool preds_done = true;
      if (dag) {
        for (const TaskId dep : ci.deps(u)) {
          if (s.comp_end[dep] < 0.0) {
            preds_done = false;
            break;
          }
          dep_floor = std::max(dep_floor, s.comp_end[dep]);
        }
      }
      if (!preds_done) {
        if (!progress) return std::nullopt;
        continue;
      }
      const Time lower =
          std::max(std::max(s.link_free[u_ch], frontier), dep_floor);
      s.candidate_times.clear();
      s.candidate_times.push_back(lower);
      for (const auto& [end, mem] : s.releases) {
        (void)mem;
        if (definitely_less(lower, end)) s.candidate_times.push_back(end);
      }
      std::sort(s.candidate_times.begin(), s.candidate_times.end());
      for (const Time t : s.candidate_times) {
        if (approx_leq(used_at(t) + u_mem, capacity)) {
          // The exactness argument hinges on comm_order being the
          // chronological order of transfer starts: each committed start
          // may never precede the frontier, and the task's engine clock
          // only moves forward.
          DTS_ENSURE(t >= frontier,
                     "transfer starts must be monotone along the "
                     "chronological order");
          DTS_ENSURE(t >= s.link_free[u_ch],
                     "per-channel clock must be monotone along the "
                     "chronological order");
          DTS_AUDIT(approx_leq(used_at(t) + u_mem, capacity),
                    "memory bound exceeded at a committed transfer start");
          s.comm_start[u] = t;
          s.comm_end[u] = t + ci.comm(u);
          s.link_free[u_ch] = s.comm_end[u];
          frontier = t;
          s.started[u] = 1;
          indefinite += u_mem;
          ++i;
          progress = true;
          break;
        }
      }
    }

    if (!progress) {
      // The next transfer waits on memory that only a computation stuck
      // behind it can release: this order pair is infeasible.
      return std::nullopt;
    }
  }
  return makespan;
}

}  // namespace

std::optional<Time> simulate_pair_order(const Instance& inst,
                                        std::span<const TaskId> comm_order,
                                        std::span<const TaskId> comp_order,
                                        Mem capacity,
                                        const ExecutionState::Snapshot& initial,
                                        Time abort_at, Schedule& out,
                                        std::span<const Time> ready_floors) {
  const std::size_t n = inst.size();
  if (comm_order.size() != n || comp_order.size() != n || out.size() != n) {
    throw std::invalid_argument("simulate_pair_order: size mismatch");
  }
  const CompiledInstance ci(inst);
  PairScratch scratch;
  return simulate_pair_order_impl(ci, comm_order, comp_order, capacity,
                                  initial, abort_at, out, scratch,
                                  ready_floors);
}

PairOrderResult best_pair_order(const Instance& inst, Mem capacity,
                                const PairOrderOptions& options) {
  if (inst.size() > options.max_n) {
    throw std::invalid_argument(
        "best_pair_order: instance too large (n=" + std::to_string(inst.size()) +
        ", max=" + std::to_string(options.max_n) + ")");
  }
  for (const Task& t : inst) {
    if (definitely_less(capacity, t.mem)) {
      throw std::invalid_argument("best_pair_order: task " +
                                  std::to_string(t.id) +
                                  " exceeds the memory capacity");
    }
  }

  const ExecutionState::Snapshot initial =
      options.initial_state.value_or(ExecutionState::Snapshot{});

  PairOrderResult result;
  result.makespan = options.upper_bound;
  bool found = false;

  if (inst.empty()) {
    result.makespan = 0.0;
    result.final_state = initial;
    return result;
  }

  // Dependency edges break the identical-task collapse (two value-equal
  // tasks may have different successors), so DAG instances enumerate full
  // permutations — ids break value ties — and skip the non-topological
  // ones: a feasible schedule's chronological transfer order and its
  // computation service order both place every task after its
  // predecessors (its transfer starts after the predecessor's computation
  // end, and its computation even later).
  const bool dag = inst.has_dependencies();
  const auto value_less = [&](TaskId a, TaskId b) {
    const auto ka = value_key(inst[a]);
    const auto kb = value_key(inst[b]);
    if (ka != kb) return ka < kb;
    return dag && a < b;
  };
  std::vector<TaskId> comm = inst.submission_order();
  std::sort(comm.begin(), comm.end(), value_less);

  Schedule scratch(inst.size());
  // Compile once; the pair buffers warm up on the first simulation and
  // every later pair runs allocation-free.
  const CompiledInstance compiled(inst);
  PairScratch pair_scratch;
  // Deadline/cancellation poll, amortized to every 256 simulated pairs
  // (the callback may read a clock). Polling at pair 0 makes an
  // already-fired token return before any work.
  const auto stop_requested = [&options, &result] {
    return options.should_stop && (result.pairs_simulated & 0xFFu) == 0 &&
           options.should_stop();
  };
  do {
    if (dag && !inst.is_topological_order(comm)) continue;
    std::vector<TaskId> comp = comm;  // start each inner scan from sorted
    std::sort(comp.begin(), comp.end(), value_less);
    do {
      if (dag && !inst.is_topological_order(comp)) continue;
      if (stop_requested()) {
        result.stopped = true;
        break;
      }
      ++result.pairs_simulated;
      const std::optional<Time> ms = simulate_pair_order_impl(
          compiled, comm, comp, capacity, initial, result.makespan, scratch,
          pair_scratch, options.ready_times);
      if (ms && definitely_less(*ms, result.makespan)) {
        found = true;
        result.makespan = *ms;
        result.schedule = scratch;
        result.comm_order = comm;
        result.comp_order = comp;
        if (options.lower_bound > 0.0 &&
            approx_leq(result.makespan, options.lower_bound)) {
          // The incumbent matches a proven lower bound: optimal, the
          // remaining pairs cannot improve on it.
          result.proved_optimal = true;
          break;
        }
      }
    } while (std::next_permutation(comp.begin(), comp.end(), value_less));
    if (result.stopped || result.proved_optimal) break;
  } while (std::next_permutation(comm.begin(), comm.end(), value_less));

  if (!found) {
    if (result.stopped) {
      // Nothing feasible seen before the stop: the caller's upper bound (if
      // any) was never confirmed, so report "no incumbent" as documented.
      result.makespan = kInfiniteTime;
      return result;
    }
    // Either the caller's upper bound was already optimal or no pair is
    // feasible; with capacity >= max task memory a feasible pair always
    // exists (any common order), so the former.
    if (options.upper_bound == kInfiniteTime) {
      throw std::logic_error("best_pair_order: search found no schedule");
    }
    return result;
  }

  // Reconstruct the final engine state of the winning pair.
  {
    ExecutionState::Snapshot snap;
    snap.comm_available = initial.comm_available;
    snap.comm_available.resize(tracked_channels(inst, initial), initial.now);
    Time proc_free = initial.comp_available;
    for (TaskId id = 0; id < inst.size(); ++id) {
      Time& clock = snap.comm_available[inst[id].channel];
      clock = std::max(clock, result.schedule[id].comm_start + inst[id].comm);
      proc_free =
          std::max(proc_free, result.schedule[id].comp_start + inst[id].comp);
    }
    snap.comp_available = proc_free;
    // Resuming from this snapshot issues transfers at or after the
    // earliest engine-free instant; memory released before it needs no
    // tracking. (With one channel this is exactly the link clock.)
    snap.now = std::max(initial.now,
                        *std::min_element(snap.comm_available.begin(),
                                          snap.comm_available.end()));
    snap.active = initial.active;
    for (TaskId id = 0; id < inst.size(); ++id) {
      snap.active.emplace_back(result.schedule[id].comp_start + inst[id].comp,
                               inst[id].mem);
    }
    std::erase_if(snap.active, [&](const std::pair<Time, Mem>& a) {
      return approx_leq(a.first, snap.now);
    });
    // The carried-over state may only move forward relative to what was
    // carried in — the window solver chains these snapshots, and a
    // regressed clock would issue later windows in the past.
    DTS_ENSURE(snap.now >= initial.now,
               "reconstructed state must not regress the decision instant");
    DTS_AUDIT_ONLY(
        for (std::size_t ch = 0; ch < initial.comm_available.size(); ++ch) {
          DTS_AUDIT(snap.comm_available[ch] >= initial.comm_available[ch],
                    "reconstructed channel clock must not regress");
        } DTS_AUDIT(snap.comp_available >= initial.comp_available,
                    "reconstructed processor clock must not regress");)
    result.final_state = std::move(snap);
  }
  return result;
}

}  // namespace dts
