#pragma once

/// \file lower_bounds.hpp
/// Capacity-aware makespan lower bounds. OMIM (Johnson) ignores the memory
/// limit entirely; when the capacity is tight relative to the large tasks,
/// strictly stronger bounds exist:
///
///  * big-task serialization: tasks with mem > C/2 can never overlap their
///    memory intervals pairwise, and a task's memory interval spans at
///    least CM_i + CP_i, so the makespan is at least the sum of CM_i+CP_i
///    over all such tasks (plus the best interleaving of everything else
///    on the link, which the weaker terms below capture);
///  * link load + forced tail: the link must carry sum(CM), and after the
///    last transfer finishes some computation still has to run — at least
///    the smallest CP among all tasks;
///  * processor load + forced head: symmetric, the processor cannot start
///    before the smallest CM has been transferred.
///
/// The combined bound is the max of all of these and OMIM. Benches report
/// it next to achieved makespans to show how much of the remaining gap is
/// provably unavoidable.
///
/// Multi-channel instances apply the link-local arguments (OMIM, link
/// load + tail) per copy engine — the schedule induced on one channel's
/// tasks is feasible for that sub-instance, so its bounds transfer — and
/// keep the memory-serialization and processor-side arguments global.
/// With one channel the result is bit-identical to the original bounds.

#include "core/instance.hpp"

namespace dts {

struct CapacityAwareBounds {
  Time omim = 0.0;              ///< Johnson, memory-oblivious
  Time big_task_serial = 0.0;   ///< sum of CM+CP over tasks with mem > C/2
  Time link_plus_tail = 0.0;    ///< sum comm + min comp
  Time head_plus_comp = 0.0;    ///< min comm + sum comp
  /// Longest dependency chain at CM+CP per link (core/bounds.hpp); equals
  /// the largest single-task CM+CP — never above omim — on an edge-free
  /// instance, so the combined bound is unchanged for the paper's model.
  Time critical_path = 0.0;
  Time combined = 0.0;          ///< max of everything

  [[nodiscard]] bool capacity_binds() const noexcept {
    return combined > omim;
  }
};

/// Computes every bound for the given capacity. Requires capacity >= the
/// largest task footprint (otherwise no schedule exists at all).
[[nodiscard]] CapacityAwareBounds capacity_aware_bounds(const Instance& inst,
                                                        Mem capacity);

}  // namespace dts
