#pragma once

/// \file rng.hpp
/// Deterministic, seedable random number generation for workload synthesis.
///
/// Every generator in the library takes an explicit seed so that the 150
/// per-process traces of the evaluation are exactly reproducible across
/// platforms. We implement SplitMix64 (Steele, Lea & Flood 2014) rather than
/// relying on std::mt19937 streams because the standard library does not
/// guarantee cross-implementation distribution behaviour for
/// std::uniform_real_distribution; SplitMix64 plus our own scaling does.

#include <cstdint>
#include <limits>

namespace dts {

/// SplitMix64: passes BigCrush, 64 bits of state, trivially splittable.
class Rng {
 public:
  constexpr explicit Rng(std::uint64_t seed) noexcept : state_(seed) {}

  /// Next raw 64-bit value.
  constexpr std::uint64_t next_u64() noexcept {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  /// Uniform double in [0, 1).
  constexpr double next_double() noexcept {
    // 53 high-quality bits -> [0,1) with full double precision.
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  constexpr double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * next_double();
  }

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  constexpr std::uint64_t uniform_u64(std::uint64_t lo, std::uint64_t hi) noexcept {
    const std::uint64_t span = hi - lo + 1;
    if (span == 0) return next_u64();  // full range when hi-lo+1 wraps
#if defined(__SIZEOF_INT128__)
    // Rejection-free multiply-shift (Lemire); negligible bias for span << 2^64.
    __extension__ using Uint128 = unsigned __int128;
    return lo + static_cast<std::uint64_t>(
                    (static_cast<Uint128>(next_u64()) * span) >> 64);
#else
    return lo + next_u64() % span;  // modulo bias < span / 2^64
#endif
  }

  /// Uniform size_t index in [0, n). Requires n > 0.
  constexpr std::size_t index(std::size_t n) noexcept {
    return static_cast<std::size_t>(uniform_u64(0, static_cast<std::uint64_t>(n) - 1));
  }

  /// Bernoulli trial with probability p of returning true.
  constexpr bool chance(double p) noexcept { return next_double() < p; }

  /// Log-normal-ish heavy-tailed positive sample: exp(N(mu, sigma)).
  double lognormal(double mu, double sigma) noexcept;

  /// Standard normal via Box-Muller (one value per call; simple over fast).
  double normal() noexcept;

  /// Derive an independent child stream (for per-trace generators).
  constexpr Rng split() noexcept { return Rng(next_u64() ^ 0xA02BDBF7BB3C0A7ULL); }

 private:
  std::uint64_t state_;
};

}  // namespace dts
