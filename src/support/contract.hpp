#pragma once

/// \file contract.hpp
/// Compiled-in contract audits: the invariants the static layer
/// (tools/dts_lint.py, clang-tidy, cppcheck) cannot see because they only
/// hold at runtime — per-channel clocks monotone along the chronological
/// order, the memory bound never exceeded mid-simulate, snapshot
/// save->restore round-trip identity, pool jobs reaching exactly one
/// terminal state.
///
/// Three macros, all active only when the library is built with the
/// DTS_AUDIT CMake option (which defines DTS_ENABLE_AUDITS=1):
///
///   DTS_EXPECT(cond, msg)  precondition at a function's entry
///   DTS_ENSURE(cond, msg)  postcondition / invariant after a mutation
///   DTS_AUDIT(cond, msg)   expensive audit (O(n) scans, re-simulation)
///
/// A violated contract is a programming error, never an input error: the
/// handler prints the condition, location and message to stderr and
/// aborts, so a CI Debug+DTS_AUDIT ctest run fails loudly at the exact
/// broken invariant. Input validation stays exception-based and always
/// on; contracts guard what correct code must already guarantee, which
/// is why release builds compile them out entirely (the CI perf guard
/// sees zero overhead).
///
/// Audit-only scratch state (e.g. capturing a clock before a mutation to
/// assert monotonicity after it) goes inside DTS_AUDIT_ONLY(...) so the
/// non-audit build does not even evaluate it.

#if defined(DTS_ENABLE_AUDITS) && DTS_ENABLE_AUDITS

#include <cstdio>
#include <cstdlib>

namespace dts::contract {

/// Prints the violated contract and aborts. Out of line in the header so
/// the library keeps zero .cpp dependencies on the audit mode.
[[noreturn]] inline void fail(const char* kind, const char* condition,
                              const char* file, int line,
                              const char* message) noexcept {
  std::fprintf(stderr, "%s:%d: %s violated: (%s) — %s\n", file, line, kind,
               condition, message);
  std::abort();
}

}  // namespace dts::contract

#define DTS_CONTRACT_CHECK(kind, cond, msg)                         \
  do {                                                              \
    if (!(cond)) {                                                  \
      ::dts::contract::fail(kind, #cond, __FILE__, __LINE__, msg);  \
    }                                                               \
  } while (false)

#define DTS_EXPECT(cond, msg) DTS_CONTRACT_CHECK("precondition", cond, msg)
#define DTS_ENSURE(cond, msg) DTS_CONTRACT_CHECK("postcondition", cond, msg)
#define DTS_AUDIT(cond, msg) DTS_CONTRACT_CHECK("audit", cond, msg)
#define DTS_AUDIT_ONLY(...) __VA_ARGS__

namespace dts {
inline constexpr bool kAuditsEnabled = true;
}  // namespace dts

#else  // audits compiled out: zero code, zero evaluation

#define DTS_EXPECT(cond, msg) static_cast<void>(0)
#define DTS_ENSURE(cond, msg) static_cast<void>(0)
#define DTS_AUDIT(cond, msg) static_cast<void>(0)
#define DTS_AUDIT_ONLY(...)

namespace dts {
inline constexpr bool kAuditsEnabled = false;
}  // namespace dts

#endif
