#pragma once

/// \file parallel_for.hpp
/// Minimal fork-join parallel loop used by the benchmark harnesses to sweep
/// (trace x capacity x heuristic) grids. Deliberately simple: static block
/// partitioning over std::thread, no work stealing — every grid cell in our
/// sweeps costs roughly the same, so static partitioning is within a few
/// percent of optimal and keeps the code auditable.

#include <cstddef>
#include <functional>

namespace dts {

/// Number of worker threads used by parallel_for (hardware concurrency,
/// clamped to [1, 64]).
[[nodiscard]] std::size_t parallel_workers() noexcept;

/// Invoke fn(i) for every i in [begin, end), distributing contiguous blocks
/// over worker threads. Falls back to a serial loop for tiny ranges or when
/// only one worker is available. fn must be safe to call concurrently for
/// distinct i. Exceptions thrown by fn terminate the process (HPC-style
/// fail-fast): the sweeps are pure functions of their inputs, so an
/// exception indicates a programming error, not a recoverable condition.
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn);

}  // namespace dts
