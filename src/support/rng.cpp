#include "support/rng.hpp"

#include <cmath>
#include <numbers>

namespace dts {

double Rng::normal() noexcept {
  // Box-Muller; regenerate on the (measure-zero) log(0) corner.
  double u1 = next_double();
  while (u1 <= 0.0) u1 = next_double();
  const double u2 = next_double();
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::lognormal(double mu, double sigma) noexcept {
  return std::exp(mu + sigma * normal());
}

}  // namespace dts
