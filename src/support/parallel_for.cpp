#include "support/parallel_for.hpp"

#include <algorithm>
#include <thread>
#include <vector>

namespace dts {

std::size_t parallel_workers() noexcept {
  const unsigned hw = std::thread::hardware_concurrency();
  return std::clamp<std::size_t>(hw == 0 ? 1 : hw, 1, 64);
}

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  const std::size_t workers = std::min(parallel_workers(), n);
  if (workers <= 1 || n < 4) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
    return;
  }

  std::vector<std::thread> pool;
  pool.reserve(workers);
  const std::size_t chunk = (n + workers - 1) / workers;
  for (std::size_t w = 0; w < workers; ++w) {
    const std::size_t lo = begin + w * chunk;
    const std::size_t hi = std::min(lo + chunk, end);
    if (lo >= hi) break;
    pool.emplace_back([lo, hi, &fn] {
      for (std::size_t i = lo; i < hi; ++i) fn(i);
    });
  }
  for (auto& t : pool) t.join();
}

}  // namespace dts
