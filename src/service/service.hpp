#pragma once

/// \file service.hpp
/// SolverService — the long-running serving front-end over SolverPool.
///
/// One request flows through the staged pipeline
///
///     parse -> canonicalize -> cache-probe -> solve -> re-cost
///
/// with three cross-cutting mechanisms:
///
///  * Admission control. At most `max_inflight` requests occupy the
///    pipeline at once; excess load gets an explicit `shed` response
///    (reason "admission") instead of unbounded queueing. A request that
///    passes admission but finds the solver pool's bounded queue full is
///    shed with reason "queue-full". Shed responses are back-pressure:
///    the client retries later. A draining service answers `draining`:
///    the client goes away.
///
///  * Result cache. Solved orders are cached under the canonical-instance
///    fingerprint (service/fingerprint.hpp) x a digest of every
///    result-affecting knob, and re-costed per request at response time —
///    warm responses are bitwise identical to cold ones (see
///    result_cache.hpp for how that is guaranteed unconditionally).
///
///  * Single-flight coalescing. Identical requests that arrive while the
///    first one is still solving do not queue duplicate solves: followers
///    park on the leader's in-flight entry and are answered from its
///    published result, counted `coalesced`. Every request that consults
///    the cache resolves as exactly one of hit / miss / coalesced, so the
///    counters reconcile: hits + misses + coalesced == consulting
///    requests.
///
/// The service is thread-safe: `handle()` may be called concurrently from
/// any number of connection threads (tests/service_soak_test.cpp runs it
/// under TSan). `drain()` stops admission, waits for the pipeline to
/// empty, and drains the pool — in-flight requests complete normally.

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "core/pool.hpp"
#include "core/schedule.hpp"
#include "service/protocol.hpp"
#include "service/result_cache.hpp"

namespace dts {

struct ServiceOptions {
  /// Worker threads of the underlying SolverPool (0 = hardware).
  std::size_t workers = 0;
  /// Bounded solve queue; a full queue sheds with reason "queue-full".
  std::size_t queue_capacity = 64;
  /// Result-cache entries (0 disables caching).
  std::size_t cache_capacity = 4096;
  /// Pipeline occupancy bound; excess sheds with reason "admission".
  std::size_t max_inflight = 256;
  /// Solver used when a request names none.
  std::string default_solver = "auto";
  /// Test hook: invoked by a single-flight leader after it registered the
  /// flight, immediately before submitting the solve. Lets tests hold a
  /// leader in place while followers pile up. Must be thread-safe.
  std::function<void()> on_solve_start;
};

/// A parsed, typed request (the wire adapter builds one from a frame).
struct ServiceRequest {
  std::string id = "-";
  Instance instance;
  std::string solver;  ///< Empty = ServiceOptions::default_solver.
  /// Exactly one of the two must be set.
  std::optional<Mem> capacity;
  std::optional<double> capacity_factor;  ///< Multiple of min_capacity.
  std::string machine;  ///< Empty = none (instance must be time-bound).
  std::optional<std::uint64_t> seed;
  std::optional<std::size_t> batch;
  bool no_cache = false;  ///< Bypass cache and single-flight entirely.
};

/// A typed response; serve.cpp renders it to the wire. Reuses the wire
/// vocabulary for status and cache outcome so the two layers cannot
/// drift.
struct ServiceResponse {
  WireResponse::Status status = WireResponse::Status::kOk;
  WireResponse::CacheOutcome cache = WireResponse::CacheOutcome::kMiss;
  std::string id;
  std::string winner;
  Time makespan = 0.0;
  std::uint64_t evaluations = 0;
  /// Optimality certificate (SolveResult::proved_optimal / lower_bound);
  /// warm hits replay the original solve's certificate verbatim.
  bool proved_optimal = false;
  Time lower_bound = 0.0;
  std::vector<TaskId> order;        ///< Winning comm order, request ids.
  std::vector<TaskTimes> schedule;  ///< Start times indexed by task id.
  std::string shed_reason;          ///< "admission" or "queue-full".
  std::string error;
};

/// Cumulative service counters (all monotonic except cache_size).
struct ServiceCounters {
  std::uint64_t received = 0;
  std::uint64_t ok = 0;
  std::uint64_t shed = 0;
  std::uint64_t draining = 0;
  std::uint64_t errors = 0;
  /// Response cache outcomes (subsets of `ok`).
  std::uint64_t ok_hit = 0;
  std::uint64_t ok_miss = 0;
  std::uint64_t ok_coalesced = 0;
  std::uint64_t ok_bypass = 0;
  ResultCache::Counters cache;
  std::size_t cache_size = 0;
};

class SolverService {
 public:
  explicit SolverService(ServiceOptions options = {});
  ~SolverService();

  SolverService(const SolverService&) = delete;
  SolverService& operator=(const SolverService&) = delete;

  /// Serves one request start to finish (blocking: a cache miss waits for
  /// its solve). Never throws on bad requests — every failure mode is a
  /// response status. Thread-safe.
  [[nodiscard]] ServiceResponse handle(const ServiceRequest& request);

  /// Wire adapter: parses the frame's trace payload and verb, serves it,
  /// renders the response. Trace/validation failures become kError
  /// responses. Stats and ping verbs are answered inline; a quit verb is
  /// answered `ok` (connection teardown is the pump's job, see serve.hpp).
  [[nodiscard]] WireResponse handle_wire(const WireRequest& request);

  /// Stops admission (subsequent requests answer `draining`), waits for
  /// every in-flight request to finish, then drains the pool. Idempotent;
  /// concurrent callers block until the first drain completed.
  void drain();

  [[nodiscard]] bool draining() const;
  [[nodiscard]] ServiceCounters counters() const;

 private:
  /// One in-flight solve that followers coalesce onto.
  struct Flight {
    std::mutex m;
    std::condition_variable cv;
    bool done = false;
    /// Terminal state of the leader, mirrored to followers.
    WireResponse::Status status = WireResponse::Status::kOk;
    std::string shed_reason;
    std::string error;
    CachedResult result;  ///< Valid when status == kOk.
  };

  struct PipelineGuard;  ///< RAII in-flight counting for drain().

  [[nodiscard]] ServiceResponse serve_admitted(const ServiceRequest& request);
  /// Runs one solve on the pool; fills either `out` (returning true) or
  /// the shed/draining/error fields of `response` (returning false).
  bool run_solve(const ServiceRequest& request, const Instance& bound,
                 Mem capacity, const std::string& solver, SolveResult& out,
                 ServiceResponse& response);
  void count_response(const ServiceResponse& response);

  const ServiceOptions options_;
  SolverPool pool_;
  ResultCache cache_;

  mutable std::mutex flights_mutex_;
  std::map<CacheKey, std::shared_ptr<Flight>> flights_;

  mutable std::mutex state_mutex_;
  std::condition_variable idle_cv_;  ///< Signalled when inflight_ drops.
  std::size_t inflight_ = 0;
  bool draining_ = false;
  bool drained_ = false;  ///< Pool drain completed.
  ServiceCounters counters_;
};

}  // namespace dts
