#include "service/service.hpp"

#include <exception>
#include <sstream>
#include <utility>

#include "core/simulate.hpp"
#include "core/solver.hpp"
#include "model/machine.hpp"
#include "trace/trace_io.hpp"

namespace dts {
namespace {

ServiceResponse error_response(const std::string& id,
                               const std::string& message) {
  ServiceResponse r;
  r.status = WireResponse::Status::kError;
  r.id = id;
  r.error = message;
  return r;
}

ServiceResponse shed_response(const std::string& id,
                              const std::string& reason) {
  ServiceResponse r;
  r.status = WireResponse::Status::kShed;
  r.id = id;
  r.shed_reason = reason;
  return r;
}

ServiceResponse draining_response(const std::string& id) {
  ServiceResponse r;
  r.status = WireResponse::Status::kDraining;
  r.id = id;
  return r;
}

/// Response straight from a solver result (miss and bypass paths).
ServiceResponse cold_response(const std::string& id, const SolveResult& result,
                              WireResponse::CacheOutcome outcome) {
  ServiceResponse r;
  r.id = id;
  r.cache = outcome;
  r.winner = result.winner;
  r.makespan = result.makespan;
  r.evaluations = result.evaluations;
  r.proved_optimal = result.proved_optimal;
  r.lower_bound = result.lower_bound;
  r.order = result.schedule.comm_order();
  r.schedule = result.schedule.times();
  return r;
}

/// Response from a cached canonical order, re-costed onto this request's
/// bound instance (hit and coalesced paths). Bitwise identical to the
/// cold response of an equivalent fresh solve: the insert path verified
/// replay fidelity or stored the schedule verbatim (result_cache.hpp).
ServiceResponse warm_response(const std::string& id, const CachedResult& cached,
                              const CanonicalInstance& canon,
                              const Instance& bound, Mem capacity,
                              WireResponse::CacheOutcome outcome) {
  ServiceResponse r;
  r.id = id;
  r.cache = outcome;
  r.winner = cached.winner;
  r.makespan = cached.makespan;
  r.evaluations = cached.evaluations;
  r.proved_optimal = cached.proved_optimal;
  r.lower_bound = cached.lower_bound;
  r.order = canon.to_request_order(cached.canonical_order);
  if (cached.canonical_schedule) {
    r.schedule.resize(cached.canonical_schedule->size());
    for (TaskId slot = 0; slot < r.schedule.size(); ++slot) {
      r.schedule[canon.request_id(slot)] = (*cached.canonical_schedule)[slot];
    }
  } else {
    r.schedule = simulate_order(bound, r.order, capacity).times();
  }
  return r;
}

/// The cacheable artifact of a fresh solve: the winning comm order in
/// canonical slot space, with a stored-schedule fallback when replaying
/// the order does not reproduce the solver's schedule bit-for-bit.
CachedResult build_cached(const SolveResult& result,
                          const CanonicalInstance& canon,
                          const Instance& bound, Mem capacity) {
  CachedResult c;
  c.winner = result.winner;
  c.makespan = result.makespan;
  c.evaluations = result.evaluations;
  c.proved_optimal = result.proved_optimal;
  c.lower_bound = result.lower_bound;
  const std::vector<TaskId> order = result.schedule.comm_order();
  c.canonical_order = canon.to_canonical_order(order);
  const Schedule replay = simulate_order(bound, order, capacity);
  bool reproduced = replay.size() == result.schedule.size();
  for (TaskId id = 0; reproduced && id < replay.size(); ++id) {
    reproduced = replay[id].comm_start == result.schedule[id].comm_start &&
                 replay[id].comp_start == result.schedule[id].comp_start;
  }
  if (!reproduced) {
    c.canonical_schedule.emplace(result.schedule.size());
    for (TaskId id = 0; id < result.schedule.size(); ++id) {
      (*c.canonical_schedule)[canon.canonical_slot(id)] = result.schedule[id];
    }
  }
  return c;
}

}  // namespace

/// Counts one request's occupancy of the pipeline for drain().
struct SolverService::PipelineGuard {
  SolverService& service;

  explicit PipelineGuard(SolverService& s) : service(s) {}
  ~PipelineGuard() {
    const std::lock_guard<std::mutex> lock(service.state_mutex_);
    --service.inflight_;
    service.idle_cv_.notify_all();
  }

  PipelineGuard(const PipelineGuard&) = delete;
  PipelineGuard& operator=(const PipelineGuard&) = delete;
};

SolverService::SolverService(ServiceOptions options)
    : options_(std::move(options)),
      pool_(SolverPoolOptions{.workers = options_.workers,
                              .queue_capacity = options_.queue_capacity,
                              .policy = SolverPoolOptions::Policy::kFifo}),
      cache_(options_.cache_capacity) {}

SolverService::~SolverService() { drain(); }

ServiceResponse SolverService::handle(const ServiceRequest& request) {
  ServiceResponse response;
  bool admitted = false;
  {
    const std::lock_guard<std::mutex> lock(state_mutex_);
    ++counters_.received;
    if (draining_) {
      response = draining_response(request.id);
    } else if (inflight_ >= options_.max_inflight) {
      response = shed_response(request.id, "admission");
    } else {
      ++inflight_;
      admitted = true;
    }
  }
  if (admitted) {
    const PipelineGuard guard(*this);
    try {
      response = serve_admitted(request);
    } catch (const std::exception& e) {
      response = error_response(request.id, e.what());
    } catch (...) {
      response = error_response(request.id,
                                "request failed with a non-standard exception");
    }
  }
  count_response(response);
  return response;
}

ServiceResponse SolverService::serve_admitted(const ServiceRequest& request) {
  if (request.capacity.has_value() == request.capacity_factor.has_value()) {
    return error_response(
        request.id, "exactly one of capacity / capacity-factor is required");
  }

  // parse -> canonicalize: bind the machine eagerly so binding errors are
  // error responses and every later stage works on costed tasks.
  Instance bound;
  try {
    if (!request.machine.empty()) {
      bound = bind(request.instance, machine_from_name(request.machine));
    } else if (!request.instance.fully_bound()) {
      return error_response(request.id,
                            "trace carries time-less (bytes-only) tasks; "
                            "a machine is required to cost them");
    } else {
      bound = request.instance;
    }
  } catch (const std::exception& e) {
    return error_response(request.id, e.what());
  }

  const Mem capacity = request.capacity
                           ? *request.capacity
                           : *request.capacity_factor * bound.min_capacity();
  const std::string solver =
      request.solver.empty() ? options_.default_solver : request.solver;

  if (request.no_cache) {
    ServiceResponse response;
    response.id = request.id;
    SolveResult result;
    if (!run_solve(request, bound, capacity, solver, result, response)) {
      return response;
    }
    return cold_response(request.id, result,
                         WireResponse::CacheOutcome::kBypass);
  }

  // The fingerprint hashes the *as-submitted* instance (a bytes-only
  // trace fingerprints machine-independently); the machine joins the
  // digest, so one canonical workload has one entry per target machine.
  const CanonicalInstance canon(request.instance);
  const SolveOptions defaults;
  const CacheKey key{
      canon.fingerprint(),
      request_digest(RequestDigestInputs{
          .capacity = capacity,
          .solver = solver,
          .machine = request.machine,
          .seed = request.seed.value_or(defaults.seed),
          .max_iterations = defaults.max_iterations,
          .max_no_improve = defaults.max_no_improve,
          .batch_size = request.batch ? static_cast<std::uint64_t>(
                                            *request.batch)
                                      : ~0ULL})};

  // cache-probe + single-flight registration, atomically with respect to
  // other probes: every request resolves as exactly one of follower
  // (coalesced), hit, or leader (miss — counted by the lookup).
  std::shared_ptr<Flight> flight;
  std::optional<CachedResult> cached;
  bool leader = false;
  {
    const std::lock_guard<std::mutex> lock(flights_mutex_);
    const auto it = flights_.find(key);
    if (it != flights_.end()) {
      flight = it->second;
    } else {
      cached = cache_.lookup(key);
      if (!cached) {
        flight = std::make_shared<Flight>();
        flights_.emplace(key, flight);
        leader = true;
      }
    }
  }

  if (cached) {
    return warm_response(request.id, *cached, canon, bound, capacity,
                         WireResponse::CacheOutcome::kHit);
  }

  if (!leader) {
    cache_.note_coalesced();
    std::unique_lock<std::mutex> fl(flight->m);
    flight->cv.wait(fl, [&] { return flight->done; });
    switch (flight->status) {
      case WireResponse::Status::kOk:
        return warm_response(request.id, flight->result, canon, bound,
                             capacity, WireResponse::CacheOutcome::kCoalesced);
      case WireResponse::Status::kShed:
        return shed_response(request.id, flight->shed_reason);
      case WireResponse::Status::kDraining:
        return draining_response(request.id);
      case WireResponse::Status::kError:
        return error_response(request.id, flight->error);
    }
    return error_response(request.id, "leader vanished");
  }

  // Leader: solve, publish to followers, insert into the cache. The cache
  // insert happens before the flight is retired so a racing probe finds
  // either the flight or the entry — never a gap that duplicates work.
  // Retirement must happen on EVERY exit path — a leader that unwinds
  // without retiring would park its followers forever and leave every
  // future identical request coalescing onto a dead flight.
  const auto retire = [&]() noexcept {
    {
      const std::lock_guard<std::mutex> lock(flights_mutex_);
      flights_.erase(key);
    }
    {
      const std::lock_guard<std::mutex> fl(flight->m);
      flight->done = true;
    }
    flight->cv.notify_all();
  };
  ServiceResponse response;
  response.id = request.id;
  try {
    if (options_.on_solve_start) options_.on_solve_start();
    SolveResult result;
    if (run_solve(request, bound, capacity, solver, result, response)) {
      flight->result = build_cached(result, canon, bound, capacity);
      flight->status = WireResponse::Status::kOk;
      cache_.insert(key, flight->result);
      response = cold_response(request.id, result,
                               WireResponse::CacheOutcome::kMiss);
    } else {
      flight->status = response.status;
      flight->shed_reason = response.shed_reason;
      flight->error = response.error;
    }
  } catch (const std::exception& e) {
    flight->status = WireResponse::Status::kError;
    flight->error = e.what();
    retire();
    throw;  // handle() renders the leader's own error response
  } catch (...) {
    flight->status = WireResponse::Status::kError;
    flight->error = "leader failed with a non-standard exception";
    retire();
    throw;
  }
  retire();
  return response;
}

bool SolverService::run_solve(const ServiceRequest& request,
                              const Instance& bound, Mem capacity,
                              const std::string& solver, SolveResult& out,
                              ServiceResponse& response) {
  JobRequest job;
  job.request.instance = bound;
  job.request.capacity = capacity;
  if (request.batch) job.request.batch_size = *request.batch;
  job.solver = solver;
  job.options.seed = request.seed.value_or(SolveOptions{}.seed);
  job.options.compute_bounds = false;
  job.tag = request.id;

  JobHandle handle;
  switch (pool_.try_submit(std::move(job), handle)) {
    case SubmitStatus::kQueueFull:
      response = shed_response(request.id, "queue-full");
      return false;
    case SubmitStatus::kShuttingDown:
      response = draining_response(request.id);
      return false;
    case SubmitStatus::kAccepted:
      break;
  }
  const JobOutcome& outcome = handle.wait();
  if (outcome.status == JobStatus::kDone && outcome.has_result) {
    out = outcome.result;
    return true;
  }
  response = error_response(
      request.id, outcome.error.empty()
                      ? "solve ended " + std::string(to_string(outcome.status))
                      : outcome.error);
  return false;
}

void SolverService::count_response(const ServiceResponse& response) {
  const std::lock_guard<std::mutex> lock(state_mutex_);
  switch (response.status) {
    case WireResponse::Status::kOk:
      ++counters_.ok;
      switch (response.cache) {
        case WireResponse::CacheOutcome::kHit: ++counters_.ok_hit; break;
        case WireResponse::CacheOutcome::kMiss: ++counters_.ok_miss; break;
        case WireResponse::CacheOutcome::kCoalesced:
          ++counters_.ok_coalesced;
          break;
        case WireResponse::CacheOutcome::kBypass:
          ++counters_.ok_bypass;
          break;
      }
      break;
    case WireResponse::Status::kShed: ++counters_.shed; break;
    case WireResponse::Status::kDraining: ++counters_.draining; break;
    case WireResponse::Status::kError: ++counters_.errors; break;
  }
}

WireResponse SolverService::handle_wire(const WireRequest& request) {
  WireResponse wire;
  wire.id = request.id;
  switch (request.verb) {
    case WireRequest::Verb::kPing:
    case WireRequest::Verb::kQuit:
      wire.status = WireResponse::Status::kOk;
      return wire;
    case WireRequest::Verb::kStats: {
      const ServiceCounters c = counters();
      std::ostringstream lines;
      lines << "requests " << c.received << '\n'
            << "ok " << c.ok << '\n'
            << "shed " << c.shed << '\n'
            << "draining " << c.draining << '\n'
            << "errors " << c.errors << '\n'
            << "hits " << c.cache.hits << '\n'
            << "misses " << c.cache.misses << '\n'
            << "coalesced " << c.cache.coalesced << '\n'
            << "inserts " << c.cache.inserts << '\n'
            << "evictions " << c.cache.evictions << '\n'
            << "cache-size " << c.cache_size;
      std::string line;
      std::istringstream split(lines.str());
      while (std::getline(split, line)) wire.extra.push_back(line);
      wire.status = WireResponse::Status::kOk;
      return wire;
    }
    case WireRequest::Verb::kSolve:
      break;
  }

  ServiceRequest typed;
  typed.id = request.id;
  try {
    std::istringstream trace(request.trace_text);
    typed.instance = read_trace(trace);
  } catch (const std::exception& e) {
    wire.status = WireResponse::Status::kError;
    wire.error = e.what();
    count_response(error_response(request.id, wire.error));
    {
      const std::lock_guard<std::mutex> lock(state_mutex_);
      ++counters_.received;
    }
    return wire;
  }
  typed.solver = request.solver;
  if (request.capacity) typed.capacity = *request.capacity;
  if (request.capacity_factor) typed.capacity_factor = *request.capacity_factor;
  typed.machine = request.machine;
  typed.seed = request.seed;
  if (request.batch) typed.batch = static_cast<std::size_t>(*request.batch);
  typed.no_cache = request.no_cache;

  const ServiceResponse response = handle(typed);
  wire.status = response.status;
  wire.cache = response.cache;
  wire.winner = response.winner;
  wire.makespan = response.makespan;
  wire.evaluations = response.evaluations;
  wire.proved_optimal = response.proved_optimal;
  wire.lower_bound = response.lower_bound;
  if (response.lower_bound > 0.0 && response.makespan != kInfiniteTime) {
    wire.gap = response.proved_optimal
                   ? 0.0
                   : (response.makespan - response.lower_bound) /
                         response.lower_bound;
  }
  wire.order.assign(response.order.begin(), response.order.end());
  wire.schedule.reserve(response.schedule.size());
  for (const TaskTimes& t : response.schedule) {
    wire.schedule.emplace_back(t.comm_start, t.comp_start);
  }
  wire.shed_reason = response.shed_reason;
  wire.error = response.error;
  return wire;
}

void SolverService::drain() {
  {
    std::unique_lock<std::mutex> lock(state_mutex_);
    draining_ = true;
    idle_cv_.wait(lock, [this] { return inflight_ == 0; });
  }
  pool_.shutdown(DrainMode::kDrain);
}

bool SolverService::draining() const {
  const std::lock_guard<std::mutex> lock(state_mutex_);
  return draining_;
}

ServiceCounters SolverService::counters() const {
  ServiceCounters out;
  {
    const std::lock_guard<std::mutex> lock(state_mutex_);
    out = counters_;
  }
  out.cache = cache_.counters();
  out.cache_size = cache_.size();
  return out;
}

}  // namespace dts
