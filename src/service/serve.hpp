#pragma once

/// \file serve.hpp
/// Transport layer for SolverService: a blocking request/response pump
/// over any istream/ostream pair (the `dts serve` stdin/stdout mode and
/// all the tests), plus a local AF_UNIX socket server that runs the same
/// pump per connection.
///
/// Transport failures never take the service down: a malformed frame
/// costs one error response (the protocol reader resyncs to the next
/// `end`), a dead connection costs that connection, and `stop()` /
/// `quit` end things gracefully.

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "service/protocol.hpp"
#include "service/service.hpp"

namespace dts {

struct ServeStats {
  std::uint64_t frames = 0;           ///< Well-formed frames served.
  std::uint64_t protocol_errors = 0;  ///< Malformed frames answered.
  bool saw_quit = false;              ///< Pump ended on a quit verb.
};

/// Serves frames from `in` until EOF or a `quit` frame: parse, dispatch
/// to the service, write the response, flush. Malformed frames are
/// answered with an error response on the same stream. Returns pump
/// statistics.
ServeStats serve_stream(SolverService& service, std::istream& in,
                        std::ostream& out, const ProtocolLimits& limits = {});

/// A local-socket front-end: accepts connections on an AF_UNIX stream
/// socket and runs serve_stream on each, one thread per connection, the
/// count of *live* connections bounded by `max_connections` (excess
/// connections are answered with a shed response and closed; finished
/// connections are reaped by the accept loop, so the bound never counts
/// the dead). `stop()` stops accepting, wakes the accept loop,
/// half-closes every live connection (so a pump blocked on an idle
/// client reads EOF instead of blocking shutdown forever), and joins
/// every connection thread; the destructor calls it.
class SocketServer {
 public:
  struct Options {
    std::size_t max_connections = 64;
    ProtocolLimits limits;
  };

  /// Binds and listens on `path` (an existing socket file is replaced).
  /// Throws std::runtime_error when the socket cannot be created/bound.
  SocketServer(SolverService& service, std::string path, Options options);
  SocketServer(SolverService& service, std::string path);
  ~SocketServer();

  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;

  /// Starts the accept loop (idempotent).
  void start();

  /// Stops accepting, closes the listening socket, joins all threads,
  /// removes the socket file (idempotent).
  void stop();

  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  /// One live connection: the pump thread plus the fd it serves, kept so
  /// stop() can half-close the socket to unblock a pump stuck in read().
  /// `done` flips when the pump returns; the owner joins and closes.
  struct Connection {
    int fd = -1;
    std::atomic<bool> done{false};
    std::thread thread;
  };

  void accept_loop();
  /// Joins and erases finished connections. Caller holds threads_mutex_.
  void reap_finished_locked();

  SolverService& service_;
  const std::string path_;
  const Options options_;
  int listen_fd_ = -1;
  std::atomic<bool> stopping_{false};
  std::thread accept_thread_;
  std::mutex threads_mutex_;
  std::vector<std::unique_ptr<Connection>> connections_;
};

}  // namespace dts
