#pragma once

/// \file result_cache.hpp
/// LRU-bounded cache of solved canonical orders.
///
/// What gets cached is machine-portable: the winning *order* in canonical
/// slot space (plus the winner's name and the solve's evaluation count),
/// not the timed schedule of any particular request. A warm request
/// re-derives its schedule by simulating that order on its own bound
/// instance — identical task values mean the simulation reproduces the
/// original solver's schedule bit-for-bit (semi-active permutation
/// schedules are a pure function of order x instance x capacity). For
/// the rare solver whose schedule is *not* reproducible by replaying its
/// comm order (corrections-style idle insertion), the insert path detects
/// the mismatch and stores the canonical-space schedule verbatim, so warm
/// responses remain bitwise identical to cold ones unconditionally.
///
/// Keys pair the instance fingerprint with a digest of every
/// result-affecting request knob (capacity, solver, machine, seed,
/// iteration limits, batch size): two requests share an entry iff a fresh
/// solve would provably produce the same result.

#include <cstdint>
#include <list>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "core/schedule.hpp"
#include "core/types.hpp"
#include "service/fingerprint.hpp"

namespace dts {

/// Identity of a cache entry: which canonical instance, solved how.
struct CacheKey {
  Fingerprint fingerprint;
  std::uint64_t request_digest = 0;

  [[nodiscard]] bool operator==(const CacheKey&) const = default;
  [[nodiscard]] bool operator<(const CacheKey& o) const noexcept {
    if (!(fingerprint == o.fingerprint)) return fingerprint < o.fingerprint;
    return request_digest < o.request_digest;
  }
};

/// Inputs that join the fingerprint in the cache key. Everything here can
/// change the solved order, so everything here splits the cache. The MILP
/// backend's result-affecting knobs are covered: its grid resolution
/// rides in the solver string ("milp:8" != "milp"), and its node budget
/// is SolveOptions::max_iterations — a budget-stopped search's incumbent
/// depends on both, so warm hits stay bitwise-correct across them.
struct RequestDigestInputs {
  Mem capacity = 0.0;
  std::string solver;
  std::string machine;  ///< Empty when the request was already time-bound.
  std::uint64_t seed = 0;
  std::uint64_t max_iterations = 0;
  std::uint64_t max_no_improve = 0;
  /// Batch size, or ~0ULL when the request is unbatched.
  std::uint64_t batch_size = ~0ULL;
};

[[nodiscard]] std::uint64_t request_digest(const RequestDigestInputs& in);

/// One cached solve, in canonical slot space.
struct CachedResult {
  std::vector<TaskId> canonical_order;  ///< Winner's comm order, slot space.
  std::string winner;                   ///< Registry name of the winner.
  Time makespan = 0.0;
  std::uint64_t evaluations = 0;
  /// Optimality certificate of the original solve — makespans (and the
  /// bounds behind them) are canonicalization-invariant, so a warm hit
  /// replays them verbatim.
  bool proved_optimal = false;
  Time lower_bound = 0.0;
  /// Only set when replaying canonical_order does not reproduce the
  /// solver's schedule (non-semi-active winners): start times indexed by
  /// canonical slot, translated back per request at hit time.
  std::optional<std::vector<TaskTimes>> canonical_schedule;
};

/// Thread-safe LRU map CacheKey -> CachedResult, bounded by entry count.
/// All counters are cumulative since construction; `coalesced` is owned
/// by the service's single-flight layer but lives here so one stats call
/// reports the full hits + misses + coalesced reconciliation.
class ResultCache {
 public:
  struct Counters {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t inserts = 0;
    std::uint64_t evictions = 0;
    std::uint64_t coalesced = 0;
  };

  /// `capacity` = max resident entries; 0 disables caching (every lookup
  /// misses, inserts are dropped) — useful for A/B benching.
  explicit ResultCache(std::size_t capacity) : capacity_(capacity) {}

  /// Probe; counts a hit or a miss and refreshes LRU recency on hit.
  [[nodiscard]] std::optional<CachedResult> lookup(const CacheKey& key);

  /// Inserts (or refreshes) an entry, evicting the least-recently-used
  /// entry when full.
  void insert(const CacheKey& key, CachedResult result);

  /// Single-flight followers report here (see class comment).
  void note_coalesced();

  [[nodiscard]] Counters counters() const;
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

 private:
  struct Entry {
    CacheKey key;
    CachedResult result;
  };

  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::list<Entry> lru_;  ///< Front = most recently used.
  std::map<CacheKey, std::list<Entry>::iterator> index_;
  Counters counters_;
};

}  // namespace dts
