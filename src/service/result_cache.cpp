#include "service/result_cache.hpp"

#include <bit>

namespace dts {
namespace {

constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t chain(std::uint64_t state, std::uint64_t v) noexcept {
  return mix64(state ^ mix64(v + 0x2545f4914f6cdd1dULL));
}

std::uint64_t chain_string(std::uint64_t state, const std::string& s) noexcept {
  state = chain(state, s.size());
  for (unsigned char c : s) state = chain(state, c);
  return state;
}

}  // namespace

std::uint64_t request_digest(const RequestDigestInputs& in) {
  double capacity = in.capacity;
  if (capacity == 0.0) capacity = 0.0;  // folds -0.0
  std::uint64_t state = mix64(0x6474732d72640003ULL);  // "dts-rd"
  state = chain(state, std::bit_cast<std::uint64_t>(capacity));
  state = chain_string(state, in.solver);
  state = chain_string(state, in.machine);
  state = chain(state, in.seed);
  state = chain(state, in.max_iterations);
  state = chain(state, in.max_no_improve);
  state = chain(state, in.batch_size);
  return mix64(state);
}

std::optional<CachedResult> ResultCache::lookup(const CacheKey& key) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++counters_.misses;
    return std::nullopt;
  }
  ++counters_.hits;
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->result;
}

void ResultCache::insert(const CacheKey& key, CachedResult result) {
  if (capacity_ == 0) return;
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->result = std::move(result);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(Entry{key, std::move(result)});
  index_.emplace(key, lru_.begin());
  ++counters_.inserts;
  if (index_.size() > capacity_) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
    ++counters_.evictions;
  }
}

void ResultCache::note_coalesced() {
  const std::lock_guard<std::mutex> lock(mutex_);
  ++counters_.coalesced;
}

ResultCache::Counters ResultCache::counters() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return counters_;
}

std::size_t ResultCache::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return index_.size();
}

}  // namespace dts
