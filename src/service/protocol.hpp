#pragma once

/// \file protocol.hpp
/// The `dts serve` wire format: a line-oriented, length-delimited request/
/// response protocol simple enough to drive from a shell script and strict
/// enough to fuzz (tests/protocol_fuzz_test.cpp).
///
/// Request frame (client -> server):
///
///     dts1 solve <id>
///     solver <name>                 (optional; default from the service)
///     capacity <bytes>              (or capacity-factor <f> of min_capacity;
///                                    exactly one required for solve)
///     machine <name>                (optional; binds bytes-only traces)
///     seed <n>                      (optional)
///     batch <n>                     (optional)
///     no-cache                      (optional; bypass the result cache)
///     trace <nbytes>
///     <exactly nbytes of dts-trace text>
///     end
///
/// `<id>` is an opaque client token echoed in the response (no whitespace).
/// Besides `solve`, the verbs are `stats <id>` (counter snapshot),
/// `ping <id>` and `quit <id>`, each terminated by `end` with no headers.
///
/// Response frame (server -> client):
///
///     dts1 response <id> ok
///     cache hit|miss|coalesced|bypass
///     winner <name>
///     makespan <seconds, %.17g>
///     evaluations <n>
///     proved-optimal 0|1
///     lower-bound <seconds, %.17g>
///     gap <relative, %.17g>         (only when a finite gap exists: a
///                                    positive lower bound and a finite
///                                    makespan; 0 when proved optimal)
///     order <n>
///     <n task ids, space-separated, chunked over short lines>
///     schedule <n>
///     <n lines: "<comm_start> <comp_start>", %.17g>
///     end
///
/// Both the order block and the schedule block are length-delimited and
/// written in short chunks, so a response of any instance size stays
/// within the reader's per-line limit.
///
/// or `dts1 response <id> shed` + `reason queue-full|admission` + `end`
/// (back-pressure: retry later), `dts1 response <id> draining` + `end`
/// (the service is shutting down), or `dts1 response <id> error` +
/// `message <one line, truncated by the writer to stay under the line
/// limit>` + `end`. Stats responses carry `requests`, `hits`, `misses`,
/// `coalesced`, `shed`, `errors`, `inserts`, `evictions`, `cache-size`
/// header lines instead.
///
/// Parsing is resilient by construction: any malformed frame raises
/// ProtocolError *after* the reader has resynced to the next `end` line
/// (or EOF), so one bad request costs one error response, never a
/// desynced or hung connection. Hard limits (line length, header count,
/// trace payload size) bound memory against hostile input.

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

namespace dts {

/// Malformed frame. The reader has already consumed input up to and
/// including the frame's `end` line (or EOF) when this is thrown.
class ProtocolError : public std::runtime_error {
 public:
  explicit ProtocolError(const std::string& message)
      : std::runtime_error(message) {}
};

/// Bounds on hostile input. Exceeding any of them is a ProtocolError.
struct ProtocolLimits {
  std::size_t max_line_bytes = 64 * 1024;
  std::size_t max_header_lines = 64;
  std::size_t max_trace_bytes = 16 * 1024 * 1024;
};

/// A parsed request frame, still in wire terms (the trace payload stays
/// text; the service parses it so trace errors map to error responses).
struct WireRequest {
  enum class Verb { kSolve, kStats, kPing, kQuit };

  Verb verb = Verb::kSolve;
  std::string id;
  std::string solver;              ///< Empty = service default.
  std::optional<double> capacity;  ///< Absolute bytes.
  std::optional<double> capacity_factor;  ///< Multiple of min_capacity.
  std::string machine;             ///< Empty = none.
  std::optional<std::uint64_t> seed;
  std::optional<std::uint64_t> batch;
  bool no_cache = false;
  std::string trace_text;          ///< Raw dts-trace payload.
};

/// Reads one frame. Returns std::nullopt on clean EOF before any frame
/// content; throws ProtocolError for malformed frames (after resyncing —
/// see the class comment) and for streams that die mid-frame.
[[nodiscard]] std::optional<WireRequest> read_request(
    std::istream& in, const ProtocolLimits& limits = {});

/// A response frame in wire terms.
struct WireResponse {
  enum class Status { kOk, kShed, kDraining, kError };
  enum class CacheOutcome { kHit, kMiss, kCoalesced, kBypass };

  Status status = Status::kOk;
  std::string id;

  // kOk (solve):
  CacheOutcome cache = CacheOutcome::kMiss;
  std::string winner;
  double makespan = 0.0;
  std::uint64_t evaluations = 0;
  /// The solver proved the schedule optimal (SolveResult::proved_optimal).
  bool proved_optimal = false;
  /// Strongest solver-proven makespan lower bound; 0 when none.
  double lower_bound = 0.0;
  /// Relative optimality gap, present only when finite on the wire
  /// (parse_double rejects non-finite values by design).
  std::optional<double> gap;
  std::vector<std::uint32_t> order;
  /// Start-time pairs (comm, comp) indexed by task id; empty for
  /// non-solve responses.
  std::vector<std::pair<double, double>> schedule;

  // kOk (stats / ping): preformatted "key value" lines.
  std::vector<std::string> extra;

  // kShed:
  std::string shed_reason;  ///< "queue-full" or "admission".

  // kError:
  std::string error;  ///< One line, sanitized and length-capped by the writer.
};

/// Serializes one response frame (terminated by `end`, no flush).
void write_response(std::ostream& out, const WireResponse& response);

/// Client-side reader for tests and the scripted CI session: parses one
/// response frame. Returns std::nullopt on clean EOF; throws
/// ProtocolError on malformed frames.
[[nodiscard]] std::optional<WireResponse> read_response(
    std::istream& in, const ProtocolLimits& limits = {});

[[nodiscard]] std::string to_string(WireResponse::Status status);
[[nodiscard]] std::string to_string(WireResponse::CacheOutcome outcome);

}  // namespace dts
