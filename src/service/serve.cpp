#include "service/serve.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstring>
#include <istream>
#include <memory>
#include <ostream>
#include <stdexcept>
#include <streambuf>
#include <utility>

namespace dts {

ServeStats serve_stream(SolverService& service, std::istream& in,
                        std::ostream& out, const ProtocolLimits& limits) {
  ServeStats stats;
  for (;;) {
    WireRequest request;
    try {
      std::optional<WireRequest> frame = read_request(in, limits);
      if (!frame) break;  // clean EOF
      request = std::move(*frame);
    } catch (const ProtocolError& e) {
      ++stats.protocol_errors;
      WireResponse error;
      error.status = WireResponse::Status::kError;
      error.id = "-";  // the frame never got far enough to carry one
      error.error = e.what();
      write_response(out, error);
      out.flush();
      if (!in.good() || !out.good()) break;
      continue;
    }
    ++stats.frames;
    write_response(out, service.handle_wire(request));
    out.flush();
    if (request.verb == WireRequest::Verb::kQuit) {
      stats.saw_quit = true;
      break;
    }
    if (!out.good()) break;  // client went away; stop serving the corpse
  }
  return stats;
}

namespace {

/// A std::streambuf over a connected socket fd — buffered both ways, no
/// ownership of the fd. Lets the per-connection pump reuse serve_stream
/// verbatim over iostreams.
class FdStreamBuf final : public std::streambuf {
 public:
  explicit FdStreamBuf(int fd) : fd_(fd) {
    setg(in_.data(), in_.data(), in_.data());
    setp(out_.data(), out_.data() + out_.size());
  }

 protected:
  int_type underflow() override {
    if (gptr() < egptr()) return traits_type::to_int_type(*gptr());
    ssize_t n;
    do {
      n = ::read(fd_, in_.data(), in_.size());
    } while (n < 0 && errno == EINTR);  // a signal is not a disconnect
    if (n <= 0) return traits_type::eof();
    setg(in_.data(), in_.data(), in_.data() + n);
    return traits_type::to_int_type(*gptr());
  }

  int_type overflow(int_type ch) override {
    if (flush_buffer() < 0) return traits_type::eof();
    if (!traits_type::eq_int_type(ch, traits_type::eof())) {
      *pptr() = traits_type::to_char_type(ch);
      pbump(1);
    }
    return traits_type::not_eof(ch);
  }

  int sync() override { return flush_buffer() < 0 ? -1 : 0; }

 private:
  int flush_buffer() {
    const char* p = pbase();
    while (p < pptr()) {
      const ssize_t n = ::write(fd_, p, static_cast<std::size_t>(pptr() - p));
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) return -1;
      p += n;
    }
    setp(out_.data(), out_.data() + out_.size());
    return 0;
  }

  int fd_;
  std::array<char, 8192> in_{};
  std::array<char, 8192> out_{};
};

}  // namespace

SocketServer::SocketServer(SolverService& service, std::string path,
                           Options options)
    : service_(service), path_(std::move(path)), options_(options) {
  if (path_.size() >= sizeof(sockaddr_un{}.sun_path)) {
    throw std::runtime_error("SocketServer: socket path too long: " + path_);
  }
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw std::runtime_error(std::string("SocketServer: socket(): ") +
                             std::strerror(errno));
  }
  ::unlink(path_.c_str());
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path_.c_str(), sizeof(addr.sun_path) - 1);
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) < 0 ||
      ::listen(listen_fd_, 16) < 0) {
    const std::string detail = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("SocketServer: bind/listen on " + path_ + ": " +
                             detail);
  }
}

SocketServer::SocketServer(SolverService& service, std::string path)
    : SocketServer(service, std::move(path), Options()) {}

SocketServer::~SocketServer() { stop(); }

void SocketServer::start() {
  if (accept_thread_.joinable() || listen_fd_ < 0) return;
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void SocketServer::reap_finished_locked() {
  auto it = connections_.begin();
  while (it != connections_.end()) {
    if ((*it)->done.load(std::memory_order_acquire)) {
      (*it)->thread.join();
      ::close((*it)->fd);  // owner closes, so the fd stays valid for stop()
      it = connections_.erase(it);
    } else {
      ++it;
    }
  }
}

void SocketServer::accept_loop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    {
      const std::lock_guard<std::mutex> lock(threads_mutex_);
      reap_finished_locked();
    }
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 100);  // wakes to observe stop()
    if (ready <= 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    const std::lock_guard<std::mutex> lock(threads_mutex_);
    reap_finished_locked();
    if (connections_.size() >= options_.max_connections) {
      // Over the live-connection bound: shed explicitly rather than
      // letting the client block on an accept queue that will never
      // progress.
      FdStreamBuf buf(fd);
      std::ostream out(&buf);
      WireResponse shed;
      shed.status = WireResponse::Status::kShed;
      shed.id = "-";
      shed.shed_reason = "admission";
      write_response(out, shed);
      out.flush();
      ::close(fd);
      continue;
    }
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    Connection* raw = conn.get();
    // The thread is created while holding threads_mutex_, so stop() never
    // sees a registered connection with an unjoinable thread.
    raw->thread = std::thread([this, raw] {
      FdStreamBuf buf(raw->fd);
      std::istream in(&buf);
      std::ostream out(&buf);
      serve_stream(service_, in, out, options_.limits);
      // Half-close and completion flag in ONE threads_mutex_ section: a
      // client that observed EOF knows the next reap (same mutex) will
      // see `done` and free this slot — a just-finished connection can
      // never linger and shed its successor. The fd itself is closed by
      // whoever joins this thread (reap or stop), which keeps stop()'s
      // shutdown() call safe from fd reuse.
      const std::lock_guard<std::mutex> finish_lock(threads_mutex_);
      ::shutdown(raw->fd, SHUT_RDWR);
      raw->done.store(true, std::memory_order_release);
    });
    connections_.push_back(std::move(conn));
  }
}

void SocketServer::stop() {
  stopping_.store(true, std::memory_order_relaxed);
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::unique_ptr<Connection>> connections;
  {
    const std::lock_guard<std::mutex> lock(threads_mutex_);
    connections.swap(connections_);
  }
  // Half-close every connection first: a pump blocked in read() on an
  // idle client wakes with EOF instead of keeping stop() hostage until
  // the client deigns to disconnect.
  for (const auto& c : connections) ::shutdown(c->fd, SHUT_RDWR);
  for (const auto& c : connections) {
    c->thread.join();
    ::close(c->fd);
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    ::unlink(path_.c_str());
  }
}

}  // namespace dts
