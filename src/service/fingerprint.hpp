#pragma once

/// \file fingerprint.hpp
/// Canonical-instance fingerprints — the identity that makes solved
/// orders shareable between requests.
///
/// Problem DT is invariant under task *relabeling*: permuting the task
/// list or renaming tasks changes neither the feasible schedules nor the
/// optimal makespan. The service therefore keys its result cache on a
/// canonical form of the instance — the multiset of
/// (channel, comm, comp, mem, comm_bytes) tuples, independent of
/// submission order and of task names — so a million users submitting the
/// same HF/CCSD shape in a million different task orders all land on one
/// cache entry and pay one solve.
///
/// Two pieces:
///  * Fingerprint — a 128-bit content hash of the canonical task multiset
///    (plus the channel structure implied by the tasks). Equal instances
///    up to permutation/relabeling hash equal; byte-level differences in
///    any duration, footprint, byte annotation or channel produce a
///    different fingerprint (pinned by tests/fingerprint_test.cpp over a
///    seeded corpus).
///  * CanonicalInstance — the fingerprint plus the permutation that maps
///    canonical task slots back to this request's task ids. A cached
///    order lives in canonical slot space; `to_request_order` translates
///    it into the submitter's ids, and `to_canonical_order` translates a
///    freshly solved order into slot space for insertion.
///
/// The fingerprint deliberately hashes the *as-submitted* costing: a
/// bytes-only (time-less) trace fingerprints identically regardless of
/// the machine it will be bound to — machine identity joins the cache key
/// separately (see CacheKey in result_cache.hpp), and the cached order is
/// re-costed per machine via bind() at response time.

#include <cstdint>
#include <string>
#include <vector>

#include "core/instance.hpp"

namespace dts {

/// 128-bit content hash. Two independently seeded 64-bit mixing lanes:
/// collisions across realistic corpora are implausible (~2^-64 per pair
/// even for adversarial single-field perturbations).
struct Fingerprint {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  [[nodiscard]] bool operator==(const Fingerprint&) const = default;
  [[nodiscard]] bool operator<(const Fingerprint& o) const noexcept {
    return hi != o.hi ? hi < o.hi : lo < o.lo;
  }

  /// 32 lowercase hex digits (protocol/stats display).
  [[nodiscard]] std::string to_hex() const;
};

/// The canonical view of one request's instance: its fingerprint and the
/// slot <-> task-id mapping. Canonical slot k is the k-th task under the
/// canonical ordering (sorted by channel, comm, comp, mem, comm_bytes;
/// ties between indistinguishable tasks resolved by submission position,
/// which never affects the fingerprint — indistinguishable tasks are
/// interchangeable in any schedule).
class CanonicalInstance {
 public:
  CanonicalInstance() = default;

  /// Canonicalizes `inst`. O(n log n).
  explicit CanonicalInstance(const Instance& inst);

  [[nodiscard]] const Fingerprint& fingerprint() const noexcept {
    return fingerprint_;
  }
  [[nodiscard]] std::size_t size() const noexcept {
    return canonical_to_request_.size();
  }

  /// The request task id occupying canonical slot `slot`.
  [[nodiscard]] TaskId request_id(TaskId slot) const {
    return canonical_to_request_.at(slot);
  }

  /// The canonical slot of request task `id`.
  [[nodiscard]] TaskId canonical_slot(TaskId id) const {
    return request_to_canonical_.at(id);
  }

  /// Translates an order over canonical slots into this request's ids.
  /// Throws std::invalid_argument when `slots` is not a permutation of
  /// this instance's slot range (a corrupt or foreign cache entry).
  [[nodiscard]] std::vector<TaskId> to_request_order(
      const std::vector<TaskId>& slots) const;

  /// Translates an order over this request's ids into canonical slots.
  [[nodiscard]] std::vector<TaskId> to_canonical_order(
      const std::vector<TaskId>& ids) const;

 private:
  Fingerprint fingerprint_;
  std::vector<TaskId> canonical_to_request_;  ///< slot -> request id
  std::vector<TaskId> request_to_canonical_;  ///< request id -> slot
};

/// Fingerprint without the mapping (corpus scans, quick identity checks).
[[nodiscard]] Fingerprint fingerprint_of(const Instance& inst);

}  // namespace dts
