#include "service/fingerprint.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <numeric>
#include <stdexcept>
#include <tuple>

namespace dts {
namespace {

/// Bit pattern of a double with -0.0 folded onto +0.0 so that two
/// instances differing only in the sign of a zero (which cannot affect
/// any schedule) fingerprint identically. NaNs cannot reach here —
/// Instance construction rejects non-finite fields.
std::uint64_t double_bits(double v) noexcept {
  if (v == 0.0) v = 0.0;  // folds -0.0
  return std::bit_cast<std::uint64_t>(v);
}

/// SplitMix64 finalizer — the same mixer the repo's Rng builds on.
constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// One 64-bit lane of the multiset hash. Each task contributes a value
/// derived from its canonical tuple; lanes differ by seed so the two
/// halves of the 128-bit fingerprint are independent. Tasks are combined
/// in canonical (sorted) order with a position-sensitive chain, which is
/// permutation-invariant because the order itself is canonical.
class HashLane {
 public:
  explicit HashLane(std::uint64_t seed) : state_(mix64(seed)) {}

  void absorb(std::uint64_t v) noexcept {
    state_ = mix64(state_ ^ mix64(v + 0x2545f4914f6cdd1dULL));
  }

  [[nodiscard]] std::uint64_t digest() const noexcept { return mix64(state_); }

 private:
  std::uint64_t state_;
};

/// The canonical value tuple of a task: everything schedule-relevant,
/// nothing label-like (id, name excluded).
struct TaskKey {
  ChannelId channel;
  std::uint64_t comm;
  std::uint64_t comp;
  std::uint64_t mem;
  std::uint64_t bytes;

  explicit TaskKey(const Task& t)
      : channel(t.channel),
        comm(double_bits(t.comm)),
        comp(double_bits(t.comp)),
        mem(double_bits(t.mem)),
        bytes(double_bits(t.comm_bytes)) {}

  [[nodiscard]] auto tie() const noexcept {
    return std::tie(channel, comm, comp, mem, bytes);
  }
  [[nodiscard]] bool operator<(const TaskKey& o) const noexcept {
    return tie() < o.tie();
  }
};

Fingerprint hash_sorted_keys(const std::vector<TaskKey>& keys) {
  HashLane hi(0x6474732d68690001ULL);  // "dts-hi"
  HashLane lo(0x6474732d6c6f0002ULL);  // "dts-lo"
  hi.absorb(keys.size());
  lo.absorb(keys.size());
  for (const TaskKey& k : keys) {
    for (std::uint64_t v : std::array<std::uint64_t, 5>{
             static_cast<std::uint64_t>(k.channel), k.comm, k.comp, k.mem,
             k.bytes}) {
      hi.absorb(v);
      lo.absorb(v);
    }
  }
  return Fingerprint{hi.digest(), lo.digest()};
}

}  // namespace

std::string Fingerprint::to_hex() const {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out(32, '0');
  for (int i = 0; i < 16; ++i) {
    out[15 - i] = kDigits[(hi >> (4 * i)) & 0xf];
    out[31 - i] = kDigits[(lo >> (4 * i)) & 0xf];
  }
  return out;
}

CanonicalInstance::CanonicalInstance(const Instance& inst) {
  const std::size_t n = inst.size();
  std::vector<TaskKey> keys;
  keys.reserve(n);
  for (const Task& t : inst.tasks()) keys.emplace_back(t);

  // Sort task indices by value tuple; ties (indistinguishable tasks)
  // break by submission position, so the mapping is deterministic for a
  // given request while the fingerprint — computed over the sorted keys
  // alone — stays permutation-invariant.
  canonical_to_request_.resize(n);
  std::iota(canonical_to_request_.begin(), canonical_to_request_.end(),
            TaskId{0});
  std::sort(canonical_to_request_.begin(), canonical_to_request_.end(),
            [&keys](TaskId a, TaskId b) {
              if (keys[a] < keys[b]) return true;
              if (keys[b] < keys[a]) return false;
              return a < b;
            });

  request_to_canonical_.resize(n);
  for (TaskId slot = 0; slot < n; ++slot) {
    request_to_canonical_[canonical_to_request_[slot]] = slot;
  }

  std::sort(keys.begin(), keys.end());
  fingerprint_ = hash_sorted_keys(keys);
}

std::vector<TaskId> CanonicalInstance::to_request_order(
    const std::vector<TaskId>& slots) const {
  const std::size_t n = canonical_to_request_.size();
  if (slots.size() != n) {
    throw std::invalid_argument(
        "CanonicalInstance: order length does not match instance");
  }
  std::vector<bool> seen(n, false);
  std::vector<TaskId> out;
  out.reserve(n);
  for (TaskId slot : slots) {
    if (slot >= n || seen[slot]) {
      throw std::invalid_argument(
          "CanonicalInstance: order is not a permutation of slots");
    }
    seen[slot] = true;
    out.push_back(canonical_to_request_[slot]);
  }
  return out;
}

std::vector<TaskId> CanonicalInstance::to_canonical_order(
    const std::vector<TaskId>& ids) const {
  const std::size_t n = request_to_canonical_.size();
  if (ids.size() != n) {
    throw std::invalid_argument(
        "CanonicalInstance: order length does not match instance");
  }
  std::vector<bool> seen(n, false);
  std::vector<TaskId> out;
  out.reserve(n);
  for (TaskId id : ids) {
    if (id >= n || seen[id]) {
      throw std::invalid_argument(
          "CanonicalInstance: order is not a permutation of task ids");
    }
    seen[id] = true;
    out.push_back(request_to_canonical_[id]);
  }
  return out;
}

Fingerprint fingerprint_of(const Instance& inst) {
  std::vector<TaskKey> keys;
  keys.reserve(inst.size());
  for (const Task& t : inst.tasks()) keys.emplace_back(t);
  std::sort(keys.begin(), keys.end());
  return hash_sorted_keys(keys);
}

}  // namespace dts
