#include "service/protocol.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <istream>
#include <ostream>

namespace dts {
namespace {

/// Reads one line bounded by `max_bytes`. Returns false on EOF with no
/// characters read. An overlong line drains to its newline (bounded
/// memory against hostile input) and throws.
bool read_line(std::istream& in, std::size_t max_bytes, std::string& out) {
  out.clear();
  int c = in.get();
  if (c == std::char_traits<char>::eof()) return false;
  while (c != std::char_traits<char>::eof() && c != '\n') {
    if (out.size() >= max_bytes) {
      while (c != std::char_traits<char>::eof() && c != '\n') c = in.get();
      throw ProtocolError("line exceeds " + std::to_string(max_bytes) +
                          " bytes");
    }
    out.push_back(static_cast<char>(c));
    c = in.get();
  }
  if (!out.empty() && out.back() == '\r') out.pop_back();
  return true;
}

/// Splits on single spaces; empty tokens (doubled spaces, leading or
/// trailing space) are malformed — the format is machine-generated, so
/// strictness costs nothing and keeps the fuzz surface small.
std::vector<std::string> split_tokens(const std::string& line) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= line.size()) {
    const std::size_t space = line.find(' ', start);
    const std::size_t end = space == std::string::npos ? line.size() : space;
    if (end == start) throw ProtocolError("empty token in: " + line);
    out.push_back(line.substr(start, end - start));
    if (space == std::string::npos) break;
    start = space + 1;
  }
  return out;
}

double parse_double(const std::string& token, const char* what) {
  double value = 0.0;
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), value);
  if (ec != std::errc{} || ptr != token.data() + token.size() ||
      !std::isfinite(value)) {
    throw ProtocolError(std::string(what) + ": bad number '" + token + "'");
  }
  return value;
}

std::uint64_t parse_u64(const std::string& token, const char* what) {
  std::uint64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), value);
  if (ec != std::errc{} || ptr != token.data() + token.size()) {
    throw ProtocolError(std::string(what) + ": bad count '" + token + "'");
  }
  return value;
}

std::string format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

/// Consumes input until an `end` line or EOF so the next frame starts
/// clean. Line contents are discarded unbuffered (hostile lines never
/// accumulate).
void resync(std::istream& in) {
  std::string line;
  int c = in.get();
  while (c != std::char_traits<char>::eof()) {
    if (c == '\n') {
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line == "end") return;
      line.clear();
    } else if (line.size() < 8) {
      line.push_back(static_cast<char>(c));
    } else {
      line.push_back('#');  // poisons the comparison; size stays bounded
      line.erase(4, line.size() - 8);
    }
    c = in.get();
  }
}

/// Parses from the frame-header line through the `end` line. Throws
/// mid-frame on malformed content — the caller resyncs. Structural
/// checks that need the whole frame live in parse_request_frame so their
/// errors are raised with the frame already consumed (resyncing again
/// would eat the next frame).
WireRequest parse_request_headers(std::istream& in,
                                  const ProtocolLimits& limits,
                                  const std::string& first_line) {
  const std::vector<std::string> head = split_tokens(first_line);
  if (head.size() != 3 || head[0] != "dts1") {
    throw ProtocolError("bad frame header: " + first_line);
  }
  WireRequest req;
  if (head[1] == "solve") {
    req.verb = WireRequest::Verb::kSolve;
  } else if (head[1] == "stats") {
    req.verb = WireRequest::Verb::kStats;
  } else if (head[1] == "ping") {
    req.verb = WireRequest::Verb::kPing;
  } else if (head[1] == "quit") {
    req.verb = WireRequest::Verb::kQuit;
  } else {
    throw ProtocolError("unknown verb: " + head[1]);
  }
  req.id = head[2];

  bool have_trace = false;
  std::string line;
  for (std::size_t n_headers = 0;; ++n_headers) {
    if (n_headers > limits.max_header_lines) {
      throw ProtocolError("more than " +
                          std::to_string(limits.max_header_lines) +
                          " header lines");
    }
    if (!read_line(in, limits.max_line_bytes, line)) {
      throw ProtocolError("stream ended mid-frame (missing 'end')");
    }
    if (line == "end") break;
    const std::vector<std::string> tokens = split_tokens(line);
    const std::string& key = tokens[0];
    if (req.verb != WireRequest::Verb::kSolve) {
      throw ProtocolError("unexpected header for '" + head[1] + "': " + line);
    }
    if (key == "solver" && tokens.size() == 2) {
      req.solver = tokens[1];
    } else if (key == "capacity" && tokens.size() == 2) {
      req.capacity = parse_double(tokens[1], "capacity");
    } else if (key == "capacity-factor" && tokens.size() == 2) {
      req.capacity_factor = parse_double(tokens[1], "capacity-factor");
    } else if (key == "machine" && tokens.size() == 2) {
      req.machine = tokens[1];
    } else if (key == "seed" && tokens.size() == 2) {
      req.seed = parse_u64(tokens[1], "seed");
    } else if (key == "batch" && tokens.size() == 2) {
      req.batch = parse_u64(tokens[1], "batch");
    } else if (key == "no-cache" && tokens.size() == 1) {
      req.no_cache = true;
    } else if (key == "trace" && tokens.size() == 2) {
      if (have_trace) throw ProtocolError("duplicate trace payload");
      const std::uint64_t n_bytes = parse_u64(tokens[1], "trace");
      if (n_bytes > limits.max_trace_bytes) {
        throw ProtocolError("trace payload of " + tokens[1] +
                            " bytes exceeds limit of " +
                            std::to_string(limits.max_trace_bytes));
      }
      req.trace_text.resize(static_cast<std::size_t>(n_bytes));
      in.read(req.trace_text.data(),
              static_cast<std::streamsize>(req.trace_text.size()));
      if (static_cast<std::uint64_t>(in.gcount()) != n_bytes) {
        throw ProtocolError("stream ended inside trace payload");
      }
      have_trace = true;
    } else {
      throw ProtocolError("bad header line: " + line);
    }
  }
  return req;
}

WireRequest parse_request_frame(std::istream& in, const ProtocolLimits& limits,
                                const std::string& first_line) {
  WireRequest req;
  try {
    req = parse_request_headers(in, limits, first_line);
  } catch (const ProtocolError&) {
    resync(in);  // mid-frame failure: skip to the next `end`
    throw;
  }
  // From here the frame is fully consumed (its `end` included): whole-
  // frame validation must not resync or it would eat the next frame.
  if (req.verb == WireRequest::Verb::kSolve) {
    if (req.trace_text.empty()) {
      throw ProtocolError("solve frame without trace payload");
    }
    if (req.capacity.has_value() == req.capacity_factor.has_value()) {
      throw ProtocolError(
          "solve frame needs exactly one of capacity / capacity-factor");
    }
  }
  return req;
}

}  // namespace

std::optional<WireRequest> read_request(std::istream& in,
                                        const ProtocolLimits& limits) {
  std::string line;
  for (;;) {  // skip blank lines between frames
    try {
      if (!read_line(in, limits.max_line_bytes, line)) return std::nullopt;
    } catch (const ProtocolError&) {
      resync(in);
      throw;
    }
    if (!line.empty()) break;
  }
  return parse_request_frame(in, limits, line);
}

std::string to_string(WireResponse::Status status) {
  switch (status) {
    case WireResponse::Status::kOk: return "ok";
    case WireResponse::Status::kShed: return "shed";
    case WireResponse::Status::kDraining: return "draining";
    case WireResponse::Status::kError: return "error";
  }
  return "error";
}

std::string to_string(WireResponse::CacheOutcome outcome) {
  switch (outcome) {
    case WireResponse::CacheOutcome::kHit: return "hit";
    case WireResponse::CacheOutcome::kMiss: return "miss";
    case WireResponse::CacheOutcome::kCoalesced: return "coalesced";
    case WireResponse::CacheOutcome::kBypass: return "bypass";
  }
  return "miss";
}

namespace {

/// Flush threshold for chunked blocks: far below ProtocolLimits'
/// smallest sensible max_line_bytes, so a written response always
/// round-trips through read_response regardless of instance size.
constexpr std::size_t kChunkBytes = 4000;

/// Error messages can echo (bounded) hostile input; cap what goes on the
/// wire so a `message` line never busts the reader's line limit.
constexpr std::size_t kMaxErrorBytes = 1024;

}  // namespace

void write_response(std::ostream& out, const WireResponse& response) {
  out << "dts1 response " << response.id << ' ' << to_string(response.status)
      << '\n';
  switch (response.status) {
    case WireResponse::Status::kOk:
      if (!response.winner.empty()) {
        out << "cache " << to_string(response.cache) << '\n';
        out << "winner " << response.winner << '\n';
        out << "makespan " << format_double(response.makespan) << '\n';
        out << "evaluations " << response.evaluations << '\n';
        out << "proved-optimal " << (response.proved_optimal ? 1 : 0) << '\n';
        out << "lower-bound " << format_double(response.lower_bound) << '\n';
        if (response.gap && std::isfinite(*response.gap)) {
          out << "gap " << format_double(*response.gap) << '\n';
        }
        out << "order " << response.order.size() << '\n';
        std::string line;
        for (std::uint32_t id : response.order) {
          if (!line.empty()) line.push_back(' ');
          line += std::to_string(id);
          if (line.size() >= kChunkBytes) {
            out << line << '\n';
            line.clear();
          }
        }
        if (!line.empty()) out << line << '\n';
        out << "schedule " << response.schedule.size() << '\n';
        for (const auto& [comm, comp] : response.schedule) {
          out << format_double(comm) << ' ' << format_double(comp) << '\n';
        }
      }
      for (const std::string& extra : response.extra) out << extra << '\n';
      break;
    case WireResponse::Status::kShed:
      out << "reason " << response.shed_reason << '\n';
      break;
    case WireResponse::Status::kDraining:
      break;
    case WireResponse::Status::kError: {
      std::string message = response.error.empty() ? "request failed"
                                                   : response.error;
      for (char& c : message) {
        if (c == '\n' || c == '\r') c = ' ';
      }
      if (message.size() > kMaxErrorBytes) {
        message.resize(kMaxErrorBytes);
        message += " [truncated]";
      }
      out << "message " << message << '\n';
      break;
    }
  }
  out << "end\n";
}

std::optional<WireResponse> read_response(std::istream& in,
                                          const ProtocolLimits& limits) {
  std::string line;
  for (;;) {
    if (!read_line(in, limits.max_line_bytes, line)) return std::nullopt;
    if (!line.empty()) break;
  }
  const std::vector<std::string> head = split_tokens(line);
  if (head.size() != 4 || head[0] != "dts1" || head[1] != "response") {
    throw ProtocolError("bad response header: " + line);
  }
  WireResponse res;
  res.id = head[2];
  if (head[3] == "ok") {
    res.status = WireResponse::Status::kOk;
  } else if (head[3] == "shed") {
    res.status = WireResponse::Status::kShed;
  } else if (head[3] == "draining") {
    res.status = WireResponse::Status::kDraining;
  } else if (head[3] == "error") {
    res.status = WireResponse::Status::kError;
  } else {
    throw ProtocolError("unknown response status: " + head[3]);
  }

  for (std::size_t n_headers = 0;; ++n_headers) {
    if (n_headers > limits.max_header_lines) {
      throw ProtocolError("more than " +
                          std::to_string(limits.max_header_lines) +
                          " response header lines");
    }
    if (!read_line(in, limits.max_line_bytes, line)) {
      throw ProtocolError("stream ended mid-response (missing 'end')");
    }
    if (line == "end") break;
    // `message` carries free-form text (e.g. the offending input echoed
    // back); parse it as a raw remainder, not as strict tokens.
    if (line.rfind("message ", 0) == 0) {
      res.error = line.substr(8);
      continue;
    }
    const std::vector<std::string> tokens = split_tokens(line);
    const std::string& key = tokens[0];
    if (key == "cache" && tokens.size() == 2) {
      if (tokens[1] == "hit") {
        res.cache = WireResponse::CacheOutcome::kHit;
      } else if (tokens[1] == "miss") {
        res.cache = WireResponse::CacheOutcome::kMiss;
      } else if (tokens[1] == "coalesced") {
        res.cache = WireResponse::CacheOutcome::kCoalesced;
      } else if (tokens[1] == "bypass") {
        res.cache = WireResponse::CacheOutcome::kBypass;
      } else {
        throw ProtocolError("unknown cache outcome: " + tokens[1]);
      }
    } else if (key == "winner" && tokens.size() == 2) {
      res.winner = tokens[1];
    } else if (key == "makespan" && tokens.size() == 2) {
      res.makespan = parse_double(tokens[1], "makespan");
    } else if (key == "evaluations" && tokens.size() == 2) {
      res.evaluations = parse_u64(tokens[1], "evaluations");
    } else if (key == "proved-optimal" && tokens.size() == 2) {
      const std::uint64_t v = parse_u64(tokens[1], "proved-optimal");
      if (v > 1) throw ProtocolError("proved-optimal must be 0 or 1");
      res.proved_optimal = v == 1;
    } else if (key == "lower-bound" && tokens.size() == 2) {
      res.lower_bound = parse_double(tokens[1], "lower-bound");
    } else if (key == "gap" && tokens.size() == 2) {
      res.gap = parse_double(tokens[1], "gap");
    } else if (key == "order" && tokens.size() == 2) {
      const std::uint64_t n = parse_u64(tokens[1], "order");
      if (n > limits.max_trace_bytes) {
        throw ProtocolError("order length exceeds limits");
      }
      res.order.clear();
      res.order.reserve(static_cast<std::size_t>(n));
      while (res.order.size() < n) {
        if (!read_line(in, limits.max_line_bytes, line)) {
          throw ProtocolError("stream ended inside order block");
        }
        for (const std::string& token : split_tokens(line)) {
          if (res.order.size() >= n) {
            throw ProtocolError("order block carries more than " +
                                std::to_string(n) + " ids");
          }
          res.order.push_back(
              static_cast<std::uint32_t>(parse_u64(token, "order")));
        }
      }
    } else if (key == "schedule" && tokens.size() == 2) {
      const std::uint64_t n = parse_u64(tokens[1], "schedule");
      if (n > limits.max_trace_bytes) {
        throw ProtocolError("schedule length exceeds limits");
      }
      res.schedule.clear();
      res.schedule.reserve(static_cast<std::size_t>(n));
      for (std::uint64_t i = 0; i < n; ++i) {
        if (!read_line(in, limits.max_line_bytes, line)) {
          throw ProtocolError("stream ended inside schedule block");
        }
        const std::vector<std::string> pair = split_tokens(line);
        if (pair.size() != 2) {
          throw ProtocolError("bad schedule line: " + line);
        }
        res.schedule.emplace_back(parse_double(pair[0], "schedule"),
                                  parse_double(pair[1], "schedule"));
      }
    } else if (key == "reason" && tokens.size() == 2) {
      res.shed_reason = tokens[1];
    } else {
      res.extra.push_back(line);
    }
  }
  return res;
}

}  // namespace dts
