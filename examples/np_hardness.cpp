/// The NP-completeness construction, executable (paper Theorem 2, Table 1,
/// Fig. 2): reduce a 3-Partition instance to problem DT, solve the
/// partition, build the tight schedule, and read the partition back off
/// the schedule. Also shows an unsolvable instance whose DT image provably
/// cannot meet the target makespan.
///
///   $ ./np_hardness

#include <cstdio>

#include "core/validate.hpp"
#include "exact/exhaustive.hpp"
#include "reduction/three_partition.hpp"
#include "report/gantt.hpp"

namespace {

using namespace dts;

void demonstrate(const ThreePartitionInstance& input, const char* label) {
  std::printf("=== %s: values {", label);
  for (std::size_t i = 0; i < input.values.size(); ++i) {
    std::printf("%s%lld", i ? ", " : "",
                static_cast<long long>(input.values[i]));
  }
  std::printf("}  m=%zu  b=%lld\n", input.m(),
              static_cast<long long>(input.b()));

  const DtReduction red = reduce_to_dt(input);
  std::printf("Table 1 image: %zu tasks, capacity C = b'+3 = %.0f, target "
              "L = m(b'+3) = %.0f\n",
              red.instance.size(), red.capacity, red.target);

  if (const auto triplets = solve_three_partition(input)) {
    std::printf("3-Partition solvable -> Fig. 2 schedule:\n");
    const Schedule s = schedule_from_partition(red, *triplets);
    const ValidationReport report =
        validate_schedule(red.instance, s, red.capacity);
    std::printf("  feasible: %s, makespan %.0f == L, peak memory %.0f == C\n",
                report.ok() ? "yes" : "NO", s.makespan(red.instance),
                report.peak_memory);
    std::printf("%s", render_gantt(red.instance, s, {.width = 72}).c_str());

    const auto recovered = partition_from_schedule(red, s);
    std::printf("  triplets decoded back from the schedule:");
    for (const Triplet& t : *recovered) {
      std::printf("  {%lld,%lld,%lld}",
                  static_cast<long long>(input.values[t[0]]),
                  static_cast<long long>(input.values[t[1]]),
                  static_cast<long long>(input.values[t[2]]));
    }
    std::printf("\n\n");
  } else {
    std::printf("3-Partition unsolvable -> no schedule can reach L.\n");
    const ExhaustiveResult best =
        best_common_order(red.instance, red.capacity);
    std::printf("  best permutation schedule (exhaustive over %llu distinct "
                "orders): %.1f > L = %.0f\n\n",
                static_cast<unsigned long long>(best.permutations_tried),
                best.makespan, red.target);
  }
}

}  // namespace

int main() {
  demonstrate(ThreePartitionInstance{{1, 2, 6, 2, 3, 4}}, "solvable instance");
  demonstrate(ThreePartitionInstance{{5, 5, 5, 1, 1, 1}},
              "unsolvable instance");
  return 0;
}
