/// \file solver_service.cpp
/// The request/handle lifecycle of the concurrent solve service
/// (core/pool.hpp) end to end: a SolverPool under a priority policy
/// receives a burst of solve jobs — an urgent small instance, bulk HF
/// traces, a deadline-bounded anytime search, and one job the client
/// cancels mid-flight — and every handle is observed through to its
/// terminal state.

#include <iostream>
#include <vector>

#include "core/pool.hpp"
#include "report/table.hpp"
#include "trace/generators.hpp"

using namespace dts;

int main() {
  SolverPoolOptions options;
  options.workers = 2;
  options.policy = SolverPoolOptions::Policy::kPriority;
  SolverPool pool(options);

  TraceConfig config;
  config.min_tasks = 200;
  config.max_tasks = 400;

  std::vector<JobHandle> handles;
  std::vector<std::string> labels;

  // Bulk work: four HF traces at normal priority.
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    config.seed = seed;
    JobRequest job;
    job.request.instance =
        generate_trace(ChemistryKernel::kHartreeFock, config);
    job.request.capacity = 1.25 * job.request.instance.min_capacity();
    job.solver = "auto";
    job.tag = "bulk-hf-" + std::to_string(seed);
    labels.push_back(job.tag);
    handles.push_back(pool.submit(std::move(job)));
  }

  // An urgent job: higher priority, so it overtakes the queued bulk work.
  {
    config.seed = 99;
    JobRequest job;
    job.request.instance =
        generate_trace(ChemistryKernel::kCoupledClusterSD, config);
    job.request.capacity = 1.5 * job.request.instance.min_capacity();
    job.solver = "auto";
    job.priority = 10;
    job.tag = "urgent-ccsd";
    labels.push_back(job.tag);
    handles.push_back(pool.submit(std::move(job)));
  }

  // An anytime search under a service deadline: local search would run
  // for its full iteration budget, but the 50 ms deadline (queue wait
  // included) stops it with its best-so-far schedule.
  {
    config.seed = 7;
    JobRequest job;
    job.request.instance =
        generate_trace(ChemistryKernel::kHartreeFock, config);
    job.request.capacity = 1.25 * job.request.instance.min_capacity();
    job.solver = "local-search";
    job.options.max_iterations = 100000000;
    job.deadline_seconds = 0.05;
    job.tag = "deadline-local-search";
    labels.push_back(job.tag);
    handles.push_back(pool.submit(std::move(job)));
  }

  // A job the client changes its mind about.
  {
    config.seed = 8;
    JobRequest job;
    job.request.instance =
        generate_trace(ChemistryKernel::kHartreeFock, config);
    job.request.capacity = 1.25 * job.request.instance.min_capacity();
    job.solver = "auto";
    job.tag = "cancelled-by-client";
    labels.push_back(job.tag);
    JobHandle handle = pool.submit(std::move(job));
    handle.cancel();  // queued or running — either way it resolves
    handles.push_back(handle);
  }

  std::cout << "submitted " << handles.size()
            << " jobs to a 2-worker priority pool\n\n";

  TextTable table({"job", "status", "winner", "makespan", "note"});
  for (std::size_t k = 0; k < handles.size(); ++k) {
    const JobOutcome& outcome = handles[k].wait();
    table.add_row(
        {labels[k], std::string(to_string(outcome.status)),
         outcome.has_result ? outcome.result.winner : "-",
         outcome.has_result ? format_seconds(outcome.result.makespan) : "-",
         outcome.error});
  }
  std::cout << table.to_ascii();

  const SolverPool::Stats stats = pool.stats();
  std::cout << "\nservice counters: " << stats.submitted << " submitted, "
            << stats.done << " done, " << stats.cancelled << " cancelled, "
            << stats.failed << " failed (peak queue depth "
            << stats.peak_queued << ")\n";

  pool.shutdown(DrainMode::kDrain);
  return 0;
}
