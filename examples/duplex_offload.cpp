/// CPU <-> GPU duplex offload — the multi-channel model in action.
///
/// The paper's conclusion singles out GPUs with one DMA engine per
/// direction as the natural next application of its heuristics. This
/// example builds a symmetric offload workload (every kernel fetches its
/// inputs H2D, computes, and writes its result back D2H), then solves it
/// twice with the same solver:
///
///   * half duplex — every transfer forced onto one shared engine, the
///     paper's original single-link model (merged_channels);
///   * full duplex — fetches on the H2D engine, write-backs on the D2H
///     engine, so the two directions overlap.
///
/// The makespan gap is the value of the second copy engine; the gantt
/// charts show write-backs sliding under the fetches.
///
///   $ ./duplex_offload

#include <cstdio>
#include <string>
#include <vector>

#include "core/bounds.hpp"
#include "core/solver.hpp"
#include "report/table.hpp"
#include "support/rng.hpp"
#include "trace/machine.hpp"
#include "trace/transforms.hpp"

int main() {
  using namespace dts;

  const MachineModel gpu = MachineModel::duplex_pcie();
  const ChannelSet channels = gpu.channel_set();
  Rng rng(11);

  // A symmetric, transfer-bound pipeline stage: each kernel pulls an
  // activation tile in, runs a lean elementwise/GEMV-ish kernel, and
  // returns a result of comparable size — H2D and D2H loads balance and
  // together exceed the compute time, the case where a per-direction
  // engine pays off most.
  std::vector<Task> tasks;
  for (int i = 0; i < 40; ++i) {
    const double in_bytes = rng.uniform(64e6, 512e6);
    const double out_bytes = in_bytes * rng.uniform(0.7, 1.0);
    tasks.push_back(Task{.id = 0,
                         .comm = gpu.transfer_time(in_bytes),
                         .comp = gpu.compute_time(rng.uniform(0.1e12, 0.4e12)),
                         .mem = in_bytes,
                         .channel = kChannelH2D,
                         .name = "fetch_" + std::to_string(i)});
    tasks.push_back(Task{.id = 0,
                         .comm = gpu.d2h_transfer_time(out_bytes),
                         .comp = 0.0,
                         .mem = out_bytes,
                         .channel = kChannelD2H,
                         .name = "wb_" + std::to_string(i)});
  }
  const Instance duplex(std::move(tasks));
  const Instance single = merged_channels(duplex);

  const Bounds b = compute_bounds(duplex);
  std::printf("duplex offload workload: %zu tasks (%zu fetches + write-backs)\n",
              duplex.size(), duplex.size() / 2);
  std::printf("H2D load %s, D2H load %s, GPU busy %s\n\n",
              format_seconds(b.sum_comm_per_channel[kChannelH2D]).c_str(),
              format_seconds(b.sum_comm_per_channel[kChannelD2H]).c_str(),
              format_seconds(b.sum_comp).c_str());

  TextTable table({"device mem", "solver", "half duplex", "full duplex",
                   "saved"});
  const Mem mc = duplex.min_capacity();
  for (double factor : {1.25, 2.0, 4.0}) {
    for (const char* solver : {"SCMR", "auto"}) {
      const SolveResult serialized =
          solve({.instance = single, .capacity = factor * mc}, solver);
      const SolveResult overlapped = solve(
          {.instance = duplex, .capacity = factor * mc, .channels = channels},
          solver);
      table.add_row(
          {format_si_bytes(factor * mc), solver,
           format_seconds(serialized.makespan),
           format_seconds(overlapped.makespan),
           format_fixed(100.0 * (serialized.makespan - overlapped.makespan) /
                            serialized.makespan,
                        1) +
               "%"});
    }
  }
  std::printf("%s", table.to_ascii().c_str());
  std::printf(
      "\nthe full-duplex makespans are strictly lower: the D2H engine\n"
      "drains results while the H2D engine keeps feeding the GPU, which\n"
      "a single half-duplex link must serialize.\n");
  return 0;
}
