/// Quickstart: model a handful of tasks, pick a memory budget, compare the
/// paper's scheduling heuristics, and render the winning schedule.
///
///   $ ./quickstart
///
/// Walks through the core API surface in ~60 lines: Instance construction,
/// bounds, the registry of heuristics, the auto-scheduler, the recommender
/// and the Gantt renderer.

#include <cstdio>

#include "core/auto_scheduler.hpp"
#include "core/bounds.hpp"
#include "core/recommend.hpp"
#include "core/registry.hpp"
#include "report/gantt.hpp"
#include "report/table.hpp"

int main() {
  using namespace dts;

  // Six independent tasks: communication time, computation time; memory
  // requirement equals communication volume (the paper's convention).
  const Instance inst = Instance::from_comm_comp({
      {4.0, 1.0},   // A: fetch-heavy
      {2.0, 6.0},   // B: compute-heavy
      {8.0, 8.0},   // C: the big one
      {5.0, 4.0},   // D
      {3.0, 2.0},   // E
      {1.0, 5.0},   // F: tiny transfer, long compute
  });

  // Memory capacity: 1.25x the largest single footprint.
  const Mem capacity = 1.25 * inst.min_capacity();

  const Bounds bounds = compute_bounds(inst);
  std::printf("tasks: %zu   capacity: %.1f\n", inst.size(), capacity);
  std::printf("lower bound (OMIM, infinite memory): %.2f\n", bounds.omim_lower);
  std::printf("upper bound (zero overlap):          %.2f\n",
              bounds.sequential_upper);
  std::printf("overlap headroom: %.0f%%\n\n",
              100.0 * bounds.max_overlap_fraction());

  // Every heuristic of the paper, via the registry.
  TextTable table({"heuristic", "family", "makespan", "ratio to OMIM"});
  for (const HeuristicInfo& h : all_heuristics()) {
    const Time ms = heuristic_makespan(h.id, inst, capacity);
    table.add_row({std::string(h.name), std::string(name_of(h.category)),
                   format_fixed(ms, 2), format_fixed(ms / bounds.omim_lower, 3)});
  }
  std::printf("%s\n", table.to_ascii().c_str());

  // Or just ask for the best.
  const AutoScheduleResult best = auto_schedule(inst, capacity);
  std::printf("auto-scheduler winner: %s (makespan %.2f, ratio %.3f)\n",
              std::string(name_of(best.best)).c_str(), best.makespan,
              best.ratio_to_optimal());

  // Table 6 as a library call: what does the paper recommend here?
  const Recommendation rec = recommend(inst, capacity);
  std::printf("recommended for this regime (%s): %s — %s\n\n",
              std::string(to_string(rec.regime)).c_str(),
              std::string(name_of(rec.primary)).c_str(), rec.rationale.c_str());

  std::printf("winning schedule:\n%s",
              render_gantt(inst, best.schedule).c_str());
  return 0;
}
