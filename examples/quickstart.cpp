/// Quickstart: model a handful of tasks, pick a memory budget, and let the
/// unified dts::solve() surface run the paper's heuristics for you.
///
///   $ ./quickstart
///
/// Walks through the API in ~60 lines: Instance construction, a
/// SolveRequest, the string-keyed solver registry ("auto", "OOLCMR",
/// "local-search", ...), the rich SolveResult and the Gantt renderer.

#include <cstdio>

#include "core/solver.hpp"
#include "report/gantt.hpp"
#include "report/table.hpp"

int main() {
  using namespace dts;

  // Six independent tasks: communication time, computation time; memory
  // requirement equals communication volume (the paper's convention).
  SolveRequest request;
  request.instance = Instance::from_comm_comp({
      {4.0, 1.0},   // A: fetch-heavy
      {2.0, 6.0},   // B: compute-heavy
      {8.0, 8.0},   // C: the big one
      {5.0, 4.0},   // D
      {3.0, 2.0},   // E
      {1.0, 5.0},   // F: tiny transfer, long compute
  });
  // Memory capacity: 1.25x the largest single footprint.
  request.capacity = 1.25 * request.instance.min_capacity();

  // One call tries every registered heuristic and keeps the best schedule;
  // the result carries the lower bounds, the per-candidate outcomes and
  // the winner's name.
  const SolveResult best = solve(request, "auto");
  std::printf("tasks: %zu   capacity: %.1f\n", request.instance.size(),
              request.capacity);
  std::printf("lower bound (OMIM, infinite memory): %.2f\n", best.bounds.omim);
  std::printf("capacity-aware lower bound:          %.2f\n\n",
              best.bounds.combined);

  TextTable table({"candidate", "makespan", "ratio to OMIM"});
  for (const CandidateOutcome& outcome : best.outcomes) {
    table.add_row({outcome.name, format_fixed(outcome.makespan, 2),
                   format_fixed(outcome.makespan / best.bounds.omim, 3)});
  }
  std::printf("%s\n", table.to_ascii().c_str());
  std::printf("winner: %s (makespan %.2f, ratio %.3f, %.2f ms wall)\n\n",
              best.winner.c_str(), best.makespan, best.ratio_to_optimal(),
              1e3 * best.wall_seconds);

  // Any other strategy is one registry name away — same request, same
  // result type. See `dts solvers` for the full list.
  for (const char* name : {"OOLCMR", "local-search", "window:4"}) {
    const SolveResult res = solve(request, name);
    std::printf("%-12s -> makespan %.2f (ratio %.3f)\n", name, res.makespan,
                res.ratio_to_optimal());
  }

  std::printf("\nwinning schedule:\n%s",
              render_gantt(request.instance, best.schedule).c_str());
  return 0;
}
