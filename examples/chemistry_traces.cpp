/// Chemistry workloads end to end: generate HF and CCSD process traces
/// (the synthetic stand-ins for the paper's NWChem/Cascade runs), inspect
/// their characteristics (paper Fig. 8), persist them in the trace format,
/// and compare the best heuristic of each family across the capacity range
/// the paper sweeps.
///
///   $ ./chemistry_traces [trace_dir]
///
/// Writes example .trace files under trace_dir (default /tmp/dts_traces).

#include <cstdio>
#include <filesystem>

#include "core/solver.hpp"
#include "report/table.hpp"
#include "trace/generators.hpp"
#include "trace/trace_io.hpp"
#include "trace/workload_stats.hpp"

namespace {

using namespace dts;

void describe(ChemistryKernel kernel, const Instance& inst) {
  const WorkloadCharacteristics wc = characterize(inst);
  const InstanceStats stats = inst.stats();
  std::printf("%s trace: %zu tasks, mc = %s\n",
              std::string(to_string(kernel)).c_str(), inst.size(),
              format_si_bytes(stats.max_mem).c_str());
  std::printf("  sum comm = %s   sum comp = %s   (comm/comp = %.2f)\n",
              format_seconds(wc.bounds.sum_comm).c_str(),
              format_seconds(wc.bounds.sum_comp).c_str(),
              wc.bounds.sum_comm / wc.bounds.sum_comp);
  std::printf("  OMIM = %s   overlap headroom = %.0f%%   compute-intensive "
              "tasks = %.0f%%\n",
              format_seconds(wc.bounds.omim_lower).c_str(),
              100.0 * wc.overlap_potential(),
              100.0 * stats.compute_intensive_fraction());
}

void sweep(ChemistryKernel kernel, const Instance& inst) {
  const Time omim = characterize(inst).bounds.omim_lower;
  const Mem mc = inst.min_capacity();
  TextTable table({"capacity", "best static", "ratio", "best dynamic",
                   "ratio", "best corrected", "ratio"});
  SolveOptions options;
  options.compute_bounds = false;  // OMIM is already known
  for (double f : {1.0, 1.25, 1.5, 1.75, 2.0}) {
    std::vector<std::string> row{format_fixed(f, 2) + " mc"};
    // Each family is one registry name: the auto solver restricted to the
    // family's candidates.
    for (const char* family : {"auto:static", "auto:dynamic",
                               "auto:corrected"}) {
      const SolveResult best =
          solve({.instance = inst, .capacity = mc * f}, family, options);
      row.push_back(best.winner);
      row.push_back(format_fixed(best.makespan / omim, 4));
    }
    table.add_row(std::move(row));
  }
  std::printf("%s capacity sweep (ratio to OMIM, lower is better):\n%s\n",
              std::string(to_string(kernel)).c_str(),
              table.to_ascii().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const std::filesystem::path dir =
      argc > 1 ? argv[1] : "/tmp/dts_traces";
  std::filesystem::create_directories(dir);

  for (ChemistryKernel kernel :
       {ChemistryKernel::kHartreeFock, ChemistryKernel::kCoupledClusterSD}) {
    TraceConfig config;
    config.seed = 42;
    const Instance inst = generate_trace(kernel, config);
    describe(kernel, inst);

    const auto path =
        dir / (std::string(to_string(kernel)) + "_p042.trace");
    write_trace_file(path, inst);
    std::printf("  written to %s (round-trips via read_trace_file)\n\n",
                path.c_str());

    sweep(kernel, inst);
  }
  return 0;
}
