/// CPU -> GPU offload ordering — the scenario the paper's conclusion names
/// as the next target for these heuristics ("overlapping CPU-GPU
/// communications with computations", one copy engine per direction).
///
/// A training-style inference batch: kernels need their input tensors in
/// GPU memory before launch; the PCIe copy engine moves one tensor at a
/// time; GPU memory is scarce. Deciding the order of H2D transfers is
/// exactly problem DT with M' = host RAM, M = device RAM, P = the GPU.
///
///   $ ./gpu_offload

#include <cstdio>
#include <vector>

#include "core/bounds.hpp"
#include "core/recommend.hpp"
#include "core/registry.hpp"
#include "core/solver.hpp"
#include "report/gantt.hpp"
#include "report/table.hpp"
#include "support/rng.hpp"
#include "trace/machine.hpp"

int main() {
  using namespace dts;

  const MachineModel gpu = MachineModel::pcie_gpu();
  Rng rng(7);

  // A mixed kernel queue: big embedding-table gathers (transfer-bound),
  // GEMM-heavy attention blocks (compute-bound) and small elementwise ops.
  std::vector<Task> kernels;
  for (int i = 0; i < 48; ++i) {
    const double pick = rng.next_double();
    Task t;
    if (pick < 0.3) {  // embedding gather: 256-1024 MB in, light compute
      const double bytes = rng.uniform(256e6, 1024e6);
      t = Task{.id = 0,
               .comm = gpu.transfer_time(bytes),
               .comp = gpu.streaming_time(bytes) * 0.5,
               .mem = bytes,
               .comm_bytes = bytes,
               .name = "gather_" + std::to_string(i)};
    } else if (pick < 0.75) {  // attention GEMM: modest weights, heavy flops
      const double bytes = rng.uniform(32e6, 128e6);
      const double flops = rng.uniform(2e12, 8e12);
      t = Task{.id = 0,
               .comm = gpu.transfer_time(bytes),
               .comp = gpu.compute_time(flops),
               .mem = bytes,
               .comm_bytes = bytes,
               .name = "gemm_" + std::to_string(i)};
    } else {  // elementwise epilogue
      const double bytes = rng.uniform(8e6, 32e6);
      t = Task{.id = 0,
               .comm = gpu.transfer_time(bytes),
               .comp = gpu.streaming_time(bytes),
               .mem = bytes,
               .comm_bytes = bytes,
               .name = "ew_" + std::to_string(i)};
    }
    kernels.push_back(std::move(t));
  }
  const Instance inst(std::move(kernels));

  const Bounds bounds = compute_bounds(inst);
  std::printf("kernel queue: %zu kernels, largest input %s\n", inst.size(),
              format_si_bytes(inst.min_capacity()).c_str());
  std::printf("PCIe busy %s, GPU busy %s -> up to %.0f%% of the sequential "
              "time can be hidden\n\n",
              format_seconds(bounds.sum_comm).c_str(),
              format_seconds(bounds.sum_comp).c_str(),
              100.0 * bounds.max_overlap_fraction());

  // Sweep device-memory budgets: from "exactly the largest tensor" (harsh)
  // to 4x that (comfortable).
  TextTable table({"device mem", "naive FIFO", "best heuristic", "makespan",
                   "vs FIFO", "vs lower bound"});
  for (double factor : {1.0, 1.5, 2.0, 4.0}) {
    // One dts::solve() call per budget: the auto solver tries every
    // registered heuristic; the FIFO baseline is its first outcome ("OS").
    const SolveResult best =
        solve({.instance = inst, .capacity = factor * inst.min_capacity()},
              "auto");
    const Mem budget = factor * inst.min_capacity();
    Time fifo = kInfiniteTime;
    for (const CandidateOutcome& o : best.outcomes) {
      if (o.name == "OS") fifo = o.makespan;
    }
    table.add_row({format_si_bytes(budget), format_seconds(fifo),
                   best.winner, format_seconds(best.makespan),
                   format_fixed(100.0 * (fifo - best.makespan) / fifo, 1) + "%",
                   format_fixed(best.makespan / bounds.omim_lower, 3) + "x"});
  }
  std::printf("%s\n", table.to_ascii().c_str());

  const Mem budget = 1.5 * inst.min_capacity();
  const Recommendation rec = recommend(inst, budget);
  std::printf("recommended policy at 1.5x: %s (%s)\n",
              std::string(name_of(rec.primary)).c_str(), rec.rationale.c_str());

  const SolveResult res = solve({.instance = inst, .capacity = budget},
                                std::string(name_of(rec.primary)));
  std::printf("\ncopy-engine / GPU timeline under %s:\n%s",
              std::string(name_of(rec.primary)).c_str(),
              render_gantt(inst, res.schedule,
                           {.width = 72, .show_legend = false})
                  .c_str());

  // The tensor sizes above are machine independent (Task::comm_bytes), so
  // re-costing the same queue for a different interconnect is a one-line
  // machine swap: SolveRequest::machine re-binds every transfer through
  // the named machine's performance model before solving.
  std::printf("\nsame queue, other interconnects (device mem 1.5x):\n");
  TextTable sweep({"machine", "winner", "makespan"});
  for (const char* machine :
       {"pcie-gpu", "duplex-pcie", "summit-node", "nvlink"}) {
    SolveRequest request{.instance = inst, .capacity = budget};
    request.machine = machine;
    const SolveResult swept = solve(request, "auto");
    sweep.add_row({machine, swept.winner, format_seconds(swept.makespan)});
  }
  std::printf("%s", sweep.to_ascii().c_str());
  return 0;
}
