/// Batch-mode runtime scheduling (paper §6.3): a task-based runtime rarely
/// sees the whole DAG frontier at once — it observes windows of ready
/// tasks. This example replays a CCSD trace through the unified
/// dts::solve() surface with different batch windows and shows what
/// limited visibility costs, plus the auto-selecting runtime the paper's
/// conclusion sketches ("auto-batch:N" in the solver registry).
///
///   $ ./batch_runtime [batch_size...]

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/solver.hpp"
#include "report/table.hpp"
#include "trace/generators.hpp"

int main(int argc, char** argv) {
  using namespace dts;

  std::vector<std::size_t> batch_sizes;
  for (int i = 1; i < argc; ++i) {
    batch_sizes.push_back(static_cast<std::size_t>(std::atoll(argv[i])));
  }
  if (batch_sizes.empty()) batch_sizes = {25, 100, 400};

  TraceConfig config;
  config.seed = 11;
  SolveRequest request;
  request.instance = generate_ccsd_trace(config);
  request.capacity = 1.5 * request.instance.min_capacity();
  const Time omim = solve(request, "OS").bounds.omim;

  std::printf("CCSD trace: %zu tasks, capacity 1.5 mc, OMIM %s\n\n",
              request.instance.size(), format_seconds(omim).c_str());

  // Representative heuristic of each family plus the submission baseline.
  const std::vector<std::string> picks{"OS", "OOSIM", "MAMR", "OOMAMR"};

  std::vector<std::string> headers{"visibility"};
  for (const std::string& name : picks) headers.push_back(name);
  TextTable table(std::move(headers));

  SolveOptions options;
  options.compute_bounds = false;  // OMIM is already known
  for (std::size_t batch : batch_sizes) {
    request.batch_size = batch;
    std::vector<std::string> row{std::to_string(batch) + "-task batches"};
    for (const std::string& name : picks) {
      row.push_back(
          format_fixed(solve(request, name, options).makespan / omim, 4));
    }
    table.add_row(std::move(row));
  }
  {
    request.batch_size.reset();  // full visibility
    std::vector<std::string> row{"whole trace"};
    for (const std::string& name : picks) {
      row.push_back(
          format_fixed(solve(request, name, options).makespan / omim, 4));
    }
    table.add_row(std::move(row));
  }
  std::printf("ratio to OMIM by scheduler visibility (lower is better):\n%s\n",
              table.to_ascii().c_str());

  // The "auto-selecting runtime" (the paper's concluding vision), in its
  // online form: per batch, simulate every candidate from the carried
  // state and commit the winner — one registry name.
  std::printf("online auto-selecting runtime (per-batch winner):\n");
  for (std::size_t batch : batch_sizes) {
    const SolveResult res = solve(
        request, "auto-batch:" + std::to_string(batch), options);
    std::vector<CandidateOutcome> ranked = res.outcomes;
    std::stable_sort(ranked.begin(), ranked.end(),
                     [](const CandidateOutcome& a, const CandidateOutcome& b) {
                       return a.batch_wins > b.batch_wins;
                     });
    std::string wins;
    for (std::size_t k = 0; k < ranked.size() && k < 3; ++k) {
      if (ranked[k].batch_wins == 0) break;
      if (!wins.empty()) wins += ", ";
      wins += ranked[k].name + " x" + std::to_string(ranked[k].batch_wins);
    }
    std::printf("  %4zu-task batches -> ratio %.4f (%s; top winners: %s)\n",
                batch, res.makespan / omim, res.detail.c_str(), wins.c_str());
  }
  return 0;
}
