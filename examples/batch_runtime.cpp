/// Batch-mode runtime scheduling (paper §6.3): a task-based runtime rarely
/// sees the whole DAG frontier at once — it observes windows of ready
/// tasks. This example replays a CCSD trace through the batch scheduler
/// with different window sizes and shows what limited visibility costs,
/// plus the auto-selecting runtime the paper's conclusion sketches.
///
///   $ ./batch_runtime [batch_size...]

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/batch.hpp"
#include "core/bounds.hpp"
#include "core/registry.hpp"
#include "report/table.hpp"
#include "trace/generators.hpp"

int main(int argc, char** argv) {
  using namespace dts;

  std::vector<std::size_t> batch_sizes;
  for (int i = 1; i < argc; ++i) {
    batch_sizes.push_back(static_cast<std::size_t>(std::atoll(argv[i])));
  }
  if (batch_sizes.empty()) batch_sizes = {25, 100, 400};

  TraceConfig config;
  config.seed = 11;
  const Instance inst = generate_ccsd_trace(config);
  const Bounds bounds = compute_bounds(inst);
  const Mem capacity = 1.5 * inst.min_capacity();

  std::printf("CCSD trace: %zu tasks, capacity 1.5 mc, OMIM %s\n\n",
              inst.size(), format_seconds(bounds.omim_lower).c_str());

  // Representative heuristic of each family plus the submission baseline.
  const std::vector<HeuristicId> picks{
      HeuristicId::kOS, HeuristicId::kOOSIM, HeuristicId::kMAMR,
      HeuristicId::kOOMAMR};

  std::vector<std::string> headers{"visibility"};
  for (HeuristicId id : picks) headers.emplace_back(name_of(id));
  TextTable table(std::move(headers));

  for (std::size_t batch : batch_sizes) {
    std::vector<std::string> row{std::to_string(batch) + "-task batches"};
    for (HeuristicId id : picks) {
      const Schedule s = schedule_in_batches(id, inst, capacity, batch);
      row.push_back(format_fixed(s.makespan(inst) / bounds.omim_lower, 4));
    }
    table.add_row(std::move(row));
  }
  {
    std::vector<std::string> row{"whole trace"};
    for (HeuristicId id : picks) {
      row.push_back(format_fixed(
          heuristic_makespan(id, inst, capacity) / bounds.omim_lower, 4));
    }
    table.add_row(std::move(row));
  }
  std::printf("ratio to OMIM by scheduler visibility (lower is better):\n%s\n",
              table.to_ascii().c_str());

  // The "auto-selecting runtime" (the paper's concluding vision), in its
  // online form: per batch, simulate every heuristic from the carried
  // state and commit the winner.
  std::printf("online auto-selecting runtime (per-batch winner):\n");
  const std::vector<HeuristicId> candidates = all_heuristic_ids();
  for (std::size_t batch : batch_sizes) {
    const BatchAutoResult res =
        schedule_in_batches_auto(inst, capacity, batch, candidates);
    std::size_t switches = 0;
    for (std::size_t b = 1; b < res.winners.size(); ++b) {
      if (res.winners[b] != res.winners[b - 1]) ++switches;
    }
    std::printf("  %4zu-task batches -> ratio %.4f (first winner %s, "
                "%zu policy switches over %zu batches)\n",
                batch, res.schedule.makespan(inst) / bounds.omim_lower,
                std::string(name_of(res.winners.front())).c_str(), switches,
                res.winners.size());
  }
  return 0;
}
