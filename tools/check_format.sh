#!/usr/bin/env bash
# Formatting drift gate for the .clang-format profile.
#
#   tools/check_format.sh         report files that clang-format would
#                                 change; exit 1 if any
#   tools/check_format.sh --fix   rewrite them in place
#
# Exit codes: 0 clean, 1 drift found, 2 clang-format not installed
# (callers that treat the tool as optional key off 2).
set -u

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
MODE="check"
[ "${1:-}" = "--fix" ] && MODE="fix"

if ! command -v clang-format >/dev/null 2>&1; then
  echo "check_format: clang-format not installed" >&2
  exit 2
fi

mapfile -t files < <(cd "$ROOT" && git ls-files \
  'src/*.cpp' 'src/*.hpp' 'bench/*.cpp' 'bench/*.hpp' \
  'examples/*.cpp' 'tests/*.cpp' 'tests/*.hpp' 'tools/*.cpp' \
  | grep -v '^tests/lint_fixtures/')

if [ "$MODE" = "fix" ]; then
  (cd "$ROOT" && clang-format -i "${files[@]}")
  echo "check_format: reformatted ${#files[@]} files"
  exit 0
fi

drift=0
for f in "${files[@]}"; do
  if ! (cd "$ROOT" && clang-format --dry-run --Werror "$f" >/dev/null 2>&1)
  then
    echo "needs formatting: $f"
    drift=1
  fi
done
[ "$drift" = 0 ] && echo "check_format: ${#files[@]} files clean"
exit "$drift"
