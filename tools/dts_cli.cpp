/// Thin main() for the `dts` command-line tool; all logic (and its tests)
/// lives in src/cli/cli.cpp.

#include <iostream>

#include "cli/cli.hpp"

int main(int argc, char** argv) {
  return dts::cli::run_cli(argc - 1, argv + 1, std::cout, std::cerr);
}
