#!/usr/bin/env python3
"""Performance-regression guard for the bench JSON outputs.

Compares a fresh bench run (BENCH_machine_sweep.json or
BENCH_solve_throughput.json) against the checked-in baseline under
bench/baselines/. Two classes of column, two rules:

 * Deterministic makespan columns (median_makespan_seconds, ...): exact
   functions of the seeded workload and the solver code, so any drift
   beyond a small floating-point tolerance is a behavior change. Lower is
   better: an increase is a regression (the job fails), a decrease is an
   improvement (the job passes with a note to refresh the baseline).
 * Throughput columns (*_per_sec, *_speedup): higher is better and the
   *_per_sec values are machine-dependent, so they get their own, much
   laxer tolerance (--throughput-tolerance). A drop beyond it fails the
   job; a gain is noted. The candidate_eval_speedup ratio is
   machine-robust (both engines run on the same machine seconds apart),
   which is what makes guarding the fast path's win meaningful in CI.

Columns present in the candidate but not the baseline (a bench just grew
a metric) are noted and covered after the next --update — never a
failure, so adding a column does not break CI retroactively.

Usage:
  tools/check_bench_baseline.py BASELINE CANDIDATE [--tolerance=0.02]
      [--throughput-tolerance=0.75]
  tools/check_bench_baseline.py BASELINE CANDIDATE --update
  tools/check_bench_baseline.py --self-test

Exit status: 0 ok, 1 regression/missing rows (or failed self-test),
2 usage or I/O error.
"""

import json
import shutil
import sys

DEFAULT_TOLERANCE = 0.02  # 2% relative slack for compiler/FP differences
# Machine-to-machine throughput spread: a candidate may be this fraction
# *below* the baseline before the job fails. Deliberately lax — the guard
# is against the fast path rotting (an order-of-magnitude loss), not
# against a slower CI runner.
DEFAULT_THROUGHPUT_TOLERANCE = 0.75

# Higher-is-better columns, guarded with the throughput tolerance. All
# other compared columns are lower-is-better makespans on the strict one.
THROUGHPUT_SUFFIXES = ("_per_sec", "_speedup")


def is_throughput_metric(name):
    return name.endswith(THROUGHPUT_SUFFIXES)


def row_key(row):
    """Identity of a bench row across runs."""
    if "dag_machine" in row:
        return ("dag", row["kernel"], row["dag_machine"])
    if "machine" in row:
        return ("sweep", row["kernel"], row["machine"])
    if "mode" in row:
        return ("throughput", row["kernel"], row["mode"])
    if "capacity_factor" in row:
        return ("fig7", row["kernel"], row["capacity_factor"])
    return ("asymmetry", row["kernel"], row["d2h_slowdown"])


def metrics(row):
    """The guarded columns of a row."""
    if "dag_machine" in row:
        # DAG-axis row: both medians are deterministic functions of the
        # seeded contraction-chain corpus — strict rule for each.
        return {
            "dag_median_makespan_seconds":
                row["dag_median_makespan_seconds"],
            "relaxed_median_makespan_seconds":
                row["relaxed_median_makespan_seconds"],
        }
    if "machine" in row:
        return {"median_makespan_seconds": row["median_makespan_seconds"]}
    if "mode" in row:
        # solve-throughput row: the deterministic makespan plus every
        # throughput column the bench reported (new columns ride along).
        out = {"median_makespan_seconds": row["median_makespan_seconds"]}
        for name, value in row.items():
            if is_throughput_metric(name):
                out[name] = value
        return out
    if "capacity_factor" in row:
        # fig7-duplex row: the proved-optimal exact makespan and the best
        # heuristic's — both deterministic functions of the seeded corpus.
        return {
            "milp_median_makespan_seconds":
                row["milp_median_makespan_seconds"],
            "best_heuristic_median_makespan_seconds":
                row["best_heuristic_median_makespan_seconds"],
        }
    return {
        "scmr_median_makespan_seconds": row["scmr_median_makespan_seconds"],
        "duplex_balance_median_makespan_seconds":
            row["duplex_balance_median_makespan_seconds"],
    }


def load_rows(path):
    try:
        with open(path) as handle:
            data = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        print(f"error: cannot read {path}: {error}", file=sys.stderr)
        sys.exit(2)
    rows = {}
    for row in (data.get("rows", []) + data.get("asymmetry", []) +
                data.get("dag", [])):
        rows[row_key(row)] = metrics(row)
    return rows


def compare(baseline, candidate, tolerance, throughput_tolerance):
    """Classify every guarded metric. Returns a dict of line lists:
    regressions/missing fail the run, the rest are notes."""
    result = {"regressions": [], "improvements": [], "missing": [],
              "new_rows": [], "new_metrics": [], "checked": 0}
    for key, base_metrics in sorted(baseline.items()):
        cand_metrics = candidate.get(key)
        if cand_metrics is None:
            result["missing"].append("/".join(str(part) for part in key))
            continue
        for name in sorted(set(cand_metrics) - set(base_metrics)):
            result["new_metrics"].append(
                f"{'/'.join(str(part) for part in key)} {name}")
        for name, base_value in base_metrics.items():
            cand_value = cand_metrics.get(name)
            if cand_value is None:
                result["missing"].append(
                    f"{'/'.join(str(part) for part in key)} {name}")
                continue
            if base_value <= 0.0:
                continue
            result["checked"] += 1
            delta = (cand_value - base_value) / base_value
            line = (f"{'/'.join(str(part) for part in key)} {name}: "
                    f"{base_value:.6g} -> {cand_value:.6g} "
                    f"({100.0 * delta:+.2f}%)")
            if is_throughput_metric(name):
                # Higher is better; the lax machine-spread tolerance.
                if delta < -throughput_tolerance:
                    result["regressions"].append(line)
                elif delta > throughput_tolerance:
                    result["improvements"].append(line)
            else:
                # Deterministic makespan; lower is better, strict.
                if delta > tolerance:
                    result["regressions"].append(line)
                elif delta < -tolerance:
                    result["improvements"].append(line)
    result["new_rows"] = ["/".join(str(part) for part in key)
                          for key in sorted(set(candidate) - set(baseline))]
    return result


def run_self_test():
    """Negative tests: the guard must still catch each regression class
    and must not fail on benign growth (new rows, new columns)."""
    thr_base = {("throughput", "HF", "single"): {
        "median_makespan_seconds": 0.05,
        "legacy_candidate_evals_per_sec": 8.0e4,
        "fastpath_candidate_evals_per_sec": 1.6e6,
        "candidate_eval_speedup": 20.0,
        "solves_per_sec": 10.0,
    }}
    sweep_base = {("sweep", "HF", "cascade"):
                  {"median_makespan_seconds": 1.0}}
    fig7_base = {("fig7", "HF", 1.25): {
        "milp_median_makespan_seconds": 4.0e-5,
        "best_heuristic_median_makespan_seconds": 4.2e-5,
    }}
    dag_base = {("dag", "CCSD-DAG", "duplex-pcie"): {
        "dag_median_makespan_seconds": 15.0,
        "relaxed_median_makespan_seconds": 13.0,
    }}

    def tweak(rows, **overrides):
        out = {key: dict(vals) for key, vals in rows.items()}
        for vals in out.values():
            vals.update(overrides)
        return out

    failures = []

    def expect(label, result, fails, improvements=0, new_metrics=0):
        did_fail = bool(result["regressions"] or result["missing"])
        if did_fail != fails:
            failures.append(f"{label}: expected fail={fails}, got "
                            f"{result['regressions'] or result['missing']}")
        if len(result["improvements"]) != improvements:
            failures.append(f"{label}: expected {improvements} improvement "
                            f"note(s), got {result['improvements']}")
        if len(result["new_metrics"]) != new_metrics:
            failures.append(f"{label}: expected {new_metrics} new-metric "
                            f"note(s), got {result['new_metrics']}")

    def run(base, cand):
        return compare(base, cand, DEFAULT_TOLERANCE,
                       DEFAULT_THROUGHPUT_TOLERANCE)

    # Identity passes, for every schema.
    expect("identical throughput rows", run(thr_base, thr_base), False)
    expect("identical sweep rows", run(sweep_base, sweep_base), False)
    expect("identical fig7 rows", run(fig7_base, fig7_base), False)
    expect("identical dag rows", run(dag_base, dag_base), False)

    # DAG-axis columns are deterministic makespans: strict in both
    # directions, for the with-edges and the relaxed column alike.
    expect("dag-makespan regression",
           run(dag_base,
               tweak(dag_base, dag_median_makespan_seconds=16.0)),
           True)
    expect("dag relaxed-makespan regression",
           run(dag_base,
               tweak(dag_base, relaxed_median_makespan_seconds=13.5)),
           True)
    expect("dag improvement is a note",
           run(dag_base,
               tweak(dag_base, dag_median_makespan_seconds=14.0)),
           False, improvements=1)

    # Fig. 7 duplex columns are deterministic makespans: strict rule in
    # both directions, for the exact and the best-heuristic column alike.
    expect("fig7 exact-makespan regression",
           run(fig7_base,
               tweak(fig7_base, milp_median_makespan_seconds=4.3e-5)),
           True)
    expect("fig7 heuristic-makespan regression",
           run(fig7_base,
               tweak(fig7_base,
                     best_heuristic_median_makespan_seconds=4.5e-5)),
           True)
    expect("fig7 improvement is a note",
           run(fig7_base,
               tweak(fig7_base,
                     best_heuristic_median_makespan_seconds=4.05e-5)),
           False, improvements=1)

    # Deterministic makespan: strict in both directions of the tolerance.
    expect("makespan regression",
           run(sweep_base, tweak(sweep_base, median_makespan_seconds=1.05)),
           True)
    expect("makespan improvement",
           run(sweep_base, tweak(sweep_base, median_makespan_seconds=0.9)),
           False, improvements=1)

    # Throughput columns: higher is better, lax tolerance.
    expect("speedup collapse fails",
           run(thr_base, tweak(thr_base, candidate_eval_speedup=2.0)), True)
    expect("machine-noise drop passes",
           run(thr_base, tweak(thr_base, candidate_eval_speedup=15.0,
                               fastpath_candidate_evals_per_sec=1.0e6)),
           False)
    expect("evals/sec collapse fails",
           run(thr_base,
               tweak(thr_base, fastpath_candidate_evals_per_sec=1.0e5)),
           True)
    expect("throughput gain is a note",
           run(thr_base, tweak(thr_base, candidate_eval_speedup=45.0)),
           False, improvements=1)

    # A makespan drift inside a throughput row still uses the strict rule.
    expect("throughput row makespan regression",
           run(thr_base, tweak(thr_base, median_makespan_seconds=0.055)),
           True)

    # Missing coverage fails; growth never does.
    cand = {key: {n: v for n, v in vals.items()
                  if n != "candidate_eval_speedup"}
            for key, vals in thr_base.items()}
    expect("dropped column fails", run(thr_base, cand), True)
    expect("missing row fails", run(thr_base, {}), True)
    grown = tweak(thr_base)
    for vals in grown.values():
        vals["merge_probe_hits_per_sec"] = 1.0e6
    expect("new column is a note", run(thr_base, grown), False,
           new_metrics=1)
    both = dict(thr_base)
    both[("throughput", "CCSD", "duplex")] = {
        "median_makespan_seconds": 11.0, "candidate_eval_speedup": 15.0}
    result = run(thr_base, both)
    expect("new row is a note", result, False)
    if result["new_rows"] != ["throughput/CCSD/duplex"]:
        failures.append(f"new row note missing: {result['new_rows']}")

    # The JSON path end-to-end: row_key/metrics on real-shaped rows.
    parsed = {}
    for row in json.loads(json.dumps({"rows": [{
            "kernel": "HF", "mode": "single", "median_tasks": 496,
            "candidates": 18846, "median_makespan_seconds": 0.05,
            "legacy_candidate_evals_per_sec": 8.0e4,
            "fastpath_candidate_evals_per_sec": 1.6e6,
            "candidate_eval_speedup": 20.0, "solves_per_sec": 10.0}]}))[
                "rows"]:
        parsed[row_key(row)] = metrics(row)
    if parsed != thr_base:
        failures.append(f"throughput row parse drifted: {parsed}")
    parsed = {}
    for row in json.loads(json.dumps({"rows": [{
            "kernel": "HF", "capacity_factor": 1.25,
            "milp_median_makespan_seconds": 4.0e-5,
            "proved_fraction": 1.0, "best_heuristic": "BP",
            "best_heuristic_median_makespan_seconds": 4.2e-5}]}))["rows"]:
        parsed[row_key(row)] = metrics(row)
    if parsed != fig7_base:
        failures.append(f"fig7 row parse drifted: {parsed}")
    parsed = {}
    for row in json.loads(json.dumps({"dag": [{
            "kernel": "CCSD-DAG", "dag_machine": "duplex-pcie",
            "winner": "LCMR", "dag_median_makespan_seconds": 15.0,
            "relaxed_median_makespan_seconds": 13.0,
            "dag_over_relaxed": 1.154}]}))["dag"]:
        parsed[row_key(row)] = metrics(row)
    if parsed != dag_base:
        failures.append(f"dag row parse drifted: {parsed}")

    if failures:
        for line in failures:
            print(f"FAIL {line}")
        print(f"bench-baseline self-test: {len(failures)} failure(s)",
              file=sys.stderr)
        return 1
    print("bench-baseline self-test: all regression classes caught, "
          "benign growth passes")
    return 0


def main(argv):
    tolerance = DEFAULT_TOLERANCE
    throughput_tolerance = DEFAULT_THROUGHPUT_TOLERANCE
    update = False
    self_test = False
    positional = []
    for arg in argv[1:]:
        if arg == "--update":
            update = True
        elif arg == "--self-test":
            self_test = True
        elif arg.startswith("--tolerance="):
            tolerance = float(arg.split("=", 1)[1])
        elif arg.startswith("--throughput-tolerance="):
            throughput_tolerance = float(arg.split("=", 1)[1])
        else:
            positional.append(arg)
    if self_test:
        return run_self_test()
    if len(positional) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    baseline_path, candidate_path = positional

    if update:
        shutil.copyfile(candidate_path, baseline_path)
        print(f"baseline refreshed: {candidate_path} -> {baseline_path}")
        return 0

    result = compare(load_rows(baseline_path), load_rows(candidate_path),
                     tolerance, throughput_tolerance)

    if result["improvements"]:
        print("improvements (refresh the baseline with --update to lock "
              "them in):")
        for line in result["improvements"]:
            print(f"  {line}")
    if result["new_rows"]:
        print("rows not in the baseline (covered after the next --update):")
        for line in result["new_rows"]:
            print(f"  {line}")
    if result["new_metrics"]:
        print("columns not in the baseline (covered after the next "
              "--update):")
        for line in result["new_metrics"]:
            print(f"  {line}")
    if result["missing"]:
        print("BASELINE ROWS/COLUMNS MISSING FROM THE CANDIDATE RUN:")
        for line in result["missing"]:
            print(f"  {line}")
    if result["regressions"]:
        print(f"PERFORMANCE REGRESSIONS (makespans > {100.0 * tolerance:.1f}% "
              f"above baseline, throughput > "
              f"{100.0 * throughput_tolerance:.0f}% below):")
        for line in result["regressions"]:
            print(f"  {line}")
    if result["regressions"] or result["missing"]:
        return 1

    print(f"perf guard ok: {result['checked']} metrics within tolerance of "
          f"{baseline_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
