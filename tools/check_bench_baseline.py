#!/usr/bin/env python3
"""Performance-regression guard for bench_machine_sweep output.

Compares the deterministic makespan columns of a fresh
BENCH_machine_sweep.json run against the checked-in baseline
(bench/baselines/machine_sweep_quick.json). Modeled makespans are exact
functions of the seeded workload and the solver code, so any drift beyond
a small floating-point tolerance is a behavior change: an increase is a
performance regression (the job fails), a decrease is an improvement (the
job passes with a note to refresh the baseline).

Wall-clock columns (solves_per_second) are machine-dependent and ignored.

Usage:
  tools/check_bench_baseline.py BASELINE CANDIDATE [--tolerance=0.02]
  tools/check_bench_baseline.py BASELINE CANDIDATE --update

Exit status: 0 ok, 1 regression/missing rows, 2 usage or I/O error.
"""

import json
import shutil
import sys

DEFAULT_TOLERANCE = 0.02  # 2% relative slack for compiler/FP differences


def row_key(row):
    """Identity of a sweep row across runs."""
    if "machine" in row:
        return ("sweep", row["kernel"], row["machine"])
    return ("asymmetry", row["kernel"], row["d2h_slowdown"])


def metrics(row):
    """The deterministic columns compared against the baseline."""
    if "machine" in row:
        return {"median_makespan_seconds": row["median_makespan_seconds"]}
    return {
        "scmr_median_makespan_seconds": row["scmr_median_makespan_seconds"],
        "duplex_balance_median_makespan_seconds":
            row["duplex_balance_median_makespan_seconds"],
    }


def load_rows(path):
    try:
        with open(path) as handle:
            data = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        print(f"error: cannot read {path}: {error}", file=sys.stderr)
        sys.exit(2)
    rows = {}
    for row in data.get("rows", []) + data.get("asymmetry", []):
        rows[row_key(row)] = metrics(row)
    return rows


def main(argv):
    tolerance = DEFAULT_TOLERANCE
    update = False
    positional = []
    for arg in argv[1:]:
        if arg == "--update":
            update = True
        elif arg.startswith("--tolerance="):
            tolerance = float(arg.split("=", 1)[1])
        else:
            positional.append(arg)
    if len(positional) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    baseline_path, candidate_path = positional

    if update:
        shutil.copyfile(candidate_path, baseline_path)
        print(f"baseline refreshed: {candidate_path} -> {baseline_path}")
        return 0

    baseline = load_rows(baseline_path)
    candidate = load_rows(candidate_path)

    regressions, improvements, missing = [], [], []
    for key, base_metrics in sorted(baseline.items()):
        cand_metrics = candidate.get(key)
        if cand_metrics is None:
            missing.append(key)
            continue
        for name, base_value in base_metrics.items():
            cand_value = cand_metrics.get(name)
            if cand_value is None:
                missing.append(key + (name,))
                continue
            if base_value <= 0.0:
                continue
            delta = (cand_value - base_value) / base_value
            line = (f"{'/'.join(str(part) for part in key)} {name}: "
                    f"{base_value:.6g} -> {cand_value:.6g} "
                    f"({100.0 * delta:+.2f}%)")
            if delta > tolerance:
                regressions.append(line)
            elif delta < -tolerance:
                improvements.append(line)

    new_rows = sorted(set(candidate) - set(baseline))

    if improvements:
        print("improvements (refresh the baseline with --update to lock "
              "them in):")
        for line in improvements:
            print(f"  {line}")
    if new_rows:
        print("rows not in the baseline (covered after the next --update):")
        for key in new_rows:
            print(f"  {'/'.join(str(part) for part in key)}")
    if missing:
        print("BASELINE ROWS MISSING FROM THE CANDIDATE RUN:")
        for key in missing:
            print(f"  {'/'.join(str(part) for part in key)}")
    if regressions:
        print(f"PERFORMANCE REGRESSIONS (> {100.0 * tolerance:.1f}% above "
              "baseline):")
        for line in regressions:
            print(f"  {line}")
    if regressions or missing:
        return 1

    checked = sum(len(values) for values in baseline.values())
    print(f"perf guard ok: {checked} makespan metrics within "
          f"{100.0 * tolerance:.1f}% of {baseline_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
