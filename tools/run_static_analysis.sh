#!/usr/bin/env bash
# Runs the full static-analysis gate: dts-lint, clang-format drift,
# clang-tidy and cppcheck. Everything keys off the repo root, so it runs
# the same from a checkout or from CI.
#
#   tools/run_static_analysis.sh            best effort: external tools
#                                           that are not installed are
#                                           reported and skipped
#   tools/run_static_analysis.sh --strict   a missing external tool is a
#                                           failure (the CI job installs
#                                           them all and runs this)
#
# Environment:
#   BUILD_DIR   build tree holding compile_commands.json for clang-tidy
#               (default: build; configure with cmake first)
set -u

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${BUILD_DIR:-$ROOT/build}"
STRICT=0
[ "${1:-}" = "--strict" ] && STRICT=1

failures=0
skipped=0

note()  { printf '\n== %s\n' "$*"; }
fail()  { printf 'FAIL: %s\n' "$*"; failures=$((failures + 1)); }
skip()  {
  printf 'SKIP: %s\n' "$*"
  skipped=$((skipped + 1))
  [ "$STRICT" = 1 ] && failures=$((failures + 1))
}

note "dts-lint (project invariants)"
if command -v python3 >/dev/null 2>&1; then
  python3 "$ROOT/tools/dts_lint.py" --root "$ROOT" || fail "dts-lint"
  python3 "$ROOT/tools/dts_lint.py" --root "$ROOT" --self-test \
    || fail "dts-lint self-test"
else
  fail "python3 not found (dts-lint is not optional)"
fi

note "clang-format (drift check)"
"$ROOT/tools/check_format.sh" || {
  # check_format.sh exits 2 when clang-format itself is missing.
  if [ $? = 2 ]; then skip "clang-format not installed"; else
    fail "formatting drift (tools/check_format.sh --fix rewrites in place)"
  fi
}

note "clang-tidy (.clang-tidy profile)"
if ! command -v clang-tidy >/dev/null 2>&1; then
  skip "clang-tidy not installed"
elif [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
  skip "no $BUILD_DIR/compile_commands.json (configure with cmake first)"
else
  # Project TUs only: the vendored googletest build is not ours to tidy.
  mapfile -t tus < <(python3 - "$BUILD_DIR/compile_commands.json" <<'EOF'
import json, sys
for entry in json.load(open(sys.argv[1])):
    f = entry["file"]
    if "_googletest" not in f and "/usr/src/" not in f:
        print(f)
EOF
  )
  if command -v run-clang-tidy >/dev/null 2>&1; then
    run-clang-tidy -quiet -p "$BUILD_DIR" "${tus[@]}" || fail "clang-tidy"
  else
    tidy_bad=0
    for tu in "${tus[@]}"; do
      clang-tidy -quiet -p "$BUILD_DIR" "$tu" || tidy_bad=1
    done
    [ "$tidy_bad" = 0 ] || fail "clang-tidy"
  fi
fi

note "cppcheck (second engine)"
if ! command -v cppcheck >/dev/null 2>&1; then
  skip "cppcheck not installed"
else
  # Directly over the sources (not compile_commands) so the result does
  # not depend on which optional targets the build tree configured.
  cppcheck --std=c++20 --language=c++ \
    --enable=warning,performance,portability \
    --inline-suppr --error-exitcode=1 --quiet \
    -I "$ROOT/src" "$ROOT/src" || fail "cppcheck"
fi

printf '\nstatic analysis: %d failure(s), %d skipped tool(s)%s\n' \
  "$failures" "$skipped" "$([ "$STRICT" = 1 ] && echo ' (strict)')"
exit "$((failures > 0))"
