#!/usr/bin/env python3
"""dts-lint: the project-invariant checker generic tools cannot replace.

Enforces the invariants the library's correctness story rests on — the
ones that otherwise live only in reviewers' heads:

  affine-funnel            all affine cost arithmetic goes through
                           affine_transfer_time() (src/model/); stray
                           `latency + bytes / bandwidth` expressions
                           elsewhere would break the bit-for-bit parity
                           the golden tests pin.
  channels-declared        every RegisterSolver / SolverRegistry::add site
                           names a SolverChannels:: and a SolverDeps::
                           capability and every RegisterMachine /
                           MachineRegistry::add site a MachineChannels{...}
                           declaration.
  executor-one-home        execute_dynamic / execute_corrected each have
                           exactly one defining home (their compiled-first
                           body); the raw-Instance overloads only compile
                           and delegate, so DAG gating can never fork.
  no-unordered-containers  result-affecting code (src/core, src/exact,
                           src/heuristics, src/milp) never uses
                           std::unordered_{map, set}: iteration order is
                           implementation-defined and would make solve
                           results machine-dependent.
  no-nondeterministic-rng  no std::rand/srand/std::random_device or
                           time-seeded RNG in src/ or bench/ — every
                           random stream takes an explicit seed
                           (support/rng.hpp) so traces and the CI perf
                           baselines reproduce exactly.
  no-pointer-order         no pointer-ordered comparisons in
                           result-affecting code (address order varies
                           run to run).
  pragma-once              every header opens with #pragma once.
  no-using-namespace-header no `using namespace` in headers.
  no-iostream-library      no <iostream> in library code (src/ except the
                           src/cli/ front-end): a library must not talk to
                           std::cout/cerr or pay for their static init.
  no-naked-new             no naked new/delete in src/ — ownership goes
                           through containers and smart pointers.
  hot-path-noalloc         functions marked `// dts-lint: hot-path` in
                           src/core/ (the candidate-scoring inner loops)
                           never allocate, build strings, declare
                           containers, grow buffers (.reserve/.resize/
                           .shrink_to_fit) or throw inline — error paths
                           funnel through cold [[noreturn]] helpers so
                           the makespan loop stays allocation-free.
  trailing-whitespace, tabs, final-newline, crlf
                           mechanical hygiene on every scanned file.

Stdlib-only by design (runs anywhere python3 runs, no pip). Wired into
ctest twice: once over the tree (must exit 0) and once over the seeded
fixtures in tests/lint_fixtures/ via --self-test (every rule must still
catch its violation). Intentional exceptions are explicit: either an
inline `// dts-lint: allow(<rule>) <why>` on the flagged line or a
reviewed entry in tools/dts_lint_baseline.json.

Exit codes: 0 clean, 1 findings (or failed self-test), 2 usage error.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path

SOURCE_EXTENSIONS = {".cpp", ".hpp"}
SCAN_ROOTS = ("src", "bench", "examples", "tests", "tools")
EXCLUDED_PARTS = {"lint_fixtures", "build", "_googletest"}

# Directories whose code decides solve results: identical inputs must
# produce identical schedules on every platform, run after run.
RESULT_AFFECTING = ("src/core/", "src/exact/", "src/heuristics/",
                    "src/milp/")

ALLOW_RE = re.compile(r"dts-lint:\s*allow\(([a-z-]+(?:\s*,\s*[a-z-]+)*)\)")
LINT_AS_RE = re.compile(r"//\s*lint-as:\s*(\S+)")


class Finding:
    def __init__(self, rule: str, path: str, line: int, message: str):
        self.rule = rule
        self.path = path
        self.line = line
        self.message = message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_comments_and_strings(text: str) -> str:
    """Blanks comments and string/char literals, preserving line structure.

    Rules must not fire on prose or on tokens inside messages; replacing
    them with spaces keeps every byte offset and line number stable.
    """
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
            elif c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
            elif c == '"':
                state = "string"
                out.append(" ")
                i += 1
            elif c == "'":
                state = "char"
                out.append(" ")
                i += 1
            else:
                out.append(c)
                i += 1
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append("\n")
            else:
                out.append(" ")
            i += 1
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
            else:
                out.append("\n" if c == "\n" else " ")
                i += 1
        else:  # string or char literal
            quote = '"' if state == "string" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
            elif c == quote:
                state = "code"
                out.append(" ")
                i += 1
            else:
                out.append("\n" if c == "\n" else " ")
                i += 1
    return "".join(out)


def line_of(text: str, offset: int) -> int:
    return text.count("\n", 0, offset) + 1


def balanced_extent(text: str, start: int, open_ch: str, close_ch: str) -> str:
    """Text of the balanced open..close region beginning at/after start."""
    begin = text.find(open_ch, start)
    if begin < 0:
        return ""
    depth = 0
    for i in range(begin, len(text)):
        if text[i] == open_ch:
            depth += 1
        elif text[i] == close_ch:
            depth -= 1
            if depth == 0:
                return text[begin : i + 1]
    return text[begin:]


# --------------------------------------------------------------- rules


def check_affine_funnel(path: str, raw: str, code: str):
    """Affine cost arithmetic must funnel through affine_transfer_time()."""
    if path.startswith("src/model/"):
        return
    latency = re.compile(r"\b(\w*latency\w*|alpha)\b", re.IGNORECASE)
    bandwidth = re.compile(r"\b(\w*bandwidth\w*|beta)\b", re.IGNORECASE)
    # Statement granularity: everything between ; { } boundaries.
    for match in re.finditer(r"[^;{}]+", code):
        stmt = match.group(0)
        if "affine_transfer_time" in stmt:
            continue
        if not (latency.search(stmt) and bandwidth.search(stmt)):
            continue
        if "+" not in stmt or not re.search(r"[*/]", stmt):
            continue
        yield Finding(
            "affine-funnel", path, line_of(code, match.start()),
            "affine cost arithmetic (latency/bandwidth combined with +,*,/) "
            "outside src/model/ — call affine_transfer_time() instead so "
            "costing can never drift from the model layer")


# The files that *define* the registration helpers; the defining
# declarations would otherwise match their own usage patterns.
CHANNELS_RULE_DEFINING_FILES = {"src/core/solver.hpp", "src/model/machine.hpp"}


def check_channels_declared(path: str, raw: str, code: str):
    """Registration sites must declare their channel capability."""
    if path in CHANNELS_RULE_DEFINING_FILES:
        return
    sites = []  # (offset, kind, extent)
    for m in re.finditer(r"\bSolverRegistry::global\(\)\s*\.\s*add\s*\(", code):
        sites.append((m.start(), "solver",
                      balanced_extent(code, m.end() - 1, "(", ")")))
    for m in re.finditer(r"\bMachineRegistry::global\(\)\s*\.\s*add\s*\(",
                         code):
        sites.append((m.start(), "machine",
                      balanced_extent(code, m.end() - 1, "(", ")")))
    bare_kind = None
    if "register_builtin_solvers" in code:
        bare_kind = "solver"
    elif "register_builtin_machines" in code:
        bare_kind = "machine"
    if bare_kind:
        for m in re.finditer(r"\bregistry\s*\.\s*add\s*\(", code):
            sites.append((m.start(), bare_kind,
                          balanced_extent(code, m.end() - 1, "(", ")")))
    for m in re.finditer(r"\bRegisterSolver\b(?!\s*;)", code):
        extent = balanced_extent(code, m.end(), "{", "}")
        sites.append((m.start(), "solver", extent))
    for m in re.finditer(r"\bRegisterMachine\b(?!\s*;)", code):
        extent = balanced_extent(code, m.end(), "{", "}")
        sites.append((m.start(), "machine", extent))
    for offset, kind, extent in sites:
        tokens = (("SolverChannels::", "SolverDeps::") if kind == "solver"
                  else ("MachineChannels",))
        for token in tokens:
            if token not in extent:
                yield Finding(
                    "channels-declared", path, line_of(code, offset),
                    f"{kind} registration without an explicit {token} "
                    "capability — declare it at the site (listings and the "
                    "differential suite derive coverage from it)")


def check_unordered_containers(path: str, raw: str, code: str):
    if not path.startswith(RESULT_AFFECTING):
        return
    for m in re.finditer(r"\bstd::unordered_(map|set|multimap|multiset)\b",
                         code):
        yield Finding(
            "no-unordered-containers", path, line_of(code, m.start()),
            f"std::unordered_{m.group(1)} in result-affecting code — "
            "iteration order is implementation-defined; use std::map, "
            "std::set or a sorted vector")


RNG_PATTERNS = (
    (re.compile(r"\bstd::rand\b|\bsrand\s*\(|(?<![\w:.])rand\s*\(\s*\)"),
     "std::rand/srand"),
    (re.compile(r"\bstd::random_device\b|\brandom_device\b"),
     "std::random_device"),
    (re.compile(r"\b(mt19937(_64)?|default_random_engine|minstd_rand0?)\b"
                r"[^;{}]*\b(time\s*\(|clock\s*\(|now\s*\(\))"),
     "a time-seeded standard engine"),
)


def check_nondeterministic_rng(path: str, raw: str, code: str):
    if not (path.startswith("src/") or path.startswith("bench/")):
        return
    for pattern, what in RNG_PATTERNS:
        for m in pattern.finditer(code):
            yield Finding(
                "no-nondeterministic-rng", path, line_of(code, m.start()),
                f"{what} — every random stream takes an explicit seed "
                "(support/rng.hpp) so runs reproduce exactly")


POINTER_ORDER_PATTERNS = (
    re.compile(r"\bstd::less<[^>]*\*\s*>"),
    re.compile(r"\b(\w+)\.get\(\)\s*<\s*(\w+)\.get\(\)"),
    re.compile(r"\bstd::greater<[^>]*\*\s*>"),
)


def check_pointer_order(path: str, raw: str, code: str):
    if not path.startswith(RESULT_AFFECTING):
        return
    for pattern in POINTER_ORDER_PATTERNS:
        for m in pattern.finditer(code):
            yield Finding(
                "no-pointer-order", path, line_of(code, m.start()),
                "pointer-ordered comparison in result-affecting code — "
                "address order varies run to run; compare by id or value")


def check_pragma_once(path: str, raw: str, code: str):
    if not path.endswith(".hpp"):
        return
    for line in raw.splitlines():
        text = line.strip()
        if not text or text.startswith("//") or text.startswith("/*") \
                or text.startswith("*") or text.startswith("*/"):
            continue
        if text == "#pragma once":
            return
        break
    yield Finding("pragma-once", path, 1,
                  "header does not open with #pragma once")


def check_using_namespace_header(path: str, raw: str, code: str):
    if not path.endswith(".hpp"):
        return
    for m in re.finditer(r"\busing\s+namespace\b", code):
        yield Finding(
            "no-using-namespace-header", path, line_of(code, m.start()),
            "`using namespace` in a header leaks into every includer")


def check_iostream_library(path: str, raw: str, code: str):
    if not path.startswith("src/") or path.startswith("src/cli/"):
        return
    for m in re.finditer(r"#\s*include\s*<iostream>", code):
        yield Finding(
            "no-iostream-library", path, line_of(code, m.start()),
            "<iostream> in library code — report through return values or "
            "take an std::ostream&; only the src/cli/ front-end owns the "
            "process streams")


def check_naked_new(path: str, raw: str, code: str):
    if not path.startswith("src/"):
        return
    for m in re.finditer(r"(?<![\w.:>])new\s+[A-Za-z_(]", code):
        yield Finding(
            "no-naked-new", path, line_of(code, m.start()),
            "naked `new` — use std::make_unique/make_shared or a container")
    for m in re.finditer(r"(?<![\w.:>])delete(\[\])?\s", code):
        yield Finding(
            "no-naked-new", path, line_of(code, m.start()),
            "naked `delete` — ownership belongs to a smart pointer; "
            "`= delete` declarations are fine (and not matched)")


HOT_PATH_MARKER_RE = re.compile(r"//\s*dts-lint:\s*hot-path\b")

# Constructs that cost a heap round-trip, a string build, or an exception
# object in a loop that scores thousands of candidates per millisecond.
# push_back/pop_back/push_heap on pre-reserved buffers are fine (and
# load-bearing); growing or reshaping a buffer is not.
HOT_PATH_BANNED = (
    (re.compile(r"(?<![\w.:>])new\s+[A-Za-z_(]"), "a `new` expression"),
    (re.compile(r"\bstd::make_(unique|shared)\b"), "a heap allocation"),
    (re.compile(r"\bstd::(string|to_string|ostringstream|stringstream|"
                r"format)\b"),
     "string building"),
    (re.compile(r"\bstd::(vector|map|set|multimap|multiset|deque|list|"
                r"basic_string|unordered_\w+)\s*<"),
     "a container declaration"),
    (re.compile(r"\.\s*(reserve|resize|shrink_to_fit)\s*\("),
     "buffer growth"),
    (re.compile(r"\bthrow\s+std::"), "an inline throw"),
)


def check_hot_path_noalloc(path: str, raw: str, code: str):
    """`// dts-lint: hot-path` functions in src/core/ stay allocation-free."""
    if not path.startswith("src/core/"):
        return
    for marker in HOT_PATH_MARKER_RE.finditer(raw):
        start = code.find("{", marker.end())
        if start < 0:
            continue
        depth, end = 0, len(code)
        for i in range(start, len(code)):
            if code[i] == "{":
                depth += 1
            elif code[i] == "}":
                depth -= 1
                if depth == 0:
                    end = i + 1
                    break
        block = code[start:end]
        for pattern, what in HOT_PATH_BANNED:
            for m in pattern.finditer(block):
                yield Finding(
                    "hot-path-noalloc", path,
                    line_of(code, start + m.start()),
                    f"{what} in a `dts-lint: hot-path` function — the "
                    "candidate-scoring loops must stay allocation-free; "
                    "hoist buffers into the scratch object and funnel "
                    "errors through a cold [[noreturn]] helper")


# The compiled-first executors own the scheduling loop and its dependency
# gating; the raw-Instance overloads are convenience delegators. One home
# each — a second definition elsewhere, or selection logic creeping back
# into a delegator, would fork the DAG semantics between two copies.
EXECUTOR_HOMES = {
    "execute_dynamic": "src/heuristics/dynamic.cpp",
    "execute_corrected": "src/heuristics/corrections.cpp",
}
EXECUTOR_LOGIC_TOKENS = ("pick_candidate", ".start(", "deps_ready")


def check_executor_one_home(path: str, raw: str, code: str):
    """execute_dynamic/execute_corrected: one compiled-first home each."""
    for m in re.finditer(r"\bvoid\s+(execute_dynamic|execute_corrected)\s*\(",
                         code):
        name = m.group(1)
        params = balanced_extent(code, m.end() - 1, "(", ")")
        after = m.end() - 1 + len(params)
        if not code[after:].lstrip().startswith("{"):
            continue  # declaration, not a definition
        if path != EXECUTOR_HOMES[name]:
            yield Finding(
                "executor-one-home", path, line_of(code, m.start()),
                f"{name} defined outside its home ({EXECUTOR_HOMES[name]}) "
                "— the scheduling loop and its dependency gating live in "
                "exactly one place")
            continue
        if "CompiledInstance" in params:
            continue  # the compiled-first body IS the one home
        body = balanced_extent(code, after, "{", "}")
        logic = [t for t in EXECUTOR_LOGIC_TOKENS if t in body]
        if logic or not re.search(name + r"\s*\(\s*ci\b", body):
            yield Finding(
                "executor-one-home", path, line_of(code, m.start()),
                f"raw-Instance {name} overload must only compile the "
                "instance and delegate to the compiled-first overload"
                + (f" (found scheduling logic: {', '.join(logic)})"
                   if logic else ""))


def check_whitespace(path: str, raw: str, code: str):
    lines = raw.split("\n")
    for idx, line in enumerate(lines, start=1):
        if line.endswith("\r"):
            yield Finding("crlf", path, idx,
                          "CRLF line ending — the tree is LF-only")
            line = line[:-1]
        if line != line.rstrip():
            yield Finding("trailing-whitespace", path, idx,
                          "trailing whitespace")
        if "\t" in line:
            yield Finding("tabs", path, idx,
                          "tab character — indentation is spaces")
    if raw and not raw.endswith("\n"):
        yield Finding("final-newline", path, len(lines),
                      "file does not end with a newline")


RULES = {
    "affine-funnel": check_affine_funnel,
    "channels-declared": check_channels_declared,
    "no-unordered-containers": check_unordered_containers,
    "no-nondeterministic-rng": check_nondeterministic_rng,
    "no-pointer-order": check_pointer_order,
    "pragma-once": check_pragma_once,
    "no-using-namespace-header": check_using_namespace_header,
    "no-iostream-library": check_iostream_library,
    "no-naked-new": check_naked_new,
    "hot-path-noalloc": check_hot_path_noalloc,
    "executor-one-home": check_executor_one_home,
    "trailing-whitespace": check_whitespace,  # also emits tabs/crlf/newline
}

# Rules emitted by check_whitespace beyond its registry key.
WHITESPACE_RULES = {"trailing-whitespace", "tabs", "final-newline", "crlf"}
ALL_RULE_IDS = sorted(set(RULES) | WHITESPACE_RULES)


def lint_file(path: str, raw: str):
    """All findings for one file, `path` repo-relative with / separators."""
    code = strip_comments_and_strings(raw)
    allowed = {}  # line -> set of allowed rules
    for idx, line in enumerate(raw.split("\n"), start=1):
        m = ALLOW_RE.search(line)
        if m:
            allowed[idx] = {r.strip() for r in m.group(1).split(",")}
    findings = []
    seen_checks = set()
    for check in RULES.values():
        if check in seen_checks:
            continue
        seen_checks.add(check)
        for finding in check(path, raw, code) or ():
            if finding.rule in allowed.get(finding.line, ()):
                continue
            findings.append(finding)
    return findings


def iter_tree(root: Path):
    for scan_root in SCAN_ROOTS:
        base = root / scan_root
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix not in SOURCE_EXTENSIONS:
                continue
            if EXCLUDED_PARTS.intersection(path.parts):
                continue
            yield path


def load_baseline(root: Path, enabled: bool):
    baseline_path = root / "tools" / "dts_lint_baseline.json"
    if not enabled or not baseline_path.is_file():
        return []
    try:
        data = json.loads(baseline_path.read_text())
    except json.JSONDecodeError as err:
        print(f"dts-lint: malformed baseline {baseline_path}: {err}",
              file=sys.stderr)
        sys.exit(2)
    entries = data.get("suppressions", [])
    for entry in entries:
        for field in ("rule", "file", "reason"):
            if field not in entry:
                print(f"dts-lint: baseline entry missing '{field}': {entry}",
                      file=sys.stderr)
                sys.exit(2)
        if entry["rule"] not in ALL_RULE_IDS:
            print(f"dts-lint: baseline names unknown rule '{entry['rule']}'",
                  file=sys.stderr)
            sys.exit(2)
        entry["_used"] = False
    return entries


def apply_baseline(findings, baseline):
    kept = []
    for finding in findings:
        suppressed = False
        for entry in baseline:
            if entry["rule"] != finding.rule or entry["file"] != finding.path:
                continue
            if entry.get("contains") and entry["contains"] \
                    not in finding.message:
                continue
            entry["_used"] = True
            suppressed = True
            break
        if not suppressed:
            kept.append(finding)
    return kept


def run_tree(root: Path, use_baseline: bool) -> int:
    findings = []
    for path in iter_tree(root):
        rel = path.relative_to(root).as_posix()
        findings.extend(lint_file(rel, path.read_bytes().decode("utf-8")))
    baseline = load_baseline(root, use_baseline)
    findings = apply_baseline(findings, baseline)
    stale = [e for e in baseline if not e["_used"]]
    for finding in findings:
        print(finding)
    for entry in stale:
        print(f"dts-lint: stale baseline entry suppresses nothing: "
              f"{entry['rule']} in {entry['file']} ({entry['reason']}) — "
              "remove it", file=sys.stderr)
    if findings or stale:
        print(f"dts-lint: {len(findings)} finding(s), "
              f"{len(stale)} stale baseline entr(y/ies)", file=sys.stderr)
        return 1
    return 0


def run_self_test(root: Path) -> int:
    """Fixture check: every rule still passes clean code and catches its
    seeded violation. Fixtures are named <rule>_{ok,bad}_*.{hpp,cpp} and
    may carry a `// lint-as: <path>` directive mapping them into the
    directory scope their rule watches."""
    fixture_dir = root / "tests" / "lint_fixtures"
    if not fixture_dir.is_dir():
        print(f"dts-lint: no fixture directory at {fixture_dir}",
              file=sys.stderr)
        return 1
    failures = 0
    count = 0
    rules_covered = set()
    for path in sorted(fixture_dir.iterdir()):
        if path.suffix not in SOURCE_EXTENSIONS:
            continue
        name = path.name
        m = re.match(r"([a-z-]+)_(ok|bad)_", name)
        if not m or m.group(1) not in ALL_RULE_IDS:
            print(f"FAIL {name}: fixture name must be "
                  "<rule>_<ok|bad>_*.hpp/.cpp with a known rule id")
            failures += 1
            continue
        rule, kind = m.group(1), m.group(2)
        raw = path.read_bytes().decode("utf-8")
        lint_path = name
        directive = LINT_AS_RE.search(raw)
        if directive:
            lint_path = directive.group(1)
        found = [f for f in lint_file(lint_path, raw) if f.rule == rule]
        count += 1
        rules_covered.add(rule)
        if kind == "ok" and found:
            print(f"FAIL {name}: expected clean, got: {found[0]}")
            failures += 1
        elif kind == "bad" and not found:
            print(f"FAIL {name}: expected a '{rule}' finding, got none")
            failures += 1
    missing = [r for r in ALL_RULE_IDS if r not in rules_covered]
    if missing:
        print(f"FAIL: rules with no fixture coverage: {', '.join(missing)}")
        failures += 1
    if failures:
        print(f"dts-lint self-test: {failures} failure(s) over "
              f"{count} fixtures", file=sys.stderr)
        return 1
    print(f"dts-lint self-test: {count} fixtures over "
          f"{len(rules_covered)} rules, all behaving")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", type=Path,
                        default=Path(__file__).resolve().parent.parent,
                        help="repository root (default: the checkout "
                             "containing this script)")
    parser.add_argument("--self-test", action="store_true",
                        help="run the fixture suite in tests/lint_fixtures/")
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore tools/dts_lint_baseline.json")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule ids and exit")
    args = parser.parse_args()
    if args.list_rules:
        for rule in ALL_RULE_IDS:
            print(rule)
        return 0
    if args.self_test:
        return run_self_test(args.root)
    return run_tree(args.root, use_baseline=not args.no_baseline)


if __name__ == "__main__":
    sys.exit(main())
