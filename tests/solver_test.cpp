#include "core/solver.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "core/auto_scheduler.hpp"
#include "core/batch.hpp"
#include "core/johnson.hpp"
#include "core/registry.hpp"
#include "exact/branch_bound.hpp"
#include "exact/exhaustive.hpp"
#include "exact/window_solver.hpp"
#include "heuristics/local_search.hpp"
#include "test_util.hpp"
#include "trace/generators.hpp"

namespace dts {
namespace {

SolveRequest request_for(const Instance& inst, Mem capacity) {
  SolveRequest request;
  request.instance = inst;
  request.capacity = capacity;
  return request;
}

void expect_same_schedule(const Schedule& a, const Schedule& b) {
  ASSERT_EQ(a.size(), b.size());
  for (TaskId i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].comm_start, b[i].comm_start) << "task " << i;
    EXPECT_DOUBLE_EQ(a[i].comp_start, b[i].comp_start) << "task " << i;
  }
}

// ---------------------------------------------------------------- registry

TEST(SolverRegistry, EveryListedNameResolves) {
  const std::vector<SolverListing> listings = list_solvers();
  // 14 paper heuristics + auto, auto-batch, local-search, branch-bound,
  // exhaustive, window.
  EXPECT_GE(listings.size(), 20u);
  for (const SolverListing& listing : listings) {
    const auto solver = SolverRegistry::global().make(listing.name);
    ASSERT_NE(solver, nullptr) << listing.name;
  }
}

TEST(SolverRegistry, EveryHeuristicAcronymIsRegistered) {
  for (const HeuristicInfo& h : all_heuristics()) {
    EXPECT_TRUE(SolverRegistry::global().contains(h.name)) << h.name;
  }
}

TEST(SolverRegistry, UnknownNameThrowsListingAvailableSolvers) {
  try {
    (void)SolverRegistry::global().make("definitely-not-a-solver");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("available:"), std::string::npos) << message;
    EXPECT_NE(message.find("OOLCMR"), std::string::npos) << message;
    EXPECT_NE(message.find("auto-batch"), std::string::npos) << message;
  }
}

TEST(SolverRegistry, DuplicateKeyThrows) {
  EXPECT_THROW(SolverRegistry::global().add(
                   "auto", "", "dup", SolverChannels::kAny, SolverDeps::kAny,
                   [](const SolverSpec&) -> std::unique_ptr<Solver> {
                     return nullptr;
                   }),
               std::logic_error);
}

TEST(SolverRegistry, KeysWithColonRejected) {
  EXPECT_THROW(SolverRegistry::global().add(
                   "bad:key", "", "", SolverChannels::kAny, SolverDeps::kAny,
                   [](const SolverSpec&) -> std::unique_ptr<Solver> {
                     return nullptr;
                   }),
               std::logic_error);
}

TEST(SolverSpecTest, ParsesBaseAndArguments) {
  const SolverSpec plain = SolverSpec::parse("OOLCMR");
  EXPECT_EQ(plain.base, "OOLCMR");
  EXPECT_TRUE(plain.args.empty());

  const SolverSpec batch = SolverSpec::parse("auto-batch:16");
  EXPECT_EQ(batch.base, "auto-batch");
  ASSERT_EQ(batch.args.size(), 1u);
  EXPECT_EQ(batch.args[0], "16");
  EXPECT_EQ(batch.size_arg(0, 4), 16u);
  EXPECT_EQ(batch.size_arg(1, 4), 4u);  // absent -> fallback

  const SolverSpec window = SolverSpec::parse("window:5:pair");
  EXPECT_EQ(window.base, "window");
  ASSERT_EQ(window.args.size(), 2u);
  EXPECT_EQ(window.args[1], "pair");

  EXPECT_THROW((void)SolverSpec::parse(""), std::invalid_argument);
  EXPECT_THROW((void)SolverSpec::parse("auto-batch:zero").size_arg(0, 1),
               std::invalid_argument);
  EXPECT_THROW((void)SolverSpec::parse("auto-batch:0").size_arg(0, 1),
               std::invalid_argument);
}

/// A strategy defined entirely outside the core: registered via the
/// self-registration helper, resolvable by name with no enum edits.
class SubmissionOrderTwiceSolver final : public Solver {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "test-submission";
  }
  [[nodiscard]] SolveResult run(const SolveRequest& request,
                                const SolveOptions&) const override {
    SolveResult result;
    result.schedule = run_heuristic(HeuristicId::kOS, request.instance,
                                    request.capacity);
    result.makespan = request.instance.empty()
                          ? 0.0
                          : result.schedule.makespan(request.instance);
    result.winner = "test-submission";
    return result;
  }
};

const RegisterSolver kRegisterTestSolver{
    "test-submission", "", "test-only: the submission order",
    SolverChannels::kAny, SolverDeps::kAny, [](const SolverSpec&) {
      return std::make_unique<SubmissionOrderTwiceSolver>();
    }};

TEST(SolverRegistry, SelfRegisteredSolverIsCallable) {
  const Instance inst = testing::table3_instance();
  const SolveResult res = solve(request_for(inst, testing::kTable3Capacity),
                                "test-submission");
  EXPECT_EQ(res.winner, "test-submission");
  EXPECT_DOUBLE_EQ(res.makespan, heuristic_makespan(HeuristicId::kOS, inst,
                                                    testing::kTable3Capacity));
}

// ------------------------------------------------- parity with legacy API

/// The paper's worked examples (Tables 3-5 / Figs. 4-6): solve() must
/// reproduce run_heuristic bit-for-bit for every acronym.
TEST(SolveParity, PaperExamplesMatchRunHeuristic) {
  const std::vector<std::pair<Instance, Mem>> cases{
      {testing::table3_instance(), testing::kTable3Capacity},
      {testing::table4_instance(), testing::kTable4Capacity},
      {testing::table5_instance(), testing::kTable5Capacity},
  };
  for (const auto& [inst, capacity] : cases) {
    for (const HeuristicInfo& h : all_heuristics()) {
      const SolveResult res =
          solve(request_for(inst, capacity), std::string(h.name));
      const Schedule legacy = run_heuristic(h.id, inst, capacity);
      EXPECT_DOUBLE_EQ(res.makespan, legacy.makespan(inst)) << h.name;
      expect_same_schedule(res.schedule, legacy);
      EXPECT_EQ(res.winner, h.name);
    }
  }
}

TEST(SolveParity, RandomInstancesMatchRunHeuristic) {
  Rng rng(0x5EED);
  for (int iter = 0; iter < 10; ++iter) {
    const Instance inst = testing::random_instance(rng, 12);
    const Mem capacity = testing::random_capacity(rng, inst);
    for (const HeuristicInfo& h : all_heuristics()) {
      const SolveResult res =
          solve(request_for(inst, capacity), std::string(h.name));
      EXPECT_DOUBLE_EQ(res.makespan,
                       heuristic_makespan(h.id, inst, capacity))
          << h.name;
    }
  }
}

TEST(SolveParity, GeneratedTracesMatchLegacyEntryPoints) {
  for (ChemistryKernel kernel :
       {ChemistryKernel::kHartreeFock, ChemistryKernel::kCoupledClusterSD}) {
    TraceConfig config;
    config.seed = 42;
    config.min_tasks = 30;
    config.max_tasks = 40;
    const Instance inst = generate_trace(kernel, config);
    const Mem capacity = 1.25 * inst.min_capacity();
    const SolveRequest request = request_for(inst, capacity);

    for (const HeuristicInfo& h : all_heuristics()) {
      EXPECT_DOUBLE_EQ(solve(request, std::string(h.name)).makespan,
                       heuristic_makespan(h.id, inst, capacity))
          << h.name;
    }
    const AutoScheduleResult legacy_auto = auto_schedule(inst, capacity);
    const SolveResult via_auto = solve(request, "auto");
    EXPECT_EQ(via_auto.winner, name_of(legacy_auto.best));
    EXPECT_DOUBLE_EQ(via_auto.makespan, legacy_auto.makespan);

    const BatchAutoResult legacy_batch = schedule_in_batches_auto(
        inst, capacity, 16, all_heuristic_ids());
    const SolveResult via_batch = solve(request, "auto-batch:16");
    expect_same_schedule(via_batch.schedule, legacy_batch.schedule);
  }
}

TEST(SolveParity, AutoMatchesAutoSchedule) {
  Rng rng(0xA070);
  for (int iter = 0; iter < 8; ++iter) {
    const Instance inst = testing::random_instance(rng, 14);
    const Mem capacity = testing::random_capacity(rng, inst);
    const AutoScheduleResult legacy = auto_schedule(inst, capacity);
    for (const bool parallel : {false, true}) {
      SolveOptions options;
      options.parallel_candidates = parallel;
      const SolveResult res =
          solve(request_for(inst, capacity), "auto", options);
      EXPECT_EQ(res.winner, name_of(legacy.best)) << "parallel=" << parallel;
      EXPECT_DOUBLE_EQ(res.makespan, legacy.makespan);
      expect_same_schedule(res.schedule, legacy.schedule);
      ASSERT_EQ(res.outcomes.size(), legacy.outcomes.size());
      for (std::size_t k = 0; k < res.outcomes.size(); ++k) {
        EXPECT_EQ(res.outcomes[k].name, name_of(legacy.outcomes[k].id));
        EXPECT_DOUBLE_EQ(res.outcomes[k].makespan,
                         legacy.outcomes[k].makespan);
      }
      EXPECT_DOUBLE_EQ(res.bounds.omim, legacy.omim);
    }
  }
}

TEST(SolveParity, AutoFamilySubsetsMatchAutoSchedule) {
  const Instance inst = testing::table4_instance();
  const std::vector<std::pair<std::string, HeuristicCategory>> families{
      {"auto:static", HeuristicCategory::kStatic},
      {"auto:dynamic", HeuristicCategory::kDynamic},
      {"auto:corrected", HeuristicCategory::kCorrected},
  };
  for (const auto& [name, category] : families) {
    const std::vector<HeuristicId> candidates = heuristics_in(category);
    const AutoScheduleResult legacy =
        auto_schedule(inst, testing::kTable4Capacity, candidates);
    const SolveResult res =
        solve(request_for(inst, testing::kTable4Capacity), name);
    EXPECT_EQ(res.winner, name_of(legacy.best)) << name;
    EXPECT_DOUBLE_EQ(res.makespan, legacy.makespan) << name;
  }
}

TEST(SolveParity, BatchWindowMatchesScheduleInBatches) {
  Rng rng(0xBA7C);
  for (int iter = 0; iter < 5; ++iter) {
    const Instance inst = testing::random_instance(rng, 15);
    const Mem capacity = testing::random_capacity(rng, inst);
    for (const HeuristicInfo& h : all_heuristics()) {
      SolveRequest request = request_for(inst, capacity);
      request.batch_size = 4;
      const SolveResult res = solve(request, std::string(h.name));
      const Schedule legacy = schedule_in_batches(h.id, inst, capacity, 4);
      EXPECT_DOUBLE_EQ(res.makespan, legacy.makespan(inst)) << h.name;
      expect_same_schedule(res.schedule, legacy);
    }
  }
}

TEST(SolveParity, AutoBatchMatchesScheduleInBatchesAuto) {
  Rng rng(0xAB17);
  const Instance inst = testing::random_instance(rng, 18);
  const Mem capacity = inst.min_capacity() * 1.3;
  const BatchAutoResult legacy =
      schedule_in_batches_auto(inst, capacity, 7, all_heuristic_ids());
  // Batch size via the name and via the request must agree.
  const SolveResult via_name =
      solve(request_for(inst, capacity), "auto-batch:7");
  SolveRequest request = request_for(inst, capacity);
  request.batch_size = 7;
  const SolveResult via_request = solve(request, "auto");
  for (const SolveResult* res : {&via_name, &via_request}) {
    expect_same_schedule(res->schedule, legacy.schedule);
    EXPECT_DOUBLE_EQ(res->makespan, legacy.schedule.makespan(inst));
  }
  // Win counts mirror the legacy per-batch winners.
  std::size_t total_wins = 0;
  for (const CandidateOutcome& o : via_name.outcomes) {
    total_wins += o.batch_wins;
    const auto id = heuristic_from_name(o.name);
    ASSERT_TRUE(id.has_value());
    EXPECT_EQ(o.batch_wins,
              static_cast<std::size_t>(std::count(legacy.winners.begin(),
                                                  legacy.winners.end(), *id)));
  }
  EXPECT_EQ(total_wins, legacy.winners.size());
}

TEST(SolveParity, LocalSearchMatchesLegacy) {
  const Instance inst = testing::table5_instance();
  SolveOptions options;
  options.max_iterations = 500;
  options.seed = 9;
  LocalSearchOptions legacy_options;
  legacy_options.max_iterations = 500;
  legacy_options.seed = 9;
  const LocalSearchResult legacy =
      schedule_local_search(inst, testing::kTable5Capacity, legacy_options);
  const SolveResult res = solve(request_for(inst, testing::kTable5Capacity),
                                "local-search", options);
  EXPECT_DOUBLE_EQ(res.makespan, legacy.makespan);
  expect_same_schedule(res.schedule, legacy.schedule);
  ASSERT_FALSE(res.outcomes.empty());
  EXPECT_DOUBLE_EQ(res.outcomes.front().makespan, legacy.initial_makespan);
  EXPECT_EQ(res.evaluations, legacy.iterations);
}

TEST(SolveParity, WindowMatchesScheduleWindowed) {
  const Instance inst = testing::table5_instance();
  const Mem capacity = testing::kTable5Capacity;
  const Schedule lp5 = schedule_windowed(inst, capacity, {.window = 5});
  const SolveResult res = solve(request_for(inst, capacity), "window:5");
  expect_same_schedule(res.schedule, lp5);
  EXPECT_EQ(res.winner, "lp.5");

  const Schedule pair3 = schedule_windowed(
      inst, capacity, {.window = 3, .mode = WindowMode::kPairOrder});
  const SolveResult res_pair =
      solve(request_for(inst, capacity), "window:3:pair");
  expect_same_schedule(res_pair.schedule, pair3);
}

TEST(SolveParity, ExactSolversMatchOnTable2) {
  // Proposition 1's witness: pair orders reach 22, permutations only 23.
  const Instance inst = testing::table2_instance();
  const SolveResult bb =
      solve(request_for(inst, testing::kTable2Capacity), "branch-bound");
  EXPECT_DOUBLE_EQ(bb.makespan, 22.0);
  EXPECT_FALSE(bb.cancelled);
  // The adapter passes the capacity-aware lower bound for its
  // proved-optimal early exit; hand the legacy call the same bound so the
  // two searches scan the identical pair sequence.
  PairOrderOptions legacy_options;
  legacy_options.lower_bound =
      capacity_aware_bounds(inst, testing::kTable2Capacity).combined;
  const PairOrderResult legacy =
      best_pair_order(inst, testing::kTable2Capacity, legacy_options);
  EXPECT_DOUBLE_EQ(bb.makespan, legacy.makespan);
  EXPECT_EQ(bb.evaluations, legacy.pairs_simulated);
  // On this instance the pair-order optimum (22) matches the combined
  // capacity-aware bound, so the search proves optimality early instead
  // of scanning all (6!)^2 pairs.
  EXPECT_TRUE(legacy.proved_optimal);
  EXPECT_LT(legacy.pairs_simulated, 518400u);

  const SolveResult ex =
      solve(request_for(inst, testing::kTable2Capacity), "exhaustive");
  const ExhaustiveResult legacy_ex =
      best_common_order(inst, testing::kTable2Capacity);
  EXPECT_DOUBLE_EQ(ex.makespan, legacy_ex.makespan);
  // Proposition 1: independent comm/comp orders strictly beat the best
  // permutation schedule on this instance.
  EXPECT_GT(ex.makespan, bb.makespan);
}

// ------------------------------------------------ deadline / cancellation

TEST(SolveCancellation, PreCancelledTokenStopsBranchBoundImmediately) {
  const Instance inst = testing::table2_instance();  // 6 distinct tasks
  SolveOptions options;
  options.cancel = CancellationToken::source();
  options.cancel.cancel();
  const SolveResult res = solve(request_for(inst, testing::kTable2Capacity),
                                "branch-bound", options);
  EXPECT_TRUE(res.cancelled);
  EXPECT_EQ(res.evaluations, 0u);  // stopped before the first pair
  // The fallback is still a complete feasible schedule.
  EXPECT_TRUE(res.schedule.complete());
  EXPECT_TRUE(
      testing::feasible(inst, res.schedule, testing::kTable2Capacity));
  EXPECT_DOUBLE_EQ(res.makespan, heuristic_makespan(HeuristicId::kOS, inst,
                                                    testing::kTable2Capacity));
}

TEST(SolveCancellation, ExpiredDeadlineStopsBranchBound) {
  const Instance inst = testing::table2_instance();
  SolveOptions options;
  options.time_limit_seconds = 0.0;
  const SolveResult res = solve(request_for(inst, testing::kTable2Capacity),
                                "branch-bound", options);
  EXPECT_TRUE(res.cancelled);
  EXPECT_TRUE(res.schedule.complete());
}

TEST(SolveCancellation, UnfiredTokenDoesNotPerturbTheSearch) {
  const Instance inst = testing::table4_instance();
  SolveOptions options;
  options.cancel = CancellationToken::source();  // armed but never fired
  options.time_limit_seconds = 3600.0;
  const SolveResult res = solve(request_for(inst, testing::kTable4Capacity),
                                "branch-bound", options);
  EXPECT_FALSE(res.cancelled);
  const PairOrderResult legacy =
      best_pair_order(inst, testing::kTable4Capacity);
  EXPECT_DOUBLE_EQ(res.makespan, legacy.makespan);
}

TEST(CancellationTokenTest, SharedFlagSemantics) {
  const CancellationToken inert;
  EXPECT_FALSE(inert.cancellable());
  inert.cancel();  // no-op
  EXPECT_FALSE(inert.cancelled());

  const CancellationToken token = CancellationToken::source();
  const CancellationToken copy = token;
  EXPECT_TRUE(copy.cancellable());
  EXPECT_FALSE(copy.cancelled());
  token.cancel();
  EXPECT_TRUE(copy.cancelled());
}

// ------------------------------------------------------------- validation

TEST(Solve, RejectsCapacityBelowMinimum) {
  const Instance inst = testing::table3_instance();
  EXPECT_THROW((void)solve(request_for(inst, 1.0), "OS"),
               std::invalid_argument);
}

TEST(Solve, RejectsZeroBatch) {
  SolveRequest request = request_for(testing::table3_instance(),
                                     testing::kTable3Capacity);
  request.batch_size = 0;
  EXPECT_THROW((void)solve(request, "OS"), std::invalid_argument);
}

TEST(Solve, HeuristicNamesTakeNoArguments) {
  const SolveRequest request =
      request_for(testing::table3_instance(), testing::kTable3Capacity);
  EXPECT_THROW((void)solve(request, "OS:3"), std::invalid_argument);
}

TEST(Solve, BatchWindowRejectedByNonBatchSolvers) {
  SolveRequest request = request_for(testing::table3_instance(),
                                     testing::kTable3Capacity);
  request.batch_size = 2;
  for (const char* name : {"local-search", "branch-bound", "window",
                           "exhaustive"}) {
    EXPECT_THROW((void)solve(request, name), std::invalid_argument) << name;
  }
}

TEST(Solve, EmptyInstanceSolvesToZero) {
  const SolveResult res = solve(request_for(Instance{}, 1.0), "auto");
  EXPECT_DOUBLE_EQ(res.makespan, 0.0);
  EXPECT_DOUBLE_EQ(res.ratio_to_optimal(), 1.0);
}

TEST(Solve, FillsBoundsRatioAndWallTime) {
  const Instance inst = testing::table3_instance();
  const SolveResult res =
      solve(request_for(inst, testing::kTable3Capacity), "OOSIM");
  EXPECT_DOUBLE_EQ(res.bounds.omim, omim(inst));
  EXPECT_GE(res.ratio_to_optimal(), 1.0);
  EXPECT_GE(res.wall_seconds, 0.0);
  EXPECT_EQ(res.winner, "OOSIM");

  SolveOptions options;
  options.compute_bounds = false;
  const SolveResult bare =
      solve(request_for(inst, testing::kTable3Capacity), "OOSIM", options);
  EXPECT_DOUBLE_EQ(bare.bounds.omim, 0.0);  // left untouched
}

}  // namespace
}  // namespace dts
