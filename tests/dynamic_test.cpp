#include "heuristics/dynamic.hpp"

#include <gtest/gtest.h>

#include "core/bounds.hpp"
#include "core/johnson.hpp"
#include "test_util.hpp"

namespace dts {
namespace {

TEST(PickCandidate, EmptyReturnsInvalid) {
  const Instance inst = testing::table4_instance();
  ExecutionState state(kInfiniteMem);
  const std::vector<TaskId> none;
  EXPECT_EQ(pick_candidate(inst, state, none, DynamicCriterion::kLargestComm),
            kInvalidTask);
}

TEST(PickCandidate, MinimumIdleDominatesCriterion) {
  // At time zero with an idle processor, every candidate induces idle equal
  // to its communication time, so the smallest comm wins regardless of the
  // criterion (the paper's Fig. 5 schedules all start with task B).
  const Instance inst = testing::table4_instance();
  ExecutionState state(kInfiniteMem);
  const std::vector<TaskId> all{0, 1, 2, 3};
  for (DynamicCriterion c :
       {DynamicCriterion::kLargestComm, DynamicCriterion::kSmallestComm,
        DynamicCriterion::kMaxAcceleration}) {
    EXPECT_EQ(pick_candidate(inst, state, all, c), 1u);  // B has comm 1
  }
}

TEST(PickCandidate, CriterionBreaksIdleTies) {
  // Busy processor: nobody induces idle, criterion decides.
  const Instance inst = testing::table4_instance();
  ExecutionState state(kInfiniteMem);
  state.start(inst[1]);  // B: processor busy until t=7
  const std::vector<TaskId> rest{0, 2, 3};  // A(3,2) C(4,6) D(5,1)
  EXPECT_EQ(pick_candidate(inst, state, rest, DynamicCriterion::kLargestComm),
            3u);
  EXPECT_EQ(pick_candidate(inst, state, rest, DynamicCriterion::kSmallestComm),
            0u);
  EXPECT_EQ(
      pick_candidate(inst, state, rest, DynamicCriterion::kMaxAcceleration),
      2u);  // C: 6/4 beats A: 2/3 and D: 1/5
}

TEST(PickCandidate, ZeroCommTaskIsInfinitelyAccelerated) {
  const Instance inst = Instance::from_comm_comp({{0, 4}, {2, 10}});
  ExecutionState state(kInfiniteMem);
  state.start(inst[1]);  // keep processor busy so idle ties
  const std::vector<TaskId> both{0, 1};
  EXPECT_EQ(
      pick_candidate(inst, state, both, DynamicCriterion::kMaxAcceleration),
      0u);
}

TEST(PickCandidate, TieOnCriterionPrefersEarlierCandidate) {
  const Instance inst = Instance::from_comm_comp({{2, 2}, {2, 2}});
  ExecutionState state(kInfiniteMem);
  state.start(inst[0]);
  // Re-pick among identical tasks (pretend both still pending).
  const std::vector<TaskId> both{1, 0};
  EXPECT_EQ(pick_candidate(inst, state, both, DynamicCriterion::kLargestComm),
            1u)
      << "first listed candidate wins ties";
}

TEST(ScheduleDynamic, FeasibleAndWithinBounds) {
  Rng rng(15);
  for (int iter = 0; iter < 100; ++iter) {
    const Instance inst = testing::random_instance(rng, 12);
    const Mem capacity = testing::random_capacity(rng, inst);
    for (DynamicCriterion c :
         {DynamicCriterion::kLargestComm, DynamicCriterion::kSmallestComm,
          DynamicCriterion::kMaxAcceleration}) {
      const Schedule s = schedule_dynamic(inst, c, capacity);
      EXPECT_TRUE(testing::feasible(inst, s, capacity));
      const Bounds b = compute_bounds(inst);
      EXPECT_GE(s.makespan(inst) + 1e-9, b.omim_lower);
      EXPECT_LE(s.makespan(inst), b.sequential_upper + 1e-9);
    }
  }
}

TEST(ScheduleDynamic, ProducesPermutationSchedules) {
  Rng rng(16);
  const Instance inst = testing::random_instance(rng, 10);
  const Schedule s = schedule_dynamic(inst, DynamicCriterion::kLargestComm,
                                      inst.min_capacity() * 1.5);
  EXPECT_TRUE(s.is_permutation_schedule());
}

TEST(ScheduleDynamic, ThrowsWhenTaskExceedsCapacity) {
  const Instance inst = Instance::from_comm_comp({{5, 1}});
  EXPECT_THROW(
      (void)schedule_dynamic(inst, DynamicCriterion::kLargestComm, 4.0),
      std::invalid_argument);
}

TEST(ScheduleDynamic, InfiniteCapacityOptimalWhenAllComputeIntensive) {
  // With ample memory and an idle processor at t=0, the dynamic rule
  // reduces to "least idle first": feasibility only. Just pin behaviour:
  // makespan must be within the bounds and >= OMIM.
  const Instance inst =
      Instance::from_comm_comp({{1, 4}, {2, 5}, {3, 6}, {4, 7}});
  const Schedule s =
      schedule_dynamic(inst, DynamicCriterion::kSmallestComm, kInfiniteMem);
  EXPECT_DOUBLE_EQ(s.makespan(inst), omim(inst))
      << "SCMR equals Johnson when all tasks are compute intensive and "
         "memory is unbounded";
}

TEST(ScheduleDynamic, EmptyInstance) {
  const Instance inst;
  const Schedule s =
      schedule_dynamic(inst, DynamicCriterion::kLargestComm, 1.0);
  EXPECT_EQ(s.size(), 0u);
}

TEST(Acronyms, DynamicNames) {
  EXPECT_EQ(to_acronym(DynamicCriterion::kLargestComm), "LCMR");
  EXPECT_EQ(to_acronym(DynamicCriterion::kSmallestComm), "SCMR");
  EXPECT_EQ(to_acronym(DynamicCriterion::kMaxAcceleration), "MAMR");
}

}  // namespace
}  // namespace dts
