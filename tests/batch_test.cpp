#include "core/batch.hpp"

#include <gtest/gtest.h>

#include "core/bounds.hpp"
#include "test_util.hpp"

namespace dts {
namespace {

TEST(Batch, RejectsZeroBatchSize) {
  const Instance inst = testing::table3_instance();
  EXPECT_THROW(
      (void)schedule_in_batches(HeuristicId::kOOSIM, inst, 6.0, 0),
      std::invalid_argument);
}

TEST(Batch, WholeInstanceBatchEqualsPlainHeuristic) {
  Rng rng(71);
  for (int iter = 0; iter < 20; ++iter) {
    const Instance inst = testing::random_instance(rng, 12);
    const Mem capacity = testing::random_capacity(rng, inst);
    for (HeuristicId id : all_heuristic_ids()) {
      const Schedule batched =
          schedule_in_batches(id, inst, capacity, inst.size());
      const Schedule plain = run_heuristic(id, inst, capacity);
      for (TaskId i = 0; i < inst.size(); ++i) {
        EXPECT_DOUBLE_EQ(batched[i].comm_start, plain[i].comm_start)
            << name_of(id);
        EXPECT_DOUBLE_EQ(batched[i].comp_start, plain[i].comp_start)
            << name_of(id);
      }
    }
  }
}

class BatchHeuristicsTest : public ::testing::TestWithParam<HeuristicId> {};

TEST_P(BatchHeuristicsTest, FeasibleForSmallBatches) {
  const HeuristicId id = GetParam();
  Rng rng(72);
  for (int iter = 0; iter < 15; ++iter) {
    const Instance inst = testing::random_instance(rng, 23);
    const Mem capacity = testing::random_capacity(rng, inst);
    for (std::size_t batch : {1u, 4u, 10u}) {
      const Schedule s = schedule_in_batches(id, inst, capacity, batch);
      ASSERT_TRUE(testing::feasible(inst, s, capacity))
          << name_of(id) << " batch " << batch;
      EXPECT_GE(s.makespan(inst) + 1e-9, compute_bounds(inst).omim_lower);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Batch, BatchHeuristicsTest, ::testing::ValuesIn(all_heuristic_ids()),
    [](const ::testing::TestParamInfo<HeuristicId>& param_info) {
      return std::string(name_of(param_info.param));
    });

TEST(Batch, BatchOfOneIsSubmissionOrderForStatics) {
  // Ordering freedom vanishes with singleton batches: every static policy
  // degenerates to OS.
  Rng rng(73);
  const Instance inst = testing::random_instance(rng, 10);
  const Mem capacity = testing::random_capacity(rng, inst);
  const Schedule os = run_heuristic(HeuristicId::kOS, inst, capacity);
  for (HeuristicId id :
       {HeuristicId::kOOSIM, HeuristicId::kIOCMS, HeuristicId::kDOCPS,
        HeuristicId::kGG, HeuristicId::kBP}) {
    const Schedule s = schedule_in_batches(id, inst, capacity, 1);
    for (TaskId i = 0; i < inst.size(); ++i) {
      EXPECT_DOUBLE_EQ(s[i].comm_start, os[i].comm_start) << name_of(id);
    }
  }
}

TEST(Batch, RestrictedVisibilityCannotBeatFullKnowledge) {
  // Not a theorem, but overwhelmingly the case for OOSIM on well-shaped
  // instances; assert the weaker sanity property that batching stays
  // within the sequential upper bound.
  Rng rng(74);
  for (int iter = 0; iter < 20; ++iter) {
    const Instance inst = testing::random_instance(rng, 30);
    const Mem capacity = testing::random_capacity(rng, inst);
    const Schedule s =
        schedule_in_batches(HeuristicId::kOOSIM, inst, capacity, 5);
    EXPECT_LE(s.makespan(inst),
              compute_bounds(inst).sequential_upper + 1e-9);
  }
}


TEST(BatchAuto, FeasibleAndNeverWorseThanEveryCandidatePerBatchGreedy) {
  Rng rng(75);
  const std::vector<HeuristicId> candidates = all_heuristic_ids();
  for (int iter = 0; iter < 15; ++iter) {
    const Instance inst = testing::random_instance(rng, 25);
    const Mem capacity = testing::random_capacity(rng, inst);
    const BatchAutoResult res =
        schedule_in_batches_auto(inst, capacity, 7, candidates);
    EXPECT_TRUE(testing::feasible(inst, res.schedule, capacity));
    EXPECT_EQ(res.winners.size(), (inst.size() + 6) / 7);
    // Greedy per-batch selection is not globally optimal, but it must stay
    // within the bounds.
    const Bounds b = compute_bounds(inst);
    EXPECT_GE(res.schedule.makespan(inst) + 1e-9, b.omim_lower);
    EXPECT_LE(res.schedule.makespan(inst), b.sequential_upper + 1e-9);
  }
}

TEST(BatchAuto, SingleCandidateMatchesPlainBatching) {
  Rng rng(76);
  const Instance inst = testing::random_instance(rng, 20);
  const Mem capacity = testing::random_capacity(rng, inst);
  const std::vector<HeuristicId> only{HeuristicId::kOOSIM};
  const BatchAutoResult res =
      schedule_in_batches_auto(inst, capacity, 6, only);
  const Schedule plain =
      schedule_in_batches(HeuristicId::kOOSIM, inst, capacity, 6);
  for (TaskId i = 0; i < inst.size(); ++i) {
    EXPECT_DOUBLE_EQ(res.schedule[i].comm_start, plain[i].comm_start);
    EXPECT_DOUBLE_EQ(res.schedule[i].comp_start, plain[i].comp_start);
  }
  for (HeuristicId id : res.winners) EXPECT_EQ(id, HeuristicId::kOOSIM);
}

TEST(BatchAuto, RejectsBadArguments) {
  const Instance inst = testing::table3_instance();
  const std::vector<HeuristicId> candidates = all_heuristic_ids();
  EXPECT_THROW((void)schedule_in_batches_auto(inst, 6.0, 0, candidates),
               std::invalid_argument);
  const std::vector<HeuristicId> none;
  EXPECT_THROW((void)schedule_in_batches_auto(inst, 6.0, 2, none),
               std::invalid_argument);
}

}  // namespace
}  // namespace dts
