/// Stress and contract tests for the SolverPool work-queue subsystem:
/// N producers x M workers under mixed deadlines and mid-flight
/// cancellations (no job lost or run twice, every handle reaches exactly
/// one terminal state, uncancelled results byte-identical to a serial
/// dts::solve() of the same request), deadline expiry in the queue,
/// priority scheduling, graceful shutdown in both drain modes, the
/// bounded queue's backpressure, and the Executor fan-out surface. This
/// suite (with cancellation_test and differential_test) is the TSan
/// gate for the concurrency layer.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "core/pool.hpp"
#include "core/validate.hpp"
#include "support/rng.hpp"
#include "test_util.hpp"

namespace dts {
namespace {

SolveOptions quiet_options() {
  SolveOptions options;
  options.parallel_candidates = false;  // the pool is the parallelism
  options.compute_bounds = false;
  return options;
}

/// Spins until the pool actually dequeued the job (so "running" scenarios
/// do not depend on scheduler timing).
void wait_until_running(const JobHandle& handle) {
  while (handle.status() == JobStatus::kQueued) std::this_thread::yield();
}

/// A job that keeps a worker busy until cancelled: local search with an
/// effectively unbounded iteration budget on a wide instance.
JobRequest long_running_job() {
  Rng rng(404);
  JobRequest job;
  job.request.instance = testing::random_instance(rng, 80);
  job.request.capacity = 1.25 * job.request.instance.min_capacity();
  job.solver = "local-search";
  job.options = quiet_options();
  job.options.max_iterations = 100000000;
  job.options.max_no_improve = 100000000;  // never stop on its own
  job.tag = "long-running";
  return job;
}

TEST(SolverPool, StressProducersCancellationsDeadlines) {
  constexpr std::size_t kProducers = 4;
  constexpr std::size_t kJobsPerProducer = 12;
  constexpr std::size_t kTotal = kProducers * kJobsPerProducer;

  // Deterministic per-job requests, prepared up front so the serial
  // baseline and the pool solve the same bytes.
  struct Case {
    JobRequest job;
    SolveResult serial;
    bool cancel_midflight = false;
    bool tight_deadline = false;
  };
  std::vector<Case> cases(kTotal);
  {
    Rng rng(20260730);
    for (std::size_t k = 0; k < kTotal; ++k) {
      Case& c = cases[k];
      c.job.request.instance =
          testing::random_instance(rng, 8 + rng.index(16));
      c.job.request.capacity =
          testing::random_capacity(rng, c.job.request.instance);
      c.job.options = quiet_options();
      switch (k % 3) {
        case 0: c.job.solver = "auto"; break;
        case 1: c.job.solver = "SCMR"; break;
        default:
          c.job.solver = "local-search";
          c.job.options.max_iterations = 2000;
          break;
      }
      c.job.tag = std::to_string(k);
      c.cancel_midflight = k % 5 == 4;
      // A zero deadline is already expired at submission: the pool must
      // resolve the job as cancelled without running it.
      c.tight_deadline = k % 11 == 10;
      if (c.tight_deadline) c.job.deadline_seconds = 0.0;
      c.serial = solve(c.job.request, c.job.solver, c.job.options);
    }
  }

  SolverPoolOptions pool_options;
  pool_options.workers = 4;
  pool_options.queue_capacity = 8;  // force producer backpressure
  SolverPool pool(pool_options);

  std::vector<JobHandle> handles(kTotal);
  std::vector<std::thread> producers;
  std::atomic<std::size_t> submitted{0};
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (std::size_t j = 0; j < kJobsPerProducer; ++j) {
        const std::size_t k = p * kJobsPerProducer + j;
        handles[k] = pool.submit(cases[k].job);  // blocks when full
        submitted.fetch_add(1);
        if (cases[k].cancel_midflight) handles[k].cancel();
      }
    });
  }
  for (std::thread& t : producers) t.join();
  ASSERT_EQ(submitted.load(), kTotal);

  // Every handle reaches a terminal state (nothing lost, nothing stuck).
  std::size_t done = 0;
  std::size_t cancelled = 0;
  for (std::size_t k = 0; k < kTotal; ++k) {
    const JobOutcome& outcome = handles[k].wait();
    EXPECT_TRUE(is_terminal(outcome.status)) << k;
    EXPECT_NE(outcome.status, JobStatus::kFailed)
        << k << ": " << outcome.error;
    if (outcome.status == JobStatus::kDone) ++done;
    if (outcome.status == JobStatus::kCancelled) ++cancelled;

    const Case& c = cases[k];
    if (c.tight_deadline) {
      // Expired before start: no result, deadline-specific reason.
      EXPECT_EQ(outcome.status, JobStatus::kCancelled) << k;
      EXPECT_FALSE(outcome.has_result) << k;
      EXPECT_NE(outcome.error.find("deadline"), std::string::npos) << k;
      continue;
    }
    if (outcome.status == JobStatus::kDone) {
      // Byte-identical to the serial solve of the same request.
      ASSERT_TRUE(outcome.has_result) << k;
      EXPECT_EQ(outcome.result.winner, c.serial.winner) << k;
      EXPECT_EQ(outcome.result.makespan, c.serial.makespan) << k;
      ASSERT_EQ(outcome.result.schedule.size(), c.serial.schedule.size());
      for (TaskId i = 0; i < c.serial.schedule.size(); ++i) {
        EXPECT_EQ(outcome.result.schedule[i].comm_start,
                  c.serial.schedule[i].comm_start)
            << k << "/" << i;
        EXPECT_EQ(outcome.result.schedule[i].comp_start,
                  c.serial.schedule[i].comp_start)
            << k << "/" << i;
      }
    } else if (outcome.has_result) {
      // Cancelled mid-flight with an incumbent: still complete + feasible.
      EXPECT_TRUE(outcome.result.schedule.complete()) << k;
      EXPECT_TRUE(testing::feasible(c.job.request.instance,
                                    outcome.result.schedule,
                                    c.job.request.capacity))
          << k;
    }
  }

  // Terminal accounting adds up exactly once per job.
  const SolverPool::Stats stats = pool.stats();
  EXPECT_EQ(stats.submitted, kTotal);
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ(stats.done, done);
  EXPECT_EQ(stats.cancelled, cancelled);
  EXPECT_EQ(stats.done + stats.cancelled + stats.failed, kTotal);
  EXPECT_EQ(stats.queued, 0u);
  EXPECT_LE(stats.peak_queued, pool_options.queue_capacity);

  pool.shutdown(DrainMode::kDrain);
}

TEST(SolverPool, DeadlineExpiresWhileQueued) {
  SolverPoolOptions options;
  options.workers = 1;
  SolverPool pool(options);

  const JobHandle blocker = pool.submit(long_running_job());
  wait_until_running(blocker);
  JobRequest hurried = long_running_job();
  hurried.deadline_seconds = 1e-3;
  hurried.tag = "hurried";
  const JobHandle late = pool.submit(hurried);

  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  blocker.cancel();

  const JobOutcome& outcome = late.wait();
  EXPECT_EQ(outcome.status, JobStatus::kCancelled);
  EXPECT_FALSE(outcome.has_result);
  EXPECT_NE(outcome.error.find("deadline expired"), std::string::npos);

  const JobOutcome& blocked = blocker.wait();
  EXPECT_EQ(blocked.status, JobStatus::kCancelled);
  EXPECT_TRUE(blocked.has_result);  // best-so-far incumbent
  pool.shutdown(DrainMode::kDrain);
}

TEST(SolverPool, PriorityPolicyRunsHighPriorityFirst) {
  SolverPoolOptions options;
  options.workers = 1;
  options.policy = SolverPoolOptions::Policy::kPriority;
  SolverPool pool(options);

  // Hold the single worker so submissions pile up in the queue.
  const JobHandle blocker = pool.submit(long_running_job());
  wait_until_running(blocker);

  Rng rng(11);
  const Instance inst = testing::random_instance(rng, 10);
  const auto queued_job = [&](int priority, const std::string& tag) {
    JobRequest job;
    job.request.instance = inst;
    job.request.capacity = 1.5 * inst.min_capacity();
    job.solver = "SCMR";
    job.options = quiet_options();
    job.priority = priority;
    job.tag = tag;
    return pool.submit(std::move(job));
  };
  const JobHandle low = queued_job(0, "low");
  const JobHandle mid = queued_job(3, "mid");
  const JobHandle high = queued_job(9, "high");
  const JobHandle mid2 = queued_job(3, "mid2");

  blocker.cancel();
  // Completion sequence reflects the priority order, FIFO among ties.
  EXPECT_LT(high.wait().sequence, mid.wait().sequence);
  EXPECT_LT(mid.wait().sequence, mid2.wait().sequence);
  EXPECT_LT(mid2.wait().sequence, low.wait().sequence);
  pool.shutdown(DrainMode::kDrain);
}

TEST(SolverPool, ShutdownDrainFinishesQueuedWork) {
  SolverPoolOptions options;
  options.workers = 2;
  SolverPool pool(options);
  Rng rng(5);
  std::vector<JobHandle> handles;
  for (int k = 0; k < 8; ++k) {
    JobRequest job;
    job.request.instance = testing::random_instance(rng, 12);
    job.request.capacity = 1.5 * job.request.instance.min_capacity();
    job.solver = "auto";
    job.options = quiet_options();
    handles.push_back(pool.submit(std::move(job)));
  }
  pool.shutdown(DrainMode::kDrain);
  for (const JobHandle& handle : handles) {
    EXPECT_EQ(handle.status(), JobStatus::kDone);
    EXPECT_TRUE(handle.wait().has_result);
  }
  EXPECT_THROW((void)pool.submit(JobRequest{}), std::runtime_error);
  EXPECT_FALSE(pool.try_submit(JobRequest{}).has_value());
}

TEST(SolverPool, ShutdownCancelResolvesQueuedAndRunning) {
  SolverPoolOptions options;
  options.workers = 1;
  SolverPool pool(options);
  const JobHandle running = pool.submit(long_running_job());
  wait_until_running(running);
  Rng rng(6);
  JobRequest queued;
  queued.request.instance = testing::random_instance(rng, 10);
  queued.request.capacity = 1.5 * queued.request.instance.min_capacity();
  queued.solver = "auto";
  queued.options = quiet_options();
  const JobHandle waiting = pool.submit(std::move(queued));

  pool.shutdown(DrainMode::kCancel);  // returns only once workers joined
  EXPECT_EQ(running.status(), JobStatus::kCancelled);
  EXPECT_EQ(waiting.status(), JobStatus::kCancelled);
  EXPECT_FALSE(waiting.wait().has_result);
  EXPECT_NE(waiting.wait().error.find("shut down"), std::string::npos);
}

TEST(SolverPool, TrySubmitRefusesWhenFull) {
  SolverPoolOptions options;
  options.workers = 1;
  options.queue_capacity = 1;
  SolverPool pool(options);
  const JobHandle running = pool.submit(long_running_job());
  wait_until_running(running);

  // The worker is busy; capacity 1 admits exactly one queued job.
  const auto first = pool.try_submit(long_running_job());
  ASSERT_TRUE(first.has_value());
  const auto second = pool.try_submit(long_running_job());
  EXPECT_FALSE(second.has_value());

  running.cancel();
  first->cancel();
  pool.shutdown(DrainMode::kCancel);
}

TEST(SolverPool, CancelledQueuedJobFreesItsQueueSlot) {
  SolverPoolOptions options;
  options.workers = 1;
  options.queue_capacity = 1;
  SolverPool pool(options);
  const JobHandle running = pool.submit(long_running_job());
  wait_until_running(running);

  const auto queued = pool.try_submit(long_running_job());
  ASSERT_TRUE(queued.has_value());
  ASSERT_FALSE(pool.try_submit(long_running_job()).has_value());  // full

  // Cancelling the queued job reclaims its slot without a worker's help.
  queued->cancel();
  EXPECT_EQ(queued->status(), JobStatus::kCancelled);
  const auto replacement = pool.try_submit(long_running_job());
  EXPECT_TRUE(replacement.has_value());

  // A producer blocked in submit() wakes when the slot frees.
  std::thread producer([&] {
    const JobHandle handle = pool.submit(long_running_job());
    handle.cancel();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  replacement->cancel();  // frees the slot the producer is waiting for
  producer.join();

  running.cancel();
  pool.shutdown(DrainMode::kCancel);
}

TEST(SolverPool, ForEachPropagatesExceptionsAfterAllIterations) {
  SolverPoolOptions options;
  options.workers = 3;
  SolverPool pool(options);
  std::vector<std::atomic<int>> hits(64);
  EXPECT_THROW(pool.for_each(hits.size(),
                             [&](std::size_t i) {
                               hits[i].fetch_add(1);
                               if (i % 17 == 3) {
                                 throw std::runtime_error("boom");
                               }
                             }),
               std::runtime_error);
  // No iteration was abandoned mid-flight and none ran twice — the
  // throw surfaced on the caller, not on a worker (which would have
  // std::terminate'd the process).
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << i;
  }
  // The crew survived and still serves work.
  Rng rng(9);
  JobRequest job;
  job.request.instance = testing::random_instance(rng, 8);
  job.request.capacity = 1.5 * job.request.instance.min_capacity();
  job.solver = "OS";
  job.options = quiet_options();
  EXPECT_EQ(pool.submit(std::move(job)).wait().status, JobStatus::kDone);
  pool.shutdown(DrainMode::kDrain);
}

TEST(SolverPool, ForEachRunsEveryIndexExactlyOnce) {
  SolverPoolOptions options;
  options.workers = 3;
  SolverPool pool(options);
  constexpr std::size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  pool.for_each(kN, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
  pool.for_each(0, [&](std::size_t) { FAIL() << "n == 0 must not call fn"; });
  pool.shutdown(DrainMode::kDrain);
}

TEST(SolverPool, PoolAsSolverExecutorMatchesSerialResults) {
  // SolveOptions::executor fans batch-auto candidate trials and the
  // window enumeration across the pool; results must be identical to the
  // serial path.
  Rng rng(17);
  const Instance inst = testing::random_instance(rng, 18);
  const Mem capacity = 1.5 * inst.min_capacity();
  const SolveRequest request{.instance = inst, .capacity = capacity};

  SolverPoolOptions pool_options;
  pool_options.workers = 3;
  SolverPool pool(pool_options);
  for (const char* solver : {"auto", "auto-batch:6", "window:6"}) {
    // parallel_candidates stays on (the default): it gates candidate
    // fan-out, and the executor branch is what this test exercises.
    SolveOptions serial;
    serial.compute_bounds = false;
    const SolveResult expected = solve(request, solver, serial);
    SolveOptions pooled;
    pooled.compute_bounds = false;
    pooled.executor = &pool;
    const SolveResult actual = solve(request, solver, pooled);
    EXPECT_EQ(actual.winner, expected.winner) << solver;
    EXPECT_EQ(actual.makespan, expected.makespan) << solver;
    ASSERT_EQ(actual.schedule.size(), expected.schedule.size());
    for (TaskId i = 0; i < expected.schedule.size(); ++i) {
      EXPECT_EQ(actual.schedule[i].comm_start,
                expected.schedule[i].comm_start)
          << solver << "/" << i;
      EXPECT_EQ(actual.schedule[i].comp_start,
                expected.schedule[i].comp_start)
          << solver << "/" << i;
    }
  }
  pool.shutdown(DrainMode::kDrain);
}

TEST(SolverPool, HandleContract) {
  const JobHandle empty;
  EXPECT_FALSE(empty.valid());
  EXPECT_THROW((void)empty.status(), std::logic_error);
  EXPECT_THROW((void)empty.wait(), std::logic_error);

  EXPECT_THROW(SolverPool({.workers = 1, .queue_capacity = 0}),
               std::invalid_argument);

  // Handles (and their outcomes) outlive the pool.
  JobHandle survivor;
  {
    SolverPool pool({.workers = 1});
    Rng rng(3);
    JobRequest job;
    job.request.instance = testing::random_instance(rng, 8);
    job.request.capacity = 1.5 * job.request.instance.min_capacity();
    job.solver = "OS";
    job.options = quiet_options();
    survivor = pool.submit(std::move(job));
    (void)survivor.wait();
  }  // ~SolverPool
  EXPECT_TRUE(survivor.terminal());
  EXPECT_TRUE(survivor.wait().has_result);
  survivor.cancel();  // no-op on a terminal job, must not crash
  EXPECT_EQ(survivor.status(), JobStatus::kDone);
}

TEST(SolverPool, TrySubmitStatusDistinguishesFullFromShutdown) {
  SolverPoolOptions options;
  options.workers = 1;
  options.queue_capacity = 1;
  SolverPool pool(options);
  const JobHandle running = pool.submit(long_running_job());
  wait_until_running(running);

  // Worker busy, one slot: accepted, then refused as *transient* — the
  // handle stays untouched on refusal.
  JobHandle queued;
  ASSERT_EQ(pool.try_submit(long_running_job(), queued),
            SubmitStatus::kAccepted);
  JobHandle untouched;
  EXPECT_EQ(pool.try_submit(long_running_job(), untouched),
            SubmitStatus::kQueueFull);
  EXPECT_FALSE(untouched.valid());

  running.cancel();
  queued.cancel();
  pool.shutdown(DrainMode::kCancel);

  // After shutdown the refusal is *terminal* — kShuttingDown, never
  // kQueueFull, even though the queue is also empty now.
  EXPECT_EQ(pool.try_submit(long_running_job(), untouched),
            SubmitStatus::kShuttingDown);
  EXPECT_FALSE(untouched.valid());
}

TEST(SolverPool, LateSubmitRacingDrainShutdownIsDeterministic) {
  // Regression: a submit racing shutdown(kDrain) must either be accepted
  // (and then run to completion under the drain) or be refused with the
  // terminal kShuttingDown status — never throw, never lose the job, and
  // never resolve an accepted job as anything but done.
  constexpr std::size_t kProducers = 4;
  constexpr std::size_t kJobsPerProducer = 24;

  SolverPoolOptions options;
  options.workers = 2;
  options.queue_capacity = 256;  // the race under test is shutdown, not full
  SolverPool pool(options);

  std::atomic<bool> start{false};
  std::atomic<std::uint64_t> accepted{0};
  std::atomic<std::uint64_t> refused{0};
  std::vector<std::vector<JobHandle>> handles(kProducers);
  std::vector<std::thread> producers;
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      Rng rng(900 + p);
      while (!start.load()) std::this_thread::yield();
      for (std::size_t k = 0; k < kJobsPerProducer; ++k) {
        JobRequest job;
        job.request.instance = testing::random_instance(rng, 6 + rng.index(6));
        job.request.capacity = 1.5 * job.request.instance.min_capacity();
        job.solver = "auto";
        job.options = quiet_options();
        job.tag = std::to_string(p) + "-" + std::to_string(k);
        JobHandle handle;
        switch (pool.try_submit(std::move(job), handle)) {
          case SubmitStatus::kAccepted:
            accepted.fetch_add(1);
            handles[p].push_back(std::move(handle));
            break;
          case SubmitStatus::kShuttingDown:
            refused.fetch_add(1);
            EXPECT_FALSE(handle.valid());
            break;
          case SubmitStatus::kQueueFull:
            ADD_FAILURE() << "queue-full on a 256-slot queue";
            break;
        }
      }
    });
  }

  start.store(true);
  pool.shutdown(DrainMode::kDrain);  // races the producers by design
  for (std::thread& t : producers) t.join();

  EXPECT_EQ(accepted.load() + refused.load(), kProducers * kJobsPerProducer);
  // After shutdown() returned, every accepted job is already resolved —
  // drained, not cancelled or lost.
  std::size_t resolved = 0;
  for (const std::vector<JobHandle>& batch : handles) {
    for (const JobHandle& handle : batch) {
      EXPECT_TRUE(handle.terminal());
      EXPECT_EQ(handle.status(), JobStatus::kDone);
      EXPECT_TRUE(handle.wait().has_result);
      ++resolved;
    }
  }
  EXPECT_EQ(resolved, accepted.load());
  // And late submits keep refusing deterministically.
  JobHandle late;
  EXPECT_EQ(pool.try_submit(long_running_job(), late),
            SubmitStatus::kShuttingDown);
}

}  // namespace
}  // namespace dts
