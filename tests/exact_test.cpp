#include <gtest/gtest.h>

#include <algorithm>

#include "core/johnson.hpp"
#include "core/simulate.hpp"
#include "exact/branch_bound.hpp"
#include "exact/exhaustive.hpp"
#include "test_util.hpp"

namespace dts {
namespace {

TEST(Exhaustive, MatchesJohnsonWithInfiniteMemory) {
  Rng rng(51);
  for (int iter = 0; iter < 100; ++iter) {
    const Instance inst = testing::random_instance(rng, 6);
    const ExhaustiveResult res = best_common_order(inst, kInfiniteMem);
    EXPECT_NEAR(res.makespan, omim(inst), 1e-9);
  }
}

TEST(Exhaustive, CollapsesIdenticalTasks) {
  // Five identical tasks: only one distinct permutation.
  const Instance inst =
      Instance::from_comm_comp({{2, 3}, {2, 3}, {2, 3}, {2, 3}, {2, 3}});
  const ExhaustiveResult res = best_common_order(inst, 4.0);
  EXPECT_EQ(res.permutations_tried, 1u);
}

TEST(Exhaustive, RefusesOversizedInstances) {
  Rng rng(52);
  const Instance inst = testing::random_instance(rng, 12);
  EXPECT_THROW((void)best_common_order(inst, kInfiniteMem),
               std::invalid_argument);
}

TEST(Exhaustive, EmptyInstance) {
  const ExhaustiveResult res = best_common_order(Instance{}, 1.0);
  EXPECT_DOUBLE_EQ(res.makespan, 0.0);
}

TEST(Exhaustive, NeverWorseThanAnyHeuristicOrder) {
  Rng rng(53);
  for (int iter = 0; iter < 60; ++iter) {
    const Instance inst = testing::random_instance(rng, 7);
    const Mem capacity = testing::random_capacity(rng, inst);
    const ExhaustiveResult res = best_common_order(inst, capacity);
    EXPECT_TRUE(testing::feasible(inst, res.schedule, capacity));
    const Time johnson = makespan_of_order(inst, johnson_order(inst), capacity);
    EXPECT_LE(res.makespan, johnson + 1e-9);
    EXPECT_GE(res.makespan + 1e-9, omim(inst));
  }
}

TEST(PairSimulator, IdenticalOrdersMatchCommonOrderEngine) {
  // simulate_pair_order(o, o) must agree exactly with execute_order(o):
  // both implement earliest-start permutation semantics.
  Rng rng(54);
  for (int iter = 0; iter < 200; ++iter) {
    const Instance inst = testing::random_instance(rng, 9);
    const Mem capacity = testing::random_capacity(rng, inst);
    std::vector<TaskId> order = inst.submission_order();
    for (std::size_t i = order.size(); i > 1; --i) {
      std::swap(order[i - 1], order[rng.index(i)]);
    }
    const Schedule common = simulate_order(inst, order, capacity);
    Schedule paired(inst.size());
    const auto ms = simulate_pair_order(inst, order, order, capacity, {},
                                        kInfiniteTime, paired);
    ASSERT_TRUE(ms.has_value());
    EXPECT_NEAR(*ms, common.makespan(inst), 1e-9);
    for (TaskId i = 0; i < inst.size(); ++i) {
      EXPECT_NEAR(paired[i].comm_start, common[i].comm_start, 1e-9);
      EXPECT_NEAR(paired[i].comp_start, common[i].comp_start, 1e-9);
    }
  }
}

TEST(PairSimulator, DetectsDeadlock) {
  // Comm order wants task 1 second, but comp order computes task 1 first;
  // task 0 (mem 6) blocks task 1 (mem 5) under capacity 10 forever since
  // task 0's computation is ordered after task 1's.
  const Instance inst = Instance::from_comm_comp({{6, 1}, {5, 1}});
  const std::vector<TaskId> comm_order{0, 1};
  const std::vector<TaskId> comp_order{1, 0};
  Schedule out(inst.size());
  const auto ms = simulate_pair_order(inst, comm_order, comp_order, 10.0, {},
                                      kInfiniteTime, out);
  EXPECT_FALSE(ms.has_value());
}

TEST(PairOrder, NeverWorseThanCommonOrder) {
  Rng rng(55);
  for (int iter = 0; iter < 40; ++iter) {
    const Instance inst = testing::random_instance(rng, 5);
    const Mem capacity = testing::random_capacity(rng, inst, 2.0);
    const ExhaustiveResult common = best_common_order(inst, capacity);
    const PairOrderResult pair = best_pair_order(inst, capacity);
    EXPECT_LE(pair.makespan, common.makespan + 1e-9);
    EXPECT_GE(pair.makespan + 1e-9, omim(inst));
    EXPECT_TRUE(testing::feasible(inst, pair.schedule, capacity));
  }
}

TEST(PairOrder, InfiniteMemoryEqualsJohnson) {
  // Without the memory constraint, permutation schedules are dominant
  // (Theorem 1), so pair orders cannot beat Johnson.
  Rng rng(56);
  for (int iter = 0; iter < 30; ++iter) {
    const Instance inst = testing::random_instance(rng, 5);
    const PairOrderResult pair = best_pair_order(inst, kInfiniteMem);
    EXPECT_NEAR(pair.makespan, omim(inst), 1e-9);
  }
}

TEST(PairOrder, UpperBoundPrunesEverything) {
  const Instance inst = testing::table2_instance();
  PairOrderOptions options;
  options.upper_bound = 21.0;  // below the optimum of 22
  const PairOrderResult res =
      best_pair_order(inst, testing::kTable2Capacity, options);
  EXPECT_DOUBLE_EQ(res.makespan, 21.0);  // unchanged: nothing found
  EXPECT_TRUE(res.comm_order.empty());
}

TEST(PairOrder, RefusesOversizedInstances) {
  Rng rng(57);
  const Instance inst = testing::random_instance(rng, 9);
  EXPECT_THROW((void)best_pair_order(inst, kInfiniteMem),
               std::invalid_argument);
}

TEST(PairOrder, ThrowsWhenTaskExceedsCapacity) {
  const Instance inst = Instance::from_comm_comp({{5, 1}});
  EXPECT_THROW((void)best_pair_order(inst, 4.0), std::invalid_argument);
}

TEST(PairOrder, CarriedStateShiftsSchedule) {
  const Instance inst = Instance::from_comm_comp({{2, 3}, {1, 4}});
  ExecutionState::Snapshot snap;
  snap.comm_available = {10.0};
  snap.comp_available = 12.0;
  PairOrderOptions options;
  options.initial_state = snap;
  const PairOrderResult res = best_pair_order(inst, kInfiniteMem, options);
  for (TaskId i = 0; i < inst.size(); ++i) {
    EXPECT_GE(res.schedule[i].comm_start, 10.0);
    EXPECT_GE(res.schedule[i].comp_start, 12.0);
  }
}

}  // namespace
}  // namespace dts
