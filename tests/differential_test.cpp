/// Differential property test across the whole solver registry: ~200
/// seeded random instances (1-3 channels, 1-40 tasks) are pushed through
/// *every* registered solver via dts::solve(), and each result is held
/// against the library's own ground truths — validate_schedule() accepts
/// the schedule, the makespan respects the compute_bounds() lower bound,
/// and on sizes where the exact solvers are feasible their makespan is no
/// worse than any heuristic's (every heuristic schedule lives inside the
/// exact solvers' search space) — on multi-channel instances too, since
/// the per-channel order search. A solver whose listing declares
/// single-channel support only must reject duplex requests with
/// std::invalid_argument — never return a wrong schedule.

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "core/bounds.hpp"
#include "core/solver.hpp"
#include "core/validate.hpp"
#include "support/rng.hpp"
#include "test_util.hpp"

namespace dts {
namespace {

/// Random instance over `channels` copy engines; durations in [0, 10],
/// memory decoupled from comm and strictly positive (so mc > 0), with the
/// zero-duration and integer-tie edge cases the paper's examples contain.
Instance random_multichannel_instance(Rng& rng, std::size_t n,
                                      std::size_t channels) {
  std::vector<Task> tasks;
  tasks.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    Task t;
    t.comm = rng.uniform(0.0, 10.0);
    t.comp = rng.uniform(0.0, 10.0);
    if (rng.chance(0.08)) t.comm = 0.0;
    if (rng.chance(0.08)) t.comp = 0.0;
    if (rng.chance(0.25)) t.comm = std::floor(t.comm);
    if (rng.chance(0.25)) t.comp = std::floor(t.comp);
    t.mem = rng.uniform(0.1, 10.0);
    t.channel = static_cast<ChannelId>(rng.index(channels));
    tasks.push_back(std::move(t));
  }
  return Instance(std::move(tasks));
}

/// The registry keys this test drives, with the per-solver feasibility
/// rules that keep the exact searches tractable.
struct SolverPlan {
  std::string name;
  bool exact = false;  ///< participates in the "exact <= heuristic" check
  std::size_t max_n = 40;           ///< beyond this the solver is skipped
  bool single_channel_only = false; ///< contractually rejects duplex
  /// Per-plan SolveOptions::max_iterations: exact tree searches need a
  /// budget that provably closes on their max_n, anytime heuristics a
  /// small one that bounds per-round work.
  std::size_t max_iterations = 200;
};

std::vector<SolverPlan> build_plans() {
  std::vector<SolverPlan> plans;
  for (const SolverListing& listing : list_solvers()) {
    SolverPlan plan;
    plan.name = listing.name;
    // The listing's declared capability drives the expectation: a
    // "single" solver must cleanly reject duplex instances, everything
    // else must schedule them correctly.
    plan.single_channel_only = listing.channels == "single";
    if (listing.name == "exhaustive") {
      plan.exact = true;
      plan.max_n = 7;  // 7! = 5040 simulations per instance
    } else if (listing.name == "branch-bound") {
      plan.exact = true;
      plan.max_n = 5;  // pruned (5!)^2 search, any channel count
    } else if (listing.name == "milp") {
      plan.exact = true;
      plan.max_n = 4;  // LP branch-and-bound closes in ~1k nodes here
      plan.max_iterations = 20000;  // node budget: proves on every n <= 4
    }
    plans.push_back(std::move(plan));
  }
  return plans;
}

TEST(Differential, EverySolverOnRandomCorpus) {
  const std::vector<SolverPlan> plans = build_plans();
  ASSERT_GE(plans.size(), 20u);  // 14 heuristics + the composite solvers

  Rng rng(20260729);
  SolveOptions options;
  options.max_iterations = 200;       // bounds local-search work per round
  options.parallel_candidates = false;
  options.compute_bounds = false;     // the test computes its own

  for (int round = 0; round < 200; ++round) {
    const std::size_t channels = 1 + rng.index(3);
    const std::size_t n = 1 + rng.index(40);
    const Instance inst = random_multichannel_instance(rng, n, channels);
    const Mem capacity = testing::random_capacity(rng, inst);
    const Bounds bounds = compute_bounds(inst);
    const SolveRequest request{.instance = inst, .capacity = capacity};
    SCOPED_TRACE("round " + std::to_string(round) + ": n=" +
                 std::to_string(n) + " channels=" + std::to_string(channels));

    std::map<std::string, Time> makespans;
    std::map<std::string, bool> proved;
    for (const SolverPlan& plan : plans) {
      if (n > plan.max_n) continue;
      if (plan.single_channel_only && !inst.single_channel()) {
        // Contractual rejection must be a clean invalid_argument.
        EXPECT_THROW((void)solve(request, plan.name, options),
                     std::invalid_argument)
            << plan.name;
        continue;
      }
      SolveResult res;
      options.max_iterations = plan.max_iterations;
      ASSERT_NO_THROW(res = solve(request, plan.name, options)) << plan.name;
      EXPECT_TRUE(res.schedule.complete()) << plan.name;
      EXPECT_TRUE(testing::feasible(inst, res.schedule, capacity))
          << plan.name;
      EXPECT_DOUBLE_EQ(res.makespan, res.schedule.makespan(inst))
          << plan.name;
      // No schedule may beat the instance's lower bound.
      EXPECT_TRUE(approx_leq(bounds.omim_lower, res.makespan))
          << plan.name << ": makespan " << res.makespan
          << " beats the OMIM lower bound " << bounds.omim_lower;
      makespans[plan.name] = res.makespan;
      if (plan.exact) {
        proved[plan.name] = res.proved_optimal;
        // A solver claiming proof must back it with a matching bound.
        if (res.proved_optimal) {
          EXPECT_EQ(res.lower_bound, res.makespan) << plan.name;
        }
      }
    }

    // Exact agreement: milp and branch-bound minimize over the same
    // engine-scored (transfer order, comp order) space with the same
    // incumbent discipline, so where both run — single-channel and
    // duplex — their makespans are bitwise identical, and milp's node
    // budget is sized to prove optimality on every corpus size it sees.
    if (makespans.count("milp")) {
      EXPECT_TRUE(proved["milp"]) << "milp failed to close its tree";
      if (makespans.count("branch-bound")) {
        EXPECT_EQ(makespans["milp"], makespans["branch-bound"]);
      }
      // The permutation space is a subset of the pair space, so the
      // exhaustive makespan can never beat milp's.
      if (makespans.count("exhaustive")) {
        EXPECT_TRUE(approx_leq(makespans["milp"], makespans["exhaustive"]));
      }
    }

    // Exact solvers dominate: every heuristic's schedule is inside their
    // search space, so their makespan is no worse than anyone's.
    for (const SolverPlan& exact : plans) {
      if (!exact.exact || !makespans.count(exact.name)) continue;
      for (const auto& [name, ms] : makespans) {
        EXPECT_TRUE(approx_leq(makespans[exact.name], ms))
            << exact.name << " (" << makespans[exact.name]
            << ") beaten by " << name << " (" << ms << ")";
      }
    }
  }
}

/// Both window modes accept multi-channel instances; the pair mode's
/// per-window search must stay feasible while carrying the multi-clock
/// snapshot across window boundaries.
TEST(Differential, BothWindowModesSolveMultiChannel) {
  Rng rng(7);
  for (int round = 0; round < 10; ++round) {
    const Instance inst = random_multichannel_instance(rng, 10, 2);
    const Mem capacity = 2.0 * inst.min_capacity();
    const Bounds bounds = compute_bounds(inst);
    for (const char* solver : {"window:3", "window:3:pair"}) {
      const SolveResult res =
          solve({.instance = inst, .capacity = capacity}, solver);
      EXPECT_TRUE(testing::feasible(inst, res.schedule, capacity)) << solver;
      EXPECT_TRUE(approx_leq(bounds.omim_lower, res.makespan)) << solver;
    }
  }
}

}  // namespace
}  // namespace dts
