#include "report/schedule_stats.hpp"

#include <gtest/gtest.h>

#include "core/simulate.hpp"
#include "test_util.hpp"

namespace dts {
namespace {

TEST(ScheduleStats, EmptySchedule) {
  const ScheduleBreakdown b = analyze_schedule(Instance{}, Schedule(0));
  EXPECT_DOUBLE_EQ(b.makespan, 0.0);
  EXPECT_DOUBLE_EQ(b.link_utilization(), 0.0);
}

TEST(ScheduleStats, SequentialScheduleHasZeroOverlap) {
  // One task: comm [0,3), comp [3,5): no overlap possible.
  const Instance inst = Instance::from_comm_comp({{3, 2}});
  const Schedule s = simulate_order(inst, inst.submission_order(), 3.0);
  const ScheduleBreakdown b = analyze_schedule(inst, s);
  EXPECT_DOUBLE_EQ(b.makespan, 5.0);
  EXPECT_DOUBLE_EQ(b.link_busy, 3.0);
  EXPECT_DOUBLE_EQ(b.proc_busy, 2.0);
  EXPECT_DOUBLE_EQ(b.link_idle, 2.0);
  EXPECT_DOUBLE_EQ(b.proc_idle, 3.0);
  EXPECT_DOUBLE_EQ(b.overlap, 0.0);
}

TEST(ScheduleStats, FullOverlapPattern) {
  // Johnson on Table 3 with infinite memory (Fig. 4a): comm busy [0,10),
  // comp busy [1,4) u [5,12); their intersection is [1,4) u [5,10) = 8 of
  // the 10 comm units.
  const Instance inst = testing::table3_instance();
  const std::vector<TaskId> order{1, 2, 0, 3};
  const Schedule s = simulate_order(inst, order, kInfiniteMem);
  const ScheduleBreakdown b = analyze_schedule(inst, s);
  EXPECT_DOUBLE_EQ(b.makespan, 12.0);
  EXPECT_DOUBLE_EQ(b.link_busy, 10.0);
  EXPECT_DOUBLE_EQ(b.proc_busy, 10.0);
  EXPECT_NEAR(b.overlap, 0.8, 1e-12);
}

TEST(ScheduleStats, UtilizationsSumWithIdle) {
  Rng rng(601);
  for (int iter = 0; iter < 50; ++iter) {
    const Instance inst = testing::random_instance(rng, 10);
    const Mem capacity = testing::random_capacity(rng, inst);
    const Schedule s = simulate_order(inst, inst.submission_order(), capacity);
    const ScheduleBreakdown b = analyze_schedule(inst, s);
    EXPECT_NEAR(b.link_busy + b.link_idle, b.makespan, 1e-9);
    EXPECT_NEAR(b.proc_busy + b.proc_idle, b.makespan, 1e-9);
    EXPECT_GE(b.overlap, -1e-12);
    EXPECT_LE(b.overlap, 1.0 + 1e-12);
    EXPECT_LE(b.proc_starved, b.proc_idle + 1e-9)
        << "starved time is a kind of idle time";
  }
}

TEST(ScheduleStats, StarvationDetectsDataWait) {
  // Processor waits 4 units for the only task's transfer: all idle before
  // its computation is starvation.
  const Instance inst = Instance::from_comm_comp({{4, 1}});
  const Schedule s = simulate_order(inst, inst.submission_order(), 4.0);
  const ScheduleBreakdown b = analyze_schedule(inst, s);
  EXPECT_DOUBLE_EQ(b.proc_starved, 4.0);
}

}  // namespace
}  // namespace dts
