/// Cross-cutting invariants, swept over a parameter grid (TEST_P): every
/// heuristic x several instance shapes x capacity factors. These are the
/// library's safety net: feasibility, bound sandwiching, monotonicity
/// where theory guarantees it, and graceful handling of degenerate tasks.

#include <gtest/gtest.h>

#include <tuple>

#include "core/auto_scheduler.hpp"
#include "core/bounds.hpp"
#include "core/johnson.hpp"
#include "core/registry.hpp"
#include "core/validate.hpp"
#include "exact/exhaustive.hpp"
#include "test_util.hpp"

namespace dts {
namespace {

enum class Shape {
  kUniform,        ///< comm, comp ~ U(0,10), mem = comm
  kCommHeavy,      ///< comm dominates (HF-like)
  kCompHeavy,      ///< comp dominates
  kBimodal,        ///< mix of tiny and huge tasks (CCSD-like)
  kDegenerate,     ///< many zero comm/comp tasks
};

Instance make_shaped(Rng& rng, Shape shape, std::size_t n) {
  std::vector<Task> tasks;
  tasks.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    Time comm = 0.0, comp = 0.0;
    switch (shape) {
      case Shape::kUniform:
        comm = rng.uniform(0.1, 10.0);
        comp = rng.uniform(0.1, 10.0);
        break;
      case Shape::kCommHeavy:
        comm = rng.uniform(4.0, 10.0);
        comp = rng.uniform(0.1, 2.0);
        break;
      case Shape::kCompHeavy:
        comm = rng.uniform(0.1, 2.0);
        comp = rng.uniform(4.0, 10.0);
        break;
      case Shape::kBimodal:
        if (rng.chance(0.5)) {
          comm = rng.uniform(0.05, 0.4);
          comp = rng.uniform(0.05, 0.4);
        } else {
          comm = rng.uniform(6.0, 12.0);
          comp = rng.uniform(6.0, 12.0);
        }
        break;
      case Shape::kDegenerate:
        comm = rng.chance(0.4) ? 0.0 : rng.uniform(0.0, 5.0);
        comp = rng.chance(0.4) ? 0.0 : rng.uniform(0.0, 5.0);
        break;
    }
    tasks.push_back(
        Task{.id = 0, .comm = comm, .comp = comp, .mem = comm, .name = {}});
  }
  return Instance(std::move(tasks));
}

const char* shape_name(Shape s) {
  switch (s) {
    case Shape::kUniform: return "Uniform";
    case Shape::kCommHeavy: return "CommHeavy";
    case Shape::kCompHeavy: return "CompHeavy";
    case Shape::kBimodal: return "Bimodal";
    case Shape::kDegenerate: return "Degenerate";
  }
  return "?";
}

using GridParam = std::tuple<HeuristicId, Shape>;

class HeuristicGridTest : public ::testing::TestWithParam<GridParam> {};

TEST_P(HeuristicGridTest, FeasibleAndSandwichedAcrossCapacities) {
  const auto [id, shape] = GetParam();
  Rng rng(static_cast<std::uint64_t>(shape) * 1000 + 17);
  for (int iter = 0; iter < 12; ++iter) {
    const Instance inst = make_shaped(rng, shape, 16);
    const Bounds b = compute_bounds(inst);
    const Mem mc = inst.min_capacity();
    if (mc <= 0.0) continue;  // all-zero-memory degenerate draw
    for (double factor : {1.0, 1.125, 1.5, 2.0, 16.0}) {
      const Mem capacity = mc * factor;
      const Schedule s = run_heuristic(id, inst, capacity);
      ASSERT_TRUE(testing::feasible(inst, s, capacity))
          << name_of(id) << "/" << shape_name(shape) << " x" << factor;
      const Time ms = s.makespan(inst);
      EXPECT_GE(ms + 1e-9, b.omim_lower);
      EXPECT_LE(ms, b.sequential_upper + 1e-9);
    }
  }
}

TEST_P(HeuristicGridTest, UnboundedCapacityIsNoWorseThanTightest) {
  // Capacity monotonicity holds for *capacity-independent orders*: with a
  // fixed permutation, every transfer start under a larger capacity is no
  // later than under a smaller one (the active set at the candidate
  // instant only shrinks — see the exchange argument in DESIGN.md). BP's
  // order and the dynamic/corrected selections depend on the capacity
  // itself, where scheduling anomalies are possible; skip those.
  const auto [id, shape] = GetParam();
  const HeuristicCategory cat = info(id).category;
  if (id == HeuristicId::kBP || cat == HeuristicCategory::kDynamic ||
      cat == HeuristicCategory::kCorrected) {
    return;
  }
  Rng rng(static_cast<std::uint64_t>(shape) * 977 + 3);
  for (int iter = 0; iter < 10; ++iter) {
    const Instance inst = make_shaped(rng, shape, 12);
    const Mem mc = inst.min_capacity();
    if (mc <= 0.0) continue;
    const Time tight = heuristic_makespan(id, inst, mc);
    const Time loose = heuristic_makespan(id, inst, mc * 1e6);
    EXPECT_LE(loose, tight + 1e-9)
        << name_of(id) << "/" << shape_name(shape);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, HeuristicGridTest,
    ::testing::Combine(::testing::ValuesIn(all_heuristic_ids()),
                       ::testing::Values(Shape::kUniform, Shape::kCommHeavy,
                                         Shape::kCompHeavy, Shape::kBimodal,
                                         Shape::kDegenerate)),
    [](const ::testing::TestParamInfo<GridParam>& param_info) {
      return std::string(name_of(std::get<0>(param_info.param))) + "_" +
             shape_name(std::get<1>(param_info.param));
    });

TEST(Property, OosimEqualsOmimWithUnboundedMemory) {
  Rng rng(200);
  for (int iter = 0; iter < 100; ++iter) {
    const Instance inst = testing::random_instance(rng, 15);
    EXPECT_NEAR(heuristic_makespan(HeuristicId::kOOSIM, inst, kInfiniteMem),
                omim(inst), 1e-9);
  }
}

TEST(Property, ExactCapacityMonotonicity) {
  // For the *optimal* permutation schedule, more memory never hurts.
  Rng rng(201);
  for (int iter = 0; iter < 30; ++iter) {
    const Instance inst = testing::random_instance(rng, 6);
    const Mem mc = inst.min_capacity();
    if (mc <= 0.0) continue;
    Time prev = kInfiniteTime;
    for (double factor : {1.0, 1.25, 1.5, 2.0, 4.0}) {
      const Time ms = best_common_order(inst, mc * factor).makespan;
      EXPECT_LE(ms, prev + 1e-9) << "factor " << factor;
      prev = ms;
    }
    EXPECT_GE(prev + 1e-9, omim(inst));
  }
}

TEST(Property, GiantCapacityEqualsInfiniteCapacity) {
  Rng rng(202);
  for (int iter = 0; iter < 50; ++iter) {
    const Instance inst = testing::random_instance(rng, 12);
    const Mem total = inst.stats().total_mem;
    for (HeuristicId id :
         {HeuristicId::kOOSIM, HeuristicId::kLCMR, HeuristicId::kOOMAMR}) {
      EXPECT_NEAR(heuristic_makespan(id, inst, total),
                  heuristic_makespan(id, inst, kInfiniteMem), 1e-9)
          << name_of(id);
    }
  }
}

TEST(Property, AutoSchedulerDominatesEveryRegistryHeuristic) {
  Rng rng(203);
  for (int iter = 0; iter < 20; ++iter) {
    const Instance inst = testing::random_instance(rng, 14);
    const Mem capacity = testing::random_capacity(rng, inst);
    const AutoScheduleResult res = auto_schedule(inst, capacity);
    for (HeuristicId id : all_heuristic_ids()) {
      EXPECT_LE(res.makespan,
                heuristic_makespan(id, inst, capacity) + 1e-9);
    }
  }
}

TEST(Property, AllZeroCommTasksScheduleBackToBack) {
  // Pure-compute workload: the link never constrains anything; makespan is
  // the compute sum for every heuristic.
  const Instance inst = Instance::from_comm_comp(
      {{0, 3}, {0, 1}, {0, 4}, {0, 1}, {0, 5}});
  for (HeuristicId id : all_heuristic_ids()) {
    EXPECT_DOUBLE_EQ(heuristic_makespan(id, inst, 1.0), 14.0) << name_of(id);
  }
}

TEST(Property, AllZeroCompTasksOccupyOnlyTheLink) {
  const Instance inst = Instance::from_comm_comp(
      {{3, 0}, {1, 0}, {4, 0}, {1, 0}, {5, 0}});
  for (HeuristicId id : all_heuristic_ids()) {
    EXPECT_DOUBLE_EQ(heuristic_makespan(id, inst, inst.min_capacity()), 14.0)
        << name_of(id);
  }
}

TEST(Property, SingleTaskMakespanIsItsTotalTime) {
  const Instance inst = Instance::from_comm_comp({{2.5, 4.25}});
  for (HeuristicId id : all_heuristic_ids()) {
    EXPECT_DOUBLE_EQ(heuristic_makespan(id, inst, 2.5), 6.75) << name_of(id);
  }
}

}  // namespace
}  // namespace dts
